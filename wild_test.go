package wild

import (
	"bytes"
	"context"
	"testing"
	"time"
)

// TestEndToEndSimulation exercises the public facade: generate,
// simulate two policies, compare metrics.
func TestEndToEndSimulation(t *testing.T) {
	pop, err := Generate(WorkloadConfig{
		Seed: 5, NumApps: 120, Duration: 48 * time.Hour,
		MaxDailyRate: 1000, MaxEventsPerFunction: 5000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := pop.Trace.Validate(); err != nil {
		t.Fatal(err)
	}

	fixed := Simulate(pop.Trace, FixedKeepAlive{KeepAlive: 10 * time.Minute})
	hybrid := Simulate(pop.Trace, NewHybrid(DefaultHybridConfig()))

	if fixed.TotalInvocations() != hybrid.TotalInvocations() {
		t.Fatal("policies saw different invocation counts")
	}
	fq := ThirdQuartileColdPercent(fixed)
	hq := ThirdQuartileColdPercent(hybrid)
	if hq >= fq {
		t.Fatalf("hybrid Q3 %.1f should beat fixed %.1f", hq, fq)
	}
	if nm := NormalizedWastedMemory(hybrid, fixed); nm <= 0 || nm > 200 {
		t.Fatalf("normalized memory = %v", nm)
	}
}

// TestEndToEndCSVRoundTrip writes and re-reads a trace through the
// facade and re-simulates; minute-binned cold starts for the fixed
// policy must be close (binning loses only sub-minute detail).
func TestEndToEndCSVRoundTrip(t *testing.T) {
	pop, err := Generate(WorkloadConfig{
		Seed: 6, NumApps: 40, Duration: 6 * time.Hour,
		MaxDailyRate: 500, MaxEventsPerFunction: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteInvocationsCSV(&buf, pop.Trace); err != nil {
		t.Fatal(err)
	}
	back, err := ReadInvocationsCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.TotalInvocations() != pop.Trace.TotalInvocations() {
		t.Fatal("invocation count changed in round trip")
	}
	orig := Simulate(pop.Trace, FixedKeepAlive{KeepAlive: 30 * time.Minute})
	rt := Simulate(back, FixedKeepAlive{KeepAlive: 30 * time.Minute})
	oc, rc := orig.TotalColdStarts(), rt.TotalColdStarts()
	diff := oc - rc
	if diff < 0 {
		diff = -diff
	}
	// Sub-minute reshuffling can flip a handful of boundary cases.
	if float64(diff) > 0.05*float64(oc)+5 {
		t.Fatalf("cold starts drifted: %d vs %d", oc, rc)
	}
}

// TestEndToEndPlatform runs a tiny platform replay through the facade.
func TestEndToEndPlatform(t *testing.T) {
	pop, err := Generate(WorkloadConfig{
		Seed: 7, NumApps: 30, Duration: time.Hour,
		MaxDailyRate: 300, MaxEventsPerFunction: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := NewPlatform(PlatformConfig{
		NumInvokers: 2,
		Clock:       NewScaledClock(3600),
	}, NewHybrid(DefaultHybridConfig()))
	defer p.Stop()

	rep, err := Replay(p, pop.Trace, ReplayOptions{Limit: 20 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Invocations == 0 {
		t.Fatal("no invocations replayed")
	}
	if len(rep.Apps) == 0 {
		t.Fatal("no app outcomes")
	}
}

// TestRunExperimentsFacade regenerates the simulation figures through
// the facade on a tiny population.
func TestRunExperimentsFacade(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure pipeline")
	}
	figs, err := RunExperiments(ExperimentConfig{
		Seed: 8, NumApps: 60, Duration: 24 * time.Hour,
		MaxDailyRate: 300, MaxEventsPerFunction: 1000,
		SkipPlatform: true,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 17 {
		t.Fatalf("figures = %d, want 17", len(figs))
	}
	var buf bytes.Buffer
	RenderFigures(figs, &buf)
	if buf.Len() == 0 {
		t.Fatal("empty rendering")
	}
}

// TestEndToEndStreamingAPI exercises the redesigned public surface:
// registry specs, generator sources, shards, and streaming sinks.
func TestEndToEndStreamingAPI(t *testing.T) {
	cfg := WorkloadConfig{
		Seed: 9, NumApps: 40, Duration: 12 * time.Hour,
		MaxDailyRate: 300, MaxEventsPerFunction: 500,
	}
	pop, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pol, err := FromSpec("hybrid?range=1h")
	if err != nil {
		t.Fatal(err)
	}
	want := Simulate(pop.Trace, pol)

	// Generator source, no sinks: identical to batch Simulate.
	src, err := GeneratorSource(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(context.Background(), src, MustFromSpec("hybrid?range=1h"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Apps) != len(want.Apps) {
		t.Fatalf("apps %d vs %d", len(got.Apps), len(want.Apps))
	}
	for i := range want.Apps {
		if got.Apps[i] != want.Apps[i] {
			t.Fatalf("app %d differs between generator-source Run and Simulate", i)
		}
	}

	// Sharded sinks: totals over all shards must equal the whole.
	const n = 3
	var wastedTotal float64
	var appTotal int64
	for i := 0; i < n; i++ {
		wasted := NewWastedMemorySink()
		shardSrc, err := GeneratorSource(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Run(context.Background(), Shard(shardSrc, i, n),
			MustFromSpec("hybrid?range=1h"), WithSink(wasted)); err != nil {
			t.Fatal(err)
		}
		wastedTotal += wasted.TotalWastedSeconds()
		appTotal += wasted.Apps()
	}
	if appTotal != int64(len(want.Apps)) {
		t.Fatalf("shards covered %d apps, want %d", appTotal, len(want.Apps))
	}
	wantWasted := want.TotalWastedSeconds()
	if diff := wastedTotal - wantWasted; diff > 1e-6*wantWasted || diff < -1e-6*wantWasted {
		t.Fatalf("sharded wasted %v, whole %v", wastedTotal, wantWasted)
	}
}
