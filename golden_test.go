package wild

import (
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden_sim.json from the current implementation")

// goldenApp pins one AppResult exactly. WastedSeconds is stored as the
// raw IEEE-754 bit pattern so the comparison is byte-identical, not
// merely within a tolerance.
type goldenApp struct {
	ID         string               `json:"id"`
	Inv        int                  `json:"inv"`
	Cold       int                  `json:"cold"`
	WastedBits uint64               `json:"wastedBits"`
	Modes      [policy.NumModes]int `json:"modes"`
}

type goldenScenario struct {
	Name        string      `json:"name"`
	Policy      string      `json:"policy"`
	HorizonBits uint64      `json:"horizonBits"`
	Apps        []goldenApp `json:"apps"`
}

type goldenFile struct {
	Scenarios []goldenScenario `json:"scenarios"`
}

// goldenPopulation is a fixed seeded workload, small enough to keep the
// test fast but broad enough to exercise every policy regime (standard
// fallback, histogram windows, and the ARIMA out-of-bounds path).
func goldenPopulation(t *testing.T) *workload.Population {
	t.Helper()
	pop, err := workload.Generate(workload.Config{
		Seed: 7, NumApps: 150, Duration: 36 * time.Hour,
		MaxDailyRate: 800, MaxEventsPerFunction: 4000,
	})
	if err != nil {
		t.Fatal(err)
	}
	return pop
}

func goldenScenarios() []struct {
	name string
	pol  policy.Policy
	opt  sim.Options
} {
	smallHist := policy.DefaultHybridConfig()
	smallHist.Histogram.NumBins = 60
	smallHist.DisablePreWarm = true
	// A 10-bin histogram drives most idle times out of bounds (heavy
	// ARIMA traffic) and parks the bin-count CV exactly on the paper's
	// threshold of 2 for common count patterns, pinning the regime
	// boundary behavior.
	tinyHist := policy.DefaultHybridConfig()
	tinyHist.Histogram.NumBins = 10
	return []struct {
		name string
		pol  policy.Policy
		opt  sim.Options
	}{
		{"fixed-10m", policy.FixedKeepAlive{KeepAlive: 10 * time.Minute}, sim.Options{}},
		{"no-unloading", policy.NoUnloading{}, sim.Options{}},
		{"hybrid-default", policy.NewHybrid(policy.DefaultHybridConfig()), sim.Options{}},
		{"hybrid-exectime", policy.NewHybrid(policy.DefaultHybridConfig()), sim.Options{UseExecTime: true}},
		{"hybrid-1h-nopw-exectime", policy.NewHybrid(smallHist), sim.Options{UseExecTime: true}},
		{"hybrid-10m-range", policy.NewHybrid(tinyHist), sim.Options{}},
	}
}

func captureScenario(name string, tr *trace.Trace, pol policy.Policy, opt sim.Options) goldenScenario {
	res := sim.Simulate(tr, pol, opt)
	sc := goldenScenario{
		Name:        name,
		Policy:      res.Policy,
		HorizonBits: math.Float64bits(res.HorizonSeconds),
	}
	for _, a := range res.Apps {
		sc.Apps = append(sc.Apps, goldenApp{
			ID:         a.AppID,
			Inv:        a.Invocations,
			Cold:       a.ColdStarts,
			WastedBits: math.Float64bits(a.WastedSeconds),
			Modes:      a.ModeCounts,
		})
	}
	return sc
}

// TestSimulateGolden proves the simulator's Result values (cold starts,
// wasted seconds, per-app mode counts) are byte-identical to the
// pre-optimization implementation, for the fixed keep-alive policy and
// the hybrid policy in several configurations. The golden file was
// generated from the seed implementation; regenerate it only with an
// intentional semantic change (go test -run Golden -update-golden).
func TestSimulateGolden(t *testing.T) {
	pop := goldenPopulation(t)
	var got goldenFile
	for _, sc := range goldenScenarios() {
		got.Scenarios = append(got.Scenarios, captureScenario(sc.name, pop.Trace, sc.pol, sc.opt))
	}

	path := filepath.Join("testdata", "golden_sim.json")
	if *updateGolden {
		data, err := json.MarshalIndent(&got, "", "\t")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d scenarios)", path, len(got.Scenarios))
		return
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update-golden): %v", err)
	}
	var want goldenFile
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(want.Scenarios) != len(got.Scenarios) {
		t.Fatalf("scenario count: got %d want %d", len(got.Scenarios), len(want.Scenarios))
	}
	for i, w := range want.Scenarios {
		g := got.Scenarios[i]
		if g.Name != w.Name || g.Policy != w.Policy {
			t.Errorf("scenario %d: got %s/%s want %s/%s", i, g.Name, g.Policy, w.Name, w.Policy)
			continue
		}
		if g.HorizonBits != w.HorizonBits {
			t.Errorf("%s: horizon bits differ", w.Name)
		}
		if len(g.Apps) != len(w.Apps) {
			t.Errorf("%s: app count %d want %d", w.Name, len(g.Apps), len(w.Apps))
			continue
		}
		mismatches := 0
		for j := range w.Apps {
			if g.Apps[j] != w.Apps[j] {
				mismatches++
				if mismatches <= 5 {
					t.Errorf("%s app %s: got %+v want %+v", w.Name, w.Apps[j].ID, g.Apps[j], w.Apps[j])
				}
			}
		}
		if mismatches > 5 {
			t.Errorf("%s: %d further app mismatches suppressed", w.Name, mismatches-5)
		}
	}
}
