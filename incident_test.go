package wild

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/policy"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/trace"
)

// TestIncidentCorpusInvariant runs every checked-in incident scenario
// (testdata/scenarios/*.json — the chaos-event corpus the CI golden
// matrix diffs) against the batch simulator and asserts the cold-start
// attribution identity app by app:
//
//	cluster cold starts = policy cold starts (sim)
//	                    + eviction-induced cold starts
//	                    + failure-induced cold starts
//
// The batch simulator sees the same trace with no cluster, so its
// count is exactly the policy's own decisions; everything above it
// must be attributed to capacity pressure or to a chaos event, with
// nothing lost and nothing double-counted. Fail/drain incidents must
// actually produce failure-induced cold starts (non-vacuity), and a
// resize-only incident must produce none (resize evictions are
// ordinary capacity evictions).
func TestIncidentCorpusInvariant(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "scenarios", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 4 {
		t.Fatalf("incident corpus has %d scenarios, want at least 4", len(files))
	}
	for _, path := range files {
		name := strings.TrimSuffix(filepath.Base(path), ".json")
		t.Run(name, func(t *testing.T) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			sc, err := ParseScenario(string(data))
			if err != nil {
				t.Fatal(err)
			}
			if sc.Cluster == nil || sc.Cluster.Events == "" {
				t.Fatalf("incident scenario %s carries no cluster.events", name)
			}
			// Goldens must stay in lockstep with the scenarios.
			if _, err := os.Stat(strings.TrimSuffix(path, ".json") + ".golden"); err != nil {
				t.Errorf("incident %s has no golden: %v", name, err)
			}

			tr := incidentTrace(t, sc.Source)
			events, err := cluster.ParseEvents(sc.Cluster.Events)
			if err != nil {
				t.Fatal(err)
			}
			place, err := cluster.NewPlacement(sc.Cluster.Placement)
			if err != nil {
				t.Fatal(err)
			}
			got := cluster.Simulate(tr, policy.MustFromSpec(sc.Policy), cluster.Config{
				Nodes:       sc.Cluster.Nodes,
				NodeMemMB:   sc.Cluster.NodeMemMB,
				Placement:   place,
				UseExecTime: sc.ExecTime,
				Events:      events,
			})
			want := sim.Simulate(tr, policy.MustFromSpec(sc.Policy),
				sim.Options{UseExecTime: sc.ExecTime})

			if len(got.Apps) != len(want.Apps) {
				t.Fatalf("%d cluster apps, %d sim apps", len(got.Apps), len(want.Apps))
			}
			var failColds, evictColds int
			for i, w := range want.Apps {
				g := got.Apps[i]
				if g.AppID != w.AppID {
					t.Fatalf("app order diverged: %s vs %s", g.AppID, w.AppID)
				}
				if g.ColdStarts != w.ColdStarts+g.EvictionColdStarts+g.FailureColdStarts {
					t.Errorf("app %s: cluster cold=%d, sim cold=%d + eviction=%d + failure=%d",
						g.AppID, g.ColdStarts, w.ColdStarts, g.EvictionColdStarts, g.FailureColdStarts)
				}
				failColds += g.FailureColdStarts
				evictColds += g.EvictionColdStarts
			}
			hasFailOrDrain := strings.Contains(sc.Cluster.Events, "fail@") ||
				strings.Contains(sc.Cluster.Events, "drain@")
			if hasFailOrDrain && failColds == 0 {
				t.Errorf("fail/drain incident produced no failure-induced cold starts (vacuous)")
			}
			if !hasFailOrDrain && failColds != 0 {
				t.Errorf("incident without fail/drain produced %d failure-induced cold starts", failColds)
			}
			if evictColds == 0 {
				t.Errorf("incident produced no eviction-induced cold starts (not under pressure)")
			}
		})
	}
}

// incidentTrace materializes an incident scenario's generator source.
func incidentTrace(t *testing.T, spec string) *trace.Trace {
	t.Helper()
	f, err := scenario.NewSource(spec)
	if err != nil {
		t.Fatal(err)
	}
	src, release, err := f.Open()
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	tr, err := trace.Collect(src)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestIncidentGoldensParse pins that the committed goldens are the
// JSON report format (one cell per incident) and carry the failure
// attribution metric — the CI matrix diffs them byte for byte, this
// keeps them structurally honest even when regenerated.
func TestIncidentGoldensParse(t *testing.T) {
	goldens, err := filepath.Glob(filepath.Join("testdata", "scenarios", "*.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if len(goldens) < 4 {
		t.Fatalf("%d goldens, want at least 4", len(goldens))
	}
	for _, path := range goldens {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var cells []struct {
			Scenario string `json:"scenario"`
			Metrics  []struct {
				Name  string  `json:"name"`
				Value float64 `json:"value"`
			} `json:"metrics"`
		}
		if err := json.Unmarshal(data, &cells); err != nil {
			t.Errorf("%s: not a JSON report: %v", path, err)
			continue
		}
		if len(cells) != 1 {
			t.Errorf("%s: %d cells, want 1", path, len(cells))
			continue
		}
		seen := false
		for _, m := range cells[0].Metrics {
			if m.Name == "failure_cold_starts" {
				seen = true
			}
		}
		if !seen {
			t.Errorf("%s: golden carries no failure_cold_starts metric", path)
		}
	}
}
