// Package wild is the public API of this reproduction of "Serverless
// in the Wild: Characterizing and Optimizing the Serverless Workload
// at a Large Cloud Provider" (Shahrad et al., USENIX ATC 2020).
//
// The surface is organized around three composable abstractions:
//
//   - TraceSource yields applications one at a time. Sources exist
//     for in-memory traces (SourceFromTrace), streaming
//     AzurePublicDataset CSVs that never materialize the trace
//     (StreamInvocationsCSV), lazy synthetic generation
//     (GeneratorSource), and interleaved shards for multi-process
//     scale-out (Shard).
//   - Run is the simulation engine: context-cancelable, parallel, and
//     sink-fed. With no sink it returns the classic *SimResult; with
//     WithSink it streams per-app outcomes into incremental
//     aggregates (ColdStartSink, WastedMemorySink, or your own
//     ResultSink) so arbitrarily large traces simulate in constant
//     memory.
//   - The policy registry builds policies from compact specs —
//     FromSpec("hybrid?cv=2&range=4h"), FromSpec("fixed?ka=20m") — so
//     binaries, experiments and scripts share one configuration path;
//     Register adds custom policies to the same spec language.
//
// Quick start (batch):
//
//	pop, _ := wild.Generate(wild.WorkloadConfig{Seed: 1, NumApps: 200})
//	res := wild.Simulate(pop.Trace, wild.MustFromSpec("hybrid"))
//	fmt.Println(wild.ThirdQuartileColdPercent(res))
//
// Quick start (streaming, constant memory):
//
//	src, _ := wild.StreamInvocationsCSV(file)
//	cold := wild.NewColdStartSink()
//	_, err := wild.Run(ctx, src, wild.MustFromSpec("hybrid"), wild.WithSink(cold))
//	fmt.Println(cold.ThirdQuartile())
//
// The pre-redesign entry points (Simulate, SimulateOpts, Replay,
// RunExperiments) remain as thin wrappers and produce byte-identical
// results.
package wild

import (
	"context"
	"io"
	"time"

	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/platform"
	"repro/internal/policy"
	"repro/internal/replay"
	"repro/internal/scenario"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Trace model.
type (
	// Trace is a workload trace: applications and their invocations.
	Trace = trace.Trace
	// App is one application (the unit of keep-alive decisions).
	App = trace.App
	// Function is one serverless function.
	Function = trace.Function
	// TriggerType is one of the paper's seven trigger classes.
	TriggerType = trace.TriggerType
)

// Trace sources.
type (
	// TraceSource yields a workload's applications one at a time (see
	// trace.Source). Sources stream: consumers hold only the app in
	// flight, so traces larger than RAM flow through Run untouched.
	TraceSource = trace.Source
)

// SourceFromTrace adapts an in-memory trace. Run detects this source
// and takes its batch work-stealing fast path.
func SourceFromTrace(tr *Trace) TraceSource { return trace.NewTraceSource(tr) }

// StreamInvocationsCSV opens an AzurePublicDataset-style invocations
// table as a constant-memory streaming source: rows parse as they are
// read, and only one application is held at a time.
func StreamInvocationsCSV(r io.Reader) (TraceSource, error) {
	return trace.StreamInvocationsCSV(r)
}

// Shard restricts src to its i-th of n interleaved shards (apps i,
// i+n, i+2n, ...). The n shards partition the source exactly, so n
// processes each running one shard cover a trace with no
// coordination.
func Shard(src TraceSource, i, n int) TraceSource { return trace.Shard(src, i, n) }

// ParseShard parses an "i/n" shard designator into Shard arguments.
func ParseShard(s string) (i, n int, err error) { return trace.ParseShard(s) }

// GeneratorSource lazily generates the synthetic population cfg
// describes, yielding exactly the apps Generate would materialize.
func GeneratorSource(cfg WorkloadConfig) (TraceSource, error) { return workload.NewSource(cfg) }

// CollectTrace drains a source into a materialized *Trace.
func CollectTrace(src TraceSource) (*Trace, error) { return trace.Collect(src) }

// Workload generation.
type (
	// WorkloadConfig parameterizes synthetic trace generation.
	WorkloadConfig = workload.Config
	// Population is a generated workload with metadata.
	Population = workload.Population
)

// Generate builds a synthetic population calibrated to the paper's
// published workload distributions.
func Generate(cfg WorkloadConfig) (*Population, error) { return workload.Generate(cfg) }

// ReadInvocationsCSV parses an AzurePublicDataset-style invocation
// table into a fully materialized trace (see StreamInvocationsCSV for
// the constant-memory alternative).
func ReadInvocationsCSV(r io.Reader) (*Trace, error) { return trace.ReadInvocationsCSV(r) }

// WriteInvocationsCSV writes a trace in the dataset's CSV schema.
func WriteInvocationsCSV(w io.Writer, tr *Trace) error { return trace.WriteInvocationsCSV(w, tr) }

// Policies.
type (
	// Policy decides keep-alive and pre-warming windows per app.
	Policy = policy.Policy
	// Decision is one policy verdict (pre-warm + keep-alive windows).
	Decision = policy.Decision
	// HybridConfig parameterizes the hybrid histogram policy.
	HybridConfig = policy.HybridConfig
	// FixedKeepAlive is the provider state-of-practice baseline.
	FixedKeepAlive = policy.FixedKeepAlive
	// NoUnloading keeps everything warm forever (cost upper bound).
	NoUnloading = policy.NoUnloading
	// PolicyBuilder constructs a policy from parsed spec parameters.
	PolicyBuilder = policy.Builder
	// PolicySpecParams carries a spec's parameters to a builder.
	PolicySpecParams = policy.SpecParams
)

// DefaultHybridConfig returns the paper's default parameters: 4-hour
// 1-minute-bin histogram, [5,99] percentile cutoffs, 10% margin, CV
// threshold 2, 15% ARIMA margin.
func DefaultHybridConfig() HybridConfig { return policy.DefaultHybridConfig() }

// NewHybrid constructs the paper's hybrid histogram policy.
func NewHybrid(cfg HybridConfig) Policy { return policy.NewHybrid(cfg) }

// Policy registry. Specs use URL query syntax after the policy name:
// "fixed?ka=20m", "hybrid?cv=2&range=4h&arima=off", "nounload".

// Register adds a named policy builder to the spec registry.
func Register(name string, b PolicyBuilder) { policy.Register(name, b) }

// FromSpec parses a policy spec and builds the policy.
func FromSpec(spec string) (Policy, error) { return policy.FromSpec(spec) }

// MustFromSpec is FromSpec panicking on error, for code-supplied
// specs.
func MustFromSpec(spec string) Policy { return policy.MustFromSpec(spec) }

// PolicySpecs returns the registered policy names, sorted.
func PolicySpecs() []string { return policy.SpecNames() }

// Simulation.
type (
	// SimOptions configures the cold-start simulator (batch form).
	SimOptions = sim.Options
	// SimResult is a per-app simulation outcome set.
	SimResult = sim.Result
	// AppResult is the outcome for one application.
	AppResult = sim.AppResult
	// ResultSink consumes per-app outcomes as the engine produces
	// them (calls serialized by Run).
	ResultSink = sim.ResultSink
	// RunInfo describes a run to its sinks.
	RunInfo = sim.RunInfo
	// RunOption configures Run.
	RunOption = sim.Option
	// Collector is the default collecting sink.
	Collector = sim.Collector
)

// Run simulates pol over the apps yielded by src: the
// context-cancelable, sink-fed superset of Simulate. With no WithSink
// option it returns the collected *SimResult (identical to
// Simulate's); with sinks it returns (nil, nil) on success and
// retains nothing per-app.
func Run(ctx context.Context, src TraceSource, pol Policy, opts ...RunOption) (*SimResult, error) {
	return sim.Run(ctx, src, pol, opts...)
}

// WithWorkers bounds the number of apps simulated concurrently
// (default GOMAXPROCS).
func WithWorkers(n int) RunOption { return sim.WithWorkers(n) }

// WithExecTime makes invocations occupy their function's average
// execution time instead of 0 (§3.4 idle-time semantics).
func WithExecTime(enabled bool) RunOption { return sim.WithExecTime(enabled) }

// WithSink attaches a ResultSink (repeatable); attaching any sink
// disables the default collector.
func WithSink(s ResultSink) RunOption { return sim.WithSink(s) }

// NewCollector returns the default collecting sink, for explicit use
// alongside other sinks.
func NewCollector() *Collector { return sim.NewCollector() }

// Simulate runs pol over tr with default options (batch entry point).
func Simulate(tr *Trace, pol Policy) *SimResult {
	return sim.Simulate(tr, pol, sim.Options{})
}

// SimulateOpts runs pol over tr with explicit options.
func SimulateOpts(tr *Trace, pol Policy, opt SimOptions) *SimResult {
	return sim.Simulate(tr, pol, opt)
}

// Streaming metrics sinks.
type (
	// ColdStartSink incrementally aggregates the per-app cold-start
	// percentage distribution (quantiles, ECDF) without storing apps.
	ColdStartSink = metrics.ColdStartSink
	// WastedMemorySink incrementally totals wasted memory time and
	// invocation counters.
	WastedMemorySink = metrics.WastedMemorySink
)

// NewColdStartSink returns an empty streaming cold-start distribution
// sink.
func NewColdStartSink() *ColdStartSink { return metrics.NewColdStartSink() }

// NewWastedMemorySink returns an empty streaming totals sink.
func NewWastedMemorySink() *WastedMemorySink { return metrics.NewWastedMemorySink() }

// ThirdQuartileColdPercent returns the 75th-percentile per-app cold
// start percentage, the paper's headline metric.
func ThirdQuartileColdPercent(r *SimResult) float64 {
	return metrics.ThirdQuartileColdPercent(r)
}

// NormalizedWastedMemory returns r's wasted memory as a percentage of
// baseline's (the paper normalizes to the 10-minute fixed policy).
func NormalizedWastedMemory(r, baseline *SimResult) float64 {
	return metrics.NormalizedWastedMemory(r, baseline)
}

// Cluster simulation: the finite-memory multi-node engine. Unlike the
// per-app simulator, the cluster orders all invocations on one
// discrete-event timeline over nodes with real capacity; warm
// containers compete for memory and can be evicted, turning arrivals
// the policy predicted warm into cold starts. With NodeMemMB == 0
// (infinite) the outcome is bit-identical to Simulate.
type (
	// ClusterConfig describes the simulated cluster (nodes, per-node
	// memory, placement).
	ClusterConfig = cluster.Config
	// ClusterResult is a cluster simulation outcome (apps + nodes).
	ClusterResult = cluster.Result
	// ClusterAppResult extends AppResult with eviction attribution.
	ClusterAppResult = cluster.AppResult
	// ClusterNodeStats aggregates one node (evictions, utilization
	// time series).
	ClusterNodeStats = cluster.NodeStats
	// ClusterOption configures RunCluster.
	ClusterOption = cluster.Option
	// ClusterSink consumes per-app cluster outcomes.
	ClusterSink = cluster.Sink
	// Placement assigns apps to nodes.
	Placement = cluster.Placement
	// ObliviousPlacement marks a placement whose Place never consults
	// live residency; the cluster engine pre-assigns such placements
	// and runs per-node timelines in parallel (ClusterConfig.Workers),
	// bit-identical to the sequential order. hash and binpack qualify;
	// least-loaded does not.
	ObliviousPlacement = cluster.Oblivious
	// PlacementBuilder constructs a placement from parsed spec params.
	PlacementBuilder = cluster.PlacementBuilder
	// ClusterAttributionSink splits cold starts into policy-induced
	// vs eviction-induced as outcomes stream past.
	ClusterAttributionSink = metrics.ClusterAttributionSink
)

// SimulateCluster runs pol over tr on the configured cluster.
func SimulateCluster(tr *Trace, pol Policy, cfg ClusterConfig) *ClusterResult {
	return cluster.Simulate(tr, pol, cfg)
}

// RunCluster is the source- and sink-plumbed cluster entry point: the
// source is materialized (the timeline needs the whole workload), the
// cluster is simulated under ctx, and outcomes drain to the attached
// sinks in trace order. Plain ResultSinks (ColdStartSink,
// WastedMemorySink) consume cluster runs unchanged via
// WithClusterResultSink.
func RunCluster(ctx context.Context, src TraceSource, pol Policy, cfg ClusterConfig, opts ...ClusterOption) (*ClusterResult, error) {
	return cluster.Run(ctx, src, pol, cfg, opts...)
}

// WithClusterResultSink attaches a sim ResultSink to a cluster run
// (fed each app's embedded AppResult).
func WithClusterResultSink(s ResultSink) ClusterOption { return cluster.WithSink(s) }

// WithClusterSink attaches a cluster-aware sink (eviction attribution
// included).
func WithClusterSink(s ClusterSink) ClusterOption { return cluster.WithClusterSink(s) }

// NewPlacement builds a registered placement policy from a spec
// ("hash", "least-loaded", "binpack?order=invocations",
// "hash?seed=3"); bare names select the defaults.
func NewPlacement(spec string) (Placement, error) { return cluster.NewPlacement(spec) }

// RegisterPlacement adds a named placement builder to the spec
// registry. A placement that additionally implements
// ObliviousPlacement (Place reads only the app footprint, the static
// cluster shape and Prepare state — never View.ResidentMB) gets the
// parallel per-node timeline; the contract is enforced at
// pre-assignment with a view whose ResidentMB panics.
func RegisterPlacement(name string, b PlacementBuilder) { cluster.RegisterPlacement(name, b) }

// PlacementNames returns the registered placement names, sorted.
func PlacementNames() []string { return cluster.PlacementNames() }

// NewClusterAttributionSink returns an empty attribution sink.
func NewClusterAttributionSink() *ClusterAttributionSink {
	return metrics.NewClusterAttributionSink()
}

// MeanClusterUtilizationPct averages per-node mean memory utilization
// over a cluster run (0 when the cluster is infinite).
func MeanClusterUtilizationPct(r *ClusterResult) float64 {
	return metrics.MeanClusterUtilizationPct(r)
}

// DefaultAppMemoryMB is the paper's median per-app allocated memory
// (Figure 8), charged for apps with no memory data.
const DefaultAppMemoryMB = trace.DefaultAppMemoryMB

// ApplyMemoryCSVDefault fills MemoryMB on tr's apps from a memory
// table, charges defaultMB (or DefaultAppMemoryMB when <= 0) to apps
// the table does not cover, and returns how many apps were defaulted.
func ApplyMemoryCSVDefault(r io.Reader, tr *Trace, defaultMB float64) (defaulted int, err error) {
	return trace.ApplyMemoryCSVDefault(r, tr, defaultMB)
}

// Platform (OpenWhisk analogue) and replay.
type (
	// PlatformConfig parameterizes the in-process FaaS cluster.
	PlatformConfig = platform.Config
	// Platform is the in-process FaaS cluster.
	Platform = platform.Platform
	// ReplayOptions configures trace replay against the platform.
	ReplayOptions = replay.Options
	// ReplayReport is the outcome of a replay.
	ReplayReport = replay.Report
)

// NewPlatform assembles an in-process FaaS cluster running pol.
func NewPlatform(cfg PlatformConfig, pol Policy) *Platform {
	return platform.NewPlatform(cfg, pol)
}

// NewScaledClock returns a clock running scale× real time, for
// replaying hours of trace in seconds.
func NewScaledClock(scale float64) platform.Clock { return platform.NewScaledClock(scale) }

// ReplayContext fires tr's invocations at p and reports outcomes;
// cancellation interrupts the (scaled) real-time replay mid-flight.
func ReplayContext(ctx context.Context, p *Platform, tr *Trace, opt ReplayOptions) (*ReplayReport, error) {
	return replay.Replay(ctx, p, tr, opt)
}

// Replay is ReplayContext with a background context (pre-redesign
// signature).
func Replay(p *Platform, tr *Trace, opt ReplayOptions) (*ReplayReport, error) {
	return replay.Replay(context.Background(), p, tr, opt)
}

// Serving control plane: the concurrent keep-alive decision service
// (internal/serve), the record/replay loop for captured incident
// bundles, and the soak harness. Where Platform is a whole in-process
// cluster, ServeController isolates just the decision component —
// sharded, per-app-serialized, allocation-free in steady state — for
// embedding into serving paths at production rates.
type (
	// ServeConfig parameterizes a ServeController (lock shard count).
	ServeConfig = serve.Config
	// ServeController is the concurrent keep-alive decision service.
	ServeController = serve.Controller
	// ServeRecorder captures a live invocation stream for bundling.
	ServeRecorder = serve.Recorder
	// BundleMeta is an incident bundle's versioned JSON header.
	BundleMeta = serve.BundleMeta
	// SoakConfig parameterizes a serving soak run.
	SoakConfig = serve.SoakConfig
	// SoakResult reports a soak's decision-latency percentiles and
	// throughput.
	SoakResult = serve.SoakResult
	// LatencyHistogram is the wait-free fixed-footprint latency
	// histogram behind the soak percentiles (≤ 6.25% relative error).
	LatencyHistogram = metrics.LatencyHistogram
)

// NewServeController builds a decision service over pol.
func NewServeController(pol Policy, cfg ServeConfig) *ServeController {
	return serve.NewController(pol, cfg)
}

// NewServeRecorder returns a recorder anchored at epoch; feed it from
// a serving path (or PlatformConfig.Recorder) and write the captured
// stream out with WriteBundle for later what-if replay.
func NewServeRecorder(epoch time.Time) *ServeRecorder { return serve.NewRecorder(epoch) }

// WriteTraceBundle writes tr as a versioned incident bundle (JSON
// header + dataset-codec invocation rows).
func WriteTraceBundle(w io.Writer, name string, tr *Trace) error {
	return serve.WriteTraceBundle(w, name, tr)
}

// ReadBundle parses an incident bundle into its header and a
// materialized trace.
func ReadBundle(r io.Reader) (BundleMeta, *Trace, error) { return serve.ReadBundle(r) }

// StreamBundle opens an incident bundle as a constant-memory trace
// source (also available as the "bundle:path" scenario source).
func StreamBundle(r io.Reader) (BundleMeta, TraceSource, error) { return serve.StreamBundle(r) }

// ReplayBundle re-simulates a captured incident bundle against
// candidate policy specs — one sweep cell per spec, default coldstart
// and waste sinks — answering "which policy would have held up under
// this traffic?".
func ReplayBundle(ctx context.Context, r io.Reader, policySpecs []string, opts ...ScenarioOption) (*SweepReport, BundleMeta, error) {
	return replay.ReplayBundle(ctx, r, policySpecs, opts...)
}

// RunSoak drives a fresh decision service at sustained concurrency
// and reports decision-latency percentiles and throughput (the
// cmd/soakbench entry point, embeddable).
func RunSoak(ctx context.Context, cfg SoakConfig) (*SoakResult, error) { return serve.Soak(ctx, cfg) }

// NewLatencyHistogram returns an empty latency histogram.
func NewLatencyHistogram() *LatencyHistogram { return metrics.NewLatencyHistogram() }

// Experiments.
type (
	// ExperimentConfig parameterizes a full figure-regeneration run.
	ExperimentConfig = experiments.Config
	// Figure is one regenerated table/figure.
	Figure = experiments.Figure
)

// RunExperimentsContext regenerates every evaluation figure,
// honoring cancellation between figures and inside the platform
// replay.
func RunExperimentsContext(ctx context.Context, cfg ExperimentConfig, progress io.Writer) ([]*Figure, error) {
	return experiments.RunAll(ctx, cfg, progress)
}

// RunExperiments is RunExperimentsContext with a background context
// (pre-redesign signature).
func RunExperiments(cfg ExperimentConfig, progress io.Writer) ([]*Figure, error) {
	return experiments.RunAll(context.Background(), cfg, progress)
}

// RenderFigures writes text renderings of figures to w.
func RenderFigures(figs []*Figure, w io.Writer) { experiments.RenderAll(figs, w) }

// Scenarios and sweeps: the declarative configuration path. A
// Scenario makes a whole run — source, policy, cluster shape, sinks,
// sharding — one serializable value built on the component registries
// (policy specs, placement specs, source specs, sink specs); a Grid
// expands list-valued fields into the cells of a sweep and RunSweep
// executes them concurrently, bit-identical to running each expanded
// scenario sequentially.
type (
	// Scenario is one fully-described run (see ParseScenario).
	Scenario = scenario.Scenario
	// ScenarioCluster is a scenario's cluster section.
	ScenarioCluster = scenario.ClusterSpec
	// ScenarioGrid is a declarative sweep: base scenario + axes.
	ScenarioGrid = scenario.Grid
	// ScenarioAxis is one list-valued field of a grid.
	ScenarioAxis = scenario.Axis
	// ScenarioResult is one executed scenario's drained sinks.
	ScenarioResult = scenario.CellResult
	// ScenarioMetric is one named summary value of a run.
	ScenarioMetric = scenario.Metric
	// ScenarioSink aggregates a run and reports named metrics.
	ScenarioSink = scenario.Sink
	// ScenarioSourceFactory produces fresh trace sources for a spec.
	ScenarioSourceFactory = scenario.SourceFactory
	// SweepReport is the outcome of RunSweep (CSV/JSON renderable).
	SweepReport = scenario.SweepReport
	// ScenarioOption configures RunScenario / RunSweep.
	ScenarioOption = scenario.Option
	// ScenarioCellError is the per-cell failure RunSweep returns: it
	// carries the failing cell's index and canonical scenario, so
	// drivers can report exactly which cell of a sweep broke.
	ScenarioCellError = scenario.CellError
	// ClusterEvent is one timed chaos event of a cluster run
	// (fail/drain/join/resize), see ParseClusterEvents.
	ClusterEvent = cluster.Event
	// ClusterReplacer is the optional placement hook consulted when a
	// cluster event displaces apps from a node.
	ClusterReplacer = cluster.Replacer
)

// ParseClusterEvents parses a timed cluster event list
// ("fail@36h:node=3, join@48h:node=3, resize@72h:node=1&mem=2048");
// ClusterEventsString renders the canonical form back.
func ParseClusterEvents(s string) ([]ClusterEvent, error) { return cluster.ParseEvents(s) }

// ClusterEventsString renders an event list in the canonical
// comma-separated form accepted by ParseClusterEvents and the
// scenario key cluster.events.
func ClusterEventsString(evs []ClusterEvent) string { return cluster.EventsString(evs) }

// ParseScenario parses a scenario from the text grammar
// ("source=gen:apps=400; policy=hybrid?cv=2; cluster.nodes=8") or
// from JSON; Scenario.String renders the canonical text form back
// (parse → String → parse is the identity).
func ParseScenario(s string) (Scenario, error) { return scenario.ParseScenario(s) }

// ParseGrid parses a sweep grid: the scenario grammar with bracketed
// list values ("policy=[fixed?ka=10m,hybrid]; cluster.mem=[2048,4096]")
// or the JSON {"base", "axes", "cells"} form. A plain scenario parses
// as a 1-cell grid.
func ParseGrid(s string) (ScenarioGrid, error) { return scenario.ParseGrid(s) }

// RunScenario executes one scenario and returns its drained sinks.
func RunScenario(ctx context.Context, sc Scenario, opts ...ScenarioOption) (*ScenarioResult, error) {
	return scenario.RunScenario(ctx, sc, opts...)
}

// RunSweep executes expanded grid cells concurrently over a bounded
// worker pool, sharing materialized traces across cells with
// identical sources and merging fanned-out shard cells ("*/n") via
// the sinks' exact Merges. Results are bit-identical to running each
// cell sequentially through RunScenario.
func RunSweep(ctx context.Context, cells []Scenario, opts ...ScenarioOption) (*SweepReport, error) {
	return scenario.RunSweep(ctx, cells, opts...)
}

// RunSweepProcs executes a sweep like RunSweep, but each unit (a cell,
// or one shard of a fanned-out "*/n" cell) runs in its own worker
// process — this binary re-exec'd — up to procs concurrent. Binaries
// using it must call MaybeRunScenarioWorker first thing in main.
// Results are bit-identical to RunSweep over the same cells.
func RunSweepProcs(ctx context.Context, cells []Scenario, procs int, opts ...ScenarioOption) (*SweepReport, error) {
	return scenario.RunSweepProcs(ctx, cells, procs, opts...)
}

// MaybeRunScenarioWorker turns this process into a sweep worker if it
// was spawned as one by RunSweepProcs, and never returns in that case;
// otherwise it is a no-op.
func MaybeRunScenarioWorker() { scenario.MaybeRunWorker() }

// WithSweepWorkers bounds how many cells run concurrently (default
// GOMAXPROCS); the bound never changes results.
func WithSweepWorkers(n int) ScenarioOption { return scenario.WithSweepWorkers(n) }

// WithFixedTrace supplies an in-memory trace to every cell,
// overriding their Source specs — the bridge for callers that already
// hold a trace.
func WithFixedTrace(tr *Trace) ScenarioOption { return scenario.WithFixedTrace(tr) }

// RegisterScenarioSource extends the source-spec registry
// ("name:rest") with a custom trace source scheme.
func RegisterScenarioSource(name string, b scenario.SourceBuilder) { scenario.RegisterSource(name, b) }

// RegisterScenarioSink extends the sink-spec registry ("name?k=v")
// with a custom metric sink.
func RegisterScenarioSink(name string, b scenario.SinkBuilder) { scenario.RegisterSink(name, b) }

// ScenarioSourceNames returns the registered source schemes, sorted.
func ScenarioSourceNames() []string { return scenario.SourceNames() }

// ScenarioSinkNames returns the registered sink names, sorted.
func ScenarioSinkNames() []string { return scenario.SinkNames() }

// ScenarioLabels returns one compact label per scenario: the
// assignments that vary across the set.
func ScenarioLabels(cells []Scenario) []string { return scenario.Labels(cells) }
