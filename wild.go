// Package wild is the public API of this reproduction of "Serverless
// in the Wild: Characterizing and Optimizing the Serverless Workload
// at a Large Cloud Provider" (Shahrad et al., USENIX ATC 2020).
//
// It re-exports the building blocks a downstream user needs:
//
//   - workload generation calibrated to the paper's published
//     distributions (Figures 1-8), plus readers for the public
//     AzurePublicDataset CSV traces;
//   - the keep-alive policies: fixed keep-alive, no-unloading, and the
//     paper's hybrid histogram policy (range-limited idle-time
//     histogram + conservative fallback + ARIMA forecasting);
//   - the cold-start simulator of §5.1 and the metrics of §5.2;
//   - an in-process OpenWhisk-analogue FaaS platform with a trace
//     replayer for §5.3-style end-to-end experiments;
//   - the experiment harness regenerating every evaluation figure.
//
// Quick start:
//
//	pop, _ := wild.Generate(wild.WorkloadConfig{Seed: 1, NumApps: 200})
//	res := wild.Simulate(pop.Trace, wild.NewHybrid(wild.DefaultHybridConfig()))
//	fmt.Println(wild.ThirdQuartileColdPercent(res))
package wild

import (
	"io"

	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/platform"
	"repro/internal/policy"
	"repro/internal/replay"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Trace model.
type (
	// Trace is a workload trace: applications and their invocations.
	Trace = trace.Trace
	// App is one application (the unit of keep-alive decisions).
	App = trace.App
	// Function is one serverless function.
	Function = trace.Function
	// TriggerType is one of the paper's seven trigger classes.
	TriggerType = trace.TriggerType
)

// Workload generation.
type (
	// WorkloadConfig parameterizes synthetic trace generation.
	WorkloadConfig = workload.Config
	// Population is a generated workload with metadata.
	Population = workload.Population
)

// Generate builds a synthetic population calibrated to the paper's
// published workload distributions.
func Generate(cfg WorkloadConfig) (*Population, error) { return workload.Generate(cfg) }

// ReadInvocationsCSV parses an AzurePublicDataset-style invocation
// table (real sanitized traces drop in here).
func ReadInvocationsCSV(r io.Reader) (*Trace, error) { return trace.ReadInvocationsCSV(r) }

// WriteInvocationsCSV writes a trace in the dataset's CSV schema.
func WriteInvocationsCSV(w io.Writer, tr *Trace) error { return trace.WriteInvocationsCSV(w, tr) }

// Policies.
type (
	// Policy decides keep-alive and pre-warming windows per app.
	Policy = policy.Policy
	// Decision is one policy verdict (pre-warm + keep-alive windows).
	Decision = policy.Decision
	// HybridConfig parameterizes the hybrid histogram policy.
	HybridConfig = policy.HybridConfig
	// FixedKeepAlive is the provider state-of-practice baseline.
	FixedKeepAlive = policy.FixedKeepAlive
	// NoUnloading keeps everything warm forever (cost upper bound).
	NoUnloading = policy.NoUnloading
)

// DefaultHybridConfig returns the paper's default parameters: 4-hour
// 1-minute-bin histogram, [5,99] percentile cutoffs, 10% margin, CV
// threshold 2, 15% ARIMA margin.
func DefaultHybridConfig() HybridConfig { return policy.DefaultHybridConfig() }

// NewHybrid constructs the paper's hybrid histogram policy.
func NewHybrid(cfg HybridConfig) Policy { return policy.NewHybrid(cfg) }

// Simulation.
type (
	// SimOptions configures the cold-start simulator.
	SimOptions = sim.Options
	// SimResult is a per-app simulation outcome set.
	SimResult = sim.Result
)

// Simulate runs pol over tr with default options.
func Simulate(tr *Trace, pol Policy) *SimResult {
	return sim.Simulate(tr, pol, sim.Options{})
}

// SimulateOpts runs pol over tr with explicit options.
func SimulateOpts(tr *Trace, pol Policy, opt SimOptions) *SimResult {
	return sim.Simulate(tr, pol, opt)
}

// ThirdQuartileColdPercent returns the 75th-percentile per-app cold
// start percentage, the paper's headline metric.
func ThirdQuartileColdPercent(r *SimResult) float64 {
	return metrics.ThirdQuartileColdPercent(r)
}

// NormalizedWastedMemory returns r's wasted memory as a percentage of
// baseline's (the paper normalizes to the 10-minute fixed policy).
func NormalizedWastedMemory(r, baseline *SimResult) float64 {
	return metrics.NormalizedWastedMemory(r, baseline)
}

// Platform (OpenWhisk analogue) and replay.
type (
	// PlatformConfig parameterizes the in-process FaaS cluster.
	PlatformConfig = platform.Config
	// Platform is the in-process FaaS cluster.
	Platform = platform.Platform
	// ReplayOptions configures trace replay against the platform.
	ReplayOptions = replay.Options
	// ReplayReport is the outcome of a replay.
	ReplayReport = replay.Report
)

// NewPlatform assembles an in-process FaaS cluster running pol.
func NewPlatform(cfg PlatformConfig, pol Policy) *Platform {
	return platform.NewPlatform(cfg, pol)
}

// NewScaledClock returns a clock running scale× real time, for
// replaying hours of trace in seconds.
func NewScaledClock(scale float64) platform.Clock { return platform.NewScaledClock(scale) }

// Replay fires tr's invocations at p and reports outcomes.
func Replay(p *Platform, tr *Trace, opt ReplayOptions) (*ReplayReport, error) {
	return replay.Replay(p, tr, opt)
}

// Experiments.
type (
	// ExperimentConfig parameterizes a full figure-regeneration run.
	ExperimentConfig = experiments.Config
	// Figure is one regenerated table/figure.
	Figure = experiments.Figure
)

// RunExperiments regenerates every evaluation figure.
func RunExperiments(cfg ExperimentConfig, progress io.Writer) ([]*Figure, error) {
	return experiments.RunAll(cfg, progress)
}

// RenderFigures writes text renderings of figures to w.
func RenderFigures(figs []*Figure, w io.Writer) { experiments.RenderAll(figs, w) }
