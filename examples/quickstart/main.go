// Quickstart: generate a calibrated workload, simulate the paper's
// hybrid histogram policy against the 10-minute fixed keep-alive, and
// print the headline comparison (3rd-quartile cold starts and wasted
// memory normalized to the fixed baseline).
package main

import (
	"fmt"
	"log"
	"time"

	wild "repro"
)

func main() {
	log.SetFlags(0)

	pop, err := wild.Generate(wild.WorkloadConfig{
		Seed:     1,
		NumApps:  300,
		Duration: 3 * 24 * time.Hour,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %d apps, %d functions, %d invocations over %v\n\n",
		len(pop.Trace.Apps), pop.Trace.TotalFunctions(),
		pop.Trace.TotalInvocations(), pop.Trace.Duration)

	fixed := wild.Simulate(pop.Trace, wild.FixedKeepAlive{KeepAlive: 10 * time.Minute})
	hybrid := wild.Simulate(pop.Trace, wild.NewHybrid(wild.DefaultHybridConfig()))

	fmt.Printf("%-24s  coldQ3=%6.2f%%  wastedMem=%6.1f%%\n",
		fixed.Policy, wild.ThirdQuartileColdPercent(fixed), 100.0)
	fmt.Printf("%-24s  coldQ3=%6.2f%%  wastedMem=%6.1f%%\n",
		hybrid.Policy, wild.ThirdQuartileColdPercent(hybrid),
		wild.NormalizedWastedMemory(hybrid, fixed))

	ratio := wild.ThirdQuartileColdPercent(fixed) / wild.ThirdQuartileColdPercent(hybrid)
	fmt.Printf("\nthe hybrid policy cuts 3rd-quartile cold starts by %.1fx\n", ratio)
	fmt.Println("(the paper reports ~2.5x at equal memory on the production trace)")
}
