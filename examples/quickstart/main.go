// Quickstart: generate a calibrated workload, simulate the paper's
// hybrid histogram policy against the 10-minute fixed keep-alive
// through the streaming Run API, and print the headline comparison
// (3rd-quartile cold starts and wasted memory normalized to the fixed
// baseline). Policies come from the registry's spec language; results
// flow through streaming sinks, so the same code handles traces too
// large to materialize.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	wild "repro"
)

func main() {
	log.SetFlags(0)
	ctx := context.Background()

	pop, err := wild.Generate(wild.WorkloadConfig{
		Seed:     1,
		NumApps:  300,
		Duration: 3 * 24 * time.Hour,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %d apps, %d functions, %d invocations over %v\n\n",
		len(pop.Trace.Apps), pop.Trace.TotalFunctions(),
		pop.Trace.TotalInvocations(), pop.Trace.Duration)

	// One streaming pass per policy: the cold-start distribution and
	// wasted-memory totals accumulate incrementally in sinks.
	run := func(spec string) (*wild.ColdStartSink, *wild.WastedMemorySink, string) {
		pol := wild.MustFromSpec(spec)
		cold := wild.NewColdStartSink()
		wasted := wild.NewWastedMemorySink()
		if _, err := wild.Run(ctx, wild.SourceFromTrace(pop.Trace), pol,
			wild.WithSink(cold), wild.WithSink(wasted)); err != nil {
			log.Fatal(err)
		}
		return cold, wasted, pol.Name()
	}

	fixedCold, fixedWasted, fixedName := run("fixed?ka=10m")
	hybridCold, hybridWasted, hybridName := run("hybrid")

	fmt.Printf("%-24s  coldQ3=%6.2f%%  wastedMem=%6.1f%%\n",
		fixedName, fixedCold.ThirdQuartile(), 100.0)
	fmt.Printf("%-24s  coldQ3=%6.2f%%  wastedMem=%6.1f%%\n",
		hybridName, hybridCold.ThirdQuartile(),
		hybridWasted.NormalizedTo(fixedWasted.TotalWastedSeconds()))

	ratio := fixedCold.ThirdQuartile() / hybridCold.ThirdQuartile()
	fmt.Printf("\nthe hybrid policy cuts 3rd-quartile cold starts by %.1fx\n", ratio)
	fmt.Println("(the paper reports ~2.5x at equal memory on the production trace)")
}
