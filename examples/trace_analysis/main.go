// Trace analysis: characterize a workload the way §3 of the paper
// characterizes Azure Functions — app sizes, trigger mix, invocation
// rates, IAT variability, execution times and memory — and print the
// regenerated Figures 1-8. Point it at an AzurePublicDataset
// invocations CSV with -trace to characterize the real sanitized
// trace instead of a synthetic one.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)

	tracePath := flag.String("trace", "", "optional invocations CSV to characterize")
	flag.Parse()

	var pop *workload.Population
	if *tracePath != "" {
		f, err := os.Open(*tracePath)
		if err != nil {
			log.Fatal(err)
		}
		// Characterization needs the whole population, so the streamed
		// apps are collected; simulation-only consumers would instead
		// pass the source straight to wild.Run and stay constant-memory.
		src, err := trace.StreamInvocationsCSV(f)
		if err != nil {
			log.Fatal(err)
		}
		tr, err := trace.Collect(src)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		// Wrap the real trace: rate metadata comes from realized counts.
		pop = &workload.Population{Trace: tr}
		days := tr.Duration.Hours() / 24
		for _, app := range tr.Apps {
			m := workload.AppMeta{}
			for _, fn := range app.Functions {
				fm := workload.FnMeta{
					DailyRate: float64(len(fn.Invocations)) / days,
					Trigger:   fn.Trigger,
				}
				m.Functions = append(m.Functions, fm)
				m.DailyRate += fm.DailyRate
			}
			pop.Meta = append(pop.Meta, m)
		}
	} else {
		var err error
		pop, err = workload.Generate(workload.Config{
			Seed: 3, NumApps: 500, Duration: 7 * 24 * time.Hour,
			MaxDailyRate: 2000, MaxEventsPerFunction: 20000,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("characterizing a synthetic 500-app, 7-day workload")
	}

	figs := []*experiments.Figure{
		experiments.Figure1(pop),
		experiments.Figure2(pop),
		experiments.Figure3(pop),
		experiments.Figure4(pop),
		experiments.Figure5(pop),
		experiments.Figure6(pop),
		experiments.Figure7(pop),
		experiments.Figure8(pop),
	}
	fmt.Println()
	experiments.RenderAll(figs, os.Stdout)
}
