// Cluster capacity sweep: run the paper's hybrid policy (and the
// fixed 10-minute baseline) on a finite-memory cluster while node
// memory shrinks, and watch the frontier the infinite-memory
// evaluation cannot express — tighter memory, more pressure
// evictions, more cold starts the policy never predicted. The last
// row (mem=inf) is bit-identical to the plain simulator; every
// degradation above it is attributable to capacity, not to the
// policy.
package main

import (
	"fmt"
	"log"
	"time"

	wild "repro"
)

func main() {
	log.SetFlags(0)

	pop, err := wild.Generate(wild.WorkloadConfig{
		Seed:     21,
		NumApps:  200,
		Duration: 24 * time.Hour,
	})
	if err != nil {
		log.Fatal(err)
	}
	tr := pop.Trace

	const nodes = 8
	capacities := []float64{512, 1024, 2048, 4096, 8192, 0} // MB per node; 0 = infinite

	for _, spec := range []string{"hybrid", "fixed?ka=10m"} {
		pol := wild.MustFromSpec(spec)
		fmt.Printf("policy %s on %d nodes (placement: least-loaded)\n", pol.Name(), nodes)
		fmt.Printf("%10s %12s %12s %12s %12s %10s %9s\n",
			"mem(MB)", "cold(%)", "coldQ3(%)", "coldP99(%)", "evictCold(%)", "evictions", "util(%)")
		for _, capMB := range capacities {
			place, err := wild.NewPlacement("least-loaded")
			if err != nil {
				log.Fatal(err)
			}
			res := wild.SimulateCluster(tr, pol, wild.ClusterConfig{
				Nodes:     nodes,
				NodeMemMB: capMB,
				Placement: place,
			})
			attr := wild.NewClusterAttributionSink()
			cold := wild.NewColdStartSink()
			for i, a := range res.Apps {
				attr.Consume(i, a)
				cold.Consume(i, a.AppResult)
			}
			memLabel := "inf"
			if capMB > 0 {
				memLabel = fmt.Sprintf("%.0f", capMB)
			}
			coldPct := 0.0
			if n := res.TotalInvocations(); n > 0 {
				coldPct = 100 * float64(res.TotalColdStarts()) / float64(n)
			}
			fmt.Printf("%10s %12.2f %12.2f %12.2f %12.2f %10d %9.1f\n",
				memLabel, coldPct, cold.ThirdQuartile(), cold.Quantile(99),
				attr.EvictionColdPercent(), attr.Evictions(),
				wild.MeanClusterUtilizationPct(res))
		}
		fmt.Println()
	}
}
