// Cluster capacity sweep: run the paper's hybrid policy (and the
// fixed 10-minute baseline) on a finite-memory cluster while node
// memory shrinks, and watch the frontier the infinite-memory
// evaluation cannot express — tighter memory, more pressure
// evictions, more cold starts the policy never predicted. The last
// row (mem=inf) is bit-identical to the plain simulator; every
// degradation above it is attributable to capacity, not to the
// policy.
//
// The sweep is one Grid — policy × node memory over a shared
// generator source — so the whole experiment is two axes and a print
// loop; the engine materializes the trace once and runs the cells
// concurrently.
package main

import (
	"context"
	"fmt"
	"log"

	wild "repro"
)

func main() {
	log.SetFlags(0)

	const nodes = 8
	policies := []string{"hybrid", "fixed?ka=10m"}
	capacities := []string{"512", "1024", "2048", "4096", "8192", "0"} // MB per node; 0 = infinite

	cells, err := wild.ScenarioGrid{
		Base: wild.Scenario{
			Source: "gen:apps=200&days=1&seed=21",
			Cluster: &wild.ScenarioCluster{
				Nodes:     nodes,
				Placement: "least-loaded",
			},
			Sinks: []string{"coldstart?q=50:75:99", "waste", "attribution", "util"},
		},
		Axes: []wild.ScenarioAxis{
			{Key: "policy", Values: policies},
			{Key: "cluster.mem", Values: capacities},
		},
	}.Scenarios()
	if err != nil {
		log.Fatal(err)
	}
	rep, err := wild.RunSweep(context.Background(), cells)
	if err != nil {
		log.Fatal(err)
	}

	cell := 0
	for range policies {
		fmt.Printf("policy %s on %d nodes (placement: least-loaded)\n",
			rep.Cells[cell].PolicyName, nodes)
		fmt.Printf("%10s %12s %12s %12s %12s %10s %9s\n",
			"mem(MB)", "cold(%)", "coldQ3(%)", "coldP99(%)", "evictCold(%)", "evictions", "util(%)")
		for _, capMB := range capacities {
			c := rep.Cells[cell]
			cell++
			memLabel := "inf"
			if capMB != "0" {
				memLabel = capMB
			}
			metric := func(name string) float64 {
				v, _ := c.Metric(name)
				return v
			}
			coldPct := 0.0
			if inv := metric("invocations"); inv > 0 {
				coldPct = 100 * metric("cold_starts") / inv
			}
			fmt.Printf("%10s %12.2f %12.2f %12.2f %12.2f %10.0f %9.1f\n",
				memLabel, coldPct, metric("cold_p75"), metric("cold_p99"),
				metric("evict_cold_pct"), metric("evictions"), metric("util_pct"))
		}
		fmt.Println()
	}
}
