// Platform replay: boot the in-process OpenWhisk-analogue cluster on
// an accelerated clock, replay a mid-popularity slice of a workload
// under the fixed and hybrid policies, and compare cold starts, worker
// memory and latency — the paper's §5.3 experiment in miniature.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	wild "repro"

	"repro/internal/replay"
)

func main() {
	log.SetFlags(0)
	// Replays run in (scaled) real time; Ctrl-C cancels mid-flight.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	pop, err := wild.Generate(wild.WorkloadConfig{
		Seed:                 11,
		NumApps:              150,
		Duration:             24 * time.Hour,
		MaxDailyRate:         400,
		MaxEventsPerFunction: 500,
	})
	if err != nil {
		log.Fatal(err)
	}
	// The paper replays 68 mid-popularity apps for 8 hours; we replay a
	// smaller slice at 3600x so the example finishes in seconds.
	sel := replay.SelectMidPopularity(pop.Trace, 24, 1)
	window := 2 * time.Hour

	run := func(pol wild.Policy) *wild.ReplayReport {
		p := wild.NewPlatform(wild.PlatformConfig{
			NumInvokers: 4,
			Clock:       wild.NewScaledClock(3600),
		}, pol)
		defer p.Stop()
		rep, err := wild.ReplayContext(ctx, p, sel, wild.ReplayOptions{
			Limit: window, UseExecTime: true, Concurrency: 128,
		})
		if err != nil {
			log.Fatal(err)
		}
		return rep
	}

	fmt.Printf("replaying %d apps for %v of trace time (3600x real time)...\n\n",
		len(sel.Apps), window)
	fixed := run(wild.MustFromSpec("fixed?ka=10m"))
	hybrid := run(wild.MustFromSpec("hybrid"))

	show := func(name string, r *wild.ReplayReport) {
		var cold, inv int
		for _, a := range r.Apps {
			cold += a.ColdStarts
			inv += a.Invocations
		}
		fmt.Printf("%-18s invocations=%5d  cold=%4d (%.1f%%)  meanLat=%8v  p99Lat=%8v  workerMem=%.0f MB·s\n",
			name, inv, cold, 100*float64(cold)/float64(inv),
			r.MeanLatency.Round(time.Millisecond), r.P99Latency.Round(time.Millisecond),
			r.Cluster.MemoryMBSeconds)
	}
	show("fixed (10-min)", fixed)
	show("hybrid", hybrid)

	if fixed.Cluster.MemoryMBSeconds > 0 {
		fmt.Printf("\nworker memory reduction: %.1f%% (paper: 15.6%%)\n",
			100*(1-hybrid.Cluster.MemoryMBSeconds/fixed.Cluster.MemoryMBSeconds))
	}
	fmt.Printf("hybrid policy decision overhead: %v mean (paper: 835.7us in Scala)\n",
		hybrid.PolicyOverheadMean)
}
