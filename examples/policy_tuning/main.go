// Policy tuning: sweep the hybrid policy's histogram range, cutoff
// percentiles and CV threshold over one workload, and print the
// (cold starts, wasted memory) trade-off table — the §5.2 sensitivity
// studies (Figures 15, 16 and 18) in miniature.
package main

import (
	"fmt"
	"log"
	"time"

	wild "repro"
)

func main() {
	log.SetFlags(0)

	pop, err := wild.Generate(wild.WorkloadConfig{
		Seed:     7,
		NumApps:  300,
		Duration: 3 * 24 * time.Hour,
	})
	if err != nil {
		log.Fatal(err)
	}
	tr := pop.Trace
	base := wild.Simulate(tr, wild.FixedKeepAlive{KeepAlive: 10 * time.Minute})
	row := func(name string, pol wild.Policy) {
		r := wild.Simulate(tr, pol)
		fmt.Printf("%-26s  coldQ3=%6.2f%%  wastedMem=%7.2f%%\n",
			name, wild.ThirdQuartileColdPercent(r), wild.NormalizedWastedMemory(r, base))
	}

	fmt.Println("— histogram range sweep (Figure 15) —")
	for _, rng := range []time.Duration{time.Hour, 2 * time.Hour, 4 * time.Hour} {
		cfg := wild.DefaultHybridConfig()
		cfg.Histogram.NumBins = int(rng / cfg.Histogram.BinWidth)
		row(fmt.Sprintf("hybrid range=%v", rng), wild.NewHybrid(cfg))
	}

	fmt.Println("\n— cutoff percentile sweep (Figure 16) —")
	for _, c := range []struct{ head, tail float64 }{{0, 100}, {5, 99}, {5, 95}} {
		cfg := wild.DefaultHybridConfig()
		cfg.Histogram.HeadPercentile = c.head
		cfg.Histogram.TailPercentile = c.tail
		row(fmt.Sprintf("hybrid cutoffs [%g,%g]", c.head, c.tail), wild.NewHybrid(cfg))
	}

	fmt.Println("\n— CV threshold sweep (Figure 18) —")
	for _, cv := range []float64{0, 2, 10} {
		cfg := wild.DefaultHybridConfig()
		cfg.CVThreshold = cv
		row(fmt.Sprintf("hybrid CV threshold=%g", cv), wild.NewHybrid(cfg))
	}

	fmt.Println("\n— fixed keep-alive reference points —")
	for _, ka := range []time.Duration{10 * time.Minute, time.Hour, 2 * time.Hour} {
		row(fmt.Sprintf("fixed keep-alive=%v", ka), wild.FixedKeepAlive{KeepAlive: ka})
	}
}
