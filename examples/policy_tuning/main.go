// Policy tuning: sweep the hybrid policy's histogram range, cutoff
// percentiles and CV threshold over one workload, and print the
// (cold starts, wasted memory) trade-off table — the §5.2 sensitivity
// studies (Figures 15, 16 and 18) in miniature. The whole sweep is
// one Grid: a shared generator source, a policy axis, and the
// baseline for normalization — every variant is data, the engine
// materializes the trace once and runs the cells concurrently.
package main

import (
	"context"
	"fmt"
	"log"

	wild "repro"
)

const source = "gen:apps=300&days=3&seed=7"

func main() {
	log.SetFlags(0)

	sweeps := []struct {
		title string
		specs []string
	}{
		{"histogram range sweep (Figure 15)", []string{
			"hybrid?range=1h", "hybrid?range=2h", "hybrid?range=4h",
		}},
		{"cutoff percentile sweep (Figure 16)", []string{
			"hybrid?head=0&tail=100", "hybrid?head=5&tail=99", "hybrid?head=5&tail=95",
		}},
		{"CV threshold sweep (Figure 18)", []string{
			"hybrid?cv=0", "hybrid?cv=2", "hybrid?cv=10",
		}},
		{"fixed keep-alive reference points", []string{
			"fixed?ka=10m", "fixed?ka=1h", "fixed?ka=2h",
		}},
	}

	// One grid covers every section: the baseline is cell 0 and each
	// distinct spec appears once (the sections index into the cells).
	policyAxis := []string{"fixed?ka=10m"}
	cellOf := map[string]int{"fixed?ka=10m": 0}
	for _, s := range sweeps {
		for _, spec := range s.specs {
			if _, dup := cellOf[spec]; !dup {
				cellOf[spec] = len(policyAxis)
				policyAxis = append(policyAxis, spec)
			}
		}
	}
	cells, err := wild.ScenarioGrid{
		Base: wild.Scenario{Source: source, Sinks: []string{"coldstart", "waste"}},
		Axes: []wild.ScenarioAxis{{Key: "policy", Values: policyAxis}},
	}.Scenarios()
	if err != nil {
		log.Fatal(err)
	}
	rep, err := wild.RunSweep(context.Background(), cells)
	if err != nil {
		log.Fatal(err)
	}
	baseWasted, _ := rep.Cells[0].Metric("wasted_seconds")

	for i, s := range sweeps {
		if i > 0 {
			fmt.Println()
		}
		fmt.Printf("— %s —\n", s.title)
		for _, spec := range s.specs {
			c := rep.Cells[cellOf[spec]]
			q3, _ := c.Metric("cold_p75")
			wasted, _ := c.Metric("wasted_seconds")
			wm := 0.0
			if baseWasted > 0 {
				wm = 100 * wasted / baseWasted
			}
			fmt.Printf("%-34s  coldQ3=%6.2f%%  wastedMem=%7.2f%%\n", spec, q3, wm)
		}
	}
}
