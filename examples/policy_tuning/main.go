// Policy tuning: sweep the hybrid policy's histogram range, cutoff
// percentiles and CV threshold over one workload, and print the
// (cold starts, wasted memory) trade-off table — the §5.2 sensitivity
// studies (Figures 15, 16 and 18) in miniature. Every variant is a
// registry spec string, so the whole sweep is data, not plumbing.
package main

import (
	"fmt"
	"log"
	"time"

	wild "repro"
)

func main() {
	log.SetFlags(0)

	pop, err := wild.Generate(wild.WorkloadConfig{
		Seed:     7,
		NumApps:  300,
		Duration: 3 * 24 * time.Hour,
	})
	if err != nil {
		log.Fatal(err)
	}
	tr := pop.Trace
	base := wild.Simulate(tr, wild.MustFromSpec("fixed?ka=10m"))
	row := func(spec string) {
		pol, err := wild.FromSpec(spec)
		if err != nil {
			log.Fatal(err)
		}
		r := wild.Simulate(tr, pol)
		fmt.Printf("%-34s  coldQ3=%6.2f%%  wastedMem=%7.2f%%\n",
			spec, wild.ThirdQuartileColdPercent(r), wild.NormalizedWastedMemory(r, base))
	}

	sweeps := []struct {
		title string
		specs []string
	}{
		{"histogram range sweep (Figure 15)", []string{
			"hybrid?range=1h", "hybrid?range=2h", "hybrid?range=4h",
		}},
		{"cutoff percentile sweep (Figure 16)", []string{
			"hybrid?head=0&tail=100", "hybrid?head=5&tail=99", "hybrid?head=5&tail=95",
		}},
		{"CV threshold sweep (Figure 18)", []string{
			"hybrid?cv=0", "hybrid?cv=2", "hybrid?cv=10",
		}},
		{"fixed keep-alive reference points", []string{
			"fixed?ka=10m", "fixed?ka=1h", "fixed?ka=2h",
		}},
	}
	for i, s := range sweeps {
		if i > 0 {
			fmt.Println()
		}
		fmt.Printf("— %s —\n", s.title)
		for _, spec := range s.specs {
			row(spec)
		}
	}
}
