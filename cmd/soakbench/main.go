// Command soakbench drives the serving control plane
// (internal/serve) at sustained high concurrency and reports
// decision-latency percentiles and throughput — the serving
// counterpart of cmd/benchreport's micro-benchmarks, and the CI soak
// smoke gate.
//
// Usage:
//
//	go run ./cmd/soakbench [-policy hybrid] [-apps 512] [-workers N]
//	    [-duration 3s] [-shards 32] [-meanidle 2m] [-seed 1]
//	    [-record out.bundle] [-assert-p99 0]
//
// The JSON result goes to stdout; a human summary to stderr. With
// -assert-p99 the run exits non-zero when the p99 decision latency
// exceeds the bound (CI regression gate). With -record the driven
// stream is written out as an incident bundle, replayable with
// coldsim ("source=bundle:out.bundle") or replay.ReplayBundle.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"repro/internal/serve"
)

func main() {
	var cfg serve.SoakConfig
	flag.StringVar(&cfg.PolicySpec, "policy", "hybrid", "policy spec to serve")
	flag.IntVar(&cfg.Apps, "apps", 512, "distinct apps driven")
	flag.IntVar(&cfg.Workers, "workers", 0, "concurrent drivers (0 = 2×GOMAXPROCS)")
	flag.DurationVar(&cfg.Duration, "duration", 3*time.Second, "wall-clock soak length")
	flag.IntVar(&cfg.Shards, "shards", 0, "controller lock shards (0 = default)")
	flag.DurationVar(&cfg.MeanIdle, "meanidle", 2*time.Minute, "mean synthetic inter-arrival gap")
	flag.Uint64Var(&cfg.Seed, "seed", 1, "arrival randomness seed")
	record := flag.String("record", "", "write the driven stream as an incident bundle")
	assertP99 := flag.Duration("assert-p99", 0, "fail if p99 decision latency exceeds this (0 = off)")
	flag.Parse()

	if *record != "" {
		f, err := os.Create(*record)
		if err != nil {
			fmt.Fprintln(os.Stderr, "soakbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		cfg.Record = f
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	res, err := serve.Soak(ctx, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "soakbench:", err)
		os.Exit(1)
	}

	fmt.Fprintf(os.Stderr,
		"soakbench: %s  %d workers / %d apps  %.0f decisions/s  p50 %v  p99 %v  p99.9 %v\n",
		res.Policy, res.Workers, res.Apps, res.ThroughputPerSec, res.P50, res.P99, res.P999)
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "\t")
	if err := enc.Encode(res); err != nil {
		fmt.Fprintln(os.Stderr, "soakbench:", err)
		os.Exit(1)
	}
	if *assertP99 > 0 && res.P99 > *assertP99 {
		fmt.Fprintf(os.Stderr, "soakbench: p99 %v exceeds bound %v\n", res.P99, *assertP99)
		os.Exit(1)
	}
}
