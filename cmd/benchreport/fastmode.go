package main

import (
	"fmt"
	"os"
	"time"

	"repro/internal/equiv"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/workload"
)

// fastSpecStr is the fast-lane policy spec the fastmode section
// measures against the exact default — the same lane
// BenchmarkSimulatorHybridFast runs.
const fastSpecStr = "hybrid?exact=off&refit=1m"

// FastMode is the exact-vs-fast section of the report: the measured
// speedup of the opt-in fast lane over the exact lane on the shared
// simulator benchmark, and the decision flip rate the speedup costs,
// measured by the equivalence harness over the benchmark population.
type FastMode struct {
	ExactSpec    string  `json:"exact_spec"`
	FastSpec     string  `json:"fast_spec"`
	ExactNsPerOp float64 `json:"exact_ns_per_op"`
	FastNsPerOp  float64 `json:"fast_ns_per_op"`
	Speedup      float64 `json:"speedup"`
	Invocations  int64   `json:"invocations"`
	Flips        int64   `json:"flips"`
	FlipRate     float64 `json:"flip_rate"`
}

// fastModeSection builds the fastmode section when the run measured
// both lanes of the simulator benchmark; otherwise (narrower -bench
// regexp) it returns nil and the section is omitted. The flip rate
// comes from internal/equiv over the same population bench_test.go
// uses, so the recorded speedup and its divergence cost describe the
// same workload.
func fastModeSection(entries map[string]Entry) *FastMode {
	exact, okE := entries["BenchmarkSimulatorHybrid"]
	fast, okF := entries["BenchmarkSimulatorHybridFast"]
	if !okE || !okF || fast.NsPerOp <= 0 {
		return nil
	}
	fm := &FastMode{
		ExactSpec:    "hybrid",
		FastSpec:     fastSpecStr,
		ExactNsPerOp: exact.NsPerOp,
		FastNsPerOp:  fast.NsPerOp,
		Speedup:      exact.NsPerOp / fast.NsPerOp,
	}

	// The same workload the simulator benchmarks measure.
	pop, err := workload.Generate(workload.Config{
		Seed: 2024, NumApps: 300, Duration: 3 * 24 * time.Hour,
		MaxDailyRate: 1000, MaxEventsPerFunction: 8000,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchreport: fastmode population:", err)
		os.Exit(1)
	}
	rep := equiv.CompareTrace("bench-population", pop.Trace,
		policy.NewHybrid(policy.DefaultHybridConfig()),
		policy.MustFromSpec(fastSpecStr), sim.Options{})
	fm.Invocations = rep.Invocations
	fm.Flips = rep.Flips
	fm.FlipRate = rep.FlipRate()
	return fm
}
