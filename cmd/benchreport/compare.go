package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
)

// CompareEntry is one benchmark's old-vs-new measurement in a
// -compare run. DeltaPct is (new-old)/old in percent; positive means
// the new snapshot is slower.
type CompareEntry struct {
	Name       string  `json:"name"`
	OldNsPerOp float64 `json:"old_ns_per_op"`
	NewNsPerOp float64 `json:"new_ns_per_op"`
	DeltaPct   float64 `json:"delta_pct"`
	Regression bool    `json:"regression"`
}

// Comparison is the -compare report: every benchmark present in both
// snapshots, plus the names only one side has (informational — a
// benchmark appearing or retiring is not a regression).
type Comparison struct {
	Old          string         `json:"old"`
	New          string         `json:"new"`
	ThresholdPct float64        `json:"threshold_pct"`
	Entries      []CompareEntry `json:"entries"`
	OnlyOld      []string       `json:"only_old,omitempty"`
	OnlyNew      []string       `json:"only_new,omitempty"`
	Regressions  int            `json:"regressions"`
}

// runCompare loads two BENCH_<n>.json snapshots, diffs their ns/op
// entries against the threshold, renders the result (table or JSON)
// and returns the process exit code: nonzero iff any shared benchmark
// regressed by more than the threshold.
func runCompare(oldPath, newPath string, thresholdPct float64, format string) int {
	oldRep, err := loadReport(oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchreport: -compare:", err)
		return 2
	}
	newRep, err := loadReport(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchreport: -compare:", err)
		return 2
	}

	cmp := compareReports(oldPath, newPath, oldRep, newRep, thresholdPct)

	switch format {
	case "json":
		data, err := json.MarshalIndent(cmp, "", "\t")
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchreport: -compare:", err)
			return 2
		}
		fmt.Println(string(data))
	case "table":
		printComparison(cmp)
	default:
		fmt.Fprintf(os.Stderr, "benchreport: -compare: unknown -format %q (want table or json)\n", format)
		return 2
	}

	if cmp.Regressions > 0 {
		fmt.Fprintf(os.Stderr, "benchreport: %d benchmark(s) regressed beyond %.1f%% (%s -> %s)\n",
			cmp.Regressions, thresholdPct, oldPath, newPath)
		return 1
	}
	return 0
}

// compareReports pairs the two snapshots' entries and marks every
// shared benchmark whose ns/op grew past the threshold.
func compareReports(oldPath, newPath string, oldRep, newRep *Report, thresholdPct float64) *Comparison {
	cmp := &Comparison{Old: oldPath, New: newPath, ThresholdPct: thresholdPct}
	for name, oe := range oldRep.Entries {
		ne, ok := newRep.Entries[name]
		if !ok {
			cmp.OnlyOld = append(cmp.OnlyOld, name)
			continue
		}
		e := CompareEntry{Name: name, OldNsPerOp: oe.NsPerOp, NewNsPerOp: ne.NsPerOp}
		if oe.NsPerOp > 0 {
			e.DeltaPct = 100 * (ne.NsPerOp - oe.NsPerOp) / oe.NsPerOp
		} else if ne.NsPerOp > 0 {
			e.DeltaPct = math.Inf(1)
		}
		e.Regression = e.DeltaPct > thresholdPct
		if e.Regression {
			cmp.Regressions++
		}
		cmp.Entries = append(cmp.Entries, e)
	}
	for name := range newRep.Entries {
		if _, ok := oldRep.Entries[name]; !ok {
			cmp.OnlyNew = append(cmp.OnlyNew, name)
		}
	}
	sort.Slice(cmp.Entries, func(i, j int) bool { return cmp.Entries[i].Name < cmp.Entries[j].Name })
	sort.Strings(cmp.OnlyOld)
	sort.Strings(cmp.OnlyNew)
	return cmp
}

// printComparison renders the human table: one row per shared
// benchmark, regressions flagged in the last column.
func printComparison(cmp *Comparison) {
	fmt.Printf("%-34s %14s %14s %9s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	for _, e := range cmp.Entries {
		flag := ""
		if e.Regression {
			flag = "  REGRESSION"
		} else if e.DeltaPct < -cmp.ThresholdPct {
			flag = "  improved"
		}
		fmt.Printf("%-34s %14.1f %14.1f %+8.1f%%%s\n", e.Name, e.OldNsPerOp, e.NewNsPerOp, e.DeltaPct, flag)
	}
	for _, n := range cmp.OnlyOld {
		fmt.Printf("%-34s (only in %s)\n", n, cmp.Old)
	}
	for _, n := range cmp.OnlyNew {
		fmt.Printf("%-34s (only in %s)\n", n, cmp.New)
	}
}

// loadReport reads one BENCH_<n>.json snapshot.
func loadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if rep.Entries == nil {
		return nil, fmt.Errorf("%s: no entries section", path)
	}
	return &rep, nil
}
