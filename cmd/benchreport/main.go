// Command benchreport runs the repository's performance benchmark
// suite and writes a machine-readable snapshot (BENCH_<n>.json), so
// successive PRs accumulate a perf trajectory that can be diffed
// instead of re-measured from memory.
//
// Usage:
//
//	go run ./cmd/benchreport [-out BENCH_10.json] [-bench regexp] [-benchtime 2s] [-count 1] [-soak 2s]
//	go run ./cmd/benchreport -cpus 1,2,4                 # multicore lanes
//	go run ./cmd/benchreport -scale '<scenario>' -scale-fanout 4
//	go run ./cmd/benchreport -compare old.json new.json  # diff two snapshots
//
// The default benchmark set covers the per-invocation decision
// pipeline the §5.3 overhead study cares about (simulator, policy,
// histogram, forecaster, the serving controller) plus the workload
// generator and codecs. Unless -soak 0 is given, the report also
// carries a short concurrent soak of the serving control plane
// (internal/serve) with decision-latency percentiles — the
// latency-percentile leg of the perf trajectory.
//
// -cpus runs the suite once per GOMAXPROCS value (go test -cpu) and
// records a lane per value under "multicore"; the top-level entries
// are the first listed lane. -scale runs one coldsim scenario (built
// fresh, optionally fanned out across worker processes) and records
// its wall-clock and peak process RSS under "scale" — the trace-scale
// headline measurement.
//
// When the run measures both lanes of the simulator benchmark
// (BenchmarkSimulatorHybrid and BenchmarkSimulatorHybridFast), the
// report carries a "fastmode" section: the exact-vs-fast speedup and
// the decision flip rate the equivalence harness (internal/equiv)
// measures over the benchmark population — the speedup and its
// divergence cost, side by side.
//
// -compare old.json new.json diffs two committed snapshots: shared
// benchmarks whose ns/op grew by more than -threshold percent (±5%
// by default) are regressions, rendered as a table (or JSON with
// -format json), and the exit status is nonzero when any exist — the
// CI gate on the committed perf trajectory.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/serve"
)

// Entry is one benchmark's measurement. Allocs and Bytes are -1 when
// the benchmark did not report memory statistics.
type Entry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int64   `json:"iterations"`
}

// CPULane is one -cpus lane: the suite measured at one GOMAXPROCS
// value.
type CPULane struct {
	CPUs    int              `json:"cpus"`
	Entries map[string]Entry `json:"entries"`
}

// ScaleRun is the outcome of the -scale scenario: one trace-scale
// coldsim run's wall-clock and peak resident set (the largest single
// process of the run — with -scale-fanout that is the biggest worker
// or the parent, whichever peaks higher).
type ScaleRun struct {
	Scenario    string  `json:"scenario"`
	Fanout      int     `json:"fanout,omitempty"`
	WallSeconds float64 `json:"wall_seconds"`
	PeakRSSMB   float64 `json:"peak_rss_mb"`
}

// Report is the file layout: benchmark name -> measurement, plus the
// optional multicore lanes, serving-soak section and trace-scale run.
// The header pins the machine: Go version, GOMAXPROCS, CPU count and
// model — without them a ns/op trajectory across PRs is unreadable.
type Report struct {
	GeneratedAt string            `json:"generated_at"`
	GoVersion   string            `json:"go_version"`
	GoMaxProcs  int               `json:"gomaxprocs"`
	NumCPU      int               `json:"num_cpu"`
	CPUModel    string            `json:"cpu_model,omitempty"`
	BenchTime   string            `json:"benchtime"`
	Entries     map[string]Entry  `json:"entries"`
	Multicore   []CPULane         `json:"multicore,omitempty"`
	Soak        *serve.SoakResult `json:"soak,omitempty"`
	Scale       *ScaleRun         `json:"scale,omitempty"`
	FastMode    *FastMode         `json:"fastmode,omitempty"`
}

var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op\s+(\d+) allocs/op)?`)

func main() {
	out := flag.String("out", "BENCH_10.json", "output file")
	bench := flag.String("bench", defaultBenchRegexp, "benchmark regexp passed to go test")
	benchtime := flag.String("benchtime", "2s", "per-benchmark time")
	count := flag.Int("count", 1, "benchmark repetitions (minimum ns/op is kept)")
	cpus := flag.String("cpus", "", "comma-separated GOMAXPROCS lane list (go test -cpu), e.g. 1,2,4")
	soak := flag.Duration("soak", 2*time.Second, "serving-soak length (0 disables the soak section)")
	scale := flag.String("scale", "", "coldsim scenario to run as the trace-scale measurement")
	scaleFanout := flag.Int("scale-fanout", 0, "worker processes for the -scale run (coldsim -fanout)")
	compare := flag.String("compare", "", "compare mode: old snapshot (the new one is the positional argument)")
	threshold := flag.Float64("threshold", 5, "compare mode: regression threshold in percent")
	format := flag.String("format", "table", "compare mode output: table or json")
	flag.Parse()

	if *compare != "" {
		// flag.Parse stops at the first positional, so tolerate
		// "-compare old.json new.json -format json" by re-parsing
		// whatever follows the new snapshot path.
		rest := flag.Args()
		if len(rest) < 1 {
			fmt.Fprintln(os.Stderr, "benchreport: usage: benchreport -compare old.json new.json [-threshold pct] [-format table|json]")
			os.Exit(2)
		}
		fs := flag.NewFlagSet("compare", flag.ExitOnError)
		thr := fs.Float64("threshold", *threshold, "regression threshold in percent")
		form := fs.String("format", *format, "output: table or json")
		_ = fs.Parse(rest[1:])
		if fs.NArg() != 0 {
			fmt.Fprintln(os.Stderr, "benchreport: usage: benchreport -compare old.json new.json [-threshold pct] [-format table|json]")
			os.Exit(2)
		}
		os.Exit(runCompare(*compare, rest[0], *thr, *form))
	}

	laneCPUs, err := parseCPUList(*cpus)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchreport: -cpus:", err)
		os.Exit(1)
	}

	args := []string{"test", "-run", "^$", "-bench", *bench,
		"-benchtime", *benchtime, "-benchmem", "-count", strconv.Itoa(*count)}
	if *cpus != "" {
		args = append(args, "-cpu", *cpus)
	}
	args = append(args, ".")
	fmt.Fprintf(os.Stderr, "benchreport: go %v\n", args)
	cmd := exec.Command("go", args...)
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: go test failed: %v\n", err)
		os.Exit(1)
	}

	rep := Report{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339), //wildlint:allow wallclock
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		CPUModel:    cpuModel(),
		BenchTime:   *benchtime,
		Entries:     map[string]Entry{},
	}
	if v, err := exec.Command("go", "version").Output(); err == nil {
		rep.GoVersion = string(bytes.TrimSpace(v))
	}

	// Lanes keyed by the -N name suffix; suffix-less lines are the
	// cpu=1 lane (go test omits the suffix there).
	lanes := map[int]map[string]Entry{}
	laneFor := func(n int) map[string]Entry {
		if lanes[n] == nil {
			lanes[n] = map[string]Entry{}
		}
		return lanes[n]
	}
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		n := 1
		if m[2] != "" {
			n, _ = strconv.Atoi(m[2][1:])
		}
		iters, _ := strconv.ParseInt(m[3], 10, 64)
		ns, _ := strconv.ParseFloat(m[4], 64)
		e := Entry{NsPerOp: ns, Iterations: iters, AllocsPerOp: -1, BytesPerOp: -1}
		if m[5] != "" {
			e.BytesPerOp, _ = strconv.ParseInt(m[5], 10, 64)
			e.AllocsPerOp, _ = strconv.ParseInt(m[6], 10, 64)
		}
		// With -count > 1, keep the fastest run (least scheduler noise).
		lane := laneFor(n)
		if prev, okPrev := lane[m[1]]; !okPrev || e.NsPerOp < prev.NsPerOp {
			lane[m[1]] = e
		}
	}

	if len(laneCPUs) == 0 {
		// Single-lane run: whatever GOMAXPROCS go test used is the one
		// lane; fold all suffixes together (there is only one).
		for _, lane := range lanes {
			for name, e := range lane {
				if prev, okPrev := rep.Entries[name]; !okPrev || e.NsPerOp < prev.NsPerOp {
					rep.Entries[name] = e
				}
			}
		}
	} else {
		for _, n := range laneCPUs {
			rep.Multicore = append(rep.Multicore, CPULane{CPUs: n, Entries: laneFor(n)})
		}
		// The top-level entries are the first listed lane, so diffs
		// against single-lane reports stay meaningful.
		rep.Entries = laneFor(laneCPUs[0])
	}

	if fm := fastModeSection(rep.Entries); fm != nil {
		rep.FastMode = fm
		fmt.Fprintf(os.Stderr,
			"benchreport: fastmode  %.2fx speedup  flip rate %.4f%% (%d/%d)\n",
			fm.Speedup, fm.FlipRate*100, fm.Flips, fm.Invocations)
	}

	if *soak > 0 {
		res, err := serve.Soak(context.Background(), serve.SoakConfig{Duration: *soak})
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchreport: soak:", err)
			os.Exit(1)
		}
		rep.Soak = res
		fmt.Fprintf(os.Stderr,
			"benchreport: soak %s  %.0f decisions/s  p50 %v  p99 %v  p99.9 %v\n",
			res.Policy, res.ThroughputPerSec, res.P50, res.P99, res.P999)
	}

	if *scale != "" {
		res, err := runScale(*scale, *scaleFanout)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchreport: scale:", err)
			os.Exit(1)
		}
		rep.Scale = res
		fmt.Fprintf(os.Stderr, "benchreport: scale  %.1fs wall  %.0f MB peak RSS\n",
			res.WallSeconds, res.PeakRSSMB)
	}

	printTable(&rep, laneCPUs)

	data, err := json.MarshalIndent(&rep, "", "\t")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchreport: wrote %s (%d benchmarks)\n", *out, len(rep.Entries))
}

// printTable renders the human summary: one row per benchmark; with
// -cpus lanes, one ns/op column per lane.
func printTable(rep *Report, laneCPUs []int) {
	names := make([]string, 0, len(rep.Entries))
	for n := range rep.Entries {
		names = append(names, n)
	}
	sort.Strings(names)
	if len(rep.Multicore) == 0 {
		for _, n := range names {
			e := rep.Entries[n]
			fmt.Printf("%-34s %14.1f ns/op %8d allocs/op\n", n, e.NsPerOp, e.AllocsPerOp)
		}
		return
	}
	fmt.Printf("%-34s", "benchmark")
	for _, c := range laneCPUs {
		fmt.Printf(" %12s", fmt.Sprintf("cpu=%d ns/op", c))
	}
	fmt.Println()
	for _, n := range names {
		fmt.Printf("%-34s", n)
		for _, lane := range rep.Multicore {
			if e, ok := lane.Entries[n]; ok {
				fmt.Printf(" %12.1f", e.NsPerOp)
			} else {
				fmt.Printf(" %12s", "-")
			}
		}
		fmt.Println()
	}
}

// parseCPUList parses "1,2,4" into its lane values.
func parseCPUList(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad cpu count %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

// cpuModel reads the CPU model name (linux; empty elsewhere).
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		if name, val, ok := strings.Cut(line, ":"); ok && strings.TrimSpace(name) == "model name" {
			return strings.TrimSpace(val)
		}
	}
	return ""
}

// runScale builds coldsim and runs the scenario once, measuring
// wall-clock and the run's peak per-process resident set (from the
// child's rusage, which folds in its waited-for fan-out workers).
func runScale(scenario string, fanout int) (*ScaleRun, error) {
	tmp, err := os.MkdirTemp("", "benchreport-scale-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(tmp)
	bin := filepath.Join(tmp, "coldsim")
	build := exec.Command("go", "build", "-o", bin, "./cmd/coldsim")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		return nil, fmt.Errorf("building coldsim: %w", err)
	}

	args := []string{"-scenario", scenario, "-format", "csv"}
	if fanout > 0 {
		args = append(args, "-fanout", strconv.Itoa(fanout))
	}
	fmt.Fprintf(os.Stderr, "benchreport: coldsim %v\n", args)
	cmd := exec.Command(bin, args...)
	cmd.Stdout = os.Stderr // the CSV report is progress output here
	cmd.Stderr = os.Stderr
	start := time.Now() //wildlint:allow wallclock
	runErr := cmd.Run()
	wall := time.Since(start) //wildlint:allow wallclock
	if runErr != nil {
		return nil, fmt.Errorf("coldsim: %w", runErr)
	}
	res := &ScaleRun{
		Scenario:    scenario,
		Fanout:      fanout,
		WallSeconds: wall.Seconds(),
	}
	if ru, ok := cmd.ProcessState.SysUsage().(*syscall.Rusage); ok {
		res.PeakRSSMB = float64(ru.Maxrss) / 1024 // linux reports KB
	}
	return res, nil
}

// defaultBenchRegexp selects the perf-critical suite: the decision
// pipeline end to end plus generators and codecs. The per-figure
// regeneration benchmarks are excluded by default (they are dominated
// by the same simulator paths and would stretch the run severalfold);
// pass -bench 'Benchmark' for everything.
const defaultBenchRegexp = `BenchmarkSimulator|BenchmarkCluster|BenchmarkPolicyOverhead|BenchmarkHistogram|BenchmarkARIMAFit|BenchmarkExpSmoothingFit|BenchmarkProd|BenchmarkWorkloadGeneration|BenchmarkTraceCSVRoundTrip|BenchmarkServeDecide`
