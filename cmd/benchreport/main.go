// Command benchreport runs the repository's performance benchmark
// suite and writes a machine-readable snapshot (BENCH_<n>.json), so
// successive PRs accumulate a perf trajectory that can be diffed
// instead of re-measured from memory.
//
// Usage:
//
//	go run ./cmd/benchreport [-out BENCH_7.json] [-bench regexp] [-benchtime 2s] [-count 1] [-soak 2s]
//
// The default benchmark set covers the per-invocation decision
// pipeline the §5.3 overhead study cares about (simulator, policy,
// histogram, forecaster, the serving controller) plus the workload
// generator and codecs. Unless -soak 0 is given, the report also
// carries a short concurrent soak of the serving control plane
// (internal/serve) with decision-latency percentiles — the
// latency-percentile leg of the perf trajectory.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"sort"
	"strconv"
	"time"

	"repro/internal/serve"
)

// Entry is one benchmark's measurement. Allocs and Bytes are -1 when
// the benchmark did not report memory statistics.
type Entry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int64   `json:"iterations"`
}

// Report is the file layout: benchmark name -> measurement, plus the
// optional serving-soak section (sustained-concurrency decision
// latency percentiles; see internal/serve.Soak).
type Report struct {
	GeneratedAt string            `json:"generated_at"`
	GoVersion   string            `json:"go_version"`
	BenchTime   string            `json:"benchtime"`
	Entries     map[string]Entry  `json:"entries"`
	Soak        *serve.SoakResult `json:"soak,omitempty"`
}

var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op\s+(\d+) allocs/op)?`)

func main() {
	out := flag.String("out", "BENCH_7.json", "output file")
	bench := flag.String("bench", defaultBenchRegexp, "benchmark regexp passed to go test")
	benchtime := flag.String("benchtime", "2s", "per-benchmark time")
	count := flag.Int("count", 1, "benchmark repetitions (minimum ns/op is kept)")
	soak := flag.Duration("soak", 2*time.Second, "serving-soak length (0 disables the soak section)")
	flag.Parse()

	args := []string{"test", "-run", "^$", "-bench", *bench,
		"-benchtime", *benchtime, "-benchmem", "-count", strconv.Itoa(*count), "."}
	fmt.Fprintf(os.Stderr, "benchreport: go %v\n", args)
	cmd := exec.Command("go", args...)
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: go test failed: %v\n", err)
		os.Exit(1)
	}

	rep := Report{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		BenchTime:   *benchtime,
		Entries:     map[string]Entry{},
	}
	if v, err := exec.Command("go", "version").Output(); err == nil {
		rep.GoVersion = string(bytes.TrimSpace(v))
	}

	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, _ := strconv.ParseFloat(m[3], 64)
		e := Entry{NsPerOp: ns, Iterations: iters, AllocsPerOp: -1, BytesPerOp: -1}
		if m[4] != "" {
			e.BytesPerOp, _ = strconv.ParseInt(m[4], 10, 64)
			e.AllocsPerOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		// With -count > 1, keep the fastest run (least scheduler noise).
		if prev, okPrev := rep.Entries[m[1]]; !okPrev || e.NsPerOp < prev.NsPerOp {
			rep.Entries[m[1]] = e
		}
	}

	if *soak > 0 {
		res, err := serve.Soak(context.Background(), serve.SoakConfig{Duration: *soak})
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchreport: soak:", err)
			os.Exit(1)
		}
		rep.Soak = res
		fmt.Fprintf(os.Stderr,
			"benchreport: soak %s  %.0f decisions/s  p50 %v  p99 %v  p99.9 %v\n",
			res.Policy, res.ThroughputPerSec, res.P50, res.P99, res.P999)
	}

	names := make([]string, 0, len(rep.Entries))
	for n := range rep.Entries {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		e := rep.Entries[n]
		fmt.Printf("%-34s %14.1f ns/op %8d allocs/op\n", n, e.NsPerOp, e.AllocsPerOp)
	}

	data, err := json.MarshalIndent(&rep, "", "\t")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchreport: wrote %s (%d benchmarks)\n", *out, len(rep.Entries))
}

// defaultBenchRegexp selects the perf-critical suite: the decision
// pipeline end to end plus generators and codecs. The per-figure
// regeneration benchmarks are excluded by default (they are dominated
// by the same simulator paths and would stretch the run severalfold);
// pass -bench 'Benchmark' for everything.
const defaultBenchRegexp = `BenchmarkSimulator|BenchmarkCluster|BenchmarkPolicyOverhead|BenchmarkHistogram|BenchmarkARIMAFit|BenchmarkExpSmoothingFit|BenchmarkProd|BenchmarkWorkloadGeneration|BenchmarkTraceCSVRoundTrip|BenchmarkServeDecide`
