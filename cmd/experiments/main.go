// Command experiments regenerates every table and figure of the
// paper's evaluation (Figures 1-8 characterization, Figures 14-19
// simulation, Figure 20 platform replay) and writes a text report.
// Ctrl-C cancels the run cleanly (figure sweeps and the scaled-time
// platform replay both honor the signal).
//
// Usage:
//
//	experiments -apps 1000 -days 7 -out experiments.txt
//	experiments -skip-platform          # omit the scaled-time replay
//	experiments -policies 'hybrid?cv=5,fixed?ka=30m'   # extra sweep
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")

	var (
		apps     = flag.Int("apps", 1000, "generated applications")
		days     = flag.Float64("days", 7, "trace length in days")
		seed     = flag.Uint64("seed", 42, "random seed")
		out      = flag.String("out", "", "report file (empty = stdout)")
		skipPlat = flag.Bool("skip-platform", false, "skip the figure-20 platform replay")
		platApps = flag.Int("platform-apps", 68, "apps in the platform replay")
		platHrs  = flag.Float64("platform-hours", 8, "platform replay window (hours)")
		scale    = flag.Float64("platform-scale", 1800, "platform clock speedup")
		policies = flag.String("policies", "", "comma-separated policy specs for an extra sweep (e.g. 'hybrid?cv=5,fixed?ka=30m')")
	)
	flag.Parse()

	cfg := experiments.Config{
		Seed:         *seed,
		NumApps:      *apps,
		Duration:     time.Duration(*days * 24 * float64(time.Hour)),
		SkipPlatform: *skipPlat,
		Platform: experiments.PlatformConfig{
			Apps:   *platApps,
			Window: time.Duration(*platHrs * float64(time.Hour)),
			Scale:  *scale,
			Seed:   *seed,
		},
	}
	if *policies != "" {
		for _, spec := range strings.Split(*policies, ",") {
			if spec = strings.TrimSpace(spec); spec != "" {
				cfg.PolicySpecs = append(cfg.PolicySpecs, spec)
			}
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	start := time.Now() //wildlint:allow wallclock
	figs, err := experiments.RunAll(ctx, cfg, os.Stderr)
	if err != nil {
		log.Fatal(err)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	fmt.Fprintf(w, "Serverless in the Wild — regenerated evaluation (%d apps, %v days, seed %d)\n",
		*apps, *days, *seed)
	fmt.Fprintf(w, "run time: %v\n\n", time.Since(start).Round(time.Second)) //wildlint:allow wallclock
	experiments.RenderAll(figs, w)
	if *out != "" {
		fmt.Printf("report written to %s\n", *out)
	}
}
