// Command coldsim runs keep-alive policy simulations over a trace
// (synthetic or an AzurePublicDataset invocations CSV) and prints the
// cold-start / wasted-memory comparison of §5.2.
//
// Policies are registry specs; traces stream. A CSV trace is re-read
// per policy in constant memory (apps are simulated as rows arrive),
// so traces far larger than RAM work. -shard i/n restricts the run to
// an interleaved shard of the apps, the unit of multi-process
// scale-out.
//
// -cluster switches to the finite-memory multi-node engine: the trace
// is materialized once (the discrete-event timeline needs the whole
// workload) and each policy runs against nodes with real capacity, so
// the report adds eviction-induced cold starts and node utilization —
// the quantities the infinite-memory simulator cannot express.
//
// Usage:
//
//	coldsim -apps 400 -days 7                  # synthetic trace
//	coldsim -trace trace/invocations.csv       # real/saved trace
//	coldsim -trace inv.csv -memory mem.csv     # with per-app memory
//	coldsim -policies 'fixed?ka=20m,hybrid?range=4h&cv=5'
//	coldsim -trace big.csv -shard 0/4          # first of 4 shards
//	coldsim -cluster nodes=8,mem=4096          # finite-memory cluster
//	coldsim -cluster nodes=8,mem=4096,place=binpack
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	wild "repro"
)

const defaultPolicies = "nounload,fixed?ka=10m,fixed?ka=1h,fixed?ka=2h,hybrid"

// baselineSpec normalizes wasted memory, as throughout §5.2.
const baselineSpec = "fixed?ka=10m"

func main() {
	log.SetFlags(0)
	log.SetPrefix("coldsim: ")

	var (
		tracePath = flag.String("trace", "", "invocations CSV to replay (empty = synthesize)")
		memPath   = flag.String("memory", "", "memory CSV for per-app MB (cluster runs; apps not covered take the paper's 170 MB median)")
		apps      = flag.Int("apps", 400, "apps to synthesize when -trace is empty")
		days      = flag.Float64("days", 7, "days to synthesize when -trace is empty")
		seed      = flag.Uint64("seed", 42, "random seed for synthesis")
		policies  = flag.String("policies", defaultPolicies,
			fmt.Sprintf("comma-separated policy specs (registered: %v)", wild.PolicySpecs()))
		shard       = flag.String("shard", "", "i/n: simulate only the i-th of n interleaved app shards")
		clusterFlag = flag.String("cluster", "",
			fmt.Sprintf("nodes=N,mem=MB[,place=NAME]: simulate a finite-memory cluster (placements: %v)", wild.PlacementNames()))
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	newSource := sourceFactory(*tracePath, *apps, *days, *seed, *shard)

	if *clusterFlag != "" {
		cfg, err := parseClusterFlag(*clusterFlag)
		if err != nil {
			log.Fatalf("-cluster: %v", err)
		}
		runCluster(ctx, newSource, cfg, *tracePath, *memPath, *policies)
		return
	}
	if *memPath != "" {
		log.Printf("warning: -memory is only used by -cluster runs; ignoring %s", *memPath)
	}

	// One probe pass sizes the trace for the header line.
	probe := wild.NewWastedMemorySink()
	src, cleanup := newSource()
	if _, err := wild.Run(ctx, src, wild.MustFromSpec(baselineSpec), wild.WithSink(probe)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace: %d apps, %d invocations over %v\n\n",
		probe.Apps(), probe.TotalInvocations(), src.Horizon())
	cleanup()
	wastedBase := probe.TotalWastedSeconds()

	fmt.Printf("%-28s %12s %12s %14s\n", "policy", "coldQ3(%)", "coldMed(%)", "wastedMem(%)")
	for _, spec := range splitSpecs(*policies) {
		pol, err := wild.FromSpec(spec)
		if err != nil {
			log.Fatal(err)
		}
		cold := wild.NewColdStartSink()
		wasted := wild.NewWastedMemorySink()
		src, cleanup := newSource()
		if _, err := wild.Run(ctx, src, pol,
			wild.WithSink(cold), wild.WithSink(wasted)); err != nil {
			log.Fatal(err)
		}
		cleanup()
		fmt.Printf("%-28s %12.2f %12.2f %14.2f\n",
			pol.Name(), cold.ThirdQuartile(), cold.Quantile(50),
			wasted.NormalizedTo(wastedBase))
	}
}

// runCluster materializes the trace once, applies the memory table,
// and runs every policy spec through the finite-memory engine.
func runCluster(ctx context.Context, newSource func() (wild.TraceSource, func()), cfg wild.ClusterConfig, tracePath, memPath, policies string) {
	src, cleanup := newSource()
	tr, err := wild.CollectTrace(src)
	if err != nil {
		log.Fatal(err)
	}
	cleanup()

	if memPath != "" {
		f, err := os.Open(memPath)
		if err != nil {
			log.Fatal(err)
		}
		defaulted, err := wild.ApplyMemoryCSVDefault(f, tr, 0)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		if defaulted > 0 {
			log.Printf("warning: %d of %d apps missing from %s; charged the %d MB default (they would otherwise be invisible to capacity accounting)",
				defaulted, len(tr.Apps), memPath, int(wild.DefaultAppMemoryMB))
		}
	} else if tracePath != "" {
		// CSV invocation tables carry no memory column at all.
		log.Printf("warning: no -memory table; every app charged the %d MB default", int(wild.DefaultAppMemoryMB))
	}

	memLabel := "inf"
	if cfg.NodeMemMB > 0 {
		memLabel = fmt.Sprintf("%g MB", cfg.NodeMemMB)
	}
	fmt.Printf("trace: %d apps, %d invocations over %v\n", len(tr.Apps), tr.TotalInvocations(), src.Horizon())
	fmt.Printf("cluster: %d nodes x %s, placement %s\n\n", cfg.Nodes, memLabel, cfg.Placement.Name())

	// Baseline for the wasted-memory normalization, on the same
	// cluster (ctx-aware like every other run, so Ctrl-C interrupts
	// it too).
	base, err := wild.RunCluster(ctx, wild.SourceFromTrace(tr), wild.MustFromSpec(baselineSpec), cfg)
	if err != nil {
		log.Fatal(err)
	}
	wastedBase := base.TotalWastedSeconds()

	fmt.Printf("%-28s %12s %12s %14s %12s %10s %9s\n",
		"policy", "coldQ3(%)", "coldMed(%)", "wastedMem(%)", "evictCold(%)", "evictions", "util(%)")
	for _, spec := range splitSpecs(policies) {
		pol, err := wild.FromSpec(spec)
		if err != nil {
			log.Fatal(err)
		}
		cold := wild.NewColdStartSink()
		wasted := wild.NewWastedMemorySink()
		attr := wild.NewClusterAttributionSink()
		res, err := wild.RunCluster(ctx, wild.SourceFromTrace(tr), pol, cfg,
			wild.WithClusterResultSink(cold), wild.WithClusterResultSink(wasted),
			wild.WithClusterSink(attr))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s %12.2f %12.2f %14.2f %12.2f %10d %9.1f\n",
			pol.Name(), cold.ThirdQuartile(), cold.Quantile(50),
			wasted.NormalizedTo(wastedBase),
			attr.EvictionColdPercent(), attr.Evictions(),
			wild.MeanClusterUtilizationPct(res))
	}
}

// parseClusterFlag parses "nodes=8,mem=4096,place=hash" into a
// cluster configuration.
func parseClusterFlag(s string) (wild.ClusterConfig, error) {
	cfg := wild.ClusterConfig{Nodes: 1}
	place := "hash"
	for _, kv := range strings.Split(s, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return cfg, fmt.Errorf("want key=value, got %q", kv)
		}
		switch key {
		case "nodes":
			n, err := strconv.Atoi(val)
			if err != nil || n <= 0 {
				return cfg, fmt.Errorf("nodes: invalid %q", val)
			}
			cfg.Nodes = n
		case "mem":
			mb, err := strconv.ParseFloat(val, 64)
			if err != nil || mb < 0 {
				return cfg, fmt.Errorf("mem: invalid %q (MB per node, 0 = infinite)", val)
			}
			cfg.NodeMemMB = mb
		case "place":
			place = val
		default:
			return cfg, fmt.Errorf("unknown key %q (nodes, mem, place)", key)
		}
	}
	p, err := wild.NewPlacement(place)
	if err != nil {
		return cfg, err
	}
	cfg.Placement = p
	return cfg, nil
}

// sourceFactory returns a function producing a fresh source (plus a
// cleanup) per policy run: a re-opened streaming CSV, or a
// once-generated in-memory synthetic trace (which Run simulates on
// the batch fast path).
func sourceFactory(path string, apps int, days float64, seed uint64, shard string) func() (wild.TraceSource, func()) {
	var base func() (wild.TraceSource, func())
	if path != "" {
		base = func() (wild.TraceSource, func()) {
			f, err := os.Open(path)
			if err != nil {
				log.Fatal(err)
			}
			src, err := wild.StreamInvocationsCSV(f)
			if err != nil {
				log.Fatal(err)
			}
			return src, func() { f.Close() }
		}
	} else {
		pop, err := wild.Generate(wild.WorkloadConfig{
			Seed: seed, NumApps: apps,
			Duration:     time.Duration(days * 24 * float64(time.Hour)),
			MaxDailyRate: 2000, MaxEventsPerFunction: 20000,
		})
		if err != nil {
			log.Fatal(err)
		}
		base = func() (wild.TraceSource, func()) { return wild.SourceFromTrace(pop.Trace), func() {} }
	}
	if shard == "" {
		return base
	}
	i, n, err := wild.ParseShard(shard)
	if err != nil {
		log.Fatalf("-shard: %v", err)
	}
	return func() (wild.TraceSource, func()) {
		src, cleanup := base()
		return wild.Shard(src, i, n), cleanup
	}
}

func splitSpecs(s string) []string {
	var specs []string
	for _, spec := range strings.Split(s, ",") {
		if spec = strings.TrimSpace(spec); spec != "" {
			specs = append(specs, spec)
		}
	}
	return specs
}
