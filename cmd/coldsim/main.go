// Command coldsim runs keep-alive policy simulations over a trace
// (synthetic or an AzurePublicDataset invocations CSV) and prints the
// cold-start / wasted-memory comparison of §5.2.
//
// Policies are registry specs; traces stream. A CSV trace is re-read
// per policy in constant memory (apps are simulated as rows arrive),
// so traces far larger than RAM work. -shard i/n restricts the run to
// an interleaved shard of the apps, the unit of multi-process
// scale-out.
//
// Usage:
//
//	coldsim -apps 400 -days 7                  # synthetic trace
//	coldsim -trace trace/invocations.csv       # real/saved trace
//	coldsim -policies 'fixed?ka=20m,hybrid?range=4h&cv=5'
//	coldsim -trace big.csv -shard 0/4          # first of 4 shards
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"time"

	wild "repro"
)

const defaultPolicies = "nounload,fixed?ka=10m,fixed?ka=1h,fixed?ka=2h,hybrid"

// baselineSpec normalizes wasted memory, as throughout §5.2.
const baselineSpec = "fixed?ka=10m"

func main() {
	log.SetFlags(0)
	log.SetPrefix("coldsim: ")

	var (
		tracePath = flag.String("trace", "", "invocations CSV to replay (empty = synthesize)")
		apps      = flag.Int("apps", 400, "apps to synthesize when -trace is empty")
		days      = flag.Float64("days", 7, "days to synthesize when -trace is empty")
		seed      = flag.Uint64("seed", 42, "random seed for synthesis")
		policies  = flag.String("policies", defaultPolicies,
			fmt.Sprintf("comma-separated policy specs (registered: %v)", wild.PolicySpecs()))
		shard = flag.String("shard", "", "i/n: simulate only the i-th of n interleaved app shards")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	newSource := sourceFactory(*tracePath, *apps, *days, *seed, *shard)

	// One probe pass sizes the trace for the header line.
	probe := wild.NewWastedMemorySink()
	src, cleanup := newSource()
	if _, err := wild.Run(ctx, src, wild.MustFromSpec(baselineSpec), wild.WithSink(probe)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace: %d apps, %d invocations over %v\n\n",
		probe.Apps(), probe.TotalInvocations(), src.Horizon())
	cleanup()
	wastedBase := probe.TotalWastedSeconds()

	fmt.Printf("%-28s %12s %12s %14s\n", "policy", "coldQ3(%)", "coldMed(%)", "wastedMem(%)")
	for _, spec := range splitSpecs(*policies) {
		pol, err := wild.FromSpec(spec)
		if err != nil {
			log.Fatal(err)
		}
		cold := wild.NewColdStartSink()
		wasted := wild.NewWastedMemorySink()
		src, cleanup := newSource()
		if _, err := wild.Run(ctx, src, pol,
			wild.WithSink(cold), wild.WithSink(wasted)); err != nil {
			log.Fatal(err)
		}
		cleanup()
		fmt.Printf("%-28s %12.2f %12.2f %14.2f\n",
			pol.Name(), cold.ThirdQuartile(), cold.Quantile(50),
			wasted.NormalizedTo(wastedBase))
	}
}

// sourceFactory returns a function producing a fresh source (plus a
// cleanup) per policy run: a re-opened streaming CSV, or a
// once-generated in-memory synthetic trace (which Run simulates on
// the batch fast path).
func sourceFactory(path string, apps int, days float64, seed uint64, shard string) func() (wild.TraceSource, func()) {
	var base func() (wild.TraceSource, func())
	if path != "" {
		base = func() (wild.TraceSource, func()) {
			f, err := os.Open(path)
			if err != nil {
				log.Fatal(err)
			}
			src, err := wild.StreamInvocationsCSV(f)
			if err != nil {
				log.Fatal(err)
			}
			return src, func() { f.Close() }
		}
	} else {
		pop, err := wild.Generate(wild.WorkloadConfig{
			Seed: seed, NumApps: apps,
			Duration:     time.Duration(days * 24 * float64(time.Hour)),
			MaxDailyRate: 2000, MaxEventsPerFunction: 20000,
		})
		if err != nil {
			log.Fatal(err)
		}
		base = func() (wild.TraceSource, func()) { return wild.SourceFromTrace(pop.Trace), func() {} }
	}
	if shard == "" {
		return base
	}
	i, n, err := wild.ParseShard(shard)
	if err != nil {
		log.Fatalf("-shard: %v", err)
	}
	return func() (wild.TraceSource, func()) {
		src, cleanup := base()
		return wild.Shard(src, i, n), cleanup
	}
}

func splitSpecs(s string) []string {
	var specs []string
	for _, spec := range strings.Split(s, ",") {
		if spec = strings.TrimSpace(spec); spec != "" {
			specs = append(specs, spec)
		}
	}
	return specs
}
