// Command coldsim runs keep-alive policy simulations and prints the
// cold-start / wasted-memory comparison of §5.2. Every run is a
// Scenario — one declarative value naming the trace source, policy,
// optional finite-memory cluster, metric sinks and shard — and a
// sweep is a Grid whose list-valued fields expand into cells, so the
// whole paper evaluation plane is configuration, not plumbing.
//
// Usage:
//
//	coldsim -scenario 'source=gen:apps=400; policy=[fixed?ka=10m,hybrid]'
//	coldsim -scenario 'source=csv:inv.csv; policy=hybrid; cluster.nodes=8; cluster.mem=4096'
//	coldsim -scenario @sweep.json           # JSON {"base", "axes", "cells"}
//	coldsim -scenario ... -format csv       # machine-readable report
//	coldsim -scenario ... -fanout 8         # 8 shard worker processes per cell
//
// -fanout n rewrites unsharded cells to shard=*/n and runs every unit
// in its own worker process (this binary re-exec'd), merging the
// workers' sink states exactly as the in-process sweep would — results
// are bit-identical, but the cells spread across address spaces.
//
// Deprecated aliases (kept so existing invocations work; they desugar
// into the same scenario grammar):
//
//	coldsim -apps 400 -days 7               # synthetic trace
//	coldsim -trace inv.csv -memory mem.csv  # real/saved trace
//	coldsim -policies 'fixed?ka=20m,hybrid?range=4h&cv=5'
//	coldsim -trace big.csv -shard 0/4       # first of 4 shards
//	coldsim -cluster nodes=8,mem=4096,place=binpack
//
// The wasted-memory column of the table output is normalized to the
// 10-minute fixed keep-alive policy on the same trace and cluster
// shape, as throughout §5.2 (a baseline cell is run implicitly when
// the sweep does not include one).
//
// -format json additionally reports per-node stats for cluster cells
// (evictions, failed loads, peak and mean resident MB per node), not
// just the aggregate summary metrics.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"

	wild "repro"
)

const defaultPolicies = "nounload,fixed?ka=10m,fixed?ka=1h,fixed?ka=2h,hybrid"

// baselineSpec normalizes wasted memory, as throughout §5.2.
const baselineSpec = "fixed?ka=10m"

func main() {
	// A coldsim spawned by -fanout serves as a sweep worker and exits
	// inside this call; ordinary invocations fall through.
	wild.MaybeRunScenarioWorker()

	log.SetFlags(0)
	log.SetPrefix("coldsim: ")

	var (
		scenarioFlag = flag.String("scenario", "",
			"scenario or sweep grid (text grammar, JSON, or @file.json); replaces the deprecated flags below")
		format = flag.String("format", "table", "output format: table, csv or json")
		fanout = flag.Int("fanout", 0,
			"run each cell as n shard worker processes (rewrites unsharded cells to shard=*/n)")

		// Deprecated aliases, desugared into the scenario grammar.
		tracePath = flag.String("trace", "", "deprecated: invocations CSV (source=csv:...)")
		memPath   = flag.String("memory", "", "deprecated: memory CSV for cluster runs (cluster.memcsv=...)")
		apps      = flag.Int("apps", 400, "deprecated: apps to synthesize (source=gen:apps=...)")
		days      = flag.Float64("days", 7, "deprecated: days to synthesize (source=gen:days=...)")
		seed      = flag.Uint64("seed", 42, "deprecated: synthesis seed (source=gen:seed=...)")
		policies  = flag.String("policies", defaultPolicies,
			fmt.Sprintf("deprecated: comma-separated policy specs (policy=[...]; registered: %v)", wild.PolicySpecs()))
		shard       = flag.String("shard", "", "deprecated: i/n app shard (shard=i/n)")
		clusterFlag = flag.String("cluster", "",
			fmt.Sprintf("deprecated: nodes=N,mem=MB[,place=SPEC] (cluster.nodes=... ; placements: %v)", wild.PlacementNames()))
	)
	flag.Parse()

	grid, err := resolveGrid(*scenarioFlag, deprecatedFlags{
		trace: *tracePath, memory: *memPath, apps: *apps, days: *days,
		seed: *seed, policies: *policies, shard: *shard, cluster: *clusterFlag,
	})
	if err != nil {
		log.Fatal(err)
	}
	cells, err := grid.Scenarios()
	if err != nil {
		log.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// -fanout n: unsharded cells become n-way shard fan-outs, and every
	// unit runs in its own worker process (results are bit-identical to
	// the in-process sweep).
	run := wild.RunSweep
	if *fanout > 0 {
		for i := range cells {
			if cells[i].Shard == "" {
				cells[i].Shard = fmt.Sprintf("*/%d", *fanout)
			}
		}
		n := *fanout
		run = func(ctx context.Context, cs []wild.Scenario, opts ...wild.ScenarioOption) (*wild.SweepReport, error) {
			return wild.RunSweepProcs(ctx, cs, n, opts...)
		}
	}

	switch *format {
	case "table":
		if err := runTable(ctx, cells, run); err != nil {
			fatal(err)
		}
	case "csv", "json":
		rep, err := run(ctx, cells)
		if err != nil {
			fatal(err)
		}
		if *format == "csv" {
			err = rep.WriteCSV(os.Stdout)
		} else {
			err = rep.WriteJSON(os.Stdout)
		}
		if err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatalf("-format: unknown %q (table, csv, json)", *format)
	}
}

// fatal reports a sweep failure and exits non-zero. When the error is
// a per-cell failure, the failing cell's canonical scenario string is
// printed on its own stderr line first, so the cell can be re-run in
// isolation (coldsim -scenario '<that string>').
func fatal(err error) {
	var cellErr *wild.ScenarioCellError
	if errors.As(err, &cellErr) {
		fmt.Fprintf(os.Stderr, "coldsim: failing cell: %s\n", cellErr.Scenario)
	}
	log.Fatal(err)
}

// deprecatedFlags carries the pre-scenario flag values.
type deprecatedFlags struct {
	trace, memory   string
	apps            int
	days            float64
	seed            uint64
	policies, shard string
	cluster         string
}

// resolveGrid returns the sweep grid: parsed from -scenario (inline
// or @file), or desugared from the deprecated flags. Mixing the two
// styles is an error.
func resolveGrid(scenarioArg string, dep deprecatedFlags) (wild.ScenarioGrid, error) {
	deprecatedSet := false
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "trace", "memory", "apps", "days", "seed", "policies", "shard", "cluster":
			deprecatedSet = true
		}
	})
	if scenarioArg != "" {
		if deprecatedSet {
			return wild.ScenarioGrid{}, fmt.Errorf("-scenario cannot be combined with the deprecated trace/policy/cluster flags")
		}
		if path, ok := strings.CutPrefix(scenarioArg, "@"); ok {
			data, err := os.ReadFile(path)
			if err != nil {
				return wild.ScenarioGrid{}, err
			}
			scenarioArg = string(data)
		}
		return wild.ParseGrid(scenarioArg)
	}
	return desugar(dep)
}

// desugar translates the deprecated flags into the scenario grammar —
// the flags survive as aliases, but the grammar is the only parser.
func desugar(dep deprecatedFlags) (wild.ScenarioGrid, error) {
	var parts []string
	if dep.trace != "" {
		parts = append(parts, "source=csv:"+dep.trace)
	} else {
		parts = append(parts, fmt.Sprintf(
			"source=gen:apps=%d&days=%g&seed=%d&maxrate=2000&maxevents=20000",
			dep.apps, dep.days, dep.seed))
	}
	var specs []string
	for _, spec := range strings.Split(dep.policies, ",") {
		if spec = strings.TrimSpace(spec); spec != "" {
			specs = append(specs, spec)
		}
	}
	parts = append(parts, "policy=["+strings.Join(specs, ",")+"]")
	if dep.cluster != "" {
		for _, kv := range strings.Split(dep.cluster, ",") {
			kv = strings.TrimSpace(kv)
			if kv == "" {
				continue
			}
			key, val, ok := strings.Cut(kv, "=")
			if !ok {
				return wild.ScenarioGrid{}, fmt.Errorf("-cluster: want key=value, got %q", kv)
			}
			switch key {
			case "nodes", "mem":
				parts = append(parts, "cluster."+key+"="+val)
			case "place":
				parts = append(parts, "cluster.place="+val)
			default:
				return wild.ScenarioGrid{}, fmt.Errorf("-cluster: unknown key %q (nodes, mem, place)", key)
			}
		}
		if dep.memory != "" {
			parts = append(parts, "cluster.memcsv="+dep.memory)
		}
	} else if dep.memory != "" {
		log.Printf("warning: -memory is only used by cluster runs; ignoring %s", dep.memory)
	}
	if dep.shard != "" {
		parts = append(parts, "shard="+dep.shard)
	}
	return wild.ParseGrid(strings.Join(parts, "; "))
}

// runTable renders the human table: one row per cell, wasted memory
// normalized to the fixed-10-minute baseline of the cell's group (all
// assignments but the policy). Baseline cells missing from the sweep
// run implicitly and are not printed.
func runTable(ctx context.Context, cells []wild.Scenario,
	run func(context.Context, []wild.Scenario, ...wild.ScenarioOption) (*wild.SweepReport, error)) error {
	visible := len(cells)
	cells = append(cells, missingBaselines(cells)...)

	rep, err := run(ctx, cells)
	if err != nil {
		return err
	}

	// wasted_seconds per baseline group, for the normalized column.
	baseWaste := map[string]float64{}
	for _, c := range rep.Cells {
		if c.Scenario.Policy == baselineSpec {
			if w, ok := c.Metric("wasted_seconds"); ok {
				baseWaste[groupKey(c.Scenario)] = w
			}
		}
	}
	warnedNoTable := map[string]bool{}
	for _, c := range rep.Cells[:visible] {
		if c.MemDefaulted > 0 {
			log.Printf("warning: %s: %d apps missing from the memory table; charged the %d MB default",
				c.Scenario, c.MemDefaulted, int(wild.DefaultAppMemoryMB))
		}
		// CSV invocation tables carry no memory column at all: a
		// cluster run without cluster.memcsv charges every app the
		// default, which should be visible.
		if c.Scenario.Cluster != nil && c.Scenario.Cluster.MemCSV == "" &&
			strings.HasPrefix(c.Scenario.Source, "csv:") && !warnedNoTable[c.Scenario.Source] {
			warnedNoTable[c.Scenario.Source] = true
			log.Printf("warning: no cluster.memcsv table for %s; every app charged the %d MB default",
				c.Scenario.Source, int(wild.DefaultAppMemoryMB))
		}
	}

	labels := wild.ScenarioLabels(scenariosOf(rep))[:visible]
	cols := displayColumns(rep)
	fmt.Printf("sweep: %d cells\n\n", visible)
	widthLabel := len("cell")
	for _, l := range labels {
		if len(l) > widthLabel {
			widthLabel = len(l)
		}
	}
	fmt.Printf("%-*s %-28s", widthLabel, "cell", "policy")
	for _, col := range cols {
		fmt.Printf(" %14s", col)
	}
	fmt.Println()
	for i, c := range rep.Cells[:visible] {
		fmt.Printf("%-*s %-28s", widthLabel, labels[i], c.PolicyName)
		for _, col := range cols {
			fmt.Printf(" %14s", cellValue(c, col, baseWaste))
		}
		fmt.Println()
	}
	return nil
}

// missingBaselines returns one hidden fixed-10m baseline cell per
// group of cells (same assignments but the policy) that lacks one.
func missingBaselines(cells []wild.Scenario) []wild.Scenario {
	have := map[string]bool{}
	for _, sc := range cells {
		if sc.Policy == baselineSpec {
			have[groupKey(sc)] = true
		}
	}
	var extra []wild.Scenario
	added := map[string]bool{}
	for _, sc := range cells {
		key := groupKey(sc)
		if have[key] || added[key] {
			continue
		}
		added[key] = true
		base := sc
		base.Policy = baselineSpec
		extra = append(extra, base)
	}
	return extra
}

// groupKey identifies a cell's normalization group: its canonical
// string with the policy assignment blanked.
func groupKey(sc wild.Scenario) string {
	sc.Policy = ""
	return sc.String()
}

func scenariosOf(rep *wild.SweepReport) []wild.Scenario {
	out := make([]wild.Scenario, len(rep.Cells))
	for i, c := range rep.Cells {
		out[i] = c.Scenario
	}
	return out
}

// displayColumns selects the table columns from the report's metric
// union: raw totals are suppressed in favor of the normalized
// wasted-memory column, everything else passes through.
func displayColumns(rep *wild.SweepReport) []string {
	suppress := map[string]bool{
		"apps": true, "invocations": true, "cold_starts": true,
		"eviction_cold_starts": true, "failure_cold_starts": true,
		"policy_cold_starts": true,
	}
	var cols []string
	for _, name := range rep.MetricNames() {
		switch {
		case name == "wasted_seconds":
			cols = append(cols, "wasted(%)")
		case suppress[name]:
		default:
			cols = append(cols, name)
		}
	}
	return cols
}

// cellValue renders one table cell; "-" marks metrics the cell's
// sinks do not produce.
func cellValue(c *wild.ScenarioResult, col string, baseWaste map[string]float64) string {
	if col == "wasted(%)" {
		w, ok := c.Metric("wasted_seconds")
		if !ok {
			return "-"
		}
		base, ok := baseWaste[groupKey(c.Scenario)]
		if !ok || base == 0 {
			return "-"
		}
		return fmt.Sprintf("%.2f", 100*w/base)
	}
	v, ok := c.Metric(col)
	if !ok {
		return "-"
	}
	if col == "evictions" {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.2f", v)
}
