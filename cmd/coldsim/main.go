// Command coldsim runs keep-alive policy simulations over a trace
// (synthetic or an AzurePublicDataset invocations CSV) and prints the
// cold-start / wasted-memory comparison of §5.2.
//
// Usage:
//
//	coldsim -apps 400 -days 7                 # synthetic trace
//	coldsim -trace trace/invocations.csv      # real/saved trace
//	coldsim -policy hybrid -range 4h
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("coldsim: ")

	var (
		tracePath = flag.String("trace", "", "invocations CSV to replay (empty = synthesize)")
		apps      = flag.Int("apps", 400, "apps to synthesize when -trace is empty")
		days      = flag.Float64("days", 7, "days to synthesize when -trace is empty")
		seed      = flag.Uint64("seed", 42, "random seed for synthesis")
		histRange = flag.Duration("range", 4*time.Hour, "hybrid histogram range")
	)
	flag.Parse()

	tr := loadTrace(*tracePath, *apps, *days, *seed)
	fmt.Printf("trace: %d apps, %d invocations over %v\n\n",
		len(tr.Apps), tr.TotalInvocations(), tr.Duration)

	base := sim.Simulate(tr, policy.FixedKeepAlive{KeepAlive: 10 * time.Minute}, sim.Options{})
	pols := []policy.Policy{
		policy.NoUnloading{},
		policy.FixedKeepAlive{KeepAlive: 10 * time.Minute},
		policy.FixedKeepAlive{KeepAlive: time.Hour},
		policy.FixedKeepAlive{KeepAlive: 2 * time.Hour},
		hybrid(*histRange),
	}
	fmt.Printf("%-28s %12s %12s %14s\n", "policy", "coldQ3(%)", "coldMed(%)", "wastedMem(%)")
	for _, p := range pols {
		r := sim.Simulate(tr, p, sim.Options{})
		cps := r.ColdPercents()
		med := 0.0
		if len(cps) > 0 {
			med = stats.Percentile(cps, 50)
		}
		fmt.Printf("%-28s %12.2f %12.2f %14.2f\n",
			r.Policy, metrics.ThirdQuartileColdPercent(r), med,
			metrics.NormalizedWastedMemory(r, base))
	}
}

func hybrid(histRange time.Duration) policy.Policy {
	cfg := policy.DefaultHybridConfig()
	cfg.Histogram.NumBins = int(histRange / cfg.Histogram.BinWidth)
	return policy.NewHybrid(cfg)
}

func loadTrace(path string, apps int, days float64, seed uint64) *trace.Trace {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		tr, err := trace.ReadInvocationsCSV(f)
		if err != nil {
			log.Fatal(err)
		}
		return tr
	}
	pop, err := workload.Generate(workload.Config{
		Seed: seed, NumApps: apps,
		Duration:     time.Duration(days * 24 * float64(time.Hour)),
		MaxDailyRate: 2000, MaxEventsPerFunction: 20000,
	})
	if err != nil {
		log.Fatal(err)
	}
	return pop.Trace
}
