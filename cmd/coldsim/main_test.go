package main

import (
	"strings"
	"testing"

	wild "repro"
)

// TestDesugarDeprecatedFlags pins that the pre-scenario flags keep
// working by desugaring into the scenario grammar — the grammar is
// the only parser left.
func TestDesugarDeprecatedFlags(t *testing.T) {
	g, err := desugar(deprecatedFlags{
		trace: "inv.csv", memory: "mem.csv",
		policies: "fixed?ka=20m, hybrid?range=4h&cv=5",
		shard:    "0/4",
		cluster:  "nodes=8,mem=4096,place=binpack?order=invocations",
	})
	if err != nil {
		t.Fatal(err)
	}
	cells, err := g.Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("cells = %d, want 2", len(cells))
	}
	want := wild.Scenario{
		Source: "csv:inv.csv",
		Policy: "fixed?ka=20m",
		Cluster: &wild.ScenarioCluster{
			Nodes: 8, NodeMemMB: 4096,
			Placement: "binpack?order=invocations", MemCSV: "mem.csv",
		},
		Shard: "0/4",
	}
	if cells[0].String() != want.String() {
		t.Fatalf("cell 0 = %q, want %q", cells[0].String(), want.String())
	}
	if cells[1].Policy != "hybrid?range=4h&cv=5" {
		t.Fatalf("cell 1 policy = %q", cells[1].Policy)
	}
}

// TestDesugarSynthetic pins the synthetic-trace desugaring (the old
// -apps/-days/-seed flags).
func TestDesugarSynthetic(t *testing.T) {
	g, err := desugar(deprecatedFlags{
		apps: 400, days: 7, seed: 42, policies: defaultPolicies,
	})
	if err != nil {
		t.Fatal(err)
	}
	cells, err := g.Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 5 {
		t.Fatalf("cells = %d, want 5 default policies", len(cells))
	}
	wantSrc := "gen:apps=400&days=7&seed=42&maxrate=2000&maxevents=20000"
	if cells[0].Source != wantSrc {
		t.Fatalf("source = %q, want %q", cells[0].Source, wantSrc)
	}
}

// TestDesugarClusterErrors pins that unknown -cluster keys still fail
// fast with the old guidance.
func TestDesugarClusterErrors(t *testing.T) {
	_, err := desugar(deprecatedFlags{policies: "hybrid", cluster: "nodes=8,memory=4096"})
	if err == nil || !strings.Contains(err.Error(), `unknown key "memory"`) {
		t.Fatalf("err = %v, want unknown key", err)
	}
	_, err = desugar(deprecatedFlags{policies: "hybrid", cluster: "nodes"})
	if err == nil || !strings.Contains(err.Error(), "want key=value") {
		t.Fatalf("err = %v, want key=value", err)
	}
	// Bad values surface through the scenario grammar now.
	_, err = desugar(deprecatedFlags{policies: "hybrid", cluster: "nodes=zero"})
	if err == nil || !strings.Contains(err.Error(), "cluster.nodes") {
		t.Fatalf("err = %v, want cluster.nodes error", err)
	}
}

// TestMissingBaselines pins the implicit-baseline injection the
// normalized wasted-memory column relies on.
func TestMissingBaselines(t *testing.T) {
	g, err := wild.ParseGrid("source=gen:apps=10; policy=[nounload,hybrid]; cluster.nodes=2; cluster.mem=[0,1024]")
	if err != nil {
		t.Fatal(err)
	}
	cells, err := g.Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	extra := missingBaselines(cells)
	if len(extra) != 2 { // one per distinct cluster.mem group
		t.Fatalf("extra baselines = %d, want 2 (%v)", len(extra), extra)
	}
	for _, sc := range extra {
		if sc.Policy != baselineSpec {
			t.Fatalf("baseline policy = %q", sc.Policy)
		}
	}
	// A sweep that already includes the baseline gets no extras.
	g2, err := wild.ParseGrid("source=gen:apps=10; policy=[fixed?ka=10m,hybrid]")
	if err != nil {
		t.Fatal(err)
	}
	cells2, err := g2.Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	if extra := missingBaselines(cells2); len(extra) != 0 {
		t.Fatalf("unexpected extra baselines: %v", extra)
	}
}
