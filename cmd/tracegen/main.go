// Command tracegen materializes a trace source and writes it in the
// AzurePublicDataset CSV schemas (invocations per minute, duration
// summaries, per-app memory). The source is a scenario source spec —
// the same grammar every other binary uses — so tracegen generates
// synthetic populations, re-shards existing CSVs, or slices either.
//
// Usage:
//
//	tracegen -source 'gen:apps=500&days=7&seed=42' -out ./trace
//	tracegen -source 'shard:2/8 of gen:apps=100000&seed=42' -out ./trace-shard2
//	tracegen -source 'csv:big.csv' -out ./copy
//	tracegen -source 'gen:apps=1000000&seed=42' -encode -out ./trace
//
// With -encode the output is a single compact binary bundle
// (trace.bin, readable via the tracec: source scheme) instead of the
// CSV trio: one file, run-length + varint compressed invocation
// columns, exec stats and memory carried natively.
//
// Deprecated aliases (desugared into the source grammar):
//
//	tracegen -apps 500 -days 7 -seed 42 -out ./trace
//	tracegen -apps 100000 -shard 2/8 -out ./trace-shard2
//
// With a shard source only the selected interleaved app shard is
// written — n invocations of tracegen (same seed) partition one large
// population across files for multi-process simulation sweeps.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/scenario"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracegen: ")

	var (
		source = flag.String("source", "",
			fmt.Sprintf("trace source spec (schemes: %v); replaces the deprecated flags below", scenario.SourceNames()))
		out    = flag.String("out", "trace", "output directory")
		encode = flag.Bool("encode", false, "write a compact binary bundle (trace.bin) instead of the CSV trio")

		// Deprecated aliases, desugared into the source grammar.
		apps    = flag.Int("apps", 500, "deprecated: number of applications (gen:apps=...)")
		days    = flag.Float64("days", 7, "deprecated: trace length in days (gen:days=...)")
		seed    = flag.Uint64("seed", 42, "deprecated: random seed (gen:seed=...)")
		maxRate = flag.Float64("max-rate", 20000, "deprecated: cap on invocations/day per function (gen:maxrate=...)")
		maxEvts = flag.Int("max-events", 200000, "deprecated: cap on events per function (gen:maxevents=...)")
		shard   = flag.String("shard", "", "deprecated: i/n interleaved app shard (shard:i/n of ...)")
	)
	flag.Parse()

	spec := *source
	if spec == "" {
		spec = fmt.Sprintf("gen:apps=%d&days=%g&seed=%d&maxrate=%g&maxevents=%d",
			*apps, *days, *seed, *maxRate, *maxEvts)
		if *shard != "" {
			spec = fmt.Sprintf("shard:%s of %s", *shard, spec)
		}
	} else if *shard != "" {
		log.Fatal("-shard cannot be combined with -source; use 'shard:i/n of <spec>'")
	}

	factory, err := scenario.NewSource(spec)
	if err != nil {
		log.Fatal(err)
	}
	src, release, err := factory.Open()
	if err != nil {
		log.Fatal(err)
	}
	tr, err := trace.Collect(src)
	if cerr := release(); err == nil {
		err = cerr
	}
	if err != nil {
		log.Fatal(err)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}

	write := func(name string, fn func(f *os.File) error) {
		path := filepath.Join(*out, name)
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := fn(f); err != nil {
			log.Fatalf("writing %s: %v", path, err)
		}
		fmt.Printf("wrote %s\n", path)
	}
	if *encode {
		write("trace.bin", func(f *os.File) error {
			return trace.WriteBinary(f, tr)
		})
	} else {
		write("invocations.csv", func(f *os.File) error {
			return trace.WriteInvocationsCSV(f, tr)
		})
		write("durations.csv", func(f *os.File) error {
			return trace.WriteDurationsCSV(f, tr)
		})
		write("memory.csv", func(f *os.File) error {
			return trace.WriteMemoryCSV(f, tr)
		})
	}
	fmt.Printf("materialized %s: %d apps, %d functions, %d invocations over %v\n",
		factory.Spec(), len(tr.Apps), tr.TotalFunctions(), tr.TotalInvocations(), tr.Duration)
}
