// Command tracegen generates a synthetic FaaS trace calibrated to the
// paper's published workload distributions and writes it in the
// AzurePublicDataset CSV schemas (invocations per minute, duration
// summaries, per-app memory).
//
// Usage:
//
//	tracegen -apps 500 -days 7 -seed 42 -out ./trace
//	tracegen -apps 100000 -shard 2/8 -out ./trace-shard2
//
// produces trace/invocations.csv, trace/durations.csv and
// trace/memory.csv. With -shard i/n only the i-th of n interleaved
// app shards is written — n invocations of tracegen (same seed)
// partition one large population across files for multi-process
// simulation sweeps.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracegen: ")

	var (
		apps    = flag.Int("apps", 500, "number of applications")
		days    = flag.Float64("days", 7, "trace length in days")
		seed    = flag.Uint64("seed", 42, "random seed")
		maxRate = flag.Float64("max-rate", 20000, "cap on realized invocations/day per function")
		maxEvts = flag.Int("max-events", 200000, "cap on events per function")
		out     = flag.String("out", "trace", "output directory")
		shard   = flag.String("shard", "", "i/n: write only the i-th of n interleaved app shards")
	)
	flag.Parse()

	// The population streams out of the generator source app by app;
	// only the (possibly sharded) subset being written is retained.
	src, err := workload.NewSource(workload.Config{
		Seed:                 *seed,
		NumApps:              *apps,
		Duration:             time.Duration(*days * 24 * float64(time.Hour)),
		MaxDailyRate:         *maxRate,
		MaxEventsPerFunction: *maxEvts,
	})
	if err != nil {
		log.Fatal(err)
	}
	var picked trace.Source = src
	if *shard != "" {
		i, n, err := trace.ParseShard(*shard)
		if err != nil {
			log.Fatalf("-shard: %v", err)
		}
		picked = trace.Shard(src, i, n)
	}
	tr, err := trace.Collect(picked)
	if err != nil {
		log.Fatal(err)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}

	write := func(name string, fn func(f *os.File) error) {
		path := filepath.Join(*out, name)
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := fn(f); err != nil {
			log.Fatalf("writing %s: %v", path, err)
		}
		fmt.Printf("wrote %s\n", path)
	}
	write("invocations.csv", func(f *os.File) error {
		return trace.WriteInvocationsCSV(f, tr)
	})
	write("durations.csv", func(f *os.File) error {
		return trace.WriteDurationsCSV(f, tr)
	})
	write("memory.csv", func(f *os.File) error {
		return trace.WriteMemoryCSV(f, tr)
	})
	fmt.Printf("generated %d apps, %d functions, %d invocations over %v\n",
		len(tr.Apps), tr.TotalFunctions(), tr.TotalInvocations(), tr.Duration)
}
