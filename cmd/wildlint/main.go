// Command wildlint runs the repository's semantic-contract analyzers
// (internal/lint) over the tree:
//
//	go run ./cmd/wildlint ./...
//
// It prints file:line:col diagnostics and exits 0 when clean, 1 when
// any contract is violated, 2 on load/usage errors. -run selects a
// comma-separated subset of analyzers; -list names them.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	runFlag := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	listFlag := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: wildlint [-run analyzers] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *listFlag {
		for _, a := range lint.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := lint.All()
	if *runFlag != "" {
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*runFlag, ",") {
			a := lint.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "wildlint: unknown analyzer %q (use -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.LoadPackages(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wildlint: %v\n", err)
		os.Exit(2)
	}
	diags, err := lint.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wildlint: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "wildlint: %d contract violation(s)\n", len(diags))
		os.Exit(1)
	}
}
