// Command faasd runs the in-process FaaS platform (the OpenWhisk
// analogue of §4.3) behind an HTTP API, with a selectable keep-alive
// policy.
//
// Usage:
//
//	faasd -listen :8080 -policy 'hybrid?range=4h'
//	faasd -policy 'fixed?ka=20m' -record traffic.bundle
//	curl -X PUT  localhost:8080/actions/hello -d '{"exec_ms":50,"memory_mb":128}'
//	curl -X POST localhost:8080/invoke/hello
//	curl         localhost:8080/stats
//
// With -record, every invocation is captured and written out as an
// incident bundle on shutdown (Ctrl-C), replayable with
// coldsim -scenario 'source=bundle:traffic.bundle; policy=[...]'.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"time"

	"repro/internal/platform"
	"repro/internal/policy"
	"repro/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("faasd: ")

	var (
		listen  = flag.String("listen", ":8080", "HTTP listen address")
		polSpec = flag.String("policy", "hybrid",
			fmt.Sprintf("keep-alive policy spec, e.g. 'hybrid?range=4h' or 'fixed?ka=20m' (registered: %v)", policy.SpecNames()))
		invokers  = flag.Int("invokers", 4, "invoker count")
		coldStart = flag.Duration("cold-start", 500*time.Millisecond, "simulated container cold start")
		record    = flag.String("record", "", "write served traffic as an incident bundle on shutdown")
	)
	flag.Parse()

	pol, err := policy.FromSpec(*polSpec)
	if err != nil {
		log.Fatal(err)
	}

	cfg := platform.Config{
		NumInvokers:    *invokers,
		ColdStartDelay: *coldStart,
	}
	var rec *serve.Recorder
	if *record != "" {
		rec = serve.NewRecorder(time.Now()) //wildlint:allow wallclock
		cfg.Recorder = rec
	}

	p := platform.NewPlatform(cfg, pol)
	defer p.Stop()

	api := platform.NewAPI(p)
	fmt.Printf("faasd: %d invokers, policy %s, listening on %s\n",
		*invokers, pol.Name(), *listen)

	srv := &http.Server{Addr: *listen, Handler: api}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	go func() {
		<-ctx.Done()
		srv.Shutdown(context.Background())
	}()
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}

	if rec != nil {
		f, err := os.Create(*record)
		if err != nil {
			log.Fatal(err)
		}
		if err := rec.WriteBundle(f, "faasd", 0); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		log.Printf("recorded %d invocations to %s", rec.Invocations(), *record)
	}
}
