// Command faasd runs the in-process FaaS platform (the OpenWhisk
// analogue of §4.3) behind an HTTP API, with a selectable keep-alive
// policy.
//
// Usage:
//
//	faasd -listen :8080 -policy hybrid
//	curl -X PUT  localhost:8080/actions/hello -d '{"exec_ms":50,"memory_mb":128}'
//	curl -X POST localhost:8080/invoke/hello
//	curl         localhost:8080/stats
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"repro/internal/platform"
	"repro/internal/policy"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("faasd: ")

	var (
		listen    = flag.String("listen", ":8080", "HTTP listen address")
		polName   = flag.String("policy", "hybrid", "keep-alive policy: hybrid | fixed | nounload")
		keepAlive = flag.Duration("keep-alive", 10*time.Minute, "fixed policy keep-alive")
		histRange = flag.Duration("range", 4*time.Hour, "hybrid histogram range")
		invokers  = flag.Int("invokers", 4, "invoker count")
		coldStart = flag.Duration("cold-start", 500*time.Millisecond, "simulated container cold start")
	)
	flag.Parse()

	var pol policy.Policy
	switch *polName {
	case "hybrid":
		cfg := policy.DefaultHybridConfig()
		cfg.Histogram.NumBins = int(*histRange / cfg.Histogram.BinWidth)
		pol = policy.NewHybrid(cfg)
	case "fixed":
		pol = policy.FixedKeepAlive{KeepAlive: *keepAlive}
	case "nounload":
		pol = policy.NoUnloading{}
	default:
		log.Fatalf("unknown policy %q", *polName)
	}

	p := platform.NewPlatform(platform.Config{
		NumInvokers:    *invokers,
		ColdStartDelay: *coldStart,
	}, pol)
	defer p.Stop()

	api := platform.NewAPI(p)
	fmt.Printf("faasd: %d invokers, policy %s, listening on %s\n",
		*invokers, pol.Name(), *listen)
	if err := http.ListenAndServe(*listen, api); err != nil {
		log.Fatal(err)
	}
}
