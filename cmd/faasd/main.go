// Command faasd runs the in-process FaaS platform (the OpenWhisk
// analogue of §4.3) behind an HTTP API, with a selectable keep-alive
// policy.
//
// Usage:
//
//	faasd -listen :8080 -policy 'hybrid?range=4h'
//	faasd -policy 'fixed?ka=20m'
//	curl -X PUT  localhost:8080/actions/hello -d '{"exec_ms":50,"memory_mb":128}'
//	curl -X POST localhost:8080/invoke/hello
//	curl         localhost:8080/stats
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"repro/internal/platform"
	"repro/internal/policy"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("faasd: ")

	var (
		listen  = flag.String("listen", ":8080", "HTTP listen address")
		polSpec = flag.String("policy", "hybrid",
			fmt.Sprintf("keep-alive policy spec, e.g. 'hybrid?range=4h' or 'fixed?ka=20m' (registered: %v)", policy.SpecNames()))
		invokers  = flag.Int("invokers", 4, "invoker count")
		coldStart = flag.Duration("cold-start", 500*time.Millisecond, "simulated container cold start")
	)
	flag.Parse()

	pol, err := policy.FromSpec(*polSpec)
	if err != nil {
		log.Fatal(err)
	}

	p := platform.NewPlatform(platform.Config{
		NumInvokers:    *invokers,
		ColdStartDelay: *coldStart,
	}, pol)
	defer p.Stop()

	api := platform.NewAPI(p)
	fmt.Printf("faasd: %d invokers, policy %s, listening on %s\n",
		*invokers, pol.Name(), *listen)
	if err := http.ListenAndServe(*listen, api); err != nil {
		log.Fatal(err)
	}
}
