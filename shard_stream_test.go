package wild

import (
	"context"
	"math"
	"testing"
	"time"
)

// TestShardedStreamingRunMergesToWhole is the streaming counterpart
// of the facade shard-sum test: the n interleaved shards of a
// streaming source, each run through Run with incremental sinks, must
// merge to the unsharded run's aggregates — integer counters and the
// binned cold-start distribution exactly, the float waste total up to
// summation order. This is the contract multi-process scale-out
// relies on: n processes each simulate one shard and a reducer merges
// their sinks.
func TestShardedStreamingRunMergesToWhole(t *testing.T) {
	cfg := WorkloadConfig{
		Seed: 77, NumApps: 120, Duration: 12 * time.Hour,
		MaxDailyRate: 500, MaxEventsPerFunction: 1500,
	}
	ctx := context.Background()

	runSinks := func(src TraceSource) (*ColdStartSink, *WastedMemorySink) {
		cold, wasted := NewColdStartSink(), NewWastedMemorySink()
		if _, err := Run(ctx, src, MustFromSpec("hybrid"), WithSink(cold), WithSink(wasted)); err != nil {
			t.Fatal(err)
		}
		return cold, wasted
	}

	wholeSrc, err := GeneratorSource(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wholeCold, wholeWasted := runSinks(wholeSrc)

	for _, n := range []int{2, 3, 5} {
		mergedCold, mergedWasted := NewColdStartSink(), NewWastedMemorySink()
		for i := 0; i < n; i++ {
			src, err := GeneratorSource(cfg)
			if err != nil {
				t.Fatal(err)
			}
			cold, wasted := runSinks(Shard(src, i, n))
			mergedCold.Merge(cold)
			mergedWasted.Merge(wasted)
		}
		if mergedCold.AppCount() != wholeCold.AppCount() {
			t.Fatalf("n=%d: merged %d apps, whole %d", n, mergedCold.AppCount(), wholeCold.AppCount())
		}
		// The distribution is integer bins: every quantile and ECDF
		// read-out must agree exactly with the unsharded sink.
		for _, p := range []float64{0, 10, 25, 50, 75, 90, 99, 100} {
			if g, w := mergedCold.Quantile(p), wholeCold.Quantile(p); g != w {
				t.Errorf("n=%d: Quantile(%g) merged %v, whole %v", n, p, g, w)
			}
		}
		for _, x := range []float64{0, 1, 5, 25, 50, 100} {
			if g, w := mergedCold.ECDF(x), wholeCold.ECDF(x); g != w {
				t.Errorf("n=%d: ECDF(%g) merged %v, whole %v", n, x, g, w)
			}
		}
		if mergedWasted.Apps() != wholeWasted.Apps() ||
			mergedWasted.TotalInvocations() != wholeWasted.TotalInvocations() ||
			mergedWasted.TotalColdStarts() != wholeWasted.TotalColdStarts() {
			t.Errorf("n=%d: merged counters (%d apps, %d inv, %d cold) vs whole (%d, %d, %d)",
				n, mergedWasted.Apps(), mergedWasted.TotalInvocations(), mergedWasted.TotalColdStarts(),
				wholeWasted.Apps(), wholeWasted.TotalInvocations(), wholeWasted.TotalColdStarts())
		}
		g, w := mergedWasted.TotalWastedSeconds(), wholeWasted.TotalWastedSeconds()
		if math.Abs(g-w) > 1e-9*math.Abs(w) {
			t.Errorf("n=%d: merged waste %v, whole %v", n, g, w)
		}
	}

	// Cross-check the streamed whole against the batch pipeline.
	pop, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	batch := Simulate(pop.Trace, MustFromSpec("hybrid"))
	if got, want := wholeWasted.TotalColdStarts(), int64(batch.TotalColdStarts()); got != want {
		t.Errorf("streamed cold starts %d, batch %d", got, want)
	}
	if g, w := wholeWasted.TotalWastedSeconds(), batch.TotalWastedSeconds(); math.Abs(g-w) > 1e-9*math.Abs(w) {
		t.Errorf("streamed waste %v, batch %v", g, w)
	}
}
