package wild

import (
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/policy"
	"repro/internal/scenario"
)

// TestUnknownKeyErrorsListKnownKeys pins the unknown-parameter
// diagnostics across the component registries: a misspelled key must
// fail fast AND name the keys the builder actually understands, so
// the fix is one glance away. Each case misspells a real parameter
// and asserts both the rejection and the vocabulary listing.
func TestUnknownKeyErrorsListKnownKeys(t *testing.T) {
	cases := []struct {
		name  string
		build func() error
		// wantUnknown is the misspelled key the error must name;
		// wantKnown are vocabulary entries that must be listed.
		wantUnknown string
		wantKnown   []string
	}{
		{
			name: "policy",
			build: func() error {
				_, err := policy.FromSpec("hybrid?binwdith=2m")
				return err
			},
			wantUnknown: "binwdith",
			wantKnown:   []string{"binwidth", "cv", "exact", "refit"},
		},
		{
			name: "placement",
			build: func() error {
				_, err := cluster.NewPlacement("binpack?ordr=invocations")
				return err
			},
			wantUnknown: "ordr",
			wantKnown:   []string{"order"},
		},
		{
			name: "sink",
			build: func() error {
				_, err := scenario.NewSink("coldstart?quantiles=50")
				return err
			},
			wantUnknown: "quantiles",
			wantKnown:   []string{"q"},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.build()
			if err == nil {
				t.Fatal("misspelled key accepted")
			}
			msg := err.Error()
			if !strings.Contains(msg, "unknown parameters") || !strings.Contains(msg, c.wantUnknown) {
				t.Errorf("error does not name the unknown key %q: %v", c.wantUnknown, err)
			}
			if !strings.Contains(msg, "known:") {
				t.Fatalf("error does not list known keys: %v", err)
			}
			for _, k := range c.wantKnown {
				if !strings.Contains(msg, k) {
					t.Errorf("error does not list known key %q: %v", k, err)
				}
			}
		})
	}
}
