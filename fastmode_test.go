package wild

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/equiv"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/trace"
)

// fastSpec appends the fast-lane parameters to a hybrid policy spec;
// non-hybrid specs have no fast lane and compare against themselves
// (trivially zero divergence, keeping the corpus walk uniform).
func fastSpec(spec string) string {
	if !strings.HasPrefix(spec, "hybrid") {
		return spec
	}
	if strings.Contains(spec, "?") {
		return spec + "&exact=off&refit=1m"
	}
	return spec + "?exact=off&refit=1m"
}

// fastHybrid returns the fast-lane twin of a hybrid config: exact=off
// with the 1-minute amortized refit the benchmarks use.
func fastHybrid(cfg policy.HybridConfig) policy.Policy {
	cfg.FastMode = true
	cfg.RefitInterval = time.Minute
	return policy.NewHybrid(cfg)
}

// TestFastModeEquivGolden is the CI contract for the fast lane over
// the golden scenario corpus: for every hybrid golden scenario, the
// exact=off&refit=1m twin must stay within the default tolerances —
// decision flip rate at most 1%, cold-start percentile movement at
// most half a point, normalized waste within a point of the exact
// lane's.
func TestFastModeEquivGolden(t *testing.T) {
	pop := goldenPopulation(t)
	for _, sc := range goldenScenarios() {
		hp, ok := sc.pol.(*policy.Hybrid)
		if !ok {
			continue // fixed / no-unloading have no fast lane
		}
		t.Run(sc.name, func(t *testing.T) {
			rep := equiv.CompareTrace(sc.name, pop.Trace, sc.pol, fastHybrid(hp.Config()), sc.opt)
			t.Logf("%s: %d/%d flips (%.4f%%), cold deltas %v, waste %.3f%%",
				sc.name, rep.Flips, rep.Invocations, rep.FlipRate()*100, rep.ColdDeltas(), rep.WastePct)
			if err := rep.Check(equiv.DefaultTolerances()); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestFastModeEquivIncidents runs the equivalence harness over the
// checked-in incident corpus (testdata/scenarios/*.json), comparing
// the lanes under the cluster engine: decision flips, metric deltas,
// and the cold-start attribution totals (policy, eviction-induced,
// failure-induced) must all stay within tolerance.
func TestFastModeEquivIncidents(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "scenarios", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("incident corpus is empty")
	}
	for _, path := range files {
		name := strings.TrimSuffix(filepath.Base(path), ".json")
		t.Run(name, func(t *testing.T) {
			sc := readIncident(t, path)
			tr := incidentTrace(t, sc.Source)
			events, err := cluster.ParseEvents(sc.Cluster.Events)
			if err != nil {
				t.Fatal(err)
			}
			place, err := cluster.NewPlacement(sc.Cluster.Placement)
			if err != nil {
				t.Fatal(err)
			}
			cfg := cluster.Config{
				Nodes:       sc.Cluster.Nodes,
				NodeMemMB:   sc.Cluster.NodeMemMB,
				Placement:   place,
				UseExecTime: sc.ExecTime,
				Events:      events,
			}
			rep := equiv.CompareCluster(name, tr,
				policy.MustFromSpec(sc.Policy), policy.MustFromSpec(fastSpec(sc.Policy)),
				cfg, sim.Options{UseExecTime: sc.ExecTime})
			t.Logf("%s: %d/%d flips, cold deltas %v, waste %.3f%%, attr exact %+v fast %+v",
				name, rep.Flips, rep.Invocations, rep.ColdDeltas(), rep.WastePct, rep.AttrExact, rep.AttrFast)
			if err := rep.Check(equiv.DefaultTolerances()); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestFastModeCVTieOnThreshold pins the flip-rate harness at the
// known divergence hotspot: a 5-bin histogram with all mass in one
// bin has bin-count CV of exactly sqrt(5*c^2/c^2 - 1) = 2, landing
// precisely on the paper's threshold for every observation. The fast
// lane's closed-form integer gate (5*sumSq vs 5*total^2) resolves
// the tie the same way every time; the exact lane's incremental
// Welford moments wobble around it with accumulated float rounding —
// this is precisely why the closed-form rewrite was reverted from
// the exact path in PR 1 and exists only behind exact=off. The
// harness must measure that divergence (nonzero flips) and flag it
// against the default tolerances on this adversarial trace, rather
// than letting a tie-heavy workload ship as silently equivalent.
func TestFastModeCVTieOnThreshold(t *testing.T) {
	cfg := policy.DefaultHybridConfig()
	cfg.Histogram.NumBins = 5
	exact := policy.NewHybrid(cfg)
	fast := cfg
	fast.FastMode = true

	// One app, every idle in bin 1 (90s with 1-minute bins): the CV
	// sits exactly on 2 from the first observation on.
	var times []float64
	for i := 0; i < 200; i++ {
		times = append(times, float64(i)*90)
	}
	tr := &trace.Trace{
		Duration: 6 * time.Hour,
		Apps:     []*trace.App{{ID: "tie", Functions: []*trace.Function{{ID: "tie-f", Invocations: times}}}},
	}
	rep := equiv.CompareTrace("cv-tie", tr, exact, policy.NewHybrid(fast), sim.Options{})
	if rep.Invocations != 200 {
		t.Fatalf("compared %d invocations, want 200", rep.Invocations)
	}
	if rep.Flips == 0 {
		t.Error("CV tie on threshold 2 produced no flips; the harness failed to detect the documented tie-resolution divergence")
	}
	t.Logf("cv-tie: %d/%d flips (%.2f%%)", rep.Flips, rep.Invocations, rep.FlipRate()*100)
	err := rep.Check(equiv.DefaultTolerances())
	if err == nil {
		t.Error("tie-saturated trace passed the default tolerances; the flip-rate bound is vacuous")
	} else if !strings.Contains(err.Error(), "flip rate") {
		t.Errorf("expected a flip-rate violation, got: %v", err)
	}
}

// TestFastModeRefitZeroMatchesPerInvocationRefit pins refit=0's
// semantics: the amortization gate never holds, so every forecast
// observation refits exactly as the exact lane's §4.2 per-invocation
// semantics mandate. The decision stream of exact=off&refit=0 must be
// identical to plain exact=off (whose default refit is 0) on an
// ARIMA-heavy trace, and both flip nothing against each other.
func TestFastModeRefitZeroMatchesPerInvocationRefit(t *testing.T) {
	// Sparse app: every idle out of the 4h histogram range, driving
	// the OOB/forecast regime.
	var times []float64
	for i := 0; i < 60; i++ {
		times = append(times, float64(i)*5*3600)
	}
	tr := &trace.Trace{
		Duration: 90 * time.Hour,
		Apps:     []*trace.App{{ID: "oob", Functions: []*trace.Function{{ID: "oob-f", Invocations: times}}}},
	}
	rep := equiv.CompareTrace("refit0", tr,
		policy.MustFromSpec("hybrid?exact=off&refit=0"),
		policy.MustFromSpec("hybrid?exact=off"),
		sim.Options{})
	if rep.Flips != 0 {
		t.Errorf("refit=0 diverged from the default per-invocation refit: %d flips", rep.Flips)
	}
	// And refit=0 against the exact lane refits identically too: the
	// only licensed divergences are CV ties and percentile rounding,
	// neither of which this single-regime trace exercises.
	rep = equiv.CompareTrace("refit0-vs-exact", tr,
		policy.NewHybrid(policy.DefaultHybridConfig()),
		policy.MustFromSpec("hybrid?exact=off&refit=0"),
		sim.Options{})
	if rep.Flips != 0 {
		t.Errorf("exact=off&refit=0 diverged from the exact lane on a pure-OOB trace: %d flips", rep.Flips)
	}
}

// TestFastModeClusterAttributionInvariant asserts the eviction
// attribution identity under exact=off: for every app, cluster cold
// starts = policy cold starts (batch sim) + eviction-induced +
// failure-induced, exactly as the exact lane's incident invariant
// test demands. The fast lane changes which decisions are made, not
// the attribution bookkeeping.
func TestFastModeClusterAttributionInvariant(t *testing.T) {
	path := filepath.Join("testdata", "scenarios", "burst-under-pressure.json")
	sc := readIncident(t, path)
	tr := incidentTrace(t, sc.Source)
	events, err := cluster.ParseEvents(sc.Cluster.Events)
	if err != nil {
		t.Fatal(err)
	}
	place, err := cluster.NewPlacement(sc.Cluster.Placement)
	if err != nil {
		t.Fatal(err)
	}
	pol := policy.MustFromSpec(fastSpec(sc.Policy))
	got := cluster.Simulate(tr, pol, cluster.Config{
		Nodes:       sc.Cluster.Nodes,
		NodeMemMB:   sc.Cluster.NodeMemMB,
		Placement:   place,
		UseExecTime: sc.ExecTime,
		Events:      events,
	})
	want := sim.Simulate(tr, pol, sim.Options{UseExecTime: sc.ExecTime})
	if len(got.Apps) != len(want.Apps) {
		t.Fatalf("%d cluster apps, %d sim apps", len(got.Apps), len(want.Apps))
	}
	evict := 0
	for i, w := range want.Apps {
		g := got.Apps[i]
		if g.ColdStarts != w.ColdStarts+g.EvictionColdStarts+g.FailureColdStarts {
			t.Errorf("app %s: cluster cold=%d != sim cold=%d + eviction=%d + failure=%d",
				g.AppID, g.ColdStarts, w.ColdStarts, g.EvictionColdStarts, g.FailureColdStarts)
		}
		evict += g.EvictionColdStarts
	}
	if evict == 0 {
		t.Error("pressure incident produced no eviction-induced cold starts under the fast lane (vacuous)")
	}
}

// readIncident parses one incident scenario file.
func readIncident(t *testing.T, path string) Scenario {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := ParseScenario(string(data))
	if err != nil {
		t.Fatal(err)
	}
	return sc
}
