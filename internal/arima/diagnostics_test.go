package arima

import (
	"math"
	"testing"

	"repro/internal/stats"
)

func TestACFWhiteNoiseNearZero(t *testing.T) {
	r := stats.NewRNG(1)
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = r.NormFloat64()
	}
	for lag, rho := range ACF(xs, 5) {
		if math.Abs(rho) > 0.05 {
			t.Fatalf("lag %d ACF = %v, want ~0", lag+1, rho)
		}
	}
}

func TestACFAR1Positive(t *testing.T) {
	xs := genAR(0.8, 5000, 2)
	acf := ACF(xs, 3)
	if acf[0] < 0.7 || acf[0] > 0.9 {
		t.Fatalf("lag-1 ACF = %v, want ~0.8", acf[0])
	}
	// Geometric decay: lag2 ~ 0.64, lag3 ~ 0.51.
	if acf[1] < acf[2] || acf[0] < acf[1] {
		t.Fatalf("ACF not decaying: %v", acf)
	}
}

func TestACFEdgeCases(t *testing.T) {
	if got := ACF(nil, 3); len(got) != 3 || got[0] != 0 {
		t.Fatalf("nil series ACF = %v", got)
	}
	constant := []float64{5, 5, 5, 5}
	for _, rho := range ACF(constant, 2) {
		if rho != 0 {
			t.Fatalf("constant series ACF = %v", rho)
		}
	}
}

func TestLjungBoxWhiteNoiseHighP(t *testing.T) {
	r := stats.NewRNG(3)
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = r.NormFloat64()
	}
	_, p := LjungBox(xs, 10, 0)
	if p < 0.01 {
		t.Fatalf("white noise rejected: p = %v", p)
	}
}

func TestLjungBoxAR1LowP(t *testing.T) {
	xs := genAR(0.8, 1000, 4)
	stat, p := LjungBox(xs, 10, 0)
	if p > 1e-6 {
		t.Fatalf("strongly correlated series accepted: stat=%v p=%v", stat, p)
	}
}

func TestLjungBoxDegenerate(t *testing.T) {
	if _, p := LjungBox([]float64{1, 2}, 5, 0); p != 1 {
		t.Fatalf("short series p = %v, want 1", p)
	}
}

func TestDiagnoseFittedModelWhitensResiduals(t *testing.T) {
	xs := genAR(0.7, 2000, 5)
	m, err := FitOrder(xs, 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	d := m.Diagnose()
	// The AR(1) fit should leave near-white residuals.
	if d.LjungBoxP < 0.001 {
		t.Fatalf("residuals not white: p = %v", d.LjungBoxP)
	}
	// While the raw series is strongly autocorrelated.
	if _, rawP := LjungBox(xs, 10, 0); rawP > 1e-6 {
		t.Fatalf("raw series should reject whiteness: p = %v", rawP)
	}
	if len(d.ResidualACF) == 0 {
		t.Fatal("no residual ACF")
	}
}

func TestChiSquaredSFKnownValues(t *testing.T) {
	// Chi-squared with 1 dof: P(X > 3.841) = 0.05.
	if p := chiSquaredSF(3.841, 1); math.Abs(p-0.05) > 0.002 {
		t.Fatalf("sf(3.841, 1) = %v, want ~0.05", p)
	}
	// 10 dof: P(X > 18.307) = 0.05.
	if p := chiSquaredSF(18.307, 10); math.Abs(p-0.05) > 0.002 {
		t.Fatalf("sf(18.307, 10) = %v, want ~0.05", p)
	}
	if p := chiSquaredSF(0, 5); p != 1 {
		t.Fatalf("sf(0) = %v", p)
	}
	if p := chiSquaredSF(1000, 2); p > 1e-100 {
		t.Fatalf("sf(1000, 2) = %v, want ~0", p)
	}
}
