package arima

import "math"

// ACF returns the sample autocorrelation function of xs at lags
// 1..maxLag. A constant or too-short series yields zeros.
func ACF(xs []float64, maxLag int) []float64 {
	out := make([]float64, maxLag)
	n := len(xs)
	if n < 2 {
		return out
	}
	var mean float64
	for _, x := range xs {
		mean += x
	}
	mean /= float64(n)
	var c0 float64
	for _, x := range xs {
		d := x - mean
		c0 += d * d
	}
	if c0 == 0 {
		return out
	}
	for lag := 1; lag <= maxLag && lag < n; lag++ {
		var c float64
		for t := lag; t < n; t++ {
			c += (xs[t] - mean) * (xs[t-lag] - mean)
		}
		out[lag-1] = c / c0
	}
	return out
}

// LjungBox computes the Ljung–Box portmanteau statistic on xs at the
// given lag count and returns the statistic and its approximate
// p-value against a chi-squared distribution with (lags - fitted)
// degrees of freedom; fitted is the number of fitted ARMA parameters
// (pass 0 for a raw series). Small p-values indicate remaining
// autocorrelation — i.e. the model has not whitened the residuals.
// The paper's ARIMA reference (Box & Pierce 1970) is the ancestor of
// this test.
func LjungBox(xs []float64, lags, fitted int) (stat, pvalue float64) {
	n := float64(len(xs))
	if len(xs) < 3 || lags < 1 {
		return 0, 1
	}
	acf := ACF(xs, lags)
	for k := 1; k <= lags; k++ {
		r := acf[k-1]
		stat += r * r / (n - float64(k))
	}
	stat *= n * (n + 2)
	dof := lags - fitted
	if dof < 1 {
		dof = 1
	}
	return stat, chiSquaredSF(stat, dof)
}

// Diagnostics summarizes a fitted model's residual behavior.
type Diagnostics struct {
	// ResidualACF is the residual autocorrelation at lags 1..len.
	ResidualACF []float64
	// LjungBoxStat and LjungBoxP test residual whiteness.
	LjungBoxStat float64
	LjungBoxP    float64
}

// Diagnose computes residual diagnostics for the fitted model, using
// min(10, n/5) lags.
func (m *Model) Diagnose() Diagnostics {
	w := Difference(m.series, m.D)
	centered := make([]float64, len(w))
	for i, v := range w {
		centered[i] = v - m.Mean
	}
	resid := residuals(centered, m.AR, m.MA)
	lags := len(resid) / 5
	if lags > 10 {
		lags = 10
	}
	if lags < 1 {
		lags = 1
	}
	stat, p := LjungBox(resid, lags, m.P+m.Q)
	return Diagnostics{
		ResidualACF:  ACF(resid, lags),
		LjungBoxStat: stat,
		LjungBoxP:    p,
	}
}

// chiSquaredSF is the chi-squared survival function P(X > x) with k
// degrees of freedom, via the regularized upper incomplete gamma
// function Q(k/2, x/2).
func chiSquaredSF(x float64, k int) float64 {
	if x <= 0 {
		return 1
	}
	return upperGammaRegularized(float64(k)/2, x/2)
}

// upperGammaRegularized computes Q(a, x) = Γ(a, x)/Γ(a) using the
// series expansion for x < a+1 and a continued fraction otherwise
// (Numerical Recipes style).
func upperGammaRegularized(a, x float64) float64 {
	if x < 0 || a <= 0 {
		return 1
	}
	if x == 0 {
		return 1
	}
	lnGammaA, _ := math.Lgamma(a)
	if x < a+1 {
		// P(a,x) by series; Q = 1 - P.
		sum := 1.0 / a
		term := sum
		for n := 1; n < 500; n++ {
			term *= x / (a + float64(n))
			sum += term
			if math.Abs(term) < math.Abs(sum)*1e-14 {
				break
			}
		}
		p := sum * math.Exp(-x+a*math.Log(x)-lnGammaA)
		return 1 - p
	}
	// Continued fraction for Q(a,x) (modified Lentz).
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i < 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-14 {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lnGammaA) * h
}
