package arima

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestDifference(t *testing.T) {
	xs := []float64{1, 3, 6, 10}
	d1 := Difference(xs, 1)
	want := []float64{2, 3, 4}
	for i := range want {
		if d1[i] != want[i] {
			t.Fatalf("d1 = %v", d1)
		}
	}
	d2 := Difference(xs, 2)
	if len(d2) != 2 || d2[0] != 1 || d2[1] != 1 {
		t.Fatalf("d2 = %v", d2)
	}
	if Difference([]float64{5}, 1) != nil {
		t.Fatal("differencing a singleton should give nil")
	}
	d0 := Difference(xs, 0)
	if len(d0) != 4 {
		t.Fatal("d=0 should copy")
	}
	d0[0] = 99
	if xs[0] != 1 {
		t.Fatal("Difference must not alias input")
	}
}

func TestIntegrateInvertsDifference(t *testing.T) {
	check := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		n := int(seed%20) + 5
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64() * 10
		}
		d := int(seed % 3)
		if n-d < 3 {
			return true
		}
		diffed := Difference(xs, d)
		// Build the pyramid of last values as Forecast does.
		lasts := make([]float64, d)
		cur := xs
		for i := 0; i < d; i++ {
			lasts[i] = cur[len(cur)-1]
			cur = Difference(cur, 1)
		}
		// "Forecast" the actual future of a longer series: integrate the
		// tail of the differenced series of the extended sequence.
		// Simpler property: integrating diffed[k:] from the pyramid of
		// xs[:k+d] recovers xs[k+d:].
		k := len(diffed) / 2
		if k == 0 {
			return true
		}
		prefix := xs[:len(xs)-(len(diffed)-k)]
		plasts := make([]float64, d)
		pc := prefix
		for i := 0; i < d; i++ {
			plasts[i] = pc[len(pc)-1]
			pc = Difference(pc, 1)
		}
		rec := Integrate(diffed[k:], plasts)
		for i, v := range rec {
			if math.Abs(v-xs[len(prefix)+i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// genAR produces a synthetic AR(1) series with the given coefficient.
func genAR(phi float64, n int, seed uint64) []float64 {
	r := stats.NewRNG(seed)
	xs := make([]float64, n)
	for i := 1; i < n; i++ {
		xs[i] = phi*xs[i-1] + r.NormFloat64()
	}
	return xs
}

func TestFitOrderAR1Recovery(t *testing.T) {
	xs := genAR(0.7, 2000, 42)
	m, err := FitOrder(xs, 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.AR[0]-0.7) > 0.05 {
		t.Fatalf("phi = %v, want ~0.7", m.AR[0])
	}
	if m.Sigma2 < 0.9 || m.Sigma2 > 1.1 {
		t.Fatalf("sigma2 = %v, want ~1", m.Sigma2)
	}
}

func TestFitOrderMA1Recovery(t *testing.T) {
	r := stats.NewRNG(7)
	n := 3000
	xs := make([]float64, n)
	prevEps := 0.0
	for i := 0; i < n; i++ {
		eps := r.NormFloat64()
		xs[i] = eps + 0.6*prevEps
		prevEps = eps
	}
	m, err := FitOrder(xs, 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.MA[0]-0.6) > 0.08 {
		t.Fatalf("theta = %v, want ~0.6", m.MA[0])
	}
}

func TestFitOrderWithDrift(t *testing.T) {
	// Random walk with drift 2: ARIMA(0,1,0) should forecast +2 steps.
	r := stats.NewRNG(9)
	n := 500
	xs := make([]float64, n)
	for i := 1; i < n; i++ {
		xs[i] = xs[i-1] + 2 + 0.1*r.NormFloat64()
	}
	m, err := FitOrder(xs, 0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	fc := m.Forecast(3)
	last := xs[n-1]
	for i, f := range fc {
		want := last + 2*float64(i+1)
		if math.Abs(f-want) > 0.5 {
			t.Fatalf("forecast[%d] = %v, want ~%v", i, f, want)
		}
	}
}

func TestFitOrderErrors(t *testing.T) {
	if _, err := FitOrder([]float64{1, 2, 3}, -1, 0, 0); err == nil {
		t.Fatal("negative order should error")
	}
	if _, err := FitOrder([]float64{1, 2}, 3, 0, 0); err != ErrTooShort {
		t.Fatalf("want ErrTooShort, got %v", err)
	}
}

func TestFitAutoSelectsReasonableModel(t *testing.T) {
	xs := genAR(0.8, 800, 11)
	m, err := Fit(xs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The chosen model must forecast better than the unconditional mean.
	train, test := xs[:700], xs[700:]
	mt, err := FitOrder(train, m.P, m.D, m.Q)
	if err != nil {
		t.Fatal(err)
	}
	fc := mt.Forecast(1)[0]
	naive := stats.Mean(train)
	errModel := math.Abs(fc - test[0])
	errNaive := math.Abs(naive - test[0])
	// One-step AR forecasts should usually beat the mean for phi=0.8;
	// allow slack since it's a single draw.
	if errModel > errNaive+1.5 {
		t.Fatalf("model error %v much worse than naive %v", errModel, errNaive)
	}
}

func TestFitTooShort(t *testing.T) {
	if _, err := Fit([]float64{1}, Options{}); err == nil {
		t.Fatal("expected error for 1-point series")
	}
}

func TestFitShortSeriesStillWorks(t *testing.T) {
	// The policy calls ARIMA with few ITs; ensure a small series fits
	// something (possibly (0,0,0) = mean model).
	xs := []float64{300, 310, 295, 305, 302, 299, 304, 301}
	m, err := Fit(xs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fc := m.ForecastNext()
	if fc < 250 || fc > 350 {
		t.Fatalf("forecast = %v, want near 300", fc)
	}
}

func TestForecastMeanModel(t *testing.T) {
	xs := []float64{10, 12, 8, 11, 9, 10, 10, 12, 8}
	m, err := FitOrder(xs, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	fc := m.Forecast(5)
	mean := stats.Mean(xs)
	for _, f := range fc {
		if math.Abs(f-mean) > 1e-9 {
			t.Fatalf("mean-model forecast = %v, want %v", f, mean)
		}
	}
}

func TestForecastPeriodicITs(t *testing.T) {
	// An app invoked every ~60 min with slight noise: forecast should be
	// near 60 regardless of exact order chosen.
	r := stats.NewRNG(3)
	xs := make([]float64, 50)
	for i := range xs {
		xs[i] = 60 + r.NormFloat64()
	}
	m, err := Fit(xs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if fc := m.ForecastNext(); math.Abs(fc-60) > 3 {
		t.Fatalf("forecast = %v, want ~60", fc)
	}
}

func TestForecastHZeroOrNegative(t *testing.T) {
	m, err := FitOrder([]float64{1, 2, 3, 4, 5, 6}, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Forecast(0) != nil || m.Forecast(-1) != nil {
		t.Fatal("h<=0 should return nil")
	}
}

func TestUpdateExtendsSeries(t *testing.T) {
	xs := []float64{60, 61, 59, 60, 62, 58, 60, 61}
	m, err := FitOrder(xs, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	m.Update(100)
	if got := len(m.Series()); got != 9 {
		t.Fatalf("series len = %d", got)
	}
	// Mean model forecast should shift up after the new point.
	if fc := m.ForecastNext(); fc <= 60 {
		t.Fatalf("forecast = %v, want > 60 after high observation", fc)
	}
}

func TestUpdateKeepsOrderOnRefit(t *testing.T) {
	xs := genAR(0.5, 100, 21)
	m, err := FitOrder(xs, 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	m.Update(0.5)
	if m.P != 1 || m.D != 0 || m.Q != 0 {
		t.Fatalf("order changed to (%d,%d,%d)", m.P, m.D, m.Q)
	}
}

func TestSeriesIsCopy(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6}
	m, err := FitOrder(xs, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	s := m.Series()
	s[0] = 999
	if m.Series()[0] != 1 {
		t.Fatal("Series must return a copy")
	}
}

func TestAICPrefersParsimonyOnWhiteNoise(t *testing.T) {
	r := stats.NewRNG(33)
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = r.NormFloat64()
	}
	m, err := Fit(xs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.P+m.Q > 2 {
		t.Fatalf("white noise fitted with (%d,%d,%d); AIC should prefer small orders",
			m.P, m.D, m.Q)
	}
}

func TestForecastStationarity(t *testing.T) {
	// Long-horizon forecasts of a stationary AR model converge to the mean.
	xs := genAR(0.6, 1000, 55)
	for i := range xs {
		xs[i] += 50
	}
	m, err := FitOrder(xs, 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	fc := m.Forecast(200)
	if math.Abs(fc[199]-50) > 2 {
		t.Fatalf("long-run forecast = %v, want ~50", fc[199])
	}
}
