// Package arima implements ARIMA(p,d,q) modeling and forecasting in
// pure Go, standing in for the pmdarima auto_arima the paper uses for
// applications whose idle times exceed the histogram range (§4.2).
//
// Estimation follows the classical two-stage Hannan–Rissanen
// procedure: a long autoregression captures innovations, then the
// ARMA coefficients are obtained by least squares on lagged values
// and lagged innovations, optionally refined by minimizing the
// conditional sum of squares with Nelder–Mead. Order selection in Fit
// (the auto_arima analogue) searches a small (p,d,q) grid and picks
// the model minimizing AIC.
package arima

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/stats"
)

// Model is a fitted ARIMA(p,d,q) model.
type Model struct {
	P, D, Q int

	// AR coefficients (phi), length P, applied to the differenced,
	// mean-centered series.
	AR []float64
	// MA coefficients (theta), length Q.
	MA []float64
	// Mean of the differenced series (the model's intercept is
	// Mean*(1-sum(AR))).
	Mean float64
	// Sigma2 is the innovation variance estimate.
	Sigma2 float64
	// AIC is the Akaike information criterion of the fit.
	AIC float64

	series []float64 // original (undifferenced) series
}

// ErrTooShort indicates the series is too short for the requested
// model order.
var ErrTooShort = errors.New("arima: series too short")

// Difference applies d-th order differencing to xs.
func Difference(xs []float64, d int) []float64 {
	out := append([]float64(nil), xs...)
	for i := 0; i < d; i++ {
		if len(out) < 2 {
			return nil
		}
		next := make([]float64, len(out)-1)
		for j := 1; j < len(out); j++ {
			next[j-1] = out[j] - out[j-1]
		}
		out = next
	}
	return out
}

// Integrate inverts Difference: given the last d values of the
// original series's difference pyramid (lasts[i] is the last value of
// the i-times-differenced series) and forecasts of the d-times
// differenced series, it produces forecasts at the original scale.
func Integrate(forecasts []float64, lasts []float64) []float64 {
	out := append([]float64(nil), forecasts...)
	for level := len(lasts) - 1; level >= 0; level-- {
		cum := lasts[level]
		for i := range out {
			cum += out[i]
			out[i] = cum
		}
	}
	return out
}

// FitOrder fits an ARIMA model with fixed order (p,d,q) to series.
func FitOrder(series []float64, p, d, q int) (*Model, error) {
	if p < 0 || d < 0 || q < 0 {
		return nil, fmt.Errorf("arima: negative order (%d,%d,%d)", p, d, q)
	}
	w := Difference(series, d)
	// Require enough observations to estimate all parameters with a
	// few degrees of freedom to spare.
	need := p + q + d + 3
	if p+q > 0 {
		need += maxInt(p, q)
	}
	if len(w) < need || len(w) < 2 {
		return nil, ErrTooShort
	}

	mean := stats.Mean(w)
	centered := make([]float64, len(w))
	for i, v := range w {
		centered[i] = v - mean
	}

	var ar, ma []float64
	var ok bool
	switch {
	case p == 0 && q == 0:
		ar, ma, ok = nil, nil, true
	case q == 0:
		ar, ok = fitAR(centered, p)
		if !ok {
			return nil, fmt.Errorf("arima: AR(%d) fit failed (singular)", p)
		}
	default:
		ar, ma, ok = hannanRissanen(centered, p, q)
		if !ok {
			return nil, fmt.Errorf("arima: ARMA(%d,%d) fit failed (singular)", p, q)
		}
		ar, ma = refineCSS(centered, ar, ma)
	}

	resid := residuals(centered, ar, ma)
	n := float64(len(resid))
	var rss float64
	for _, e := range resid {
		rss += e * e
	}
	sigma2 := rss / n
	if sigma2 <= 0 {
		sigma2 = 1e-12
	}
	k := float64(p + q + 1) // +1 for the mean
	aic := n*math.Log(sigma2) + 2*k

	return &Model{
		P: p, D: d, Q: q,
		AR: ar, MA: ma,
		Mean:   mean,
		Sigma2: sigma2,
		AIC:    aic,
		series: append([]float64(nil), series...),
	}, nil
}

// Options controls the Fit order search.
type Options struct {
	MaxP int // default 3
	MaxD int // default 1
	MaxQ int // default 2
}

// Fit searches (p,d,q) up to the bounds in opt and returns the model
// minimizing AIC, mimicking auto_arima. Differencing levels are
// compared on the same footing by AIC of the differenced fit plus a
// penalty discouraging unnecessary differencing on short series.
func Fit(series []float64, opt Options) (*Model, error) {
	if opt.MaxP == 0 {
		opt.MaxP = 3
	}
	if opt.MaxQ == 0 {
		opt.MaxQ = 2
	}
	var best *Model
	for d := 0; d <= opt.MaxD; d++ {
		for p := 0; p <= opt.MaxP; p++ {
			for q := 0; q <= opt.MaxQ; q++ {
				m, err := FitOrder(series, p, d, q)
				if err != nil {
					continue
				}
				if best == nil || m.AIC < best.AIC {
					best = m
				}
			}
		}
	}
	if best == nil {
		return nil, ErrTooShort
	}
	return best, nil
}

// fitAR estimates AR(p) coefficients by OLS on lagged values.
func fitAR(x []float64, p int) ([]float64, bool) {
	n := len(x)
	if n <= p {
		return nil, false
	}
	rows := make([][]float64, 0, n-p)
	ys := make([]float64, 0, n-p)
	for t := p; t < n; t++ {
		row := make([]float64, p)
		for j := 0; j < p; j++ {
			row[j] = x[t-1-j]
		}
		rows = append(rows, row)
		ys = append(ys, x[t])
	}
	return stats.OLS(rows, ys)
}

// hannanRissanen performs the two-stage ARMA estimation.
func hannanRissanen(x []float64, p, q int) (ar, ma []float64, ok bool) {
	n := len(x)
	// Stage 1: long AR to estimate innovations.
	m := maxInt(p, q) + 2
	if m > n/3 {
		m = n / 3
	}
	if m < 1 {
		return nil, nil, false
	}
	longAR, ok := fitAR(x, m)
	if !ok {
		return nil, nil, false
	}
	eps := make([]float64, n)
	for t := m; t < n; t++ {
		pred := 0.0
		for j := 0; j < m; j++ {
			pred += longAR[j] * x[t-1-j]
		}
		eps[t] = x[t] - pred
	}
	// Stage 2: regress x_t on p lags of x and q lags of eps.
	start := maxInt(p, q) + m
	if start >= n {
		return nil, nil, false
	}
	rows := make([][]float64, 0, n-start)
	ys := make([]float64, 0, n-start)
	for t := start; t < n; t++ {
		row := make([]float64, p+q)
		for j := 0; j < p; j++ {
			row[j] = x[t-1-j]
		}
		for j := 0; j < q; j++ {
			row[p+j] = eps[t-1-j]
		}
		rows = append(rows, row)
		ys = append(ys, x[t])
	}
	beta, ok := stats.OLS(rows, ys)
	if !ok {
		return nil, nil, false
	}
	return beta[:p], beta[p:], true
}

// refineCSS polishes ARMA coefficients by minimizing the conditional
// sum of squares, keeping the result only if it improves and remains
// numerically sane.
func refineCSS(x []float64, ar, ma []float64) ([]float64, []float64) {
	p, q := len(ar), len(ma)
	params := make([]float64, 0, p+q)
	params = append(params, ar...)
	params = append(params, ma...)
	css := func(theta []float64) float64 {
		for _, v := range theta {
			if math.Abs(v) > 10 {
				return math.Inf(1)
			}
		}
		resid := residuals(x, theta[:p], theta[p:])
		var rss float64
		for _, e := range resid {
			rss += e * e
			if math.IsInf(rss, 1) || math.IsNaN(rss) {
				return math.Inf(1)
			}
		}
		return rss
	}
	before := css(params)
	refined, after := stats.NelderMead(css, params, stats.NelderMeadOptions{MaxIter: 300, Tol: 1e-10})
	if after < before && !math.IsInf(after, 1) {
		return refined[:p], refined[p:]
	}
	return ar, ma
}

// residuals computes one-step-ahead in-sample residuals of an ARMA
// model on a centered series, conditioning on zero pre-sample values.
func residuals(x []float64, ar, ma []float64) []float64 {
	p, q := len(ar), len(ma)
	eps := make([]float64, len(x))
	for t := range x {
		pred := 0.0
		for j := 0; j < p; j++ {
			if t-1-j >= 0 {
				pred += ar[j] * x[t-1-j]
			}
		}
		for j := 0; j < q; j++ {
			if t-1-j >= 0 {
				pred += ma[j] * eps[t-1-j]
			}
		}
		eps[t] = x[t] - pred
	}
	return eps
}

// Forecast predicts the next h values of the original series.
func (m *Model) Forecast(h int) []float64 {
	if h <= 0 {
		return nil
	}
	// Build the difference pyramid to recover integration constants.
	lasts := make([]float64, m.D)
	cur := m.series
	for i := 0; i < m.D; i++ {
		lasts[i] = cur[len(cur)-1]
		cur = Difference(cur, 1)
	}
	// cur is now the d-times differenced series.
	centered := make([]float64, len(cur))
	for i, v := range cur {
		centered[i] = v - m.Mean
	}
	eps := residuals(centered, m.AR, m.MA)

	// Iterate forward; future innovations are zero.
	extended := append([]float64(nil), centered...)
	extEps := append([]float64(nil), eps...)
	fc := make([]float64, h)
	for step := 0; step < h; step++ {
		t := len(extended)
		pred := 0.0
		for j := 0; j < m.P; j++ {
			if t-1-j >= 0 {
				pred += m.AR[j] * extended[t-1-j]
			}
		}
		for j := 0; j < m.Q; j++ {
			if t-1-j >= 0 {
				pred += m.MA[j] * extEps[t-1-j]
			}
		}
		extended = append(extended, pred)
		extEps = append(extEps, 0)
		fc[step] = pred + m.Mean
	}
	return Integrate(fc, lasts)
}

// ForecastNext returns the one-step-ahead forecast.
func (m *Model) ForecastNext() float64 {
	return m.Forecast(1)[0]
}

// Update refits the model's coefficients on the series extended with
// x, keeping the same order. The paper updates the model after every
// invocation of an ARIMA-managed app. On failure (e.g. still too
// short) the model keeps its previous coefficients but records x.
func (m *Model) Update(x float64) {
	m.series = append(m.series, x)
	if refit, err := FitOrder(m.series, m.P, m.D, m.Q); err == nil {
		*m = *refit
	}
}

// Series returns a copy of the series the model currently holds.
func (m *Model) Series() []float64 {
	return append([]float64(nil), m.series...)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
