// Package arima implements ARIMA(p,d,q) modeling and forecasting in
// pure Go, standing in for the pmdarima auto_arima the paper uses for
// applications whose idle times exceed the histogram range (§4.2).
//
// Estimation follows the classical two-stage Hannan–Rissanen
// procedure: a long autoregression captures innovations, then the
// ARMA coefficients are obtained by least squares on lagged values
// and lagged innovations, optionally refined by minimizing the
// conditional sum of squares with Nelder–Mead. Order selection in Fit
// (the auto_arima analogue) searches a small (p,d,q) grid and picks
// the model minimizing AIC.
package arima

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"repro/internal/stats"
)

// Model is a fitted ARIMA(p,d,q) model.
type Model struct {
	P, D, Q int

	// AR coefficients (phi), length P, applied to the differenced,
	// mean-centered series.
	AR []float64
	// MA coefficients (theta), length Q.
	MA []float64
	// Mean of the differenced series (the model's intercept is
	// Mean*(1-sum(AR))).
	Mean float64
	// Sigma2 is the innovation variance estimate.
	Sigma2 float64
	// AIC is the Akaike information criterion of the fit.
	AIC float64

	series []float64 // original (undifferenced) series
}

// ErrTooShort indicates the series is too short for the requested
// model order.
var ErrTooShort = errors.New("arima: series too short")

// fitCtx is the reusable scratch arena for one fitting (or
// forecasting) operation. The estimators run on every invocation of an
// ARIMA-managed app, so the per-fit buffers (differenced series,
// centered series, innovations, residuals, OLS design matrix) are
// pooled instead of reallocated; the arithmetic they carry is
// unchanged.
type fitCtx struct {
	diff     []float64
	centered []float64
	eps      []float64
	resid    []float64
	ext      []float64
	extEps   []float64
	params   []float64
	rows     [][]float64
	rowBuf   []float64
	ys       []float64
	ls       stats.LSScratch

	// relaxed licenses reordered float accumulation (Options.Relaxed);
	// contexts are pooled, so every getFitCtx site assigns it
	// explicitly rather than trusting the previous user's setting.
	relaxed bool
}

var fitCtxPool = sync.Pool{New: func() any { return new(fitCtx) }}

func getFitCtx() *fitCtx  { return fitCtxPool.Get().(*fitCtx) }
func putFitCtx(c *fitCtx) { fitCtxPool.Put(c) }

// grow returns buf resized to n, reallocating only when the capacity
// is insufficient. Contents are unspecified.
func grow(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// differenceInto computes the d-th order difference of xs into the
// context's diff buffer, producing the same values as Difference.
func (c *fitCtx) differenceInto(xs []float64, d int) []float64 {
	c.diff = grow(c.diff, len(xs))
	out := c.diff
	copy(out, xs)
	ln := len(xs)
	for i := 0; i < d; i++ {
		if ln < 2 {
			return nil
		}
		for j := 1; j < ln; j++ {
			out[j-1] = out[j] - out[j-1]
		}
		ln--
	}
	return out[:ln]
}

// designRows returns an nRows x k design matrix backed by the
// context's flat buffer, plus the matching target vector.
func (c *fitCtx) designRows(nRows, k int) ([][]float64, []float64) {
	if cap(c.rows) < nRows {
		c.rows = make([][]float64, nRows)
	}
	c.rows = c.rows[:nRows]
	c.rowBuf = grow(c.rowBuf, nRows*k)
	for i := 0; i < nRows; i++ {
		c.rows[i] = c.rowBuf[i*k : (i+1)*k : (i+1)*k]
	}
	c.ys = grow(c.ys, nRows)
	return c.rows, c.ys
}

// Difference applies d-th order differencing to xs.
func Difference(xs []float64, d int) []float64 {
	out := append([]float64(nil), xs...)
	for i := 0; i < d; i++ {
		if len(out) < 2 {
			return nil
		}
		next := make([]float64, len(out)-1)
		for j := 1; j < len(out); j++ {
			next[j-1] = out[j] - out[j-1]
		}
		out = next
	}
	return out
}

// Integrate inverts Difference: given the last d values of the
// original series's difference pyramid (lasts[i] is the last value of
// the i-times-differenced series) and forecasts of the d-times
// differenced series, it produces forecasts at the original scale.
func Integrate(forecasts []float64, lasts []float64) []float64 {
	out := append([]float64(nil), forecasts...)
	for level := len(lasts) - 1; level >= 0; level-- {
		cum := lasts[level]
		for i := range out {
			cum += out[i]
			out[i] = cum
		}
	}
	return out
}

// FitOrder fits an ARIMA model with fixed order (p,d,q) to series.
func FitOrder(series []float64, p, d, q int) (*Model, error) {
	ctx := getFitCtx()
	defer putFitCtx(ctx)
	ctx.relaxed = false
	m, err := fitOrderWith(ctx, series, p, d, q)
	if err != nil {
		return nil, err
	}
	m.series = append([]float64(nil), series...)
	return m, nil
}

// needObs returns the minimum differenced-series length for an
// ARMA(p,q) fit at differencing level d: enough observations to
// estimate all parameters with a few degrees of freedom to spare.
func needObs(p, d, q int) int {
	need := p + q + d + 3
	if p+q > 0 {
		need += maxInt(p, q)
	}
	return need
}

// errSingular marks a least-squares stage whose normal equations were
// singular to working precision.
var errSingular = errors.New("arima: fit failed (singular)")

// fitOrderWith is FitOrder on a caller-provided scratch context,
// leaving the model's series unset (Fit attaches the series copy to
// the order-search winner only, instead of once per candidate).
func fitOrderWith(ctx *fitCtx, series []float64, p, d, q int) (*Model, error) {
	if p < 0 || d < 0 || q < 0 {
		return nil, fmt.Errorf("arima: negative order (%d,%d,%d)", p, d, q)
	}
	// Length-gate before differencing touches (and copies) the series:
	// d-th differencing shortens the series by exactly d.
	lenW := len(series) - d
	if lenW < needObs(p, d, q) || lenW < 2 {
		return nil, ErrTooShort
	}
	w := ctx.differenceInto(series, d)
	mean := stats.Mean(w)
	ctx.centered = grow(ctx.centered, len(w))
	centered := ctx.centered
	for i, v := range w {
		centered[i] = v - mean
	}
	return fitARMA(ctx, centered, mean, p, d, q)
}

// fitARMA fits ARMA(p,q) to the centered d-times-differenced series.
// The caller has already length-gated the series against needObs.
func fitARMA(ctx *fitCtx, centered []float64, mean float64, p, d, q int) (*Model, error) {
	var ar, ma []float64
	var ok bool
	switch {
	case p == 0 && q == 0:
		ar, ma, ok = nil, nil, true
	case q == 0:
		ar, ok = fitAR(ctx, centered, p)
		if !ok {
			return nil, errSingular
		}
	default:
		ar, ma, ok = hannanRissanen(ctx, centered, p, q)
		if !ok {
			return nil, errSingular
		}
		ar, ma = refineCSS(ctx, centered, ar, ma)
	}

	ctx.resid = grow(ctx.resid, len(centered))
	resid := residualsInto(ctx.resid, centered, ar, ma)
	n := float64(len(resid))
	var rss float64
	if ctx.relaxed {
		rss = rssRelaxed(resid)
	} else {
		for _, e := range resid {
			rss += e * e
		}
	}
	sigma2 := rss / n
	if sigma2 <= 0 {
		sigma2 = 1e-12
	}
	k := float64(p + q + 1) // +1 for the mean
	aic := n*math.Log(sigma2) + 2*k

	return &Model{
		P: p, D: d, Q: q,
		AR: ar, MA: ma,
		Mean:   mean,
		Sigma2: sigma2,
		AIC:    aic,
	}, nil
}

// Options controls the Fit order search.
type Options struct {
	MaxP int // default 3
	MaxD int // default 1
	MaxQ int // default 2

	// Relaxed licenses reordered (multi-accumulator) float
	// accumulation in the mean and residual-sum reductions. The fitted
	// coefficients may differ from the default in the last bits; only
	// the fast-mode policy lane (hybrid?exact=off) sets it.
	Relaxed bool
}

// Fit searches (p,d,q) up to the bounds in opt and returns the model
// minimizing AIC, mimicking auto_arima. Differencing levels are
// compared on the same footing by AIC of the differenced fit plus a
// penalty discouraging unnecessary differencing on short series.
func Fit(series []float64, opt Options) (*Model, error) {
	if opt.MaxP == 0 {
		opt.MaxP = 3
	}
	if opt.MaxQ == 0 {
		opt.MaxQ = 2
	}
	ctx := getFitCtx()
	defer putFitCtx(ctx)
	ctx.relaxed = opt.Relaxed
	var best *Model
	for d := 0; d <= opt.MaxD; d++ {
		// Difference, de-mean and length-gate once per differencing
		// level rather than once per (p,q) candidate.
		lenW := len(series) - d
		if lenW < 2 || lenW < needObs(0, d, 0) {
			continue
		}
		w := ctx.differenceInto(series, d)
		var mean float64
		if ctx.relaxed {
			mean = stats.MeanRelaxed(w)
		} else {
			mean = stats.Mean(w)
		}
		ctx.centered = grow(ctx.centered, len(w))
		centered := ctx.centered
		for i, v := range w {
			centered[i] = v - mean
		}
		for p := 0; p <= opt.MaxP; p++ {
			for q := 0; q <= opt.MaxQ; q++ {
				if lenW < needObs(p, d, q) {
					continue
				}
				m, err := fitARMA(ctx, centered, mean, p, d, q)
				if err != nil {
					continue
				}
				if best == nil || m.AIC < best.AIC {
					best = m
				}
			}
		}
	}
	if best == nil {
		return nil, ErrTooShort
	}
	best.series = append([]float64(nil), series...)
	return best, nil
}

// fitAR estimates AR(p) coefficients by OLS on lagged values.
func fitAR(ctx *fitCtx, x []float64, p int) ([]float64, bool) {
	n := len(x)
	if n <= p {
		return nil, false
	}
	rows, ys := ctx.designRows(n-p, p)
	for t := p; t < n; t++ {
		row := rows[t-p]
		for j := 0; j < p; j++ {
			row[j] = x[t-1-j]
		}
		ys[t-p] = x[t]
	}
	return stats.OLSInto(&ctx.ls, rows, ys)
}

// hannanRissanen performs the two-stage ARMA estimation.
func hannanRissanen(ctx *fitCtx, x []float64, p, q int) (ar, ma []float64, ok bool) {
	n := len(x)
	// Stage 1: long AR to estimate innovations.
	m := maxInt(p, q) + 2
	if m > n/3 {
		m = n / 3
	}
	if m < 1 {
		return nil, nil, false
	}
	longAR, ok := fitAR(ctx, x, m)
	if !ok {
		return nil, nil, false
	}
	ctx.eps = grow(ctx.eps, n)
	eps := ctx.eps
	for t := 0; t < m; t++ {
		eps[t] = 0
	}
	for t := m; t < n; t++ {
		pred := 0.0
		for j := 0; j < m; j++ {
			pred += longAR[j] * x[t-1-j]
		}
		eps[t] = x[t] - pred
	}
	// Stage 2: regress x_t on p lags of x and q lags of eps.
	start := maxInt(p, q) + m
	if start >= n {
		return nil, nil, false
	}
	rows, ys := ctx.designRows(n-start, p+q)
	for t := start; t < n; t++ {
		row := rows[t-start]
		for j := 0; j < p; j++ {
			row[j] = x[t-1-j]
		}
		for j := 0; j < q; j++ {
			row[p+j] = eps[t-1-j]
		}
		ys[t-start] = x[t]
	}
	beta, ok := stats.OLSInto(&ctx.ls, rows, ys)
	if !ok {
		return nil, nil, false
	}
	return beta[:p], beta[p:], true
}

// refineCSS polishes ARMA coefficients by minimizing the conditional
// sum of squares, keeping the result only if it improves and remains
// numerically sane.
func refineCSS(ctx *fitCtx, x []float64, ar, ma []float64) ([]float64, []float64) {
	p, q := len(ar), len(ma)
	ctx.params = grow(ctx.params[:0], p+q)
	params := ctx.params
	copy(params[:p], ar)
	copy(params[p:], ma)
	ctx.resid = grow(ctx.resid, len(x))
	css := func(theta []float64) float64 {
		for _, v := range theta {
			if math.Abs(v) > 10 {
				return math.Inf(1)
			}
		}
		return cssRSS(ctx.resid, x, theta[:p], theta[p:])
	}
	before := css(params)
	refined, after := stats.NelderMead(css, params, stats.NelderMeadOptions{MaxIter: 300, Tol: 1e-10})
	if after < before && !math.IsInf(after, 1) {
		return refined[:p], refined[p:]
	}
	return ar, ma
}

// rssRelaxed is the residual sum of squares over four interleaved
// accumulators — reordered relative to the sequential exact loop, so
// only the relaxed (fast-mode) fit path may use it.
func rssRelaxed(resid []float64) float64 {
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(resid); i += 4 {
		s0 += resid[i] * resid[i]
		s1 += resid[i+1] * resid[i+1]
		s2 += resid[i+2] * resid[i+2]
		s3 += resid[i+3] * resid[i+3]
	}
	for ; i < len(resid); i++ {
		s0 += resid[i] * resid[i]
	}
	return (s0 + s1) + (s2 + s3)
}

// residuals computes one-step-ahead in-sample residuals of an ARMA
// model on a centered series, conditioning on zero pre-sample values.
func residuals(x []float64, ar, ma []float64) []float64 {
	return residualsInto(make([]float64, len(x)), x, ar, ma)
}

// cssRSS computes the conditional sum of squares of the ARMA(p,q)
// residuals in a single fused pass — the inner loop of every
// Nelder–Mead objective evaluation. The residual values, the order of
// the squared-term additions, and the +Inf result on overflow are
// bit-identical to residualsInto followed by a separate summation (an
// Inf or NaN entering rss is absorbing, so one final check replaces
// the per-element one). The small fixed orders the CSS refinement
// visits get dedicated steady-state loops that carry the one-step
// lags in registers.
func cssRSS(eps, x []float64, ar, ma []float64) float64 {
	p, q := len(ar), len(ma)
	lo := maxInt(p, q)
	if lo > len(x) {
		lo = len(x)
	}
	var rss float64
	for t := 0; t < lo; t++ {
		pred := 0.0
		for j := 0; j < p && j < t; j++ {
			pred += ar[j] * x[t-1-j]
		}
		for j := 0; j < q && j < t; j++ {
			pred += ma[j] * eps[t-1-j]
		}
		e := x[t] - pred
		eps[t] = e
		rss += e * e
	}
	switch {
	case p == 1 && q == 1 && lo >= 1:
		a0, m0 := ar[0], ma[0]
		x1, e1 := x[lo-1], eps[lo-1]
		for t := lo; t < len(x); t++ {
			e := x[t] - (a0*x1 + m0*e1)
			eps[t] = e
			rss += e * e
			x1, e1 = x[t], e
		}
	case p == 2 && q == 1 && lo >= 2:
		a0, a1, m0 := ar[0], ar[1], ma[0]
		x1, x2, e1 := x[lo-1], x[lo-2], eps[lo-1]
		for t := lo; t < len(x); t++ {
			e := x[t] - (a0*x1 + a1*x2 + m0*e1)
			eps[t] = e
			rss += e * e
			x2, x1, e1 = x1, x[t], e
		}
	case p == 0 && q == 1 && lo >= 1:
		m0 := ma[0]
		e1 := eps[lo-1]
		for t := lo; t < len(x); t++ {
			e := x[t] - m0*e1
			eps[t] = e
			rss += e * e
			e1 = e
		}
	default:
		for t := lo; t < len(x); t++ {
			pred := 0.0
			for j := 0; j < p; j++ {
				pred += ar[j] * x[t-1-j]
			}
			for j := 0; j < q; j++ {
				pred += ma[j] * eps[t-1-j]
			}
			e := x[t] - pred
			eps[t] = e
			rss += e * e
		}
	}
	if math.IsInf(rss, 1) || math.IsNaN(rss) {
		return math.Inf(1)
	}
	return rss
}

// residualsInto is residuals writing into eps (len(eps) == len(x)).
// Every entry is written in index order before it is read, so eps need
// not be cleared. The warm-up prefix (t < max(p,q)) carries the
// pre-sample guards; past it all lags exist, so the steady-state loop
// — the hot path of every CSS objective evaluation — is branch-free.
// Term order matches the guarded loop exactly (the guard only skips
// trailing lags), so the sums are bit-identical.
func residualsInto(eps, x []float64, ar, ma []float64) []float64 {
	p, q := len(ar), len(ma)
	lo := maxInt(p, q)
	if lo > len(x) {
		lo = len(x)
	}
	for t := 0; t < lo; t++ {
		pred := 0.0
		for j := 0; j < p && j < t; j++ {
			pred += ar[j] * x[t-1-j]
		}
		for j := 0; j < q && j < t; j++ {
			pred += ma[j] * eps[t-1-j]
		}
		eps[t] = x[t] - pred
	}
	for t := lo; t < len(x); t++ {
		pred := 0.0
		for j := 0; j < p; j++ {
			pred += ar[j] * x[t-1-j]
		}
		for j := 0; j < q; j++ {
			pred += ma[j] * eps[t-1-j]
		}
		eps[t] = x[t] - pred
	}
	return eps
}

// Forecast predicts the next h values of the original series.
func (m *Model) Forecast(h int) []float64 {
	if h <= 0 {
		return nil
	}
	ctx := getFitCtx()
	defer putFitCtx(ctx)
	// Build the difference pyramid to recover integration constants,
	// differencing in place one level at a time.
	lasts := make([]float64, m.D)
	ctx.diff = grow(ctx.diff, len(m.series))
	cur := ctx.diff
	copy(cur, m.series)
	ln := len(m.series)
	for i := 0; i < m.D; i++ {
		lasts[i] = cur[ln-1]
		for j := 1; j < ln; j++ {
			cur[j-1] = cur[j] - cur[j-1]
		}
		ln--
	}
	cur = cur[:ln]
	// cur is now the d-times differenced series.
	ctx.centered = grow(ctx.centered, ln)
	centered := ctx.centered
	for i, v := range cur {
		centered[i] = v - m.Mean
	}
	ctx.resid = grow(ctx.resid, ln)
	eps := residualsInto(ctx.resid, centered, m.AR, m.MA)

	// Iterate forward; future innovations are zero.
	ctx.ext = grow(ctx.ext, ln+h)
	extended := ctx.ext[:ln]
	copy(extended, centered)
	ctx.extEps = grow(ctx.extEps, ln+h)
	extEps := ctx.extEps[:ln]
	copy(extEps, eps)
	fc := make([]float64, h)
	for step := 0; step < h; step++ {
		t := len(extended)
		pred := 0.0
		for j := 0; j < m.P; j++ {
			if t-1-j >= 0 {
				pred += m.AR[j] * extended[t-1-j]
			}
		}
		for j := 0; j < m.Q; j++ {
			if t-1-j >= 0 {
				pred += m.MA[j] * extEps[t-1-j]
			}
		}
		extended = append(extended, pred)
		extEps = append(extEps, 0)
		fc[step] = pred + m.Mean
	}
	// Integrate in place (same arithmetic as Integrate, without the
	// defensive copy).
	for level := len(lasts) - 1; level >= 0; level-- {
		cum := lasts[level]
		for i := range fc {
			cum += fc[i]
			fc[i] = cum
		}
	}
	return fc
}

// ForecastNext returns the one-step-ahead forecast.
func (m *Model) ForecastNext() float64 {
	return m.Forecast(1)[0]
}

// Update refits the model's coefficients on the series extended with
// x, keeping the same order. The paper updates the model after every
// invocation of an ARIMA-managed app. On failure (e.g. still too
// short) the model keeps its previous coefficients but records x.
func (m *Model) Update(x float64) {
	m.series = append(m.series, x)
	if refit, err := FitOrder(m.series, m.P, m.D, m.Q); err == nil {
		*m = *refit
	}
}

// Series returns a copy of the series the model currently holds.
func (m *Model) Series() []float64 {
	return append([]float64(nil), m.series...)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
