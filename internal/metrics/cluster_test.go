package metrics

import (
	"math"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/policy"
	"repro/internal/trace"
)

// TestNormalizedWastedMemoryMatchesSinkPath pins the satellite
// unification: the batch facade is implemented on the streaming
// sink's arithmetic and must match the direct formula bit for bit
// (identical summation order).
func TestNormalizedWastedMemoryMatchesSinkPath(t *testing.T) {
	apps := fakeResults(300)
	base := fakeResults(300)
	r, b := batchResult(apps), batchResult(base)

	got := NormalizedWastedMemory(r, b)
	want := 100 * r.TotalWastedSeconds() / b.TotalWastedSeconds()
	if math.Float64bits(got) != math.Float64bits(want) {
		t.Errorf("batch facade %v, direct formula %v (bits differ)", got, want)
	}

	// And against the explicitly streamed sink.
	sink := NewWastedMemorySink()
	for i, a := range apps {
		sink.Consume(i, a)
	}
	if math.Float64bits(got) != math.Float64bits(sink.NormalizedTo(b.TotalWastedSeconds())) {
		t.Errorf("facade and sink disagree")
	}

	// Zero baseline degrades to 0 on both paths.
	empty := batchResult(nil)
	if NormalizedWastedMemory(r, empty) != 0 {
		t.Errorf("zero baseline must normalize to 0")
	}
}

func TestSinkMerge(t *testing.T) {
	apps := fakeResults(400)
	whole := NewColdStartSink()
	wholeW := NewWastedMemorySink()
	merged := NewColdStartSink()
	mergedW := NewWastedMemorySink()
	shards := []*ColdStartSink{NewColdStartSink(), NewColdStartSink(), NewColdStartSink()}
	shardWs := []*WastedMemorySink{NewWastedMemorySink(), NewWastedMemorySink(), NewWastedMemorySink()}
	for i, a := range apps {
		whole.Consume(i, a)
		wholeW.Consume(i, a)
		shards[i%3].Consume(i, a)
		shardWs[i%3].Consume(i, a)
	}
	for _, s := range shards {
		merged.Merge(s)
	}
	for _, s := range shardWs {
		mergedW.Merge(s)
	}
	if merged.AppCount() != whole.AppCount() {
		t.Fatalf("merged apps %d, whole %d", merged.AppCount(), whole.AppCount())
	}
	// The distribution bins are integers: quantiles must agree exactly.
	for _, p := range []float64{0, 25, 50, 75, 99, 100} {
		if g, w := merged.Quantile(p), whole.Quantile(p); g != w {
			t.Errorf("Quantile(%g): merged %v, whole %v", p, g, w)
		}
	}
	if mergedW.TotalInvocations() != wholeW.TotalInvocations() ||
		mergedW.TotalColdStarts() != wholeW.TotalColdStarts() ||
		mergedW.Apps() != wholeW.Apps() {
		t.Errorf("merged counters diverge from whole")
	}
	if g, w := mergedW.TotalWastedSeconds(), wholeW.TotalWastedSeconds(); math.Abs(g-w) > 1e-9*math.Abs(w) {
		t.Errorf("merged waste %v, whole %v", g, w)
	}
}

func clusterFixture() *cluster.Result {
	appA := &trace.App{ID: "a", MemoryMB: 150, Functions: []*trace.Function{
		{ID: "fa", Invocations: []float64{0, 200, 400}},
	}}
	appB := &trace.App{ID: "b", MemoryMB: 150, Functions: []*trace.Function{
		{ID: "fb", Invocations: []float64{100, 300}},
	}}
	tr := &trace.Trace{Duration: 1000 * time.Second, Apps: []*trace.App{appA, appB}}
	return cluster.Simulate(tr, policy.FixedKeepAlive{KeepAlive: 600 * time.Second},
		cluster.Config{Nodes: 1, NodeMemMB: 200})
}

// TestClusterAttributionSink checks the cause split on the
// hand-computed ping-pong fixture (3 eviction-induced cold starts out
// of 5 total, 4 evictions).
func TestClusterAttributionSink(t *testing.T) {
	res := clusterFixture()
	sink := NewClusterAttributionSink()
	for i, a := range res.Apps {
		sink.Consume(i, a)
	}
	if sink.Apps() != 2 || sink.TotalInvocations() != 5 {
		t.Fatalf("apps=%d invocations=%d, want 2/5", sink.Apps(), sink.TotalInvocations())
	}
	if sink.TotalColdStarts() != 5 || sink.EvictionColdStarts() != 3 || sink.PolicyColdStarts() != 2 {
		t.Errorf("attribution %s, want cold=5 policy=2 eviction=3", sink)
	}
	if sink.Evictions() != 4 {
		t.Errorf("evictions %d, want 4", sink.Evictions())
	}
	if got, want := sink.EvictionColdPercent(), 100*3.0/5.0; got != want {
		t.Errorf("eviction cold percent %v, want %v", got, want)
	}

	// Merge doubles every counter exactly.
	twin := NewClusterAttributionSink()
	for i, a := range res.Apps {
		twin.Consume(i, a)
	}
	twin.Merge(sink)
	if twin.TotalColdStarts() != 10 || twin.EvictionColdStarts() != 6 || twin.Evictions() != 8 {
		t.Errorf("merged attribution %s", twin)
	}
}

// TestClusterUtilization checks the summaries on the fixture: one
// 150 MB container resident for the whole 1000 s horizon on a 200 MB
// node.
func TestClusterUtilization(t *testing.T) {
	res := clusterFixture()
	util := ClusterUtilization(res)
	if len(util) != 1 {
		t.Fatalf("%d nodes, want 1", len(util))
	}
	u := util[0]
	if u.MeanMB != 150 || u.PeakMB != 150 {
		t.Errorf("mean/peak %v/%v MB, want 150/150", u.MeanMB, u.PeakMB)
	}
	if u.MeanPct != 75 || u.PeakPct != 75 {
		t.Errorf("mean/peak %v%%/%v%%, want 75/75", u.MeanPct, u.PeakPct)
	}
	if u.Evictions != 4 {
		t.Errorf("evictions %d, want 4", u.Evictions)
	}
	if got := MeanClusterUtilizationPct(res); got != 75 {
		t.Errorf("cluster mean utilization %v%%, want 75", got)
	}
	if m, mb := PeakUtilizationMinute(res); m != 0 || mb != 150 {
		t.Errorf("peak minute %d@%vMB, want 0@150 (all minutes equal, first wins)", m, mb)
	}

	// Infinite clusters report no percentages.
	appC := &trace.App{ID: "c", Functions: []*trace.Function{{ID: "fc", Invocations: []float64{0}}}}
	tr := &trace.Trace{Duration: 600 * time.Second, Apps: []*trace.App{appC}}
	inf := cluster.Simulate(tr, policy.FixedKeepAlive{KeepAlive: 60 * time.Second}, cluster.Config{Nodes: 1})
	if pct := MeanClusterUtilizationPct(inf); pct != 0 {
		t.Errorf("infinite cluster utilization %v%%, want 0", pct)
	}
	if u := ClusterUtilization(inf)[0]; u.MeanPct != 0 || u.PeakPct != 0 {
		t.Errorf("infinite cluster per-node percentages %v/%v, want 0/0", u.MeanPct, u.PeakPct)
	}
}

// TestClusterSinksThroughRun wires both sink kinds through
// cluster.Run and cross-checks them against the returned result.
func TestClusterSinksThroughRun(t *testing.T) {
	appA := &trace.App{ID: "a", MemoryMB: 150, Functions: []*trace.Function{
		{ID: "fa", Invocations: []float64{0, 200, 400}},
	}}
	appB := &trace.App{ID: "b", MemoryMB: 150, Functions: []*trace.Function{
		{ID: "fb", Invocations: []float64{100, 300}},
	}}
	tr := &trace.Trace{Duration: 1000 * time.Second, Apps: []*trace.App{appA, appB}}
	attr := NewClusterAttributionSink()
	wasted := NewWastedMemorySink()
	res, err := cluster.Run(t.Context(), trace.NewTraceSource(tr),
		policy.FixedKeepAlive{KeepAlive: 600 * time.Second},
		cluster.Config{Nodes: 1, NodeMemMB: 200},
		cluster.WithClusterSink(attr), cluster.WithSink(wasted))
	if err != nil {
		t.Fatal(err)
	}
	if int(attr.TotalColdStarts()) != res.TotalColdStarts() {
		t.Errorf("attribution sink cold %d, result %d", attr.TotalColdStarts(), res.TotalColdStarts())
	}
	if int(attr.EvictionColdStarts()) != res.TotalEvictionColdStarts() {
		t.Errorf("attribution sink eviction cold %d, result %d",
			attr.EvictionColdStarts(), res.TotalEvictionColdStarts())
	}
	if wasted.TotalWastedSeconds() != res.TotalWastedSeconds() {
		t.Errorf("sim sink waste %v, result %v", wasted.TotalWastedSeconds(), res.TotalWastedSeconds())
	}
	if sr := res.SimResult(); ThirdQuartileColdPercent(sr) <= 0 {
		t.Errorf("batch metrics over the projection returned %v", ThirdQuartileColdPercent(sr))
	}
}
