package metrics

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// LatencyHistogram is a fixed-footprint concurrent latency histogram
// in the HDR style: values bucket by a log2 major and a 16-way linear
// minor, giving ≤ 1/16 (6.25%) relative error across the full int64
// nanosecond range with 960 counters and no allocation. Observe is
// wait-free (one atomic add), so it can sit on a hot path sampled by
// many goroutines — the soak harness drives it from every decision.
//
// Quantile and Merge read the counters with plain atomic loads; they
// are intended for after-the-run reporting (a concurrent Observe may
// or may not be visible, which is the usual histogram contract).
type LatencyHistogram struct {
	counts [960]atomic.Int64
	total  atomic.Int64
}

// NewLatencyHistogram returns an empty histogram.
func NewLatencyHistogram() *LatencyHistogram { return &LatencyHistogram{} }

// latencyBucket maps a nanosecond value to its bucket index: exact
// below 16ns, then 16 linear minors per power of two.
func latencyBucket(ns int64) int {
	if ns < 0 {
		ns = 0
	}
	n := uint64(ns)
	if n < 16 {
		return int(n)
	}
	exp := bits.Len64(n) - 5 // top 5 bits = [16, 32)
	return 16*(exp+1) + int((n>>uint(exp))&15)
}

// latencyBucketMax is the inclusive upper bound of a bucket's value
// range (what Quantile reports).
func latencyBucketMax(idx int) int64 {
	if idx < 16 {
		return int64(idx)
	}
	exp := idx/16 - 1
	m := uint64(16 + idx%16)
	return int64((m+1)<<uint(exp) - 1)
}

// Observe records one latency sample.
func (h *LatencyHistogram) Observe(d time.Duration) {
	h.counts[latencyBucket(int64(d))].Add(1)
	h.total.Add(1)
}

// Count returns the number of samples observed.
func (h *LatencyHistogram) Count() int64 { return h.total.Load() }

// Quantile returns the p-th percentile (p in [0, 100]) as the upper
// bound of the bucket holding that rank — within 6.25% of the exact
// sample value. An empty histogram reports 0.
func (h *LatencyHistogram) Quantile(p float64) time.Duration {
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(p / 100 * float64(total)))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= rank {
			return time.Duration(latencyBucketMax(i))
		}
	}
	return time.Duration(latencyBucketMax(len(h.counts) - 1))
}

// Merge folds other's samples into h (bucket-exact, like the
// repository's other binned sinks: merging shards equals observing
// the union).
func (h *LatencyHistogram) Merge(other *LatencyHistogram) {
	for i := range h.counts {
		if n := other.counts[i].Load(); n != 0 {
			h.counts[i].Add(n)
		}
	}
	h.total.Add(other.total.Load())
}
