package metrics

import (
	"encoding/json"
	"fmt"
)

// Sink state codecs: the complete merge state of each sink as JSON, so
// a sink drained in a worker process can be reconstituted in the
// parent and folded in with the exact same Merge a same-process shard
// run would use. Integers are exact in this encoding, and Go's JSON
// float formatting is shortest-round-trip, so state survives the
// process boundary bit-for-bit.

// coldStartState is ColdStartSink's wire form. Bins are sparse: a real
// distribution occupies a handful of the 10001 bins.
type coldStartState struct {
	Bins  map[int]int64 `json:"bins,omitempty"`
	Count int64         `json:"count"`
}

// MarshalState returns the sink's complete merge state.
func (s *ColdStartSink) MarshalState() ([]byte, error) {
	st := coldStartState{Count: s.count}
	for b, n := range s.bins {
		if n != 0 {
			if st.Bins == nil {
				st.Bins = make(map[int]int64)
			}
			st.Bins[b] = n
		}
	}
	return json.Marshal(st)
}

// UnmarshalState replaces the sink's state with a marshaled one.
func (s *ColdStartSink) UnmarshalState(data []byte) error {
	var st coldStartState
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	*s = ColdStartSink{count: st.Count}
	// Order-invariant: each entry writes its own fixed bin index.
	//wildlint:orderinvariant
	for b, n := range st.Bins {
		if b < 0 || b >= coldBins {
			return fmt.Errorf("metrics: cold-start state bin %d out of range", b)
		}
		s.bins[b] = n
	}
	return nil
}

type wastedMemoryState struct {
	WastedSeconds float64 `json:"wasted_seconds"`
	Invocations   int64   `json:"invocations"`
	ColdStarts    int64   `json:"cold_starts"`
	Apps          int64   `json:"apps"`
}

// MarshalState returns the sink's complete merge state.
func (s *WastedMemorySink) MarshalState() ([]byte, error) {
	return json.Marshal(wastedMemoryState{
		WastedSeconds: s.wastedSeconds,
		Invocations:   s.invocations,
		ColdStarts:    s.coldStarts,
		Apps:          s.apps,
	})
}

// UnmarshalState replaces the sink's state with a marshaled one.
func (s *WastedMemorySink) UnmarshalState(data []byte) error {
	var st wastedMemoryState
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	*s = WastedMemorySink{
		wastedSeconds: st.WastedSeconds,
		invocations:   st.Invocations,
		coldStarts:    st.ColdStarts,
		apps:          st.Apps,
	}
	return nil
}

type clusterAttributionState struct {
	Apps          int64 `json:"apps"`
	Invocations   int64 `json:"invocations"`
	ColdStarts    int64 `json:"cold_starts"`
	EvictionColds int64 `json:"eviction_colds"`
	FailureColds  int64 `json:"failure_colds"`
	Evictions     int64 `json:"evictions"`
}

// MarshalState returns the sink's complete merge state.
func (s *ClusterAttributionSink) MarshalState() ([]byte, error) {
	return json.Marshal(clusterAttributionState{
		Apps:          s.apps,
		Invocations:   s.invocations,
		ColdStarts:    s.coldStarts,
		EvictionColds: s.evictionColds,
		FailureColds:  s.failureColds,
		Evictions:     s.evictions,
	})
}

// UnmarshalState replaces the sink's state with a marshaled one.
func (s *ClusterAttributionSink) UnmarshalState(data []byte) error {
	var st clusterAttributionState
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	*s = ClusterAttributionSink{
		apps:          st.Apps,
		invocations:   st.Invocations,
		coldStarts:    st.ColdStarts,
		evictionColds: st.EvictionColds,
		failureColds:  st.FailureColds,
		evictions:     st.Evictions,
	}
	return nil
}
