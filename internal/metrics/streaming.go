package metrics

import (
	"math"

	"repro/internal/sim"
)

// Streaming sinks: incremental aggregates over per-app outcomes that
// never store all apps, so a constant-memory source (a streamed CSV, a
// generator) yields a constant-memory end-to-end run. They implement
// sim.ResultSink and plug into sim.Run via sim.WithSink.

// coldBins is the fixed resolution of the streaming cold-start
// distribution: percentages in [0, 100] quantized to 0.01 points
// (10001 bins, ~80 KB), bounding any quantile or ECDF read-out error
// at half a bin — invisible at the two decimals reports print.
const coldBins = 10001

// ColdStartSink incrementally aggregates the per-app cold-start
// percentage distribution: a fixed-resolution histogram replaces the
// sorted per-app slice the batch metrics use. Apps with zero
// invocations are excluded, as in Result.ColdPercents.
type ColdStartSink struct {
	bins  [coldBins]int64
	count int64
}

// NewColdStartSink returns an empty distribution sink.
func NewColdStartSink() *ColdStartSink { return &ColdStartSink{} }

// Consume implements sim.ResultSink.
func (s *ColdStartSink) Consume(_ int, r sim.AppResult) {
	if r.Invocations == 0 {
		return
	}
	b := int(math.Round(r.ColdPercent() / 100 * (coldBins - 1)))
	if b < 0 {
		b = 0
	}
	if b >= coldBins {
		b = coldBins - 1
	}
	s.bins[b]++
	s.count++
}

// AppCount returns the number of apps observed (zero-invocation apps
// excluded).
func (s *ColdStartSink) AppCount() int64 { return s.count }

// Merge folds other's distribution into s. The bins are integer
// counts, so merging the sinks of a sharded run reproduces the
// unsharded sink exactly — quantiles and ECDF included — which is
// what makes the sink the multi-process scale-out aggregate.
func (s *ColdStartSink) Merge(other *ColdStartSink) {
	for b, n := range other.bins {
		s.bins[b] += n
	}
	s.count += other.count
}

// Quantile returns the p-th percentile (p in [0, 100]) of the
// cold-start percentage distribution, to the sink's 0.01-point
// resolution. It mirrors stats.Percentile's convention (linear
// interpolation between closest ranks) over the binned multiset, so
// it agrees with the batch metrics to within half a bin.
func (s *ColdStartSink) Quantile(p float64) float64 {
	if s.count == 0 {
		return 0
	}
	rank := p / 100 * float64(s.count-1)
	lo := int64(math.Floor(rank))
	hi := int64(math.Ceil(rank))
	loV, hiV := s.valuesAt(lo, hi)
	if lo == hi {
		return loV
	}
	frac := rank - float64(lo)
	return loV*(1-frac) + hiV*frac
}

// valuesAt returns the lo-th and hi-th smallest cold percentages
// (0-based, lo <= hi) of the binned multiset in one cumulative walk.
func (s *ColdStartSink) valuesAt(lo, hi int64) (loV, hiV float64) {
	var seen int64
	loV, hiV = math.NaN(), math.NaN()
	for b, n := range s.bins {
		if n == 0 {
			continue
		}
		seen += n
		v := float64(b) / (coldBins - 1) * 100
		if math.IsNaN(loV) && seen > lo {
			loV = v
		}
		if seen > hi {
			hiV = v
			return loV, hiV
		}
	}
	return loV, hiV
}

// ThirdQuartile returns the 75th percentile — the paper's headline
// metric — from the streamed distribution.
func (s *ColdStartSink) ThirdQuartile() float64 { return s.Quantile(75) }

// ECDF returns the empirical CDF evaluated at x percent: the fraction
// of apps whose cold-start percentage is <= x (to bin resolution).
func (s *ColdStartSink) ECDF(x float64) float64 {
	if s.count == 0 {
		return 0
	}
	hi := int(math.Floor(x / 100 * (coldBins - 1)))
	if hi < 0 {
		return 0
	}
	if hi >= coldBins {
		hi = coldBins - 1
	}
	var seen int64
	for b := 0; b <= hi; b++ {
		seen += s.bins[b]
	}
	return float64(seen) / float64(s.count)
}

// WastedMemorySink incrementally totals wasted memory time plus the
// invocation and cold-start counters the evaluation normalizes by.
// The float total is summed in sink-arrival order, which is
// nondeterministic under a parallel Run — run-to-run results may
// differ in the low bits (the integer counters are exact always).
type WastedMemorySink struct {
	wastedSeconds float64
	invocations   int64
	coldStarts    int64
	apps          int64
}

// NewWastedMemorySink returns an empty totals sink.
func NewWastedMemorySink() *WastedMemorySink { return &WastedMemorySink{} }

// Consume implements sim.ResultSink.
func (s *WastedMemorySink) Consume(_ int, r sim.AppResult) {
	s.wastedSeconds += r.WastedSeconds
	s.invocations += int64(r.Invocations)
	s.coldStarts += int64(r.ColdStarts)
	s.apps++
}

// Merge folds other's totals into s (shard aggregation). The integer
// counters merge exactly; the float total is one addition per merged
// sink, so an n-shard merge differs from the unsharded sum only by
// float association in the low bits.
func (s *WastedMemorySink) Merge(other *WastedMemorySink) {
	s.wastedSeconds += other.wastedSeconds
	s.invocations += other.invocations
	s.coldStarts += other.coldStarts
	s.apps += other.apps
}

// TotalWastedSeconds returns the accumulated wasted memory time.
func (s *WastedMemorySink) TotalWastedSeconds() float64 { return s.wastedSeconds }

// TotalInvocations returns the accumulated invocation count.
func (s *WastedMemorySink) TotalInvocations() int64 { return s.invocations }

// TotalColdStarts returns the accumulated cold-start count.
func (s *WastedMemorySink) TotalColdStarts() int64 { return s.coldStarts }

// Apps returns the number of apps consumed (including zero-invocation
// apps).
func (s *WastedMemorySink) Apps() int64 { return s.apps }

// NormalizedTo returns the sink's wasted memory as a percentage of a
// baseline total (the paper normalizes to the 10-minute fixed
// policy), matching NormalizedWastedMemory on batch results.
func (s *WastedMemorySink) NormalizedTo(baselineWastedSeconds float64) float64 {
	if baselineWastedSeconds == 0 {
		return 0
	}
	return 100 * s.wastedSeconds / baselineWastedSeconds
}
