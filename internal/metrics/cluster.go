package metrics

import (
	"fmt"
	"math"

	"repro/internal/cluster"
)

// Cluster sinks and summaries: the finite-memory engine's outcomes
// separated into the quantities the infinite-memory evaluation cannot
// express — cold starts the policy caused vs cold starts capacity
// caused, and how full each node actually ran.

// ClusterAttributionSink incrementally splits cold starts by cause as
// cluster app outcomes stream past: eviction-induced (an
// infinite-memory run would have served the arrival warm),
// failure-induced (a chaos event killed or drained the container) vs
// policy-induced (the keep-alive window genuinely missed). It
// implements cluster.Sink and plugs into cluster.Run via
// cluster.WithClusterSink.
type ClusterAttributionSink struct {
	apps          int64
	invocations   int64
	coldStarts    int64
	evictionColds int64
	failureColds  int64
	evictions     int64
}

// NewClusterAttributionSink returns an empty attribution sink.
func NewClusterAttributionSink() *ClusterAttributionSink { return &ClusterAttributionSink{} }

// Consume implements cluster.Sink.
func (s *ClusterAttributionSink) Consume(_ int, r cluster.AppResult) {
	s.apps++
	s.invocations += int64(r.Invocations)
	s.coldStarts += int64(r.ColdStarts)
	s.evictionColds += int64(r.EvictionColdStarts)
	s.failureColds += int64(r.FailureColdStarts)
	s.evictions += int64(r.Evictions)
}

// Apps returns the number of apps consumed.
func (s *ClusterAttributionSink) Apps() int64 { return s.apps }

// TotalInvocations returns the accumulated invocation count.
func (s *ClusterAttributionSink) TotalInvocations() int64 { return s.invocations }

// TotalColdStarts returns all cold starts.
func (s *ClusterAttributionSink) TotalColdStarts() int64 { return s.coldStarts }

// EvictionColdStarts returns the capacity-attributed cold starts.
func (s *ClusterAttributionSink) EvictionColdStarts() int64 { return s.evictionColds }

// FailureColdStarts returns the cold starts attributed to cluster
// events (node failures and drains).
func (s *ClusterAttributionSink) FailureColdStarts() int64 { return s.failureColds }

// PolicyColdStarts returns the cold starts the policy itself caused —
// exactly the count the infinite-memory simulator reports.
func (s *ClusterAttributionSink) PolicyColdStarts() int64 {
	return s.coldStarts - s.evictionColds - s.failureColds
}

// Evictions returns the container evictions observed.
func (s *ClusterAttributionSink) Evictions() int64 { return s.evictions }

// EvictionColdPercent returns eviction-induced cold starts as a
// percentage of all invocations.
func (s *ClusterAttributionSink) EvictionColdPercent() float64 {
	if s.invocations == 0 {
		return 0
	}
	return 100 * float64(s.evictionColds) / float64(s.invocations)
}

// Merge folds other's counters into s (shard/run aggregation; all
// counters are integers, so merging is exact).
func (s *ClusterAttributionSink) Merge(other *ClusterAttributionSink) {
	s.apps += other.apps
	s.invocations += other.invocations
	s.coldStarts += other.coldStarts
	s.evictionColds += other.evictionColds
	s.failureColds += other.failureColds
	s.evictions += other.evictions
}

// String renders the attribution for reports.
func (s *ClusterAttributionSink) String() string {
	return fmt.Sprintf("cold=%d (policy=%d, eviction=%d, failure=%d) evictions=%d",
		s.coldStarts, s.PolicyColdStarts(), s.evictionColds, s.failureColds, s.evictions)
}

// NodeUtilization summarizes one node's memory utilization over a
// cluster run.
type NodeUtilization struct {
	Node int
	// MeanMB is the time-averaged resident memory.
	MeanMB float64
	// PeakMB is the high-water resident memory.
	PeakMB float64
	// MeanPct and PeakPct are the same against the node capacity
	// (zero when the cluster is infinite).
	MeanPct, PeakPct float64
	// Evictions and FailedLoads echo the node's pressure activity.
	Evictions, FailedLoads int
}

// ClusterUtilization derives per-node utilization summaries from a
// cluster result; the full per-minute series stays available on
// Result.NodeStats[i].UtilSeries.
func ClusterUtilization(r *cluster.Result) []NodeUtilization {
	out := make([]NodeUtilization, len(r.NodeStats))
	for i, ns := range r.NodeStats {
		u := NodeUtilization{
			Node:        i,
			PeakMB:      ns.PeakResidentMB,
			Evictions:   ns.Evictions,
			FailedLoads: ns.FailedLoads,
		}
		if r.HorizonSeconds > 0 {
			u.MeanMB = ns.ResidentMBSeconds / r.HorizonSeconds
		}
		if r.NodeMemMB > 0 {
			u.MeanPct = 100 * u.MeanMB / r.NodeMemMB
			u.PeakPct = 100 * u.PeakMB / r.NodeMemMB
		}
		out[i] = u
	}
	return out
}

// MeanClusterUtilizationPct averages the per-node mean utilization
// percentage (zero when the cluster is infinite).
func MeanClusterUtilizationPct(r *cluster.Result) float64 {
	if r.NodeMemMB <= 0 || len(r.NodeStats) == 0 {
		return 0
	}
	var sum float64
	for _, ns := range r.NodeStats {
		sum += ns.ResidentMBSeconds
	}
	denom := r.HorizonSeconds * r.NodeMemMB * float64(len(r.NodeStats))
	if denom == 0 {
		return 0
	}
	return 100 * sum / denom
}

// PeakUtilizationMinute returns the minute index and mean resident MB
// of the busiest minute across all nodes (-1 when there is no data) —
// a quick read on when the cluster was tightest.
func PeakUtilizationMinute(r *cluster.Result) (minute int, mb float64) {
	minute, mb = -1, math.Inf(-1)
	for _, ns := range r.NodeStats {
		for m, v := range ns.UtilSeries {
			if v > mb {
				minute, mb = m, v
			}
		}
	}
	if minute < 0 {
		return -1, 0
	}
	return minute, mb
}
