package metrics

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func mkResult(policy string, wasted float64, coldPercents ...float64) *sim.Result {
	r := &sim.Result{Policy: policy, HorizonSeconds: 3600}
	for i, cp := range coldPercents {
		inv := 100
		r.Apps = append(r.Apps, sim.AppResult{
			AppID:       string(rune('a' + i)),
			Invocations: inv,
			ColdStarts:  int(cp),
		})
	}
	if len(r.Apps) > 0 {
		r.Apps[0].WastedSeconds = wasted
	}
	return r
}

func TestThirdQuartile(t *testing.T) {
	r := mkResult("p", 0, 0, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100)
	got := ThirdQuartileColdPercent(r)
	if math.Abs(got-75) > 1e-9 {
		t.Fatalf("q3 = %v, want 75", got)
	}
}

func TestThirdQuartileEmpty(t *testing.T) {
	if got := ThirdQuartileColdPercent(&sim.Result{}); got != 0 {
		t.Fatalf("q3 of empty = %v", got)
	}
}

func TestColdStartCDF(t *testing.T) {
	r := mkResult("p", 0, 0, 50, 100)
	cdf := ColdStartCDF(r)
	if got := cdf.At(50); math.Abs(got-2.0/3) > 1e-9 {
		t.Fatalf("At(50) = %v", got)
	}
}

func TestNormalizedWastedMemory(t *testing.T) {
	a := mkResult("a", 150, 10)
	b := mkResult("b", 100, 10)
	if got := NormalizedWastedMemory(a, b); math.Abs(got-150) > 1e-9 {
		t.Fatalf("normalized = %v, want 150", got)
	}
	if got := NormalizedWastedMemory(a, mkResult("z", 0, 10)); got != 0 {
		t.Fatalf("zero baseline should yield 0, got %v", got)
	}
}

func TestTradeoffAndPareto(t *testing.T) {
	baseline := mkResult("base", 100, 50, 50, 50, 50)
	r1 := mkResult("good", 80, 10, 10, 10, 10)  // dominates r2
	r2 := mkResult("bad", 120, 30, 30, 30, 30)  // dominated
	r3 := mkResult("cheap", 40, 60, 60, 60, 60) // frontier (cheapest)
	pts := Tradeoff([]*sim.Result{r1, r2, r3}, baseline)
	if len(pts) != 3 {
		t.Fatalf("pts = %d", len(pts))
	}
	frontier := ParetoFrontier(pts)
	names := map[string]bool{}
	for _, p := range frontier {
		names[p.Policy] = true
	}
	if !names["good"] || !names["cheap"] || names["bad"] {
		t.Fatalf("frontier = %v", frontier)
	}
}

func TestDominates(t *testing.T) {
	a := TradeoffPoint{ColdQ3: 10, WastedPct: 80}
	b := TradeoffPoint{ColdQ3: 20, WastedPct: 90}
	if !Dominates(a, b) || Dominates(b, a) {
		t.Fatal("dominance wrong")
	}
	if Dominates(a, a) {
		t.Fatal("a point must not dominate itself")
	}
	c := TradeoffPoint{ColdQ3: 5, WastedPct: 100}
	if Dominates(a, c) || Dominates(c, a) {
		t.Fatal("incomparable points must not dominate")
	}
}

func TestTradeoffPointString(t *testing.T) {
	p := TradeoffPoint{Policy: "x", ColdQ3: 1, WastedPct: 2}
	if p.String() == "" {
		t.Fatal("empty String")
	}
}
