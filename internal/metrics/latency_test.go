package metrics

import (
	"math"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/stats"
)

// TestLatencyBucketMonotone checks the bucket mapping is monotone and
// self-consistent: every value lands in a bucket whose range contains
// it, and bucket upper bounds strictly increase.
func TestLatencyBucketMonotone(t *testing.T) {
	prev := -1
	for _, ns := range []int64{0, 1, 15, 16, 17, 31, 32, 100, 1000, 1 << 20, 1 << 40, math.MaxInt64} {
		idx := latencyBucket(ns)
		if idx < prev {
			t.Fatalf("bucket(%d) = %d < previous %d (not monotone)", ns, idx, prev)
		}
		prev = idx
		if max := latencyBucketMax(idx); ns > max {
			t.Fatalf("bucket(%d) = %d with max %d: value above its bucket", ns, idx, max)
		}
		if idx > 0 {
			if below := latencyBucketMax(idx - 1); ns <= below {
				t.Fatalf("bucket(%d) = %d but previous bucket tops at %d", ns, idx, below)
			}
		}
	}
	// Exhaustive bound ordering across all buckets.
	for i := 1; i < 960; i++ {
		if latencyBucketMax(i) <= latencyBucketMax(i-1) {
			t.Fatalf("bucket %d max %d <= bucket %d max %d",
				i, latencyBucketMax(i), i-1, latencyBucketMax(i-1))
		}
	}
}

// TestLatencyQuantileError pins the histogram's accuracy contract on
// random samples: every reported quantile is >= the exact sample
// quantile and within the 1/16 relative-error bound.
func TestLatencyQuantileError(t *testing.T) {
	r := stats.NewRNG(7)
	h := NewLatencyHistogram()
	samples := make([]int64, 20000)
	for i := range samples {
		// Log-uniform over ~ns..10ms, the decision-latency regime.
		ns := int64(math.Exp(r.Float64() * math.Log(1e7)))
		samples[i] = ns
		h.Observe(time.Duration(ns))
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	if h.Count() != int64(len(samples)) {
		t.Fatalf("Count() = %d, want %d", h.Count(), len(samples))
	}
	for _, p := range []float64{50, 90, 99, 99.9, 100} {
		rank := int(math.Ceil(p / 100 * float64(len(samples))))
		exact := samples[rank-1]
		got := int64(h.Quantile(p))
		if got < exact {
			t.Fatalf("p%v = %d below exact %d (quantile must be an upper bound)", p, got, exact)
		}
		if float64(got) > float64(exact)*(1+1.0/16)+1 {
			t.Fatalf("p%v = %d exceeds exact %d by more than 6.25%%", p, got, exact)
		}
	}
}

// TestLatencyQuantileEmptyAndEdges covers the degenerate cases.
func TestLatencyQuantileEmptyAndEdges(t *testing.T) {
	h := NewLatencyHistogram()
	if got := h.Quantile(99); got != 0 {
		t.Fatalf("empty Quantile = %v, want 0", got)
	}
	h.Observe(5)
	if got := h.Quantile(0); got != 5 {
		t.Fatalf("p0 of {5ns} = %v, want 5ns (rank clamps to 1)", got)
	}
	if got := h.Quantile(100); got != 5 {
		t.Fatalf("p100 of {5ns} = %v, want 5ns", got)
	}
	h.Observe(-3) // negative durations clamp to 0
	if got := h.Quantile(0); got != 0 {
		t.Fatalf("p0 after negative sample = %v, want 0", got)
	}
}

// TestLatencyMergeExact checks merging shards equals observing the
// union, bucket for bucket.
func TestLatencyMergeExact(t *testing.T) {
	r := stats.NewRNG(11)
	a, b, all := NewLatencyHistogram(), NewLatencyHistogram(), NewLatencyHistogram()
	for i := 0; i < 5000; i++ {
		d := time.Duration(r.Intn(1 << 30))
		if i%2 == 0 {
			a.Observe(d)
		} else {
			b.Observe(d)
		}
		all.Observe(d)
	}
	a.Merge(b)
	if a.Count() != all.Count() {
		t.Fatalf("merged Count = %d, want %d", a.Count(), all.Count())
	}
	for _, p := range []float64{1, 25, 50, 75, 99, 99.9} {
		if a.Quantile(p) != all.Quantile(p) {
			t.Fatalf("p%v: merged %v, union %v", p, a.Quantile(p), all.Quantile(p))
		}
	}
}

// TestLatencyConcurrentObserve hammers Observe from many goroutines
// (run under -race) and checks no samples are lost.
func TestLatencyConcurrentObserve(t *testing.T) {
	h := NewLatencyHistogram()
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(w*1000 + i))
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("Count() = %d, want %d", h.Count(), workers*per)
	}
}
