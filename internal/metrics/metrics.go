// Package metrics aggregates simulation results into the quantities
// the paper's evaluation reports: per-app cold-start CDFs, the
// 3rd-quartile cold-start percentage, wasted memory normalized to the
// 10-minute fixed keep-alive baseline, and Pareto frontiers over
// (cold starts, memory) as in Figure 15.
package metrics

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/sim"
	"repro/internal/stats"
)

// ColdStartCDF returns the empirical CDF of per-app cold start
// percentages for a simulation result.
func ColdStartCDF(r *sim.Result) *stats.ECDF {
	return stats.NewECDF(r.ColdPercents())
}

// ThirdQuartileColdPercent returns the 75th percentile of the per-app
// cold-start percentage distribution, the headline metric of §5.2.
func ThirdQuartileColdPercent(r *sim.Result) float64 {
	ps := r.ColdPercents()
	if len(ps) == 0 {
		return 0
	}
	return stats.Percentile(ps, 75)
}

// NormalizedWastedMemory returns r's total wasted memory time as a
// percentage of baseline's (100 = equal to baseline). The paper
// normalizes to the 10-minute fixed keep-alive policy.
//
// The batch path is the streaming sink's arithmetic: the results are
// replayed through a WastedMemorySink in app order (the same order
// Result.TotalWastedSeconds sums, so the totals are bit-identical)
// and normalized by NormalizedTo. One implementation, two facades.
func NormalizedWastedMemory(r, baseline *sim.Result) float64 {
	var s WastedMemorySink
	for i, a := range r.Apps {
		s.Consume(i, a)
	}
	return s.NormalizedTo(baseline.TotalWastedSeconds())
}

// TradeoffPoint is one policy's position in the Figure 15 plane.
type TradeoffPoint struct {
	Policy string
	// ColdQ3 is the 3rd-quartile app cold-start percentage.
	ColdQ3 float64
	// WastedPct is wasted memory normalized to the baseline (percent).
	WastedPct float64
}

// Tradeoff computes the (cold starts, wasted memory) point for each
// result against the baseline.
func Tradeoff(results []*sim.Result, baseline *sim.Result) []TradeoffPoint {
	pts := make([]TradeoffPoint, 0, len(results))
	for _, r := range results {
		pts = append(pts, TradeoffPoint{
			Policy:    r.Policy,
			ColdQ3:    ThirdQuartileColdPercent(r),
			WastedPct: NormalizedWastedMemory(r, baseline),
		})
	}
	return pts
}

// ParetoFrontier returns the subset of points not dominated in the
// minimize-both sense (lower cold starts and lower wasted memory),
// sorted by ColdQ3 ascending.
func ParetoFrontier(pts []TradeoffPoint) []TradeoffPoint {
	sorted := append([]TradeoffPoint(nil), pts...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].ColdQ3 != sorted[j].ColdQ3 {
			return sorted[i].ColdQ3 < sorted[j].ColdQ3
		}
		return sorted[i].WastedPct < sorted[j].WastedPct
	})
	var frontier []TradeoffPoint
	minWaste := math.Inf(1)
	for _, p := range sorted {
		if p.WastedPct < minWaste {
			frontier = append(frontier, p)
			minWaste = p.WastedPct
		}
	}
	return frontier
}

// Dominates reports whether a dominates b (a no worse in both
// dimensions, strictly better in at least one).
func Dominates(a, b TradeoffPoint) bool {
	if a.ColdQ3 > b.ColdQ3 || a.WastedPct > b.WastedPct {
		return false
	}
	return a.ColdQ3 < b.ColdQ3 || a.WastedPct < b.WastedPct
}

// String renders a point for reports.
func (p TradeoffPoint) String() string {
	return fmt.Sprintf("%-28s coldQ3=%6.2f%%  wastedMem=%7.2f%%", p.Policy, p.ColdQ3, p.WastedPct)
}
