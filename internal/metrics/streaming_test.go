package metrics

import (
	"math"
	"testing"

	"repro/internal/sim"
	"repro/internal/stats"
)

// fakeResults builds a deterministic spread of per-app outcomes.
func fakeResults(n int) []sim.AppResult {
	r := stats.NewRNG(99)
	apps := make([]sim.AppResult, n)
	for i := range apps {
		inv := 1 + int(r.Float64()*200)
		cold := int(r.Float64() * float64(inv+1))
		if cold > inv {
			cold = inv
		}
		apps[i] = sim.AppResult{
			AppID:         "app",
			Invocations:   inv,
			ColdStarts:    cold,
			WastedSeconds: r.Float64() * 1e4,
		}
	}
	// A few zero-invocation apps, which the distribution must skip.
	apps = append(apps, sim.AppResult{AppID: "idle"}, sim.AppResult{AppID: "idle2"})
	return apps
}

func batchResult(apps []sim.AppResult) *sim.Result {
	return &sim.Result{Policy: "p", HorizonSeconds: 3600, Apps: apps}
}

// TestColdStartSinkMatchesBatchQuantiles pins the streaming quantiles
// to the exact batch computation within the sink's 0.01-point bin
// resolution.
func TestColdStartSinkMatchesBatchQuantiles(t *testing.T) {
	apps := fakeResults(500)
	sink := NewColdStartSink()
	for i, a := range apps {
		sink.Consume(i, a)
	}
	res := batchResult(apps)
	if got, want := sink.AppCount(), int64(len(res.ColdPercents())); got != want {
		t.Fatalf("AppCount = %d, want %d", got, want)
	}
	exactAll := res.ColdPercents()
	const tol = 0.011 // one bin of slack
	for _, p := range []float64{0, 10, 25, 50, 75, 90, 99, 100} {
		got := sink.Quantile(p)
		want := stats.Percentile(exactAll, p)
		if math.Abs(got-want) > tol {
			t.Errorf("Quantile(%g) = %v, exact %v (diff %v)", p, got, want, got-want)
		}
	}
	if math.Abs(sink.ThirdQuartile()-ThirdQuartileColdPercent(res)) > tol {
		t.Errorf("ThirdQuartile = %v, exact %v", sink.ThirdQuartile(), ThirdQuartileColdPercent(res))
	}
}

func TestColdStartSinkECDF(t *testing.T) {
	apps := fakeResults(300)
	sink := NewColdStartSink()
	for i, a := range apps {
		sink.Consume(i, a)
	}
	exact := batchResult(apps).ColdPercents()
	for _, x := range []float64{-1, 0, 5, 25.5, 50, 99.99, 100, 150} {
		var cnt int
		for _, v := range exact {
			// Compare against values quantized the way the sink bins.
			q := math.Round(v/100*(10000)) / 10000 * 100
			if q <= x+1e-9 {
				cnt++
			}
		}
		want := float64(cnt) / float64(len(exact))
		if got := sink.ECDF(x); math.Abs(got-want) > 0.02 {
			t.Errorf("ECDF(%v) = %v, want ~%v", x, got, want)
		}
	}
}

func TestColdStartSinkEmpty(t *testing.T) {
	sink := NewColdStartSink()
	if q := sink.Quantile(75); q != 0 {
		t.Fatalf("empty Quantile = %v", q)
	}
	if e := sink.ECDF(50); e != 0 {
		t.Fatalf("empty ECDF = %v", e)
	}
}

func TestWastedMemorySinkMatchesBatch(t *testing.T) {
	apps := fakeResults(400)
	res := batchResult(apps)
	sink := NewWastedMemorySink()
	for i, a := range apps {
		sink.Consume(i, a)
	}
	if got, want := sink.TotalWastedSeconds(), res.TotalWastedSeconds(); math.Abs(got-want) > 1e-6*want {
		t.Fatalf("wasted %v, want %v", got, want)
	}
	if got, want := sink.TotalInvocations(), int64(res.TotalInvocations()); got != want {
		t.Fatalf("invocations %d, want %d", got, want)
	}
	if got, want := sink.TotalColdStarts(), int64(res.TotalColdStarts()); got != want {
		t.Fatalf("cold starts %d, want %d", got, want)
	}
	if got, want := sink.Apps(), int64(len(apps)); got != want {
		t.Fatalf("apps %d, want %d", got, want)
	}

	baseline := res.TotalWastedSeconds() * 2
	got := sink.NormalizedTo(baseline)
	want := NormalizedWastedMemory(res, &sim.Result{Apps: []sim.AppResult{{WastedSeconds: baseline}}})
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("NormalizedTo = %v, batch %v", got, want)
	}
	if sink.NormalizedTo(0) != 0 {
		t.Fatal("NormalizedTo(0) should be 0")
	}
}
