package scenario

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// smallGen is a fast deterministic source shared by the run tests.
const smallGen = "gen:apps=40&days=1&seed=3&maxrate=300&maxevents=800"

func metricsOf(t *testing.T, c *CellResult) map[string]float64 {
	t.Helper()
	out := map[string]float64{}
	for _, m := range c.Metrics() {
		out[m.Name] = m.Value
	}
	return out
}

// TestRunSweepMatchesSequential is the sweep engine's core property:
// RunSweep over an expanded grid is bit-identical to running each
// expanded scenario sequentially through RunScenario — batch cells,
// cluster cells, and sharded cells (both a single shard and a
// fanned-out "*/3" cell whose per-shard sinks merge via the exact
// sink Merges).
func TestRunSweepMatchesSequential(t *testing.T) {
	g, err := ParseGrid("source=" + smallGen + "; policy=[fixed?ka=10m,fixed?ka=1h,hybrid?arima=off]")
	if err != nil {
		t.Fatal(err)
	}
	cells, err := g.Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	extra := []string{
		// Cluster cells: infinite and tight memory.
		"source=" + smallGen + "; policy=fixed?ka=10m; cluster.nodes=2",
		"source=" + smallGen + "; policy=fixed?ka=10m; cluster.nodes=2; cluster.mem=400; cluster.place=least-loaded",
		// Sharded cells: one shard, and the full fan-out merge.
		"source=" + smallGen + "; policy=fixed?ka=10m; shard=1/3",
		"source=" + smallGen + "; policy=fixed?ka=10m; shard=*/3",
		// A sharded cluster cell (each shard simulates its own cluster).
		"source=" + smallGen + "; policy=fixed?ka=10m; cluster.nodes=2; cluster.mem=400; shard=*/2",
	}
	for _, s := range extra {
		sc, err := ParseScenario(s)
		if err != nil {
			t.Fatal(err)
		}
		cells = append(cells, sc)
	}

	ctx := context.Background()
	sweep, err := RunSweep(ctx, cells, WithSweepWorkers(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep.Cells) != len(cells) {
		t.Fatalf("sweep cells = %d, want %d", len(sweep.Cells), len(cells))
	}
	for i, sc := range cells {
		seq, err := RunScenario(ctx, sc)
		if err != nil {
			t.Fatalf("sequential cell %d (%s): %v", i, sc, err)
		}
		got, want := metricsOf(t, sweep.Cells[i]), metricsOf(t, seq)
		if len(got) != len(want) {
			t.Fatalf("cell %d (%s): metric sets differ: %v vs %v", i, sc, got, want)
		}
		for name, w := range want {
			if gv, ok := got[name]; !ok || gv != w {
				t.Errorf("cell %d (%s): metric %s = %v (sweep) != %v (sequential)",
					i, sc, name, gv, w)
			}
		}
		if sweep.Cells[i].PolicyName != seq.PolicyName {
			t.Errorf("cell %d: policy name %q != %q", i, sweep.Cells[i].PolicyName, seq.PolicyName)
		}
	}
}

// TestScenarioMatchesDirectRun pins the scenario path against the
// underlying engines driven by hand: same sinks, same numbers.
func TestScenarioMatchesDirectRun(t *testing.T) {
	ctx := context.Background()
	sc, err := ParseScenario("source=" + smallGen + "; policy=fixed?ka=10m")
	if err != nil {
		t.Fatal(err)
	}
	cell, err := RunScenario(ctx, sc)
	if err != nil {
		t.Fatal(err)
	}

	pop, err := workload.Generate(workload.Config{
		Seed: 3, NumApps: 40, Duration: 24 * time.Hour,
		MaxDailyRate: 300, MaxEventsPerFunction: 800,
	})
	if err != nil {
		t.Fatal(err)
	}
	cold := metrics.NewColdStartSink()
	wasted := metrics.NewWastedMemorySink()
	if _, err := sim.Run(ctx, trace.NewTraceSource(pop.Trace), policy.MustFromSpec("fixed?ka=10m"),
		sim.WithSink(cold), sim.WithSink(wasted)); err != nil {
		t.Fatal(err)
	}
	got := metricsOf(t, cell)
	if got["cold_p75"] != cold.ThirdQuartile() {
		t.Errorf("cold_p75 = %v, direct run %v", got["cold_p75"], cold.ThirdQuartile())
	}
	if got["cold_p50"] != cold.Quantile(50) {
		t.Errorf("cold_p50 = %v, direct run %v", got["cold_p50"], cold.Quantile(50))
	}
	if got["wasted_seconds"] != wasted.TotalWastedSeconds() {
		t.Errorf("wasted_seconds = %v, direct run %v", got["wasted_seconds"], wasted.TotalWastedSeconds())
	}
	if got["invocations"] != float64(wasted.TotalInvocations()) {
		t.Errorf("invocations = %v, direct run %v", got["invocations"], wasted.TotalInvocations())
	}
}

// TestShardFanOutMergesToWhole pins that a "*/n" cell reproduces the
// unsharded cell: exactly for the binned cold-start distribution and
// integer counters, and up to float summation order for the waste
// total.
func TestShardFanOutMergesToWhole(t *testing.T) {
	ctx := context.Background()
	base := "source=" + smallGen + "; policy=fixed?ka=10m"
	whole, err := RunScenario(ctx, mustParse(t, base))
	if err != nil {
		t.Fatal(err)
	}
	fanned, err := RunScenario(ctx, mustParse(t, base+"; shard=*/4"))
	if err != nil {
		t.Fatal(err)
	}
	gw, gf := metricsOf(t, whole), metricsOf(t, fanned)
	for _, exact := range []string{"cold_p50", "cold_p75", "apps", "invocations", "cold_starts"} {
		if gw[exact] != gf[exact] {
			t.Errorf("%s: whole %v != fanned %v", exact, gw[exact], gf[exact])
		}
	}
	if w, f := gw["wasted_seconds"], gf["wasted_seconds"]; math.Abs(w-f) > 1e-9*math.Abs(w) {
		t.Errorf("wasted_seconds: whole %v vs fanned %v beyond float association", w, f)
	}
}

// TestFixedTraceOverridesSource pins WithFixedTrace: sourceless cells
// run over the supplied trace.
func TestFixedTraceOverridesSource(t *testing.T) {
	pop, err := workload.Generate(workload.Config{
		Seed: 3, NumApps: 40, Duration: 24 * time.Hour,
		MaxDailyRate: 300, MaxEventsPerFunction: 800,
	})
	if err != nil {
		t.Fatal(err)
	}
	cell, err := RunScenario(context.Background(),
		mustParse(t, "policy=fixed?ka=10m"), WithFixedTrace(pop.Trace))
	if err != nil {
		t.Fatal(err)
	}
	viaSpec, err := RunScenario(context.Background(), mustParse(t, "source="+smallGen+"; policy=fixed?ka=10m"))
	if err != nil {
		t.Fatal(err)
	}
	got, want := metricsOf(t, cell), metricsOf(t, viaSpec)
	for name, w := range want {
		if got[name] != w {
			t.Errorf("metric %s = %v, want %v", name, got[name], w)
		}
	}

	// Without a fixed trace, a sourceless scenario errors.
	if _, err := RunScenario(context.Background(), mustParse(t, "policy=hybrid")); err == nil ||
		!strings.Contains(err.Error(), "missing source") {
		t.Fatalf("sourceless run err = %v, want missing source", err)
	}
}

// TestRunScenarioErrors pins the runner's fail-fast surface: bad
// component specs and cluster-only sinks on batch cells.
func TestRunScenarioErrors(t *testing.T) {
	ctx := context.Background()
	cases := []struct{ spec, wantSub string }{
		{"source=" + smallGen, "missing policy"},
		{"source=" + smallGen + "; policy=warmforever", "unknown policy"},
		{"source=" + smallGen + "; policy=hybrid; sinks=attribution", "requires a cluster scenario"},
		{"source=" + smallGen + "; policy=hybrid; sinks=util", "requires a cluster scenario"},
		{"source=" + smallGen + "; policy=hybrid; sinks=nosuch", `unknown sink "nosuch"`},
		{"source=" + smallGen + "; policy=hybrid; cluster.nodes=2; cluster.place=spread", `unknown placement "spread"`},
		{"source=" + smallGen + "; policy=hybrid; cluster.nodes=2; cluster.place=binpack?order=alpha", "parameter order"},
		{"source=csv:/does/not/exist.csv; policy=hybrid", "no such file"},
		{"source=csv:x.csv; policy=hybrid; seed=7", "not seedable"},
	}
	for _, c := range cases {
		_, err := RunScenario(ctx, mustParse(t, c.spec))
		if err == nil {
			t.Errorf("scenario %q: no error", c.spec)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("scenario %q: error %q missing %q", c.spec, err, c.wantSub)
		}
	}
}

// TestSeedOverride pins that Scenario.Seed re-seeds generator sources
// (including through a shard wrapper) and matches the explicit spec.
func TestSeedOverride(t *testing.T) {
	ctx := context.Background()
	overridden, err := RunScenario(ctx, mustParse(t,
		"source=gen:apps=40&days=1&seed=3&maxrate=300&maxevents=800; policy=fixed?ka=10m; seed=9"))
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := RunScenario(ctx, mustParse(t,
		"source=gen:apps=40&days=1&seed=9&maxrate=300&maxevents=800; policy=fixed?ka=10m"))
	if err != nil {
		t.Fatal(err)
	}
	got, want := metricsOf(t, overridden), metricsOf(t, explicit)
	for name, w := range want {
		if got[name] != w {
			t.Errorf("metric %s = %v, want %v", name, got[name], w)
		}
	}
}

// TestSweepReportRender smoke-tests the CSV and JSON renderings.
func TestSweepReportRender(t *testing.T) {
	cells, err := Grid{
		Base: mustParse(t, "source="+smallGen),
		Axes: []Axis{{Key: "policy", Values: []string{"fixed?ka=10m", "nounload"}}},
	}.Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunSweep(context.Background(), cells)
	if err != nil {
		t.Fatal(err)
	}
	var csvBuf, jsonBuf bytes.Buffer
	if err := rep.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	if err := rep.WriteJSON(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csvBuf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d, want header + 2 cells:\n%s", len(lines), csvBuf.String())
	}
	if !strings.HasPrefix(lines[0], "scenario,policy,cold_p50,cold_p75,wasted_seconds") {
		t.Fatalf("csv header = %q", lines[0])
	}
	if !strings.Contains(jsonBuf.String(), `"cold_p75"`) {
		t.Fatalf("json missing metrics: %s", jsonBuf.String())
	}
}

func mustParse(t *testing.T, s string) Scenario {
	t.Helper()
	sc, err := ParseScenario(s)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// TestClusterCellNodeSummaries: cluster cells expose per-node
// aggregates (evictions, failed loads, peak/mean resident MB); batch
// cells carry none; a fanned-out shard cluster cell merges the
// per-shard node rows element-wise (counters add, peaks max).
func TestClusterCellNodeSummaries(t *testing.T) {
	ctx := context.Background()

	batch, err := RunScenario(ctx, mustParse(t, "source="+smallGen+"; policy=fixed?ka=10m"))
	if err != nil {
		t.Fatal(err)
	}
	if batch.Nodes != nil {
		t.Fatalf("batch cell carries node summaries: %+v", batch.Nodes)
	}

	cl, err := RunScenario(ctx, mustParse(t,
		"source="+smallGen+"; policy=fixed?ka=1h; cluster.nodes=3; cluster.mem=300"))
	if err != nil {
		t.Fatal(err)
	}
	if len(cl.Nodes) != 3 {
		t.Fatalf("cluster cell node summaries = %d, want 3", len(cl.Nodes))
	}
	totalEv := 0
	for n, ns := range cl.Nodes {
		if ns.Node != n {
			t.Errorf("node summary %d labeled %d", n, ns.Node)
		}
		if ns.PeakResidentMB < ns.MeanResidentMB {
			t.Errorf("node %d: peak %v below mean %v", n, ns.PeakResidentMB, ns.MeanResidentMB)
		}
		totalEv += ns.Evictions
	}
	if ev, ok := cl.Metric("evictions"); !ok || float64(totalEv) != ev {
		t.Errorf("node evictions sum %d != attribution sink evictions %v", totalEv, ev)
	}

	// Fan-out: the merged node rows are the element-wise sums/maxes of
	// the per-shard runs.
	base := "source=" + smallGen + "; policy=fixed?ka=1h; cluster.nodes=2; cluster.mem=300"
	fan, err := RunScenario(ctx, mustParse(t, base+"; shard=*/2"))
	if err != nil {
		t.Fatal(err)
	}
	if len(fan.Nodes) != 2 {
		t.Fatalf("fanned cell node summaries = %d, want 2", len(fan.Nodes))
	}
	var wantEv, wantFail [2]int
	var wantPeak, wantMean [2]float64
	for s := 0; s < 2; s++ {
		part, err := RunScenario(ctx, mustParse(t, base+fmt.Sprintf("; shard=%d/2", s)))
		if err != nil {
			t.Fatal(err)
		}
		for n, ns := range part.Nodes {
			wantEv[n] += ns.Evictions
			wantFail[n] += ns.FailedLoads
			wantMean[n] += ns.MeanResidentMB
			wantPeak[n] += ns.PeakResidentMB
		}
	}
	for n, ns := range fan.Nodes {
		if ns.Evictions != wantEv[n] || ns.FailedLoads != wantFail[n] ||
			math.Abs(ns.PeakResidentMB-wantPeak[n]) > 1e-9 ||
			math.Abs(ns.MeanResidentMB-wantMean[n]) > 1e-9 {
			t.Errorf("fanned node %d: %+v, want ev=%d fail=%d peak=%v mean=%v",
				n, ns, wantEv[n], wantFail[n], wantPeak[n], wantMean[n])
		}
		if ns.PeakResidentMB < ns.MeanResidentMB {
			t.Errorf("fanned node %d: peak %v below mean %v", n, ns.PeakResidentMB, ns.MeanResidentMB)
		}
	}

	// The JSON report carries the node rows.
	rep, err := RunSweep(ctx, []Scenario{mustParse(t,
		"source="+smallGen+"; policy=fixed?ka=1h; cluster.nodes=2; cluster.mem=300")})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"nodes"`) || !strings.Contains(buf.String(), `"peak_resident_mb"`) {
		t.Errorf("JSON report lacks per-node stats:\n%s", buf.String())
	}
}

// TestCellErrorIdentifiesFailingCell pins the sweep's error contract:
// a failing cell surfaces as a *CellError carrying the cell index and
// the scenario (so a CLI can print the canonical spec of exactly the
// cell that broke), wrapping the underlying cause.
func TestCellErrorIdentifiesFailingCell(t *testing.T) {
	ctx := context.Background()
	cells := []Scenario{
		mustParse(t, "source="+smallGen+"; policy=fixed?ka=10m"),
		mustParse(t, "source="+smallGen+"; policy=fixed?ka=10m; cluster.nodes=2; cluster.events=fail@1h:node=5"),
	}
	_, err := RunSweep(ctx, cells)
	if err == nil {
		t.Fatal("sweep with out-of-range event node: no error")
	}
	var cellErr *CellError
	if !errors.As(err, &cellErr) {
		t.Fatalf("error %v (%T) is not a *CellError", err, err)
	}
	if cellErr.Index != 1 {
		t.Errorf("CellError.Index = %d, want 1", cellErr.Index)
	}
	if got := cellErr.Scenario.String(); !strings.Contains(got, "cluster.events=fail@1h:node=5") {
		t.Errorf("CellError.Scenario = %q, want the failing cell's spec", got)
	}
	if !strings.Contains(err.Error(), "out of range") {
		t.Errorf("error %q does not name the cause", err)
	}
	if !strings.Contains(err.Error(), "cell 1 (") {
		t.Errorf("error %q does not keep the cell-index format", err)
	}

	// Single-scenario runs wrap too (index 0).
	_, err = RunScenario(ctx, cells[1])
	if !errors.As(err, &cellErr) || cellErr.Index != 0 {
		t.Errorf("RunScenario error %v: want *CellError with Index 0", err)
	}
}
