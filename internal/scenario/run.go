package scenario

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"

	"repro/internal/cluster"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/trace"
)

// CellSink pairs a built sink with the spec that selected it.
type CellSink struct {
	Spec string
	Sink Sink
}

// CellResult is the outcome of one executed scenario: the scenario
// itself plus its drained sinks. For a fanned-out shard scenario
// ("*/n") the sinks are the n per-shard sinks merged in shard order.
type CellResult struct {
	Scenario Scenario
	// PolicyName is the built policy's report name.
	PolicyName string
	// Sinks holds the drained sinks in spec order.
	Sinks []CellSink
	// Nodes holds per-node aggregates for cluster cells (nil on batch
	// cells), surfaced in the JSON report alongside the summary metrics.
	Nodes []NodeSummary
	// MemDefaulted counts apps charged the default memory because the
	// cluster.memcsv table did not cover them (0 without a table).
	MemDefaulted int
}

// NodeSummary is one node's aggregate outcome in a cluster cell. For a
// fanned-out shard cell ("*/n") the per-shard cluster runs merge
// element-wise: counters, peaks and mean resident MB all add — each
// shard simulates a disjoint sub-workload over the same horizon, so
// the sums describe the combined load (and summed peaks keep the
// peak >= mean invariant each shard satisfies).
type NodeSummary struct {
	Node           int     `json:"node"`
	Evictions      int     `json:"evictions"`
	FailedLoads    int     `json:"failed_loads"`
	FailureUnloads int     `json:"failure_unloads,omitempty"`
	PeakResidentMB float64 `json:"peak_resident_mb"`
	MeanResidentMB float64 `json:"mean_resident_mb"`
}

// Metric returns the named metric from the cell's sinks (first match
// in sink order).
func (c *CellResult) Metric(name string) (float64, bool) {
	for _, s := range c.Sinks {
		for _, m := range s.Sink.Metrics() {
			if m.Name == name {
				return m.Value, true
			}
		}
	}
	return 0, false
}

// Metrics returns all sink metrics in sink-then-metric order.
func (c *CellResult) Metrics() []Metric {
	var out []Metric
	for _, s := range c.Sinks {
		out = append(out, s.Sink.Metrics()...)
	}
	return out
}

// Option configures RunScenario / RunSweep.
type Option func(*runOptions)

type runOptions struct {
	fixedTrace   *trace.Trace
	sweepWorkers int
}

// WithFixedTrace supplies an already-materialized trace to every
// cell, overriding the cells' Source specs (the Seed field is ignored
// too). This is how callers that hold a trace in memory — the
// experiment harness, tests — drive the scenario path without a
// serializable source.
func WithFixedTrace(tr *trace.Trace) Option {
	return func(o *runOptions) { o.fixedTrace = tr }
}

// WithSweepWorkers bounds how many cells (and fanned-out shard runs)
// execute concurrently (default GOMAXPROCS). Results are independent
// of the bound.
func WithSweepWorkers(n int) Option {
	return func(o *runOptions) { o.sweepWorkers = n }
}

// RunScenario executes one scenario and returns its drained sinks.
func RunScenario(ctx context.Context, sc Scenario, opts ...Option) (*CellResult, error) {
	rep, err := RunSweep(ctx, []Scenario{sc}, opts...)
	if err != nil {
		return nil, err
	}
	return rep.Cells[0], nil
}

// CellError wraps one failing cell's error with the cell's canonical
// scenario string, so sweep drivers (coldsim) can report exactly
// which cell failed — and re-run it in isolation — before exiting
// non-zero. RunSweep returns a *CellError for every per-cell failure
// (validation or mid-run); errors.As recovers it.
type CellError struct {
	// Index is the cell's position in the sweep.
	Index int
	// Scenario is the failing cell.
	Scenario Scenario
	// Err is the underlying failure.
	Err error
}

func (e *CellError) Error() string {
	return fmt.Sprintf("cell %d (%s): %v", e.Index, e.Scenario, e.Err)
}

func (e *CellError) Unwrap() error { return e.Err }

// openFn opens a fresh, full (unsharded) source for one run.
type openFn func() (trace.Source, func() error, error)

// unit is one schedulable run: a cell, or one shard of a fanned-out
// cell.
type unit struct {
	cell     int
	shardIdx int // position among the cell's units
	sc       Scenario
	shardI   int // -1 when unsharded
	shardN   int
	open     openFn
}

// unitResult is what one executed unit contributes to its cell.
type unitResult struct {
	sinks      []CellSink
	nodes      []NodeSummary
	policyName string
	defaulted  int
}

// RunSweep executes the expanded cells of a grid concurrently over a
// bounded worker pool and returns the per-cell sink summaries.
//
// Cells with byte-identical resolved source specs share one
// materialized trace (sources are deterministic, so sharing changes
// nothing but work). A cell with Shard "*/n" fans out into n shard
// runs — scheduled on the same pool — whose sinks are merged in shard
// order via their exact Merges. Every cell's execution is exactly
// RunScenario's, so a sweep's results are bit-identical to running
// each expanded scenario sequentially.
func RunSweep(ctx context.Context, cells []Scenario, opts ...Option) (*SweepReport, error) {
	var o runOptions
	for _, opt := range opts {
		opt(&o)
	}
	if len(cells) == 0 {
		return nil, fmt.Errorf("scenario: empty sweep")
	}

	// Resolve one source factory per distinct resolved spec; identical
	// sources share the factory (and so, for generator sources, the
	// one materialized trace).
	opens := make([]openFn, len(cells))
	if o.fixedTrace != nil {
		tr := o.fixedTrace
		// Every cell simulates over the same trace concurrently: warm
		// the per-app caches so no lazy memoization races (the same
		// discipline the shared source factories follow).
		tr.WarmCaches()
		for i := range cells {
			opens[i] = func() (trace.Source, func() error, error) {
				return trace.NewTraceSource(tr), func() error { return nil }, nil
			}
		}
	} else {
		factories := map[string]SourceFactory{}
		for i, sc := range cells {
			f, err := sourceForScenario(sc)
			if err != nil {
				return nil, &CellError{Index: i, Scenario: sc, Err: err}
			}
			key := f.Spec()
			if shared, ok := factories[key]; ok {
				f = shared
			} else {
				factories[key] = f
			}
			opens[i] = f.Open
		}
	}

	units, unitsPerCell, err := expandUnits(cells, opens)
	if err != nil {
		return nil, err
	}

	workers := o.sweepWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(units) {
		workers = len(units)
	}

	results := make([]unitResult, len(units))
	errs := make([]error, len(units))
	next := make(chan int)
	var wg sync.WaitGroup
	go func() {
		defer close(next)
		for i := range units {
			select {
			case next <- i:
			case <-ctx.Done():
				return
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				res, err := runUnit(ctx, units[i])
				if err != nil {
					errs[i] = &CellError{Index: units[i].cell, Scenario: units[i].sc, Err: err}
					continue
				}
				results[i] = res
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	return assembleReport(cells, unitsPerCell, results)
}

// expandUnits expands cells into schedulable units (shard fan-out),
// validating every component spec up front: a typo in any cell fails
// here, before any cell simulates. opens may be nil when the caller
// executes units elsewhere (process fan-out).
func expandUnits(cells []Scenario, opens []openFn) ([]unit, [][]int, error) {
	var units []unit
	unitsPerCell := make([][]int, len(cells))
	for ci, sc := range cells {
		if err := validateCell(sc); err != nil {
			return nil, nil, &CellError{Index: ci, Scenario: sc, Err: err}
		}
		var open openFn
		if opens != nil {
			open = opens[ci]
		}
		add := func(u unit) {
			unitsPerCell[ci] = append(unitsPerCell[ci], len(units))
			units = append(units, u)
		}
		if sc.Shard == "" {
			add(unit{cell: ci, sc: sc, shardI: -1, open: open})
			continue
		}
		i, n, all, err := parseShardField(sc.Shard)
		if err != nil {
			return nil, nil, &CellError{Index: ci, Scenario: sc, Err: err}
		}
		if !all {
			add(unit{cell: ci, sc: sc, shardI: i, shardN: n, open: open})
			continue
		}
		for s := 0; s < n; s++ {
			add(unit{cell: ci, shardIdx: s, sc: sc, shardI: s, shardN: n, open: open})
		}
	}
	return units, unitsPerCell, nil
}

// assembleReport merges the executed units back into per-cell results:
// fanned-out shard sinks merge in shard order via their exact Merges,
// per-node aggregates add element-wise.
func assembleReport(cells []Scenario, unitsPerCell [][]int, results []unitResult) (*SweepReport, error) {
	rep := &SweepReport{Cells: make([]*CellResult, len(cells))}
	for ci, sc := range cells {
		idxs := unitsPerCell[ci]
		first := results[idxs[0]]
		cell := &CellResult{
			Scenario:     sc,
			PolicyName:   first.policyName,
			Sinks:        first.sinks,
			Nodes:        first.nodes,
			MemDefaulted: first.defaulted,
		}
		for _, ui := range idxs[1:] {
			r := results[ui]
			for si, cs := range cell.Sinks {
				if err := cs.Sink.Merge(r.sinks[si].Sink); err != nil {
					return nil, err
				}
			}
			for n := range cell.Nodes {
				cell.Nodes[n].Evictions += r.nodes[n].Evictions
				cell.Nodes[n].FailedLoads += r.nodes[n].FailedLoads
				cell.Nodes[n].FailureUnloads += r.nodes[n].FailureUnloads
				cell.Nodes[n].PeakResidentMB += r.nodes[n].PeakResidentMB
				cell.Nodes[n].MeanResidentMB += r.nodes[n].MeanResidentMB
			}
			cell.MemDefaulted += r.defaulted
		}
		rep.Cells[ci] = cell
	}
	return rep, nil
}

// validateCell builds (and discards) every component spec of a cell —
// policy, sinks, placement — and checks the memory table exists, so a
// sweep fails fast on any typo instead of mid-run.
func validateCell(sc Scenario) error {
	if sc.Policy == "" {
		return fmt.Errorf("scenario: missing policy")
	}
	if _, err := policy.FromSpec(sc.Policy); err != nil {
		return err
	}
	specs, err := sinkSpecsFor(sc)
	if err != nil {
		return err
	}
	for _, s := range specs {
		built, err := NewSink(s)
		if err != nil {
			return err
		}
		if _, ok := built.(sim.ResultSink); !ok && sc.Cluster == nil {
			return fmt.Errorf("scenario: sink %q requires a cluster scenario", s)
		}
	}
	if sc.Cluster != nil {
		placeSpec := sc.Cluster.Placement
		if placeSpec == "" {
			placeSpec = "hash"
		}
		if _, err := cluster.NewPlacement(placeSpec); err != nil {
			return err
		}
		if sc.Cluster.MemCSV != "" {
			if _, err := os.Stat(sc.Cluster.MemCSV); err != nil {
				return fmt.Errorf("scenario: cluster.memcsv: %w", err)
			}
		}
		evs, err := cluster.ParseEvents(sc.Cluster.Events)
		if err != nil {
			return fmt.Errorf("scenario: cluster.events: %w", err)
		}
		for _, ev := range evs {
			if ev.Node >= sc.Cluster.Nodes {
				return fmt.Errorf("scenario: cluster.events: event %s: node %d out of range (cluster.nodes=%d)",
					ev, ev.Node, sc.Cluster.Nodes)
			}
		}
	}
	return nil
}

// sinkSpecsFor returns the cell's sink specs, applying the defaults:
// coldstart and waste, plus attribution and util on cluster runs.
func sinkSpecsFor(sc Scenario) ([]string, error) {
	if len(sc.Sinks) > 0 {
		return sc.Sinks, nil
	}
	if sc.Cluster != nil {
		return []string{"coldstart", "waste", "attribution", "util"}, nil
	}
	return []string{"coldstart", "waste"}, nil
}

// runUnit executes one unit: fresh policy, fresh sinks, one
// simulation (batch or cluster).
func runUnit(ctx context.Context, u unit) (unitResult, error) {
	sc := u.sc
	pol, err := policy.FromSpec(sc.Policy)
	if err != nil {
		return unitResult{}, err
	}
	specs, err := sinkSpecsFor(sc)
	if err != nil {
		return unitResult{}, err
	}
	sinks := make([]CellSink, len(specs))
	for i, s := range specs {
		built, err := NewSink(s)
		if err != nil {
			return unitResult{}, err
		}
		sinks[i] = CellSink{Spec: s, Sink: built}
	}

	src, release, err := u.open()
	if err != nil {
		return unitResult{}, err
	}
	defer release()
	if u.shardI >= 0 {
		if src, err = shardOf(src, u.shardI, u.shardN); err != nil {
			return unitResult{}, err
		}
	}

	res := unitResult{policyName: pol.Name(), sinks: sinks}
	if sc.Cluster == nil {
		simOpts := []sim.Option{sim.WithWorkers(sc.Workers), sim.WithExecTime(sc.ExecTime)}
		for _, cs := range sinks {
			rs, ok := cs.Sink.(sim.ResultSink)
			if !ok {
				return unitResult{}, fmt.Errorf("scenario: sink %q requires a cluster scenario", cs.Spec)
			}
			simOpts = append(simOpts, sim.WithSink(rs))
		}
		if _, err := sim.Run(ctx, src, pol, simOpts...); err != nil {
			return unitResult{}, err
		}
		return res, nil
	}

	// Cluster run: the timeline needs the whole (shard of the)
	// workload; the memory table, when present, applies to a private
	// copy so a trace shared across cells stays pristine.
	tr, err := materialize(src)
	if err != nil {
		return unitResult{}, err
	}
	if sc.Cluster.MemCSV != "" {
		tr, res.defaulted, err = applyMemCSV(tr, sc.Cluster.MemCSV)
		if err != nil {
			return unitResult{}, err
		}
	}
	placeSpec := sc.Cluster.Placement
	if placeSpec == "" {
		placeSpec = "hash"
	}
	place, err := cluster.NewPlacement(placeSpec)
	if err != nil {
		return unitResult{}, err
	}
	cfg := cluster.Config{
		Nodes:       sc.Cluster.Nodes,
		NodeMemMB:   sc.Cluster.NodeMemMB,
		Placement:   place,
		UseExecTime: sc.ExecTime,
		Workers:     sc.Workers,
	}
	if sc.Cluster.Events != "" {
		if cfg.Events, err = cluster.ParseEvents(sc.Cluster.Events); err != nil {
			return unitResult{}, err
		}
	}
	var clOpts []cluster.Option
	var observers []clusterObserver
	for _, cs := range sinks {
		attached := false
		if rs, ok := cs.Sink.(sim.ResultSink); ok {
			clOpts = append(clOpts, cluster.WithSink(rs))
			attached = true
		}
		if csnk, ok := cs.Sink.(cluster.Sink); ok {
			clOpts = append(clOpts, cluster.WithClusterSink(csnk))
			attached = true
		}
		if obs, ok := cs.Sink.(clusterObserver); ok {
			observers = append(observers, obs)
			attached = true
		}
		if !attached {
			return unitResult{}, fmt.Errorf("scenario: sink %q consumes neither app nor cluster outcomes", cs.Spec)
		}
	}
	clRes, err := cluster.Run(ctx, trace.NewTraceSource(tr), pol, cfg, clOpts...)
	if err != nil {
		return unitResult{}, err
	}
	for _, obs := range observers {
		obs.ObserveCluster(clRes)
	}
	res.nodes = make([]NodeSummary, len(clRes.NodeStats))
	for n, ns := range clRes.NodeStats {
		mean := 0.0
		if clRes.HorizonSeconds > 0 {
			mean = ns.ResidentMBSeconds / clRes.HorizonSeconds
		}
		res.nodes[n] = NodeSummary{
			Node:           n,
			Evictions:      ns.Evictions,
			FailedLoads:    ns.FailedLoads,
			FailureUnloads: ns.FailureUnloads,
			PeakResidentMB: ns.PeakResidentMB,
			MeanResidentMB: mean,
		}
	}
	return res, nil
}

// shardOf restricts src to its i-th of n interleaved shards, keeping
// in-memory sources on the deterministic batch path (see
// shardFactory.Open for the same rule on source specs).
func shardOf(src trace.Source, i, n int) (trace.Source, error) {
	if n <= 1 {
		return src, nil
	}
	if tr := trace.BatchTrace(src); tr != nil {
		sh, err := trace.Collect(trace.Shard(trace.NewTraceSource(tr), i, n))
		if err != nil {
			return nil, err
		}
		return trace.NewTraceSource(sh), nil
	}
	return trace.Shard(src, i, n), nil
}

// materialize recovers the in-memory trace behind src without
// re-walking consumed apps, collecting streaming sources fully.
func materialize(src trace.Source) (*trace.Trace, error) {
	if tr := trace.BatchTrace(src); tr != nil {
		return tr, nil
	}
	return trace.Collect(src)
}

// applyMemCSV applies a per-app memory table to a private copy of tr
// (the original may be shared across sweep cells).
func applyMemCSV(tr *trace.Trace, path string) (*trace.Trace, int, error) {
	clone := &trace.Trace{Duration: tr.Duration, Apps: make([]*trace.App, len(tr.Apps))}
	for i, a := range tr.Apps {
		cp := *a
		clone.Apps[i] = &cp
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	defaulted, err := trace.ApplyMemoryCSVDefault(f, clone, 0)
	if err != nil {
		return nil, 0, err
	}
	return clone, defaulted, nil
}

// SweepReport is the outcome of a sweep: one CellResult per expanded
// scenario, in cell order.
type SweepReport struct {
	Cells []*CellResult
}

// MetricNames returns the union of the cells' metric names in first-
// appearance order — the sweep's natural column set.
func (r *SweepReport) MetricNames() []string {
	var names []string
	seen := map[string]bool{}
	for _, c := range r.Cells {
		for _, m := range c.Metrics() {
			if !seen[m.Name] {
				seen[m.Name] = true
				names = append(names, m.Name)
			}
		}
	}
	return names
}

// Labels returns one compact label per cell: the assignments that
// vary across the sweep.
func (r *SweepReport) Labels() []string {
	cells := make([]Scenario, len(r.Cells))
	for i, c := range r.Cells {
		cells[i] = c.Scenario
	}
	return Labels(cells)
}

// WriteCSV renders the report as CSV: a scenario column (canonical
// string) and one column per metric; cells without a metric leave the
// field empty.
func (r *SweepReport) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	names := r.MetricNames()
	if err := cw.Write(append([]string{"scenario", "policy"}, names...)); err != nil {
		return err
	}
	for _, c := range r.Cells {
		row := []string{c.Scenario.String(), c.PolicyName}
		for _, n := range names {
			if v, ok := c.Metric(n); ok {
				row = append(row, fmt.Sprintf("%g", v))
			} else {
				row = append(row, "")
			}
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// reportCellJSON is the JSON rendering of one cell. Cluster cells
// carry the per-node aggregates alongside the summary metrics.
type reportCellJSON struct {
	Scenario string        `json:"scenario"`
	Policy   string        `json:"policy"`
	Metrics  []Metric      `json:"metrics"`
	Nodes    []NodeSummary `json:"nodes,omitempty"`
}

// WriteJSON renders the report as a JSON array of cells with ordered
// metric lists; cluster cells include per-node stats (evictions,
// failed loads, peak/mean resident MB), not just the aggregate row.
func (r *SweepReport) WriteJSON(w io.Writer) error {
	out := make([]reportCellJSON, len(r.Cells))
	for i, c := range r.Cells {
		out[i] = reportCellJSON{
			Scenario: c.Scenario.String(),
			Policy:   c.PolicyName,
			Metrics:  c.Metrics(),
			Nodes:    c.Nodes,
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	return enc.Encode(out)
}
