// Package scenario makes a whole simulation run — trace source,
// policy, cluster shape, metric sinks, sharding — one first-class,
// serializable value. A Scenario is configuration as data: it parses
// from a compact text grammar or JSON, prints back canonically
// (ParseScenario / Scenario.String round-trip), and is built entirely
// from component registries (policy specs, placement specs, source
// specs, sink specs), so every binary, example and experiment drives
// the system through one declarative path instead of per-flag
// plumbing. On top of it, Grid expands list-valued fields into the
// cells of a sweep and RunSweep executes them (see grid.go, run.go).
//
// The text grammar is semicolon-separated field assignments:
//
//	source=gen:apps=400&seed=7; policy=hybrid?cv=2; cluster.nodes=8;
//	cluster.mem=4096; cluster.place=binpack?order=invocations;
//	sinks=coldstart,waste; workers=4; shard=0/4; exectime=on; seed=9
//
// Unknown field keys, malformed values and unknown component names
// are errors — a typo fails fast instead of silently simulating the
// default.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/cluster"
	"repro/internal/trace"
)

// Scenario is one fully-described run. Component fields (Source,
// Policy, Cluster.Placement, Sinks) hold registry specs, so the whole
// value serializes; zero values select documented defaults at run
// time.
type Scenario struct {
	// Source is a trace-source spec: "csv:path", "gen:apps=400&seed=7",
	// or "shard:1/4 of <spec>". Required unless the run supplies a
	// fixed trace (WithFixedTrace).
	Source string `json:"source,omitempty"`
	// Policy is a policy registry spec ("hybrid?cv=2", "fixed?ka=20m").
	// Required.
	Policy string `json:"policy,omitempty"`
	// Cluster, when non-nil, runs the finite-memory multi-node engine
	// instead of the per-app batch simulator.
	Cluster *ClusterSpec `json:"cluster,omitempty"`
	// Sinks lists metric-sink specs ("coldstart?q=50,75", "waste",
	// "attribution", "util"). Empty selects the defaults: coldstart and
	// waste, plus attribution and util on cluster runs.
	Sinks []string `json:"sinks,omitempty"`
	// Workers bounds per-run simulation parallelism (0 = GOMAXPROCS):
	// the batch engine's app walkers, and on cluster runs both the
	// decision precompute and the per-node timelines of oblivious
	// placements. Results never depend on it.
	Workers int `json:"workers,omitempty"`
	// Shard restricts the run to the i-th of n interleaved app shards
	// ("1/4"), or fans out over all n shards and merges their sinks
	// ("*/4"). Empty runs the whole source.
	Shard string `json:"shard,omitempty"`
	// ExecTime makes invocations occupy their function's average
	// execution time (§3.4 idle-time semantics).
	ExecTime bool `json:"exectime,omitempty"`
	// Seed overrides the source's seed (generator sources only),
	// letting a sweep grid over seeds without rewriting the source
	// spec. 0 keeps the source's own seed.
	Seed uint64 `json:"seed,omitempty"`
}

// ClusterSpec describes the simulated cluster of a cluster scenario.
type ClusterSpec struct {
	// Nodes is the node count (>= 1; parsing normalizes 0 to 1).
	Nodes int `json:"nodes"`
	// NodeMemMB is the per-node memory capacity in MB (0 = infinite).
	NodeMemMB float64 `json:"mem,omitempty"`
	// Placement is a placement registry spec ("hash", "least-loaded",
	// "binpack?order=size"); empty selects "hash".
	Placement string `json:"place,omitempty"`
	// MemCSV is an optional per-app memory table (AzurePublicDataset
	// schema) applied before the run; apps it does not cover charge
	// the paper-median default.
	MemCSV string `json:"memcsv,omitempty"`
	// Events is a timed cluster-event list (cluster.ParseEvents
	// grammar): "fail@36h:node=3,join@48h:node=3". Stored canonical;
	// empty means no events (identical to omitting the key).
	Events string `json:"events,omitempty"`
}

// scenarioKeys lists the text-grammar field keys in canonical order
// (the order String emits).
var scenarioKeys = []string{
	"source", "policy",
	"cluster.nodes", "cluster.mem", "cluster.place", "cluster.memcsv", "cluster.events",
	"sinks", "workers", "shard", "exectime", "seed",
}

// ParseScenario parses a scenario from the text grammar, or from JSON
// when s starts with '{'.
func ParseScenario(s string) (Scenario, error) {
	if strings.HasPrefix(strings.TrimSpace(s), "{") {
		return parseScenarioJSON([]byte(s))
	}
	var sc Scenario
	seen := map[string]bool{}
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return Scenario{}, fmt.Errorf("scenario: want key=value, got %q", part)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		if seen[key] {
			return Scenario{}, fmt.Errorf("scenario: duplicate field %q", key)
		}
		seen[key] = true
		if err := sc.set(key, val); err != nil {
			return Scenario{}, err
		}
	}
	if err := sc.normalize(); err != nil {
		return Scenario{}, err
	}
	return sc, nil
}

// parseScenarioJSON decodes the JSON form, rejecting unknown fields.
func parseScenarioJSON(data []byte) (Scenario, error) {
	var sc Scenario
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sc); err != nil {
		return Scenario{}, fmt.Errorf("scenario: %w", err)
	}
	if err := sc.normalize(); err != nil {
		return Scenario{}, err
	}
	return sc, nil
}

// set assigns one text-grammar field. It is also the assignment path
// Grid axes use, so every way of building a scenario validates
// identically.
func (sc *Scenario) set(key, val string) error {
	switch key {
	case "source":
		sc.Source = val
	case "policy":
		sc.Policy = val
	case "cluster.nodes":
		n, err := strconv.Atoi(val)
		if err != nil || n <= 0 {
			return fmt.Errorf("scenario: cluster.nodes: want a positive integer, got %q", val)
		}
		sc.ensureCluster().Nodes = n
	case "cluster.mem":
		mb, err := strconv.ParseFloat(val, 64)
		if err != nil || mb < 0 {
			return fmt.Errorf("scenario: cluster.mem: want MB per node (0 = infinite), got %q", val)
		}
		sc.ensureCluster().NodeMemMB = mb
	case "cluster.place":
		sc.ensureCluster().Placement = val
	case "cluster.memcsv":
		sc.ensureCluster().MemCSV = val
	case "cluster.events":
		evs, err := cluster.ParseEvents(val)
		if err != nil {
			return fmt.Errorf("scenario: cluster.events: %w", err)
		}
		if len(evs) == 0 {
			// An empty event list is identical to omitting the key: it
			// must not materialize a cluster section by itself.
			if sc.Cluster != nil {
				sc.Cluster.Events = ""
			}
			return nil
		}
		sc.ensureCluster().Events = cluster.EventsString(evs)
	case "sinks":
		sc.Sinks = nil
		for _, s := range strings.Split(val, ",") {
			if s = strings.TrimSpace(s); s != "" {
				sc.Sinks = append(sc.Sinks, s)
			}
		}
	case "workers":
		n, err := strconv.Atoi(val)
		if err != nil || n < 0 {
			return fmt.Errorf("scenario: workers: want a non-negative integer, got %q", val)
		}
		sc.Workers = n
	case "shard":
		if _, _, _, err := parseShardField(val); err != nil {
			return err
		}
		sc.Shard = val
	case "exectime":
		switch val {
		case "true", "on", "1", "yes":
			sc.ExecTime = true
		case "false", "off", "0", "no":
			sc.ExecTime = false
		default:
			return fmt.Errorf("scenario: exectime: invalid boolean %q", val)
		}
	case "seed":
		n, err := strconv.ParseUint(val, 10, 64)
		if err != nil {
			return fmt.Errorf("scenario: seed: want an unsigned integer, got %q", val)
		}
		sc.Seed = n
	default:
		return fmt.Errorf("scenario: unknown field %q (fields: %s)", key, strings.Join(scenarioKeys, ", "))
	}
	return nil
}

// ensureCluster materializes the cluster section on first cluster.*
// assignment.
func (sc *Scenario) ensureCluster() *ClusterSpec {
	if sc.Cluster == nil {
		sc.Cluster = &ClusterSpec{}
	}
	return sc.Cluster
}

// normalize applies structural invariants shared by the text and JSON
// parse paths: a present cluster section has Nodes >= 1, and the
// shard designator is well-formed.
func (sc *Scenario) normalize() error {
	if sc.Cluster != nil {
		if sc.Cluster.Nodes == 0 {
			sc.Cluster.Nodes = 1
		}
		if sc.Cluster.Nodes < 0 {
			return fmt.Errorf("scenario: cluster.nodes: want a positive integer, got %d", sc.Cluster.Nodes)
		}
		// Canonicalize the event list (the JSON path accepts the same
		// grammar, including ';' separators, as raw text).
		evs, err := cluster.ParseEvents(sc.Cluster.Events)
		if err != nil {
			return fmt.Errorf("scenario: cluster.events: %w", err)
		}
		sc.Cluster.Events = cluster.EventsString(evs)
	}
	if sc.Shard != "" {
		if _, _, _, err := parseShardField(sc.Shard); err != nil {
			return err
		}
	}
	return nil
}

// parseShardField parses the Shard field: "i/n" (one shard) or "*/n"
// (fan out over all n shards, merging sinks).
func parseShardField(s string) (i, n int, all bool, err error) {
	if rest, ok := strings.CutPrefix(s, "*/"); ok {
		n, err = strconv.Atoi(rest)
		if err != nil || n <= 0 {
			return 0, 0, false, fmt.Errorf("scenario: shard: want i/n or */n, got %q", s)
		}
		return 0, n, true, nil
	}
	i, n, err = trace.ParseShard(s)
	if err != nil {
		return 0, 0, false, fmt.Errorf("scenario: shard: want i/n or */n, got %q", s)
	}
	return i, n, false, nil
}

// String renders the canonical text form: fields in fixed order,
// defaults omitted, so ParseScenario(sc.String()) reproduces sc
// exactly and equal scenarios render equal strings (the property the
// sweep engine's source-sharing and the report's cell labels key on).
func (sc Scenario) String() string {
	var parts []string
	add := func(key, val string) { parts = append(parts, key+"="+val) }
	if sc.Source != "" {
		add("source", sc.Source)
	}
	if sc.Policy != "" {
		add("policy", sc.Policy)
	}
	if c := sc.Cluster; c != nil {
		add("cluster.nodes", strconv.Itoa(c.Nodes))
		if c.NodeMemMB != 0 {
			add("cluster.mem", strconv.FormatFloat(c.NodeMemMB, 'g', -1, 64))
		}
		if c.Placement != "" {
			add("cluster.place", c.Placement)
		}
		if c.MemCSV != "" {
			add("cluster.memcsv", c.MemCSV)
		}
		if c.Events != "" {
			add("cluster.events", c.Events)
		}
	}
	if len(sc.Sinks) > 0 {
		add("sinks", strings.Join(sc.Sinks, ","))
	}
	if sc.Workers > 0 {
		add("workers", strconv.Itoa(sc.Workers))
	}
	if sc.Shard != "" {
		add("shard", sc.Shard)
	}
	if sc.ExecTime {
		add("exectime", "on")
	}
	if sc.Seed != 0 {
		add("seed", strconv.FormatUint(sc.Seed, 10))
	}
	return strings.Join(parts, "; ")
}

// clone returns a deep copy (Grid expansion mutates copies).
func (sc Scenario) clone() Scenario {
	out := sc
	if sc.Cluster != nil {
		c := *sc.Cluster
		out.Cluster = &c
	}
	if sc.Sinks != nil {
		out.Sinks = append([]string(nil), sc.Sinks...)
	}
	return out
}

// Labels returns one compact label per scenario: the assignments that
// differ across the set (the fields a sweep varies), with the shared
// base omitted. A lone scenario labels as its full canonical string.
func Labels(cells []Scenario) []string {
	if len(cells) == 1 {
		return []string{cells[0].String()}
	}
	split := make([][]string, len(cells))
	counts := map[string]int{}
	for i, sc := range cells {
		parts := strings.Split(sc.String(), "; ")
		split[i] = parts
		seen := map[string]bool{}
		for _, p := range parts {
			if !seen[p] {
				seen[p] = true
				counts[p]++
			}
		}
	}
	labels := make([]string, len(cells))
	for i, parts := range split {
		var vary []string
		for _, p := range parts {
			if counts[p] < len(cells) {
				vary = append(vary, p)
			}
		}
		if len(vary) == 0 {
			// Duplicate cells: fall back to the full canonical string.
			labels[i] = cells[i].String()
			continue
		}
		labels[i] = strings.Join(vary, "; ")
	}
	return labels
}
