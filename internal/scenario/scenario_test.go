package scenario

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// TestScenarioRoundTrip pins the codec contract: parse → String →
// parse is the identity, and String is canonical (two equal scenarios
// render the same string).
func TestScenarioRoundTrip(t *testing.T) {
	specs := []string{
		"source=gen:apps=400&seed=7; policy=hybrid",
		"source=csv:trace/invocations.csv; policy=fixed?ka=20m",
		"source=gen:apps=100; policy=hybrid?cv=2&range=4h; sinks=coldstart,waste; workers=4",
		"source=gen:apps=50; policy=nounload; shard=1/4; exectime=on; seed=9",
		"source=gen:apps=50; policy=fixed?ka=10m; shard=*/3",
		"source=shard:1/4 of csv:big.csv; policy=hybrid",
		"source=gen:apps=80; policy=hybrid; cluster.nodes=8; cluster.mem=4096; cluster.place=binpack?order=invocations",
		"source=gen:apps=80; policy=hybrid; cluster.nodes=2; cluster.memcsv=mem.csv; sinks=coldstart?q=50:75:99,attribution",
		"source=gen:apps=80; policy=hybrid; cluster.nodes=4; cluster.mem=2048; cluster.events=fail@36h:node=3,join@48h:node=3,drain@60h:node=0,resize@72h:node=1&mem=2048",
		"source=gen:apps=20&mode=ramp&rps0=10&rps1=20&step=5; policy=hybrid",
		"source=gen:apps=20&mode=burst&rps0=0.5&rps1=10&period=5&burst=2; policy=fixed?ka=10m",
		"policy=hybrid", // sourceless base (fixed-trace runs)
		"",
	}
	for _, s := range specs {
		sc, err := ParseScenario(s)
		if err != nil {
			t.Fatalf("ParseScenario(%q): %v", s, err)
		}
		canon := sc.String()
		sc2, err := ParseScenario(canon)
		if err != nil {
			t.Fatalf("ParseScenario(String(%q) = %q): %v", s, canon, err)
		}
		if !reflect.DeepEqual(sc, sc2) {
			t.Errorf("round trip of %q: %+v != %+v (via %q)", s, sc, sc2, canon)
		}
		if canon2 := sc2.String(); canon2 != canon {
			t.Errorf("String not canonical for %q: %q then %q", s, canon, canon2)
		}
	}
}

// TestScenarioTextJSONAgree pins that the two encodings decode to the
// same value, and that the marshaled JSON form parses back.
func TestScenarioTextJSONAgree(t *testing.T) {
	cases := []struct{ text, jsonSpec string }{
		{
			"source=gen:apps=400&seed=7; policy=hybrid?cv=2",
			`{"source": "gen:apps=400&seed=7", "policy": "hybrid?cv=2"}`,
		},
		{
			"source=csv:inv.csv; policy=fixed?ka=10m; cluster.nodes=8; cluster.mem=4096; cluster.place=binpack; sinks=coldstart,waste; workers=2; shard=0/2; exectime=on; seed=3",
			`{"source": "csv:inv.csv", "policy": "fixed?ka=10m",
			  "cluster": {"nodes": 8, "mem": 4096, "place": "binpack"},
			  "sinks": ["coldstart", "waste"], "workers": 2, "shard": "0/2",
			  "exectime": true, "seed": 3}`,
		},
		{
			// JSON cluster section without nodes normalizes to 1 node,
			// like the text grammar.
			"source=gen:apps=10; policy=hybrid; cluster.mem=2048",
			`{"source": "gen:apps=10", "policy": "hybrid", "cluster": {"mem": 2048}}`,
		},
	}
	for _, c := range cases {
		fromText, err := ParseScenario(c.text)
		if err != nil {
			t.Fatalf("text %q: %v", c.text, err)
		}
		fromJSON, err := ParseScenario(c.jsonSpec)
		if err != nil {
			t.Fatalf("json %q: %v", c.jsonSpec, err)
		}
		if !reflect.DeepEqual(fromText, fromJSON) {
			t.Errorf("text %q parsed %+v, json parsed %+v", c.text, fromText, fromJSON)
		}
		data, err := json.Marshal(fromText)
		if err != nil {
			t.Fatal(err)
		}
		reparsed, err := ParseScenario(string(data))
		if err != nil {
			t.Fatalf("reparse of %s: %v", data, err)
		}
		if !reflect.DeepEqual(fromText, reparsed) {
			t.Errorf("marshal/parse of %q: %+v != %+v", c.text, fromText, reparsed)
		}
	}
}

// TestScenarioParseErrors pins the fail-fast grammar: unknown fields,
// malformed values and unknown component names are errors that name
// the offender.
func TestScenarioParseErrors(t *testing.T) {
	cases := []struct{ spec, wantSub string }{
		{"source=gen:apps=10; polcy=hybrid", `unknown field "polcy"`},
		{"cluster.nods=8", `unknown field "cluster.nods"`},
		{"policy=hybrid; policy=fixed", `duplicate field "policy"`},
		{"workers", "want key=value"},
		{"cluster.nodes=zero", "cluster.nodes"},
		{"cluster.nodes=-2", "cluster.nodes"},
		{"cluster.mem=-5", "cluster.mem"},
		{"workers=-1", "workers"},
		{"shard=4", "want i/n or */n"},
		{"shard=5/4", "want i/n or */n"},
		{"shard=*/0", "want i/n or */n"},
		{"exectime=maybe", "invalid boolean"},
		{"seed=-1", "seed"},
		{`{"source": "gen:", "polcy": "hybrid"}`, "polcy"},
		{`{"cluster": {"nodes": -1}}`, "cluster.nodes"},
		{"cluster.nodes=2; cluster.events=boom@1h:node=0", "cluster.events"},
		{"cluster.nodes=2; cluster.events=fail@1h", "cluster.events"},
		{`{"cluster": {"nodes": 2, "events": "fail@-1h:node=0"}}`, "cluster.events"},
	}
	for _, c := range cases {
		_, err := ParseScenario(c.spec)
		if err == nil {
			t.Errorf("spec %q: no error", c.spec)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("spec %q: error %q missing %q", c.spec, err, c.wantSub)
		}
	}
}

// TestSourceSpecErrors pins the source registry's error surface.
func TestSourceSpecErrors(t *testing.T) {
	cases := []struct{ spec, wantSub string }{
		{"cvs:path.csv", `unknown source "cvs"`},
		{"csv:", "want csv:path"},
		{"gen:apps=ten", "parameter apps"},
		{"gen:apps=10&foo=1", "unknown parameters [foo]"},
		{"shard:1/4", "want shard:i/n of"},
		{"shard:4/4 of gen:apps=10", "invalid shard"},
		{"shard:0/2 of cvs:x", `unknown source "cvs"`},
	}
	for _, c := range cases {
		_, err := NewSource(c.spec)
		if err == nil {
			t.Errorf("source %q: no error", c.spec)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("source %q: error %q missing %q", c.spec, err, c.wantSub)
		}
	}
}

// TestSinkSpecErrors pins the sink registry's error surface.
func TestSinkSpecErrors(t *testing.T) {
	cases := []struct{ spec, wantSub string }{
		{"coldstarts", `unknown sink "coldstarts"`},
		{"coldstart?quant=75", "unknown parameters [quant]"},
		{"coldstart?q=101", "out of [0, 100]"},
		{"waste?x=1", "unknown parameters [x]"},
	}
	for _, c := range cases {
		_, err := NewSink(c.spec)
		if err == nil {
			t.Errorf("sink %q: no error", c.spec)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("sink %q: error %q missing %q", c.spec, err, c.wantSub)
		}
	}
}

// TestSinkMergeRejectsMismatch pins that only same-spec sinks merge.
func TestSinkMergeRejectsMismatch(t *testing.T) {
	cold, err := NewSink("coldstart")
	if err != nil {
		t.Fatal(err)
	}
	waste, err := NewSink("waste")
	if err != nil {
		t.Fatal(err)
	}
	if err := cold.Merge(waste); err == nil {
		t.Fatal("merging waste into coldstart did not error")
	}
	coldQ, err := NewSink("coldstart?q=99")
	if err != nil {
		t.Fatal(err)
	}
	if err := cold.Merge(coldQ); err == nil {
		t.Fatal("merging coldstart?q=99 into coldstart did not error")
	}
}

// TestGenSourceSpecCanonical pins that a generator factory's Spec()
// round-trips to an equivalent factory (the sweep engine keys source
// sharing on it).
func TestGenSourceSpecCanonical(t *testing.T) {
	f, err := NewSource("gen:apps=40&days=0.5&seed=9&maxrate=500&maxevents=2000")
	if err != nil {
		t.Fatal(err)
	}
	f2, err := NewSource(f.Spec())
	if err != nil {
		t.Fatalf("re-parsing canonical spec %q: %v", f.Spec(), err)
	}
	if f.Spec() != f2.Spec() {
		t.Fatalf("canonical spec not stable: %q then %q", f.Spec(), f2.Spec())
	}
}

// TestLabels pins the varying-assignment labeling the reports use.
func TestLabels(t *testing.T) {
	g, err := ParseGrid("source=gen:apps=10; policy=[fixed?ka=10m,hybrid]; cluster.nodes=2; cluster.mem=[0,1024]")
	if err != nil {
		t.Fatal(err)
	}
	cells, err := g.Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	labels := Labels(cells)
	want := []string{
		"policy=fixed?ka=10m",
		"policy=fixed?ka=10m; cluster.mem=1024",
		"policy=hybrid",
		"policy=hybrid; cluster.mem=1024",
	}
	if !reflect.DeepEqual(labels, want) {
		t.Fatalf("labels = %q, want %q", labels, want)
	}
}

// TestClusterEventsCodec pins the chaos-event field's codec corners:
// an empty list is identical to an absent key (no Cluster section
// materializes), the JSON form accepts ';' separators (since ';'
// separates text-grammar fields), and both normalize to the canonical
// comma-separated form.
func TestClusterEventsCodec(t *testing.T) {
	empty, err := ParseScenario("policy=hybrid; cluster.events=")
	if err != nil {
		t.Fatal(err)
	}
	absent, err := ParseScenario("policy=hybrid")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(empty, absent) {
		t.Errorf("empty cluster.events materialized state: %+v != %+v", empty, absent)
	}
	if empty.Cluster != nil {
		t.Errorf("empty cluster.events materialized a Cluster section: %+v", empty.Cluster)
	}

	fromJSON, err := ParseScenario(
		`{"policy": "hybrid", "cluster": {"nodes": 2, "events": "fail@36h:node=1; join@48h:node=1"}}`)
	if err != nil {
		t.Fatal(err)
	}
	const canon = "fail@36h:node=1,join@48h:node=1"
	if fromJSON.Cluster == nil || fromJSON.Cluster.Events != canon {
		t.Fatalf("JSON ';' events normalized to %+v, want %q", fromJSON.Cluster, canon)
	}
	fromText, err := ParseScenario("policy=hybrid; cluster.nodes=2; cluster.events=" + canon)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromJSON, fromText) {
		t.Errorf("JSON form %+v != text form %+v", fromJSON, fromText)
	}
	wantStr := "policy=hybrid; cluster.nodes=2; cluster.events=" + canon
	if got := fromJSON.String(); got != wantStr {
		t.Errorf("String() = %q, want %q", got, wantStr)
	}
}

// TestShapedGenSpecCanonical pins that shaped generator specs survive
// the factory's Spec() canonicalization, including default elision
// (slot=1, period=10, burst=1 are defaults and must not be emitted).
func TestShapedGenSpecCanonical(t *testing.T) {
	cases := []struct{ in, want string }{
		{
			"gen:apps=20&mode=ramp&rps0=10&rps1=20&step=5&slot=1",
			"gen:apps=20&seed=42&mode=ramp&rps0=10&rps1=20&step=5",
		},
		{
			"gen:apps=20&mode=burst&rps0=0.5&rps1=10&period=10&burst=1",
			"gen:apps=20&seed=42&mode=burst&rps0=0.5&rps1=10",
		},
		{
			"gen:apps=20&mode=burst&rps1=10&period=5&burst=2",
			"gen:apps=20&seed=42&mode=burst&rps1=10&period=5&burst=2",
		},
	}
	for _, c := range cases {
		f, err := NewSource(c.in)
		if err != nil {
			t.Fatalf("NewSource(%q): %v", c.in, err)
		}
		spec := f.Spec()
		if spec != c.want {
			t.Errorf("Spec(%q) = %q, want %q", c.in, spec, c.want)
		}
		f2, err := NewSource(spec)
		if err != nil {
			t.Fatalf("re-parsing canonical spec %q: %v", spec, err)
		}
		if f2.Spec() != spec {
			t.Errorf("canonical spec not stable: %q then %q", spec, f2.Spec())
		}
	}
	// Shaped-parameter validation surfaces through the source registry.
	for _, bad := range []struct{ spec, wantSub string }{
		{"gen:apps=10&mode=spike", "unknown Mode"},
		{"gen:apps=10&rps0=5", "without Mode"},
		{"gen:apps=10&mode=ramp&rps0=5&rps1=1", "RPS0 <= RPS1"},
	} {
		if _, err := NewSource(bad.spec); err == nil || !strings.Contains(err.Error(), bad.wantSub) {
			t.Errorf("NewSource(%q) = %v, want error containing %q", bad.spec, err, bad.wantSub)
		}
	}
}
