package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
)

// Grid is a declarative sweep: a base scenario plus list-valued
// axes. Scenarios() expands the cartesian product of the axes over
// the base (earlier axes vary slowest), then appends the explicit
// extra cells, so a whole evaluation grid — policies × keep-alive
// ranges × platform shapes — is one value.
//
// The text grammar is the scenario grammar with bracketed lists:
//
//	source=gen:apps=400; policy=[fixed?ka=10m,fixed?ka=1h,hybrid];
//	cluster.nodes=8; cluster.mem=[2048,4096,8192]
//
// expands to 3 × 3 = 9 cells. The JSON form is
//
//	{"base": {...scenario...},
//	 "axes": [{"key": "policy", "values": ["fixed?ka=10m", "hybrid"]},
//	          {"key": "cluster.mem", "values": ["2048", "4096"]}],
//	 "cells": [{...scenario...}]}
//
// where base, axes and cells are each optional, and a JSON object
// with none of those keys parses as a single scenario (a 1-cell
// grid). Axis values assign through the same field path as the text
// grammar, so everything validates identically.
type Grid struct {
	// Base holds the assignments shared by every expanded cell.
	Base Scenario `json:"base,omitempty"`
	// Axes are the list-valued fields, expanded as a cartesian
	// product in order (first axis varies slowest).
	Axes []Axis `json:"axes,omitempty"`
	// Cells are explicit extra scenarios appended after the expansion
	// (cells whose shape an axis cannot express, e.g. batch next to
	// cluster cells).
	Cells []Scenario `json:"cells,omitempty"`
}

// Axis is one list-valued field of a grid.
type Axis struct {
	// Key is a scenario field key ("policy", "cluster.mem", "seed").
	Key string `json:"key"`
	// Values are the field values the axis sweeps, in order.
	Values []string `json:"values"`
}

// ParseGrid parses a grid from the text grammar (bracketed lists) or
// from JSON when s starts with '{'. A spec with no lists parses as a
// 1-cell grid.
func ParseGrid(s string) (Grid, error) {
	if strings.HasPrefix(strings.TrimSpace(s), "{") {
		return parseGridJSON([]byte(s))
	}
	var g Grid
	seen := map[string]bool{}
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return Grid{}, fmt.Errorf("scenario: want key=value, got %q", part)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		if seen[key] {
			return Grid{}, fmt.Errorf("scenario: duplicate field %q", key)
		}
		seen[key] = true
		if strings.HasPrefix(val, "[") && strings.HasSuffix(val, "]") {
			var values []string
			for _, v := range strings.Split(val[1:len(val)-1], ",") {
				if v = strings.TrimSpace(v); v != "" {
					values = append(values, v)
				}
			}
			if len(values) == 0 {
				return Grid{}, fmt.Errorf("scenario: axis %q: empty list", key)
			}
			// Validate every value through the assignment path now, so
			// a bad axis value fails at parse, not mid-sweep.
			for _, v := range values {
				probe := g.Base.clone()
				if err := probe.set(key, v); err != nil {
					return Grid{}, err
				}
			}
			g.Axes = append(g.Axes, Axis{Key: key, Values: values})
			continue
		}
		if err := g.Base.set(key, val); err != nil {
			return Grid{}, err
		}
	}
	if err := g.Base.normalize(); err != nil {
		return Grid{}, err
	}
	return g, nil
}

// parseGridJSON decodes the JSON form. An object carrying none of the
// grid keys (base, axes, cells) is a single scenario.
func parseGridJSON(data []byte) (Grid, error) {
	var probe map[string]json.RawMessage
	if err := json.Unmarshal(data, &probe); err != nil {
		return Grid{}, fmt.Errorf("scenario: %w", err)
	}
	_, hasBase := probe["base"]
	_, hasAxes := probe["axes"]
	_, hasCells := probe["cells"]
	if !hasBase && !hasAxes && !hasCells {
		sc, err := parseScenarioJSON(data)
		if err != nil {
			return Grid{}, err
		}
		return Grid{Base: sc}, nil
	}
	var g Grid
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&g); err != nil {
		return Grid{}, fmt.Errorf("scenario: %w", err)
	}
	if err := g.Base.normalize(); err != nil {
		return Grid{}, err
	}
	for i := range g.Cells {
		if err := g.Cells[i].normalize(); err != nil {
			return Grid{}, err
		}
	}
	return g, nil
}

// Scenarios expands the grid into its cells: the cartesian product of
// the axes applied to the base (first axis varies slowest), followed
// by the explicit extra cells.
func (g Grid) Scenarios() ([]Scenario, error) {
	cells := []Scenario{g.Base.clone()}
	for _, ax := range g.Axes {
		if len(ax.Values) == 0 {
			return nil, fmt.Errorf("scenario: axis %q: empty list", ax.Key)
		}
		next := make([]Scenario, 0, len(cells)*len(ax.Values))
		for _, cell := range cells {
			for _, v := range ax.Values {
				c := cell.clone()
				if err := c.set(ax.Key, v); err != nil {
					return nil, err
				}
				if err := c.normalize(); err != nil {
					return nil, err
				}
				next = append(next, c)
			}
		}
		cells = next
	}
	if len(g.Axes) == 0 && len(g.Cells) > 0 && g.Base.String() == "" {
		// A pure cell list: don't emit the empty base as a cell.
		cells = cells[:0]
	}
	for _, c := range g.Cells {
		cells = append(cells, c.clone())
	}
	return cells, nil
}
