package scenario

import (
	"reflect"
	"strings"
	"testing"
)

// TestGridExpansion pins the cartesian product: earlier axes vary
// slowest, base assignments are shared, cells append at the end.
func TestGridExpansion(t *testing.T) {
	g, err := ParseGrid("source=gen:apps=10; policy=[fixed?ka=10m,hybrid]; cluster.nodes=2; cluster.mem=[1024,2048]")
	if err != nil {
		t.Fatal(err)
	}
	cells, err := g.Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, c := range cells {
		got = append(got, c.String())
	}
	want := []string{
		"source=gen:apps=10; policy=fixed?ka=10m; cluster.nodes=2; cluster.mem=1024",
		"source=gen:apps=10; policy=fixed?ka=10m; cluster.nodes=2; cluster.mem=2048",
		"source=gen:apps=10; policy=hybrid; cluster.nodes=2; cluster.mem=1024",
		"source=gen:apps=10; policy=hybrid; cluster.nodes=2; cluster.mem=2048",
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("expansion = %q, want %q", got, want)
	}
}

// TestGridNoAxes pins that a plain scenario parses as a 1-cell grid.
func TestGridNoAxes(t *testing.T) {
	g, err := ParseGrid("source=gen:apps=10; policy=hybrid")
	if err != nil {
		t.Fatal(err)
	}
	cells, err := g.Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1 || cells[0].Policy != "hybrid" {
		t.Fatalf("cells = %+v", cells)
	}
}

// TestGridJSON pins the JSON form: base + axes + explicit cells, and
// the single-scenario fallback.
func TestGridJSON(t *testing.T) {
	g, err := ParseGrid(`{
		"base": {"source": "gen:apps=10", "sinks": ["coldstart", "waste"]},
		"axes": [{"key": "policy", "values": ["fixed?ka=10m", "hybrid"]}],
		"cells": [{"source": "gen:apps=10", "policy": "nounload", "cluster": {"nodes": 2, "mem": 512}}]
	}`)
	if err != nil {
		t.Fatal(err)
	}
	cells, err := g.Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 3 {
		t.Fatalf("cells = %d, want 3 (2 axis values + 1 explicit)", len(cells))
	}
	if cells[2].Cluster == nil || cells[2].Cluster.Nodes != 2 {
		t.Fatalf("explicit cell = %+v", cells[2])
	}

	single, err := ParseGrid(`{"source": "gen:apps=10", "policy": "hybrid"}`)
	if err != nil {
		t.Fatal(err)
	}
	cells, err = single.Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1 || cells[0].Policy != "hybrid" {
		t.Fatalf("single-scenario grid cells = %+v", cells)
	}
}

// TestGridCellListOnly pins that a pure cell list does not leak the
// empty base as a cell.
func TestGridCellListOnly(t *testing.T) {
	g, err := ParseGrid(`{"cells": [
		{"source": "gen:apps=10", "policy": "fixed?ka=10m"},
		{"source": "gen:apps=10", "policy": "hybrid", "cluster": {"nodes": 2}}
	]}`)
	if err != nil {
		t.Fatal(err)
	}
	cells, err := g.Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("cells = %d, want 2", len(cells))
	}
}

// TestGridParseErrors pins fail-fast axis validation: a bad value in
// a list errors at parse, not mid-sweep.
func TestGridParseErrors(t *testing.T) {
	cases := []struct{ spec, wantSub string }{
		{"policy=[fixed,hybrid]; polcy=x", `unknown field "polcy"`},
		{"cluster.mem=[1024,none]", "cluster.mem"},
		{"policy=[]", "empty list"},
		{"shard=[0/2,2/2]", "want i/n or */n"},
		{`{"base": {"source": "gen:"}, "axs": []}`, "axs"},
	}
	for _, c := range cases {
		_, err := ParseGrid(c.spec)
		if err == nil {
			t.Errorf("grid %q: no error", c.spec)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("grid %q: error %q missing %q", c.spec, err, c.wantSub)
		}
	}
}
