package scenario

import (
	"context"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/serve"
	"repro/internal/trace"
)

// writeTestBundle materializes a small recorded stream as a bundle
// file and returns its path plus the recorder's reference trace.
func writeTestBundle(t *testing.T) (string, *trace.Trace) {
	t.Helper()
	epoch := time.Unix(0, 0).UTC()
	rec := serve.NewRecorder(epoch)
	for app, pattern := range map[string][]int{
		"app00": {0, 3, 7, 12, 30, 55},
		"app01": {1, 2, 4, 8, 16, 32, 64},
		"app02": {5, 35, 65},
	} {
		for _, m := range pattern {
			rec.Record(app, app+"-fn", epoch.Add(time.Duration(m)*time.Minute+15*time.Second))
		}
	}
	path := filepath.Join(t.TempDir(), "incident.bundle")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.WriteBundle(f, "test-incident", 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path, rec.Trace(0)
}

// TestBundleSourceStreams checks "bundle:path" resolves to a source
// yielding exactly the recorded apps, with a canonical spec.
func TestBundleSourceStreams(t *testing.T) {
	path, want := writeTestBundle(t)
	f, err := NewSource("bundle:" + path)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Spec(); got != "bundle:"+path {
		t.Fatalf("Spec() = %q, want %q", got, "bundle:"+path)
	}
	// The spec round-trips through the registry.
	f2, err := NewSource(f.Spec())
	if err != nil {
		t.Fatal(err)
	}
	if f2.Spec() != f.Spec() {
		t.Fatalf("re-parsed spec %q, want %q", f2.Spec(), f.Spec())
	}

	src, release, err := f.Open()
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	if src.Horizon() != want.Duration {
		t.Fatalf("Horizon() = %v, want %v", src.Horizon(), want.Duration)
	}
	n := 0
	for {
		app, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if app.ID != want.Apps[n].ID {
			t.Fatalf("app %d: %s, want %s", n, app.ID, want.Apps[n].ID)
		}
		n++
	}
	if n != len(want.Apps) {
		t.Fatalf("streamed %d apps, want %d", n, len(want.Apps))
	}
}

// TestBundleSourceInScenario runs a bundle-sourced cell end to end and
// checks it equals the same policy over the in-memory trace — the
// "replay an incident like any dataset CSV" contract.
func TestBundleSourceInScenario(t *testing.T) {
	path, tr := writeTestBundle(t)
	got, err := RunScenario(context.Background(), Scenario{
		Source: "bundle:" + path,
		Policy: "fixed?ka=10m",
	})
	if err != nil {
		t.Fatal(err)
	}
	want, err := RunScenario(context.Background(), Scenario{Policy: "fixed?ka=10m"}, WithFixedTrace(tr))
	if err != nil {
		t.Fatal(err)
	}
	gm, wm := got.Metrics(), want.Metrics()
	if len(gm) == 0 || len(gm) != len(wm) {
		t.Fatalf("metrics %d vs %d", len(gm), len(wm))
	}
	for i := range gm {
		if gm[i] != wm[i] {
			t.Fatalf("metric %s: bundle %v, fixed-trace %v", gm[i].Name, gm[i].Value, wm[i].Value)
		}
	}
}

// TestBundleSourceErrors pins the scheme's error surface.
func TestBundleSourceErrors(t *testing.T) {
	if _, err := NewSource("bundle:"); err == nil || !strings.Contains(err.Error(), "want bundle:path") {
		t.Fatalf("empty rest error = %v", err)
	}
	f, err := NewSource("bundle:/no/such/file.bundle")
	if err != nil {
		t.Fatal(err) // path errors surface at Open, like csv:
	}
	if _, _, err := f.Open(); err == nil {
		t.Fatal("Open() of a missing bundle succeeded")
	}
	// A plain CSV is not a bundle: the header line must be JSON.
	path := filepath.Join(t.TempDir(), "plain.csv")
	if err := os.WriteFile(path, []byte("HashOwner,HashApp,HashFunction,Trigger,1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err = NewSource("bundle:" + path)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := f.Open(); err == nil {
		t.Fatal("Open() of a headerless file succeeded")
	}
}

// TestGenSpecDiurnalRoundTrip pins the mode-aware period elision: a
// diurnal cell's default period (one day) is elided, while an explicit
// period equal to the burst default (10) survives the round trip.
func TestGenSpecDiurnalRoundTrip(t *testing.T) {
	cases := []struct{ in, want string }{
		{"gen:apps=5&mode=diurnal&rps0=1&rps1=30",
			"gen:apps=5&seed=42&mode=diurnal&rps0=1&rps1=30"},
		{"gen:apps=5&mode=diurnal&rps0=1&rps1=30&period=1440",
			"gen:apps=5&seed=42&mode=diurnal&rps0=1&rps1=30"},
		{"gen:apps=5&mode=diurnal&rps0=1&rps1=30&period=10",
			"gen:apps=5&seed=42&mode=diurnal&rps0=1&rps1=30&period=10"},
		{"gen:apps=5&mode=burst&rps0=1&rps1=30&period=10",
			"gen:apps=5&seed=42&mode=burst&rps0=1&rps1=30"},
	}
	for _, c := range cases {
		f, err := NewSource(c.in)
		if err != nil {
			t.Fatalf("%q: %v", c.in, err)
		}
		if got := f.Spec(); got != c.want {
			t.Errorf("%q: Spec() = %q, want %q", c.in, got, c.want)
		}
		// And the canonical spec is a fixed point.
		f2, err := NewSource(f.Spec())
		if err != nil {
			t.Fatalf("%q: reparse: %v", f.Spec(), err)
		}
		if f2.Spec() != f.Spec() {
			t.Errorf("%q: not a fixed point (-> %q)", f.Spec(), f2.Spec())
		}
	}
}
