package scenario

import (
	"fmt"
	"os"

	"repro/internal/serve"
	"repro/internal/trace"
)

// bundleFactory streams a captured incident bundle (internal/serve's
// versioned format: JSON header + dataset-codec invocation rows) as a
// trace source, so a recorded serving incident drops into any
// scenario or sweep exactly like a dataset CSV:
//
//	source=bundle:incidents/stampede.bundle; policy=[fixed?ka=10m,hybrid]
type bundleFactory struct {
	path string
}

func (f *bundleFactory) Spec() string { return "bundle:" + f.path }

func (f *bundleFactory) Open() (trace.Source, func() error, error) {
	file, err := os.Open(f.path)
	if err != nil {
		return nil, nil, err
	}
	_, src, err := serve.StreamBundle(file)
	if err != nil {
		file.Close()
		return nil, nil, err
	}
	return src, file.Close, nil
}

func init() {
	RegisterSource("bundle", func(rest string) (SourceFactory, error) {
		if rest == "" {
			return nil, fmt.Errorf("want bundle:path")
		}
		return &bundleFactory{path: rest}, nil
	})
}
