package scenario

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/spec"
)

// The sink registry maps short names to builders of metric sinks,
// extending the policy-spec discipline to the measurement axis. A
// sink spec is "name?key=value" ("coldstart?q=50,75,99", "waste",
// "attribution", "util"); a built Sink consumes one run's outcomes
// and reports named summary metrics, and same-spec sinks merge
// exactly (integer counters and binned distributions) so sharded runs
// aggregate to the unsharded whole.

// Metric is one named summary value of a run.
type Metric struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// Sink is a scenario metric sink. Implementations additionally
// implement sim.ResultSink (per-app batch outcomes), cluster.Sink
// (cluster outcomes with eviction attribution), and/or
// clusterObserver (whole-run cluster statistics); the runner attaches
// whichever interfaces the run kind supports and rejects sinks that
// need a cluster on batch scenarios.
type Sink interface {
	// Spec returns the canonical spec the sink was built from.
	Spec() string
	// Metrics returns the run's summary metrics in a fixed order.
	Metrics() []Metric
	// Merge folds another sink of the same spec into this one (shard
	// aggregation); merging different specs or types is an error.
	Merge(other Sink) error
}

// clusterObserver is the optional Sink extension for whole-run
// cluster statistics (node utilization) that per-app consumption
// cannot see.
type clusterObserver interface {
	ObserveCluster(r *cluster.Result)
}

// SinkBuilder constructs a sink from a spec's parameters.
type SinkBuilder func(p *spec.Params) (Sink, error)

var (
	sinkMu  sync.RWMutex
	sinkReg = map[string]SinkBuilder{}
)

// RegisterSink adds a named sink builder. Registering a duplicate
// name panics (programming error).
func RegisterSink(name string, b SinkBuilder) {
	sinkMu.Lock()
	defer sinkMu.Unlock()
	if _, dup := sinkReg[name]; dup {
		panic(fmt.Sprintf("scenario: RegisterSink(%q) called twice", name))
	}
	sinkReg[name] = b
}

// SinkNames returns the registered sink names, sorted.
func SinkNames() []string {
	sinkMu.RLock()
	defer sinkMu.RUnlock()
	names := make([]string, 0, len(sinkReg))
	//wildlint:orderinvariant
	for n := range sinkReg {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// NewSink builds a registered sink from a spec ("coldstart?q=50,75").
func NewSink(s string) (Sink, error) {
	name, query := spec.Split(s)
	sinkMu.RLock()
	b, ok := sinkReg[name]
	sinkMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("scenario: unknown sink %q (registered: %v)", name, SinkNames())
	}
	p, err := spec.Parse(query)
	if err != nil {
		return nil, fmt.Errorf("scenario: sink spec %q: %w", s, err)
	}
	sink, err := b(p)
	if err != nil {
		return nil, fmt.Errorf("scenario: sink spec %q: %w", s, err)
	}
	if left := p.Unused(); len(left) > 0 {
		return nil, fmt.Errorf("scenario: sink spec %q: unknown parameters %v (known: %v)", s, left, p.Known())
	}
	return sink, nil
}

// coldStartScenarioSink reports quantiles of the per-app cold-start
// percentage distribution. Bins are integer counts, so Merge is exact.
type coldStartScenarioSink struct {
	*metrics.ColdStartSink
	quantiles []float64
}

func (s *coldStartScenarioSink) Spec() string {
	if len(s.quantiles) == 2 && s.quantiles[0] == 50 && s.quantiles[1] == 75 {
		return "coldstart"
	}
	qs := make([]string, len(s.quantiles))
	for i, q := range s.quantiles {
		qs[i] = fmt.Sprintf("%g", q)
	}
	// ':' is the canonical list separator: commas already separate
	// sink specs in the scenario text grammar.
	return "coldstart?q=" + strings.Join(qs, ":")
}

func (s *coldStartScenarioSink) Metrics() []Metric {
	out := make([]Metric, len(s.quantiles))
	for i, q := range s.quantiles {
		out[i] = Metric{Name: fmt.Sprintf("cold_p%g", q), Value: s.Quantile(q)}
	}
	return out
}

func (s *coldStartScenarioSink) Merge(other Sink) error {
	o, ok := other.(*coldStartScenarioSink)
	if !ok || o.Spec() != s.Spec() {
		return fmt.Errorf("scenario: cannot merge sink %q into %q", other.Spec(), s.Spec())
	}
	s.ColdStartSink.Merge(o.ColdStartSink)
	return nil
}

// wasteScenarioSink reports the wasted-memory total and the run-size
// counters the evaluation normalizes by.
type wasteScenarioSink struct {
	*metrics.WastedMemorySink
}

func (s *wasteScenarioSink) Spec() string { return "waste" }

func (s *wasteScenarioSink) Metrics() []Metric {
	return []Metric{
		{Name: "wasted_seconds", Value: s.TotalWastedSeconds()},
		{Name: "apps", Value: float64(s.Apps())},
		{Name: "invocations", Value: float64(s.TotalInvocations())},
		{Name: "cold_starts", Value: float64(s.TotalColdStarts())},
	}
}

func (s *wasteScenarioSink) Merge(other Sink) error {
	o, ok := other.(*wasteScenarioSink)
	if !ok {
		return fmt.Errorf("scenario: cannot merge sink %q into %q", other.Spec(), s.Spec())
	}
	s.WastedMemorySink.Merge(o.WastedMemorySink)
	return nil
}

// attributionScenarioSink splits cluster cold starts into
// policy-induced vs eviction-induced. Cluster scenarios only.
type attributionScenarioSink struct {
	*metrics.ClusterAttributionSink
}

func (s *attributionScenarioSink) Spec() string { return "attribution" }

func (s *attributionScenarioSink) Metrics() []Metric {
	return []Metric{
		{Name: "evict_cold_pct", Value: s.EvictionColdPercent()},
		{Name: "evictions", Value: float64(s.Evictions())},
		{Name: "eviction_cold_starts", Value: float64(s.EvictionColdStarts())},
		{Name: "failure_cold_starts", Value: float64(s.FailureColdStarts())},
		{Name: "policy_cold_starts", Value: float64(s.PolicyColdStarts())},
	}
}

func (s *attributionScenarioSink) Merge(other Sink) error {
	o, ok := other.(*attributionScenarioSink)
	if !ok {
		return fmt.Errorf("scenario: cannot merge sink %q into %q", other.Spec(), s.Spec())
	}
	s.ClusterAttributionSink.Merge(o.ClusterAttributionSink)
	return nil
}

// utilScenarioSink reports mean cluster memory utilization from the
// per-node integrals. Cluster scenarios only.
type utilScenarioSink struct {
	residentMBSeconds float64
	capacityMBSeconds float64
}

func (s *utilScenarioSink) Spec() string { return "util" }

func (s *utilScenarioSink) ObserveCluster(r *cluster.Result) {
	for _, ns := range r.NodeStats {
		s.residentMBSeconds += ns.ResidentMBSeconds
	}
	if r.NodeMemMB > 0 {
		s.capacityMBSeconds += r.HorizonSeconds * r.NodeMemMB * float64(len(r.NodeStats))
	}
}

func (s *utilScenarioSink) Metrics() []Metric {
	pct := 0.0
	if s.capacityMBSeconds > 0 {
		pct = 100 * s.residentMBSeconds / s.capacityMBSeconds
	}
	return []Metric{{Name: "util_pct", Value: pct}}
}

func (s *utilScenarioSink) Merge(other Sink) error {
	o, ok := other.(*utilScenarioSink)
	if !ok {
		return fmt.Errorf("scenario: cannot merge sink %q into %q", other.Spec(), s.Spec())
	}
	s.residentMBSeconds += o.residentMBSeconds
	s.capacityMBSeconds += o.capacityMBSeconds
	return nil
}

// utilState is utilScenarioSink's wire form for process fan-out; the
// other builtin sinks inherit their codecs from the embedded metrics
// sinks.
type utilState struct {
	ResidentMBSeconds float64 `json:"resident_mb_seconds"`
	CapacityMBSeconds float64 `json:"capacity_mb_seconds"`
}

func (s *utilScenarioSink) MarshalState() ([]byte, error) {
	return json.Marshal(utilState{s.residentMBSeconds, s.capacityMBSeconds})
}

func (s *utilScenarioSink) UnmarshalState(data []byte) error {
	var st utilState
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	*s = utilScenarioSink{residentMBSeconds: st.ResidentMBSeconds, capacityMBSeconds: st.CapacityMBSeconds}
	return nil
}

func init() {
	RegisterSink("coldstart", func(p *spec.Params) (Sink, error) {
		qs, err := p.Floats("q", []float64{50, 75})
		if err != nil {
			return nil, err
		}
		for _, q := range qs {
			if q < 0 || q > 100 {
				return nil, fmt.Errorf("parameter q: percentile %g out of [0, 100]", q)
			}
		}
		return &coldStartScenarioSink{ColdStartSink: metrics.NewColdStartSink(), quantiles: qs}, nil
	})
	RegisterSink("waste", func(*spec.Params) (Sink, error) {
		return &wasteScenarioSink{WastedMemorySink: metrics.NewWastedMemorySink()}, nil
	})
	RegisterSink("attribution", func(*spec.Params) (Sink, error) {
		return &attributionScenarioSink{ClusterAttributionSink: metrics.NewClusterAttributionSink()}, nil
	})
	RegisterSink("util", func(*spec.Params) (Sink, error) {
		return &utilScenarioSink{}, nil
	})
}

// Interface conformance: the runner attaches sinks by capability.
var (
	_ sim.ResultSink  = (*coldStartScenarioSink)(nil)
	_ sim.ResultSink  = (*wasteScenarioSink)(nil)
	_ cluster.Sink    = (*attributionScenarioSink)(nil)
	_ clusterObserver = (*utilScenarioSink)(nil)
)
