package scenario

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/trace"
)

// TestTracecSource pins the binary-bundle source scheme: a tracec:
// factory re-opens the bundle per run, streams the same apps the
// writer saw, and composes with shard wrappers.
func TestTracecSource(t *testing.T) {
	tr := &trace.Trace{Duration: 30 * time.Minute}
	for _, id := range []string{"a1", "a2", "a3", "a4"} {
		tr.Apps = append(tr.Apps, &trace.App{ID: id, Owner: "o", MemoryMB: 200,
			Functions: []*trace.Function{{ID: id + "f", Trigger: trace.TriggerHTTP,
				Invocations: []float64{30, 90}}}})
	}
	path := filepath.Join(t.TempDir(), "trace.bin")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteBinary(f, tr); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	fac, err := NewSource("tracec:" + path)
	if err != nil {
		t.Fatal(err)
	}
	if fac.Spec() != "tracec:"+path {
		t.Fatalf("spec %q", fac.Spec())
	}
	// Two opens must both stream the full bundle (sources are
	// single-use; the factory re-opens).
	for round := 0; round < 2; round++ {
		src, release, err := fac.Open()
		if err != nil {
			t.Fatal(err)
		}
		got, err := trace.Collect(src)
		if err != nil {
			t.Fatal(err)
		}
		if err := release(); err != nil {
			t.Fatal(err)
		}
		if len(got.Apps) != 4 || got.Duration != tr.Duration {
			t.Fatalf("round %d: %d apps over %v", round, len(got.Apps), got.Duration)
		}
		for i, app := range got.Apps {
			if app.ID != tr.Apps[i].ID || app.MemoryMB != 200 || len(app.Functions[0].Invocations) != 2 {
				t.Fatalf("round %d app %d: %+v", round, i, app)
			}
		}
	}

	// Shard composition: "shard:0/2 of tracec:..." selects the even
	// interleaved apps.
	shardFac, err := NewSource("shard:0/2 of tracec:" + path)
	if err != nil {
		t.Fatal(err)
	}
	src, release, err := shardFac.Open()
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	got, err := trace.Collect(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Apps) != 2 || got.Apps[0].ID != "a1" || got.Apps[1].ID != "a3" {
		t.Fatalf("shard 0/2: %+v", got.Apps)
	}

	if _, err := NewSource("tracec:"); err == nil {
		t.Fatal("empty tracec path accepted")
	}
	if _, err := NewSource("tracec:" + filepath.Join(t.TempDir(), "missing.bin")); err == nil {
		// Factories defer existence checks to Open.
		fac, _ := NewSource("tracec:" + filepath.Join(t.TempDir(), "missing.bin"))
		if _, _, err := fac.Open(); err == nil {
			t.Fatal("missing bundle opened")
		}
	}
}
