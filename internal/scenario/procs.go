package scenario

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"sync"
)

// Process fan-out: RunSweepProcs runs each schedulable unit of a sweep
// in its own worker process — the same binary re-exec'd with
// ProcWorkerEnv set — so a trace-scale sweep spreads across cores (and
// address spaces) instead of sharing one heap. A worker receives its
// concrete scenario (shard field pinned to "i/n") as JSON on stdin,
// runs it with the ordinary in-process path, and writes its drained
// sink states back as JSON on stdout; the parent reconstitutes the
// sinks and folds them together in shard order with the exact same
// Merges RunSweep uses. Sink states are integers and shortest-round-
// trip floats, so the fan-out is bit-identical to the in-process sweep
// (pinned by TestRunSweepProcsMatchesInProcess).

// ProcWorkerEnv marks a process as a sweep worker. MaybeRunWorker
// reacts to it; RunSweepProcs sets it on the children it spawns.
const ProcWorkerEnv = "WILD_SCENARIO_WORKER"

// stateCodec is implemented by sinks whose complete merge state can
// cross a process boundary. All builtin sinks implement it; custom
// sinks that don't are rejected by RunSweepProcs workers.
type stateCodec interface {
	MarshalState() ([]byte, error)
	UnmarshalState([]byte) error
}

// procRequest is what a worker reads from stdin.
type procRequest struct {
	Scenario Scenario `json:"scenario"`
}

// procSink is one drained sink crossing the process boundary.
type procSink struct {
	Spec  string          `json:"spec"`
	State json.RawMessage `json:"state"`
}

// procResponse is what a worker writes to stdout.
type procResponse struct {
	PolicyName   string        `json:"policy_name"`
	Sinks        []procSink    `json:"sinks"`
	Nodes        []NodeSummary `json:"nodes,omitempty"`
	MemDefaulted int           `json:"mem_defaulted,omitempty"`
}

// MaybeRunWorker turns this process into a sweep worker if it was
// spawned as one (ProcWorkerEnv set) and never returns in that case;
// otherwise it is a no-op. Binaries that may serve as fan-out workers
// (coldsim) call it first thing in main, before flag parsing.
func MaybeRunWorker() {
	if os.Getenv(ProcWorkerEnv) == "" {
		return
	}
	if err := runWorker(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "scenario worker: %v\n", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// runWorker executes one worker request: decode the scenario, run it
// in-process, stream the drained sink states back.
func runWorker(in io.Reader, out io.Writer) error {
	var req procRequest
	if err := json.NewDecoder(in).Decode(&req); err != nil {
		return fmt.Errorf("decoding request: %w", err)
	}
	cell, err := RunScenario(context.Background(), req.Scenario)
	if err != nil {
		return err
	}
	resp := procResponse{
		PolicyName:   cell.PolicyName,
		Nodes:        cell.Nodes,
		MemDefaulted: cell.MemDefaulted,
	}
	for _, cs := range cell.Sinks {
		codec, ok := cs.Sink.(stateCodec)
		if !ok {
			return fmt.Errorf("sink %q cannot cross a process boundary", cs.Spec)
		}
		state, err := codec.MarshalState()
		if err != nil {
			return fmt.Errorf("marshaling sink %q: %w", cs.Spec, err)
		}
		resp.Sinks = append(resp.Sinks, procSink{Spec: cs.Spec, State: state})
	}
	return json.NewEncoder(out).Encode(resp)
}

// RunSweepProcs executes a sweep like RunSweep, but each unit (a cell,
// or one shard of a fanned-out "*/n" cell) runs in its own worker
// process, up to procs concurrent (default GOMAXPROCS). Results are
// bit-identical to RunSweep over the same cells.
//
// Sources must be serializable specs — WithFixedTrace cannot cross a
// process boundary and is rejected.
func RunSweepProcs(ctx context.Context, cells []Scenario, procs int, opts ...Option) (*SweepReport, error) {
	var o runOptions
	for _, opt := range opts {
		opt(&o)
	}
	if o.fixedTrace != nil {
		return nil, fmt.Errorf("scenario: RunSweepProcs cannot ship an in-memory trace to workers; use a source spec")
	}
	if len(cells) == 0 {
		return nil, fmt.Errorf("scenario: empty sweep")
	}
	exe, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("scenario: resolving worker executable: %w", err)
	}
	// Source specs must at least parse before any worker spawns (the
	// workers open them for real).
	for i, sc := range cells {
		if _, err := sourceForScenario(sc); err != nil {
			return nil, &CellError{Index: i, Scenario: sc, Err: err}
		}
	}
	units, unitsPerCell, err := expandUnits(cells, nil)
	if err != nil {
		return nil, err
	}

	if procs <= 0 {
		procs = runtime.GOMAXPROCS(0)
	}
	if procs > len(units) {
		procs = len(units)
	}
	results := make([]unitResult, len(units))
	errs := make([]error, len(units))
	next := make(chan int)
	var wg sync.WaitGroup
	go func() {
		defer close(next)
		for i := range units {
			select {
			case next <- i:
			case <-ctx.Done():
				return
			}
		}
	}()
	for w := 0; w < procs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				res, err := runProcUnit(ctx, exe, units[i])
				if err != nil {
					errs[i] = &CellError{Index: units[i].cell, Scenario: units[i].sc, Err: err}
					continue
				}
				results[i] = res
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return assembleReport(cells, unitsPerCell, results)
}

// runProcUnit runs one unit in a worker process and reconstitutes its
// sinks.
func runProcUnit(ctx context.Context, exe string, u unit) (unitResult, error) {
	sc := u.sc
	// Pin the worker to this unit's concrete shard; the "*/n" fan-out
	// already happened in the parent's expansion.
	if u.shardI >= 0 {
		sc.Shard = fmt.Sprintf("%d/%d", u.shardI, u.shardN)
	} else {
		sc.Shard = ""
	}
	reqData, err := json.Marshal(procRequest{Scenario: sc})
	if err != nil {
		return unitResult{}, err
	}

	cmd := exec.CommandContext(ctx, exe)
	cmd.Env = append(os.Environ(), ProcWorkerEnv+"=1")
	cmd.Stdin = bytes.NewReader(reqData)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		msg := strings.TrimSpace(stderr.String())
		if msg != "" {
			return unitResult{}, fmt.Errorf("worker: %s (%w)", msg, err)
		}
		return unitResult{}, fmt.Errorf("worker: %w", err)
	}
	var resp procResponse
	if err := json.Unmarshal(stdout.Bytes(), &resp); err != nil {
		return unitResult{}, fmt.Errorf("worker produced malformed output: %w", err)
	}

	res := unitResult{
		policyName: resp.PolicyName,
		nodes:      resp.Nodes,
		defaulted:  resp.MemDefaulted,
		sinks:      make([]CellSink, len(resp.Sinks)),
	}
	for i, ps := range resp.Sinks {
		built, err := NewSink(ps.Spec)
		if err != nil {
			return unitResult{}, fmt.Errorf("worker sink %q: %w", ps.Spec, err)
		}
		codec, ok := built.(stateCodec)
		if !ok {
			return unitResult{}, fmt.Errorf("worker sink %q cannot cross a process boundary", ps.Spec)
		}
		if err := codec.UnmarshalState(ps.State); err != nil {
			return unitResult{}, fmt.Errorf("worker sink %q state: %w", ps.Spec, err)
		}
		res.sinks[i] = CellSink{Spec: ps.Spec, Sink: built}
	}
	return res, nil
}
