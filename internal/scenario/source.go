package scenario

import (
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/spec"
	"repro/internal/trace"
	"repro/internal/workload"
)

// The source registry maps scheme names to builders of re-openable
// trace sources, extending the policy-spec discipline to the
// workload axis. A source spec is
//
//	name:rest
//
// where rest's shape belongs to the scheme:
//
//	csv:trace/invocations.csv        streaming dataset CSV
//	tracec:trace/bundle.bin          compact binary bundle (tracegen -encode)
//	gen:apps=400&days=7&seed=7       synthetic generation (query syntax)
//	shard:1/4 of csv:big.csv         the i-th of n interleaved shards
//	bundle:incidents/oct-stampede    captured incident bundle (serve)
//
// trace.Source values are single-use, so the registry hands out
// factories: every Open returns a fresh source, which is what lets a
// sweep re-run one spec per cell (and a cmd re-stream a CSV per
// policy) without caring what backs it.

// SourceFactory produces fresh trace sources for one spec.
type SourceFactory interface {
	// Spec returns the canonical spec the factory was built from.
	Spec() string
	// Open returns a fresh source and a release function (closes any
	// underlying file; always non-nil).
	Open() (trace.Source, func() error, error)
}

// seedable is implemented by factories whose randomness can be
// re-seeded (generator sources); Scenario.Seed uses it.
type seedable interface {
	withSeed(seed uint64) SourceFactory
}

// lazyOpener is implemented by factories that can also produce a
// one-at-a-time streaming source without materializing anything.
// Shard wrappers prefer it: streaming the inner source and collecting
// only the selected shard keeps memory at the shard's size (the
// multi-process partitioning contract), instead of residing the whole
// population just to slice it.
type lazyOpener interface {
	openLazy() (trace.Source, func() error, error)
}

// SourceBuilder constructs a source factory from the spec's rest (the
// text after "name:").
type SourceBuilder func(rest string) (SourceFactory, error)

var (
	sourceMu  sync.RWMutex
	sourceReg = map[string]SourceBuilder{}
)

// RegisterSource adds a named source builder. Registering a duplicate
// name panics (programming error).
func RegisterSource(name string, b SourceBuilder) {
	sourceMu.Lock()
	defer sourceMu.Unlock()
	if _, dup := sourceReg[name]; dup {
		panic(fmt.Sprintf("scenario: RegisterSource(%q) called twice", name))
	}
	sourceReg[name] = b
}

// SourceNames returns the registered source scheme names, sorted.
func SourceNames() []string {
	sourceMu.RLock()
	defer sourceMu.RUnlock()
	names := make([]string, 0, len(sourceReg))
	//wildlint:orderinvariant
	for n := range sourceReg {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// NewSource builds a source factory from a spec ("csv:path",
// "gen:apps=400", "shard:1/4 of <spec>").
func NewSource(s string) (SourceFactory, error) {
	name, rest, _ := strings.Cut(s, ":")
	sourceMu.RLock()
	b, ok := sourceReg[name]
	sourceMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("scenario: unknown source %q (registered: %v)", name, SourceNames())
	}
	f, err := b(rest)
	if err != nil {
		return nil, fmt.Errorf("scenario: source %q: %w", s, err)
	}
	return f, nil
}

// csvFactory re-opens a dataset CSV per run: the constant-memory
// streaming path, per-open file handle.
type csvFactory struct {
	path string
}

func (f *csvFactory) Spec() string { return "csv:" + f.path }

func (f *csvFactory) Open() (trace.Source, func() error, error) {
	file, err := os.Open(f.path)
	if err != nil {
		return nil, nil, err
	}
	src, err := trace.StreamInvocationsCSV(file)
	if err != nil {
		file.Close()
		return nil, nil, err
	}
	return src, file.Close, nil
}

// tracecFactory re-opens a binary trace bundle per run: the decoder
// streams one app at a time (memory-mapping the file when the platform
// allows), so bundles far larger than RAM run in constant memory —
// and, unlike CSV, carry exec stats and memory footprints natively.
type tracecFactory struct {
	path string
}

func (f *tracecFactory) Spec() string { return "tracec:" + f.path }

func (f *tracecFactory) Open() (trace.Source, func() error, error) {
	src, err := trace.OpenBinaryFile(f.path)
	if err != nil {
		return nil, nil, err
	}
	return src, src.Close, nil
}

// genFactory generates the configured synthetic population per open.
// It materializes the trace (once, lazily) and hands out in-memory
// sources, so every consumer takes the deterministic batch fast path
// and repeated opens don't regenerate.
type genFactory struct {
	cfg  workload.Config
	once sync.Once
	tr   *trace.Trace
	err  error
}

func (f *genFactory) Spec() string {
	parts := []string{fmt.Sprintf("apps=%d", f.cfg.NumApps)}
	if d := f.cfg.Duration; d != 7*24*time.Hour {
		parts = append(parts, fmt.Sprintf("days=%g", d.Hours()/24))
	}
	parts = append(parts, fmt.Sprintf("seed=%d", f.cfg.Seed))
	if f.cfg.MaxDailyRate != 20000 {
		parts = append(parts, fmt.Sprintf("maxrate=%g", f.cfg.MaxDailyRate))
	}
	if f.cfg.MaxEventsPerFunction != 200000 {
		parts = append(parts, fmt.Sprintf("maxevents=%d", f.cfg.MaxEventsPerFunction))
	}
	if f.cfg.Mode != "" {
		parts = append(parts, "mode="+f.cfg.Mode)
		if f.cfg.RPS0 != 0 {
			parts = append(parts, fmt.Sprintf("rps0=%g", f.cfg.RPS0))
		}
		if f.cfg.RPS1 != 0 {
			parts = append(parts, fmt.Sprintf("rps1=%g", f.cfg.RPS1))
		}
		if f.cfg.StepRPS != 0 {
			parts = append(parts, fmt.Sprintf("step=%g", f.cfg.StepRPS))
		}
		if f.cfg.SlotMins != 0 && f.cfg.SlotMins != 1 {
			parts = append(parts, fmt.Sprintf("slot=%d", f.cfg.SlotMins))
		}
		// The elidable period default is per mode (burst 10, diurnal one
		// day); an explicit non-default period must survive the round
		// trip even when it equals another mode's default.
		defPeriod := 10
		if f.cfg.Mode == workload.ModeDiurnal {
			defPeriod = 24 * 60
		}
		if f.cfg.PeriodMins != 0 && f.cfg.PeriodMins != defPeriod {
			parts = append(parts, fmt.Sprintf("period=%d", f.cfg.PeriodMins))
		}
		if f.cfg.BurstMins != 0 && f.cfg.BurstMins != 1 {
			parts = append(parts, fmt.Sprintf("burst=%d", f.cfg.BurstMins))
		}
	}
	return "gen:" + strings.Join(parts, "&")
}

func (f *genFactory) Open() (trace.Source, func() error, error) {
	f.once.Do(func() {
		src, err := workload.NewSource(f.cfg)
		if err != nil {
			f.err = err
			return
		}
		f.tr, f.err = trace.Collect(src)
		if f.err == nil {
			// The trace is about to be shared across concurrently-running
			// cells: leave no lazy cache writes behind.
			f.tr.WarmCaches()
		}
	})
	if f.err != nil {
		return nil, nil, f.err
	}
	return trace.NewTraceSource(f.tr), func() error { return nil }, nil
}

// openLazy streams the generator without materializing (bit-identical
// apps; trades regeneration CPU for constant memory).
func (f *genFactory) openLazy() (trace.Source, func() error, error) {
	src, err := workload.NewSource(f.cfg)
	if err != nil {
		return nil, nil, err
	}
	return src, func() error { return nil }, nil
}

func (f *genFactory) withSeed(seed uint64) SourceFactory {
	cfg := f.cfg
	cfg.Seed = seed
	return &genFactory{cfg: cfg}
}

// shardFactory restricts an inner factory to one interleaved shard.
// For lazily-streamable inners the selected shard is collected once
// (memory stays at the shard's size) and shared across opens.
type shardFactory struct {
	inner SourceFactory
	i, n  int
	once  sync.Once
	tr    *trace.Trace
	err   error
}

func (f *shardFactory) Spec() string {
	return fmt.Sprintf("shard:%d/%d of %s", f.i, f.n, f.inner.Spec())
}

func (f *shardFactory) Open() (trace.Source, func() error, error) {
	// Lazily-streamable inners (generators) are streamed and only the
	// selected shard is collected — memory stays at the shard's size,
	// and the materialized result keeps consumers on the deterministic
	// batch fast path.
	if lazy, ok := f.inner.(lazyOpener); ok {
		f.once.Do(func() {
			src, release, err := lazy.openLazy()
			if err != nil {
				f.err = err
				return
			}
			f.tr, f.err = trace.Collect(trace.Shard(src, f.i, f.n))
			if cerr := release(); f.err == nil {
				f.err = cerr
			}
			if f.err == nil {
				f.tr.WarmCaches() // shared across opens, like genFactory
			}
		})
		if f.err != nil {
			return nil, nil, f.err
		}
		return trace.NewTraceSource(f.tr), func() error { return nil }, nil
	}
	src, release, err := f.inner.Open()
	if err != nil {
		return nil, nil, err
	}
	// Shards of in-memory sources materialize (a pointer-level walk) so
	// consumers keep the deterministic batch fast path; streaming
	// inners stay streaming.
	if tr := trace.BatchTrace(src); tr != nil {
		shardTr, err := trace.Collect(trace.Shard(trace.NewTraceSource(tr), f.i, f.n))
		if err != nil {
			release()
			return nil, nil, err
		}
		return trace.NewTraceSource(shardTr), release, nil
	}
	return trace.Shard(src, f.i, f.n), release, nil
}

// openLazy streams the sharded inner (nested shard wrappers compose
// without materializing intermediate layers).
func (f *shardFactory) openLazy() (trace.Source, func() error, error) {
	var (
		src     trace.Source
		release func() error
		err     error
	)
	if lazy, ok := f.inner.(lazyOpener); ok {
		src, release, err = lazy.openLazy()
	} else {
		src, release, err = f.inner.Open()
	}
	if err != nil {
		return nil, nil, err
	}
	return trace.Shard(src, f.i, f.n), release, nil
}

func (f *shardFactory) withSeed(seed uint64) SourceFactory {
	s, ok := f.inner.(seedable)
	if !ok {
		return nil
	}
	inner := s.withSeed(seed)
	if inner == nil {
		return nil
	}
	return &shardFactory{inner: inner, i: f.i, n: f.n}
}

func init() {
	RegisterSource("csv", func(rest string) (SourceFactory, error) {
		if rest == "" {
			return nil, fmt.Errorf("want csv:path")
		}
		return &csvFactory{path: rest}, nil
	})
	RegisterSource("tracec", func(rest string) (SourceFactory, error) {
		if rest == "" {
			return nil, fmt.Errorf("want tracec:path")
		}
		return &tracecFactory{path: rest}, nil
	})
	RegisterSource("gen", func(rest string) (SourceFactory, error) {
		p, err := spec.Parse(rest)
		if err != nil {
			return nil, err
		}
		var cfg workload.Config
		apps, err := p.Int("apps", 500)
		if err != nil {
			return nil, err
		}
		cfg.NumApps = apps
		days, err := p.Float("days", 7)
		if err != nil {
			return nil, err
		}
		cfg.Duration = time.Duration(days * 24 * float64(time.Hour))
		if cfg.Seed, err = p.Uint64("seed", 42); err != nil {
			return nil, err
		}
		if cfg.MaxDailyRate, err = p.Float("maxrate", 20000); err != nil {
			return nil, err
		}
		if cfg.MaxEventsPerFunction, err = p.Int("maxevents", 200000); err != nil {
			return nil, err
		}
		// Shaped arrival modes ("mode=ramp&rps0=10&rps1=20&step=5",
		// "mode=burst&rps0=2&rps1=50", "mode=diurnal&rps0=1&rps1=30");
		// workload.Config.Validate rejects shaped parameters without a
		// mode and mode-mismatched ones.
		cfg.Mode = p.String("mode", "")
		if cfg.RPS0, err = p.Float("rps0", 0); err != nil {
			return nil, err
		}
		if cfg.RPS1, err = p.Float("rps1", 0); err != nil {
			return nil, err
		}
		if cfg.StepRPS, err = p.Float("step", 0); err != nil {
			return nil, err
		}
		if cfg.SlotMins, err = p.Int("slot", 0); err != nil {
			return nil, err
		}
		if cfg.PeriodMins, err = p.Int("period", 0); err != nil {
			return nil, err
		}
		if cfg.BurstMins, err = p.Int("burst", 0); err != nil {
			return nil, err
		}
		if left := p.Unused(); len(left) > 0 {
			return nil, fmt.Errorf("unknown parameters %v (known: %v)", left, p.Known())
		}
		if err := cfg.Validate(); err != nil {
			return nil, err
		}
		return &genFactory{cfg: cfg}, nil
	})
	RegisterSource("shard", func(rest string) (SourceFactory, error) {
		designator, innerSpec, ok := strings.Cut(rest, " of ")
		if !ok {
			return nil, fmt.Errorf("want shard:i/n of <source spec>")
		}
		i, n, err := trace.ParseShard(strings.TrimSpace(designator))
		if err != nil {
			return nil, err
		}
		inner, err := NewSource(strings.TrimSpace(innerSpec))
		if err != nil {
			return nil, err
		}
		return &shardFactory{inner: inner, i: i, n: n}, nil
	})
}

// sourceForScenario resolves sc's source factory with the seed
// override applied. The canonical factory spec keys the sweep
// engine's source sharing: equal keys mean equal traces.
func sourceForScenario(sc Scenario) (SourceFactory, error) {
	if sc.Source == "" {
		return nil, fmt.Errorf("scenario: missing source (and no fixed trace supplied)")
	}
	f, err := NewSource(sc.Source)
	if err != nil {
		return nil, err
	}
	if sc.Seed != 0 {
		s, ok := f.(seedable)
		if !ok {
			return nil, fmt.Errorf("scenario: seed=%d set but source %q is not seedable", sc.Seed, sc.Source)
		}
		if f = s.withSeed(sc.Seed); f == nil {
			return nil, fmt.Errorf("scenario: seed=%d set but source %q is not seedable", sc.Seed, sc.Source)
		}
	}
	return f, nil
}
