package scenario

import (
	"context"
	"errors"
	"math"
	"os"
	"testing"
	"time"

	"repro/internal/trace"
)

// TestMain lets the test binary serve as its own fan-out worker:
// RunSweepProcs re-execs os.Executable, which under `go test` is this
// binary, and MaybeRunWorker intercepts the spawn before any test
// runs.
func TestMain(m *testing.M) {
	MaybeRunWorker()
	os.Exit(m.Run())
}

// procCells is the sweep the fan-out equivalence property runs over:
// batch and cluster cells, fanned-out and unsharded, default and
// custom sinks, both placements that matter (oblivious and
// view-dependent).
func procCells() []Scenario {
	return []Scenario{
		{
			Source: "gen:apps=40&days=2&seed=5&maxrate=2000&maxevents=4000",
			Policy: "hybrid",
			Shard:  "*/3",
		},
		{
			Source: "gen:apps=36&days=2&seed=9&maxrate=2000&maxevents=4000",
			Policy: "fixed?ka=10m",
			Cluster: &ClusterSpec{
				Nodes: 4, NodeMemMB: 1024,
			},
			ExecTime: true,
			Shard:    "*/2",
		},
		{
			Source: "gen:apps=24&days=1&seed=3&maxrate=2000&maxevents=4000",
			Policy: "hybrid?range=4h",
			Sinks:  []string{"coldstart?q=50:90:99", "waste"},
		},
		{
			Source: "gen:apps=30&days=1&seed=12&maxrate=2000&maxevents=4000",
			Policy: "fixed?ka=1h",
			Cluster: &ClusterSpec{
				Nodes: 3, NodeMemMB: 2048, Placement: "binpack",
			},
		},
	}
}

// requireReportsEqual compares two sweep reports bit-for-bit: policy
// names, every metric value (Float64bits), per-node aggregates, and
// memory-defaulted counts.
func requireReportsEqual(t *testing.T, got, want *SweepReport) {
	t.Helper()
	if len(got.Cells) != len(want.Cells) {
		t.Fatalf("%d cells, want %d", len(got.Cells), len(want.Cells))
	}
	for ci, wc := range want.Cells {
		gc := got.Cells[ci]
		if gc.PolicyName != wc.PolicyName {
			t.Errorf("cell %d: policy %q, want %q", ci, gc.PolicyName, wc.PolicyName)
		}
		if gc.MemDefaulted != wc.MemDefaulted {
			t.Errorf("cell %d: defaulted %d, want %d", ci, gc.MemDefaulted, wc.MemDefaulted)
		}
		gm, wm := gc.Metrics(), wc.Metrics()
		if len(gm) != len(wm) {
			t.Fatalf("cell %d: %d metrics, want %d", ci, len(gm), len(wm))
		}
		for mi, w := range wm {
			g := gm[mi]
			if g.Name != w.Name || math.Float64bits(g.Value) != math.Float64bits(w.Value) {
				t.Errorf("cell %d metric %s: %v, want %s=%v", ci, g.Name, g.Value, w.Name, w.Value)
			}
		}
		if len(gc.Nodes) != len(wc.Nodes) {
			t.Fatalf("cell %d: %d node summaries, want %d", ci, len(gc.Nodes), len(wc.Nodes))
		}
		for ni, wn := range wc.Nodes {
			gn := gc.Nodes[ni]
			if gn != wn {
				t.Errorf("cell %d node %d: %+v, want %+v", ci, ni, gn, wn)
			}
		}
	}
}

// TestRunSweepProcsMatchesInProcess is the fan-out contract: a sweep
// split across worker processes produces bit-identical results to the
// same sweep in-process. Sink states cross the pipe as integers and
// shortest-round-trip floats, and merge order is shard order in both
// paths, so not even float summation order differs.
func TestRunSweepProcsMatchesInProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	cells := procCells()
	want, err := RunSweep(context.Background(), cells)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunSweepProcs(context.Background(), cells, 3)
	if err != nil {
		t.Fatal(err)
	}
	requireReportsEqual(t, got, want)
}

// TestRunSweepProcsRejectsFixedTrace pins the serializability
// boundary: an in-memory trace cannot cross to workers.
func TestRunSweepProcsRejectsFixedTrace(t *testing.T) {
	cells := []Scenario{{Source: "gen:apps=5&days=1", Policy: "hybrid"}}
	tr := &trace.Trace{Duration: time.Hour}
	if _, err := RunSweepProcs(context.Background(), cells, 1, WithFixedTrace(tr)); err == nil {
		t.Fatal("RunSweepProcs accepted WithFixedTrace")
	}
}

// TestRunSweepProcsBadCell pins fail-fast validation: a typo'd cell
// fails before any worker spawns, with the cell identified.
func TestRunSweepProcsBadCell(t *testing.T) {
	cells := []Scenario{
		{Source: "gen:apps=5&days=1", Policy: "hybrid"},
		{Source: "gen:apps=5&days=1", Policy: "no-such-policy"},
	}
	_, err := RunSweepProcs(context.Background(), cells, 1)
	if err == nil {
		t.Fatal("bad policy accepted")
	}
	var ce *CellError
	if !errors.As(err, &ce) || ce.Index != 1 {
		t.Fatalf("want CellError for cell 1, got %v", err)
	}
}
