package platform

import (
	"testing"
	"time"

	"repro/internal/policy"
)

// fastCfg is a platform config with tiny real-time delays suited to
// unit tests: virtual time is 1000x real time, so a virtual minute
// passes in 60ms.
func fastCfg() Config {
	return Config{
		NumInvokers:      2,
		ColdStartDelay:   500 * time.Millisecond, // 0.5ms real
		RuntimeInitDelay: 10 * time.Millisecond,
		Clock:            NewScaledClock(1000),
	}
}

func TestColdThenWarm(t *testing.T) {
	p := NewPlatform(fastCfg(), policy.FixedKeepAlive{KeepAlive: 10 * time.Minute})
	defer p.Stop()

	out1, err := p.Invoke("app1", "fn", 100*time.Millisecond, 128)
	if err != nil {
		t.Fatal(err)
	}
	if !out1.Cold {
		t.Fatal("first invocation must be cold")
	}
	out2, err := p.Invoke("app1", "fn", 100*time.Millisecond, 128)
	if err != nil {
		t.Fatal(err)
	}
	if out2.Cold {
		t.Fatal("second invocation within keep-alive must be warm")
	}
	if out2.Latency >= out1.Latency {
		t.Fatalf("warm latency %v should beat cold %v", out2.Latency, out1.Latency)
	}
}

func TestKeepAliveExpiryCausesCold(t *testing.T) {
	p := NewPlatform(fastCfg(), policy.FixedKeepAlive{KeepAlive: time.Minute})
	defer p.Stop()

	if _, err := p.Invoke("app1", "fn", 0, 128); err != nil {
		t.Fatal(err)
	}
	// Wait 3 virtual minutes (3ms real * 60... = 180ms real).
	p.cfg.Clock.Sleep(3 * time.Minute)
	out, err := p.Invoke("app1", "fn", 0, 128)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Cold {
		t.Fatal("invocation after keep-alive expiry must be cold")
	}
	stats := p.ClusterStats()
	if stats.Unloads == 0 {
		t.Fatal("expected at least one container unload")
	}
}

func TestAppsPinnedToInvoker(t *testing.T) {
	p := NewPlatform(fastCfg(), policy.FixedKeepAlive{KeepAlive: 10 * time.Minute})
	defer p.Stop()
	var invokers []int
	for i := 0; i < 3; i++ {
		out, err := p.Invoke("pinned", "fn", 0, 64)
		if err != nil {
			t.Fatal(err)
		}
		invokers = append(invokers, out.Invoker)
	}
	if invokers[0] != invokers[1] || invokers[1] != invokers[2] {
		t.Fatalf("app moved invokers: %v", invokers)
	}
}

func TestDistinctAppsIsolatedContainers(t *testing.T) {
	p := NewPlatform(fastCfg(), policy.FixedKeepAlive{KeepAlive: 10 * time.Minute})
	defer p.Stop()
	if _, err := p.Invoke("a", "f", 0, 64); err != nil {
		t.Fatal(err)
	}
	out, err := p.Invoke("b", "f", 0, 64)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Cold {
		t.Fatal("first invocation of a different app must be cold")
	}
}

func TestPrewarmProducesWarmStart(t *testing.T) {
	// Hybrid policy with a pattern: invoke every 2 virtual minutes so
	// the histogram learns, then check a later invocation is warm via
	// pre-warming (or kept alive), not cold.
	cfg := policy.DefaultHybridConfig()
	cfg.MinObservations = 2
	p := NewPlatform(fastCfg(), policy.NewHybrid(cfg))
	defer p.Stop()

	clock := p.cfg.Clock
	var colds int
	const rounds = 12
	for i := 0; i < rounds; i++ {
		out, err := p.Invoke("periodic", "fn", 0, 100)
		if err != nil {
			t.Fatal(err)
		}
		if out.Cold {
			colds++
		}
		clock.Sleep(2 * time.Minute)
	}
	// The first is necessarily cold; the policy should keep the rest
	// warm (standard keep-alive covers a 2-minute gap trivially).
	if colds > 2 {
		t.Fatalf("cold starts = %d/%d, policy failed to keep app warm", colds, rounds)
	}
}

func TestUnloadAfterExecWithPrewarmWindow(t *testing.T) {
	// A policy that always returns PW=5min, KA=2min: container must be
	// dropped right after execution, then prewarmed ~5 virtual minutes
	// later.
	p := NewPlatform(fastCfg(), alwaysPrewarmPolicy{pw: 5 * time.Minute, ka: 2 * time.Minute})
	defer p.Stop()

	if _, err := p.Invoke("app", "fn", 0, 256); err != nil {
		t.Fatal(err)
	}
	inv := p.Invokers()[p.Controller().InvokerFor("app", 256)]
	// Immediately after execution the container must be gone.
	time.Sleep(20 * time.Millisecond) // let unload settle (real time)
	if inv.Loaded("app") {
		t.Fatal("container should be unloaded right after execution")
	}
	// After the pre-warm window it must be loaded again.
	p.cfg.Clock.Sleep(6 * time.Minute)
	time.Sleep(20 * time.Millisecond)
	if !inv.Loaded("app") {
		t.Fatal("container should be pre-warmed after the window")
	}
	// An invocation now is warm (middle scenario of Figure 9).
	out, err := p.Invoke("app", "fn", 0, 256)
	if err != nil {
		t.Fatal(err)
	}
	if out.Cold {
		t.Fatal("invocation after pre-warm must be warm")
	}
	s := p.ClusterStats()
	if s.Prewarms == 0 {
		t.Fatal("expected prewarm count > 0")
	}
}

// alwaysPrewarmPolicy is a test policy with constant windows.
type alwaysPrewarmPolicy struct{ pw, ka time.Duration }

func (p alwaysPrewarmPolicy) Name() string { return "test-always-prewarm" }
func (p alwaysPrewarmPolicy) NewApp(string) policy.AppPolicy {
	return alwaysPrewarmApp{p.pw, p.ka}
}

type alwaysPrewarmApp struct{ pw, ka time.Duration }

func (a alwaysPrewarmApp) NextWindows(time.Duration, bool) policy.Decision {
	return policy.Decision{PreWarm: a.pw, KeepAlive: a.ka, Mode: policy.ModeHistogram}
}

func TestMemoryAccounting(t *testing.T) {
	p := NewPlatform(fastCfg(), policy.FixedKeepAlive{KeepAlive: time.Minute})
	if _, err := p.Invoke("app", "fn", 0, 100); err != nil {
		t.Fatal(err)
	}
	p.cfg.Clock.Sleep(30 * time.Second) // half the keep-alive
	s := p.ClusterStats()               // settles memory
	// ~30 virtual seconds at 100MB → ~3000 MB·s; generous tolerance for
	// scheduler jitter at 1000x.
	if s.MemoryMBSeconds < 1000 || s.MemoryMBSeconds > 12000 {
		t.Fatalf("memory integral = %v MB·s", s.MemoryMBSeconds)
	}
	p.Stop()
}

func TestAppOutcomesAggregation(t *testing.T) {
	p := NewPlatform(fastCfg(), policy.FixedKeepAlive{KeepAlive: 10 * time.Minute})
	defer p.Stop()
	for i := 0; i < 3; i++ {
		if _, err := p.Invoke("x", "f", 0, 64); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := p.Invoke("y", "f", 0, 64); err != nil {
		t.Fatal(err)
	}
	outs := p.AppOutcomes()
	if len(outs) != 2 {
		t.Fatalf("apps = %d", len(outs))
	}
	if outs[0].App != "x" || outs[0].Invocations != 3 || outs[0].ColdStarts != 1 {
		t.Fatalf("x outcome = %+v", outs[0])
	}
	if cp := outs[1].ColdPercent(); cp != 100 {
		t.Fatalf("y cold%% = %v", cp)
	}
	if len(p.Latencies()) != 4 {
		t.Fatalf("latencies = %d", len(p.Latencies()))
	}
}

func TestPolicyOverheadMeasured(t *testing.T) {
	p := NewPlatform(fastCfg(), policy.NewHybrid(policy.DefaultHybridConfig()))
	defer p.Stop()
	for i := 0; i < 5; i++ {
		if _, err := p.Invoke("app", "fn", 0, 64); err != nil {
			t.Fatal(err)
		}
	}
	mean, count := p.Controller().PolicyOverhead()
	if count != 5 {
		t.Fatalf("decision count = %d", count)
	}
	// §5.3 reports ~836µs in Scala; our Go histogram update should be
	// well under a millisecond.
	if mean > time.Millisecond {
		t.Fatalf("policy overhead = %v, want < 1ms", mean)
	}
}

func TestStopIdempotent(t *testing.T) {
	p := NewPlatform(fastCfg(), policy.FixedKeepAlive{KeepAlive: time.Minute})
	p.Stop()
	p.Stop() // must not panic
}

func TestInvokeAfterStopErrors(t *testing.T) {
	p := NewPlatform(fastCfg(), policy.FixedKeepAlive{KeepAlive: time.Minute})
	p.Stop()
	if _, err := p.Invoke("app", "fn", 0, 64); err == nil {
		t.Fatal("expected error after Stop")
	}
}

func TestScaledClock(t *testing.T) {
	c := NewScaledClock(100)
	start := c.Now()
	time.Sleep(20 * time.Millisecond)
	elapsed := c.Now().Sub(start)
	// 20ms real at 100x → ~2s virtual.
	if elapsed < time.Second || elapsed > 5*time.Second {
		t.Fatalf("virtual elapsed = %v, want ~2s", elapsed)
	}
}

func TestScaledClockClampsScale(t *testing.T) {
	c := NewScaledClock(0.1)
	start := c.Now()
	time.Sleep(5 * time.Millisecond)
	if c.Now().Sub(start) <= 0 {
		t.Fatal("clock not advancing")
	}
}

func TestBusPublishSubscribe(t *testing.T) {
	b := NewBus()
	if err := b.Publish("t", 42); err != nil {
		t.Fatal(err)
	}
	select {
	case v := <-b.Subscribe("t"):
		if v.(int) != 42 {
			t.Fatalf("got %v", v)
		}
	default:
		t.Fatal("message not delivered")
	}
}

func TestBusClosedRejectsPublish(t *testing.T) {
	b := NewBus()
	b.Close()
	if err := b.Publish("t", 1); err == nil {
		t.Fatal("expected error on closed bus")
	}
	b.Close() // idempotent
}

func TestBusFullTopic(t *testing.T) {
	b := NewBus()
	for i := 0; i < topicBuffer; i++ {
		if err := b.Publish("t", i); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Publish("t", -1); err == nil {
		t.Fatal("expected backpressure error")
	}
}
