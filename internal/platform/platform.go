package platform

import (
	"sort"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/serve"
)

// Config parameterizes a platform instance. Zero values select the
// noted defaults.
type Config struct {
	// NumInvokers is the worker count (default 4; the paper's testbed
	// ran 18 invoker VMs).
	NumInvokers int
	// ColdStartDelay is the container instantiation cost in virtual
	// time (default 500ms; §5.3 cites O(100ms) for container start).
	ColdStartDelay time.Duration
	// RuntimeInitDelay is the language runtime initiation cost
	// (default 10ms, §5.3's O(10ms)).
	RuntimeInitDelay time.Duration
	// Clock is the time source (default RealClock). Use a ScaledClock
	// to replay hours of trace in seconds.
	Clock Clock
	// Recorder, when set, captures every invocation routed through the
	// controller (at the platform clock's timestamps) into an incident
	// bundle recorder, for later what-if replay via
	// replay.ReplayBundle.
	Recorder *serve.Recorder
}

func (c Config) withDefaults() Config {
	if c.NumInvokers == 0 {
		c.NumInvokers = 4
	}
	if c.ColdStartDelay == 0 {
		c.ColdStartDelay = 500 * time.Millisecond
	}
	if c.RuntimeInitDelay == 0 {
		c.RuntimeInitDelay = 10 * time.Millisecond
	}
	if c.Clock == nil {
		c.Clock = RealClock{}
	}
	return c
}

// Platform wires the controller, message bus and invokers into a
// runnable in-process FaaS cluster (Figure 13).
type Platform struct {
	cfg        Config
	bus        *Bus
	controller *Controller
	invokers   []*Invoker

	mu      sync.Mutex
	perApp  map[string]*AppOutcome
	latency []time.Duration
	latHist *metrics.LatencyHistogram
	stopped bool
}

// AppOutcome summarizes one application's invocations on the platform.
type AppOutcome struct {
	App         string
	Invocations int
	ColdStarts  int
}

// ColdPercent returns the app's cold-start percentage.
func (a AppOutcome) ColdPercent() float64 {
	if a.Invocations == 0 {
		return 0
	}
	return 100 * float64(a.ColdStarts) / float64(a.Invocations)
}

// NewPlatform assembles a platform running pol. Call Stop when done.
func NewPlatform(cfg Config, pol policy.Policy) *Platform {
	cfg = cfg.withDefaults()
	p := &Platform{
		cfg:     cfg,
		bus:     NewBus(),
		perApp:  make(map[string]*AppOutcome),
		latHist: metrics.NewLatencyHistogram(),
	}
	p.controller = NewController(cfg.Clock, p.bus, pol, cfg.NumInvokers)
	if cfg.Recorder != nil {
		p.controller.SetRecorder(cfg.Recorder)
	}
	for i := 0; i < cfg.NumInvokers; i++ {
		inv := NewInvoker(i, cfg.Clock, cfg.ColdStartDelay, cfg.RuntimeInitDelay)
		inv.Serve(p.bus.Subscribe(InvokerTopic(i)))
		p.invokers = append(p.invokers, inv)
	}
	return p
}

// Invoke runs one invocation synchronously and records its outcome.
func (p *Platform) Invoke(app, fn string, exec time.Duration, memoryMB float64) (Outcome, error) {
	out, err := p.controller.Invoke(app, fn, exec, memoryMB)
	if err != nil {
		return out, err
	}
	p.mu.Lock()
	ao, ok := p.perApp[app]
	if !ok {
		ao = &AppOutcome{App: app}
		p.perApp[app] = ao
	}
	ao.Invocations++
	if out.Cold {
		ao.ColdStarts++
	}
	p.latency = append(p.latency, out.Latency)
	p.mu.Unlock()
	p.latHist.Observe(out.Latency)
	return out, nil
}

// Stop drains the cluster: closes the bus, waits for invokers, and
// settles memory integrals.
func (p *Platform) Stop() {
	p.mu.Lock()
	if p.stopped {
		p.mu.Unlock()
		return
	}
	p.stopped = true
	p.mu.Unlock()

	p.bus.Close()
	for _, inv := range p.invokers {
		inv.Stop()
	}
}

// Controller exposes the controller (for overhead measurements).
func (p *Platform) Controller() *Controller { return p.controller }

// Clock returns the platform's time source.
func (p *Platform) Clock() Clock { return p.cfg.Clock }

// AppOutcomes returns per-app summaries sorted by app ID.
func (p *Platform) AppOutcomes() []AppOutcome {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]AppOutcome, 0, len(p.perApp))
	for _, ao := range p.perApp {
		out = append(out, *ao)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].App < out[j].App })
	return out
}

// LatencyHistogram returns the platform's streaming invocation
// latency histogram (virtual time): constant-memory percentiles for
// serving runs too long to keep the full latency slice.
func (p *Platform) LatencyHistogram() *metrics.LatencyHistogram { return p.latHist }

// Latencies returns a copy of all recorded invocation latencies
// (virtual time).
func (p *Platform) Latencies() []time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]time.Duration(nil), p.latency...)
}

// ClusterStats aggregates invoker counters, settling memory first.
func (p *Platform) ClusterStats() InvokerStats {
	var total InvokerStats
	for _, inv := range p.invokers {
		inv.SettleMemory()
		s := inv.Stats()
		total.ColdStarts += s.ColdStarts
		total.WarmStarts += s.WarmStarts
		total.Prewarms += s.Prewarms
		total.Unloads += s.Unloads
		total.MemoryMBSeconds += s.MemoryMBSeconds
		total.LoadedContainers += s.LoadedContainers
	}
	return total
}

// Invokers returns the platform's invokers (read-only use).
func (p *Platform) Invokers() []*Invoker { return p.invokers }
