package platform

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// API is the REST front end of the platform (the Nginx/REST layer of
// Figure 13): actions are registered, invoked, and inspected over
// HTTP. It is an http.Handler; mount it on any server or test it with
// httptest.
type API struct {
	p *Platform

	mu      sync.Mutex
	actions map[string]actionSpec
	mux     *http.ServeMux
}

// actionSpec is a registered action (OpenWhisk terminology for a
// function): its app, execution duration, and memory.
type actionSpec struct {
	App      string  `json:"app"`
	ExecMs   float64 `json:"exec_ms"`
	MemoryMB float64 `json:"memory_mb"`
}

// NewAPI wraps a platform in a REST interface.
func NewAPI(p *Platform) *API {
	a := &API{p: p, actions: make(map[string]actionSpec)}
	mux := http.NewServeMux()
	mux.HandleFunc("/actions/", a.handleAction)
	mux.HandleFunc("/invoke/", a.handleInvoke)
	mux.HandleFunc("/stats", a.handleStats)
	a.mux = mux
	return a
}

// ServeHTTP implements http.Handler.
func (a *API) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	a.mux.ServeHTTP(w, r)
}

// handleAction registers (PUT/POST) or fetches (GET) an action.
func (a *API) handleAction(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Path[len("/actions/"):]
	if name == "" {
		http.Error(w, "action name required", http.StatusBadRequest)
		return
	}
	switch r.Method {
	case http.MethodPut, http.MethodPost:
		var spec actionSpec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			http.Error(w, fmt.Sprintf("bad action spec: %v", err), http.StatusBadRequest)
			return
		}
		if spec.App == "" {
			spec.App = name
		}
		if spec.MemoryMB <= 0 {
			spec.MemoryMB = 128
		}
		a.mu.Lock()
		a.actions[name] = spec
		a.mu.Unlock()
		w.WriteHeader(http.StatusCreated)
	case http.MethodGet:
		a.mu.Lock()
		spec, ok := a.actions[name]
		a.mu.Unlock()
		if !ok {
			http.Error(w, "unknown action", http.StatusNotFound)
			return
		}
		writeJSON(w, spec)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// invokeResponse reports one activation's outcome.
type invokeResponse struct {
	App       string  `json:"app"`
	Function  string  `json:"function"`
	Cold      bool    `json:"cold"`
	LatencyMs float64 `json:"latency_ms"`
	Invoker   int     `json:"invoker"`
}

// handleInvoke triggers a registered action and blocks until it
// completes (OpenWhisk's blocking activation).
func (a *API) handleInvoke(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	name := r.URL.Path[len("/invoke/"):]
	a.mu.Lock()
	spec, ok := a.actions[name]
	a.mu.Unlock()
	if !ok {
		http.Error(w, "unknown action", http.StatusNotFound)
		return
	}
	exec := time.Duration(spec.ExecMs * float64(time.Millisecond))
	out, err := a.p.Invoke(spec.App, name, exec, spec.MemoryMB)
	if err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	writeJSON(w, invokeResponse{
		App: out.App, Function: out.Function, Cold: out.Cold,
		LatencyMs: float64(out.Latency) / float64(time.Millisecond),
		Invoker:   out.Invoker,
	})
}

// statsResponse summarizes cluster state.
type statsResponse struct {
	ColdStarts      int     `json:"cold_starts"`
	WarmStarts      int     `json:"warm_starts"`
	Prewarms        int     `json:"prewarms"`
	Unloads         int     `json:"unloads"`
	MemoryMBSeconds float64 `json:"memory_mb_seconds"`
	Loaded          int     `json:"loaded_containers"`
}

func (a *API) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	s := a.p.ClusterStats()
	writeJSON(w, statsResponse{
		ColdStarts: s.ColdStarts, WarmStarts: s.WarmStarts,
		Prewarms: s.Prewarms, Unloads: s.Unloads,
		MemoryMBSeconds: s.MemoryMBSeconds, Loaded: s.LoadedContainers,
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
