package platform

import (
	"fmt"
	"sync"
	"time"
)

// ActivationMessage asks an invoker to run a function, mirroring the
// OpenWhisk ActivationMessage the paper extends with a keep-alive
// field (§4.3, modification #2).
type ActivationMessage struct {
	App      string
	Function string
	// Exec is the function's execution duration (virtual time).
	Exec time.Duration
	// MemoryMB is the application's memory footprint.
	MemoryMB float64
	// KeepAlive is the container retention the policy chose, carried
	// alongside the invocation as in the paper's modified API.
	KeepAlive time.Duration
	// UnloadAfterExec tells the invoker to remove the container right
	// after the execution ends (the policy will pre-warm later).
	UnloadAfterExec bool
	// Reply receives the invocation outcome.
	Reply chan<- Outcome
}

// PrewarmMessage asks an invoker to load an application container
// ahead of a predicted invocation.
type PrewarmMessage struct {
	App       string
	MemoryMB  float64
	KeepAlive time.Duration
}

// UnloadMessage asks an invoker to drop an application container.
type UnloadMessage struct {
	App string
}

// Outcome reports one completed invocation.
type Outcome struct {
	App      string
	Function string
	Cold     bool
	// Latency is the virtual time from activation receipt to
	// execution completion (cold-start delay + init + exec).
	Latency time.Duration
	// Start and End are virtual timestamps of the execution.
	Start time.Time
	End   time.Time
	// Invoker is the index of the serving invoker.
	Invoker int
}

// Bus is the in-process stand-in for OpenWhisk's distributed
// messaging (Kafka): one buffered queue per topic with a single
// consumer, which matches how the Controller addresses Invokers.
type Bus struct {
	mu     sync.RWMutex
	topics map[string]chan any
	closed bool
}

// NewBus creates an empty bus.
func NewBus() *Bus {
	return &Bus{topics: make(map[string]chan any)}
}

const topicBuffer = 1024

// topic returns (creating if needed) the queue for a topic.
// Caller must not hold b.mu.
func (b *Bus) topic(name string) chan any {
	b.mu.RLock()
	ch, ok := b.topics[name]
	b.mu.RUnlock()
	if ok {
		return ch
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if ch, ok := b.topics[name]; ok {
		return ch
	}
	ch = make(chan any, topicBuffer)
	b.topics[name] = ch
	return ch
}

// Publish enqueues msg on the named topic. It returns an error if the
// bus is closed or the topic queue is full (backpressure surfaces to
// the caller instead of blocking the controller). The read lock is
// held across the send so Publish never races a concurrent Close.
func (b *Bus) Publish(topicName string, msg any) error {
	ch := b.topic(topicName)
	b.mu.RLock()
	defer b.mu.RUnlock()
	if b.closed {
		return fmt.Errorf("platform: bus closed")
	}
	select {
	case ch <- msg:
		return nil
	default:
		return fmt.Errorf("platform: topic %q full", topicName)
	}
}

// Subscribe returns the receive side of the named topic.
func (b *Bus) Subscribe(topicName string) <-chan any {
	return b.topic(topicName)
}

// Close closes every topic channel; consumers drain and exit.
func (b *Bus) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for _, ch := range b.topics {
		close(ch)
	}
}

// InvokerTopic names invoker i's activation queue.
func InvokerTopic(i int) string { return fmt.Sprintf("invoker-%d", i) }
