package platform

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/policy"
	"repro/internal/serve"
)

func newTestAPI(t *testing.T) (*API, *Platform) {
	t.Helper()
	p := NewPlatform(fastCfg(), policy.FixedKeepAlive{KeepAlive: 10 * time.Minute})
	t.Cleanup(p.Stop)
	return NewAPI(p), p
}

func doJSON(t *testing.T, h http.Handler, method, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req := httptest.NewRequest(method, path, &buf)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestAPICreateAndGetAction(t *testing.T) {
	api, _ := newTestAPI(t)
	rec := doJSON(t, api, http.MethodPut, "/actions/hello",
		map[string]any{"app": "demo", "exec_ms": 5, "memory_mb": 128})
	if rec.Code != http.StatusCreated {
		t.Fatalf("create status = %d", rec.Code)
	}
	rec = doJSON(t, api, http.MethodGet, "/actions/hello", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("get status = %d", rec.Code)
	}
	var spec struct {
		App string `json:"app"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &spec); err != nil {
		t.Fatal(err)
	}
	if spec.App != "demo" {
		t.Fatalf("app = %q", spec.App)
	}
}

func TestAPIInvoke(t *testing.T) {
	api, _ := newTestAPI(t)
	doJSON(t, api, http.MethodPut, "/actions/hello",
		map[string]any{"exec_ms": 1, "memory_mb": 64})

	rec := doJSON(t, api, http.MethodPost, "/invoke/hello", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("invoke status = %d: %s", rec.Code, rec.Body.String())
	}
	var resp invokeResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Cold {
		t.Fatal("first invocation should be cold")
	}
	rec = doJSON(t, api, http.MethodPost, "/invoke/hello", nil)
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Cold {
		t.Fatal("second invocation should be warm")
	}
}

func TestAPIInvokeUnknownAction(t *testing.T) {
	api, _ := newTestAPI(t)
	rec := doJSON(t, api, http.MethodPost, "/invoke/nope", nil)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("status = %d", rec.Code)
	}
}

func TestAPIBadRequests(t *testing.T) {
	api, _ := newTestAPI(t)
	// Missing action name.
	if rec := doJSON(t, api, http.MethodPut, "/actions/", nil); rec.Code != http.StatusBadRequest {
		t.Fatalf("status = %d", rec.Code)
	}
	// Bad JSON body.
	req := httptest.NewRequest(http.MethodPut, "/actions/x", bytes.NewBufferString("{"))
	rec := httptest.NewRecorder()
	api.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status = %d", rec.Code)
	}
	// Wrong methods.
	if rec := doJSON(t, api, http.MethodDelete, "/actions/x", nil); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("status = %d", rec.Code)
	}
	if rec := doJSON(t, api, http.MethodGet, "/invoke/x", nil); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("status = %d", rec.Code)
	}
	if rec := doJSON(t, api, http.MethodPost, "/stats", nil); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("status = %d", rec.Code)
	}
	// Unknown action GET.
	if rec := doJSON(t, api, http.MethodGet, "/actions/ghost", nil); rec.Code != http.StatusNotFound {
		t.Fatalf("status = %d", rec.Code)
	}
}

func TestAPIStats(t *testing.T) {
	api, _ := newTestAPI(t)
	doJSON(t, api, http.MethodPut, "/actions/a", map[string]any{"exec_ms": 0})
	doJSON(t, api, http.MethodPost, "/invoke/a", nil)
	doJSON(t, api, http.MethodPost, "/invoke/a", nil)

	rec := doJSON(t, api, http.MethodGet, "/stats", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var s statsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &s); err != nil {
		t.Fatal(err)
	}
	if s.ColdStarts != 1 || s.WarmStarts != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestAPIDefaultMemory(t *testing.T) {
	api, _ := newTestAPI(t)
	doJSON(t, api, http.MethodPut, "/actions/m", map[string]any{"exec_ms": 0})
	rec := doJSON(t, api, http.MethodGet, "/actions/m", nil)
	var spec actionSpec
	if err := json.Unmarshal(rec.Body.Bytes(), &spec); err != nil {
		t.Fatal(err)
	}
	if spec.MemoryMB != 128 {
		t.Fatalf("default memory = %v", spec.MemoryMB)
	}
}

func TestAPIInvokeAfterStop(t *testing.T) {
	api, p := newTestAPI(t)
	doJSON(t, api, http.MethodPut, "/actions/hello", map[string]any{"exec_ms": 0})
	p.Stop()
	rec := doJSON(t, api, http.MethodPost, "/invoke/hello", nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("invoke after Stop: status = %d, want 503", rec.Code)
	}
}

// TestAPIConcurrentInvokeStats hammers the API from many goroutines —
// invokes on several actions, stats reads, action lookups and
// re-registrations — and checks every response and the final decision
// count. Run under -race this covers the serving path end to end: the
// HTTP layer, the dispatch controller, and the sharded decision
// service underneath.
func TestAPIConcurrentInvokeStats(t *testing.T) {
	api, p := newTestAPI(t)
	for _, name := range []string{"alpha", "beta", "gamma"} {
		if rec := doJSON(t, api, http.MethodPut, "/actions/"+name,
			map[string]any{"exec_ms": 0, "memory_mb": 64}); rec.Code != http.StatusCreated {
			t.Fatalf("register %s: status = %d", name, rec.Code)
		}
	}

	const workers, per = 6, 40
	var wg sync.WaitGroup
	errs := make(chan string, workers*per)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := []string{"alpha", "beta", "gamma"}[w%3]
			for i := 0; i < per; i++ {
				switch {
				case w == 0 && i%8 == 0: // stats reader
					if rec := doJSON(t, api, http.MethodGet, "/stats", nil); rec.Code != http.StatusOK {
						errs <- fmt.Sprintf("stats: %d", rec.Code)
					}
				case w == 1 && i%8 == 0: // concurrent re-registration
					if rec := doJSON(t, api, http.MethodPut, "/actions/"+name,
						map[string]any{"exec_ms": 0, "memory_mb": 64}); rec.Code != http.StatusCreated {
						errs <- fmt.Sprintf("re-register: %d", rec.Code)
					}
				default:
					if rec := doJSON(t, api, http.MethodPost, "/invoke/"+name, nil); rec.Code != http.StatusOK {
						errs <- fmt.Sprintf("invoke %s: %d — %s", name, rec.Code, rec.Body.String())
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}

	// Every invoke flowed through the decision service exactly once.
	invokes := 0
	for _, ao := range p.AppOutcomes() {
		invokes += ao.Invocations
	}
	if got := p.Controller().Decider().Decisions(); got != int64(invokes) {
		t.Fatalf("decision service served %d decisions, platform saw %d invokes", got, invokes)
	}
	if got := p.LatencyHistogram().Count(); got != int64(invokes) {
		t.Fatalf("latency histogram holds %d samples, want %d", got, invokes)
	}
}

// TestAPIInvokesRecordedAsBundle wires a Recorder into the platform
// and checks HTTP invokes come out the other end as a replayable
// incident bundle: the live serving loop's capture path.
func TestAPIInvokesRecordedAsBundle(t *testing.T) {
	cfg := fastCfg()
	rec := serve.NewRecorder(cfg.Clock.Now())
	cfg.Recorder = rec
	p := NewPlatform(cfg, policy.FixedKeepAlive{KeepAlive: 10 * time.Minute})
	t.Cleanup(p.Stop)
	api := NewAPI(p)

	doJSON(t, api, http.MethodPut, "/actions/hello", map[string]any{"app": "demo", "exec_ms": 1})
	const n = 5
	for i := 0; i < n; i++ {
		if rec := doJSON(t, api, http.MethodPost, "/invoke/hello", nil); rec.Code != http.StatusOK {
			t.Fatalf("invoke %d: status = %d", i, rec.Code)
		}
	}
	if got := rec.Invocations(); got != n {
		t.Fatalf("recorder captured %d invocations, want %d", got, n)
	}
	var buf bytes.Buffer
	if err := rec.WriteBundle(&buf, "api-capture", 0); err != nil {
		t.Fatal(err)
	}
	meta, tr, err := serve.ReadBundle(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Invocations != n || meta.Apps != 1 {
		t.Fatalf("bundle meta = %+v, want %d invocations of 1 app", meta, n)
	}
	if tr.Apps[0].ID != "demo" || tr.Apps[0].Functions[0].ID != "hello" {
		t.Fatalf("bundle holds %s/%s, want demo/hello", tr.Apps[0].ID, tr.Apps[0].Functions[0].ID)
	}
}
