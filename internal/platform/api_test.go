package platform

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/policy"
)

func newTestAPI(t *testing.T) (*API, *Platform) {
	t.Helper()
	p := NewPlatform(fastCfg(), policy.FixedKeepAlive{KeepAlive: 10 * time.Minute})
	t.Cleanup(p.Stop)
	return NewAPI(p), p
}

func doJSON(t *testing.T, h http.Handler, method, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req := httptest.NewRequest(method, path, &buf)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestAPICreateAndGetAction(t *testing.T) {
	api, _ := newTestAPI(t)
	rec := doJSON(t, api, http.MethodPut, "/actions/hello",
		map[string]any{"app": "demo", "exec_ms": 5, "memory_mb": 128})
	if rec.Code != http.StatusCreated {
		t.Fatalf("create status = %d", rec.Code)
	}
	rec = doJSON(t, api, http.MethodGet, "/actions/hello", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("get status = %d", rec.Code)
	}
	var spec struct {
		App string `json:"app"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &spec); err != nil {
		t.Fatal(err)
	}
	if spec.App != "demo" {
		t.Fatalf("app = %q", spec.App)
	}
}

func TestAPIInvoke(t *testing.T) {
	api, _ := newTestAPI(t)
	doJSON(t, api, http.MethodPut, "/actions/hello",
		map[string]any{"exec_ms": 1, "memory_mb": 64})

	rec := doJSON(t, api, http.MethodPost, "/invoke/hello", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("invoke status = %d: %s", rec.Code, rec.Body.String())
	}
	var resp invokeResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Cold {
		t.Fatal("first invocation should be cold")
	}
	rec = doJSON(t, api, http.MethodPost, "/invoke/hello", nil)
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Cold {
		t.Fatal("second invocation should be warm")
	}
}

func TestAPIInvokeUnknownAction(t *testing.T) {
	api, _ := newTestAPI(t)
	rec := doJSON(t, api, http.MethodPost, "/invoke/nope", nil)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("status = %d", rec.Code)
	}
}

func TestAPIBadRequests(t *testing.T) {
	api, _ := newTestAPI(t)
	// Missing action name.
	if rec := doJSON(t, api, http.MethodPut, "/actions/", nil); rec.Code != http.StatusBadRequest {
		t.Fatalf("status = %d", rec.Code)
	}
	// Bad JSON body.
	req := httptest.NewRequest(http.MethodPut, "/actions/x", bytes.NewBufferString("{"))
	rec := httptest.NewRecorder()
	api.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status = %d", rec.Code)
	}
	// Wrong methods.
	if rec := doJSON(t, api, http.MethodDelete, "/actions/x", nil); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("status = %d", rec.Code)
	}
	if rec := doJSON(t, api, http.MethodGet, "/invoke/x", nil); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("status = %d", rec.Code)
	}
	if rec := doJSON(t, api, http.MethodPost, "/stats", nil); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("status = %d", rec.Code)
	}
	// Unknown action GET.
	if rec := doJSON(t, api, http.MethodGet, "/actions/ghost", nil); rec.Code != http.StatusNotFound {
		t.Fatalf("status = %d", rec.Code)
	}
}

func TestAPIStats(t *testing.T) {
	api, _ := newTestAPI(t)
	doJSON(t, api, http.MethodPut, "/actions/a", map[string]any{"exec_ms": 0})
	doJSON(t, api, http.MethodPost, "/invoke/a", nil)
	doJSON(t, api, http.MethodPost, "/invoke/a", nil)

	rec := doJSON(t, api, http.MethodGet, "/stats", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var s statsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &s); err != nil {
		t.Fatal(err)
	}
	if s.ColdStarts != 1 || s.WarmStarts != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestAPIDefaultMemory(t *testing.T) {
	api, _ := newTestAPI(t)
	doJSON(t, api, http.MethodPut, "/actions/m", map[string]any{"exec_ms": 0})
	rec := doJSON(t, api, http.MethodGet, "/actions/m", nil)
	var spec actionSpec
	if err := json.Unmarshal(rec.Body.Bytes(), &spec); err != nil {
		t.Fatal(err)
	}
	if spec.MemoryMB != 128 {
		t.Fatalf("default memory = %v", spec.MemoryMB)
	}
}
