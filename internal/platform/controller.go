package platform

import (
	"fmt"
	"hash/fnv"
	"sync"
	"time"

	"repro/internal/policy"
	"repro/internal/serve"
)

// dispatchState is the controller's per-application dispatch
// bookkeeping: the invoker pin, the registered memory footprint and
// the pending pre-warm timer. The policy side of per-app state (the
// histogram, idle tracking, decision path) lives in the serve
// controller, behind its sharded locks.
type dispatchState struct {
	mu       sync.Mutex
	memoryMB float64
	invoker  int
	prewarm  *time.Timer
}

// Controller mirrors the OpenWhisk Controller with the paper's
// modified Load Balancer (§4.3, modification #1). Keep-alive
// decisions flow through the internal/serve decision service — the
// same hot path the soak harness benchmarks — while the controller
// keeps what is platform-specific: invoker pinning, activation
// dispatch, and pre-warm scheduling on the (possibly scaled) clock.
type Controller struct {
	clock Clock
	bus   *Bus
	dec   *serve.Controller
	rec   *serve.Recorder // optional incident-stream capture
	n     int             // invokers

	mu   sync.Mutex
	apps map[string]*dispatchState

	// PolicyOverhead accumulates time spent in policy decisions (real
	// time), backing the §5.3 overhead measurements.
	overheadMu    sync.Mutex
	overheadTotal time.Duration
	overheadCount int64
}

// NewController creates a controller balancing across n invokers,
// with decisions served by a fresh serve.Controller over pol.
func NewController(clock Clock, bus *Bus, pol policy.Policy, n int) *Controller {
	return &Controller{
		clock: clock,
		bus:   bus,
		dec:   serve.NewController(pol, serve.Config{}),
		n:     n,
		apps:  make(map[string]*dispatchState),
	}
}

// SetRecorder attaches an incident-stream recorder: every invocation
// routed through the controller is captured (at the platform clock's
// timestamps) for later bundle export. Attach before traffic starts.
func (c *Controller) SetRecorder(r *serve.Recorder) { c.rec = r }

// Decider exposes the underlying decision service.
func (c *Controller) Decider() *serve.Controller { return c.dec }

// state returns (creating if needed) the app's dispatch state. Apps
// are pinned to an invoker by hash, the simplest
// healthy-capacity-aware stand-in for OpenWhisk's scheduling, and the
// one that preserves container affinity.
func (c *Controller) state(app string, memoryMB float64) *dispatchState {
	c.mu.Lock()
	defer c.mu.Unlock()
	st, ok := c.apps[app]
	if !ok {
		h := fnv.New32a()
		h.Write([]byte(app))
		st = &dispatchState{
			memoryMB: memoryMB,
			invoker:  int(h.Sum32()) % c.n,
		}
		c.apps[app] = st
	}
	return st
}

// Invoke runs one function invocation through the platform and blocks
// until it completes, returning the outcome.
func (c *Controller) Invoke(app, fn string, exec time.Duration, memoryMB float64) (Outcome, error) {
	st := c.state(app, memoryMB)

	// Cancel any pending pre-warm; the invocation supersedes it.
	st.mu.Lock()
	if st.prewarm != nil {
		st.prewarm.Stop()
		st.prewarm = nil
	}
	invoker := st.invoker
	st.mu.Unlock()

	// Policy decision for the window after this execution: idle time
	// runs from the last execution end to this arrival (§3.4), tracked
	// inside the decision service.
	now := c.clock.Now()
	t0 := time.Now() //wildlint:allow wallclock
	d := c.dec.Decide(app, now)
	c.recordOverhead(time.Since(t0)) //wildlint:allow wallclock
	if c.rec != nil {
		c.rec.Record(app, fn, now)
	}

	reply := make(chan Outcome, 1)
	msg := ActivationMessage{
		App: app, Function: fn, Exec: exec, MemoryMB: memoryMB,
		KeepAlive:       keepAliveFor(d),
		UnloadAfterExec: !d.Forever && d.PreWarm > 0,
		Reply:           reply,
	}
	if err := c.bus.Publish(InvokerTopic(invoker), msg); err != nil {
		return Outcome{}, fmt.Errorf("platform: dispatching %s/%s: %w", app, fn, err)
	}
	out := <-reply

	c.dec.CompleteExec(app, out.End)
	st.mu.Lock()
	// Schedule the pre-warm after the execution that just finished.
	if !d.Forever && d.PreWarm > 0 {
		ka := keepAliveFor(d)
		mem := st.memoryMB
		st.prewarm = c.clock.AfterFunc(d.PreWarm, func() {
			// Ignore a full-queue error: a missed pre-warm only costs a
			// cold start, exactly as in the real system.
			_ = c.bus.Publish(InvokerTopic(invoker), PrewarmMessage{
				App: app, MemoryMB: mem, KeepAlive: ka,
			})
		})
	}
	st.mu.Unlock()
	return out, nil
}

// keepAliveFor translates a policy decision into the keep-alive stamp
// carried on the activation; Forever maps to a year, effectively
// infinite at experiment scale.
func keepAliveFor(d policy.Decision) time.Duration {
	if d.Forever {
		return 365 * 24 * time.Hour
	}
	return d.KeepAlive
}

func (c *Controller) recordOverhead(d time.Duration) {
	c.overheadMu.Lock()
	c.overheadTotal += d
	c.overheadCount++
	c.overheadMu.Unlock()
}

// PolicyOverhead returns the mean real-time cost of one policy
// decision and the number of decisions made.
func (c *Controller) PolicyOverhead() (mean time.Duration, count int64) {
	c.overheadMu.Lock()
	defer c.overheadMu.Unlock()
	if c.overheadCount == 0 {
		return 0, 0
	}
	return c.overheadTotal / time.Duration(c.overheadCount), c.overheadCount
}

// InvokerFor returns the invoker index an app is pinned to.
func (c *Controller) InvokerFor(app string, memoryMB float64) int {
	return c.state(app, memoryMB).invoker
}
