package platform

import (
	"fmt"
	"hash/fnv"
	"sync"
	"time"

	"repro/internal/policy"
)

// appState is the Load Balancer's per-application bookkeeping: the
// policy instance (histogram and friends), the end of the last
// execution for idle-time computation, and the pending pre-warm timer.
type appState struct {
	mu        sync.Mutex
	pol       policy.AppPolicy
	memoryMB  float64
	invoker   int
	seen      bool
	lastEnd   time.Time
	prewarm   *time.Timer
	decisions int
}

// Controller mirrors the OpenWhisk Controller with the paper's
// modified Load Balancer (§4.3, modification #1): it owns per-app
// policy state, stamps each activation with the latest keep-alive
// parameter, and publishes pre-warm messages when a pre-warming
// window elapses.
type Controller struct {
	clock Clock
	bus   *Bus
	pol   policy.Policy
	n     int // invokers

	mu   sync.Mutex
	apps map[string]*appState

	// PolicyOverhead accumulates time spent in policy decisions (real
	// time), backing the §5.3 overhead measurements.
	overheadMu    sync.Mutex
	overheadTotal time.Duration
	overheadCount int64
}

// NewController creates a controller balancing across n invokers.
func NewController(clock Clock, bus *Bus, pol policy.Policy, n int) *Controller {
	return &Controller{
		clock: clock,
		bus:   bus,
		pol:   pol,
		n:     n,
		apps:  make(map[string]*appState),
	}
}

// state returns (creating if needed) the app's state. Apps are pinned
// to an invoker by hash, the simplest healthy-capacity-aware stand-in
// for OpenWhisk's scheduling, and the one that preserves container
// affinity.
func (c *Controller) state(app string, memoryMB float64) *appState {
	c.mu.Lock()
	defer c.mu.Unlock()
	st, ok := c.apps[app]
	if !ok {
		h := fnv.New32a()
		h.Write([]byte(app))
		st = &appState{
			pol:      c.pol.NewApp(app),
			memoryMB: memoryMB,
			invoker:  int(h.Sum32()) % c.n,
		}
		c.apps[app] = st
	}
	return st
}

// Invoke runs one function invocation through the platform and blocks
// until it completes, returning the outcome.
func (c *Controller) Invoke(app, fn string, exec time.Duration, memoryMB float64) (Outcome, error) {
	st := c.state(app, memoryMB)

	st.mu.Lock()
	// Idle time: from the last execution end to this arrival (§3.4).
	now := c.clock.Now()
	idle := now.Sub(st.lastEnd)
	first := !st.seen
	if idle < 0 {
		idle = 0
	}
	// Cancel any pending pre-warm; the invocation supersedes it.
	if st.prewarm != nil {
		st.prewarm.Stop()
		st.prewarm = nil
	}

	// Policy decision for the window after this execution.
	t0 := time.Now()
	d := st.pol.NextWindows(idle, first)
	c.recordOverhead(time.Since(t0))
	st.seen = true
	st.decisions++
	invoker := st.invoker
	st.mu.Unlock()

	reply := make(chan Outcome, 1)
	msg := ActivationMessage{
		App: app, Function: fn, Exec: exec, MemoryMB: memoryMB,
		KeepAlive:       keepAliveFor(d),
		UnloadAfterExec: !d.Forever && d.PreWarm > 0,
		Reply:           reply,
	}
	if err := c.bus.Publish(InvokerTopic(invoker), msg); err != nil {
		return Outcome{}, fmt.Errorf("platform: dispatching %s/%s: %w", app, fn, err)
	}
	out := <-reply

	st.mu.Lock()
	st.lastEnd = out.End
	// Schedule the pre-warm after the execution that just finished.
	if !d.Forever && d.PreWarm > 0 {
		ka := keepAliveFor(d)
		mem := st.memoryMB
		st.prewarm = c.clock.AfterFunc(d.PreWarm, func() {
			// Ignore a full-queue error: a missed pre-warm only costs a
			// cold start, exactly as in the real system.
			_ = c.bus.Publish(InvokerTopic(invoker), PrewarmMessage{
				App: app, MemoryMB: mem, KeepAlive: ka,
			})
		})
	}
	st.mu.Unlock()
	return out, nil
}

// keepAliveFor translates a policy decision into the keep-alive stamp
// carried on the activation; Forever maps to a year, effectively
// infinite at experiment scale.
func keepAliveFor(d policy.Decision) time.Duration {
	if d.Forever {
		return 365 * 24 * time.Hour
	}
	return d.KeepAlive
}

func (c *Controller) recordOverhead(d time.Duration) {
	c.overheadMu.Lock()
	c.overheadTotal += d
	c.overheadCount++
	c.overheadMu.Unlock()
}

// PolicyOverhead returns the mean real-time cost of one policy
// decision and the number of decisions made.
func (c *Controller) PolicyOverhead() (mean time.Duration, count int64) {
	c.overheadMu.Lock()
	defer c.overheadMu.Unlock()
	if c.overheadCount == 0 {
		return 0, 0
	}
	return c.overheadTotal / time.Duration(c.overheadCount), c.overheadCount
}

// InvokerFor returns the invoker index an app is pinned to.
func (c *Controller) InvokerFor(app string, memoryMB float64) int {
	return c.state(app, memoryMB).invoker
}
