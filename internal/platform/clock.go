// Package platform implements an in-process FaaS control plane
// mirroring the OpenWhisk architecture the paper modifies (§4.3,
// Figure 13): a REST front end, a Controller with a Load Balancer that
// owns per-application policy state, a channel-based message bus (the
// Kafka stand-in), and Invokers that host application containers,
// honouring the keep-alive duration carried on each activation
// message and pre-warming containers on request.
//
// Containers are simulated workers: a cold start costs a configurable
// delay and function execution occupies the container for the
// requested duration, both measured on a pluggable Clock so whole
// 8-hour experiments replay in seconds of real time (§5.3's scaled
// trace replay).
package platform

import "time"

// Clock abstracts time so experiments can run on accelerated time.
type Clock interface {
	// Now returns the current (possibly virtual) time.
	Now() time.Time
	// Sleep blocks for a (possibly virtual) duration.
	Sleep(d time.Duration)
	// AfterFunc runs f after a (possibly virtual) duration, returning
	// a timer that can be stopped.
	AfterFunc(d time.Duration, f func()) *time.Timer
}

// RealClock is the wall clock.
type RealClock struct{}

// Now implements Clock.
//
//wildlint:allow wallclock
func (RealClock) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (RealClock) Sleep(d time.Duration) { time.Sleep(d) }

// AfterFunc implements Clock.
func (RealClock) AfterFunc(d time.Duration, f func()) *time.Timer {
	return time.AfterFunc(d, f)
}

// ScaledClock runs virtual time Scale times faster than real time:
// a virtual minute passes in 60/Scale real seconds. The virtual epoch
// coincides with the real time at construction.
type ScaledClock struct {
	start time.Time
	scale float64
}

// NewScaledClock creates a clock running scale× real time. Scale must
// be >= 1.
//
//wildlint:allow wallclock
func NewScaledClock(scale float64) *ScaledClock {
	if scale < 1 {
		scale = 1
	}
	return &ScaledClock{start: time.Now(), scale: scale}
}

// Now implements Clock.
//
//wildlint:allow wallclock
func (c *ScaledClock) Now() time.Time {
	elapsed := time.Since(c.start)
	return c.start.Add(time.Duration(float64(elapsed) * c.scale))
}

// Sleep implements Clock.
func (c *ScaledClock) Sleep(d time.Duration) {
	time.Sleep(c.real(d))
}

// AfterFunc implements Clock.
func (c *ScaledClock) AfterFunc(d time.Duration, f func()) *time.Timer {
	return time.AfterFunc(c.real(d), f)
}

func (c *ScaledClock) real(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	r := time.Duration(float64(d) / c.scale)
	if r <= 0 {
		r = time.Nanosecond
	}
	return r
}
