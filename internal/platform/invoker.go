package platform

import (
	"sync"
	"time"
)

// container is a loaded application instance on an invoker, the unit
// the keep-alive policy manages (the "worker" of §2). Its lifecycle is
// driven by the invoker's ContainerProxy logic: loaded on cold start
// or pre-warm, refreshed on each use, unloaded when its keep-alive
// timer fires or the controller orders an unload.
type container struct {
	app      string
	memoryMB float64
	loadedAt time.Time
	busy     int // in-flight executions
	// keepAlive is the retention currently in force.
	keepAlive time.Duration
	timer     *time.Timer
}

// InvokerStats summarizes one invoker's activity.
type InvokerStats struct {
	ColdStarts int
	WarmStarts int
	Prewarms   int
	Unloads    int
	// MemoryMBSeconds integrates loaded container memory over virtual
	// time — the worker-memory metric the paper's OpenWhisk experiment
	// reports (§5.3).
	MemoryMBSeconds float64
	// LoadedContainers is the current container count.
	LoadedContainers int
}

// Invoker hosts containers and executes activations, mirroring the
// OpenWhisk Invoker with the paper's modified ContainerProxy that
// honours per-activation keep-alive (§4.3, modification #3).
type Invoker struct {
	id    int
	clock Clock
	// coldStart is the container instantiation delay (virtual time).
	coldStart time.Duration
	// runtimeInit is the in-memory language runtime initiation cost
	// paid on cold containers (§5.3 notes O(10ms) init vs O(100ms)
	// container start).
	runtimeInit time.Duration

	mu         sync.Mutex
	containers map[string]*container
	stats      InvokerStats

	wg   sync.WaitGroup
	quit chan struct{}
}

// NewInvoker creates an invoker consuming from the given topic.
func NewInvoker(id int, clock Clock, coldStart, runtimeInit time.Duration) *Invoker {
	return &Invoker{
		id:          id,
		clock:       clock,
		coldStart:   coldStart,
		runtimeInit: runtimeInit,
		containers:  make(map[string]*container),
		quit:        make(chan struct{}),
	}
}

// Serve consumes messages from queue until it is closed.
func (inv *Invoker) Serve(queue <-chan any) {
	inv.wg.Add(1)
	go func() {
		defer inv.wg.Done()
		for msg := range queue {
			switch m := msg.(type) {
			case ActivationMessage:
				inv.wg.Add(1)
				go func() {
					defer inv.wg.Done()
					inv.handleActivation(m)
				}()
			case PrewarmMessage:
				inv.handlePrewarm(m)
			case UnloadMessage:
				inv.unload(m.App)
			}
		}
	}()
}

// Stop waits for in-flight work to finish and halts keep-alive timers.
func (inv *Invoker) Stop() {
	close(inv.quit)
	inv.wg.Wait()
	inv.mu.Lock()
	defer inv.mu.Unlock()
	for app, c := range inv.containers {
		inv.dropLocked(app, c)
	}
}

// Stats returns a snapshot of the invoker's counters.
func (inv *Invoker) Stats() InvokerStats {
	inv.mu.Lock()
	defer inv.mu.Unlock()
	s := inv.stats
	s.LoadedContainers = len(inv.containers)
	return s
}

// handleActivation runs one invocation: warm if a container is
// loaded, otherwise a cold start pays the instantiation delay.
func (inv *Invoker) handleActivation(m ActivationMessage) {
	arrive := inv.clock.Now()

	inv.mu.Lock()
	c, warm := inv.containers[m.App]
	if warm {
		c.busy++
		if c.timer != nil {
			c.timer.Stop()
			c.timer = nil
		}
	}
	inv.mu.Unlock()

	if !warm {
		// Cold start: instantiate the container, load runtime.
		inv.clock.Sleep(inv.coldStart + inv.runtimeInit)
		inv.mu.Lock()
		// Another in-flight activation may have raced us; reuse if so.
		if existing, ok := inv.containers[m.App]; ok {
			c = existing
		} else {
			c = &container{app: m.App, memoryMB: m.MemoryMB, loadedAt: inv.clock.Now()}
			inv.containers[m.App] = c
		}
		c.busy++
		if c.timer != nil {
			c.timer.Stop()
			c.timer = nil
		}
		inv.stats.ColdStarts++
		inv.mu.Unlock()
	} else {
		inv.mu.Lock()
		inv.stats.WarmStarts++
		inv.mu.Unlock()
	}

	start := inv.clock.Now()
	if m.Exec > 0 {
		inv.clock.Sleep(m.Exec)
	}
	end := inv.clock.Now()
	latency := end.Sub(arrive)

	inv.mu.Lock()
	c.busy--
	if c.busy == 0 {
		if m.UnloadAfterExec {
			inv.dropLocked(m.App, c)
		} else {
			inv.armKeepAliveLocked(c, m.KeepAlive)
		}
	}
	inv.mu.Unlock()

	if m.Reply != nil {
		m.Reply <- Outcome{
			App: m.App, Function: m.Function,
			Cold: !warm, Latency: latency,
			Start: start, End: end, Invoker: inv.id,
		}
	}
}

// handlePrewarm loads a container ahead of a predicted invocation.
func (inv *Invoker) handlePrewarm(m PrewarmMessage) {
	inv.mu.Lock()
	defer inv.mu.Unlock()
	if _, ok := inv.containers[m.App]; ok {
		return // already loaded
	}
	c := &container{app: m.App, memoryMB: m.MemoryMB, loadedAt: inv.clock.Now()}
	inv.containers[m.App] = c
	inv.stats.Prewarms++
	inv.armKeepAliveLocked(c, m.KeepAlive)
}

// armKeepAliveLocked (re)sets a container's keep-alive timer.
// Caller holds inv.mu.
func (inv *Invoker) armKeepAliveLocked(c *container, ka time.Duration) {
	if c.timer != nil {
		c.timer.Stop()
	}
	if ka <= 0 {
		ka = time.Nanosecond
	}
	c.keepAlive = ka
	app := c.app
	c.timer = inv.clock.AfterFunc(ka, func() {
		inv.mu.Lock()
		defer inv.mu.Unlock()
		cur, ok := inv.containers[app]
		if !ok || cur != c || cur.busy > 0 {
			return
		}
		inv.dropLocked(app, cur)
	})
}

// unload drops an app's idle container on controller request.
func (inv *Invoker) unload(app string) {
	inv.mu.Lock()
	defer inv.mu.Unlock()
	c, ok := inv.containers[app]
	if !ok || c.busy > 0 {
		return
	}
	inv.dropLocked(app, c)
}

// dropLocked removes a container and settles its memory integral.
// Caller holds inv.mu.
func (inv *Invoker) dropLocked(app string, c *container) {
	if c.timer != nil {
		c.timer.Stop()
		c.timer = nil
	}
	resident := inv.clock.Now().Sub(c.loadedAt)
	if resident > 0 {
		inv.stats.MemoryMBSeconds += c.memoryMB * resident.Seconds()
	}
	inv.stats.Unloads++
	delete(inv.containers, app)
}

// SettleMemory folds the memory of still-loaded containers into the
// integral as of now (call when an experiment ends).
func (inv *Invoker) SettleMemory() {
	inv.mu.Lock()
	defer inv.mu.Unlock()
	now := inv.clock.Now()
	for _, c := range inv.containers {
		if resident := now.Sub(c.loadedAt); resident > 0 {
			inv.stats.MemoryMBSeconds += c.memoryMB * resident.Seconds()
			c.loadedAt = now
		}
	}
}

// Loaded reports whether the app currently has a container.
func (inv *Invoker) Loaded(app string) bool {
	inv.mu.Lock()
	defer inv.mu.Unlock()
	_, ok := inv.containers[app]
	return ok
}
