package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// deterministicPathPrefixes are the packages whose results are pinned
// bit-for-bit by the golden suites: any iteration-order-sensitive
// accumulation here silently breaks reproducibility.
var deterministicPathPrefixes = []string{
	"repro/internal/sim",
	"repro/internal/cluster",
	"repro/internal/metrics",
	"repro/internal/scenario",
}

func inDeterministicPath(pkgPath string) bool {
	for _, p := range deterministicPathPrefixes {
		if pkgPath == p || strings.HasPrefix(pkgPath, p+"/") {
			return true
		}
	}
	return false
}

// Determinism enforces the bit-identical-results contract: no map
// iteration in the deterministic result path (opt-out:
// //wildlint:orderinvariant on provably order-invariant folds), and
// no wall-clock or global-math/rand reads anywhere outside code
// annotated //wildlint:allow wallclock.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "flag map iteration in the deterministic result path and unannotated wall-clock/global-rand reads",
	Run:  runDeterminism,
}

// wallClockFuncs are the stdlib functions that read the runtime's
// wall clock or its process-global random state.
func isWallClockFunc(fn *types.Func) (label string, ok bool) {
	pkg := fn.Pkg()
	if pkg == nil {
		return "", false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() != nil {
		return "", false
	}
	switch pkg.Path() {
	case "time":
		switch fn.Name() {
		case "Now", "Since", "Until":
			return "time." + fn.Name(), true
		}
	case "math/rand", "math/rand/v2":
		switch fn.Name() {
		// Constructors of explicitly seeded generators are the
		// deterministic alternative, not the problem.
		case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
			return "", false
		}
		return pkg.Path() + "." + fn.Name(), true
	}
	return "", false
}

func runDeterminism(pass *Pass) error {
	checkMaps := inDeterministicPath(pass.Pkg.Path())
	for _, f := range pass.Files {
		walkStack(f, func(n ast.Node, stack []ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				if !checkMaps {
					return true
				}
				t := pass.TypesInfo.Types[n.X].Type
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					return true
				}
				if ann := pass.Notes.At(pass.Fset, n.Pos(), "orderinvariant", ""); ann != nil {
					return true
				}
				pass.Reportf(n.Pos(), "range over map %s in the deterministic result path: iteration order is randomized per run; iterate sorted keys, or mark a provably order-invariant fold //wildlint:orderinvariant", t.String())
			case *ast.Ident:
				fn, _ := pass.TypesInfo.Uses[n].(*types.Func)
				if fn == nil {
					return true
				}
				label, bad := isWallClockFunc(fn)
				if !bad {
					return true
				}
				if wallClockAllowed(pass, n, stack) {
					return true
				}
				pass.Reportf(n.Pos(), "%s is wall-clock/global-rand state: results must depend only on the trace and the seed; annotate //wildlint:allow wallclock on the statement or enclosing function if this is intentionally wall-clock code", label)
			}
			return true
		})
	}
	pass.Notes.reportUnused(pass, "orderinvariant", "")
	pass.Notes.reportUnused(pass, "allow", "wallclock")
	return nil
}

// wallClockAllowed reports whether the use at n is governed by an
// //wildlint:allow wallclock annotation — on its own line, the line
// above, or any enclosing function declaration or literal.
func wallClockAllowed(pass *Pass, n ast.Node, stack []ast.Node) bool {
	if ann := pass.Notes.At(pass.Fset, n.Pos(), "allow", "wallclock"); ann != nil {
		return true
	}
	for _, fn := range enclosingFuncs(stack) {
		pos := fn.Pos()
		if fd, ok := fn.(*ast.FuncDecl); ok && fd.Doc != nil {
			// The annotation is conventionally the last line of the
			// doc comment; match anywhere on the decl's doc lines.
			for _, c := range fd.Doc.List {
				if ann := pass.Notes.At(pass.Fset, c.Pos(), "allow", "wallclock"); ann != nil {
					return true
				}
			}
		}
		if ann := pass.Notes.At(pass.Fset, pos, "allow", "wallclock"); ann != nil {
			return true
		}
	}
	return false
}

// constTrue reports whether expr is the constant true in this package.
func constTrue(pass *Pass, expr ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[expr]
	return ok && tv.Value != nil && tv.Value.Kind() == constant.Bool && constant.BoolVal(tv.Value)
}
