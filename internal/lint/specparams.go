package lint

import (
	"go/ast"
	"go/types"
)

// specPkgPath is the shared spec-params machinery every component
// registry builds on.
const specPkgPath = "repro/internal/spec"

// SpecParams keeps the `name?k=v` grammar uniform: every function
// that parses a spec query with spec.Parse must check Params.Unused()
// before returning, so a misspelled key fails with an
// "unknown parameters" error in every registry instead of silently
// configuring a default in some of them.
var SpecParams = &Analyzer{
	Name: "specparams",
	Doc:  "every spec.Parse call site must check Params.Unused() before returning",
	Run:  runSpecParams,
}

func runSpecParams(pass *Pass) error {
	for _, f := range pass.Files {
		forEachFuncUnit(f, func(body *ast.BlockStmt) {
			checkSpecParseUnit(pass, body)
		})
	}
	return nil
}

// forEachFuncUnit calls fn once per function body in the file: every
// declaration and every function literal is its own unit.
func forEachFuncUnit(f *ast.File, fn func(body *ast.BlockStmt)) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				fn(n.Body)
			}
		case *ast.FuncLit:
			fn(n.Body)
		}
		return true
	})
}

func checkSpecParseUnit(pass *Pass, body *ast.BlockStmt) {
	// Collect the unit's spec.Parse bindings and Unused() receivers,
	// without descending into nested function literals (they are
	// their own units).
	type parseSite struct {
		pos  ast.Node
		obj  types.Object // nil when the result is discarded
		name string
	}
	var sites []parseSite
	checked := map[types.Object]bool{}
	inspectUnit(body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Rhs) != 1 {
				return
			}
			call, ok := n.Rhs[0].(*ast.CallExpr)
			if !ok || !isSpecParseCall(pass, call) {
				return
			}
			site := parseSite{pos: call, name: "params"}
			if id, ok := n.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
				if obj := pass.TypesInfo.Defs[id]; obj != nil {
					site.obj, site.name = obj, id.Name
				} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
					site.obj, site.name = obj, id.Name
				}
			}
			sites = append(sites, site)
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Unused" {
				return
			}
			if id, ok := sel.X.(*ast.Ident); ok {
				if obj := pass.TypesInfo.Uses[id]; obj != nil {
					checked[obj] = true
				}
			}
		}
	})
	for _, s := range sites {
		if s.obj != nil && checked[s.obj] {
			continue
		}
		pass.Reportf(s.pos.Pos(), "spec.Parse result %s is never checked with Unused(): unknown keys must fail uniformly across registries; add `if left := %s.Unused(); len(left) > 0 { return ..., fmt.Errorf(\"unknown parameters %%v\", left) }` before returning", s.name, s.name)
	}
}

// inspectUnit walks stmts of one function unit, skipping nested
// function literals.
func inspectUnit(body *ast.BlockStmt, visit func(n ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}

// isSpecParseCall reports whether call is spec.Parse from
// repro/internal/spec.
func isSpecParseCall(pass *Pass, call *ast.CallExpr) bool {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.Ident:
		id = fun
	default:
		return false
	}
	fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
	return ok && fn.Name() == "Parse" && fn.Pkg() != nil && fn.Pkg().Path() == specPkgPath
}
