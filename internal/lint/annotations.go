package lint

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// annotationPrefix introduces a wildlint directive comment. Like all
// Go directives it binds with no space after the slashes:
// "//wildlint:orderinvariant", "//wildlint:allow wallclock".
const annotationPrefix = "//wildlint:"

// Annotation is one parsed wildlint directive.
type Annotation struct {
	// Verb is the directive name ("orderinvariant", "allow", "owner").
	Verb string
	// Arg is the first argument ("wallclock", "poolleak"); empty for
	// argument-less verbs.
	Arg string
	// Pos is the comment's position.
	Pos token.Pos

	used bool
}

// Notes indexes a package's annotations by file and line so analyzers
// can match them to the construct on the same or the following line.
type Notes struct {
	byLine map[string]map[int][]*Annotation
	all    []*Annotation
}

func collectNotes(fset *token.FileSet, files []*ast.File) *Notes {
	n := &Notes{byLine: map[string]map[int][]*Annotation{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, annotationPrefix)
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				if len(fields) == 0 {
					continue
				}
				ann := &Annotation{Verb: fields[0], Pos: c.Pos()}
				if len(fields) > 1 {
					ann.Arg = fields[1]
				}
				pos := fset.Position(c.Pos())
				lines := n.byLine[pos.Filename]
				if lines == nil {
					lines = map[int][]*Annotation{}
					n.byLine[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], ann)
				n.all = append(n.all, ann)
			}
		}
	}
	return n
}

// At returns an annotation with the given verb and arg governing the
// construct at pos — on the same line (trailing comment) or the line
// directly above — marking it used. Nil when there is none.
func (n *Notes) At(fset *token.FileSet, pos token.Pos, verb, arg string) *Annotation {
	p := fset.Position(pos)
	for _, line := range []int{p.Line, p.Line - 1} {
		for _, ann := range n.byLine[p.Filename][line] {
			if ann.Verb == verb && ann.Arg == arg {
				ann.used = true
				return ann
			}
		}
	}
	return nil
}

// reportUnused reports every annotation with the given verb and arg
// that no check consumed — the "checked annotation" half of the
// contract: a stale opt-out is itself a finding.
func (n *Notes) reportUnused(pass *Pass, verb, arg string) {
	anns := append([]*Annotation(nil), n.all...)
	sort.Slice(anns, func(i, j int) bool { return anns[i].Pos < anns[j].Pos })
	for _, ann := range anns {
		if ann.used || ann.Verb != verb || ann.Arg != arg {
			continue
		}
		what := annotationPrefix + verb
		if arg != "" {
			what += " " + arg
		}
		pass.Reportf(ann.Pos, "unused wildlint annotation %s: nothing on the next line needs it", what)
	}
}
