package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Oblivious proves the placement contract of
// internal/cluster/placement.go at compile time: a placement whose
// Oblivious() method returns a constant true must never reach
// View.ResidentMB through Place's call graph. The engine's runtime
// guard (a panicking pre-assignment view) becomes a compile-time
// guarantee. Only intra-package static calls are traced; calls
// through function values are outside the contract's shapes.
var Oblivious = &Analyzer{
	Name: "oblivious",
	Doc:  "a constant-true Oblivious() placement must not reach View.ResidentMB from Place",
	Run:  runOblivious,
}

func runOblivious(pass *Pass) error {
	decls := packageFuncDecls(pass)

	// Candidate placements: receiver types with an Oblivious() bool
	// method whose body is exactly `return <constant true>`. A
	// runtime-dependent Oblivious() (returning false or a computed
	// value) promises nothing and is left alone.
	for obj, fd := range decls {
		if obj.Name() != "Oblivious" || fd.Recv == nil || fd.Body == nil {
			continue
		}
		sig := obj.Type().(*types.Signature)
		if sig.Params().Len() != 0 || sig.Results().Len() != 1 {
			continue
		}
		if b, ok := sig.Results().At(0).Type().Underlying().(*types.Basic); !ok || b.Kind() != types.Bool {
			continue
		}
		if len(fd.Body.List) != 1 {
			continue
		}
		ret, ok := fd.Body.List[0].(*ast.ReturnStmt)
		if !ok || len(ret.Results) != 1 || !constTrue(pass, ret.Results[0]) {
			continue
		}
		recv := namedRecv(sig)
		if recv == nil {
			continue
		}
		place := methodDecl(pass, decls, recv, "Place")
		if place == nil {
			continue
		}
		checkObliviousReach(pass, decls, recv, place)
	}
	return nil
}

// packageFuncDecls maps every function and method declared in the
// package to its syntax.
func packageFuncDecls(pass *Pass) map[*types.Func]*ast.FuncDecl {
	m := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					m[obj] = fd
				}
			}
		}
	}
	return m
}

// namedRecv returns the receiver's named-type symbol, nil for
// anonymous receivers.
func namedRecv(sig *types.Signature) *types.TypeName {
	if sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj()
	}
	return nil
}

// methodDecl finds the declaration of recv's method with the given
// name in this package.
func methodDecl(pass *Pass, decls map[*types.Func]*ast.FuncDecl, recv *types.TypeName, name string) *ast.FuncDecl {
	for obj, fd := range decls {
		if obj.Name() != name {
			continue
		}
		if r := namedRecv(obj.Type().(*types.Signature)); r == recv {
			return fd
		}
	}
	return nil
}

// checkObliviousReach walks the static call graph from the placement's
// Place method, reporting any reachable ResidentMB method use.
func checkObliviousReach(pass *Pass, decls map[*types.Func]*ast.FuncDecl, recv *types.TypeName, place *ast.FuncDecl) {
	type frame struct {
		fd   *ast.FuncDecl
		path []string
	}
	visited := map[*ast.FuncDecl]bool{}
	work := []frame{{place, []string{"Place"}}}
	for len(work) > 0 {
		fr := work[len(work)-1]
		work = work[:len(work)-1]
		if visited[fr.fd] {
			continue
		}
		visited[fr.fd] = true
		ast.Inspect(fr.fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				// Closures declared inside the body run (if at all)
				// with the same obligations.
				return true
			case *ast.SelectorExpr:
				sel := pass.TypesInfo.Selections[n]
				if sel != nil && sel.Kind() == types.MethodVal && n.Sel.Name == "ResidentMB" {
					pass.Reportf(n.Pos(), "placement %s reports a constant Oblivious() == true but reaches View.ResidentMB (via %s); make the placement view-oblivious or make Oblivious() runtime-dependent", recv.Name(), strings.Join(fr.path, " -> "))
					return true
				}
				callee := calleeFunc(pass, n)
				if callee != nil {
					if fd, ok := decls[callee]; ok && fd.Body != nil {
						work = append(work, frame{fd, append(append([]string(nil), fr.path...), callee.Name())})
					}
				}
			case *ast.Ident:
				if callee, ok := pass.TypesInfo.Uses[n].(*types.Func); ok {
					if fd, ok := decls[callee]; ok && fd.Body != nil {
						work = append(work, frame{fd, append(append([]string(nil), fr.path...), callee.Name())})
					}
				}
			}
			return true
		})
	}
}

// calleeFunc resolves a selector to the method or function it names.
func calleeFunc(pass *Pass, sel *ast.SelectorExpr) *types.Func {
	if s := pass.TypesInfo.Selections[sel]; s != nil {
		if fn, ok := s.Obj().(*types.Func); ok {
			return fn
		}
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	return fn
}
