package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

// The fixture suites: each analyzer against a package with at least
// one true positive (a `// want` line) and one true negative (a
// diagnostic-free construct in the same contract's blast radius).

func TestDeterminismFixture(t *testing.T) {
	RunFixture(t, Determinism, "repro/internal/sim/detfix")
}

// TestDeterminismScope: the map-iteration rule stops at the
// deterministic-path boundary — a map range in an unrelated package
// is not a finding.
func TestDeterminismScope(t *testing.T) {
	RunFixture(t, Determinism, "plainfix")
}

func TestObliviousFixture(t *testing.T) {
	RunFixture(t, Oblivious, "obliviousfix")
}

func TestReleaseFixture(t *testing.T) {
	RunFixture(t, Release, "releasefix")
}

func TestSinkContractFixture(t *testing.T) {
	RunFixture(t, SinkContract, "sinkfix")
}

func TestSpecParamsFixture(t *testing.T) {
	RunFixture(t, SpecParams, "specfix")
}

func TestFastlaneFixture(t *testing.T) {
	RunFixture(t, Fastlane, "fastlanefix")
}

// TestAnnotationChecks covers the "checked annotation" half of the
// grammar: a stale opt-out and an unknown verb are both findings.
func TestAnnotationChecks(t *testing.T) {
	l := newFixtureLoader(filepath.Join("testdata", "src"), ".")
	pkg, err := l.load("annotfix")
	if err != nil {
		t.Fatalf("loading annotfix: %v", err)
	}
	diags, err := RunAnalyzers([]*Package{pkg}, All())
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2:\n%v", len(diags), diags)
	}
	wantSubstrings := []string{
		"unused wildlint annotation //wildlint:allow wallclock",
		`unknown wildlint annotation "nonsense"`,
	}
	for i, want := range wantSubstrings {
		if !strings.Contains(diags[i].Message, want) {
			t.Errorf("diagnostic %d = %q, want substring %q", i, diags[i].Message, want)
		}
	}
}

// TestByName keeps the -run flag's name space aligned with All().
func TestByName(t *testing.T) {
	for _, a := range All() {
		if ByName(a.Name) != a {
			t.Errorf("ByName(%q) does not resolve to the registered analyzer", a.Name)
		}
	}
	if ByName("nope") != nil {
		t.Errorf("ByName of an unknown name is non-nil")
	}
}

// TestTreeClean runs the whole suite over the repository: the tree
// must stay wildlint-clean, so a regression fails `go test ./...`
// and not just the CI lint job.
func TestTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the full module")
	}
	pkgs, err := LoadPackages("../..", "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	diags, err := RunAnalyzers(pkgs, All())
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
