package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// fixtureLoader loads GOPATH-style fixture trees: import path P
// resolves to srcRoot/P when that directory exists (type-checked from
// source, recursively), and to the real module's gc export data
// otherwise — so fixtures can import both their own helper packages
// and real packages like repro/internal/spec or the stdlib without
// any copies.
type fixtureLoader struct {
	srcRoot string
	modRoot string
	fset    *token.FileSet
	exports *exportSet
	gcImp   types.Importer
	source  map[string]*Package
}

func newFixtureLoader(srcRoot, modRoot string) *fixtureLoader {
	l := &fixtureLoader{
		srcRoot: srcRoot,
		modRoot: modRoot,
		fset:    token.NewFileSet(),
		exports: newExportSet(),
		source:  map[string]*Package{},
	}
	l.gcImp = importer.ForCompiler(l.fset, "gc", l.exports.lookup)
	return l
}

// Import implements types.Importer for fixture type-checking.
func (l *fixtureLoader) Import(path string) (*types.Package, error) {
	pkg, err := l.load(path)
	if err != nil {
		return nil, err
	}
	return pkg.Types, nil
}

func (l *fixtureLoader) load(path string) (*Package, error) {
	if pkg, ok := l.source[path]; ok {
		return pkg, nil
	}
	dir := filepath.Join(l.srcRoot, filepath.FromSlash(path))
	if names, err := goFilesIn(dir); err == nil && len(names) > 0 {
		pkg, err := checkPackage(l.fset, l, path, dir, names)
		if err != nil {
			return nil, err
		}
		l.source[path] = pkg
		return pkg, nil
	}
	// Not a fixture package: import the real thing via export data,
	// extending the set lazily with the path's dependency closure.
	if _, ok := l.exports.files[path]; !ok {
		listed, err := goList(l.modRoot, path)
		if err != nil {
			return nil, err
		}
		l.exports.add(listed)
	}
	tpkg, err := l.gcImp.Import(path)
	if err != nil {
		return nil, err
	}
	pkg := &Package{PkgPath: path, Fset: l.fset, Types: tpkg}
	l.source[path] = pkg
	return pkg, nil
}

func goFilesIn(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// expectation is one parsed `// want "re"` clause.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	text string
	met  bool
}

// RunFixture loads the fixture package at pkgPath (rooted at
// testdata/src in the caller's directory), runs the analyzer over it,
// and matches the diagnostics against `// want "regexp"` comments —
// the analysistest contract: every diagnostic must be wanted on its
// line, every want must be produced.
func RunFixture(t *testing.T, a *Analyzer, pkgPath string) {
	t.Helper()
	l := newFixtureLoader(filepath.Join("testdata", "src"), ".")
	pkg, err := l.load(pkgPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pkgPath, err)
	}
	if pkg.Info == nil {
		t.Fatalf("fixture %s resolved to export data, not testdata/src", pkgPath)
	}
	diags, err := RunAnalyzers([]*Package{pkg}, []*Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, pkgPath, err)
	}
	wants, err := collectWants(pkg.Fset, pkg.Files)
	if err != nil {
		t.Fatalf("fixture %s: %v", pkgPath, err)
	}
	for _, d := range diags {
		if !claimWant(wants, d) {
			t.Errorf("%s: unexpected diagnostic: %s", pkgPath, d)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s: %s:%d: no diagnostic matching %q", pkgPath, w.file, w.line, w.text)
		}
	}
}

func claimWant(wants []*expectation, d Diagnostic) bool {
	for _, w := range wants {
		if !w.met && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
			w.met = true
			return true
		}
	}
	return false
}

// collectWants parses `// want "re" "re2"` comments (double-quoted Go
// strings or backquoted raw strings, space-separated).
func collectWants(fset *token.FileSet, files []*ast.File) ([]*expectation, error) {
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(strings.TrimSpace(strings.TrimPrefix(c.Text, "//")), "want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, lit := range splitQuoted(rest) {
					text, err := strconv.Unquote(lit)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want clause %s: %v", pos.Filename, pos.Line, lit, err)
					}
					re, err := regexp.Compile(text)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, text, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re, text: text})
				}
			}
		}
	}
	return wants, nil
}

// splitQuoted splits space-separated Go string literals ("x" `y`).
func splitQuoted(s string) []string {
	var out []string
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return out
		}
		quote := s[0]
		if quote != '"' && quote != '`' {
			// Not a literal: take the rest as one token and let
			// Unquote report the malformed clause.
			return append(out, s)
		}
		end := 1
		for end < len(s) {
			if s[end] == quote && (quote == '`' || s[end-1] != '\\') {
				break
			}
			end++
		}
		if end == len(s) {
			return append(out, s)
		}
		out = append(out, s[:end+1])
		s = s[end+1:]
	}
}
