package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
)

// Package is one loaded, parsed, type-checked package.
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

// goList runs `go list -export -deps -json` in dir and decodes the
// package stream.
func goList(dir string, patterns ...string) ([]*listedPackage, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Name,Dir,GoFiles,Export,DepOnly,ImportMap,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decoding: %v", patterns, err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list %v: %s: %s", patterns, p.ImportPath, p.Error.Err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// exportSet resolves import paths to gc export data files, feeding
// go/importer's lookup hook. It can grow lazily (the fixture loader
// adds stdlib closures on demand).
type exportSet struct {
	files map[string]string // import path -> export data file
	alias map[string]string // source import path -> compiled path
}

func newExportSet() *exportSet {
	return &exportSet{files: map[string]string{}, alias: map[string]string{}}
}

func (e *exportSet) add(pkgs []*listedPackage) {
	for _, p := range pkgs {
		if p.Export != "" {
			e.files[p.ImportPath] = p.Export
		}
		for src, resolved := range p.ImportMap {
			e.alias[src] = resolved
		}
	}
}

func (e *exportSet) lookup(path string) (io.ReadCloser, error) {
	if resolved, ok := e.alias[path]; ok {
		path = resolved
	}
	f, ok := e.files[path]
	if !ok {
		return nil, fmt.Errorf("lint: no export data for %q", path)
	}
	return os.Open(f)
}

// LoadPackages loads, parses and type-checks the packages matching
// patterns (e.g. "./...") relative to dir. Dependencies — including
// in-module ones — are imported from gc export data produced by
// `go list -export`, so loading needs no network and no GOPATH; only
// the matched packages themselves are parsed from source. Test files
// are not loaded: wildlint checks shipped code.
func LoadPackages(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	exports := newExportSet()
	exports.add(listed)

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", exports.lookup)

	var out []*Package
	for _, lp := range listed {
		if lp.DepOnly || len(lp.GoFiles) == 0 {
			continue
		}
		pkg, err := checkPackage(fset, imp, lp.ImportPath, lp.Dir, lp.GoFiles)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// checkPackage parses the named files and type-checks them with imp.
func checkPackage(fset *token.FileSet, imp types.Importer, pkgPath, dir string, goFiles []string) (*Package, error) {
	files := make([]*ast.File, 0, len(goFiles))
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %s: %v", pkgPath, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", pkgPath, err)
	}
	return &Package{
		PkgPath: pkgPath,
		Dir:     dir,
		Fset:    fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
	}, nil
}
