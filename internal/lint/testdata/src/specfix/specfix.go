// Package specfix exercises the spec-params analyzer against the real
// repro/internal/spec package (imported from export data, not copied).
package specfix

import (
	"fmt"
	"time"

	"repro/internal/spec"
)

// Bad parses a query and never checks for unused keys: a misspelled
// parameter would silently configure the default.
func Bad(query string) (int, error) {
	p, err := spec.Parse(query) // want `spec\.Parse result p is never checked with Unused\(\)`
	if err != nil {
		return 0, err
	}
	n, err := p.Int("n", 1)
	if err != nil {
		return 0, err
	}
	return n, nil
}

// Good rejects unknown keys before returning.
func Good(query string) (int, error) {
	p, err := spec.Parse(query)
	if err != nil {
		return 0, err
	}
	n, err := p.Int("n", 1)
	if err != nil {
		return 0, err
	}
	if left := p.Unused(); len(left) > 0 {
		return 0, fmt.Errorf("unknown parameters %v", left)
	}
	return n, nil
}

// BadFastLane parses the fast-lane keys (exact, refit — the hybrid
// registry's opt-in grammar) and still skips the Unused check: a
// misspelling like "exat=off" would silently run the exact lane.
func BadFastLane(query string) (bool, time.Duration, error) {
	p, err := spec.Parse(query) // want `spec\.Parse result p is never checked with Unused\(\)`
	if err != nil {
		return false, 0, err
	}
	exact, err := p.Bool("exact", true)
	if err != nil {
		return false, 0, err
	}
	refit, err := p.Duration("refit", 0)
	if err != nil {
		return false, 0, err
	}
	return !exact, refit, nil
}

// GoodFastLane mirrors the hybrid registry: exact and refit consumed,
// leftovers rejected with the builder's vocabulary (Known) listed so
// the typo is a one-glance fix.
func GoodFastLane(query string) (bool, time.Duration, error) {
	p, err := spec.Parse(query)
	if err != nil {
		return false, 0, err
	}
	exact, err := p.Bool("exact", true)
	if err != nil {
		return false, 0, err
	}
	refit, err := p.Duration("refit", 0)
	if err != nil {
		return false, 0, err
	}
	if left := p.Unused(); len(left) > 0 {
		return false, 0, fmt.Errorf("unknown parameters %v (known: %v)", left, p.Known())
	}
	return !exact, refit, nil
}
