// Package specfix exercises the spec-params analyzer against the real
// repro/internal/spec package (imported from export data, not copied).
package specfix

import (
	"fmt"

	"repro/internal/spec"
)

// Bad parses a query and never checks for unused keys: a misspelled
// parameter would silently configure the default.
func Bad(query string) (int, error) {
	p, err := spec.Parse(query) // want `spec\.Parse result p is never checked with Unused\(\)`
	if err != nil {
		return 0, err
	}
	n, err := p.Int("n", 1)
	if err != nil {
		return 0, err
	}
	return n, nil
}

// Good rejects unknown keys before returning.
func Good(query string) (int, error) {
	p, err := spec.Parse(query)
	if err != nil {
		return 0, err
	}
	n, err := p.Int("n", 1)
	if err != nil {
		return 0, err
	}
	if left := p.Unused(); len(left) > 0 {
		return 0, fmt.Errorf("unknown parameters %v", left)
	}
	return n, nil
}
