// Package annotfix holds deliberately stale and malformed annotations
// for the checked-annotation tests: an opt-out that suppresses
// nothing is itself a finding, and a typo'd verb is rejected.
package annotfix

// Quiet does nothing wall-clock; the annotation below is stale.
//
//wildlint:allow wallclock
func Quiet() int { return 1 }

//wildlint:nonsense
func Odd() int { return 2 }
