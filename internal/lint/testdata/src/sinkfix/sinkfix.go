// Package sinkfix exercises the sink-contract analyzer with local
// stand-ins for the scenario sink registry.
package sinkfix

// Sink mirrors scenario.Sink: the interface already compels Merge;
// the MarshalState/UnmarshalState codec is what the analyzer adds.
type Sink interface {
	Merge(other Sink) error
}

var reg = map[string]func() (Sink, error){}

// RegisterSink mirrors the registry entry point the analyzer matches
// by name.
func RegisterSink(name string, b func() (Sink, error)) { reg[name] = b }

// partialSink has Merge but no state codec: multi-process fan-out
// would fail at runtime on the first sharded run that uses it.
type partialSink struct{}

// Merge implements Sink.
func (*partialSink) Merge(other Sink) error { return nil }

// fullSink implements the complete contract.
type fullSink struct{}

// Merge implements Sink.
func (*fullSink) Merge(other Sink) error { return nil }

// MarshalState implements the fan-out codec.
func (*fullSink) MarshalState() ([]byte, error) { return nil, nil }

// UnmarshalState implements the fan-out codec.
func (*fullSink) UnmarshalState(data []byte) error { return nil }

// embSink inherits the full contract through embedding; the method-set
// check must see the promoted methods.
type embSink struct{ fullSink }

// newPartial is a package-local constructor; the analyzer follows the
// interface-typed call to the concrete return inside.
func newPartial() Sink {
	return &partialSink{} // want `sink type \*sinkfix\.partialSink registered via RegisterSink is missing`
}

func init() {
	RegisterSink("partial", func() (Sink, error) {
		return &partialSink{}, nil // want `sink type \*sinkfix\.partialSink registered via RegisterSink is missing`
	})
	RegisterSink("full", func() (Sink, error) {
		return &fullSink{}, nil
	})
	RegisterSink("embedded", func() (Sink, error) {
		return &embSink{}, nil
	})
	RegisterSink("viaconstructor", func() (Sink, error) {
		return newPartial(), nil
	})
	RegisterSink("nil", func() (Sink, error) {
		return nil, nil
	})
}
