// Package detfix exercises the determinism analyzer: map iteration
// in the deterministic result path and unannotated wall-clock or
// global-rand reads. Its import path sits under repro/internal/sim so
// the map-iteration rule applies.
package detfix

import (
	"math/rand"
	"sort"
	"time"
)

// Totals folds per-app counters in map iteration order — the classic
// silent nondeterminism the golden-pinned path must never contain.
func Totals(counts map[string]int) []int {
	var out []int
	for _, n := range counts { // want `range over map map\[string\]int in the deterministic result path`
		out = append(out, n)
	}
	return out
}

// SortedTotals is the deterministic idiom: an annotated
// order-invariant key collection, a sort, then a walk of the sorted
// slice (not a map range at all).
func SortedTotals(counts map[string]int) []int {
	keys := make([]string, 0, len(counts))
	//wildlint:orderinvariant
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]int, 0, len(keys))
	for _, k := range keys {
		out = append(out, counts[k])
	}
	return out
}

// Stamp reads the wall clock with no annotation anywhere.
func Stamp() int64 {
	return time.Now().UnixNano() // want `time\.Now is wall-clock/global-rand state`
}

// AllowedStamp is deliberate wall-clock code; the annotation on the
// declaration covers the whole body.
//
//wildlint:allow wallclock
func AllowedStamp() int64 {
	return time.Now().UnixNano()
}

// StatementAllowed scopes the exemption to single statements.
func StatementAllowed() time.Duration {
	t0 := time.Now()      //wildlint:allow wallclock
	return time.Since(t0) //wildlint:allow wallclock
}

// Jitter draws from the process-global generator, whose seed is not
// the run's seed.
func Jitter() int {
	return rand.Intn(10) // want `math/rand\.Intn is wall-clock/global-rand state`
}

// SeededJitter draws from an explicitly seeded generator — the
// deterministic alternative the analyzer leaves alone.
func SeededJitter() int {
	return rand.New(rand.NewSource(1)).Intn(10)
}
