// Package fastlanefix exercises the fastlane analyzer against the
// real repro/internal/ithist fast kernel (imported from export data,
// not copied): fast-lane helpers may only be reached from
// FastMode-guarded branches or from fast-lane code.
package fastlanefix

import (
	"time"

	"repro/internal/ithist"
)

type config struct{ FastMode bool }

// BadUnguarded reaches the fast kernel from plain (exact-path) code:
// nothing pins this call behind the opt-in.
func BadUnguarded(h *ithist.Histogram) bool {
	return h.FastCVBelow(2) // want `fast-lane helper FastCVBelow reached outside a FastMode-guarded branch`
}

// BadNegatedGuard guards the wrong arm: the body of !FastMode IS the
// exact path.
func BadNegatedGuard(h *ithist.Histogram, cfg config) bool {
	if !cfg.FastMode {
		return h.FastCVBelow(2) // want `fast-lane helper FastCVBelow reached outside a FastMode-guarded branch`
	}
	return false
}

// GoodGuarded gates the call on the config field directly.
func GoodGuarded(h *ithist.Histogram, cfg config) bool {
	if cfg.FastMode {
		return h.FastCVBelow(2)
	}
	return false
}

// GoodDerivedGuard gates through a local copied from FastMode — the
// hybrid policy's batch-path idiom.
func GoodDerivedGuard(h *ithist.Histogram, cfg config, idles []time.Duration) int {
	fast := cfg.FastMode
	if fast {
		return len(h.DecideSeqFast(idles, 2, 0.5, 2, nil))
	}
	return 0
}

// fastHelper is fast-lane code itself (Fast-named): its callers carry
// the guard, it does not repeat it.
func fastHelper(h *ithist.Histogram) bool {
	return h.FastCVBelow(2)
}

// GoodViaHelper shows the helper pattern end to end.
func GoodViaHelper(h *ithist.Histogram, cfg config) bool {
	if cfg.FastMode {
		return fastHelper(h)
	}
	return false
}
