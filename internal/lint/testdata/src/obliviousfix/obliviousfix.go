// Package obliviousfix exercises the oblivious analyzer with local
// stand-ins for the cluster placement shapes.
package obliviousfix

// View mirrors cluster.View's shape.
type View interface {
	NumNodes() int
	ResidentMB(node int) float64
}

// Footprint mirrors cluster.Footprint.
type Footprint struct{ ID string }

// Bad claims obliviousness but reads live residency directly.
type Bad struct{}

// Oblivious returns constant true, so the analyzer holds Place to it.
func (Bad) Oblivious() bool { return true }

// Place violates the claim in its own body.
func (Bad) Place(app Footprint, view View) int {
	if view.ResidentMB(0) > 0 { // want `placement Bad reports a constant Oblivious\(\) == true but reaches View\.ResidentMB \(via Place\)`
		return 1
	}
	return 0
}

// Chained reaches residency through a helper function.
type Chained struct{}

// Oblivious returns constant true.
func (Chained) Oblivious() bool { return true }

// Place delegates the violation.
func (Chained) Place(app Footprint, view View) int {
	return coldest(view)
}

func coldest(view View) int {
	_ = view.ResidentMB(0) // want `placement Chained reports a constant Oblivious\(\) == true but reaches View\.ResidentMB \(via Place -> coldest\)`
	return 0
}

// Inner makes no obliviousness claim of its own; its residency read
// is only a finding when a constant-true placement delegates to it.
type Inner struct{}

// Place reads residency, legitimately for Inner itself.
func (Inner) Place(app Footprint, view View) int {
	_ = view.ResidentMB(0) // want `placement Wrap reports a constant Oblivious\(\) == true but reaches View\.ResidentMB \(via Place -> Place\)`
	return 0
}

// Wrap claims obliviousness and delegates to Inner — the cross-type
// call the analyzer must follow.
type Wrap struct{}

// Oblivious returns constant true.
func (Wrap) Oblivious() bool { return true }

// Place hands the decision to a view-dependent placement.
func (Wrap) Place(app Footprint, view View) int {
	return Inner{}.Place(app, view)
}

// Good is genuinely oblivious: only the ID hash and the node count.
type Good struct{}

// Oblivious returns constant true, and Place honors it.
func (Good) Oblivious() bool { return true }

// Place never touches residency.
func (Good) Place(app Footprint, view View) int {
	h := 0
	for i := 0; i < len(app.ID); i++ {
		h = h*31 + int(app.ID[i])
	}
	if h < 0 {
		h = -h
	}
	return h % view.NumNodes()
}

// Runtime computes Oblivious() at run time; it promises nothing, so
// its residency read is fine.
type Runtime struct{ static bool }

// Oblivious depends on configuration, not a constant.
func (r Runtime) Oblivious() bool { return r.static }

// Place may consult residency on the non-static path.
func (r Runtime) Place(app Footprint, view View) int {
	if !r.static {
		return int(view.ResidentMB(0))
	}
	return 0
}
