// Package releasefix exercises the release analyzer: pooled values
// must be released on every path or escape to an owner, and
// scratch-owned kernel slices must not escape uncopied.
package releasefix

import "sync"

var pool sync.Pool

func use(v any) {}

// Leak drops the pooled value on the floor.
func Leak() {
	v := pool.Get() // want `sync\.Pool value \(v\) may leak`
	_ = v
}

// DeferPut is the canonical hygiene: acquire, defer the return.
func DeferPut() {
	v := pool.Get()
	defer pool.Put(v)
	use(v)
}

// BranchLeak releases on the fall-through path but not on the early
// return.
func BranchLeak(cond bool) int {
	v := pool.Get() // want `sync\.Pool value \(v\) may leak`
	if cond {
		return 0
	}
	pool.Put(v)
	return 1
}

// BranchClean releases on both paths.
func BranchClean(cond bool) int {
	v := pool.Get()
	if cond {
		pool.Put(v)
		return 0
	}
	pool.Put(v)
	return 1
}

// DeliberateDrop documents an intentional leak (an incompatible
// pooled shape, say) with the checked opt-out.
func DeliberateDrop() {
	v := pool.Get() //wildlint:allow poolleak
	_ = v
}

type holder struct{ v any }

// StowUnowned stores the acquisition into a structure with no
// annotated owner.
func StowUnowned() *holder {
	return &holder{v: pool.Get()} // want `is stored into a structure at acquisition`
}

// StowOwned names the long-lived owner that releases later.
func StowOwned() *holder {
	//wildlint:owner
	return &holder{v: pool.Get()}
}

// Policy and State mirror the policy.Policy / policy.Releasable
// shapes: NewApp is the pooled-constructor signature (one parameter,
// one result).
type Policy struct{}

// State is the pooled per-app state.
type State struct{}

// Release implements the Releasable half of the contract.
func (*State) Release() {}

// NewApp has the pooled-constructor shape the analyzer recognizes.
func (Policy) NewApp(id string) *State { return &State{} }

// AppLeak forgets the early-return path.
func AppLeak(p Policy, cond bool) {
	s := p.NewApp("a") // want `policy state from NewApp \(s\) may leak`
	if cond {
		return
	}
	s.Release()
}

// AppClean defers the release.
func AppClean(p Policy) {
	s := p.NewApp("a")
	defer s.Release()
}

// Scratch mirrors the kernel scratch shape: DecideRuns returns a
// buffer the next call overwrites.
type Scratch struct{ buf []int }

// DecideRuns returns the scratch-owned slice.
func (s *Scratch) DecideRuns(n int) []int { return s.buf[:0] }

// EscapeRuns returns the scratch slice uncopied.
func EscapeRuns(s *Scratch) []int {
	return s.DecideRuns(1) // want `result of Scratch\.DecideRuns is scratch-owned`
}

// CopyRuns is the sanctioned idiom: append copies before the escape.
func CopyRuns(s *Scratch) []int {
	return append([]int(nil), s.DecideRuns(1)...)
}

type runsBox struct{ runs []int }

// VarEscape lets a local holding the scratch slice escape through a
// field store.
func VarEscape(s *Scratch, b *runsBox) {
	runs := s.DecideRuns(1)
	b.runs = runs // want `runs holds a scratch-owned Scratch\.DecideRuns slice`
}

// VarCopy copies before the store.
func VarCopy(s *Scratch, b *runsBox) {
	runs := s.DecideRuns(1)
	b.runs = append([]int(nil), runs...)
}
