// Package plainfix sits outside the deterministic result path: map
// iteration is allowed here without annotation (wall-clock reads
// still are not — that rule is tree-wide, see detfix).
package plainfix

// CountKeys ranges a map freely; nothing here feeds a golden file.
func CountKeys(m map[string]bool) int {
	n := 0
	for range m {
		n++
	}
	return n
}
