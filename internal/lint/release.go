package lint

import (
	"go/ast"
	"go/types"
)

// Release enforces pool hygiene for policy.Releasable state and the
// kernel's scratch-owned run slices:
//
//   - A value acquired from a pool — sync.Pool.Get, or a
//     Policy.NewApp call (whose result may be pooled Releasable
//     state) — must, on every path through the acquiring function,
//     either be released (Release / ReleaseRuns / Pool.Put, including
//     through the `if r, ok := v.(policy.Releasable)` idiom) or
//     escape to an owner: returned, passed to another function, or
//     stored under a //wildlint:owner annotation naming the
//     long-lived owner that releases it later. A deliberate drop
//     (e.g. discarding an incompatible pooled shape) opts out with
//     //wildlint:allow poolleak on the acquiring statement.
//   - The slice returned by Scratch.DecideRuns is scratch-owned and
//     overwritten by the next kernel call: it must not escape the
//     acquiring function (returned, or stored into a field, index,
//     or composite literal) without an append copy.
//
// The analysis is intra-procedural and lenient at the edges it cannot
// see (loops, gotos, closures): it exists to catch the silent-leak
// class — an acquisition with a return path that provably neither
// releases nor hands off.
var Release = &Analyzer{
	Name: "release",
	Doc:  "pooled values must be released on every path or escape to an annotated owner; scratch-owned run slices must not escape uncopied",
	Run:  runRelease,
}

func runRelease(pass *Pass) error {
	for _, f := range pass.Files {
		forEachFuncUnit(f, func(body *ast.BlockStmt) {
			checkReleaseUnit(pass, body)
			checkDecideRunsUnit(pass, body)
		})
	}
	pass.Notes.reportUnused(pass, "owner", "")
	pass.Notes.reportUnused(pass, "allow", "poolleak")
	return nil
}

// walkUnitStack traverses one function unit with an enclosing-node
// stack, not descending into nested function literals (each is its
// own unit).
func walkUnitStack(body *ast.BlockStmt, visit func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		stack = append(stack, n)
		visit(n, stack)
		return true
	})
}

// isAcquireCall recognizes pool acquisitions: sync.Pool.Get and
// Policy.NewApp-shaped methods.
func isAcquireCall(pass *Pass, call *ast.CallExpr) (kind string, ok bool) {
	sel, okSel := call.Fun.(*ast.SelectorExpr)
	if !okSel {
		return "", false
	}
	fn := calleeFunc(pass, sel)
	if fn == nil {
		return "", false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return "", false
	}
	switch fn.Name() {
	case "Get":
		if recvIsSyncPool(sig.Recv().Type()) {
			return "sync.Pool value", true
		}
	case "NewApp":
		if sig.Params().Len() == 1 && sig.Results().Len() == 1 {
			return "policy state from NewApp", true
		}
	}
	return "", false
}

func recvIsSyncPool(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "sync" && n.Obj().Name() == "Pool"
}

// unwrap strips parens and type assertions: `pool.Get().(*T)` is
// still the Get call.
func unwrap(e ast.Expr) ast.Expr {
	for {
		switch w := e.(type) {
		case *ast.ParenExpr:
			e = w.X
		case *ast.TypeAssertExpr:
			e = w.X
		default:
			return e
		}
	}
}

func checkReleaseUnit(pass *Pass, body *ast.BlockStmt) {
	walkUnitStack(body, func(n ast.Node, stack []ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		kind, ok := isAcquireCall(pass, call)
		if !ok {
			return
		}
		if ann := pass.Notes.At(pass.Fset, call.Pos(), "allow", "poolleak"); ann != nil {
			return
		}
		// Classify the acquisition by its enclosing context: the
		// chain of nodes between the call and its statement.
		var stmt ast.Stmt
		var chain []ast.Node // call's ancestors up to (excluding) stmt
		for i := len(stack) - 2; i >= 0; i-- {
			if s, ok := stack[i].(ast.Stmt); ok {
				stmt = s
				break
			}
			chain = append(chain, stack[i])
		}
		if stmt == nil {
			return
		}
		for _, anc := range chain {
			switch anc := anc.(type) {
			case *ast.ParenExpr, *ast.TypeAssertExpr:
				continue
			case *ast.CallExpr:
				// Argument of another call: handed off to the callee.
				return
			case *ast.CompositeLit:
				_ = anc
				// Stored into a structure at birth: needs an owner.
				if pass.Notes.At(pass.Fset, stmt.Pos(), "owner", "") == nil {
					pass.Reportf(call.Pos(), "%s is stored into a structure at acquisition; annotate the owning store //wildlint:owner (the owner must release it later), or release it locally", kind)
				}
				return
			default:
				// Other expression contexts (unary &, slices, ...):
				// treated as consumption by the surrounding statement.
			}
		}
		switch s := stmt.(type) {
		case *ast.ReturnStmt:
			return // ownership passes to the caller
		case *ast.AssignStmt:
			obj := acquireTarget(pass, s, call)
			if obj == nil {
				pass.Reportf(call.Pos(), "%s is discarded at acquisition; release it or drop the call", kind)
				return
			}
			if !releasedOnAllPaths(pass, body, stmt, stack, obj) {
				pass.Reportf(call.Pos(), "%s (%s) may leak: not released or handed to an owner on every path; call Release/Put (defer recommended), store it under //wildlint:owner, or annotate a deliberate drop //wildlint:allow poolleak", kind, obj.Name())
			}
		case *ast.ExprStmt:
			pass.Reportf(call.Pos(), "%s is discarded at acquisition; release it or drop the call", kind)
		case *ast.DeclStmt:
			if obj := declTarget(pass, s, call); obj != nil {
				if !releasedOnAllPaths(pass, body, stmt, stack, obj) {
					pass.Reportf(call.Pos(), "%s (%s) may leak: not released or handed to an owner on every path; call Release/Put (defer recommended), store it under //wildlint:owner, or annotate a deliberate drop //wildlint:allow poolleak", kind, obj.Name())
				}
			}
		}
	})
}

// acquireTarget finds the variable an acquisition is bound to in an
// assignment, nil when discarded.
func acquireTarget(pass *Pass, s *ast.AssignStmt, call *ast.CallExpr) types.Object {
	idx := 0
	if len(s.Rhs) == len(s.Lhs) {
		for i, r := range s.Rhs {
			if unwrap(r) == call || r == call {
				idx = i
				break
			}
		}
	}
	if idx >= len(s.Lhs) {
		return nil
	}
	id, ok := s.Lhs[idx].(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj := pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Uses[id]
}

func declTarget(pass *Pass, s *ast.DeclStmt, call *ast.CallExpr) types.Object {
	gd, ok := s.Decl.(*ast.GenDecl)
	if !ok {
		return nil
	}
	for _, sp := range gd.Specs {
		vs, ok := sp.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for i, v := range vs.Values {
			if (unwrap(v) == call || v == call) && i < len(vs.Names) && vs.Names[i].Name != "_" {
				return pass.TypesInfo.Defs[vs.Names[i]]
			}
		}
	}
	return nil
}

// releasedOnAllPaths checks that from the acquiring statement onward,
// every path through the function releases obj or lets it escape.
func releasedOnAllPaths(pass *Pass, body *ast.BlockStmt, acquire ast.Stmt, stack []ast.Node, obj types.Object) bool {
	tr := &tracker{pass: pass, objs: map[types.Object]bool{obj: true}}
	tr.expandAliases(body)

	// Continuations from the acquire statement outward: for each
	// enclosing block on the stack, the statements after the one we
	// came from.
	cont := func() bool { return false } // function end: obj leaks
	var build func(level int, inner ast.Stmt) func() bool
	build = func(level int, inner ast.Stmt) func() bool {
		for i := level; i >= 0; i-- {
			if blk, ok := stack[i].(*ast.BlockStmt); ok {
				idx := -1
				for j, s := range blk.List {
					if s == inner || containsNode(s, inner) {
						idx = j
						break
					}
				}
				rest := cont
				if i > 0 {
					rest = build(i-1, blk)
				}
				if idx < 0 {
					return rest
				}
				tail := blk.List[idx+1:]
				return func() bool { return tr.satSeq(tail, rest) }
			}
		}
		return cont
	}

	// Locate the acquire statement's position on the stack.
	var stmtLevel int
	for i := len(stack) - 1; i >= 0; i-- {
		if stack[i] == acquire {
			stmtLevel = i
			break
		}
	}
	after := build(stmtLevel-1, acquire)

	// The acquire statement itself may be the init of an if/for/
	// switch: its branches run next and must satisfy too.
	for i := stmtLevel - 1; i >= 0; i-- {
		switch s := stack[i].(type) {
		case *ast.IfStmt:
			if s.Init == acquire {
				outer := build(i-1, s)
				return tr.satStmt(s, outer)
			}
		case *ast.SwitchStmt:
			if s.Init == acquire {
				outer := build(i-1, s)
				return tr.satStmt(s, outer)
			}
		case *ast.BlockStmt:
		default:
			continue
		}
		break
	}
	return after()
}

func containsNode(root, target ast.Node) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if n == target {
			found = true
		}
		return !found
	})
	return found
}

// tracker is the per-acquisition path analysis state.
type tracker struct {
	pass *Pass
	objs map[types.Object]bool // the value and its aliases
}

// expandAliases adds locals bound from the tracked value (`w := v`,
// `w := v.(T)`, `w, ok := v.(T)`) to the alias set, to fixpoint.
func (tr *tracker) expandAliases(body *ast.BlockStmt) {
	for {
		grew := false
		ast.Inspect(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Rhs) != 1 {
				return true
			}
			src, ok := unwrap(as.Rhs[0]).(*ast.Ident)
			if !ok || !tr.isTracked(src) {
				return true
			}
			if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
				obj := tr.pass.TypesInfo.Defs[id]
				if obj == nil {
					obj = tr.pass.TypesInfo.Uses[id]
				}
				if obj != nil && !tr.objs[obj] {
					tr.objs[obj] = true
					grew = true
				}
			}
			return true
		})
		if !grew {
			return
		}
	}
}

func (tr *tracker) isTracked(id *ast.Ident) bool {
	if obj := tr.pass.TypesInfo.Uses[id]; obj != nil && tr.objs[obj] {
		return true
	}
	if obj := tr.pass.TypesInfo.Defs[id]; obj != nil && tr.objs[obj] {
		return true
	}
	return false
}

// satSeq: every path through stmts (then cont) releases or escapes.
func (tr *tracker) satSeq(stmts []ast.Stmt, cont func() bool) bool {
	if len(stmts) == 0 {
		return cont()
	}
	rest := func() bool { return tr.satSeq(stmts[1:], cont) }
	return tr.satStmt(stmts[0], rest)
}

func (tr *tracker) satStmt(s ast.Stmt, cont func() bool) bool {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return tr.satSeq(s.List, cont)
	case *ast.LabeledStmt:
		return tr.satStmt(s.Stmt, cont)
	case *ast.IfStmt:
		then := tr.satSeq(s.Body.List, cont)
		if !then {
			return false
		}
		if s.Else != nil {
			return tr.satStmt(s.Else, cont)
		}
		return cont()
	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		var clauses []ast.Stmt
		var hasDefault bool
		if sw, ok := s.(*ast.SwitchStmt); ok {
			clauses = sw.Body.List
		} else {
			clauses = s.(*ast.TypeSwitchStmt).Body.List
		}
		for _, c := range clauses {
			cc := c.(*ast.CaseClause)
			if cc.List == nil {
				hasDefault = true
			}
			if !tr.satSeq(cc.Body, cont) {
				return false
			}
		}
		if !hasDefault {
			return cont()
		}
		return true
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if !tr.satSeq(c.(*ast.CommClause).Body, cont) {
				return false
			}
		}
		return len(s.Body.List) > 0
	case *ast.ForStmt:
		if tr.stmtSatisfies(s.Body) {
			return true
		}
		return cont()
	case *ast.RangeStmt:
		if tr.stmtSatisfies(s.Body) {
			return true
		}
		return cont()
	case *ast.ReturnStmt:
		return tr.stmtSatisfies(s) // returning the value is the escape
	case *ast.BranchStmt:
		return true // goto/break/continue: lenient
	default:
		if tr.stmtSatisfies(s) {
			return true
		}
		if isPathTerminator(tr.pass, s) {
			return true
		}
		return cont()
	}
}

// stmtSatisfies reports whether the statement subtree (descending
// into closures — a deferred closure may do the releasing) releases
// the tracked value or lets it escape legitimately.
func (tr *tracker) stmtSatisfies(s ast.Stmt) bool {
	ok := false
	ast.Inspect(s, func(n ast.Node) bool {
		if ok {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if tr.callReleases(n) || tr.callTakes(n) {
				ok = true
				return false
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if tr.exprUses(r) {
					ok = true
					return false
				}
			}
		case *ast.SendStmt:
			if tr.exprUses(n.Value) {
				ok = true
				return false
			}
		case *ast.CompositeLit:
			for _, e := range n.Elts {
				if tr.exprUses(e) {
					// Stored into a structure: legitimate only under
					// an owner annotation on this statement.
					if tr.pass.Notes.At(tr.pass.Fset, s.Pos(), "owner", "") != nil {
						ok = true
					}
					return false
				}
			}
		case *ast.AssignStmt:
			for i, r := range n.Rhs {
				if _, isIdent := unwrap(r).(*ast.Ident); isIdent && tr.exprUses(r) && i < len(n.Lhs) {
					if _, plain := n.Lhs[i].(*ast.Ident); !plain {
						// Field/index store: needs an owner.
						if tr.pass.Notes.At(tr.pass.Fset, s.Pos(), "owner", "") != nil {
							ok = true
						}
						return false
					}
				}
			}
		}
		return true
	})
	return ok
}

// callReleases: v.Release(), v.ReleaseRuns(), pool.Put(v).
func (tr *tracker) callReleases(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "Release", "ReleaseRuns":
		if id, ok := unwrap(sel.X).(*ast.Ident); ok && tr.isTracked(id) {
			return true
		}
	case "Put":
		for _, a := range call.Args {
			if tr.exprUses(a) {
				return true
			}
		}
	}
	return false
}

// callTakes: the tracked value passed as an argument — ownership
// handed to the callee.
func (tr *tracker) callTakes(call *ast.CallExpr) bool {
	for _, a := range call.Args {
		if tr.exprUses(a) {
			return true
		}
	}
	return false
}

// exprUses reports whether e mentions a tracked identifier (through
// parens, type assertions, and unary &).
func (tr *tracker) exprUses(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		return tr.isTracked(e)
	case *ast.ParenExpr:
		return tr.exprUses(e.X)
	case *ast.TypeAssertExpr:
		return tr.exprUses(e.X)
	case *ast.UnaryExpr:
		return tr.exprUses(e.X)
	case *ast.KeyValueExpr:
		return tr.exprUses(e.Value)
	}
	return false
}

// isPathTerminator recognizes statements after which the function
// does not return normally: panic, os.Exit, runtime.Goexit,
// log.Fatal*.
func isPathTerminator(pass *Pass, s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if b, ok := pass.TypesInfo.Uses[fun].(*types.Builtin); ok && b.Name() == "panic" {
			return true
		}
	case *ast.SelectorExpr:
		fn := calleeFunc(pass, fun)
		if fn == nil || fn.Pkg() == nil {
			return false
		}
		switch fn.Pkg().Path() {
		case "os":
			return fn.Name() == "Exit"
		case "runtime":
			return fn.Name() == "Goexit"
		case "log":
			return fn.Name() == "Fatal" || fn.Name() == "Fatalf" || fn.Name() == "Fatalln"
		}
	}
	return false
}

// checkDecideRunsUnit flags Scratch.DecideRuns results escaping the
// function without a copy.
func checkDecideRunsUnit(pass *Pass, body *ast.BlockStmt) {
	walkUnitStack(body, func(n ast.Node, stack []ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "DecideRuns" {
			return
		}
		fn := calleeFunc(pass, sel)
		if fn == nil {
			return
		}
		if sig, _ := fn.Type().(*types.Signature); sig == nil || sig.Recv() == nil {
			return
		}
		// Walk the context chain: an append(...) anywhere between the
		// call and its statement is the sanctioned copy idiom.
		var stmt ast.Stmt
		var chain []ast.Node
		for i := len(stack) - 2; i >= 0; i-- {
			if s, ok := stack[i].(ast.Stmt); ok {
				stmt = s
				break
			}
			chain = append(chain, stack[i])
		}
		for _, anc := range chain {
			if c, ok := anc.(*ast.CallExpr); ok && isAppend(pass, c) {
				return
			}
		}
		switch s := stmt.(type) {
		case *ast.ReturnStmt:
			pass.Reportf(call.Pos(), "result of Scratch.DecideRuns is scratch-owned and overwritten by the next kernel call; copy before it escapes: append([]policy.DecisionRun(nil), ...)")
		case *ast.AssignStmt:
			obj := acquireTarget(pass, s, call)
			if obj == nil {
				// Direct store into a field or index.
				if len(s.Lhs) > 0 {
					if _, plain := s.Lhs[0].(*ast.Ident); !plain {
						pass.Reportf(call.Pos(), "result of Scratch.DecideRuns is scratch-owned and overwritten by the next kernel call; copy before it escapes: append([]policy.DecisionRun(nil), ...)")
					}
				}
				return
			}
			checkRunsVarEscapes(pass, body, obj)
		}
	})
}

// checkRunsVarEscapes flags a local holding an uncopied DecideRuns
// result escaping via return, field/index store, or composite
// literal.
func checkRunsVarEscapes(pass *Pass, body *ast.BlockStmt, obj types.Object) {
	tracked := func(e ast.Expr) bool {
		id, ok := unwrap(e).(*ast.Ident)
		if !ok {
			return false
		}
		o := pass.TypesInfo.Uses[id]
		return o != nil && o == obj
	}
	walkUnitStack(body, func(n ast.Node, stack []ast.Node) {
		report := func(pos ast.Node) {
			pass.Reportf(pos.Pos(), "%s holds a scratch-owned Scratch.DecideRuns slice and escapes the function uncopied; copy with append([]policy.DecisionRun(nil), %s...)", obj.Name(), obj.Name())
		}
		inAppend := func(stack []ast.Node) bool {
			for _, a := range stack {
				if c, ok := a.(*ast.CallExpr); ok && isAppend(pass, c) {
					return true
				}
			}
			return false
		}
		switch n := n.(type) {
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if tracked(r) && !inAppend(stack) {
					report(r)
				}
			}
		case *ast.AssignStmt:
			for i, r := range n.Rhs {
				if tracked(r) && i < len(n.Lhs) && !inAppend(stack) {
					if _, plain := n.Lhs[i].(*ast.Ident); !plain {
						report(r)
					}
				}
			}
		case *ast.CompositeLit:
			for _, e := range n.Elts {
				if tracked(e) && !inAppend(stack) {
					report(e)
				}
			}
		}
	})
}

func isAppend(pass *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}
