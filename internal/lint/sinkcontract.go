package lint

import (
	"go/ast"
	"go/types"
)

// SinkContract keeps multi-process fan-out complete: every concrete
// sink type registered through RegisterSink / RegisterScenarioSink
// must implement Merge (shard aggregation) and the MarshalState /
// UnmarshalState codec. The Sink interface compels Merge at compile
// time already, but the codec is only discovered dynamically by
// RunSweepProcs (internal/scenario/procs.go) — a sink without it
// breaks process fan-out at runtime, on the first -fanout run that
// uses it. The analyzer resolves the concrete types a registered
// builder returns (following direct calls to package-local
// constructors) and checks their method sets; builders whose result
// cannot be resolved statically (e.g. forwarding a caller-supplied
// builder) are skipped.
var SinkContract = &Analyzer{
	Name: "sinkcontract",
	Doc:  "types registered via RegisterSink/RegisterScenarioSink must implement Merge and the MarshalState/UnmarshalState codec",
	Run:  runSinkContract,
}

func runSinkContract(pass *Pass) error {
	decls := packageFuncDecls(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) < 2 {
				return true
			}
			name := calleeName(pass, call)
			if name != "RegisterSink" && name != "RegisterScenarioSink" {
				return true
			}
			builder := call.Args[len(call.Args)-1]
			for _, ret := range builderReturns(pass, decls, builder, 0) {
				checkSinkType(pass, name, ret)
			}
			return true
		})
	}
	return nil
}

func calleeName(pass *Pass, call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fn, ok := pass.TypesInfo.Uses[fun].(*types.Func); ok {
			return fn.Name()
		}
	case *ast.SelectorExpr:
		if fn := calleeFunc(pass, fun); fn != nil {
			return fn.Name()
		}
	}
	return ""
}

// builderReturns collects the first-result expressions a builder can
// return: the returns of a func literal, or of a package-local
// function the builder names.
func builderReturns(pass *Pass, decls map[*types.Func]*ast.FuncDecl, builder ast.Expr, depth int) []ast.Expr {
	if depth > 3 {
		return nil
	}
	var body *ast.BlockStmt
	switch b := builder.(type) {
	case *ast.FuncLit:
		body = b.Body
	case *ast.Ident:
		if fn, ok := pass.TypesInfo.Uses[b].(*types.Func); ok {
			if fd, ok := decls[fn]; ok {
				body = fd.Body
			}
		}
	}
	if body == nil {
		return nil
	}
	var out []ast.Expr
	inspectUnit(body, func(n ast.Node) {
		if ret, ok := n.(*ast.ReturnStmt); ok && len(ret.Results) >= 1 {
			out = append(out, ret.Results[0])
		}
	})
	return out
}

// checkSinkType resolves the concrete type of one returned sink
// expression and reports missing contract methods.
func checkSinkType(pass *Pass, regName string, expr ast.Expr) {
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok || tv.Type == nil || tv.IsNil() {
		return
	}
	t := tv.Type
	if types.IsInterface(t) {
		// Interface-typed return: follow a direct constructor call's
		// own returns; anything else is out of static reach.
		if call, ok := expr.(*ast.CallExpr); ok {
			decls := packageFuncDecls(pass)
			for _, inner := range builderReturns(pass, decls, call.Fun, 1) {
				checkSinkType(pass, regName, inner)
			}
		}
		return
	}
	var missing []string
	if !hasMethod(t, "Merge", nil, nil) {
		missing = append(missing, "Merge")
	}
	byteSlice := types.NewSlice(types.Typ[types.Byte])
	errType := types.Universe.Lookup("error").Type()
	if !hasMethod(t, "MarshalState", nil, []types.Type{byteSlice, errType}) {
		missing = append(missing, "MarshalState() ([]byte, error)")
	}
	if !hasMethod(t, "UnmarshalState", []types.Type{byteSlice}, []types.Type{errType}) {
		missing = append(missing, "UnmarshalState([]byte) error")
	}
	if len(missing) == 0 {
		return
	}
	pass.Reportf(expr.Pos(), "sink type %s registered via %s is missing %v: without the state codec, RunSweepProcs (multi-process shard fan-out) cannot ship this sink's state across workers — see internal/scenario/procs.go", t.String(), regName, missing)
}

// hasMethod reports whether t (or *t) has a method with the given
// name; params/results, when non-nil, must match exactly (identical
// types, no variadic).
func hasMethod(t types.Type, name string, params, results []types.Type) bool {
	ms := types.NewMethodSet(t)
	sel := ms.Lookup(nil, name)
	if sel == nil {
		if _, isPtr := t.(*types.Pointer); !isPtr && !types.IsInterface(t) {
			sel = types.NewMethodSet(types.NewPointer(t)).Lookup(nil, name)
		}
	}
	if sel == nil {
		return false
	}
	fn, ok := sel.Obj().(*types.Func)
	if !ok {
		return false
	}
	sig := fn.Type().(*types.Signature)
	if params != nil {
		if sig.Params().Len() != len(params) || sig.Variadic() {
			return false
		}
		for i, p := range params {
			if !types.Identical(sig.Params().At(i).Type(), p) {
				return false
			}
		}
	}
	if results != nil {
		if sig.Results().Len() != len(results) {
			return false
		}
		for i, r := range results {
			if !types.Identical(sig.Results().At(i).Type(), r) {
				return false
			}
		}
	}
	return true
}
