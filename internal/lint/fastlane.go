package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// fastKernelPkg is the package hosting the fast-lane kernel: the
// opt-in (exact=off) reimplementations that are licensed to diverge
// from the golden-pinned exact path at CV ties and percentile
// rounding boundaries.
const fastKernelPkg = "repro/internal/ithist"

// Fastlane enforces the exact/fast split: the exact decision path is
// pinned bit-for-bit by the golden suites, so a fast-lane helper
// reached from it silently un-pins the goldens. Every use of a
// fast-lane function (a function in the fast kernel package whose
// name carries the Fast marker) must therefore sit either inside
// fast-lane code itself, or inside the body of an if whose condition
// consults FastMode — directly (cfg.FastMode) or through a local
// derived from it (fast := cfg.FastMode). A negated guard
// (if !cfg.FastMode { ... }) does not count: its body IS the exact
// path.
var Fastlane = &Analyzer{
	Name: "fastlane",
	Doc:  "fast-lane kernel helpers must only be reached from FastMode-guarded branches or fast-lane code",
	Run:  runFastlane,
}

// isFastName reports whether the function name carries the fast-lane
// marker (FastCVBelow, DecideSeqFast, decideSeqFastInt, fastCVBelow).
func isFastName(name string) bool {
	return strings.Contains(name, "Fast") || strings.HasPrefix(name, "fast")
}

// isFastLaneFunc reports whether fn is a fast-lane kernel entry.
func isFastLaneFunc(fn *types.Func) bool {
	return fn.Pkg() != nil && fn.Pkg().Path() == fastKernelPkg && isFastName(fn.Name())
}

func runFastlane(pass *Pass) error {
	for _, f := range pass.Files {
		derived := fastModeDerived(pass, f)
		walkStack(f, func(n ast.Node, stack []ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
			if fn == nil || !isFastLaneFunc(fn) {
				return true
			}
			if enclosingFastFunc(stack) || guardedByFastMode(pass, stack, derived) {
				return true
			}
			pass.Reportf(id.Pos(), "fast-lane helper %s reached outside a FastMode-guarded branch: the exact path is pinned by the golden suites; gate the call with `if cfg.FastMode { ... }` or move the caller into fast-lane code (Fast-named)", fn.Name())
			return true
		})
	}
	return nil
}

// fastModeDerived collects the objects assigned from an expression
// that mentions FastMode (fast := a.cfg.FastMode), so one-hop derived
// guards are recognized. Deeper chains are not traced; guard on the
// config field or its direct copy.
func fastModeDerived(pass *Pass, f *ast.File) map[types.Object]bool {
	derived := map[types.Object]bool{}
	mark := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok || !mentionsFastMode(pass, rhs, nil) {
			return
		}
		if obj := pass.TypesInfo.Defs[id]; obj != nil {
			derived[obj] = true
		} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
			derived[obj] = true
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					mark(n.Lhs[i], n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) == len(n.Values) {
				for i := range n.Names {
					mark(n.Names[i], n.Values[i])
				}
			}
		}
		return true
	})
	return derived
}

// mentionsFastMode reports whether expr references FastMode
// positively: a selector or identifier of that name, or (when derived
// is non-nil) a local previously marked as copied from one. Mentions
// under a negation (!cfg.FastMode) do not count — the branch they
// guard is the exact path.
func mentionsFastMode(pass *Pass, expr ast.Expr, derived map[types.Object]bool) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.NOT {
				return false
			}
		case *ast.SelectorExpr:
			if n.Sel.Name == "FastMode" {
				found = true
			}
		case *ast.Ident:
			if n.Name == "FastMode" {
				found = true
			} else if derived != nil {
				if obj := pass.TypesInfo.Uses[n]; obj != nil && derived[obj] {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// enclosingFastFunc reports whether the use sits inside a Fast-named
// function declaration — fast-lane code calling fast-lane code.
func enclosingFastFunc(stack []ast.Node) bool {
	for _, n := range stack {
		if fd, ok := n.(*ast.FuncDecl); ok && isFastName(fd.Name.Name) {
			return true
		}
	}
	return false
}

// guardedByFastMode reports whether the use sits in the positive body
// of an if whose condition mentions FastMode. The else branch of such
// an if is the exact path and does not count.
func guardedByFastMode(pass *Pass, stack []ast.Node, derived map[types.Object]bool) bool {
	for i, n := range stack {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			continue
		}
		if i+1 < len(stack) && stack[i+1] == ifs.Body && mentionsFastMode(pass, ifs.Cond, derived) {
			return true
		}
	}
	return false
}
