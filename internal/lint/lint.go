package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// knownAnnotation reports whether the annotation's verb and argument
// are in the documented grammar.
func knownAnnotation(ann *Annotation) bool {
	switch ann.Verb {
	case "orderinvariant", "owner":
		return ann.Arg == ""
	case "allow":
		return ann.Arg == "wallclock" || ann.Arg == "poolleak"
	}
	return false
}

// Analyzer is one named check. It mirrors the shape of
// golang.org/x/tools/go/analysis.Analyzer so the suite can migrate to
// the real multichecker wholesale if the dependency ever lands.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -run filters.
	Name string
	// Doc is a one-line summary of the contract enforced.
	Doc string
	// Run analyzes one package, reporting findings via pass.Reportf.
	Run func(pass *Pass) error
}

// Diagnostic is one finding, positioned in the loaded FileSet.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Notes indexes the package's wildlint annotations; analyzers
	// consult it for opt-outs and report the annotations of their
	// verbs that suppressed nothing.
	Notes *Notes

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// RunAnalyzers applies every analyzer to every package and returns
// the findings sorted by position (file, line, column).
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		notes := collectNotes(pkg.Fset, pkg.Files)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Notes:     notes,
				diags:     &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.PkgPath, err)
			}
		}
		// A typo'd annotation would otherwise silently suppress
		// nothing; reject verbs outside the documented grammar.
		for _, ann := range notes.all {
			if !knownAnnotation(ann) {
				diags = append(diags, Diagnostic{
					Analyzer: "wildlint",
					Pos:      pkg.Fset.Position(ann.Pos),
					Message: fmt.Sprintf("unknown wildlint annotation %q; the grammar is "+
						"orderinvariant | allow wallclock | allow poolleak | owner (see internal/lint)",
						strings.TrimSpace(ann.Verb+" "+ann.Arg)),
				})
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// All returns the full wildlint suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{Determinism, Fastlane, Oblivious, Release, SinkContract, SpecParams}
}

// ByName resolves a comma-separable analyzer name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// walkStack traverses the file like ast.Inspect but hands the visitor
// the stack of enclosing nodes (outermost first, current node last).
func walkStack(root ast.Node, visit func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if !visit(n, stack) {
			// Still track the pop for this node.
			return true
		}
		return true
	})
}

// enclosingFuncs returns the function declarations and literals on
// the stack, innermost last.
func enclosingFuncs(stack []ast.Node) []ast.Node {
	var fns []ast.Node
	for _, n := range stack {
		switch n.(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			fns = append(fns, n)
		}
	}
	return fns
}
