// Package lint is wildlint: a static-analysis suite that enforces
// this repository's semantic contracts at compile time. The contracts
// it checks otherwise live only in doc comments and runtime tests —
// the Oblivious placement rule is a runtime panic, pool hygiene an
// AllocsPerRun regression, sink fan-out completeness nothing at all.
// Encoding them as analyzers keeps every future change honest on
// every push.
//
// The six analyzers:
//
//   - determinism: flags `range` over a map inside the deterministic
//     result path (internal/sim, internal/cluster, internal/metrics,
//     internal/scenario) — map iteration order is randomized per run,
//     so any accumulation that observes it breaks bit-identical
//     results. It also flags wall-clock reads (time.Now, time.Since,
//     time.Until) and the global math/rand functions anywhere in the
//     tree: results must depend only on the trace and the seed.
//   - fastlane: the opt-in fast kernel (internal/ithist's Fast-named
//     helpers, behind hybrid?exact=off) is licensed to diverge from
//     the golden-pinned exact path; a fast helper reached from
//     unguarded code would silently un-pin the goldens. Every use
//     must sit inside fast-lane (Fast-named) code or the positive
//     body of an if on FastMode (directly or via a one-hop local
//     copy).
//   - oblivious: a placement whose Oblivious() method returns a
//     constant true promises that Place never consults
//     View.ResidentMB (internal/cluster/placement.go). The engine
//     enforces this at runtime with a panicking view during
//     pre-assignment; this analyzer proves it at compile time by
//     walking Place's intra-package static call graph and rejecting
//     any reachable ResidentMB method call or method value.
//   - release: pool hygiene for policy.Releasable state and the
//     kernel's scratch-owned run slices. A value acquired from a pool
//     (sync.Pool.Get or a Policy.NewApp call) must, on every path
//     through the acquiring function, either be released
//     (Release/ReleaseRuns/Pool.Put, including via the
//     `if r, ok := v.(policy.Releasable)` idiom) or escape to an
//     owner (returned, passed along, or stored under a
//     //wildlint:owner annotation). Scratch.DecideRuns results must
//     not escape the acquiring function without a copy.
//   - sinkcontract: every concrete sink type registered through
//     RegisterSink / RegisterScenarioSink must implement Merge and
//     the MarshalState/UnmarshalState codec. Merge is compelled by
//     the Sink interface, but the codec is only discovered at runtime
//     by the multi-process fan-out (internal/scenario/procs.go) — a
//     sink without it silently breaks RunSweepProcs.
//   - specparams: every spec factory built on internal/spec must
//     check Params.Unused() in the function that calls spec.Parse,
//     so unknown-key errors stay uniform across policies, placements,
//     sources and sinks.
//
// # Annotation grammar
//
// Opt-outs are explicit, minimal, and checked: an annotation that
// suppresses nothing is itself a diagnostic ("unused wildlint
// annotation"), so stale allowances cannot linger. An annotation is a
// directive comment — no space after the slashes — placed either on
// the line directly above the construct it governs or trailing on the
// same line:
//
//	//wildlint:orderinvariant
//		The next `range` statement over a map is order-invariant
//		(e.g. a commutative fold such as summing counters) and may
//		iterate in map order. Checked by: determinism.
//
//	//wildlint:allow wallclock
//		The next statement — or, when placed on a func declaration,
//		the whole function — is intentionally wall-clock code
//		(soak harnesses, progress timers, latency measurement).
//		Checked by: determinism.
//
//	//wildlint:allow poolleak
//		The acquisition in the next statement may drop the pooled
//		value on some path (e.g. discarding an incompatible pooled
//		shape and building fresh). Checked by: release.
//
//	//wildlint:owner
//		The store in this statement transfers ownership of a pooled
//		value to a long-lived owner that releases it later (e.g. the
//		serve.Controller's per-app entries, released by
//		Controller.Release). Checked by: release.
//
// # Running
//
//	go run ./cmd/wildlint ./...
//
// exits 0 when the tree is clean, 1 with file:line:col diagnostics
// otherwise. CI runs it in the lint job on every push.
//
// # Implementation notes
//
// The framework mirrors golang.org/x/tools/go/analysis (Analyzer,
// Pass, analysistest-style fixtures with `// want` expectations) but
// is self-contained: this module builds offline with no external
// dependencies, so the driver loads packages with `go list -export
// -deps -json` and type-checks against the gc export data via
// go/importer's lookup hook — the same mechanism x/tools' drivers
// use. Analyzers are intra-package and syntax+types based: dynamic
// calls through function values are not traced (the oblivious and
// release analyzers document this), which has not been a limitation
// on this codebase's shapes.
package lint
