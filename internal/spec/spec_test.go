package spec

import (
	"reflect"
	"testing"
	"time"
)

// TestKnownTracksAccessedKeys pins that Known reports every key a
// typed accessor asked for — present in the query or not — so
// registries can list a builder's vocabulary in unknown-key errors.
func TestKnownTracksAccessedKeys(t *testing.T) {
	p, err := Parse("ka=10m&typo=1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Duration("ka", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Bool("absent", true); err != nil {
		t.Fatal(err)
	}
	if got, want := p.Known(), []string{"absent", "ka"}; !reflect.DeepEqual(got, want) {
		t.Errorf("Known() = %v, want %v", got, want)
	}
	if got, want := p.Unused(), []string{"typo"}; !reflect.DeepEqual(got, want) {
		t.Errorf("Unused() = %v, want %v", got, want)
	}
}

// TestKnownEmptyBeforeAccess pins the zero state: no accessor calls,
// no known keys.
func TestKnownEmptyBeforeAccess(t *testing.T) {
	p, err := Parse("a=1")
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Known(); len(got) != 0 {
		t.Errorf("Known() before any accessor = %v, want empty", got)
	}
}

// TestAccessorsStillConsume pins that adding known-key tracking did
// not change the consume semantics Unused depends on.
func TestAccessorsStillConsume(t *testing.T) {
	p, err := Parse("d=5m&f=1.5&i=3&b=on&s=x&u=7&l=1:2")
	if err != nil {
		t.Fatal(err)
	}
	if d, err := p.Duration("d", 0); err != nil || d != 5*time.Minute {
		t.Errorf("Duration = %v, %v", d, err)
	}
	if f, err := p.Float("f", 0); err != nil || f != 1.5 {
		t.Errorf("Float = %v, %v", f, err)
	}
	if i, err := p.Int("i", 0); err != nil || i != 3 {
		t.Errorf("Int = %v, %v", i, err)
	}
	if b, err := p.Bool("b", false); err != nil || !b {
		t.Errorf("Bool = %v, %v", b, err)
	}
	if s := p.String("s", ""); s != "x" {
		t.Errorf("String = %v", s)
	}
	if u, err := p.Uint64("u", 0); err != nil || u != 7 {
		t.Errorf("Uint64 = %v, %v", u, err)
	}
	if l, err := p.Floats("l", nil); err != nil || !reflect.DeepEqual(l, []float64{1, 2}) {
		t.Errorf("Floats = %v, %v", l, err)
	}
	if left := p.Unused(); len(left) != 0 {
		t.Errorf("Unused() = %v, want empty", left)
	}
}
