// Package spec is the shared machinery behind every component
// registry's configuration grammar: a component spec is
//
//	name?key=value&key=value
//
// with URL query syntax after the name — "hybrid?cv=2&range=4h" for a
// policy, "binpack?order=invocations" for a placement,
// "coldstart?q=50,75,99" for a metrics sink. Params carries the parsed
// parameters to a builder with typed accessors that record which keys
// were consumed, so a registry can reject specs with leftover
// (misspelled) keys — a typo fails fast instead of silently
// configuring the default.
package spec

import (
	"fmt"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Split splits a component spec into its registry name and raw query
// ("hybrid?cv=2" -> "hybrid", "cv=2"). A spec without '?' is all name.
func Split(s string) (name, query string) {
	if i := strings.IndexByte(s, '?'); i >= 0 {
		return s[:i], s[i+1:]
	}
	return s, ""
}

// Parse parses a raw query string into Params.
func Parse(query string) (*Params, error) {
	vals, err := url.ParseQuery(query)
	if err != nil {
		return nil, err
	}
	return &Params{vals: vals, used: map[string]bool{}}, nil
}

// Params carries a spec's parsed parameters to a builder. Typed
// accessors record which keys were consumed; registries reject specs
// with leftover (misspelled) keys afterwards via Unused.
type Params struct {
	vals  url.Values
	used  map[string]bool
	known map[string]bool
}

// Duration returns the named parameter parsed by time.ParseDuration,
// or def when absent.
func (p *Params) Duration(key string, def time.Duration) (time.Duration, error) {
	s, ok := p.take(key)
	if !ok {
		return def, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("parameter %s: %w", key, err)
	}
	return d, nil
}

// Float returns the named float parameter, or def when absent.
func (p *Params) Float(key string, def float64) (float64, error) {
	s, ok := p.take(key)
	if !ok {
		return def, nil
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("parameter %s: %w", key, err)
	}
	return f, nil
}

// Int returns the named integer parameter, or def when absent.
func (p *Params) Int(key string, def int) (int, error) {
	s, ok := p.take(key)
	if !ok {
		return def, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("parameter %s: %w", key, err)
	}
	return n, nil
}

// Uint64 returns the named unsigned integer parameter, or def when
// absent.
func (p *Params) Uint64(key string, def uint64) (uint64, error) {
	s, ok := p.take(key)
	if !ok {
		return def, nil
	}
	n, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("parameter %s: %w", key, err)
	}
	return n, nil
}

// Bool returns the named boolean parameter (true/false, on/off, 1/0,
// yes/no), or def when absent.
func (p *Params) Bool(key string, def bool) (bool, error) {
	s, ok := p.take(key)
	if !ok {
		return def, nil
	}
	switch s {
	case "true", "on", "1", "yes":
		return true, nil
	case "false", "off", "0", "no":
		return false, nil
	}
	return false, fmt.Errorf("parameter %s: invalid boolean %q", key, s)
}

// String returns the named string parameter, or def when absent.
func (p *Params) String(key, def string) string {
	if s, ok := p.take(key); ok {
		return s
	}
	return def
}

// Floats returns the named parameter parsed as a float list, or def
// when absent. Elements separate on ':' or ',' — ':' is the canonical
// form, since commas already separate list fields in the scenario
// text grammar ("sinks=coldstart?q=50:75:99,waste").
func (p *Params) Floats(key string, def []float64) ([]float64, error) {
	s, ok := p.take(key)
	if !ok {
		return def, nil
	}
	parts := strings.FieldsFunc(s, func(r rune) bool { return r == ':' || r == ',' })
	if len(parts) == 0 {
		return nil, fmt.Errorf("parameter %s: empty list %q", key, s)
	}
	out := make([]float64, 0, len(parts))
	for _, part := range parts {
		f, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("parameter %s: %w", key, err)
		}
		out = append(out, f)
	}
	return out, nil
}

func (p *Params) take(key string) (string, bool) {
	if p.known == nil {
		p.known = map[string]bool{}
	}
	p.known[key] = true
	if !p.vals.Has(key) {
		return "", false
	}
	p.used[key] = true
	return p.vals.Get(key), true
}

// Known returns every key a typed accessor asked for, present in the
// spec or not, sorted — the parameters the builder understands. An
// "unknown parameters" error that also lists the known keys turns a
// typo ("binwdith") into a one-glance fix instead of a trip to the
// builder's source.
func (p *Params) Known() []string {
	keys := make([]string, 0, len(p.known))
	for k := range p.known {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Unused returns the keys no accessor consumed, sorted — the
// misspellings a registry turns into "unknown parameters" errors.
func (p *Params) Unused() []string {
	var left []string
	for k := range p.vals {
		if !p.used[k] {
			left = append(left, k)
		}
	}
	sort.Strings(left)
	return left
}
