package trace

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"time"
)

// Binary trace format ("tracec"): a compact columnar bundle replacing
// the three-CSV layout for large traces. One file carries everything a
// simulation needs — per-app memory, per-function exec stats, and the
// per-minute invocation-count columns — so an Azure-scale trace opens
// in seconds instead of the minutes a CSV parse takes.
//
// Layout (all integers unsigned varints, all floats IEEE-754 bits in
// little-endian order):
//
//	magic    "WILDTRC1" (8 bytes)
//	minutes  uvarint — horizon at 1-minute resolution
//	numApps  uvarint
//	apps     numApps × app record, in trace order:
//	  owner     uvarint length + bytes
//	  appID     uvarint length + bytes
//	  memoryMB  float64 bits (8 bytes)
//	  numFns    uvarint
//	  fns       numFns × function record:
//	    fnID     uvarint length + bytes
//	    trigger  1 byte
//	    exec     avg, min, max float64 bits (24 bytes) + count uvarint
//	    column   run-length pairs (runLen uvarint, count uvarint);
//	             run lengths sum to exactly minutes
//
// The invocation column is the CSV writer's per-minute count row,
// run-length + varint compressed (idle minutes collapse to one pair).
// Decoding expands counts through SpreadMinute — the same canonical
// minute-to-timestamps definition every CSV reader uses — so a binary
// round trip is bit-identical to the CSV round trip of the same trace
// (pinned by TestBinaryRoundTrip).
const binaryMagic = "WILDTRC1"

// Decoder sanity bounds: generous for any real trace, tight enough
// that a corrupt length field fails cleanly instead of allocating
// unboundedly.
const (
	binaryMaxMinutes = 1 << 24 // ~31 years at 1-minute resolution
	binaryMaxString  = 1 << 20
	binaryMaxFns     = 1 << 22
	binaryMaxInvs    = 1 << 31 // expanded invocations per function
)

// WriteBinary encodes tr to w in the binary trace format.
func WriteBinary(w io.Writer, tr *Trace) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) {
		n := binary.PutUvarint(buf[:], v)
		bw.Write(buf[:n])
	}
	putF64 := func(f float64) {
		binary.LittleEndian.PutUint64(buf[:8], math.Float64bits(f))
		bw.Write(buf[:8])
	}
	putString := func(s string) {
		putUvarint(uint64(len(s)))
		bw.WriteString(s)
	}

	bw.WriteString(binaryMagic)
	minutes := int(tr.Duration.Minutes())
	putUvarint(uint64(minutes))
	putUvarint(uint64(len(tr.Apps)))
	for _, app := range tr.Apps {
		putString(app.Owner)
		putString(app.ID)
		putF64(app.MemoryMB)
		putUvarint(uint64(len(app.Functions)))
		for _, fn := range app.Functions {
			putString(fn.ID)
			bw.WriteByte(byte(fn.Trigger))
			putF64(fn.ExecStats.AvgSeconds)
			putF64(fn.ExecStats.MinSeconds)
			putF64(fn.ExecStats.MaxSeconds)
			if fn.ExecStats.Count < 0 {
				return fmt.Errorf("trace: function %s has negative exec count", fn.ID)
			}
			putUvarint(uint64(fn.ExecStats.Count))
			counts := MinuteCounts(fn.Invocations, tr.Duration)
			for i := 0; i < len(counts); {
				j := i
				for j < len(counts) && counts[j] == counts[i] {
					j++
				}
				putUvarint(uint64(j - i))
				putUvarint(uint64(counts[i]))
				i = j
			}
		}
	}
	return bw.Flush()
}

// byteScanner is what the decoder needs: buffered byte-wise reads for
// varints plus bulk reads for strings. Both *bufio.Reader (streaming)
// and *bytes.Reader (mmap) satisfy it.
type byteScanner interface {
	io.Reader
	io.ByteReader
}

// BinarySource streams a binary trace bundle as a Source, one app at a
// time in constant memory — the tracec counterpart of CSVSource.
type BinarySource struct {
	r       byteScanner
	dur     time.Duration
	minutes int
	apps    int // remaining app records
	err     error
	closer  func() error

	// Decode scratch, reused across records so a steady-state Next
	// allocates only the app's own structures (pinned by
	// TestBinarySourceAllocs).
	strBuf []byte
	f64Buf [8]byte
	runs   []colRun
}

// colRun is one decoded run of the invocation column: count
// invocations per minute for length minutes starting at start.
type colRun struct{ start, length, count uint64 }

// NewBinarySource opens a binary trace for streaming from r, reading
// the header eagerly so the horizon is known before the first app.
func NewBinarySource(r io.Reader) (*BinarySource, error) {
	bs, ok := r.(byteScanner)
	if !ok {
		bs = bufio.NewReaderSize(r, 1<<16)
	}
	return newBinarySource(bs, nil)
}

// OpenBinaryFile opens a binary trace file, memory-mapping it when the
// platform allows (the column decode then walks the page cache
// directly) and falling back to buffered reads. Callers should Close
// the source; draining it to io.EOF also releases the file.
func OpenBinaryFile(path string) (*BinarySource, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: opening binary trace: %w", err)
	}
	if data, ok := mmapFile(f); ok {
		src, err := newBinarySource(bytes.NewReader(data), func() error {
			munmapFile(data)
			return f.Close()
		})
		if err != nil {
			munmapFile(data)
			f.Close()
			return nil, err
		}
		return src, nil
	}
	src, err := newBinarySource(bufio.NewReaderSize(f, 1<<20), f.Close)
	if err != nil {
		f.Close()
		return nil, err
	}
	return src, nil
}

func newBinarySource(r byteScanner, closer func() error) (*BinarySource, error) {
	var magic [len(binaryMagic)]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: reading binary magic: %w", noEOF(err))
	}
	if string(magic[:]) != binaryMagic {
		return nil, fmt.Errorf("trace: not a binary trace (magic %q)", magic)
	}
	minutes, err := readUvarint(r, "minutes")
	if err != nil {
		return nil, err
	}
	if minutes > binaryMaxMinutes {
		return nil, fmt.Errorf("trace: binary trace claims %d minutes", minutes)
	}
	apps, err := readUvarint(r, "app count")
	if err != nil {
		return nil, err
	}
	if apps > math.MaxInt32 {
		return nil, fmt.Errorf("trace: binary trace claims %d apps", apps)
	}
	return &BinarySource{
		r:       r,
		dur:     time.Duration(minutes) * time.Minute,
		minutes: int(minutes),
		apps:    int(apps),
		closer:  closer,
	}, nil
}

// Horizon implements Source.
func (s *BinarySource) Horizon() time.Duration { return s.dur }

// Close releases the backing file or mapping. Safe to call more than
// once and after the source is drained.
func (s *BinarySource) Close() error {
	c := s.closer
	s.closer = nil
	if c != nil {
		return c()
	}
	return nil
}

// Next implements Source: it decodes the next application record.
func (s *BinarySource) Next() (*App, error) {
	if s.err != nil {
		return nil, s.err
	}
	if s.apps == 0 {
		s.err = io.EOF
		s.Close()
		return nil, io.EOF
	}
	app, err := s.readApp()
	if err != nil {
		s.err = err
		s.Close()
		return nil, err
	}
	s.apps--
	return app, nil
}

func (s *BinarySource) readApp() (*App, error) {
	owner, err := s.readString("owner")
	if err != nil {
		return nil, err
	}
	id, err := s.readString("app ID")
	if err != nil {
		return nil, err
	}
	memMB, err := s.readF64("memory")
	if err != nil {
		return nil, err
	}
	nfns, err := readUvarint(s.r, "function count")
	if err != nil {
		return nil, err
	}
	if nfns > binaryMaxFns {
		return nil, fmt.Errorf("trace: app %s claims %d functions", id, nfns)
	}
	app := &App{ID: id, Owner: owner, MemoryMB: memMB,
		Functions: make([]*Function, 0, nfns)}
	for i := uint64(0); i < nfns; i++ {
		fn, err := s.readFunction()
		if err != nil {
			return nil, fmt.Errorf("trace: app %s: %w", id, err)
		}
		app.Functions = append(app.Functions, fn)
	}
	return app, nil
}

func (s *BinarySource) readFunction() (*Function, error) {
	id, err := s.readString("function ID")
	if err != nil {
		return nil, err
	}
	trig, err := s.r.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("reading trigger: %w", noEOF(err))
	}
	if int(trig) >= NumTriggers {
		return nil, fmt.Errorf("function %s: unknown trigger %d", id, trig)
	}
	fn := &Function{ID: id, Trigger: TriggerType(trig)}
	if fn.ExecStats.AvgSeconds, err = s.readF64("exec avg"); err != nil {
		return nil, err
	}
	if fn.ExecStats.MinSeconds, err = s.readF64("exec min"); err != nil {
		return nil, err
	}
	if fn.ExecStats.MaxSeconds, err = s.readF64("exec max"); err != nil {
		return nil, err
	}
	count, err := readUvarint(s.r, "exec count")
	if err != nil {
		return nil, err
	}
	if count > math.MaxInt64 {
		return nil, fmt.Errorf("function %s: exec count overflow", id)
	}
	fn.ExecStats.Count = int64(count)

	// The invocation column: runs must tile the horizon exactly. The
	// expansion allocates once (the total is known from the runs) and
	// goes through SpreadMinute, the canonical count-to-timestamp
	// definition shared with the CSV readers.
	runs := s.runs[:0]
	covered, total := uint64(0), uint64(0)
	for covered < uint64(s.minutes) {
		length, err := readUvarint(s.r, "run length")
		if err != nil {
			return nil, fmt.Errorf("function %s: %w", id, err)
		}
		count, err := readUvarint(s.r, "run count")
		if err != nil {
			return nil, fmt.Errorf("function %s: %w", id, err)
		}
		if length == 0 || covered+length > uint64(s.minutes) {
			return nil, fmt.Errorf("function %s: run of %d minutes at %d overruns the %d-minute horizon",
				id, length, covered, s.minutes)
		}
		total += length * count
		if total > binaryMaxInvs {
			return nil, fmt.Errorf("function %s: invocation column overflows", id)
		}
		if count > 0 {
			runs = append(runs, colRun{covered, length, count})
		}
		covered += length
	}
	s.runs = runs
	if total > 0 {
		inv := make([]float64, 0, total)
		for _, r := range runs {
			for k := uint64(0); k < r.length; k++ {
				inv = SpreadMinute(inv, int(r.start+k), int(r.count))
			}
		}
		fn.Invocations = inv
	}
	return fn, nil
}

func (s *BinarySource) readString(what string) (string, error) {
	n, err := readUvarint(s.r, what)
	if err != nil {
		return "", err
	}
	if n > binaryMaxString {
		return "", fmt.Errorf("trace: %s of %d bytes", what, n)
	}
	if uint64(cap(s.strBuf)) < n {
		s.strBuf = make([]byte, n)
	}
	b := s.strBuf[:n]
	if _, err := io.ReadFull(s.r, b); err != nil {
		return "", fmt.Errorf("trace: reading %s: %w", what, noEOF(err))
	}
	return string(b), nil
}

func (s *BinarySource) readF64(what string) (float64, error) {
	// s.f64Buf rather than a local: a stack buffer would escape through
	// the io.ReadFull interface call and cost an allocation per field.
	if _, err := io.ReadFull(s.r, s.f64Buf[:]); err != nil {
		return 0, fmt.Errorf("trace: reading %s: %w", what, noEOF(err))
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(s.f64Buf[:])), nil
}

func readUvarint(r io.ByteReader, what string) (uint64, error) {
	v, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, fmt.Errorf("trace: reading %s: %w", what, noEOF(err))
	}
	return v, nil
}

// noEOF turns a bare io.EOF into io.ErrUnexpectedEOF: inside a record,
// end-of-input means truncation, not a clean end.
func noEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// ReadBinary decodes a complete binary trace from r (the batch
// counterpart of NewBinarySource, mirroring ReadInvocationsCSV).
func ReadBinary(r io.Reader) (*Trace, error) {
	src, err := NewBinarySource(r)
	if err != nil {
		return nil, err
	}
	return Collect(src)
}
