package trace

import (
	"io"
	"testing"
	"time"
)

// sourceTrace builds a small deterministic trace for source tests.
func sourceTrace(apps int) *Trace {
	tr := &Trace{Duration: 30 * time.Minute}
	for i := 0; i < apps; i++ {
		id := string(rune('a' + i%26))
		if i >= 26 {
			id += string(rune('a' + i/26))
		}
		tr.Apps = append(tr.Apps, &App{
			ID:    "app" + id,
			Owner: "owner",
			Functions: []*Function{
				{ID: "fn" + id, Trigger: TriggerHTTP, Invocations: []float64{float64(i), float64(i) + 60}},
			},
		})
	}
	return tr
}

func TestTraceSourceYieldsInOrder(t *testing.T) {
	tr := sourceTrace(7)
	src := NewTraceSource(tr)
	if src.Horizon() != tr.Duration {
		t.Fatalf("horizon %v, want %v", src.Horizon(), tr.Duration)
	}
	for i := 0; i < 7; i++ {
		app, err := src.Next()
		if err != nil {
			t.Fatalf("app %d: %v", i, err)
		}
		if app != tr.Apps[i] {
			t.Fatalf("app %d: got %s, want %s", i, app.ID, tr.Apps[i].ID)
		}
	}
	if _, err := src.Next(); err != io.EOF {
		t.Fatalf("after drain: %v, want io.EOF", err)
	}
	// Drained sources keep returning io.EOF.
	if _, err := src.Next(); err != io.EOF {
		t.Fatalf("after second drain: %v, want io.EOF", err)
	}
}

// TestShardPartition verifies the n shards of a source partition it
// exactly: disjoint, order-preserving, covering.
func TestShardPartition(t *testing.T) {
	tr := sourceTrace(23)
	const n = 4
	var got []string
	perShard := make([][]string, n)
	for i := 0; i < n; i++ {
		sh := Shard(NewTraceSource(tr), i, n)
		if sh.Horizon() != tr.Duration {
			t.Fatalf("shard horizon %v", sh.Horizon())
		}
		for {
			app, err := sh.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			perShard[i] = append(perShard[i], app.ID)
		}
	}
	// Interleave back: shard i holds apps i, i+n, i+2n, ...
	for k := 0; k < len(tr.Apps); k++ {
		got = append(got, perShard[k%n][k/n])
	}
	for k, app := range tr.Apps {
		if got[k] != app.ID {
			t.Fatalf("reassembled[%d] = %s, want %s", k, got[k], app.ID)
		}
	}
}

func TestShardSingle(t *testing.T) {
	tr := sourceTrace(3)
	src := NewTraceSource(tr)
	if sh := Shard(src, 0, 1); sh != Source(src) {
		t.Fatal("Shard(src, 0, 1) should be the identity")
	}
}

func TestShardBadArgsPanics(t *testing.T) {
	for _, c := range []struct{ i, n int }{{0, 0}, {-1, 2}, {2, 2}, {5, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Shard(src, %d, %d) did not panic", c.i, c.n)
				}
			}()
			Shard(NewTraceSource(sourceTrace(1)), c.i, c.n)
		}()
	}
}

func TestCollectRoundTrip(t *testing.T) {
	tr := sourceTrace(9)
	back, err := Collect(NewTraceSource(tr))
	if err != nil {
		t.Fatal(err)
	}
	if back.Duration != tr.Duration || len(back.Apps) != len(tr.Apps) {
		t.Fatalf("collected %d apps over %v", len(back.Apps), back.Duration)
	}
	for i := range tr.Apps {
		if back.Apps[i] != tr.Apps[i] {
			t.Fatalf("app %d differs", i)
		}
	}
}

// TestTraceSourcePartialConsumption pins the batch-upgrade contract:
// Trace() exposes only the unyielded remainder, and Drain marks it
// consumed.
func TestTraceSourcePartialConsumption(t *testing.T) {
	tr := sourceTrace(5)
	src := NewTraceSource(tr)
	if src.Trace() != tr {
		t.Fatal("pristine source should expose the backing trace itself")
	}
	for i := 0; i < 2; i++ {
		if _, err := src.Next(); err != nil {
			t.Fatal(err)
		}
	}
	rest := src.Trace()
	if rest.Duration != tr.Duration || len(rest.Apps) != 3 {
		t.Fatalf("remainder: %d apps over %v", len(rest.Apps), rest.Duration)
	}
	if rest.Apps[0] != tr.Apps[2] {
		t.Fatal("remainder does not start at the first unyielded app")
	}
	src.Drain()
	if _, err := src.Next(); err != io.EOF {
		t.Fatalf("after Drain: %v, want io.EOF", err)
	}
}

func TestParseShard(t *testing.T) {
	good := []struct {
		in   string
		i, n int
	}{{"0/1", 0, 1}, {"2/8", 2, 8}, {"7/8", 7, 8}}
	for _, c := range good {
		i, n, err := ParseShard(c.in)
		if err != nil || i != c.i || n != c.n {
			t.Errorf("ParseShard(%q) = %d, %d, %v; want %d, %d", c.in, i, n, err, c.i, c.n)
		}
	}
	for _, in := range []string{"", "/", "1", "1/", "/2", "2/2", "-1/2", "1/0", "1/2x3", "1/23abc", "a/b", "1 /2"} {
		if _, _, err := ParseShard(in); err == nil {
			t.Errorf("ParseShard(%q) accepted", in)
		}
	}
}
