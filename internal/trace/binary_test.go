package trace_test

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/trace"
	"repro/internal/workload"
)

// genTrace produces a realistic generated trace (skewed rates, mixed
// triggers, exec stats, memory footprints) for round-trip properties.
func genTrace(t testing.TB, cfg workload.Config) *trace.Trace {
	t.Helper()
	pop, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return pop.Trace
}

// csvCanonical round-trips tr's invocations through the CSV codec:
// the canonical minute-resolution trace every reader must agree on.
func csvCanonical(t testing.TB, tr *trace.Trace) *trace.Trace {
	t.Helper()
	var buf bytes.Buffer
	if err := trace.WriteInvocationsCSV(&buf, tr); err != nil {
		t.Fatal(err)
	}
	out, err := trace.ReadInvocationsCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// requireSameInvocations asserts got and want carry bit-identical app
// and function identity, triggers, and invocation timestamps.
func requireSameInvocations(t *testing.T, got, want *trace.Trace) {
	t.Helper()
	if got.Duration != want.Duration {
		t.Fatalf("duration %v, want %v", got.Duration, want.Duration)
	}
	if len(got.Apps) != len(want.Apps) {
		t.Fatalf("%d apps, want %d", len(got.Apps), len(want.Apps))
	}
	for i, wa := range want.Apps {
		ga := got.Apps[i]
		if ga.ID != wa.ID || ga.Owner != wa.Owner || len(ga.Functions) != len(wa.Functions) {
			t.Fatalf("app %d: %s/%s/%d fns, want %s/%s/%d fns",
				i, ga.ID, ga.Owner, len(ga.Functions), wa.ID, wa.Owner, len(wa.Functions))
		}
		for j, wf := range wa.Functions {
			gf := ga.Functions[j]
			if gf.ID != wf.ID || gf.Trigger != wf.Trigger {
				t.Fatalf("app %s fn %d: %s/%v, want %s/%v", wa.ID, j, gf.ID, gf.Trigger, wf.ID, wf.Trigger)
			}
			if len(gf.Invocations) != len(wf.Invocations) {
				t.Fatalf("app %s fn %s: %d invocations, want %d",
					wa.ID, wf.ID, len(gf.Invocations), len(wf.Invocations))
			}
			for k := range wf.Invocations {
				if math.Float64bits(gf.Invocations[k]) != math.Float64bits(wf.Invocations[k]) {
					t.Fatalf("app %s fn %s invocation %d: %v, want %v",
						wa.ID, wf.ID, k, gf.Invocations[k], wf.Invocations[k])
				}
			}
		}
	}
}

// TestBinaryRoundTrip is the format's bit-identity property: for
// generated traces across workload shapes, encode→decode yields (a)
// exactly the trace the CSV reader produces for the same data — the
// two formats are interchangeable sources — and (b) exec stats and
// memory preserved to the bit (the binary bundle carries them
// natively; CSV needs the lossy milliseconds side tables).
func TestBinaryRoundTrip(t *testing.T) {
	cfgs := []workload.Config{
		{Seed: 7, NumApps: 60, Duration: 6 * time.Hour, MaxDailyRate: 5000, MaxEventsPerFunction: 4000},
		{Seed: 8, NumApps: 40, Duration: 24 * time.Hour, MaxDailyRate: 200, MaxEventsPerFunction: 2000},
		{Seed: 9, NumApps: 30, Duration: 3 * time.Hour, MaxDailyRate: 20000, MaxEventsPerFunction: 6000,
			Mode: workload.ModeDiurnal, RPS0: 1, RPS1: 6},
	}
	for ci, cfg := range cfgs {
		t.Run(fmt.Sprintf("cfg%d", ci), func(t *testing.T) {
			orig := genTrace(t, cfg)

			var buf bytes.Buffer
			if err := trace.WriteBinary(&buf, orig); err != nil {
				t.Fatal(err)
			}
			t.Logf("binary %d bytes for %d apps / %d invocations",
				buf.Len(), len(orig.Apps), orig.TotalInvocations())
			got, err := trace.ReadBinary(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}

			requireSameInvocations(t, got, csvCanonical(t, orig))

			// Exec stats and memory survive to the bit (CSV cannot
			// promise this; the binary format must).
			for i, wa := range orig.Apps {
				ga := got.Apps[i]
				if math.Float64bits(ga.MemoryMB) != math.Float64bits(wa.MemoryMB) {
					t.Fatalf("app %s memory %v, want %v", wa.ID, ga.MemoryMB, wa.MemoryMB)
				}
				for j, wf := range wa.Functions {
					ge, we := ga.Functions[j].ExecStats, wf.ExecStats
					if math.Float64bits(ge.AvgSeconds) != math.Float64bits(we.AvgSeconds) ||
						math.Float64bits(ge.MinSeconds) != math.Float64bits(we.MinSeconds) ||
						math.Float64bits(ge.MaxSeconds) != math.Float64bits(we.MaxSeconds) ||
						ge.Count != we.Count {
						t.Fatalf("app %s fn %s exec stats %+v, want %+v", wa.ID, wf.ID, ge, we)
					}
				}
			}

			// A second round trip is a fixed point: minute resolution is
			// already canonical, so re-encoding loses nothing.
			var buf2 bytes.Buffer
			if err := trace.WriteBinary(&buf2, got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
				t.Fatal("re-encoding a decoded trace changed the bytes")
			}
		})
	}
}

// TestBinaryFileRoundTrip exercises OpenBinaryFile (the mmap-or-
// buffered path) against the in-memory reader.
func TestBinaryFileRoundTrip(t *testing.T) {
	orig := genTrace(t, workload.Config{
		Seed: 11, NumApps: 25, Duration: 4 * time.Hour,
		MaxDailyRate: 3000, MaxEventsPerFunction: 3000,
	})
	path := filepath.Join(t.TempDir(), "trace.bin")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteBinary(f, orig); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	src, err := trace.OpenBinaryFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	got, err := trace.Collect(src)
	if err != nil {
		t.Fatal(err)
	}
	requireSameInvocations(t, got, csvCanonical(t, orig))
}

// TestBinaryEdgeShapes round-trips degenerate traces: no apps, an app
// with no functions, a function that never fires, a zero horizon.
func TestBinaryEdgeShapes(t *testing.T) {
	// Cases CSV can also express compare against the CSV canonical
	// form; cases it cannot (function-less apps, zero horizon) are
	// structurally faithful in binary and compare against themselves.
	cases := []struct {
		tr     *trace.Trace
		viaCSV bool
	}{
		{&trace.Trace{Duration: time.Hour}, true},
		{&trace.Trace{Duration: time.Minute,
			Apps: []*trace.App{{ID: "a", Owner: "o", MemoryMB: 64}}}, false},
		{&trace.Trace{Apps: []*trace.App{{ID: "a", Owner: "o", MemoryMB: 64,
			Functions: []*trace.Function{{ID: "f", Trigger: trace.TriggerHTTP}}}}}, false},
		{&trace.Trace{Duration: 30 * time.Minute, Apps: []*trace.App{{
			ID: "a", Owner: "o", MemoryMB: 128,
			Functions: []*trace.Function{
				{ID: "idle", Trigger: trace.TriggerTimer},
				{ID: "busy", Trigger: trace.TriggerHTTP, Invocations: []float64{0, 60, 61, 1700}},
			},
		}}}, true},
	}
	for i, tc := range cases {
		var buf bytes.Buffer
		if err := trace.WriteBinary(&buf, tc.tr); err != nil {
			t.Fatalf("trace %d: %v", i, err)
		}
		got, err := trace.ReadBinary(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("trace %d: %v", i, err)
		}
		want := tc.tr
		if tc.viaCSV {
			want = csvCanonical(t, tc.tr)
		}
		requireSameInvocations(t, got, want)
	}
}

// TestBinaryTruncated decodes every strict prefix of a valid bundle
// and requires an error each time — a truncated file must never decode
// silently into a shorter trace.
func TestBinaryTruncated(t *testing.T) {
	tr := &trace.Trace{Duration: 10 * time.Minute, Apps: []*trace.App{
		{ID: "alpha", Owner: "own", MemoryMB: 96, Functions: []*trace.Function{
			{ID: "f1", Trigger: trace.TriggerQueue, Invocations: []float64{5, 65, 300},
				ExecStats: trace.ExecStats{AvgSeconds: 0.2, MinSeconds: 0.1, MaxSeconds: 0.9, Count: 3}},
		}},
		{ID: "beta", Owner: "own", MemoryMB: 256, Functions: []*trace.Function{
			{ID: "f2", Trigger: trace.TriggerHTTP, Invocations: []float64{0, 1, 2, 599}},
		}},
	}}
	var buf bytes.Buffer
	if err := trace.WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for n := 0; n < len(data); n++ {
		src, err := trace.NewBinarySource(bytes.NewReader(data[:n]))
		if err != nil {
			continue // header already rejected
		}
		for {
			_, err = src.Next()
			if err != nil {
				break
			}
		}
		if err == nil || err == io.EOF {
			t.Fatalf("prefix of %d/%d bytes decoded without error", n, len(data))
		}
	}
}

// TestBinaryCorrupt rejects structurally invalid bundles with errors,
// not panics or garbage traces.
func TestBinaryCorrupt(t *testing.T) {
	tr := &trace.Trace{Duration: 5 * time.Minute, Apps: []*trace.App{
		{ID: "a", Owner: "o", MemoryMB: 64, Functions: []*trace.Function{
			{ID: "f", Trigger: trace.TriggerHTTP, Invocations: []float64{10, 70}},
		}},
	}}
	var buf bytes.Buffer
	if err := trace.WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	t.Run("bad magic", func(t *testing.T) {
		data := bytes.Clone(valid)
		data[0] ^= 0xff
		if _, err := trace.NewBinarySource(bytes.NewReader(data)); err == nil {
			t.Fatal("corrupt magic accepted")
		}
	})
	t.Run("bad trigger", func(t *testing.T) {
		// The trigger byte follows the one-byte-length "f" function ID;
		// locate it as the byte right after the only "f" in the app
		// record region.
		data := bytes.Clone(valid)
		i := bytes.LastIndexByte(data, 'f')
		data[i+1] = 0xee
		if _, err := decodeAll(data); err == nil {
			t.Fatal("unknown trigger accepted")
		}
	})
	t.Run("flipped count bits", func(t *testing.T) {
		// Growing a run length mid-column either overruns the horizon
		// or truncates the stream; both must surface as errors.
		data := bytes.Clone(valid)
		data[len(data)-2] = 0xff
		data[len(data)-1] = 0x7f
		if _, err := decodeAll(data); err == nil {
			t.Fatal("oversized trailing varint accepted")
		}
	})
}

func decodeAll(data []byte) (*trace.Trace, error) {
	return trace.ReadBinary(bytes.NewReader(data))
}

// TestBinarySourceAllocs pins the binary reader's per-app allocation
// count: decoding must allocate only the app's own structures (IDs,
// functions, one exactly-sized invocation slice each), independent of
// how many minutes the columns span.
func TestBinarySourceAllocs(t *testing.T) {
	tr := syntheticBinaryTrace(400, 1440, 4)
	var buf bytes.Buffer
	if err := trace.WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	src, err := trace.NewBinarySource(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(300, func() {
		if _, err := src.Next(); err != nil {
			t.Fatal(err)
		}
	})
	// One app with one function decodes in ~8 allocations (app, slice
	// headers, strings, invocation payload). Append-grown columns or
	// per-minute scratch would multiply this.
	if avg > 12 {
		t.Fatalf("binary reader allocates %.1f objects per app, want <= 12", avg)
	}
}

// TestStreamCSVAllocsPerRow pins the streaming CSV reader's per-row
// allocation count. The invocation slice must be allocated exactly
// once at its final size (counts are parsed into a reused scratch
// first); before that fix a 1440-minute row with thousands of
// invocations paid ~14 append-doublings per row.
func TestStreamCSVAllocsPerRow(t *testing.T) {
	tr := syntheticBinaryTrace(400, 1440, 4)
	var buf bytes.Buffer
	if err := trace.WriteInvocationsCSV(&buf, tr); err != nil {
		t.Fatal(err)
	}
	src, err := trace.StreamInvocationsCSV(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(300, func() {
		if _, err := src.Next(); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 14 {
		t.Fatalf("CSV stream allocates %.1f objects per single-function app, want <= 14", avg)
	}
}

// syntheticBinaryTrace builds single-function apps with perMinute
// invocations in every one of minutes minutes — the dense shape where
// append-grown invocation slices are most expensive.
func syntheticBinaryTrace(apps, minutes, perMinute int) *trace.Trace {
	tr := &trace.Trace{Duration: time.Duration(minutes) * time.Minute}
	for i := 0; i < apps; i++ {
		var inv []float64
		for m := 0; m < minutes; m++ {
			inv = trace.SpreadMinute(inv, m, perMinute)
		}
		tr.Apps = append(tr.Apps, &trace.App{
			ID: fmt.Sprintf("app%05d", i), Owner: fmt.Sprintf("own%05d", i/4), MemoryMB: 128,
			Functions: []*trace.Function{{
				ID: fmt.Sprintf("fn%05d", i), Trigger: trace.TriggerHTTP, Invocations: inv,
				ExecStats: trace.ExecStats{AvgSeconds: 0.5, MinSeconds: 0.1, MaxSeconds: 2, Count: 100},
			}},
		})
	}
	return tr
}
