package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// CSVSource streams an AzurePublicDataset-style invocations table as a
// Source, holding one application in memory at a time: rows are parsed
// as they are read and consecutive rows sharing a HashApp group into
// one App. Unlike ReadInvocationsCSV, the file is never materialized,
// so traces far larger than RAM stream through in constant memory.
//
// Rows must be grouped by HashApp (WriteInvocationsCSV emits them that
// way, as does the published dataset). A HashApp reappearing after its
// group ended is reported as an error rather than silently split into
// two applications; detecting that exactly costs one retained ID per
// finished app, so live memory is O(one app's invocations + #app IDs)
// — the invocation payloads, which dominate any real trace, never
// accumulate.
type CSVSource struct {
	cr      *csv.Reader
	dur     time.Duration
	minutes int
	line    int // 1-based line of the most recently read row

	// pending is the first row of the next app, read while detecting
	// the end of the previous group.
	pending      *Function
	pendingOwner string
	pendingApp   string

	seen   map[string]struct{} // app IDs whose groups have ended
	counts []int               // per-row minute-count scratch, reused across rows
	err    error               // sticky terminal state (io.EOF or failure)
}

// StreamInvocationsCSV opens an invocations table for streaming. The
// header is read eagerly so the horizon is known before the first app.
func StreamInvocationsCSV(r io.Reader) (*CSVSource, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: reading invocations header: %w", err)
	}
	if err := checkInvocationsHeader(header); err != nil {
		return nil, err
	}
	minutes := len(header) - 4
	return &CSVSource{
		cr:      cr,
		dur:     time.Duration(minutes) * time.Minute,
		minutes: minutes,
		line:    1,
		seen:    make(map[string]struct{}),
	}, nil
}

// Horizon implements Source.
func (s *CSVSource) Horizon() time.Duration { return s.dur }

// Next implements Source: it returns the next application, assembled
// from its contiguous rows.
func (s *CSVSource) Next() (*App, error) {
	if s.err != nil {
		return nil, s.err
	}

	// First function of the app: the stashed row, or a fresh read.
	owner, appID, fn := s.pendingOwner, s.pendingApp, s.pending
	if fn == nil {
		var err error
		owner, appID, fn, err = s.readRow()
		if err != nil {
			s.err = err
			return nil, err
		}
	}
	s.pending = nil
	if _, dup := s.seen[appID]; dup {
		s.err = fmt.Errorf("trace: line %d: rows for app %s are not contiguous", s.line, appID)
		return nil, s.err
	}
	app := &App{ID: appID, Owner: owner, Functions: []*Function{fn}}

	// Remaining functions: rows until the HashApp changes or the table
	// ends.
	for {
		owner, id, fn, err := s.readRow()
		if err == io.EOF {
			s.err = io.EOF
			s.seen[app.ID] = struct{}{}
			return app, nil
		}
		if err != nil {
			s.err = err
			return nil, err
		}
		if id == app.ID {
			app.Functions = append(app.Functions, fn)
			continue
		}
		s.pendingOwner, s.pendingApp, s.pending = owner, id, fn
		s.seen[app.ID] = struct{}{}
		return app, nil
	}
}

// readRow reads and parses one data row.
func (s *CSVSource) readRow() (owner, appID string, fn *Function, err error) {
	rec, err := s.cr.Read()
	if err == io.EOF {
		return "", "", nil, io.EOF
	}
	s.line++
	if err != nil {
		return "", "", nil, fmt.Errorf("trace: reading invocations line %d: %w", s.line, err)
	}
	return parseInvocationRow(rec, s.minutes, s.line, &s.counts)
}

// checkInvocationsHeader validates the fixed leading columns of an
// invocations table header.
func checkInvocationsHeader(header []string) error {
	if len(header) < 5 || header[0] != "HashOwner" || header[3] != "Trigger" {
		return fmt.Errorf("trace: unexpected invocations header %v", header[:min(4, len(header))])
	}
	return nil
}

// parseInvocationRow parses one data row of an invocations table into
// a Function plus its owning IDs. The returned strings are cloned out
// of rec, which may be a buffer the CSV reader reuses. scratch holds
// the caller's reusable minute-count buffer: counts are parsed into it
// first so the invocation slice can be allocated exactly once at its
// final size, instead of growing by appends across thousands of minute
// columns (the dominant per-row allocation cost at trace scale; pinned
// by TestStreamCSVAllocsPerRow).
func parseInvocationRow(rec []string, minutes, line int, scratch *[]int) (owner, appID string, fn *Function, err error) {
	if len(rec) != minutes+4 {
		return "", "", nil, fmt.Errorf("trace: line %d has %d fields, want %d", line, len(rec), minutes+4)
	}
	trig, err := ParseTrigger(rec[3])
	if err != nil {
		return "", "", nil, fmt.Errorf("trace: line %d: %w", line, err)
	}
	counts := (*scratch)[:0]
	total := 0
	for m := 0; m < minutes; m++ {
		n, err := strconv.Atoi(rec[4+m])
		if err != nil {
			return "", "", nil, fmt.Errorf("trace: line %d minute %d: %w", line, m+1, err)
		}
		if n < 0 {
			return "", "", nil, fmt.Errorf("trace: line %d minute %d: negative count", line, m+1)
		}
		counts = append(counts, n)
		total += n
	}
	*scratch = counts
	fn = &Function{ID: strings.Clone(rec[2]), Trigger: trig}
	if total > 0 {
		fn.Invocations = make([]float64, 0, total)
		for m, n := range counts {
			if n > 0 {
				fn.Invocations = SpreadMinute(fn.Invocations, m, n)
			}
		}
	}
	return strings.Clone(rec[0]), strings.Clone(rec[1]), fn, nil
}

// SpreadMinute appends minute m's n invocations to dst at the codec's
// canonical timestamps: evenly spread, 60m + 60k/n seconds for
// k = 0..n-1. This is the single definition of how per-minute counts
// become timestamps; the CSV readers and the incident-bundle recorder
// (internal/serve) share it, which is what makes a recorded stream
// replay bit-identically to its CSV round trip.
func SpreadMinute(dst []float64, m, n int) []float64 {
	base := float64(m) * 60
	for k := 0; k < n; k++ {
		dst = append(dst, base+60*float64(k)/float64(n))
	}
	return dst
}
