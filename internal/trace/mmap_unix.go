//go:build unix

package trace

import (
	"os"
	"syscall"
)

// mmapFile maps f read-only. Returns ok=false (caller falls back to
// buffered reads) for empty files, oversized files, or mmap failure.
func mmapFile(f *os.File) ([]byte, bool) {
	fi, err := f.Stat()
	if err != nil || fi.Size() <= 0 || fi.Size() > int64(int(^uint(0)>>1)) {
		return nil, false
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(fi.Size()),
		syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, false
	}
	return data, true
}

func munmapFile(data []byte) {
	syscall.Munmap(data)
}
