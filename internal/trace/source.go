package trace

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// Source yields the applications of a workload one at a time, in a
// fixed order. It is the streaming counterpart of *Trace: consumers
// that process apps independently (the cold-start simulator, CSV
// writers, shard splitters) can run over arbitrarily large traces
// holding only the app currently in flight.
//
// Next returns io.EOF after the last application; any other error
// aborts consumption. Sources are single-use: once drained (or failed)
// they cannot be rewound. Implementations need not be safe for
// concurrent use; callers serialize Next.
type Source interface {
	// Horizon returns the trace duration covered by the source.
	Horizon() time.Duration
	// Next returns the next application, or nil and io.EOF at the end.
	Next() (*App, error)
}

// TraceSource adapts a fully materialized *Trace to the Source
// interface. Engines may type-assert for the Trace method to recover
// the batch fast path (work-stealing parallel walk over an indexable
// app slice).
type TraceSource struct {
	tr  *Trace
	pos int
}

// NewTraceSource returns a Source yielding tr's apps in order.
func NewTraceSource(tr *Trace) *TraceSource { return &TraceSource{tr: tr} }

// Horizon implements Source.
func (s *TraceSource) Horizon() time.Duration { return s.tr.Duration }

// Next implements Source.
func (s *TraceSource) Next() (*App, error) {
	if s.pos >= len(s.tr.Apps) {
		return nil, io.EOF
	}
	app := s.tr.Apps[s.pos]
	s.pos++
	return app, nil
}

// Trace returns the not-yet-yielded remainder of the backing trace,
// letting consumers with a batch fast path (sim.Run) bypass the
// one-at-a-time walk without re-processing apps already taken via
// Next. Callers that switch to the batch path must call Drain so the
// source reflects the consumption.
func (s *TraceSource) Trace() *Trace {
	if s.pos == 0 {
		return s.tr
	}
	return &Trace{Duration: s.tr.Duration, Apps: s.tr.Apps[s.pos:]}
}

// Drain marks every app consumed, as after a batch walk of Trace().
func (s *TraceSource) Drain() { s.pos = len(s.tr.Apps) }

// shardSource restricts a source to an interleaved shard.
type shardSource struct {
	src  Source
	i, n int
	pos  int
}

// Shard restricts src to its i-th of n interleaved shards: the apps at
// positions i, i+n, i+2n, ... of the underlying sequence. The n shards
// of a source partition it exactly, so n processes each consuming one
// shard cover the trace with no coordination — the scale-out unit for
// sweeps too large for one machine. Panics unless 0 <= i < n
// (programming error, as shard layouts are code-supplied).
func Shard(src Source, i, n int) Source {
	if n <= 0 || i < 0 || i >= n {
		panic(fmt.Sprintf("trace: Shard(%d, %d) out of range", i, n))
	}
	if n == 1 {
		return src
	}
	return &shardSource{src: src, i: i, n: n}
}

// Horizon implements Source.
func (s *shardSource) Horizon() time.Duration { return s.src.Horizon() }

// Next implements Source.
func (s *shardSource) Next() (*App, error) {
	for {
		app, err := s.src.Next()
		if err != nil {
			return nil, err
		}
		mine := (s.pos-s.i)%s.n == 0 && s.pos >= s.i
		s.pos++
		if mine {
			return app, nil
		}
	}
}

// ParseShard parses an "i/n" shard designator (as taken by the
// tracegen and coldsim -shard flags) into Shard arguments, rejecting
// trailing garbage and out-of-range layouts.
func ParseShard(s string) (i, n int, err error) {
	lhs, rhs, ok := strings.Cut(s, "/")
	if ok {
		i, err = strconv.Atoi(lhs)
		if err == nil {
			n, err = strconv.Atoi(rhs)
		}
	}
	if !ok || err != nil || n <= 0 || i < 0 || i >= n {
		return 0, 0, fmt.Errorf("trace: invalid shard %q (want i/n with 0 <= i < n)", s)
	}
	return i, n, nil
}

// batchSource is the contract an in-memory-backed source exposes so
// engines with a batch fast path can bypass the one-at-a-time walk:
// Trace returns the not-yet-yielded remainder and Drain records that
// the batch consumer took it, so a partially-Next'ed source behaves
// identically on either path.
type batchSource interface {
	Trace() *Trace
	Drain()
}

// BatchTrace returns the in-memory trace behind src — the remainder
// not yet yielded by Next — and marks it consumed, or nil when src is
// not batch-backed. It is the single implementation of the fast-path
// handoff contract shared by the simulation engines.
func BatchTrace(src Source) *Trace {
	bs, ok := src.(batchSource)
	if !ok {
		return nil
	}
	tr := bs.Trace()
	bs.Drain()
	return tr
}

// Collect drains src into a materialized *Trace. It is the inverse of
// NewTraceSource, useful when a streaming producer (a CSV stream, a
// shard, a generator) must feed a consumer that needs the whole trace.
func Collect(src Source) (*Trace, error) {
	tr := &Trace{Duration: src.Horizon()}
	for {
		app, err := src.Next()
		if err == io.EOF {
			return tr, nil
		}
		if err != nil {
			return nil, err
		}
		tr.Apps = append(tr.Apps, app)
	}
}
