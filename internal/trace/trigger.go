// Package trace defines the workload trace model used throughout the
// reproduction — applications, functions, trigger types, invocation
// timestamps — together with readers and writers for the CSV schemas
// of the public AzurePublicDataset release that accompanies the paper
// (invocations per function per minute, duration percentiles, and
// per-application memory percentiles).
//
// The in-memory representation keeps exact invocation timestamps in
// seconds from trace start; the CSV export bins them into the 1-minute
// resolution of the published dataset, and the importer reconstructs
// timestamps by spacing each minute's invocations evenly inside the
// minute (the paper itself notes sub-minute inter-arrival times cannot
// be reconstructed from the released data; §3.1).
package trace

import "fmt"

// TriggerType is one of the seven trigger classes the paper groups
// Azure's triggers into (§2).
type TriggerType uint8

// The trigger classes of the paper, Figure 2.
const (
	TriggerHTTP TriggerType = iota
	TriggerQueue
	TriggerEvent
	TriggerOrchestration
	TriggerTimer
	TriggerStorage
	TriggerOthers
	numTriggers
)

// NumTriggers is the number of distinct trigger classes.
const NumTriggers = int(numTriggers)

var triggerNames = [...]string{
	TriggerHTTP:          "http",
	TriggerQueue:         "queue",
	TriggerEvent:         "event",
	TriggerOrchestration: "orchestration",
	TriggerTimer:         "timer",
	TriggerStorage:       "storage",
	TriggerOthers:        "others",
}

// String returns the lower-case trigger name used in the CSV schema.
func (t TriggerType) String() string {
	if int(t) < len(triggerNames) {
		return triggerNames[t]
	}
	return fmt.Sprintf("trigger(%d)", uint8(t))
}

// ParseTrigger converts a CSV trigger name into a TriggerType.
func ParseTrigger(s string) (TriggerType, error) {
	for i, name := range triggerNames {
		if s == name {
			return TriggerType(i), nil
		}
	}
	return TriggerOthers, fmt.Errorf("trace: unknown trigger %q", s)
}

// AllTriggers lists every trigger class in declaration order.
func AllTriggers() []TriggerType {
	ts := make([]TriggerType, NumTriggers)
	for i := range ts {
		ts[i] = TriggerType(i)
	}
	return ts
}
