package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func sampleTrace() *Trace {
	return &Trace{
		Duration: 3 * time.Minute,
		Apps: []*App{
			{
				ID: "app1", Owner: "own1", MemoryMB: 170.5,
				Functions: []*Function{
					{
						ID: "fn1", Trigger: TriggerHTTP,
						Invocations: []float64{10, 70, 71, 130},
						ExecStats:   ExecStats{AvgSeconds: 0.5, MinSeconds: 0.1, MaxSeconds: 2, Count: 4},
					},
					{
						ID: "fn2", Trigger: TriggerTimer,
						Invocations: []float64{0, 60, 120},
						ExecStats:   ExecStats{AvgSeconds: 1.5, MinSeconds: 1, MaxSeconds: 2, Count: 3},
					},
				},
			},
			{
				ID: "app2", Owner: "own2", MemoryMB: 64,
				Functions: []*Function{
					{ID: "fn3", Trigger: TriggerQueue, Invocations: []float64{100}},
				},
			},
		},
	}
}

func TestInvocationsCSVRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := WriteInvocationsCSV(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadInvocationsCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Duration != tr.Duration {
		t.Fatalf("duration = %v", got.Duration)
	}
	if len(got.Apps) != 2 {
		t.Fatalf("apps = %d", len(got.Apps))
	}
	if got.TotalInvocations() != tr.TotalInvocations() {
		t.Fatalf("invocations = %d, want %d", got.TotalInvocations(), tr.TotalInvocations())
	}
	// Function identity, grouping, and triggers survive.
	app1 := got.Apps[0]
	if app1.ID != "app1" || app1.Owner != "own1" || len(app1.Functions) != 2 {
		t.Fatalf("app1 = %+v", app1)
	}
	if app1.Functions[0].Trigger != TriggerHTTP || app1.Functions[1].Trigger != TriggerTimer {
		t.Fatal("triggers lost")
	}
	// Minute-level counts survive exactly.
	origCounts := MinuteCounts(tr.Apps[0].Functions[0].Invocations, tr.Duration)
	gotCounts := MinuteCounts(got.Apps[0].Functions[0].Invocations, got.Duration)
	for i := range origCounts {
		if origCounts[i] != gotCounts[i] {
			t.Fatalf("minute %d: %d != %d", i, gotCounts[i], origCounts[i])
		}
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("reconstructed trace invalid: %v", err)
	}
}

func TestReadInvocationsSpacesWithinMinute(t *testing.T) {
	csvData := "HashOwner,HashApp,HashFunction,Trigger,1,2\n" +
		"o,a,f,http,3,0\n"
	tr, err := ReadInvocationsCSV(strings.NewReader(csvData))
	if err != nil {
		t.Fatal(err)
	}
	inv := tr.Apps[0].Functions[0].Invocations
	if len(inv) != 3 {
		t.Fatalf("len = %d", len(inv))
	}
	// Evenly spaced: 0, 20, 40.
	if inv[0] != 0 || inv[1] != 20 || inv[2] != 40 {
		t.Fatalf("timestamps = %v", inv)
	}
}

func TestReadInvocationsErrors(t *testing.T) {
	cases := []string{
		"",      // no header
		"A,B\n", // malformed header
		"HashOwner,HashApp,HashFunction,Trigger,1\no,a,f,bogus,1\n",  // bad trigger
		"HashOwner,HashApp,HashFunction,Trigger,1\no,a,f,http,x\n",   // bad count
		"HashOwner,HashApp,HashFunction,Trigger,1\no,a,f,http,-1\n",  // negative count
		"HashOwner,HashApp,HashFunction,Trigger,1,2\no,a,f,http,1\n", // short row
	}
	for i, data := range cases {
		if _, err := ReadInvocationsCSV(strings.NewReader(data)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestDurationsCSVRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := WriteDurationsCSV(&buf, tr); err != nil {
		t.Fatal(err)
	}
	// Strip the stats, re-apply from CSV.
	fresh := sampleTrace()
	for _, app := range fresh.Apps {
		for _, fn := range app.Functions {
			fn.ExecStats = ExecStats{}
		}
	}
	if err := ApplyDurationsCSV(&buf, fresh); err != nil {
		t.Fatal(err)
	}
	got := fresh.Apps[0].Functions[0].ExecStats
	if got.AvgSeconds != 0.5 || got.MinSeconds != 0.1 || got.MaxSeconds != 2 || got.Count != 4 {
		t.Fatalf("stats = %+v", got)
	}
}

func TestMemoryCSVRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := WriteMemoryCSV(&buf, tr); err != nil {
		t.Fatal(err)
	}
	fresh := sampleTrace()
	for _, app := range fresh.Apps {
		app.MemoryMB = 0
	}
	if err := ApplyMemoryCSV(&buf, fresh); err != nil {
		t.Fatal(err)
	}
	if fresh.Apps[0].MemoryMB != 170.5 {
		t.Fatalf("memory = %v", fresh.Apps[0].MemoryMB)
	}
	if fresh.Apps[1].MemoryMB != 64 {
		t.Fatalf("memory = %v", fresh.Apps[1].MemoryMB)
	}
}

func TestApplyMemoryCSVDefault(t *testing.T) {
	// A table covering only the first app: the second must take the
	// default and be counted.
	csvData := "HashOwner,HashApp,SampleCount,AverageAllocatedMb\n" +
		"own1,app1,10,512\n"
	tr := sampleTrace()
	for _, app := range tr.Apps {
		app.MemoryMB = 0
	}
	defaulted, err := ApplyMemoryCSVDefault(strings.NewReader(csvData), tr, 0)
	if err != nil {
		t.Fatal(err)
	}
	if defaulted != len(tr.Apps)-1 {
		t.Fatalf("defaulted = %d, want %d", defaulted, len(tr.Apps)-1)
	}
	if tr.Apps[0].MemoryMB != 512 {
		t.Fatalf("covered app memory = %v, want 512", tr.Apps[0].MemoryMB)
	}
	for _, app := range tr.Apps[1:] {
		if app.MemoryMB != DefaultAppMemoryMB {
			t.Fatalf("app %s memory = %v, want the %v default", app.ID, app.MemoryMB, float64(DefaultAppMemoryMB))
		}
	}

	// An explicit default overrides the paper's median.
	tr = sampleTrace()
	for _, app := range tr.Apps {
		app.MemoryMB = 0
	}
	defaulted, err = ApplyMemoryCSVDefault(strings.NewReader(csvData), tr, 99)
	if err != nil {
		t.Fatal(err)
	}
	if defaulted != len(tr.Apps)-1 || tr.Apps[1].MemoryMB != 99 {
		t.Fatalf("defaulted=%d memory=%v, want %d/99", defaulted, tr.Apps[1].MemoryMB, len(tr.Apps)-1)
	}

	// Full coverage defaults nothing; plain ApplyMemoryCSV never
	// defaults.
	tr = sampleTrace()
	var buf bytes.Buffer
	if err := WriteMemoryCSV(&buf, tr); err != nil {
		t.Fatal(err)
	}
	table := buf.String()
	if defaulted, err = ApplyMemoryCSVDefault(strings.NewReader(table), tr, 0); err != nil || defaulted != 0 {
		t.Fatalf("full table: defaulted=%d err=%v", defaulted, err)
	}
	fresh := sampleTrace()
	for _, app := range fresh.Apps {
		app.MemoryMB = 0
	}
	if err := ApplyMemoryCSV(strings.NewReader(csvData), fresh); err != nil {
		t.Fatal(err)
	}
	for _, app := range fresh.Apps[1:] {
		if app.MemoryMB != 0 {
			t.Fatalf("ApplyMemoryCSV must not default, app %s got %v", app.ID, app.MemoryMB)
		}
	}
}

func TestApplyDurationsIgnoresUnknownFunctions(t *testing.T) {
	csvData := "HashOwner,HashApp,HashFunction,Average,Count,Minimum,Maximum\n" +
		"o,a,nope,100,1,50,200\n"
	tr := sampleTrace()
	if err := ApplyDurationsCSV(strings.NewReader(csvData), tr); err != nil {
		t.Fatal(err)
	}
}

func TestApplyDurationsMissingColumn(t *testing.T) {
	csvData := "HashOwner,HashApp,HashFunction\n"
	if err := ApplyDurationsCSV(strings.NewReader(csvData), sampleTrace()); err == nil {
		t.Fatal("expected error for missing columns")
	}
}

func TestApplyMemoryMissingColumn(t *testing.T) {
	if err := ApplyMemoryCSV(strings.NewReader("X,Y\n"), sampleTrace()); err == nil {
		t.Fatal("expected error for missing columns")
	}
}

func TestSortAppsByID(t *testing.T) {
	tr := &Trace{Apps: []*App{{ID: "b"}, {ID: "a"}, {ID: "c"}}}
	SortAppsByID(tr)
	if tr.Apps[0].ID != "a" || tr.Apps[2].ID != "c" {
		t.Fatalf("order = %v %v %v", tr.Apps[0].ID, tr.Apps[1].ID, tr.Apps[2].ID)
	}
}
