package trace

import (
	"bytes"
	"fmt"
	"io"
	"runtime"
	"strings"
	"testing"
	"time"
)

// syntheticCSVTrace builds a trace of identical-shape apps and its
// invocations-CSV encoding, for streaming tests that need controlled
// sizes.
func syntheticCSVTrace(t *testing.T, apps, minutes, perMinute int) (*Trace, []byte) {
	t.Helper()
	tr := &Trace{Duration: time.Duration(minutes) * time.Minute}
	for i := 0; i < apps; i++ {
		app := &App{ID: fmt.Sprintf("app%05d", i), Owner: fmt.Sprintf("own%05d", i/3)}
		for f := 0; f < 2; f++ {
			fn := &Function{ID: fmt.Sprintf("fn%05d_%d", i, f), Trigger: TriggerHTTP}
			for m := 0; m < minutes; m++ {
				base := float64(m) * 60
				for k := 0; k < perMinute; k++ {
					fn.Invocations = append(fn.Invocations, base+60*float64(k)/float64(perMinute))
				}
			}
			app.Functions = append(app.Functions, fn)
		}
		tr.Apps = append(tr.Apps, app)
	}
	var buf bytes.Buffer
	if err := WriteInvocationsCSV(&buf, tr); err != nil {
		t.Fatal(err)
	}
	return tr, buf.Bytes()
}

// TestStreamMatchesBatchReader proves the streaming source and the
// batch reader decode the same CSV into identical traces.
func TestStreamMatchesBatchReader(t *testing.T) {
	_, data := syntheticCSVTrace(t, 17, 12, 3)

	batch, err := ReadInvocationsCSV(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	src, err := StreamInvocationsCSV(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := Collect(src)
	if err != nil {
		t.Fatal(err)
	}

	if streamed.Duration != batch.Duration {
		t.Fatalf("duration %v vs %v", streamed.Duration, batch.Duration)
	}
	if len(streamed.Apps) != len(batch.Apps) {
		t.Fatalf("apps %d vs %d", len(streamed.Apps), len(batch.Apps))
	}
	for i, want := range batch.Apps {
		got := streamed.Apps[i]
		if got.ID != want.ID || got.Owner != want.Owner || len(got.Functions) != len(want.Functions) {
			t.Fatalf("app %d: %s/%s/%d vs %s/%s/%d", i,
				got.ID, got.Owner, len(got.Functions), want.ID, want.Owner, len(want.Functions))
		}
		for j, wfn := range want.Functions {
			gfn := got.Functions[j]
			if gfn.ID != wfn.ID || gfn.Trigger != wfn.Trigger {
				t.Fatalf("app %s fn %d metadata differs", want.ID, j)
			}
			if len(gfn.Invocations) != len(wfn.Invocations) {
				t.Fatalf("app %s fn %s: %d vs %d invocations",
					want.ID, wfn.ID, len(gfn.Invocations), len(wfn.Invocations))
			}
			for k := range wfn.Invocations {
				if gfn.Invocations[k] != wfn.Invocations[k] {
					t.Fatalf("app %s fn %s invocation %d: %v vs %v",
						want.ID, wfn.ID, k, gfn.Invocations[k], wfn.Invocations[k])
				}
			}
		}
	}
}

// TestStreamMalformedRows mirrors the batch reader's error cases plus
// the streaming-only non-contiguous-app detection.
func TestStreamMalformedRows(t *testing.T) {
	const header = "HashOwner,HashApp,HashFunction,Trigger,1\n"
	cases := []struct {
		name string
		csv  string
	}{
		{"empty", ""},
		{"bad header", "A,B\n"},
		{"bad trigger", header + "o,a,f,bogus,1\n"},
		{"bad count", header + "o,a,f,http,x\n"},
		{"negative count", header + "o,a,f,http,-1\n"},
		{"short row", header + "o,a,f,http\n"},
		{"long row", header + "o,a,f,http,1,2\n"},
		{"split app", header + "o,a,f1,http,1\no,b,f2,http,1\no,a,f3,http,1\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			src, err := StreamInvocationsCSV(strings.NewReader(c.csv))
			if err != nil {
				return // header-level rejection is fine
			}
			for {
				_, err := src.Next()
				if err == io.EOF {
					t.Fatalf("case %q: streamed cleanly, want error", c.name)
				}
				if err != nil {
					// Errors are sticky.
					if _, err2 := src.Next(); err2 != err {
						t.Fatalf("case %q: error not sticky: %v then %v", c.name, err, err2)
					}
					return
				}
			}
		})
	}
}

// TestStreamErrorMessagesMatchBatch pins that shared-row parsing gives
// both readers the same diagnostics.
func TestStreamErrorMessagesMatchBatch(t *testing.T) {
	const bad = "HashOwner,HashApp,HashFunction,Trigger,1\no,a,f,http,1\no,b,g,bogus,2\n"
	_, batchErr := ReadInvocationsCSV(strings.NewReader(bad))
	if batchErr == nil {
		t.Fatal("batch reader accepted bad trigger")
	}
	src, err := StreamInvocationsCSV(strings.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	var streamErr error
	for streamErr == nil {
		_, streamErr = src.Next()
	}
	if streamErr == io.EOF {
		t.Fatal("stream reader accepted bad trigger")
	}
	if streamErr.Error() != batchErr.Error() {
		t.Fatalf("diagnostics differ:\n  stream: %v\n  batch:  %v", streamErr, batchErr)
	}
}

// drainSource consumes src discarding apps, returning the app count.
func drainSource(t *testing.T, src Source) int {
	t.Helper()
	n := 0
	for {
		_, err := src.Next()
		if err == io.EOF {
			return n
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
}

// TestStreamConstantMemory is the allocs-per-app regression test for
// the streaming path: the per-app allocation cost of draining a CSV
// must not grow with the number of apps in the trace (no hidden
// accumulation), and the live heap after a streaming drain must stay
// far below the materialized trace.
func TestStreamConstantMemory(t *testing.T) {
	_, small := syntheticCSVTrace(t, 40, 30, 4)
	_, large := syntheticCSVTrace(t, 160, 30, 4)

	perApp := func(data []byte) float64 {
		src, err := StreamInvocationsCSV(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		n := drainSource(t, src)
		runtime.ReadMemStats(&after)
		return float64(after.TotalAlloc-before.TotalAlloc) / float64(n)
	}
	// Warm up pools/laziness once before measuring.
	perApp(small)

	smallPer := perApp(small)
	largePer := perApp(large)
	if largePer > 1.5*smallPer {
		t.Fatalf("allocs/app grew with trace size: %.0f B/app at 40 apps vs %.0f B/app at 160",
			smallPer, largePer)
	}

	// Live-heap check: after draining (holding no apps), the retained
	// memory must be a small fraction of what materializing retains.
	measureLive := func(f func() any) (retained uint64, keep any) {
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		keep = f()
		runtime.GC()
		runtime.ReadMemStats(&after)
		if after.HeapAlloc < before.HeapAlloc {
			return 0, keep
		}
		return after.HeapAlloc - before.HeapAlloc, keep
	}
	streamed, _ := measureLive(func() any {
		src, err := StreamInvocationsCSV(bytes.NewReader(large))
		if err != nil {
			t.Fatal(err)
		}
		drainSource(t, src)
		return src // retain only the source itself
	})
	materialized, tr := measureLive(func() any {
		tr, err := ReadInvocationsCSV(bytes.NewReader(large))
		if err != nil {
			t.Fatal(err)
		}
		return tr
	})
	_ = tr
	if materialized == 0 {
		t.Skip("GC accounting too noisy to compare")
	}
	if streamed > materialized/4 {
		t.Fatalf("streaming retained %d B, materialized %d B — not constant-memory", streamed, materialized)
	}
}
