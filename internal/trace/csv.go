package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"
)

// The CSV schemas mirror the AzurePublicDataset release:
//
//   invocations:  HashOwner,HashApp,HashFunction,Trigger,1,2,...,N
//   durations:    HashOwner,HashApp,HashFunction,Average,Count,Minimum,Maximum
//   memory:       HashOwner,HashApp,SampleCount,AverageAllocatedMb
//
// Durations are written in milliseconds, as in the published dataset.

// WriteInvocationsCSV writes the per-minute invocation-count table for
// tr to w. One row per function; the count columns cover the whole
// trace duration at 1-minute resolution.
func WriteInvocationsCSV(w io.Writer, tr *Trace) error {
	cw := csv.NewWriter(w)
	minutes := int(tr.Duration.Minutes())
	header := make([]string, 0, 4+minutes)
	header = append(header, "HashOwner", "HashApp", "HashFunction", "Trigger")
	for m := 1; m <= minutes; m++ {
		header = append(header, strconv.Itoa(m))
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("trace: writing invocations header: %w", err)
	}
	row := make([]string, len(header))
	for _, app := range tr.Apps {
		for _, fn := range app.Functions {
			row[0], row[1], row[2], row[3] = app.Owner, app.ID, fn.ID, fn.Trigger.String()
			counts := MinuteCounts(fn.Invocations, tr.Duration)
			for m := 0; m < minutes; m++ {
				row[4+m] = strconv.Itoa(counts[m])
			}
			if err := cw.Write(row); err != nil {
				return fmt.Errorf("trace: writing invocations row: %w", err)
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteDurationsCSV writes the per-function execution-time summary
// (milliseconds, as in the dataset).
func WriteDurationsCSV(w io.Writer, tr *Trace) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"HashOwner", "HashApp", "HashFunction", "Average", "Count", "Minimum", "Maximum",
	}); err != nil {
		return fmt.Errorf("trace: writing durations header: %w", err)
	}
	for _, app := range tr.Apps {
		for _, fn := range app.Functions {
			s := fn.ExecStats
			if err := cw.Write([]string{
				app.Owner, app.ID, fn.ID,
				formatMillis(s.AvgSeconds),
				strconv.FormatInt(s.Count, 10),
				formatMillis(s.MinSeconds),
				formatMillis(s.MaxSeconds),
			}); err != nil {
				return fmt.Errorf("trace: writing durations row: %w", err)
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteMemoryCSV writes the per-application memory summary (MB).
func WriteMemoryCSV(w io.Writer, tr *Trace) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"HashOwner", "HashApp", "SampleCount", "AverageAllocatedMb",
	}); err != nil {
		return fmt.Errorf("trace: writing memory header: %w", err)
	}
	for _, app := range tr.Apps {
		if err := cw.Write([]string{
			app.Owner, app.ID,
			strconv.Itoa(app.TotalInvocations()),
			strconv.FormatFloat(app.MemoryMB, 'f', 2, 64),
		}); err != nil {
			return fmt.Errorf("trace: writing memory row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

func formatMillis(seconds float64) string {
	return strconv.FormatFloat(seconds*1000, 'f', 3, 64)
}

// ReadInvocationsCSV parses an invocation-count table into a Trace.
// Per-minute counts become timestamps spaced evenly within each
// minute; minute m (1-based column) covers seconds [60(m-1), 60m).
// Functions sharing a HashApp are grouped into one App.
func ReadInvocationsCSV(r io.Reader) (*Trace, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: reading invocations header: %w", err)
	}
	if err := checkInvocationsHeader(header); err != nil {
		return nil, err
	}
	minutes := len(header) - 4

	apps := make(map[string]*App)
	var order []string
	var counts []int
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: reading invocations line %d: %w", line, err)
		}
		owner, appID, fn, err := parseInvocationRow(rec, minutes, line, &counts)
		if err != nil {
			return nil, err
		}
		app, ok := apps[appID]
		if !ok {
			app = &App{ID: appID, Owner: owner}
			apps[appID] = app
			order = append(order, appID)
		}
		app.Functions = append(app.Functions, fn)
	}

	tr := &Trace{Duration: time.Duration(minutes) * time.Minute}
	for _, id := range order {
		tr.Apps = append(tr.Apps, apps[id])
	}
	return tr, nil
}

// ApplyDurationsCSV parses a durations table and fills ExecStats on
// the matching functions of tr. Unknown functions are ignored; rows in
// milliseconds are converted to seconds.
func ApplyDurationsCSV(r io.Reader, tr *Trace) error {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return fmt.Errorf("trace: reading durations header: %w", err)
	}
	col := indexColumns(header)
	for _, need := range []string{"HashFunction", "Average", "Count", "Minimum", "Maximum"} {
		if _, ok := col[need]; !ok {
			return fmt.Errorf("trace: durations header missing %s", need)
		}
	}
	fns := make(map[string]*Function)
	for _, app := range tr.Apps {
		for _, fn := range app.Functions {
			fns[fn.ID] = fn
		}
	}
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("trace: reading durations line %d: %w", line, err)
		}
		fn, ok := fns[rec[col["HashFunction"]]]
		if !ok {
			continue
		}
		avg, err1 := strconv.ParseFloat(rec[col["Average"]], 64)
		minMs, err2 := strconv.ParseFloat(rec[col["Minimum"]], 64)
		maxMs, err3 := strconv.ParseFloat(rec[col["Maximum"]], 64)
		count, err4 := strconv.ParseInt(rec[col["Count"]], 10, 64)
		for _, e := range []error{err1, err2, err3, err4} {
			if e != nil {
				return fmt.Errorf("trace: durations line %d: %w", line, e)
			}
		}
		fn.ExecStats = ExecStats{
			AvgSeconds: avg / 1000,
			MinSeconds: minMs / 1000,
			MaxSeconds: maxMs / 1000,
			Count:      count,
		}
	}
}

// DefaultAppMemoryMB is the paper's median per-application allocated
// memory (Figure 8: ~170 MB), the fallback charge for apps absent
// from a memory table. Without a default such apps keep MemoryMB == 0
// and are invisible to capacity accounting — a cluster simulation
// would place and evict them for free.
const DefaultAppMemoryMB = 170

// ApplyMemoryCSV parses a memory table and fills MemoryMB on the
// matching apps of tr. Unknown apps are ignored; apps without a row
// keep MemoryMB == 0 (see ApplyMemoryCSVDefault).
func ApplyMemoryCSV(r io.Reader, tr *Trace) error {
	_, err := applyMemoryCSV(r, tr, 0)
	return err
}

// ApplyMemoryCSVDefault is ApplyMemoryCSV plus a fallback: apps of tr
// still carrying MemoryMB == 0 after the table is applied (no row, or
// a zero row) are charged defaultMB instead, and the count of such
// defaulted apps is returned so callers can surface the data gap.
// defaultMB <= 0 applies DefaultAppMemoryMB.
func ApplyMemoryCSVDefault(r io.Reader, tr *Trace, defaultMB float64) (defaulted int, err error) {
	if defaultMB <= 0 {
		defaultMB = DefaultAppMemoryMB
	}
	return applyMemoryCSV(r, tr, defaultMB)
}

func applyMemoryCSV(r io.Reader, tr *Trace, defaultMB float64) (defaulted int, err error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return 0, fmt.Errorf("trace: reading memory header: %w", err)
	}
	col := indexColumns(header)
	for _, need := range []string{"HashApp", "AverageAllocatedMb"} {
		if _, ok := col[need]; !ok {
			return 0, fmt.Errorf("trace: memory header missing %s", need)
		}
	}
	apps := make(map[string]*App)
	for _, app := range tr.Apps {
		apps[app.ID] = app
	}
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return 0, fmt.Errorf("trace: reading memory line %d: %w", line, err)
		}
		app, ok := apps[rec[col["HashApp"]]]
		if !ok {
			continue
		}
		mb, err := strconv.ParseFloat(rec[col["AverageAllocatedMb"]], 64)
		if err != nil {
			return 0, fmt.Errorf("trace: memory line %d: %w", line, err)
		}
		app.MemoryMB = mb
	}
	if defaultMB > 0 {
		for _, app := range tr.Apps {
			if app.MemoryMB == 0 {
				app.MemoryMB = defaultMB
				defaulted++
			}
		}
	}
	return defaulted, nil
}

func indexColumns(header []string) map[string]int {
	col := make(map[string]int, len(header))
	for i, name := range header {
		col[name] = i
	}
	return col
}

// SortAppsByID orders tr.Apps lexicographically, for deterministic
// output independent of generation order.
func SortAppsByID(tr *Trace) {
	sort.Slice(tr.Apps, func(i, j int) bool { return tr.Apps[i].ID < tr.Apps[j].ID })
}
