package trace

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func mkApp(id string, fns ...*Function) *App {
	return &App{ID: id, Owner: "o-" + id, Functions: fns}
}

func TestTriggerRoundTrip(t *testing.T) {
	for _, trig := range AllTriggers() {
		got, err := ParseTrigger(trig.String())
		if err != nil {
			t.Fatalf("ParseTrigger(%q): %v", trig.String(), err)
		}
		if got != trig {
			t.Fatalf("round trip %v -> %v", trig, got)
		}
	}
}

func TestParseTriggerUnknown(t *testing.T) {
	if _, err := ParseTrigger("bogus"); err == nil {
		t.Fatal("expected error")
	}
}

func TestTriggerStringUnknownValue(t *testing.T) {
	if s := TriggerType(200).String(); s == "" {
		t.Fatal("String of out-of-range trigger should not be empty")
	}
}

func TestAppInvocationTimesMergesAndSorts(t *testing.T) {
	app := mkApp("a",
		&Function{ID: "f1", Invocations: []float64{10, 30}},
		&Function{ID: "f2", Invocations: []float64{5, 20, 40}},
	)
	got := app.InvocationTimes()
	want := []float64{5, 10, 20, 30, 40}
	if len(got) != len(want) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestAppInvocationTimesCached(t *testing.T) {
	app := mkApp("a", &Function{ID: "f", Invocations: []float64{1}})
	first := app.InvocationTimes()
	app.Functions[0].Invocations = append(app.Functions[0].Invocations, 2)
	if len(app.InvocationTimes()) != len(first) {
		t.Fatal("expected cached result before InvalidateCache")
	}
	app.InvalidateCache()
	if len(app.InvocationTimes()) != 2 {
		t.Fatal("InvalidateCache should refresh")
	}
}

func TestAppIATs(t *testing.T) {
	app := mkApp("a", &Function{ID: "f", Invocations: []float64{10, 25, 85}})
	iats := app.IATs()
	if len(iats) != 2 || iats[0] != 15 || iats[1] != 60 {
		t.Fatalf("iats = %v", iats)
	}
}

func TestAppIATsTooFew(t *testing.T) {
	if iats := mkApp("a", &Function{ID: "f", Invocations: []float64{3}}).IATs(); iats != nil {
		t.Fatalf("expected nil, got %v", iats)
	}
	if iats := mkApp("b").IATs(); iats != nil {
		t.Fatalf("expected nil for empty app, got %v", iats)
	}
}

func TestAppTriggerSet(t *testing.T) {
	app := mkApp("a",
		&Function{ID: "f1", Trigger: TriggerHTTP},
		&Function{ID: "f2", Trigger: TriggerTimer},
		&Function{ID: "f3", Trigger: TriggerHTTP},
	)
	if !app.HasTrigger(TriggerHTTP) || !app.HasTrigger(TriggerTimer) {
		t.Fatal("missing triggers")
	}
	if app.HasTrigger(TriggerQueue) {
		t.Fatal("unexpected queue trigger")
	}
	wantMask := uint8(1<<TriggerHTTP | 1<<TriggerTimer)
	if app.TriggerSet() != wantMask {
		t.Fatalf("mask = %b, want %b", app.TriggerSet(), wantMask)
	}
}

func TestTraceTotals(t *testing.T) {
	tr := &Trace{
		Duration: time.Hour,
		Apps: []*App{
			mkApp("a", &Function{ID: "f1", Invocations: []float64{1, 2}}),
			mkApp("b", &Function{ID: "f2", Invocations: []float64{3}},
				&Function{ID: "f3"}),
		},
	}
	if tr.TotalInvocations() != 3 {
		t.Fatalf("invocations = %d", tr.TotalInvocations())
	}
	if tr.TotalFunctions() != 3 {
		t.Fatalf("functions = %d", tr.TotalFunctions())
	}
}

func TestValidateAcceptsGoodTrace(t *testing.T) {
	tr := &Trace{
		Duration: time.Hour,
		Apps: []*App{
			mkApp("a", &Function{ID: "f1", Invocations: []float64{0, 1800, 3600}}),
		},
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateRejectsBadTraces(t *testing.T) {
	cases := []struct {
		name string
		tr   *Trace
	}{
		{"empty app id", &Trace{Duration: time.Hour, Apps: []*App{{ID: ""}}}},
		{"empty fn id", &Trace{Duration: time.Hour, Apps: []*App{
			mkApp("a", &Function{ID: ""})}}},
		{"dup fn id", &Trace{Duration: time.Hour, Apps: []*App{
			mkApp("a", &Function{ID: "f"}), mkApp("b", &Function{ID: "f"})}}},
		{"unsorted", &Trace{Duration: time.Hour, Apps: []*App{
			mkApp("a", &Function{ID: "f", Invocations: []float64{5, 3}})}}},
		{"negative", &Trace{Duration: time.Hour, Apps: []*App{
			mkApp("a", &Function{ID: "f", Invocations: []float64{-1}})}}},
		{"beyond horizon", &Trace{Duration: time.Hour, Apps: []*App{
			mkApp("a", &Function{ID: "f", Invocations: []float64{3601}})}}},
	}
	for _, c := range cases {
		if err := c.tr.Validate(); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestMinuteCounts(t *testing.T) {
	times := []float64{0, 59.9, 60, 119, 600}
	counts := MinuteCounts(times, 11*time.Minute)
	if counts[0] != 2 || counts[1] != 2 || counts[10] != 1 {
		t.Fatalf("counts = %v", counts)
	}
	var sum int
	for _, c := range counts {
		sum += c
	}
	if sum != len(times) {
		t.Fatalf("sum = %d", sum)
	}
}

func TestMinuteCountsEdge(t *testing.T) {
	// Exactly at the horizon: clamps into the last minute.
	counts := MinuteCounts([]float64{120}, 2*time.Minute)
	if counts[1] != 1 {
		t.Fatalf("counts = %v", counts)
	}
	if MinuteCounts([]float64{1}, 0) != nil {
		t.Fatal("zero horizon should be nil")
	}
}

func TestMinuteCountsPreservesTotal(t *testing.T) {
	check := func(seed int64) bool {
		n := int(math.Abs(float64(seed%100))) + 1
		times := make([]float64, n)
		for i := range times {
			times[i] = float64((seed*(int64(i)+7))%36000) / 10
			if times[i] < 0 {
				times[i] = -times[i]
			}
		}
		counts := MinuteCounts(times, time.Hour)
		var sum int
		for _, c := range counts {
			sum += c
		}
		return sum == n
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}
