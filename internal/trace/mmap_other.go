//go:build !unix

package trace

import "os"

// Non-unix platforms always take the buffered read path.
func mmapFile(f *os.File) ([]byte, bool) { return nil, false }

func munmapFile(data []byte) {}
