package trace

import (
	"fmt"
	"sort"
	"time"
)

// Function is one serverless function: a trigger plus its invocation
// timestamps and execution-time statistics.
type Function struct {
	// ID is unique within the trace (the dataset's HashFunction).
	ID string
	// Trigger is the function's trigger class.
	Trigger TriggerType
	// Invocations holds invocation times in seconds from trace start,
	// sorted ascending.
	Invocations []float64
	// ExecStats summarizes the function's execution times in seconds.
	ExecStats ExecStats
}

// ExecStats carries the per-function execution time summary the
// dataset publishes (average/min/max over the recorded samples).
type ExecStats struct {
	AvgSeconds float64
	MinSeconds float64
	MaxSeconds float64
	Count      int64
}

// App is an application: the unit of scheduling, memory allocation and
// keep-alive decisions (§2). It groups one or more functions.
type App struct {
	// ID is unique within the trace (the dataset's HashApp).
	ID string
	// Owner identifies the owning account (the dataset's HashOwner).
	Owner string
	// Functions lists the app's functions.
	Functions []*Function
	// MemoryMB is the app's average allocated memory in MB.
	MemoryMB float64

	merged []float64 // cached merged invocation times
}

// Trace is a complete workload: a set of applications observed for
// Duration.
type Trace struct {
	Duration time.Duration
	Apps     []*App
}

// Validate checks structural invariants: sorted non-negative
// timestamps within duration, unique function IDs, non-empty IDs.
func (tr *Trace) Validate() error {
	horizon := tr.Duration.Seconds()
	seen := make(map[string]bool)
	for _, app := range tr.Apps {
		if app.ID == "" {
			return fmt.Errorf("trace: app with empty ID")
		}
		for _, fn := range app.Functions {
			if fn.ID == "" {
				return fmt.Errorf("trace: app %s has function with empty ID", app.ID)
			}
			if seen[fn.ID] {
				return fmt.Errorf("trace: duplicate function ID %s", fn.ID)
			}
			seen[fn.ID] = true
			for i, ts := range fn.Invocations {
				if ts < 0 || ts > horizon {
					return fmt.Errorf("trace: function %s invocation %d at %v outside [0, %v]",
						fn.ID, i, ts, horizon)
				}
				if i > 0 && ts < fn.Invocations[i-1] {
					return fmt.Errorf("trace: function %s invocations not sorted at %d", fn.ID, i)
				}
			}
		}
	}
	return nil
}

// InvocationTimes returns the app's merged, sorted invocation times in
// seconds from trace start (the union over its functions). The result
// is cached; callers must not modify it. The memoization is not
// synchronized — within one simulation each app is walked by exactly
// one worker, but a trace shared across concurrently-running
// simulations must be warmed first (Trace.WarmCaches).
func (a *App) InvocationTimes() []float64 {
	if a.merged != nil {
		return a.merged
	}
	var total int
	for _, fn := range a.Functions {
		total += len(fn.Invocations)
	}
	merged := make([]float64, 0, total)
	for _, fn := range a.Functions {
		merged = append(merged, fn.Invocations...)
	}
	sort.Float64s(merged)
	a.merged = merged
	return merged
}

// InvalidateCache drops the cached merged invocation times; call it
// after mutating any function's Invocations.
func (a *App) InvalidateCache() { a.merged = nil }

// WarmCaches precomputes every app's merged invocation times, leaving
// no lazy cache writes behind. Call it before handing one trace to
// several simulations running concurrently (InvocationTimes memoizes
// without synchronization); the sweep engine warms every trace it
// shares across cells.
func (t *Trace) WarmCaches() {
	for _, a := range t.Apps {
		a.InvocationTimes()
	}
}

// TotalInvocations returns the number of invocations across the app.
func (a *App) TotalInvocations() int {
	var n int
	for _, fn := range a.Functions {
		n += len(fn.Invocations)
	}
	return n
}

// HasTrigger reports whether any function has the given trigger.
func (a *App) HasTrigger(t TriggerType) bool {
	for _, fn := range a.Functions {
		if fn.Trigger == t {
			return true
		}
	}
	return false
}

// TriggerSet returns the bitmask of trigger classes present in the
// app; bit i corresponds to TriggerType(i).
func (a *App) TriggerSet() uint8 {
	var mask uint8
	for _, fn := range a.Functions {
		mask |= 1 << fn.Trigger
	}
	return mask
}

// IATs returns the inter-arrival times (seconds) between the app's
// consecutive invocations. An app with fewer than two invocations has
// no IATs.
func (a *App) IATs() []float64 {
	times := a.InvocationTimes()
	if len(times) < 2 {
		return nil
	}
	iats := make([]float64, len(times)-1)
	for i := 1; i < len(times); i++ {
		iats[i-1] = times[i] - times[i-1]
	}
	return iats
}

// TotalInvocations returns the number of invocations in the trace.
func (tr *Trace) TotalInvocations() int {
	var n int
	for _, app := range tr.Apps {
		n += app.TotalInvocations()
	}
	return n
}

// TotalFunctions returns the number of functions in the trace.
func (tr *Trace) TotalFunctions() int {
	var n int
	for _, app := range tr.Apps {
		n += len(app.Functions)
	}
	return n
}

// MinuteCounts bins a sorted timestamp slice (seconds) into per-minute
// counts over the given horizon. Invocations exactly at the horizon
// fall into the last minute.
func MinuteCounts(times []float64, horizon time.Duration) []int {
	minutes := int(horizon.Minutes())
	if minutes <= 0 {
		return nil
	}
	counts := make([]int, minutes)
	for _, ts := range times {
		m := int(ts / 60)
		if m >= minutes {
			m = minutes - 1
		}
		if m < 0 {
			m = 0
		}
		counts[m]++
	}
	return counts
}
