package stats

import "math"

// LogNormal is the two-parameter log-normal distribution. The paper
// fits function execution times with a log-normal of ln-mean -0.38 and
// ln-sigma 2.36 (Figure 7).
type LogNormal struct {
	Mu    float64 // mean of ln X
	Sigma float64 // stddev of ln X
}

// Sample draws one variate.
func (d LogNormal) Sample(r *RNG) float64 {
	return math.Exp(d.Mu + d.Sigma*r.NormFloat64())
}

// CDF returns P(X <= x).
func (d LogNormal) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return 0.5 * math.Erfc(-(math.Log(x)-d.Mu)/(d.Sigma*math.Sqrt2))
}

// Quantile returns the q-quantile (q in (0,1)).
func (d LogNormal) Quantile(q float64) float64 {
	return math.Exp(d.Mu + d.Sigma*normalQuantile(q))
}

// Mean returns E[X].
func (d LogNormal) Mean() float64 {
	return math.Exp(d.Mu + d.Sigma*d.Sigma/2)
}

// Burr is the Burr type XII distribution with shape parameters C and K
// and scale Lambda. The paper fits per-application allocated memory
// with Burr(c=11.652, k=0.221, lambda=107.083) MB (Figure 8).
type Burr struct {
	C      float64
	K      float64
	Lambda float64
}

// CDF returns P(X <= x) = 1 - (1 + (x/lambda)^c)^(-k).
func (d Burr) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return 1 - math.Pow(1+math.Pow(x/d.Lambda, d.C), -d.K)
}

// Quantile returns the q-quantile via the closed-form inverse CDF.
func (d Burr) Quantile(q float64) float64 {
	if q <= 0 {
		return 0
	}
	if q >= 1 {
		return math.Inf(1)
	}
	return d.Lambda * math.Pow(math.Pow(1-q, -1/d.K)-1, 1/d.C)
}

// Sample draws one variate by inverse-CDF sampling.
func (d Burr) Sample(r *RNG) float64 {
	return d.Quantile(r.Float64Open())
}

// Exponential is the exponential distribution with the given Rate.
type Exponential struct {
	Rate float64
}

// Sample draws one variate.
func (d Exponential) Sample(r *RNG) float64 {
	return r.ExpFloat64() / d.Rate
}

// CDF returns P(X <= x).
func (d Exponential) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return 1 - math.Exp(-d.Rate*x)
}

// Mean returns 1/Rate.
func (d Exponential) Mean() float64 { return 1 / d.Rate }

// HyperExp is a two-phase hyper-exponential distribution: with
// probability P the variate is Exp(Rate1), otherwise Exp(Rate2).
// Mixing two very different rates produces the CV > 1 inter-arrival
// behaviour the paper observes for a large share of applications
// (Figure 6).
type HyperExp struct {
	P     float64
	Rate1 float64
	Rate2 float64
}

// Sample draws one variate.
func (d HyperExp) Sample(r *RNG) float64 {
	if r.Bool(d.P) {
		return r.ExpFloat64() / d.Rate1
	}
	return r.ExpFloat64() / d.Rate2
}

// Mean returns E[X].
func (d HyperExp) Mean() float64 {
	return d.P/d.Rate1 + (1-d.P)/d.Rate2
}

// CV returns the coefficient of variation of the distribution.
func (d HyperExp) CV() float64 {
	m := d.Mean()
	m2 := 2*d.P/(d.Rate1*d.Rate1) + 2*(1-d.P)/(d.Rate2*d.Rate2)
	return math.Sqrt(m2-m*m) / m
}

// HyperExpForCV constructs a balanced two-phase hyper-exponential with
// the requested mean and coefficient of variation (cv >= 1). It uses
// the standard balanced-means parameterization.
func HyperExpForCV(mean, cv float64) HyperExp {
	if cv < 1 {
		cv = 1
	}
	c2 := cv * cv
	p := 0.5 * (1 + math.Sqrt((c2-1)/(c2+1)))
	r1 := 2 * p / mean
	r2 := 2 * (1 - p) / mean
	return HyperExp{P: p, Rate1: r1, Rate2: r2}
}

// Zipf samples ranks {1..N} with probability proportional to
// rank^(-S). It precomputes the CDF for O(log N) sampling and is used
// to produce the heavy-tailed popularity skew of Figure 5(b).
type Zipf struct {
	cdf []float64
}

// NewZipf builds a Zipf sampler over n ranks with exponent s > 0.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic("stats: NewZipf with non-positive n")
	}
	cdf := make([]float64, n)
	var total float64
	for i := 0; i < n; i++ {
		total += math.Pow(float64(i+1), -s)
		cdf[i] = total
	}
	for i := range cdf {
		cdf[i] /= total
	}
	return &Zipf{cdf: cdf}
}

// Sample returns a rank in [1, N].
func (z *Zipf) Sample(r *RNG) int {
	u := r.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo + 1
}

// Poisson draws a Poisson-distributed count with the given mean using
// Knuth's method for small means and normal approximation for large.
func (r *RNG) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 64 {
		// Normal approximation with continuity correction.
		n := int(math.Round(mean + math.Sqrt(mean)*r.NormFloat64()))
		if n < 0 {
			n = 0
		}
		return n
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// normalQuantile computes the standard normal quantile function using
// the Acklam rational approximation (relative error < 1.15e-9).
func normalQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}
	const pLow, pHigh = 0.02425, 1 - 0.02425
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= pHigh:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
}

// NormalQuantile exposes the standard normal quantile function.
func NormalQuantile(p float64) float64 { return normalQuantile(p) }

// PiecewiseLogCDF is a distribution defined by CDF anchor points whose
// X values are interpolated log-linearly between anchors. The workload
// generator uses it to reproduce the daily-invocation-rate CDF of
// Figure 5(a), which spans 8 orders of magnitude and is published only
// as a curve: we pin the curve at the anchor values the paper states
// (45% of apps at <= 1/hour, 81% at <= 1/minute, ...) and interpolate
// between them.
type PiecewiseLogCDF struct {
	xs []float64 // ascending, > 0
	ps []float64 // ascending in [0,1], same length
}

// NewPiecewiseLogCDF builds the distribution from anchors (x_i, p_i)
// with x ascending and positive and p ascending spanning [0, 1]. It
// panics on malformed input.
func NewPiecewiseLogCDF(xs, ps []float64) *PiecewiseLogCDF {
	if len(xs) != len(ps) || len(xs) < 2 {
		panic("stats: PiecewiseLogCDF needs >= 2 matched anchors")
	}
	for i := range xs {
		if xs[i] <= 0 {
			panic("stats: PiecewiseLogCDF requires positive x anchors")
		}
		if i > 0 && (xs[i] <= xs[i-1] || ps[i] < ps[i-1]) {
			panic("stats: PiecewiseLogCDF anchors must be ascending")
		}
	}
	if ps[0] != 0 || ps[len(ps)-1] != 1 {
		panic("stats: PiecewiseLogCDF probabilities must span [0,1]")
	}
	cx := make([]float64, len(xs))
	cp := make([]float64, len(ps))
	copy(cx, xs)
	copy(cp, ps)
	return &PiecewiseLogCDF{xs: cx, ps: cp}
}

// Quantile returns the q-quantile, interpolating log-linearly in x.
func (d *PiecewiseLogCDF) Quantile(q float64) float64 {
	if q <= d.ps[0] {
		return d.xs[0]
	}
	n := len(d.ps)
	if q >= d.ps[n-1] {
		return d.xs[n-1]
	}
	// Find segment with ps[i] <= q < ps[i+1].
	lo, hi := 0, n-1
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if d.ps[mid] <= q {
			lo = mid
		} else {
			hi = mid
		}
	}
	p0, p1 := d.ps[lo], d.ps[lo+1]
	if p1 == p0 {
		return d.xs[lo]
	}
	frac := (q - p0) / (p1 - p0)
	lx0, lx1 := math.Log(d.xs[lo]), math.Log(d.xs[lo+1])
	return math.Exp(lx0 + frac*(lx1-lx0))
}

// CDF returns P(X <= x) by inverse interpolation.
func (d *PiecewiseLogCDF) CDF(x float64) float64 {
	if x <= d.xs[0] {
		return d.ps[0]
	}
	n := len(d.xs)
	if x >= d.xs[n-1] {
		return 1
	}
	lo, hi := 0, n-1
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if d.xs[mid] <= x {
			lo = mid
		} else {
			hi = mid
		}
	}
	lx0, lx1 := math.Log(d.xs[lo]), math.Log(d.xs[lo+1])
	frac := (math.Log(x) - lx0) / (lx1 - lx0)
	return d.ps[lo] + frac*(d.ps[lo+1]-d.ps[lo])
}

// Sample draws one variate.
func (d *PiecewiseLogCDF) Sample(r *RNG) float64 {
	return d.Quantile(r.Float64())
}
