package stats

import "math"

// Welford accumulates mean and variance online using Welford's
// algorithm (Welford 1962), the method the paper uses to track the
// coefficient of variation of histogram bin counts cheaply. The zero
// value is ready to use.
type Welford struct {
	n    int64
	mean float64
	m2   float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	w.n++
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// Remove cancels one previously added observation. This supports
// constant-time updates when a single histogram bin count changes:
// remove the old value, add the new one.
func (w *Welford) Remove(x float64) {
	if w.n <= 0 {
		panic("stats: Welford.Remove on empty accumulator")
	}
	if w.n == 1 {
		w.n, w.mean, w.m2 = 0, 0, 0
		return
	}
	n := float64(w.n)
	oldMean := (n*w.mean - x) / (n - 1)
	w.m2 -= (x - w.mean) * (x - oldMean)
	if w.m2 < 0 { // guard against round-off
		w.m2 = 0
	}
	w.mean = oldMean
	w.n--
}

// Replace swaps one observation for another in constant time.
func (w *Welford) Replace(old, new float64) {
	if w.n <= 0 {
		panic("stats: Welford.Replace on empty accumulator")
	}
	delta := new - old
	oldMean := w.mean
	w.mean += delta / float64(w.n)
	// Update of sum of squared deviations when a single point moves:
	// m2' = m2 + (new-old)*(new - mean' + old - mean)
	w.m2 += delta * (new - w.mean + old - oldMean)
	if w.m2 < 0 {
		w.m2 = 0
	}
}

// Count returns the number of observations.
func (w *Welford) Count() int64 { return w.n }

// Mean returns the running mean (0 if empty).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the population variance (0 if fewer than 1 sample).
func (w *Welford) Variance() float64 {
	if w.n < 1 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// SampleVariance returns the unbiased sample variance (0 if n < 2).
func (w *Welford) SampleVariance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the population standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// CV returns the coefficient of variation (stddev / mean). A zero mean
// yields CV 0 by convention, matching the policy's use where an
// all-zero histogram is treated as non-representative.
func (w *Welford) CV() float64 {
	if w.mean == 0 {
		return 0
	}
	return w.StdDev() / math.Abs(w.mean)
}

// Reset returns the accumulator to its zero state.
func (w *Welford) Reset() { *w = Welford{} }
