package stats

import (
	"math"
	"testing"
)

func TestNelderMeadQuadratic(t *testing.T) {
	f := func(x []float64) float64 {
		return (x[0]-3)*(x[0]-3) + (x[1]+2)*(x[1]+2) + 5
	}
	x, v := NelderMead(f, []float64{0, 0}, NelderMeadOptions{MaxIter: 500})
	if math.Abs(x[0]-3) > 1e-3 || math.Abs(x[1]+2) > 1e-3 {
		t.Fatalf("minimum at %v, want (3,-2)", x)
	}
	if math.Abs(v-5) > 1e-5 {
		t.Fatalf("value = %v, want 5", v)
	}
}

func TestNelderMeadRosenbrock(t *testing.T) {
	f := func(x []float64) float64 {
		a := 1 - x[0]
		b := x[1] - x[0]*x[0]
		return a*a + 100*b*b
	}
	x, _ := NelderMead(f, []float64{-1.2, 1}, NelderMeadOptions{MaxIter: 5000, Tol: 1e-14})
	if math.Abs(x[0]-1) > 0.01 || math.Abs(x[1]-1) > 0.01 {
		t.Fatalf("Rosenbrock minimum at %v, want (1,1)", x)
	}
}

func TestNelderMeadRejectsInfRegions(t *testing.T) {
	// f is +Inf outside |x| < 10; minimum at 4.
	f := func(x []float64) float64 {
		if math.Abs(x[0]) >= 10 {
			return math.Inf(1)
		}
		return (x[0] - 4) * (x[0] - 4)
	}
	x, _ := NelderMead(f, []float64{1}, NelderMeadOptions{})
	if math.Abs(x[0]-4) > 1e-3 {
		t.Fatalf("minimum at %v, want 4", x[0])
	}
}

func TestNelderMeadEmptyInput(t *testing.T) {
	called := false
	f := func(x []float64) float64 { called = true; return 7 }
	_, v := NelderMead(f, nil, NelderMeadOptions{})
	if !called || v != 7 {
		t.Fatal("empty input should evaluate f once")
	}
}

func TestSolveLinearKnownSystem(t *testing.T) {
	a := [][]float64{
		{2, 1, -1},
		{-3, -1, 2},
		{-2, 1, 2},
	}
	b := []float64{8, -11, -3}
	x, ok := SolveLinear(a, b)
	if !ok {
		t.Fatal("solver reported singular")
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-9 {
			t.Fatalf("x = %v, want %v", x, want)
		}
	}
}

func TestSolveLinearSingular(t *testing.T) {
	a := [][]float64{
		{1, 2},
		{2, 4},
	}
	if _, ok := SolveLinear(a, []float64{1, 2}); ok {
		t.Fatal("singular system should report !ok")
	}
}

func TestSolveLinearNeedsPivoting(t *testing.T) {
	// Leading zero forces a row swap.
	a := [][]float64{
		{0, 1},
		{1, 0},
	}
	x, ok := SolveLinear(a, []float64{2, 3})
	if !ok || math.Abs(x[0]-3) > 1e-12 || math.Abs(x[1]-2) > 1e-12 {
		t.Fatalf("x = %v ok=%v", x, ok)
	}
}

func TestOLSRecoversCoefficients(t *testing.T) {
	// y = 2 + 3*a - 1.5*b with small noise.
	r := NewRNG(99)
	var x [][]float64
	var y []float64
	for i := 0; i < 500; i++ {
		a := r.NormFloat64()
		b := r.NormFloat64()
		x = append(x, []float64{1, a, b})
		y = append(y, 2+3*a-1.5*b+0.01*r.NormFloat64())
	}
	beta, ok := OLS(x, y)
	if !ok {
		t.Fatal("OLS failed")
	}
	want := []float64{2, 3, -1.5}
	for i := range want {
		if math.Abs(beta[i]-want[i]) > 0.01 {
			t.Fatalf("beta = %v, want %v", beta, want)
		}
	}
}

func TestOLSDegenerate(t *testing.T) {
	if _, ok := OLS(nil, nil); ok {
		t.Fatal("empty OLS should fail")
	}
	// Collinear columns.
	x := [][]float64{{1, 2}, {2, 4}, {3, 6}}
	if _, ok := OLS(x, []float64{1, 2, 3}); ok {
		t.Fatal("collinear OLS should fail")
	}
}
