package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLogNormalQuantileCDFRoundTrip(t *testing.T) {
	d := LogNormal{Mu: -0.38, Sigma: 2.36} // the paper's Figure 7 fit
	check := func(raw float64) bool {
		q := math.Mod(math.Abs(raw), 0.98) + 0.01
		x := d.Quantile(q)
		return math.Abs(d.CDF(x)-q) < 1e-6
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLogNormalPaperFitMedian(t *testing.T) {
	// With ln-mean -0.38, the median execution time is e^-0.38 ~ 0.684 s,
	// consistent with "50% of functions execute for less than 1s".
	d := LogNormal{Mu: -0.38, Sigma: 2.36}
	med := d.Quantile(0.5)
	if math.Abs(med-math.Exp(-0.38)) > 1e-9 {
		t.Fatalf("median = %v", med)
	}
	if med >= 1 {
		t.Fatalf("median %v should be < 1s per the paper", med)
	}
}

func TestLogNormalSampleDistribution(t *testing.T) {
	d := LogNormal{Mu: 1.0, Sigma: 0.5}
	r := NewRNG(42)
	const n = 100000
	var logs []float64
	for i := 0; i < n; i++ {
		logs = append(logs, math.Log(d.Sample(r)))
	}
	if m := Mean(logs); math.Abs(m-1.0) > 0.01 {
		t.Fatalf("log-mean = %v, want ~1.0", m)
	}
	if s := StdDev(logs); math.Abs(s-0.5) > 0.01 {
		t.Fatalf("log-stddev = %v, want ~0.5", s)
	}
}

func TestBurrPaperFit(t *testing.T) {
	// Burr(c=11.652, k=0.221, lambda=107.083): the paper reports 50% of
	// apps allocate at most ~170MB and 90% at most ~400MB.
	d := Burr{C: 11.652, K: 0.221, Lambda: 107.083}
	med := d.Quantile(0.5)
	if med < 100 || med > 250 {
		t.Fatalf("Burr median = %v MB, want ~170MB", med)
	}
	p90 := d.Quantile(0.9)
	if p90 < 250 || p90 > 600 {
		t.Fatalf("Burr p90 = %v MB, want ~400MB", p90)
	}
	if med >= p90 {
		t.Fatal("quantiles not monotone")
	}
}

func TestBurrQuantileCDFRoundTrip(t *testing.T) {
	d := Burr{C: 11.652, K: 0.221, Lambda: 107.083}
	for q := 0.01; q < 1; q += 0.01 {
		x := d.Quantile(q)
		if got := d.CDF(x); math.Abs(got-q) > 1e-9 {
			t.Fatalf("CDF(Quantile(%v)) = %v", q, got)
		}
	}
}

func TestBurrEdgeCases(t *testing.T) {
	d := Burr{C: 2, K: 1, Lambda: 10}
	if d.CDF(0) != 0 || d.CDF(-5) != 0 {
		t.Fatal("CDF below support should be 0")
	}
	if d.Quantile(0) != 0 {
		t.Fatal("Quantile(0) should be 0")
	}
	if !math.IsInf(d.Quantile(1), 1) {
		t.Fatal("Quantile(1) should be +Inf")
	}
}

func TestExponentialMeanAndCDF(t *testing.T) {
	d := Exponential{Rate: 2}
	if d.Mean() != 0.5 {
		t.Fatalf("mean = %v", d.Mean())
	}
	if math.Abs(d.CDF(0.5)-(1-math.Exp(-1))) > 1e-12 {
		t.Fatalf("CDF(0.5) = %v", d.CDF(0.5))
	}
	r := NewRNG(9)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += d.Sample(r)
	}
	if got := sum / n; math.Abs(got-0.5) > 0.01 {
		t.Fatalf("sample mean = %v", got)
	}
}

func TestHyperExpForCVTargets(t *testing.T) {
	for _, cv := range []float64{1, 1.5, 2, 4, 8} {
		d := HyperExpForCV(10, cv)
		if math.Abs(d.Mean()-10) > 1e-9 {
			t.Fatalf("cv=%v: mean = %v, want 10", cv, d.Mean())
		}
		if math.Abs(d.CV()-cv) > 1e-6 {
			t.Fatalf("cv=%v: got CV %v", cv, d.CV())
		}
	}
}

func TestHyperExpSampleMoments(t *testing.T) {
	d := HyperExpForCV(5, 3)
	r := NewRNG(11)
	const n = 400000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = d.Sample(r)
	}
	if m := Mean(xs); math.Abs(m-5) > 0.15 {
		t.Fatalf("sample mean = %v, want ~5", m)
	}
	if cv := CV(xs); math.Abs(cv-3) > 0.15 {
		t.Fatalf("sample CV = %v, want ~3", cv)
	}
}

func TestHyperExpCVClampsBelowOne(t *testing.T) {
	d := HyperExpForCV(1, 0.2)
	if math.Abs(d.CV()-1) > 1e-6 {
		t.Fatalf("CV should clamp to 1, got %v", d.CV())
	}
}

func TestZipfSkew(t *testing.T) {
	z := NewZipf(1000, 1.1)
	r := NewRNG(13)
	counts := make([]int, 1001)
	const n = 200000
	for i := 0; i < n; i++ {
		counts[z.Sample(r)]++
	}
	// Rank 1 must dominate rank 100 heavily.
	if counts[1] < counts[100]*10 {
		t.Fatalf("rank1=%d rank100=%d: insufficient skew", counts[1], counts[100])
	}
	// All samples in range.
	if counts[0] != 0 {
		t.Fatal("sampled rank 0")
	}
}

func TestZipfPanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewZipf(0, 1)
}

func TestNormalQuantileKnownValues(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.975, 1.959964},
		{0.025, -1.959964},
		{0.84134, 0.99998}, // ~Phi(1)
	}
	for _, c := range cases {
		if got := NormalQuantile(c.p); math.Abs(got-c.want) > 1e-4 {
			t.Errorf("NormalQuantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if !math.IsInf(NormalQuantile(0), -1) || !math.IsInf(NormalQuantile(1), 1) {
		t.Fatal("quantile endpoints should be infinite")
	}
}

func TestPiecewiseLogCDFAnchors(t *testing.T) {
	// Anchors shaped like Figure 5(a): daily invocation rates.
	d := NewPiecewiseLogCDF(
		[]float64{0.1, 1, 24, 1440, 86400, 1e8},
		[]float64{0, 0.10, 0.45, 0.81, 0.97, 1},
	)
	// Quantiles at anchor probabilities must hit anchor values.
	if got := d.Quantile(0.45); math.Abs(got-24) > 1e-9 {
		t.Fatalf("Quantile(0.45) = %v, want 24", got)
	}
	if got := d.Quantile(0.81); math.Abs(got-1440) > 1e-9 {
		t.Fatalf("Quantile(0.81) = %v, want 1440", got)
	}
	// CDF inverts Quantile.
	for q := 0.05; q < 1; q += 0.05 {
		x := d.Quantile(q)
		if got := d.CDF(x); math.Abs(got-q) > 1e-6 {
			t.Fatalf("CDF(Quantile(%v)) = %v", q, got)
		}
	}
}

func TestPiecewiseLogCDFSampling(t *testing.T) {
	d := NewPiecewiseLogCDF(
		[]float64{1, 24, 1440, 1e6},
		[]float64{0, 0.45, 0.81, 1},
	)
	r := NewRNG(21)
	const n = 100000
	var le24, le1440 int
	for i := 0; i < n; i++ {
		x := d.Sample(r)
		if x <= 24 {
			le24++
		}
		if x <= 1440 {
			le1440++
		}
	}
	if frac := float64(le24) / n; math.Abs(frac-0.45) > 0.01 {
		t.Fatalf("P(X<=24) = %v, want ~0.45", frac)
	}
	if frac := float64(le1440) / n; math.Abs(frac-0.81) > 0.01 {
		t.Fatalf("P(X<=1440) = %v, want ~0.81", frac)
	}
}

func TestPiecewiseLogCDFValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { NewPiecewiseLogCDF([]float64{1}, []float64{0}) },
		func() { NewPiecewiseLogCDF([]float64{1, 2}, []float64{0.1, 1}) },
		func() { NewPiecewiseLogCDF([]float64{2, 1}, []float64{0, 1}) },
		func() { NewPiecewiseLogCDF([]float64{-1, 2}, []float64{0, 1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}
