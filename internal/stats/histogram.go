package stats

import (
	"fmt"
	"strings"
)

// Histogram is a fixed-width-bin histogram over [0, BinWidth*len(bins)).
// It is the generic building block; the policy-specific range-limited
// idle-time histogram (with OOB tracking and percentile cutoffs) lives
// in internal/ithist and composes this type.
type Histogram struct {
	binWidth float64
	counts   []int64
	total    int64
}

// NewHistogram creates a histogram with nbins bins of width binWidth.
func NewHistogram(binWidth float64, nbins int) *Histogram {
	if binWidth <= 0 || nbins <= 0 {
		panic("stats: NewHistogram requires positive width and bin count")
	}
	return &Histogram{binWidth: binWidth, counts: make([]int64, nbins)}
}

// NumBins returns the number of bins.
func (h *Histogram) NumBins() int { return len(h.counts) }

// BinWidth returns the width of each bin.
func (h *Histogram) BinWidth() float64 { return h.binWidth }

// Range returns the upper bound of the covered interval.
func (h *Histogram) Range() float64 {
	return h.binWidth * float64(len(h.counts))
}

// BinIndex returns the bin x falls into, or -1 if x is out of bounds
// (negative or >= Range).
func (h *Histogram) BinIndex(x float64) int {
	if x < 0 {
		return -1
	}
	idx := int(x / h.binWidth)
	if idx >= len(h.counts) {
		return -1
	}
	return idx
}

// Add records one observation. It reports whether the observation was
// within bounds; out-of-bounds observations are not recorded.
func (h *Histogram) Add(x float64) bool {
	idx := h.BinIndex(x)
	if idx < 0 {
		return false
	}
	h.counts[idx]++
	h.total++
	return true
}

// AddBin increments bin idx directly by n.
func (h *Histogram) AddBin(idx int, n int64) {
	if idx < 0 || idx >= len(h.counts) {
		panic(fmt.Sprintf("stats: AddBin index %d out of range", idx))
	}
	h.counts[idx] += n
	h.total += n
}

// Count returns the count in bin idx.
func (h *Histogram) Count(idx int) int64 { return h.counts[idx] }

// Total returns the number of in-bounds observations recorded.
func (h *Histogram) Total() int64 { return h.total }

// Counts returns a copy of the bin counts.
func (h *Histogram) Counts() []int64 {
	c := make([]int64, len(h.counts))
	copy(c, h.counts)
	return c
}

// Reset zeroes all bins.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.total = 0
}

// PercentileBin returns the index of the bin containing the p-th
// percentile of the recorded distribution (p in [0,100]). It panics on
// an empty histogram. The percentile of a binned sample is resolved to
// a whole bin; callers choose the bin edge (see ithist's round-down /
// round-up semantics).
func (h *Histogram) PercentileBin(p float64) int {
	if h.total == 0 {
		panic("stats: PercentileBin of empty histogram")
	}
	if p < 0 || p > 100 {
		panic("stats: percentile out of [0,100]")
	}
	target := p / 100 * float64(h.total)
	var cum float64
	for i, c := range h.counts {
		cum += float64(c)
		if cum >= target && c > 0 {
			return i
		}
	}
	// p == 0 with leading empty bins, or numeric edge: find first/last
	// non-empty bin.
	if target <= 0 {
		for i, c := range h.counts {
			if c > 0 {
				return i
			}
		}
	}
	for i := len(h.counts) - 1; i >= 0; i-- {
		if h.counts[i] > 0 {
			return i
		}
	}
	return 0
}

// BinCountCV returns the coefficient of variation of the bin counts,
// the representativeness signal of the paper's policy: a concentrated
// histogram has high CV, a flat or empty one has CV ~ 0.
func (h *Histogram) BinCountCV() float64 {
	var w Welford
	for _, c := range h.counts {
		w.Add(float64(c))
	}
	return w.CV()
}

// Mean returns the mean of the recorded distribution, using bin
// midpoints. It returns 0 for an empty histogram.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	var sum float64
	for i, c := range h.counts {
		mid := (float64(i) + 0.5) * h.binWidth
		sum += mid * float64(c)
	}
	return sum / float64(h.total)
}

// String renders a compact sparkline-style summary for debugging.
func (h *Histogram) String() string {
	var max int64
	for _, c := range h.counts {
		if c > max {
			max = c
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "hist[%d bins x %g, n=%d]", len(h.counts), h.binWidth, h.total)
	if max == 0 {
		return b.String()
	}
	levels := []rune(" .:-=+*#%@")
	b.WriteByte(' ')
	for _, c := range h.counts {
		idx := int(float64(c) / float64(max) * float64(len(levels)-1))
		b.WriteRune(levels[idx])
	}
	return b.String()
}
