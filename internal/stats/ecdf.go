package stats

import "sort"

// ECDF is an empirical cumulative distribution function built from a
// sample. It answers both P(X <= x) queries and quantile queries, and
// can render itself as (x, F(x)) points for figure output.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from xs (which it copies and sorts).
func NewECDF(xs []float64) *ECDF {
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return &ECDF{sorted: s}
}

// Len returns the number of underlying observations.
func (e *ECDF) Len() int { return len(e.sorted) }

// At returns P(X <= x), the fraction of observations <= x.
func (e *ECDF) At(x float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	// First index with value > x.
	idx := sort.SearchFloat64s(e.sorted, x)
	for idx < len(e.sorted) && e.sorted[idx] == x {
		idx++
	}
	return float64(idx) / float64(len(e.sorted))
}

// Quantile returns the q-quantile (q in [0,1]) by linear interpolation.
// It panics if the ECDF is empty or q is out of range.
func (e *ECDF) Quantile(q float64) float64 {
	if len(e.sorted) == 0 {
		panic("stats: Quantile of empty ECDF")
	}
	if q < 0 || q > 1 {
		panic("stats: quantile out of [0,1]")
	}
	return percentileSorted(e.sorted, q*100)
}

// Point is a single (X, Y) coordinate of a rendered curve.
type Point struct {
	X float64
	Y float64
}

// Points renders the ECDF at n evenly spaced quantiles (plus both
// endpoints), suitable for plotting a CDF curve.
func (e *ECDF) Points(n int) []Point {
	if len(e.sorted) == 0 || n < 2 {
		return nil
	}
	pts := make([]Point, 0, n)
	for i := 0; i < n; i++ {
		q := float64(i) / float64(n-1)
		pts = append(pts, Point{X: e.Quantile(q), Y: q})
	}
	return pts
}

// PointsAt renders P(X <= x) at the given x values.
func (e *ECDF) PointsAt(xs []float64) []Point {
	pts := make([]Point, 0, len(xs))
	for _, x := range xs {
		pts = append(pts, Point{X: x, Y: e.At(x)})
	}
	return pts
}
