package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestRNGDifferentSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical outputs", same)
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	parent := NewRNG(7)
	child := parent.Split()
	// The child stream should not equal the parent's continued stream.
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split stream tracks parent: %d/100 collisions", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 100000; i++ {
		u := r.Float64()
		if u < 0 || u >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", u)
		}
	}
}

func TestFloat64OpenNeverZero(t *testing.T) {
	r := NewRNG(4)
	for i := 0; i < 100000; i++ {
		if r.Float64Open() == 0 {
			t.Fatal("Float64Open returned 0")
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(5)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(6)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) hit only %d distinct values", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(8)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sumsq += x * x
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := NewRNG(9)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean = %v, want ~1", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	check := func(seed uint64) bool {
		n := int(seed%20) + 1
		p := NewRNG(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPoissonMean(t *testing.T) {
	r := NewRNG(10)
	for _, mean := range []float64{0.5, 3, 20, 100} {
		const n = 50000
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(r.Poisson(mean))
		}
		got := sum / n
		if math.Abs(got-mean) > mean*0.05+0.05 {
			t.Fatalf("Poisson(%v) sample mean = %v", mean, got)
		}
	}
}

func TestPoissonZeroMean(t *testing.T) {
	r := NewRNG(11)
	if v := r.Poisson(0); v != 0 {
		t.Fatalf("Poisson(0) = %d", v)
	}
	if v := r.Poisson(-1); v != 0 {
		t.Fatalf("Poisson(-1) = %d", v)
	}
}
