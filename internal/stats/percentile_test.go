package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestPercentileBasic(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5}, {10, 1.4},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileDoesNotModifyInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestPercentileSingleElement(t *testing.T) {
	for _, p := range []float64{0, 50, 100} {
		if got := Percentile([]float64{7}, p); got != 7 {
			t.Fatalf("Percentile([7], %v) = %v", p, got)
		}
	}
}

func TestPercentilePanics(t *testing.T) {
	for _, fn := range []func(){
		func() { Percentile(nil, 50) },
		func() { Percentile([]float64{1}, -1) },
		func() { Percentile([]float64{1}, 101) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestPercentileMonotonic(t *testing.T) {
	check := func(seed uint64) bool {
		r := NewRNG(seed)
		n := int(seed%40) + 1
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64() * 50
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 5 {
			v := Percentile(xs, p)
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPercentileSortedAgrees(t *testing.T) {
	r := NewRNG(77)
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = r.Float64() * 1000
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	for p := 0.0; p <= 100; p += 7 {
		a := Percentile(xs, p)
		b := PercentileSorted(sorted, p)
		if a != b {
			t.Fatalf("p=%v: Percentile=%v PercentileSorted=%v", p, a, b)
		}
	}
}

func TestWeightedPercentileReplication(t *testing.T) {
	// Weighted percentiles must equal plain percentiles over the
	// replicated sample (the paper's construction in §3.1).
	samples := []WeightedSample{
		{Value: 100, Weight: 45},
		{Value: 10, Weight: 5},
		{Value: 500, Weight: 50},
	}
	var replicated []float64
	for _, s := range samples {
		for i := 0; i < int(s.Weight); i++ {
			replicated = append(replicated, s.Value)
		}
	}
	sort.Float64s(replicated)
	for _, p := range []float64{1, 5, 25, 50, 75, 95, 99} {
		got := WeightedPercentile(samples, p)
		// Nearest-rank on replicated data.
		idx := int(math.Ceil(p/100*float64(len(replicated)))) - 1
		if idx < 0 {
			idx = 0
		}
		want := replicated[idx]
		if got != want {
			t.Errorf("p=%v: got %v, want %v", p, got, want)
		}
	}
}

func TestWeightedPercentileSingle(t *testing.T) {
	s := []WeightedSample{{Value: 3.14, Weight: 10}}
	if got := WeightedPercentile(s, 50); got != 3.14 {
		t.Fatalf("got %v", got)
	}
}

func TestWeightedPercentilePanicsOnBadWeight(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	WeightedPercentile([]WeightedSample{{Value: 1, Weight: 0}}, 50)
}

func TestMeanVarianceCV(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(xs) != 5 {
		t.Fatalf("mean = %v", Mean(xs))
	}
	if Variance(xs) != 4 {
		t.Fatalf("variance = %v", Variance(xs))
	}
	if StdDev(xs) != 2 {
		t.Fatalf("stddev = %v", StdDev(xs))
	}
	if CV(xs) != 0.4 {
		t.Fatalf("cv = %v", CV(xs))
	}
}

func TestMeanEmptyIsZero(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 || CV(nil) != 0 {
		t.Fatal("empty-slice helpers should return 0")
	}
}

func TestMinMaxSum(t *testing.T) {
	xs := []float64{3, -1, 4, 1, 5}
	if Min(xs) != -1 || Max(xs) != 5 || Sum(xs) != 12 {
		t.Fatalf("min=%v max=%v sum=%v", Min(xs), Max(xs), Sum(xs))
	}
}

func TestCVOfConstantSeriesIsZero(t *testing.T) {
	if got := CV([]float64{5, 5, 5, 5}); got != 0 {
		t.Fatalf("CV of constants = %v", got)
	}
}

func TestCVOfExponentialIsNearOne(t *testing.T) {
	r := NewRNG(123)
	xs := make([]float64, 100000)
	for i := range xs {
		xs[i] = r.ExpFloat64()
	}
	if cv := CV(xs); math.Abs(cv-1) > 0.03 {
		t.Fatalf("CV of exponential sample = %v, want ~1", cv)
	}
}
