package stats

// Relaxed-accumulation variants for the opt-in fast mode
// (policy=hybrid?exact=off). The exact Sum/Mean accumulate strictly
// left to right, the order every golden artifact is pinned to; these
// split the stream across four independent accumulators so the adds
// pipeline instead of serializing on one dependency chain. The result
// differs from the sequential sum only in rounding (and is typically
// closer to the true value), which is exactly the reassociation the
// exact lane forbids — callers must be fast-mode gated.

// SumRelaxed returns the sum of xs accumulated in four interleaved
// partial sums. Not bit-identical to sequential summation.
func SumRelaxed(xs []float64) float64 {
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(xs); i += 4 {
		s0 += xs[i]
		s1 += xs[i+1]
		s2 += xs[i+2]
		s3 += xs[i+3]
	}
	for ; i < len(xs); i++ {
		s0 += xs[i]
	}
	return (s0 + s1) + (s2 + s3)
}

// MeanRelaxed returns the mean of xs via SumRelaxed (0 for an empty
// slice). Not bit-identical to Mean.
func MeanRelaxed(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return SumRelaxed(xs) / float64(len(xs))
}
