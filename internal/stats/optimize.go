package stats

import (
	"math"
	"sort"
)

// NelderMeadOptions configures the derivative-free simplex optimizer
// used by the ARIMA estimator's conditional-sum-of-squares refinement.
type NelderMeadOptions struct {
	MaxIter int     // maximum iterations (default 400)
	Tol     float64 // convergence tolerance on simplex spread (default 1e-8)
	Step    float64 // initial simplex step per coordinate (default 0.1)
}

// NelderMead minimizes f starting from x0 and returns the best point
// and its value. It never evaluates f outside what the caller's f
// tolerates; f may return +Inf to reject a region.
func NelderMead(f func([]float64) float64, x0 []float64, opt NelderMeadOptions) ([]float64, float64) {
	if opt.MaxIter == 0 {
		opt.MaxIter = 400
	}
	if opt.Tol == 0 {
		opt.Tol = 1e-8
	}
	if opt.Step == 0 {
		opt.Step = 0.1
	}
	n := len(x0)
	if n == 0 {
		return nil, f(nil)
	}

	type vertex struct {
		x []float64
		v float64
	}
	simplex := make([]vertex, n+1)
	base := append([]float64(nil), x0...)
	simplex[0] = vertex{x: base, v: f(base)}
	for i := 0; i < n; i++ {
		x := append([]float64(nil), x0...)
		if x[i] != 0 {
			x[i] *= 1 + opt.Step
		} else {
			x[i] = opt.Step
		}
		simplex[i+1] = vertex{x: x, v: f(x)}
	}

	const (
		alpha = 1.0 // reflection
		gamma = 2.0 // expansion
		rho   = 0.5 // contraction
		sigma = 0.5 // shrink
	)

	for iter := 0; iter < opt.MaxIter; iter++ {
		sort.Slice(simplex, func(i, j int) bool { return simplex[i].v < simplex[j].v })
		// Converged only when both the value spread and the simplex
		// diameter are small; a value check alone stops early when the
		// simplex straddles a minimum symmetrically.
		if math.Abs(simplex[n].v-simplex[0].v) < opt.Tol*(math.Abs(simplex[0].v)+opt.Tol) {
			var diam float64
			for j := 0; j < n; j++ {
				d := math.Abs(simplex[n].x[j] - simplex[0].x[j])
				if d > diam {
					diam = d
				}
			}
			if diam < opt.Tol*(1+math.Abs(simplex[0].x[0])) {
				break
			}
		}

		// Centroid of all but worst.
		centroid := make([]float64, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				centroid[j] += simplex[i].x[j]
			}
		}
		for j := 0; j < n; j++ {
			centroid[j] /= float64(n)
		}

		worst := simplex[n]
		reflect := make([]float64, n)
		for j := 0; j < n; j++ {
			reflect[j] = centroid[j] + alpha*(centroid[j]-worst.x[j])
		}
		rv := f(reflect)

		switch {
		case rv < simplex[0].v:
			// Try expansion.
			expand := make([]float64, n)
			for j := 0; j < n; j++ {
				expand[j] = centroid[j] + gamma*(reflect[j]-centroid[j])
			}
			if ev := f(expand); ev < rv {
				simplex[n] = vertex{x: expand, v: ev}
			} else {
				simplex[n] = vertex{x: reflect, v: rv}
			}
		case rv < simplex[n-1].v:
			simplex[n] = vertex{x: reflect, v: rv}
		default:
			// Contraction.
			contract := make([]float64, n)
			for j := 0; j < n; j++ {
				contract[j] = centroid[j] + rho*(worst.x[j]-centroid[j])
			}
			if cv := f(contract); cv < worst.v {
				simplex[n] = vertex{x: contract, v: cv}
			} else {
				// Shrink toward best.
				for i := 1; i <= n; i++ {
					for j := 0; j < n; j++ {
						simplex[i].x[j] = simplex[0].x[j] + sigma*(simplex[i].x[j]-simplex[0].x[j])
					}
					simplex[i].v = f(simplex[i].x)
				}
			}
		}
	}
	sort.Slice(simplex, func(i, j int) bool { return simplex[i].v < simplex[j].v })
	return simplex[0].x, simplex[0].v
}

// SolveLinear solves A x = b by Gaussian elimination with partial
// pivoting. A is row-major n x n and is not modified. It returns false
// if the system is singular (to working precision).
func SolveLinear(a [][]float64, b []float64) ([]float64, bool) {
	n := len(b)
	if len(a) != n {
		panic("stats: SolveLinear dimension mismatch")
	}
	// Copy into augmented matrix.
	m := make([][]float64, n)
	for i := 0; i < n; i++ {
		if len(a[i]) != n {
			panic("stats: SolveLinear requires square A")
		}
		m[i] = make([]float64, n+1)
		copy(m[i], a[i])
		m[i][n] = b[i]
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(m[pivot][col]) < 1e-12 {
			return nil, false
		}
		m[col], m[pivot] = m[pivot], m[col]
		for r := col + 1; r < n; r++ {
			factor := m[r][col] / m[col][col]
			for c := col; c <= n; c++ {
				m[r][c] -= factor * m[col][c]
			}
		}
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := m[i][n]
		for j := i + 1; j < n; j++ {
			sum -= m[i][j] * x[j]
		}
		x[i] = sum / m[i][i]
	}
	return x, true
}

// OLS fits y = X beta by ordinary least squares via the normal
// equations (X'X) beta = X'y. X is row-major with one row per
// observation. It returns false if X'X is singular.
func OLS(x [][]float64, y []float64) ([]float64, bool) {
	nobs := len(x)
	if nobs == 0 || nobs != len(y) {
		return nil, false
	}
	k := len(x[0])
	if k == 0 {
		return nil, false
	}
	xtx := make([][]float64, k)
	for i := range xtx {
		xtx[i] = make([]float64, k)
	}
	xty := make([]float64, k)
	for r := 0; r < nobs; r++ {
		row := x[r]
		if len(row) != k {
			return nil, false
		}
		for i := 0; i < k; i++ {
			for j := i; j < k; j++ {
				xtx[i][j] += row[i] * row[j]
			}
			xty[i] += row[i] * y[r]
		}
	}
	for i := 0; i < k; i++ {
		for j := 0; j < i; j++ {
			xtx[i][j] = xtx[j][i]
		}
	}
	return SolveLinear(xtx, xty)
}
