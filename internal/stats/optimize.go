package stats

import (
	"math"
)

// NelderMeadOptions configures the derivative-free simplex optimizer
// used by the ARIMA estimator's conditional-sum-of-squares refinement.
type NelderMeadOptions struct {
	MaxIter int     // maximum iterations (default 400)
	Tol     float64 // convergence tolerance on simplex spread (default 1e-8)
	Step    float64 // initial simplex step per coordinate (default 0.1)
}

// NelderMead minimizes f starting from x0 and returns the best point
// and its value. It never evaluates f outside what the caller's f
// tolerates; f may return +Inf to reject a region.
//
// f must not retain the slice it is handed: candidate points are
// written into a small set of rotating buffers (the optimizer runs in
// the simulator's per-invocation ARIMA refit, where a fresh allocation
// per trial point dominated the profile). The returned slice is owned
// by the caller.
func NelderMead(f func([]float64) float64, x0 []float64, opt NelderMeadOptions) ([]float64, float64) {
	if opt.MaxIter == 0 {
		opt.MaxIter = 400
	}
	if opt.Tol == 0 {
		opt.Tol = 1e-8
	}
	if opt.Step == 0 {
		opt.Step = 0.1
	}
	n := len(x0)
	if n == 0 {
		return nil, f(nil)
	}

	type vertex struct {
		x []float64
		v float64
	}
	simplex := make([]vertex, n+1)
	base := append([]float64(nil), x0...)
	simplex[0] = vertex{x: base, v: f(base)}
	for i := 0; i < n; i++ {
		x := append([]float64(nil), x0...)
		if x[i] != 0 {
			x[i] *= 1 + opt.Step
		} else {
			x[i] = opt.Step
		}
		simplex[i+1] = vertex{x: x, v: f(x)}
	}

	const (
		alpha = 1.0 // reflection
		gamma = 2.0 // expansion
		rho   = 0.5 // contraction
		sigma = 0.5 // shrink
	)

	// Scratch vectors. When a candidate is accepted into the simplex it
	// swaps storage with the evicted worst vertex, so each iteration
	// allocates nothing.
	//
	// sortSimplex is insertion sort, the exact algorithm sort.Slice
	// applies to slices this small (n+1 <= dims+1), so the ordering —
	// including the permutation of equal-valued vertices — matches the
	// library sort while avoiding its per-call reflection allocation.
	sortSimplex := func() {
		for i := 1; i <= n; i++ {
			for j := i; j > 0 && simplex[j].v < simplex[j-1].v; j-- {
				simplex[j], simplex[j-1] = simplex[j-1], simplex[j]
			}
		}
	}
	centroid := make([]float64, n)
	cand := make([]float64, n)  // reflection candidate
	cand2 := make([]float64, n) // expansion/contraction candidate
	accept := func(x []float64, v float64) []float64 {
		old := simplex[n].x
		simplex[n] = vertex{x: x, v: v}
		return old
	}

	for iter := 0; iter < opt.MaxIter; iter++ {
		sortSimplex()
		// Converged only when both the value spread and the simplex
		// diameter are small; a value check alone stops early when the
		// simplex straddles a minimum symmetrically.
		if math.Abs(simplex[n].v-simplex[0].v) < opt.Tol*(math.Abs(simplex[0].v)+opt.Tol) {
			var diam float64
			for j := 0; j < n; j++ {
				d := math.Abs(simplex[n].x[j] - simplex[0].x[j])
				if d > diam {
					diam = d
				}
			}
			if diam < opt.Tol*(1+math.Abs(simplex[0].x[0])) {
				break
			}
		}

		// Centroid of all but worst.
		for j := 0; j < n; j++ {
			centroid[j] = 0
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				centroid[j] += simplex[i].x[j]
			}
		}
		for j := 0; j < n; j++ {
			centroid[j] /= float64(n)
		}

		worst := simplex[n]
		reflect := cand
		for j := 0; j < n; j++ {
			reflect[j] = centroid[j] + alpha*(centroid[j]-worst.x[j])
		}
		rv := f(reflect)

		switch {
		case rv < simplex[0].v:
			// Try expansion.
			expand := cand2
			for j := 0; j < n; j++ {
				expand[j] = centroid[j] + gamma*(reflect[j]-centroid[j])
			}
			if ev := f(expand); ev < rv {
				cand2 = accept(expand, ev)
			} else {
				cand = accept(reflect, rv)
			}
		case rv < simplex[n-1].v:
			cand = accept(reflect, rv)
		default:
			// Contraction.
			contract := cand2
			for j := 0; j < n; j++ {
				contract[j] = centroid[j] + rho*(worst.x[j]-centroid[j])
			}
			if cv := f(contract); cv < worst.v {
				cand2 = accept(contract, cv)
			} else {
				// Shrink toward best.
				for i := 1; i <= n; i++ {
					for j := 0; j < n; j++ {
						simplex[i].x[j] = simplex[0].x[j] + sigma*(simplex[i].x[j]-simplex[0].x[j])
					}
					simplex[i].v = f(simplex[i].x)
				}
			}
		}
	}
	sortSimplex()
	return simplex[0].x, simplex[0].v
}

// LSScratch holds reusable buffers for the least-squares routines, so
// hot callers (the per-invocation ARIMA refit) avoid re-allocating the
// small normal-equation and elimination matrices on every fit. The
// zero value is ready; a nil *LSScratch falls back to fresh
// allocations. Results are always freshly allocated — only internal
// workspace is reused.
type LSScratch struct {
	xtx    [][]float64
	xtxBuf []float64
	xty    []float64
	aug    [][]float64
	augBuf []float64
}

// matrix returns a rows x cols matrix backed by buf, zeroed when asked.
func lsMatrix(hdrs *[][]float64, buf *[]float64, rows, cols int, zero bool) [][]float64 {
	if cap(*hdrs) < rows {
		*hdrs = make([][]float64, rows)
	}
	m := (*hdrs)[:rows]
	if cap(*buf) < rows*cols {
		*buf = make([]float64, rows*cols)
	}
	flat := (*buf)[:rows*cols]
	if zero {
		for i := range flat {
			flat[i] = 0
		}
	}
	for i := 0; i < rows; i++ {
		m[i] = flat[i*cols : (i+1)*cols : (i+1)*cols]
	}
	return m
}

// SolveLinear solves A x = b by Gaussian elimination with partial
// pivoting. A is row-major n x n and is not modified. It returns false
// if the system is singular (to working precision).
func SolveLinear(a [][]float64, b []float64) ([]float64, bool) {
	return SolveLinearInto(nil, a, b)
}

// SolveLinearInto is SolveLinear with workspace drawn from s (may be
// nil). The arithmetic is identical; only allocation behavior differs.
func SolveLinearInto(s *LSScratch, a [][]float64, b []float64) ([]float64, bool) {
	n := len(b)
	if len(a) != n {
		panic("stats: SolveLinear dimension mismatch")
	}
	// Copy into augmented matrix.
	var m [][]float64
	if s != nil {
		m = lsMatrix(&s.aug, &s.augBuf, n, n+1, false)
	} else {
		m = make([][]float64, n)
		for i := range m {
			m[i] = make([]float64, n+1)
		}
	}
	for i := 0; i < n; i++ {
		if len(a[i]) != n {
			panic("stats: SolveLinear requires square A")
		}
		copy(m[i], a[i])
		m[i][n] = b[i]
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(m[pivot][col]) < 1e-12 {
			return nil, false
		}
		m[col], m[pivot] = m[pivot], m[col]
		for r := col + 1; r < n; r++ {
			factor := m[r][col] / m[col][col]
			for c := col; c <= n; c++ {
				m[r][c] -= factor * m[col][c]
			}
		}
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := m[i][n]
		for j := i + 1; j < n; j++ {
			sum -= m[i][j] * x[j]
		}
		x[i] = sum / m[i][i]
	}
	return x, true
}

// OLS fits y = X beta by ordinary least squares via the normal
// equations (X'X) beta = X'y. X is row-major with one row per
// observation. It returns false if X'X is singular.
func OLS(x [][]float64, y []float64) ([]float64, bool) {
	return OLSInto(nil, x, y)
}

// OLSInto is OLS with workspace drawn from s (may be nil). The
// arithmetic — including the accumulation order of the normal
// equations — is identical; only allocation behavior differs.
func OLSInto(s *LSScratch, x [][]float64, y []float64) ([]float64, bool) {
	nobs := len(x)
	if nobs == 0 || nobs != len(y) {
		return nil, false
	}
	k := len(x[0])
	if k == 0 {
		return nil, false
	}
	var xtx [][]float64
	var xty []float64
	if s != nil {
		xtx = lsMatrix(&s.xtx, &s.xtxBuf, k, k, true)
		if cap(s.xty) < k {
			s.xty = make([]float64, k)
		}
		xty = s.xty[:k]
		for i := range xty {
			xty[i] = 0
		}
	} else {
		xtx = make([][]float64, k)
		for i := range xtx {
			xtx[i] = make([]float64, k)
		}
		xty = make([]float64, k)
	}
	for r := 0; r < nobs; r++ {
		row := x[r]
		if len(row) != k {
			return nil, false
		}
		for i := 0; i < k; i++ {
			for j := i; j < k; j++ {
				xtx[i][j] += row[i] * row[j]
			}
			xty[i] += row[i] * y[r]
		}
	}
	for i := 0; i < k; i++ {
		for j := 0; j < i; j++ {
			xtx[i][j] = xtx[j][i]
		}
	}
	return SolveLinearInto(s, xtx, xty)
}
