package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHistogramAddAndBounds(t *testing.T) {
	h := NewHistogram(1, 10) // bins [0,1) ... [9,10)
	if !h.Add(0) {
		t.Fatal("0 should be in bounds")
	}
	if !h.Add(9.99) {
		t.Fatal("9.99 should be in bounds")
	}
	if h.Add(10) {
		t.Fatal("10 should be out of bounds")
	}
	if h.Add(-0.1) {
		t.Fatal("negative should be out of bounds")
	}
	if h.Total() != 2 {
		t.Fatalf("total = %d", h.Total())
	}
	if h.Count(0) != 1 || h.Count(9) != 1 {
		t.Fatal("wrong bin placement")
	}
}

func TestHistogramRange(t *testing.T) {
	h := NewHistogram(60, 240) // the policy's default: 1-min bins, 4 hours
	if h.Range() != 4*3600 {
		t.Fatalf("range = %v", h.Range())
	}
	if h.NumBins() != 240 {
		t.Fatalf("bins = %d", h.NumBins())
	}
}

func TestHistogramPercentileBin(t *testing.T) {
	h := NewHistogram(1, 10)
	// 10 observations in bin 2, 80 in bin 5, 10 in bin 8.
	h.AddBin(2, 10)
	h.AddBin(5, 80)
	h.AddBin(8, 10)
	if got := h.PercentileBin(5); got != 2 {
		t.Fatalf("p5 bin = %d, want 2", got)
	}
	if got := h.PercentileBin(50); got != 5 {
		t.Fatalf("p50 bin = %d, want 5", got)
	}
	if got := h.PercentileBin(99); got != 8 {
		t.Fatalf("p99 bin = %d, want 8", got)
	}
	if got := h.PercentileBin(0); got != 2 {
		t.Fatalf("p0 bin = %d, want first non-empty (2)", got)
	}
	if got := h.PercentileBin(100); got != 8 {
		t.Fatalf("p100 bin = %d, want 8", got)
	}
}

func TestHistogramPercentileBinSingle(t *testing.T) {
	h := NewHistogram(1, 240)
	h.Add(42.5)
	for _, p := range []float64{0, 5, 50, 99, 100} {
		if got := h.PercentileBin(p); got != 42 {
			t.Fatalf("p%v bin = %d, want 42", p, got)
		}
	}
}

func TestHistogramPercentileBinPanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHistogram(1, 10).PercentileBin(50)
}

func TestHistogramBinCountCV(t *testing.T) {
	// Concentrated histogram: high CV (the representative case).
	concentrated := NewHistogram(1, 10)
	concentrated.AddBin(3, 100)
	if cv := concentrated.BinCountCV(); cv < 2 {
		t.Fatalf("concentrated CV = %v, want >= 2", cv)
	}
	// Flat histogram: CV 0 (the non-representative case).
	flat := NewHistogram(1, 10)
	for i := 0; i < 10; i++ {
		flat.AddBin(i, 7)
	}
	if cv := flat.BinCountCV(); cv != 0 {
		t.Fatalf("flat CV = %v, want 0", cv)
	}
	// Empty histogram: CV 0.
	if cv := NewHistogram(1, 10).BinCountCV(); cv != 0 {
		t.Fatalf("empty CV = %v, want 0", cv)
	}
}

func TestHistogramMean(t *testing.T) {
	h := NewHistogram(2, 5)
	h.AddBin(0, 1) // midpoint 1
	h.AddBin(4, 1) // midpoint 9
	if got := h.Mean(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("mean = %v, want 5", got)
	}
	if NewHistogram(1, 3).Mean() != 0 {
		t.Fatal("empty mean should be 0")
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram(1, 5)
	h.Add(1)
	h.Add(2)
	h.Reset()
	if h.Total() != 0 || h.Count(1) != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestHistogramCountsCopy(t *testing.T) {
	h := NewHistogram(1, 3)
	h.Add(1)
	c := h.Counts()
	c[1] = 99
	if h.Count(1) != 1 {
		t.Fatal("Counts() must return a copy")
	}
}

func TestHistogramTotalInvariant(t *testing.T) {
	check := func(seed uint64) bool {
		r := NewRNG(seed)
		h := NewHistogram(1, 20)
		var inBounds int64
		for i := 0; i < 200; i++ {
			x := r.Float64()*30 - 5 // some out of bounds
			if h.Add(x) {
				inBounds++
			}
		}
		var sum int64
		for i := 0; i < h.NumBins(); i++ {
			sum += h.Count(i)
		}
		return sum == h.Total() && sum == inBounds
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramStringSmoke(t *testing.T) {
	h := NewHistogram(1, 8)
	if s := h.String(); s == "" {
		t.Fatal("empty String()")
	}
	h.Add(3)
	if s := h.String(); s == "" {
		t.Fatal("empty String() after add")
	}
}

func TestNewHistogramValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { NewHistogram(0, 10) },
		func() { NewHistogram(1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}
