package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestWelfordBasics(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.Count() != 8 {
		t.Fatalf("count = %d", w.Count())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Fatalf("mean = %v, want 5", w.Mean())
	}
	if math.Abs(w.Variance()-4) > 1e-12 {
		t.Fatalf("variance = %v, want 4", w.Variance())
	}
	if math.Abs(w.StdDev()-2) > 1e-12 {
		t.Fatalf("stddev = %v, want 2", w.StdDev())
	}
	if math.Abs(w.CV()-0.4) > 1e-12 {
		t.Fatalf("cv = %v, want 0.4", w.CV())
	}
}

func TestWelfordEmpty(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.CV() != 0 {
		t.Fatal("empty accumulator should report zeros")
	}
}

func TestWelfordSingle(t *testing.T) {
	var w Welford
	w.Add(42)
	if w.Mean() != 42 || w.Variance() != 0 {
		t.Fatalf("mean=%v var=%v", w.Mean(), w.Variance())
	}
	if w.SampleVariance() != 0 {
		t.Fatal("sample variance of one point should be 0")
	}
}

func TestWelfordZeroMeanCV(t *testing.T) {
	var w Welford
	w.Add(-1)
	w.Add(1)
	if w.CV() != 0 {
		t.Fatalf("CV with zero mean should be 0 by convention, got %v", w.CV())
	}
}

func TestWelfordMatchesBatch(t *testing.T) {
	check := func(seed uint64) bool {
		r := NewRNG(seed)
		n := int(seed%50) + 2
		xs := make([]float64, n)
		var w Welford
		for i := range xs {
			xs[i] = r.NormFloat64()*10 + 5
			w.Add(xs[i])
		}
		return math.Abs(w.Mean()-Mean(xs)) < 1e-9 &&
			math.Abs(w.Variance()-Variance(xs)) < 1e-9
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWelfordRemove(t *testing.T) {
	var w Welford
	xs := []float64{1, 2, 3, 4, 5, 6}
	for _, x := range xs {
		w.Add(x)
	}
	w.Remove(6)
	w.Remove(1)
	want := []float64{2, 3, 4, 5}
	if math.Abs(w.Mean()-Mean(want)) > 1e-9 {
		t.Fatalf("mean after removal = %v, want %v", w.Mean(), Mean(want))
	}
	if math.Abs(w.Variance()-Variance(want)) > 1e-9 {
		t.Fatalf("variance after removal = %v, want %v", w.Variance(), Variance(want))
	}
}

func TestWelfordRemoveToEmpty(t *testing.T) {
	var w Welford
	w.Add(3)
	w.Remove(3)
	if w.Count() != 0 || w.Mean() != 0 || w.Variance() != 0 {
		t.Fatal("removing last element should zero the accumulator")
	}
}

func TestWelfordRemovePanicsWhenEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	var w Welford
	w.Remove(1)
}

func TestWelfordReplace(t *testing.T) {
	check := func(seed uint64) bool {
		r := NewRNG(seed)
		n := int(seed%30) + 2
		xs := make([]float64, n)
		var w Welford
		for i := range xs {
			xs[i] = r.Float64() * 100
			w.Add(xs[i])
		}
		// Replace a random element.
		idx := r.Intn(n)
		newVal := r.Float64() * 100
		w.Replace(xs[idx], newVal)
		xs[idx] = newVal
		return math.Abs(w.Mean()-Mean(xs)) < 1e-7 &&
			math.Abs(w.Variance()-Variance(xs)) < 1e-6
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWelfordReset(t *testing.T) {
	var w Welford
	w.Add(1)
	w.Add(2)
	w.Reset()
	if w.Count() != 0 || w.Mean() != 0 {
		t.Fatal("Reset did not clear state")
	}
}
