package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestECDFAt(t *testing.T) {
	e := NewECDF([]float64{1, 2, 2, 3, 10})
	cases := []struct{ x, want float64 }{
		{0.5, 0},
		{1, 0.2},
		{2, 0.6},
		{2.5, 0.6},
		{10, 1},
		{100, 1},
	}
	for _, c := range cases {
		if got := e.At(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("At(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestECDFQuantile(t *testing.T) {
	e := NewECDF([]float64{10, 20, 30, 40, 50})
	if got := e.Quantile(0.5); got != 30 {
		t.Fatalf("median = %v", got)
	}
	if got := e.Quantile(0); got != 10 {
		t.Fatalf("q0 = %v", got)
	}
	if got := e.Quantile(1); got != 50 {
		t.Fatalf("q1 = %v", got)
	}
}

func TestECDFEmpty(t *testing.T) {
	e := NewECDF(nil)
	if e.At(5) != 0 {
		t.Fatal("empty ECDF At should be 0")
	}
	if e.Points(10) != nil {
		t.Fatal("empty ECDF Points should be nil")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic from Quantile on empty ECDF")
		}
	}()
	e.Quantile(0.5)
}

func TestECDFPointsMonotone(t *testing.T) {
	check := func(seed uint64) bool {
		r := NewRNG(seed)
		n := int(seed%50) + 2
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64() * 10
		}
		pts := NewECDF(xs).Points(20)
		for i := 1; i < len(pts); i++ {
			if pts[i].X < pts[i-1].X || pts[i].Y < pts[i-1].Y {
				return false
			}
		}
		return len(pts) == 20 && pts[0].Y == 0 && pts[len(pts)-1].Y == 1
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestECDFAtQuantileConsistency(t *testing.T) {
	// For continuous samples, At(Quantile(q)) ~ q.
	r := NewRNG(5)
	xs := make([]float64, 1001)
	for i := range xs {
		xs[i] = r.Float64()
	}
	e := NewECDF(xs)
	for q := 0.1; q < 1; q += 0.1 {
		x := e.Quantile(q)
		if got := e.At(x); math.Abs(got-q) > 0.01 {
			t.Fatalf("At(Quantile(%v)) = %v", q, got)
		}
	}
}

func TestECDFDoesNotAliasInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	e := NewECDF(xs)
	xs[0] = 100
	if e.At(3) != 1 {
		t.Fatal("ECDF must copy its input")
	}
}

func TestECDFPointsAt(t *testing.T) {
	e := NewECDF([]float64{1, 2, 3, 4})
	pts := e.PointsAt([]float64{0, 2, 5})
	if len(pts) != 3 || pts[0].Y != 0 || pts[1].Y != 0.5 || pts[2].Y != 1 {
		t.Fatalf("pts = %+v", pts)
	}
}
