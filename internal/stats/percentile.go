package stats

import (
	"fmt"
	"math"
	"sort"
)

// Percentile returns the p-th percentile (p in [0,100]) of xs using
// linear interpolation between closest ranks (the "linear" method, as
// in numpy.percentile). It does not modify xs. It panics on an empty
// slice or p outside [0,100].
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: Percentile of empty slice")
	}
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %v out of range", p))
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

// PercentileSorted is like Percentile but requires xs to be sorted
// ascending, avoiding the copy and sort.
func PercentileSorted(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: PercentileSorted of empty slice")
	}
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %v out of range", p))
	}
	return percentileSorted(xs, p)
}

func percentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// WeightedSample is one (value, weight) observation, e.g. an average
// execution time observed over `weight` samples, as in the paper's
// weighted-percentile construction (§3.1).
type WeightedSample struct {
	Value  float64
	Weight float64
}

// WeightedPercentile computes the p-th percentile of a weighted sample
// set, equivalent to percentiles over a distribution where each Value
// is replicated Weight times. Weights must be positive. It panics on an
// empty set or p outside [0,100].
func WeightedPercentile(samples []WeightedSample, p float64) float64 {
	if len(samples) == 0 {
		panic("stats: WeightedPercentile of empty set")
	}
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %v out of range", p))
	}
	s := make([]WeightedSample, len(samples))
	copy(s, samples)
	sort.Slice(s, func(i, j int) bool { return s[i].Value < s[j].Value })
	var total float64
	for _, ws := range s {
		if ws.Weight <= 0 {
			panic("stats: WeightedPercentile with non-positive weight")
		}
		total += ws.Weight
	}
	target := p / 100 * total
	var cum float64
	for _, ws := range s {
		cum += ws.Weight
		if cum >= target {
			return ws.Value
		}
	}
	return s[len(s)-1].Value
}

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs (0 if len < 1).
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// CV returns the coefficient of variation of xs; 0 if the mean is 0.
func CV(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return 0
	}
	return StdDev(xs) / math.Abs(m)
}

// Min returns the smallest element. It panics on an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element. It panics on an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}
