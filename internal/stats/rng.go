// Package stats provides the statistical substrate used across the
// reproduction: deterministic random number generation, online moment
// tracking (Welford), weighted percentiles, empirical CDFs, fixed-bin
// histograms, the distribution samplers the workload generator is
// calibrated with (log-normal, Burr XII, hyper-exponential, Zipf, ...),
// and the small numerical-optimization and linear-algebra helpers that
// back the ARIMA estimator.
//
// Everything is stdlib-only and deterministic given a seed, so every
// experiment in this repository reproduces bit-for-bit.
package stats

import "math"

// RNG is a small, fast, deterministic pseudo-random generator based on
// splitmix64. It is not safe for concurrent use; give each goroutine its
// own RNG (use Split to derive independent streams).
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Two RNGs with the same
// seed produce identical streams.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Split derives a new, statistically independent generator from r.
// The derived stream is a function of r's current state, so calling
// Split at different points yields different streams.
func (r *RNG) Split() *RNG {
	return &RNG{state: r.Uint64() ^ 0x9e3779b97f4a7c15}
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	// 53 high bits give a uniform dyadic rational in [0,1).
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float64Open returns a uniform float64 in (0, 1), never exactly 0,
// which is convenient for inverse-CDF sampling with log or division.
func (r *RNG) Float64Open() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return u
		}
	}
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("stats: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// NormFloat64 returns a standard normal variate (Box–Muller, polar form).
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// ExpFloat64 returns an exponential variate with rate 1.
func (r *RNG) ExpFloat64() float64 {
	return -math.Log(r.Float64Open())
}

// Perm returns a random permutation of [0, n) (Fisher–Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n elements using the provided swap function.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
