// Package forecast defines the pluggable time-series predictor the
// hybrid policy uses for applications whose idle times exceed the
// histogram range. The paper uses auto-ARIMA but notes "we can easily
// replace ARIMA with another model" (§4.2); this package provides the
// interface plus three implementations: ARIMA (the default),
// Holt-style exponential smoothing, and a naive mean baseline.
package forecast

import (
	"fmt"

	"repro/internal/arima"
	"repro/internal/stats"
)

// Forecaster predicts the next value of a (positive) series.
type Forecaster interface {
	// Name identifies the model in reports.
	Name() string
	// PredictNext returns the one-step-ahead prediction; ok is false
	// when the series is too short or the model cannot be fit.
	PredictNext(series []float64) (pred float64, ok bool)
}

// ARIMA is the paper's default: an auto-fit ARIMA model (AIC order
// search), rebuilt on each call as the paper rebuilds its model after
// every invocation of an ARIMA-managed app.
type ARIMA struct {
	// Options bounds the order search (zero value = package defaults).
	Options arima.Options
}

// Name implements Forecaster.
func (ARIMA) Name() string { return "arima" }

// PredictNext implements Forecaster.
func (f ARIMA) PredictNext(series []float64) (float64, bool) {
	model, err := arima.Fit(series, f.Options)
	if err != nil {
		return 0, false
	}
	pred := model.ForecastNext()
	if pred <= 0 {
		return 0, false
	}
	return pred, true
}

// ExpSmoothing is Holt's linear exponential smoothing: level plus
// (damped) trend, a cheap alternative to ARIMA.
type ExpSmoothing struct {
	// Alpha is the level smoothing factor (default 0.5).
	Alpha float64
	// Beta is the trend smoothing factor (default 0.1).
	Beta float64
	// Damping multiplies the trend at forecast time (default 0.9).
	Damping float64
	// MinSamples is the minimum series length (default 3).
	MinSamples int
}

// Name implements Forecaster.
func (ExpSmoothing) Name() string { return "expsmooth" }

// PredictNext implements Forecaster.
func (f ExpSmoothing) PredictNext(series []float64) (float64, bool) {
	alpha, beta, damp, minN := f.Alpha, f.Beta, f.Damping, f.MinSamples
	if alpha == 0 {
		alpha = 0.5
	}
	if beta == 0 {
		beta = 0.1
	}
	if damp == 0 {
		damp = 0.9
	}
	if minN == 0 {
		minN = 3
	}
	if len(series) < minN {
		return 0, false
	}
	if alpha < 0 || alpha > 1 || beta < 0 || beta > 1 {
		return 0, false
	}
	level := series[0]
	trend := series[1] - series[0]
	for _, x := range series[1:] {
		prevLevel := level
		level = alpha*x + (1-alpha)*(level+trend)
		trend = beta*(level-prevLevel) + (1-beta)*trend
	}
	pred := level + damp*trend
	if pred <= 0 {
		return 0, false
	}
	return pred, true
}

// Mean is the naive baseline: predict the series mean.
type Mean struct {
	// MinSamples is the minimum series length (default 3).
	MinSamples int
}

// Name implements Forecaster.
func (Mean) Name() string { return "mean" }

// PredictNext implements Forecaster.
func (f Mean) PredictNext(series []float64) (float64, bool) {
	minN := f.MinSamples
	if minN == 0 {
		minN = 3
	}
	if len(series) < minN {
		return 0, false
	}
	m := stats.Mean(series)
	if m <= 0 {
		return 0, false
	}
	return m, true
}

// ByName returns a default-configured forecaster by name.
func ByName(name string) (Forecaster, error) {
	switch name {
	case "arima":
		return ARIMA{}, nil
	case "expsmooth":
		return ExpSmoothing{}, nil
	case "mean":
		return Mean{}, nil
	default:
		return nil, fmt.Errorf("forecast: unknown forecaster %q", name)
	}
}
