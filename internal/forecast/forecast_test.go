package forecast

import (
	"math"
	"testing"

	"repro/internal/stats"
)

func constantSeries(v float64, n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = v
	}
	return s
}

func TestAllForecastersOnConstantSeries(t *testing.T) {
	series := constantSeries(300, 20)
	for _, f := range []Forecaster{ARIMA{}, ExpSmoothing{}, Mean{}} {
		pred, ok := f.PredictNext(series)
		if !ok {
			t.Fatalf("%s: no prediction", f.Name())
		}
		if math.Abs(pred-300) > 5 {
			t.Fatalf("%s: pred = %v, want ~300", f.Name(), pred)
		}
	}
}

func TestAllForecastersTooShort(t *testing.T) {
	for _, f := range []Forecaster{ARIMA{}, ExpSmoothing{}, Mean{}} {
		if _, ok := f.PredictNext([]float64{1}); ok {
			t.Fatalf("%s: predicted from a singleton", f.Name())
		}
	}
}

func TestExpSmoothingTracksTrend(t *testing.T) {
	// Series climbing 10 per step: prediction should exceed the last
	// value (trend extrapolation).
	series := make([]float64, 20)
	for i := range series {
		series[i] = 100 + 10*float64(i)
	}
	pred, ok := ExpSmoothing{}.PredictNext(series)
	if !ok {
		t.Fatal("no prediction")
	}
	last := series[len(series)-1]
	if pred <= last || pred > last+20 {
		t.Fatalf("pred = %v, want in (%v, %v]", pred, last, last+20)
	}
	// Mean lags badly on trends; exponential smoothing must beat it.
	meanPred, _ := Mean{}.PredictNext(series)
	next := last + 10
	if math.Abs(pred-next) >= math.Abs(meanPred-next) {
		t.Fatalf("expsmooth error %v not better than mean error %v",
			math.Abs(pred-next), math.Abs(meanPred-next))
	}
}

func TestExpSmoothingRejectsNonPositivePrediction(t *testing.T) {
	// Steeply falling series can predict <= 0: must return !ok.
	series := []float64{100, 50, 10, 1, 0.1, 0.01}
	if pred, ok := (ExpSmoothing{}).PredictNext(series); ok && pred <= 0 {
		t.Fatalf("non-positive prediction %v reported ok", pred)
	}
}

func TestExpSmoothingBadParams(t *testing.T) {
	if _, ok := (ExpSmoothing{Alpha: 2}).PredictNext(constantSeries(5, 10)); ok {
		t.Fatal("alpha out of range should fail")
	}
}

func TestMeanNonPositive(t *testing.T) {
	if _, ok := (Mean{}).PredictNext([]float64{-1, -2, -3}); ok {
		t.Fatal("non-positive mean should fail")
	}
}

func TestARIMAOnNoisyPeriodicITs(t *testing.T) {
	r := stats.NewRNG(3)
	series := make([]float64, 40)
	for i := range series {
		series[i] = 720 + 10*r.NormFloat64() // ~12h in minutes
	}
	pred, ok := ARIMA{}.PredictNext(series)
	if !ok {
		t.Fatal("no prediction")
	}
	if math.Abs(pred-720) > 30 {
		t.Fatalf("pred = %v, want ~720", pred)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"arima", "expsmooth", "mean"} {
		f, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if f.Name() != name {
			t.Fatalf("name = %q, want %q", f.Name(), name)
		}
	}
	if _, err := ByName("bogus"); err == nil {
		t.Fatal("expected error")
	}
}
