// Package ithist implements the paper's range-limited idle-time (IT)
// histogram (§4.2), the centerpiece of the hybrid keep-alive policy.
//
// The histogram uses 1-minute bins over a configurable range (default
// 4 hours, i.e. 240 bins ~ 960 bytes of counters, matching the Azure
// production implementation in §6). Idle times beyond the range are
// counted as out-of-bounds (OOB). The head (default 5th percentile,
// rounded down to the bin's lower edge) selects the pre-warming
// window; the tail (default 99th percentile, rounded up to the bin's
// upper edge) selects the keep-alive window; a 10% margin widens both
// for safety. Representativeness is judged by the coefficient of
// variation of the bin counts, tracked incrementally with Welford's
// algorithm so each update is O(1).
//
// The percentile bins that drive Windows are maintained incrementally:
// each Observe adjusts a head and a tail cursor (amortized O(1), worst
// case one walk over the bins), and Windows memoizes the derived
// window pair keyed on the cursor bins, so the per-invocation decision
// cost is constant instead of an O(NumBins) scan.
package ithist

import (
	"fmt"
	"math"
	"time"
)

// Config parameterizes the histogram. The zero value is invalid; use
// DefaultConfig.
type Config struct {
	// BinWidth is the width of one bin. The paper uses 1 minute.
	BinWidth time.Duration
	// NumBins is the number of bins; BinWidth*NumBins is the histogram
	// range (the paper's default is 240 bins = 4 hours).
	NumBins int
	// HeadPercentile selects the pre-warming window (default 5).
	HeadPercentile float64
	// TailPercentile selects the keep-alive window (default 99).
	TailPercentile float64
	// Margin widens the windows for error tolerance (default 0.10):
	// the pre-warming window shrinks by Margin and the keep-alive
	// window grows by Margin.
	Margin float64
}

// DefaultConfig returns the paper's default parameters: 1-minute bins,
// 4-hour range, 5th/99th percentile cutoffs, 10% margin.
func DefaultConfig() Config {
	return Config{
		BinWidth:       time.Minute,
		NumBins:        240,
		HeadPercentile: 5,
		TailPercentile: 99,
		Margin:         0.10,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.BinWidth <= 0 {
		return fmt.Errorf("ithist: BinWidth must be positive, got %v", c.BinWidth)
	}
	if c.NumBins <= 0 {
		return fmt.Errorf("ithist: NumBins must be positive, got %d", c.NumBins)
	}
	if c.HeadPercentile < 0 || c.HeadPercentile > 100 {
		return fmt.Errorf("ithist: HeadPercentile %v out of [0,100]", c.HeadPercentile)
	}
	if c.TailPercentile < 0 || c.TailPercentile > 100 {
		return fmt.Errorf("ithist: TailPercentile %v out of [0,100]", c.TailPercentile)
	}
	if c.HeadPercentile > c.TailPercentile {
		return fmt.Errorf("ithist: head %v > tail %v", c.HeadPercentile, c.TailPercentile)
	}
	if c.Margin < 0 || c.Margin >= 1 {
		return fmt.Errorf("ithist: Margin %v out of [0,1)", c.Margin)
	}
	return nil
}

// cursor incrementally tracks the bin containing one percentile of the
// in-bounds distribution: bin is the smallest index whose inclusive
// prefix count reaches the percentile target, and cum is that prefix
// count. Maintaining the pair under single-count increments is
// amortized O(1) because the target moves by at most frac per
// observation.
type cursor struct {
	bin int
	cum int64
}

// Histogram tracks an application's idle-time distribution.
type Histogram struct {
	cfg    Config
	counts []int64
	total  int64 // in-bounds observations
	oob    int64 // out-of-bounds observations

	// Welford state over the bin counts (n is always NumBins: a count
	// moving from c to c+1 is a Replace, never an Add). Kept as plain
	// fields rather than a stats.Welford so the batch decision kernel
	// can carry them in registers; every update reproduces
	// stats.Welford.Replace bit for bit.
	cvMean float64
	cvM2   float64

	// sumSq is the sum of squared bin counts, the integer moment behind
	// the fast-mode closed-form CV (see fast.go). It is maintained on
	// every count mutation — one integer add per observation — so exact
	// and fast consumers can share one histogram; the exact decision
	// path never reads it.
	sumSq int64
	// cvStale marks the Welford moments as out of date after a fast
	// batch (DecideSeqFast maintains only sumSq). Exact readers call
	// fixWelford to rebuild them from the counts before use.
	cvStale bool

	// Precomputed constants for the hot path.
	invBins  float64 // 1 / NumBins, for the O(1) CV update
	headFrac float64 // HeadPercentile / 100
	tailFrac float64 // TailPercentile / 100

	head, tail cursor
	syncedAt   int64 // h.total value at the last cursor sync

	// Memoized Windows result, valid for (winHead, winTail).
	winHead, winTail int
	winPreWarm       time.Duration
	winKeepAlive     time.Duration
	winValid         bool
}

// New creates a histogram with the given configuration. It panics on
// an invalid configuration (programming error).
func New(cfg Config) *Histogram {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	h := &Histogram{
		cfg:      cfg,
		counts:   make([]int64, cfg.NumBins),
		invBins:  1 / float64(cfg.NumBins),
		headFrac: cfg.HeadPercentile / 100,
		tailFrac: cfg.TailPercentile / 100,
	}
	h.head = cursor{bin: -1}
	h.tail = cursor{bin: -1}
	return h
}

// Config returns the histogram's configuration.
func (h *Histogram) Config() Config { return h.cfg }

// Range returns the histogram's covered duration (BinWidth * NumBins).
func (h *Histogram) Range() time.Duration {
	return h.cfg.BinWidth * time.Duration(h.cfg.NumBins)
}

// Observe records one idle time. ITs at or beyond the range (or
// negative) count as out-of-bounds and do not enter the bins.
//
// Only the cursors' prefix counts are maintained here (two compares);
// restoring the percentile invariant — which can require walking bins
// — is deferred to syncCursors, so applications whose windows are
// never consulted (the policy's standard-fallback regime) don't pay
// for it.
func (h *Histogram) Observe(it time.Duration) {
	if it < 0 {
		h.oob++
		return
	}
	var idx int
	if h.cfg.BinWidth == time.Minute {
		// Constant divisor lets the compiler avoid a hardware divide on
		// the common path (the paper's 1-minute bins).
		idx = int(it / time.Minute)
	} else {
		idx = int(it / h.cfg.BinWidth)
	}
	if idx >= len(h.counts) { // len(counts) == cfg.NumBins; elides the bound check below
		h.oob++
		return
	}
	oldC := h.counts[idx]
	h.counts[idx]++
	h.total++
	h.sumSq += 2*oldC + 1
	h.cvInc1(float64(oldC))

	if idx <= h.head.bin {
		h.head.cum++
	}
	if idx <= h.tail.bin {
		h.tail.cum++
	}
}

// cvInc1 is stats.Welford.Replace(old, old+1) with n fixed at NumBins
// and the 1/n quotient precomputed — bit-identical (the delta is
// exactly 1 for integer counts), without the division.
func (h *Histogram) cvInc1(old float64) {
	oldMean := h.cvMean
	h.cvMean += h.invBins
	h.cvM2 += (old + 1) - h.cvMean + old - oldMean
	if h.cvM2 < 0 {
		h.cvM2 = 0
	}
}

// cvReplace is stats.Welford.Replace(old, new) with n fixed at
// NumBins, for the bulk mutation paths (Decode, Merge).
func (h *Histogram) cvReplace(old, new float64) {
	delta := new - old
	oldMean := h.cvMean
	h.cvMean += delta / float64(h.cfg.NumBins)
	h.cvM2 += delta * (new - h.cvMean + old - oldMean)
	if h.cvM2 < 0 {
		h.cvM2 = 0
	}
}

// Regime labels which path of the hybrid policy's Figure 10 flow the
// histogram state selects for one observation.
type Regime uint8

// Regime values, in the order Figure 10 evaluates them.
const (
	RegimeStandard Regime = iota // unrepresentative: conservative fallback
	RegimeWindows                // representative: histogram windows apply
	RegimeOOB                    // out-of-bounds heavy: time-series path
)

// WindowRun is a run of consecutive observations sharing a regime and
// (for RegimeWindows) a window pair, the unit DecideSeq emits.
type WindowRun struct {
	PreWarm   time.Duration
	KeepAlive time.Duration
	Regime    Regime
	Count     int32
}

// DecideSeq records idles[1:] in order (idles[0] precedes an app's
// first invocation, which observes nothing) and appends the
// per-observation regime evaluation to runs, run-length encoded. It
// is the batch equivalent of, per observation:
//
//	Observe(it)
//	cnt := Total() + OutOfBounds()
//	cnt >= minObs && OOBHeavy(oobThr) -> RegimeOOB
//	cnt < minObs || CVBelow(cvThr)    -> RegimeStandard
//	pw, ka, ok := Windows(); !ok      -> RegimeStandard
//	otherwise                         -> RegimeWindows with (pw, ka)
//
// producing bit-identical regimes and windows, but with the whole
// histogram state — counters, Welford CV accumulator, percentile
// cursors, window memo — carried in locals across the loop, so the
// per-observation cost is a handful of register operations instead of
// memory round-trips through three method calls. This is the §5.3
// per-invocation budget realized: the policy layer consumes the runs
// and only materializes per-invocation work on the rare regime
// changes.
func (h *Histogram) DecideSeq(idles []time.Duration, minObs int64, oobThr, cvThr float64, runs []WindowRun) []WindowRun {
	if len(idles) <= 1 {
		return runs
	}
	h.fixWelford()
	counts := h.counts
	binW := h.cfg.BinWidth
	binIsMinute := binW == time.Minute
	invBins := h.invBins
	nf := float64(h.cfg.NumBins)
	headFrac, tailFrac := h.headFrac, h.tailFrac
	total, oob := h.total, h.oob
	totalF := float64(total) // exact: counts stay far below 2^53
	sumSq := h.sumSq
	mean, m2 := h.cvMean, h.cvM2
	head, tail := h.head, h.tail
	syncedAt := h.syncedAt
	winHead, winTail := h.winHead, h.winTail
	winPW, winKA := h.winPreWarm, h.winKeepAlive
	winValid := h.winValid
	var cur WindowRun
	have := false
	for _, it := range idles[1:] {
		// Observe.
		if it < 0 {
			oob++
		} else {
			var idx int
			if binIsMinute {
				idx = int(it / time.Minute)
			} else {
				idx = int(it / binW)
			}
			if idx >= len(counts) {
				oob++
			} else {
				oldC := counts[idx]
				old := float64(oldC)
				counts[idx]++
				total++
				totalF++
				sumSq += 2*oldC + 1
				oldMean := mean
				mean += invBins
				m2 += (old + 1) - mean + old - oldMean
				if m2 < 0 {
					m2 = 0
				}
				if idx <= head.bin {
					head.cum++
				}
				if idx <= tail.bin {
					tail.cum++
				}
			}
		}
		// Regime selection, exactly as the single-call path orders it.
		step := WindowRun{Regime: RegimeStandard, Count: 1}
		cnt := total + oob
		if cnt >= minObs && oob != 0 && float64(oob) > oobThr*float64(cnt) {
			step.Regime = RegimeOOB
		} else if cnt < minObs || cvBelow(mean, m2, nf, cvThr) {
			// RegimeStandard: too few observations or CV below the
			// representativeness threshold.
		} else if total == 0 {
			// No in-bounds mass: Windows would report !ok.
		} else {
			if syncedAt != total {
				syncedAt = total
				if head.bin < 0 {
					head = cursorAtN(counts, headFrac, total)
					tail = cursorAtN(counts, tailFrac, total)
				} else {
					head.walkF(counts, headFrac*totalF)
					tail.walkF(counts, tailFrac*totalF)
				}
			}
			if !winValid || winHead != head.bin || winTail != tail.bin {
				winHead, winTail = head.bin, tail.bin
				winPW, winKA = marginWindows(h.cfg, head.bin, tail.bin)
				winValid = true
			}
			step = WindowRun{PreWarm: winPW, KeepAlive: winKA, Regime: RegimeWindows, Count: 1}
		}
		if have && step.Regime == cur.Regime && step.PreWarm == cur.PreWarm && step.KeepAlive == cur.KeepAlive {
			cur.Count++
		} else {
			if have {
				runs = append(runs, cur)
			}
			cur, have = step, true
		}
	}
	runs = append(runs, cur)

	// Spill the carried state back into the histogram.
	h.total, h.oob = total, oob
	h.sumSq = sumSq
	h.cvMean, h.cvM2 = mean, m2
	h.head, h.tail = head, tail
	h.syncedAt = syncedAt
	h.winHead, h.winTail = winHead, winTail
	h.winPreWarm, h.winKeepAlive = winPW, winKA
	h.winValid = winValid
	return runs
}

// cvBelow is the CVBelow comparison on explicit state. It must use
// the exact expression sqrt(m2/n)/|mean| < thr: the CV lands exactly
// on the paper's threshold of 2 for structurally common count
// patterns (e.g. two observations in two distinct bins), so an
// algebraically equivalent squared comparison rounds differently and
// flips real decisions.
func cvBelow(mean, m2, nf, thr float64) bool {
	if mean == 0 {
		return 0 < thr
	}
	return math.Sqrt(m2/nf)/math.Abs(mean) < thr
}

// syncCursors restores both percentile-cursor invariants after any
// number of Observe calls. The prefix counts are kept exact by
// Observe, so the walk is amortized O(1): each cursor moves only as
// far as the percentile target drifted.
func (h *Histogram) syncCursors() {
	if h.syncedAt == h.total {
		// Nothing observed in-bounds since the last sync (the targets
		// only depend on the in-bounds total).
		return
	}
	h.syncedAt = h.total
	if h.head.bin < 0 {
		// First consultation since Reset: locate the cursors by scan.
		h.head = h.cursorAt(h.headFrac)
		h.tail = h.cursorAt(h.tailFrac)
		return
	}
	h.head.walk(h.counts, effTarget(h.headFrac, h.total))
	h.tail.walk(h.counts, effTarget(h.tailFrac, h.total))
}

// effTarget converts a percentile fraction into the prefix-count
// target. The percentile scan's "cumulative >= target" test over
// integer prefix counts is unchanged by raising any target below 0.5
// to 0.5 (a zero or tiny target is first satisfied at the first
// occupied bin either way), which gives the cursors a single uniform
// invariant.
func effTarget(frac float64, total int64) float64 {
	t := frac * float64(total)
	if t < 0.5 {
		t = 0.5
	}
	return t
}

// walk restores the cursor invariant given an up-to-date prefix count:
// bin becomes the smallest index with inclusive prefix count cum >=
// target, with counts[bin] > 0. Prefix counts are exact in float64
// (they are integers far below 2^53), so the comparisons reproduce the
// full percentile scan bit for bit.
// walkF is walk with the target supplied as frac*total, unclamped (the
// batch kernel tracks the float total incrementally); it applies the
// same sub-half clamp as effTarget.
func (c *cursor) walkF(counts []int64, target float64) {
	if target < 0.5 {
		target = 0.5
	}
	c.walk(counts, target)
}

func (c *cursor) walk(counts []int64, target float64) {
	for float64(c.cum) < target {
		c.bin++
		for counts[c.bin] == 0 {
			c.bin++
		}
		c.cum += counts[c.bin]
	}
	for float64(c.cum-counts[c.bin]) >= target {
		c.cum -= counts[c.bin]
		c.bin--
		for counts[c.bin] == 0 {
			c.bin--
		}
	}
}

// Total returns the number of in-bounds idle times observed.
func (h *Histogram) Total() int64 { return h.total }

// OutOfBounds returns the number of out-of-bounds idle times.
func (h *Histogram) OutOfBounds() int64 { return h.oob }

// OOBFraction returns the fraction of all observed ITs that were out
// of bounds (0 when nothing was observed).
func (h *Histogram) OOBFraction() float64 {
	n := h.total + h.oob
	if n == 0 {
		return 0
	}
	return float64(h.oob) / float64(n)
}

// OOBHeavy reports whether the out-of-bounds fraction exceeds thr
// (thr > 0), without the division OOBFraction pays. The common
// all-in-bounds case exits on an integer test.
func (h *Histogram) OOBHeavy(thr float64) bool {
	return h.oob != 0 && float64(h.oob) > thr*float64(h.total+h.oob)
}

// BinCountCV returns the coefficient of variation of the bin counts,
// maintained incrementally. High CV means the ITs concentrate in few
// bins (the histogram is representative); CV near zero means the mass
// is spread out or absent.
func (h *Histogram) BinCountCV() float64 {
	h.fixWelford()
	if h.cvMean == 0 {
		return 0
	}
	return math.Sqrt(h.cvM2/float64(h.cfg.NumBins)) / math.Abs(h.cvMean)
}

// CVBelow reports BinCountCV() < thr without computing a square root
// or division. This is the per-invocation representativeness gate of
// the hybrid policy.
func (h *Histogram) CVBelow(thr float64) bool {
	h.fixWelford()
	return cvBelow(h.cvMean, h.cvM2, float64(h.cfg.NumBins), thr)
}

// fixWelford rebuilds the Welford moments from the counts after a fast
// batch (DecideSeqFast) left them stale. The rebuild is a plain
// two-pass recomputation, not bit-identical to the incremental
// history — only reachable once fast mode has touched the histogram,
// where bit-exactness is already waived.
func (h *Histogram) fixWelford() {
	if !h.cvStale {
		return
	}
	h.cvStale = false
	mean := float64(h.total) * h.invBins
	var m2 float64
	for _, c := range h.counts {
		d := float64(c) - mean
		m2 += d * d
	}
	h.cvMean, h.cvM2 = mean, m2
}

// Count returns the count in bin idx.
func (h *Histogram) Count(idx int) int64 { return h.counts[idx] }

// Counts returns a copy of the bin counts.
func (h *Histogram) Counts() []int64 {
	c := make([]int64, len(h.counts))
	copy(c, h.counts)
	return c
}

// percentileBin returns the index of the bin containing percentile p
// of the in-bounds distribution by a full scan. Caller guarantees
// total > 0. The incremental cursors make this cold-path only; it is
// retained as the reference implementation the property tests compare
// the cursors against.
func (h *Histogram) percentileBin(p float64) int {
	target := p / 100 * float64(h.total)
	var cum float64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		cum += float64(c)
		if cum >= target {
			return i
		}
	}
	for i := len(h.counts) - 1; i >= 0; i-- {
		if h.counts[i] > 0 {
			return i
		}
	}
	return 0
}

// Windows computes the pre-warming and keep-alive windows from the
// current distribution, per §4.2 and Figure 11:
//
//   - head = HeadPercentile of the IT distribution, rounded DOWN to
//     the containing bin's lower edge, then reduced by Margin; this is
//     the pre-warming window. A head that rounds to bin 0 yields a
//     pre-warming window of 0 (the app is not unloaded; center column
//     of Figure 12).
//   - tail = TailPercentile, rounded UP to the containing bin's upper
//     edge, then increased by Margin. The keep-alive window covers
//     from the pre-warm point through the tail: keepAlive = tail -
//     preWarm (so that pre-warm + keep-alive spans the IT range the
//     histogram predicts).
//
// The windows depend only on the head and tail percentile bins, which
// the cursors keep current, so repeated calls are O(1): the margin
// arithmetic reruns only when a cursor actually moved.
//
// ok is false when the histogram has no in-bounds observations.
func (h *Histogram) Windows() (preWarm, keepAlive time.Duration, ok bool) {
	if h.total == 0 {
		return 0, 0, false
	}
	h.syncCursors()
	if !h.winValid || h.winHead != h.head.bin || h.winTail != h.tail.bin {
		h.computeWindows()
	}
	return h.winPreWarm, h.winKeepAlive, true
}

// computeWindows derives the memoized window pair from the cursor bins.
func (h *Histogram) computeWindows() {
	h.winHead, h.winTail = h.head.bin, h.tail.bin
	h.winPreWarm, h.winKeepAlive = marginWindows(h.cfg, h.head.bin, h.tail.bin)
	h.winValid = true
}

// marginWindows derives the window pair from the percentile bins (the
// §4.2 rounding and margin rules; see Windows).
func marginWindows(cfg Config, headBin, tailBin int) (preWarm, keepAlive time.Duration) {
	// Round head down, tail up, to whole-bin edges.
	head := time.Duration(headBin) * cfg.BinWidth
	tail := time.Duration(tailBin+1) * cfg.BinWidth

	// Apply the margin: pre-warm earlier, keep alive longer.
	preWarm = time.Duration(float64(head) * (1 - cfg.Margin))
	tailM := time.Duration(float64(tail) * (1 + cfg.Margin))
	if r := cfg.BinWidth * time.Duration(cfg.NumBins); tailM > r {
		// Never promise a keep-alive beyond the histogram's knowledge.
		tailM = r
	}
	keepAlive = tailM - preWarm
	if keepAlive < cfg.BinWidth {
		keepAlive = cfg.BinWidth
	}
	return preWarm, keepAlive
}

// rebuildCursors recomputes the percentile cursors and invalidates the
// window memo after a bulk mutation of the counts (Decode, Merge). The
// incremental path in Observe only handles single-count increments.
func (h *Histogram) rebuildCursors() {
	h.winValid = false
	h.syncedAt = h.total
	if h.total == 0 {
		h.head = cursor{bin: -1}
		h.tail = cursor{bin: -1}
		return
	}
	h.head = h.cursorAt(h.headFrac)
	h.tail = h.cursorAt(h.tailFrac)
}

// cursorAt locates the percentile cursor by a full scan (cold path).
func (h *Histogram) cursorAt(frac float64) cursor {
	return cursorAtN(h.counts, frac, h.total)
}

// cursorAtN is cursorAt on explicit state, for the batch kernel.
func cursorAtN(counts []int64, frac float64, total int64) cursor {
	target := effTarget(frac, total)
	var cum int64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		cum += c
		if float64(cum) >= target {
			return cursor{bin: i, cum: cum}
		}
	}
	// Unreachable for valid targets (target <= total); fall back to the
	// last occupied bin, mirroring percentileBin.
	for i := len(counts) - 1; i >= 0; i-- {
		if counts[i] > 0 {
			return cursor{bin: i, cum: total}
		}
	}
	return cursor{bin: -1}
}

// Reset clears all state (used when an application is redeployed).
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.total, h.oob = 0, 0
	h.cvMean, h.cvM2 = 0, 0
	h.sumSq = 0
	h.cvStale = false
	h.head = cursor{bin: -1}
	h.tail = cursor{bin: -1}
	h.syncedAt = 0
	h.winValid = false
}

// MemoryFootprintBytes returns the approximate per-app size of the
// histogram state, to document the §6 claim of ~960 bytes per app with
// 240 4-byte buckets. (We store int64 counters, so 8 bytes per bin,
// plus a constant-size block of incremental percentile-cursor, CV, and
// memoized-window state.)
func (h *Histogram) MemoryFootprintBytes() int {
	const fixed = 24 /* Welford */ + 2*16 /* cursors */ +
		24 /* precomputed fractions */ + 48 /* generation + window memo */
	return 8*len(h.counts) + fixed
}
