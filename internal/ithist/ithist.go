// Package ithist implements the paper's range-limited idle-time (IT)
// histogram (§4.2), the centerpiece of the hybrid keep-alive policy.
//
// The histogram uses 1-minute bins over a configurable range (default
// 4 hours, i.e. 240 bins ~ 960 bytes of counters, matching the Azure
// production implementation in §6). Idle times beyond the range are
// counted as out-of-bounds (OOB). The head (default 5th percentile,
// rounded down to the bin's lower edge) selects the pre-warming
// window; the tail (default 99th percentile, rounded up to the bin's
// upper edge) selects the keep-alive window; a 10% margin widens both
// for safety. Representativeness is judged by the coefficient of
// variation of the bin counts, tracked incrementally with Welford's
// algorithm so each update is O(1).
package ithist

import (
	"fmt"
	"time"

	"repro/internal/stats"
)

// Config parameterizes the histogram. The zero value is invalid; use
// DefaultConfig.
type Config struct {
	// BinWidth is the width of one bin. The paper uses 1 minute.
	BinWidth time.Duration
	// NumBins is the number of bins; BinWidth*NumBins is the histogram
	// range (the paper's default is 240 bins = 4 hours).
	NumBins int
	// HeadPercentile selects the pre-warming window (default 5).
	HeadPercentile float64
	// TailPercentile selects the keep-alive window (default 99).
	TailPercentile float64
	// Margin widens the windows for error tolerance (default 0.10):
	// the pre-warming window shrinks by Margin and the keep-alive
	// window grows by Margin.
	Margin float64
}

// DefaultConfig returns the paper's default parameters: 1-minute bins,
// 4-hour range, 5th/99th percentile cutoffs, 10% margin.
func DefaultConfig() Config {
	return Config{
		BinWidth:       time.Minute,
		NumBins:        240,
		HeadPercentile: 5,
		TailPercentile: 99,
		Margin:         0.10,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.BinWidth <= 0 {
		return fmt.Errorf("ithist: BinWidth must be positive, got %v", c.BinWidth)
	}
	if c.NumBins <= 0 {
		return fmt.Errorf("ithist: NumBins must be positive, got %d", c.NumBins)
	}
	if c.HeadPercentile < 0 || c.HeadPercentile > 100 {
		return fmt.Errorf("ithist: HeadPercentile %v out of [0,100]", c.HeadPercentile)
	}
	if c.TailPercentile < 0 || c.TailPercentile > 100 {
		return fmt.Errorf("ithist: TailPercentile %v out of [0,100]", c.TailPercentile)
	}
	if c.HeadPercentile > c.TailPercentile {
		return fmt.Errorf("ithist: head %v > tail %v", c.HeadPercentile, c.TailPercentile)
	}
	if c.Margin < 0 || c.Margin >= 1 {
		return fmt.Errorf("ithist: Margin %v out of [0,1)", c.Margin)
	}
	return nil
}

// Histogram tracks an application's idle-time distribution.
type Histogram struct {
	cfg    Config
	counts []int64
	total  int64 // in-bounds observations
	oob    int64 // out-of-bounds observations
	binCV  stats.Welford
}

// New creates a histogram with the given configuration. It panics on
// an invalid configuration (programming error).
func New(cfg Config) *Histogram {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	h := &Histogram{cfg: cfg, counts: make([]int64, cfg.NumBins)}
	for range h.counts {
		h.binCV.Add(0)
	}
	return h
}

// Config returns the histogram's configuration.
func (h *Histogram) Config() Config { return h.cfg }

// Range returns the histogram's covered duration (BinWidth * NumBins).
func (h *Histogram) Range() time.Duration {
	return h.cfg.BinWidth * time.Duration(h.cfg.NumBins)
}

// Observe records one idle time. ITs at or beyond the range (or
// negative) count as out-of-bounds and do not enter the bins.
func (h *Histogram) Observe(it time.Duration) {
	if it < 0 {
		h.oob++
		return
	}
	idx := int(it / h.cfg.BinWidth)
	if idx >= h.cfg.NumBins {
		h.oob++
		return
	}
	old := float64(h.counts[idx])
	h.counts[idx]++
	h.total++
	h.binCV.Replace(old, old+1)
}

// Total returns the number of in-bounds idle times observed.
func (h *Histogram) Total() int64 { return h.total }

// OutOfBounds returns the number of out-of-bounds idle times.
func (h *Histogram) OutOfBounds() int64 { return h.oob }

// OOBFraction returns the fraction of all observed ITs that were out
// of bounds (0 when nothing was observed).
func (h *Histogram) OOBFraction() float64 {
	n := h.total + h.oob
	if n == 0 {
		return 0
	}
	return float64(h.oob) / float64(n)
}

// BinCountCV returns the coefficient of variation of the bin counts,
// maintained incrementally. High CV means the ITs concentrate in few
// bins (the histogram is representative); CV near zero means the mass
// is spread out or absent.
func (h *Histogram) BinCountCV() float64 { return h.binCV.CV() }

// Count returns the count in bin idx.
func (h *Histogram) Count(idx int) int64 { return h.counts[idx] }

// Counts returns a copy of the bin counts.
func (h *Histogram) Counts() []int64 {
	c := make([]int64, len(h.counts))
	copy(c, h.counts)
	return c
}

// percentileBin returns the index of the bin containing percentile p
// of the in-bounds distribution. Caller guarantees total > 0.
func (h *Histogram) percentileBin(p float64) int {
	target := p / 100 * float64(h.total)
	var cum float64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		cum += float64(c)
		if cum >= target {
			return i
		}
	}
	for i := len(h.counts) - 1; i >= 0; i-- {
		if h.counts[i] > 0 {
			return i
		}
	}
	return 0
}

// Windows computes the pre-warming and keep-alive windows from the
// current distribution, per §4.2 and Figure 11:
//
//   - head = HeadPercentile of the IT distribution, rounded DOWN to
//     the containing bin's lower edge, then reduced by Margin; this is
//     the pre-warming window. A head that rounds to bin 0 yields a
//     pre-warming window of 0 (the app is not unloaded; center column
//     of Figure 12).
//   - tail = TailPercentile, rounded UP to the containing bin's upper
//     edge, then increased by Margin. The keep-alive window covers
//     from the pre-warm point through the tail: keepAlive = tail -
//     preWarm (so that pre-warm + keep-alive spans the IT range the
//     histogram predicts).
//
// ok is false when the histogram has no in-bounds observations.
func (h *Histogram) Windows() (preWarm, keepAlive time.Duration, ok bool) {
	if h.total == 0 {
		return 0, 0, false
	}
	headBin := h.percentileBin(h.cfg.HeadPercentile)
	tailBin := h.percentileBin(h.cfg.TailPercentile)

	// Round head down, tail up, to whole-bin edges.
	head := time.Duration(headBin) * h.cfg.BinWidth
	tail := time.Duration(tailBin+1) * h.cfg.BinWidth

	// Apply the margin: pre-warm earlier, keep alive longer.
	preWarm = time.Duration(float64(head) * (1 - h.cfg.Margin))
	tailM := time.Duration(float64(tail) * (1 + h.cfg.Margin))
	if tailM > h.Range() {
		// Never promise a keep-alive beyond the histogram's knowledge.
		tailM = h.Range()
	}
	keepAlive = tailM - preWarm
	if keepAlive < h.cfg.BinWidth {
		keepAlive = h.cfg.BinWidth
	}
	return preWarm, keepAlive, true
}

// Reset clears all state (used when an application is redeployed).
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.total, h.oob = 0, 0
	h.binCV.Reset()
	for range h.counts {
		h.binCV.Add(0)
	}
}

// MemoryFootprintBytes returns the approximate size of the histogram's
// counters, to document the §6 claim of ~960 bytes per app with 240
// 4-byte buckets. (We store int64 counters, so 8 bytes per bin.)
func (h *Histogram) MemoryFootprintBytes() int {
	return 8 * len(h.counts)
}
