package ithist

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/stats"
)

func defaultHist() *Histogram { return New(DefaultConfig()) }

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	h := New(cfg)
	if h.Range() != 4*time.Hour {
		t.Fatalf("range = %v, want 4h", h.Range())
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{BinWidth: 0, NumBins: 10},
		{BinWidth: time.Minute, NumBins: 0},
		{BinWidth: time.Minute, NumBins: 10, HeadPercentile: -1},
		{BinWidth: time.Minute, NumBins: 10, TailPercentile: 101},
		{BinWidth: time.Minute, NumBins: 10, HeadPercentile: 50, TailPercentile: 40},
		{BinWidth: time.Minute, NumBins: 10, Margin: 1},
		{BinWidth: time.Minute, NumBins: 10, Margin: -0.1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{})
}

func TestObserveBinsAndOOB(t *testing.T) {
	h := defaultHist()
	h.Observe(30 * time.Second) // bin 0
	h.Observe(90 * time.Second) // bin 1
	h.Observe(5 * time.Hour)    // OOB
	h.Observe(-time.Second)     // OOB (defensive)
	if h.Total() != 2 {
		t.Fatalf("total = %d", h.Total())
	}
	if h.OutOfBounds() != 2 {
		t.Fatalf("oob = %d", h.OutOfBounds())
	}
	if got := h.OOBFraction(); got != 0.5 {
		t.Fatalf("oob fraction = %v", got)
	}
	if h.Count(0) != 1 || h.Count(1) != 1 {
		t.Fatal("wrong bins")
	}
}

func TestObserveExactRangeBoundaryIsOOB(t *testing.T) {
	h := defaultHist()
	h.Observe(4 * time.Hour) // == range → OOB
	if h.Total() != 0 || h.OutOfBounds() != 1 {
		t.Fatalf("total=%d oob=%d", h.Total(), h.OutOfBounds())
	}
}

func TestOOBFractionEmpty(t *testing.T) {
	if defaultHist().OOBFraction() != 0 {
		t.Fatal("empty histogram OOB fraction should be 0")
	}
}

func TestWindowsEmptyNotOK(t *testing.T) {
	if _, _, ok := defaultHist().Windows(); ok {
		t.Fatal("empty histogram should not produce windows")
	}
}

func TestWindowsConcentratedDistribution(t *testing.T) {
	// All ITs ~ 10 minutes: head and tail in bin 10.
	h := defaultHist()
	for i := 0; i < 100; i++ {
		h.Observe(10*time.Minute + 30*time.Second)
	}
	pw, ka, ok := h.Windows()
	if !ok {
		t.Fatal("expected windows")
	}
	// Head = bin 10 lower edge = 10min, minus 10% margin = 9min.
	if pw != 9*time.Minute {
		t.Fatalf("preWarm = %v, want 9m", pw)
	}
	// Tail = bin 10 upper edge = 11min, plus 10% = 12.1min; KA = 12.1 - 9 = 3.1min.
	wantKA := time.Duration(float64(11*time.Minute)*1.1) - 9*time.Minute
	if ka != wantKA {
		t.Fatalf("keepAlive = %v, want %v", ka, wantKA)
	}
}

func TestWindowsHeadRoundsDownToZero(t *testing.T) {
	// ITs under one minute: head bin 0 → pre-warm window 0 (the
	// "don't unload" cases in the center column of Figure 12).
	h := defaultHist()
	for i := 0; i < 50; i++ {
		h.Observe(20 * time.Second)
	}
	pw, ka, ok := h.Windows()
	if !ok || pw != 0 {
		t.Fatalf("preWarm = %v ok=%v, want 0", pw, ok)
	}
	if ka <= 0 {
		t.Fatalf("keepAlive = %v", ka)
	}
}

func TestWindowsSpreadDistribution(t *testing.T) {
	// ITs spread 5..60 min: head near 5min, tail near 60min.
	h := defaultHist()
	for m := 5; m <= 60; m++ {
		h.Observe(time.Duration(m)*time.Minute + time.Second)
	}
	pw, ka, ok := h.Windows()
	if !ok {
		t.Fatal("expected windows")
	}
	// 56 observations; 5th pct ≈ index 2.8 → within first few bins (5-7min).
	if pw < 4*time.Minute || pw > 8*time.Minute {
		t.Fatalf("preWarm = %v", pw)
	}
	// Tail covers ~60min; KA = tail*1.1 - pw ≈ 61min.
	if ka < 50*time.Minute || ka > 70*time.Minute {
		t.Fatalf("keepAlive = %v", ka)
	}
}

func TestWindowsTailClampedToRange(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumBins = 10 // 10-minute range
	h := New(cfg)
	for i := 0; i < 100; i++ {
		h.Observe(9*time.Minute + 30*time.Second) // last bin
	}
	pw, ka, ok := h.Windows()
	if !ok {
		t.Fatal("expected windows")
	}
	if pw+ka > h.Range() {
		t.Fatalf("pw+ka = %v exceeds range %v", pw+ka, h.Range())
	}
}

func TestWindowsZeroMargin(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Margin = 0
	h := New(cfg)
	for i := 0; i < 10; i++ {
		h.Observe(30 * time.Minute)
	}
	pw, ka, ok := h.Windows()
	if !ok {
		t.Fatal("expected windows")
	}
	if pw != 30*time.Minute {
		t.Fatalf("preWarm = %v, want 30m", pw)
	}
	if ka != time.Minute {
		t.Fatalf("keepAlive = %v, want 1m (single bin)", ka)
	}
}

func TestBinCountCVMatchesBatch(t *testing.T) {
	check := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		cfg := DefaultConfig()
		cfg.NumBins = 24
		h := New(cfg)
		for i := 0; i < 200; i++ {
			h.Observe(time.Duration(r.Float64() * float64(30*time.Minute)))
		}
		// Recompute CV from scratch.
		var w stats.Welford
		for _, c := range h.Counts() {
			w.Add(float64(c))
		}
		return math.Abs(h.BinCountCV()-w.CV()) < 1e-6
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBinCountCVConcentratedVsFlat(t *testing.T) {
	concentrated := defaultHist()
	for i := 0; i < 1000; i++ {
		concentrated.Observe(7 * time.Minute)
	}
	if cv := concentrated.BinCountCV(); cv < 10 {
		t.Fatalf("concentrated CV = %v, want large", cv)
	}
	flat := defaultHist()
	for b := 0; b < 240; b++ {
		flat.Observe(time.Duration(b)*time.Minute + time.Second)
	}
	if cv := flat.BinCountCV(); cv > 0.1 {
		t.Fatalf("flat CV = %v, want ~0", cv)
	}
}

func TestReset(t *testing.T) {
	h := defaultHist()
	h.Observe(time.Minute)
	h.Observe(10 * time.Hour)
	h.Reset()
	if h.Total() != 0 || h.OutOfBounds() != 0 {
		t.Fatal("Reset did not clear counts")
	}
	if h.BinCountCV() != 0 {
		t.Fatal("Reset did not clear CV state")
	}
	if _, _, ok := h.Windows(); ok {
		t.Fatal("Windows after Reset should not be ok")
	}
}

func TestMemoryFootprint(t *testing.T) {
	h := defaultHist()
	got := h.MemoryFootprintBytes()
	// 240 8-byte counters plus a constant-size block for the incremental
	// percentile cursors, CV accumulator, and window memo; the counters
	// must dominate (the §6 per-app budget is of order 1KB).
	if extra := got - 240*8; extra < 0 || extra > 256 {
		t.Fatalf("footprint = %d (extra %d outside [0,256])", got, got-240*8)
	}
}

func TestWindowsMonotoneTailWithPercentile(t *testing.T) {
	// A higher tail percentile must never shorten pw+ka coverage.
	mk := func(tail float64) time.Duration {
		cfg := DefaultConfig()
		cfg.TailPercentile = tail
		h := New(cfg)
		r := stats.NewRNG(5)
		for i := 0; i < 500; i++ {
			h.Observe(time.Duration(r.Float64() * float64(2*time.Hour)))
		}
		pw, ka, _ := h.Windows()
		return pw + ka
	}
	if mk(99) < mk(95) {
		t.Fatal("coverage should grow with tail percentile")
	}
}

func TestPercentileBinProperty(t *testing.T) {
	// percentileBin via Windows must track the underlying distribution:
	// feeding only bin k concentrates head and tail at k.
	check := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		bin := r.Intn(240)
		cfg := DefaultConfig()
		cfg.Margin = 0
		h := New(cfg)
		for i := 0; i < 20; i++ {
			h.Observe(time.Duration(bin)*time.Minute + 15*time.Second)
		}
		pw, ka, ok := h.Windows()
		if !ok {
			return false
		}
		wantPW := time.Duration(bin) * time.Minute
		wantEnd := time.Duration(bin+1) * time.Minute
		if wantEnd > h.Range() {
			wantEnd = h.Range()
		}
		return pw == wantPW && pw+ka >= wantEnd
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}
