package ithist

import (
	"encoding/binary"
	"fmt"
	"time"
)

// The binary encoding backs the production implementation's hourly
// database backups (§6): a fixed header (version, config) followed by
// varint-encoded bin counts and the OOB counter. A 240-bin histogram
// with small counts encodes to a few hundred bytes, in line with the
// paper's 960-byte in-memory footprint.

const encodingVersion = 1

// Encode serializes the histogram (configuration and counters).
func (h *Histogram) Encode() []byte {
	buf := make([]byte, 0, 64+len(h.counts))
	buf = binary.AppendUvarint(buf, encodingVersion)
	buf = binary.AppendUvarint(buf, uint64(h.cfg.BinWidth))
	buf = binary.AppendUvarint(buf, uint64(h.cfg.NumBins))
	buf = binary.AppendUvarint(buf, uint64(h.cfg.HeadPercentile*100))
	buf = binary.AppendUvarint(buf, uint64(h.cfg.TailPercentile*100))
	buf = binary.AppendUvarint(buf, uint64(h.cfg.Margin*10000))
	buf = binary.AppendUvarint(buf, uint64(h.oob))
	for _, c := range h.counts {
		buf = binary.AppendUvarint(buf, uint64(c))
	}
	return buf
}

// Decode reconstructs a histogram serialized by Encode.
func Decode(data []byte) (*Histogram, error) {
	read := func() (uint64, error) {
		v, n := binary.Uvarint(data)
		if n <= 0 {
			return 0, fmt.Errorf("ithist: truncated encoding")
		}
		data = data[n:]
		return v, nil
	}
	version, err := read()
	if err != nil {
		return nil, err
	}
	if version != encodingVersion {
		return nil, fmt.Errorf("ithist: unsupported encoding version %d", version)
	}
	var vals [5]uint64
	for i := range vals {
		if vals[i], err = read(); err != nil {
			return nil, err
		}
	}
	cfg := Config{
		BinWidth:       time.Duration(vals[0]),
		NumBins:        int(vals[1]),
		HeadPercentile: float64(vals[2]) / 100,
		TailPercentile: float64(vals[3]) / 100,
		Margin:         float64(vals[4]) / 10000,
	}
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("ithist: decoded invalid config: %w", err)
	}
	oob, err := read()
	if err != nil {
		return nil, err
	}
	h := New(cfg)
	h.oob = int64(oob)
	for i := 0; i < cfg.NumBins; i++ {
		c, err := read()
		if err != nil {
			return nil, err
		}
		if c > 0 {
			h.counts[i] = int64(c)
			h.total += int64(c)
			h.sumSq += int64(c) * int64(c)
			h.cvReplace(0, float64(c))
		}
	}
	h.rebuildCursors()
	return h, nil
}

// Merge adds other's counters into h, scaled by weight (counts are
// rounded to the nearest integer; weight 1 is a plain sum). The
// production implementation aggregates daily histograms in a weighted
// fashion to favor recent days (§6). Histogram configurations must
// match.
func (h *Histogram) Merge(other *Histogram, weight float64) error {
	if h.cfg != other.cfg {
		return fmt.Errorf("ithist: merging incompatible configs")
	}
	if weight < 0 {
		return fmt.Errorf("ithist: negative merge weight %v", weight)
	}
	for i, c := range other.counts {
		add := int64(float64(c)*weight + 0.5)
		if add == 0 {
			continue
		}
		oldC := h.counts[i]
		h.counts[i] += add
		h.total += add
		h.sumSq += h.counts[i]*h.counts[i] - oldC*oldC
		h.cvReplace(float64(oldC), float64(h.counts[i]))
	}
	h.oob += int64(float64(other.oob)*weight + 0.5)
	h.rebuildCursors()
	return nil
}
