package ithist

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/stats"
)

// bruteWindows recomputes the windows from scratch with the reference
// full-scan percentileBin, bypassing the cursors and the memo.
func bruteWindows(h *Histogram) (preWarm, keepAlive time.Duration, ok bool) {
	if h.total == 0 {
		return 0, 0, false
	}
	headBin := h.percentileBin(h.cfg.HeadPercentile)
	tailBin := h.percentileBin(h.cfg.TailPercentile)
	pw, ka := marginWindows(h.cfg, headBin, tailBin)
	return pw, ka, true
}

// randomIT draws an idle time spanning in-bounds bins, the OOB region,
// and occasionally negative values.
func randomIT(r *stats.RNG, rng time.Duration) time.Duration {
	switch r.Intn(10) {
	case 0:
		return rng + time.Duration(r.Float64()*float64(time.Hour)) // OOB
	case 1:
		return -time.Duration(r.Float64() * float64(time.Minute)) // negative
	default:
		return time.Duration(r.Float64() * float64(rng)) // in-bounds
	}
}

// TestWindowsMatchesBruteForce drives random observation sequences —
// including a Reset mid-stream — and asserts after every observation
// that the memoized, cursor-maintained Windows agrees exactly with a
// brute-force recompute from the raw counts.
func TestWindowsMatchesBruteForce(t *testing.T) {
	cfgs := []Config{
		DefaultConfig(),
		{BinWidth: time.Minute, NumBins: 60, HeadPercentile: 5, TailPercentile: 99, Margin: 0.10},
		{BinWidth: 30 * time.Second, NumBins: 17, HeadPercentile: 0, TailPercentile: 100, Margin: 0},
		{BinWidth: time.Minute, NumBins: 240, HeadPercentile: 50, TailPercentile: 50, Margin: 0.25},
	}
	check := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		cfg := cfgs[r.Intn(len(cfgs))]
		h := New(cfg)
		steps := 100 + r.Intn(400)
		resetAt := -1
		if r.Intn(2) == 0 {
			resetAt = r.Intn(steps)
		}
		for i := 0; i < steps; i++ {
			if i == resetAt {
				h.Reset()
			}
			h.Observe(randomIT(r, h.Range()))
			pw, ka, ok := h.Windows()
			bpw, bka, bok := bruteWindows(h)
			if ok != bok || pw != bpw || ka != bka {
				t.Logf("seed %d step %d: got (%v,%v,%v) want (%v,%v,%v)",
					seed, i, pw, ka, ok, bpw, bka, bok)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestWindowsLazySyncMatchesBruteForce interleaves stretches where
// Windows is not consulted (the cursors fall behind and must catch up
// by walking) with consultations, and checks exact agreement.
func TestWindowsLazySyncMatchesBruteForce(t *testing.T) {
	check := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		h := New(DefaultConfig())
		for i := 0; i < 50; i++ {
			burst := 1 + r.Intn(40)
			for j := 0; j < burst; j++ {
				h.Observe(randomIT(r, h.Range()))
			}
			pw, ka, ok := h.Windows()
			bpw, bka, bok := bruteWindows(h)
			if ok != bok || pw != bpw || ka != bka {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestDecideSeqMatchesStepwise feeds the same idle sequence to the
// batch kernel and to a step-by-step Observe/OOBHeavy/CVBelow/Windows
// replica on an independent histogram, asserting the expanded runs
// agree observation by observation and the two histograms end in
// states that keep agreeing on subsequent windows.
func TestDecideSeqMatchesStepwise(t *testing.T) {
	const (
		minObs = 2
		oobThr = 0.5
		cvThr  = 2.0
	)
	check := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		n := 2 + r.Intn(300)
		idles := make([]time.Duration, n)
		for i := range idles {
			idles[i] = randomIT(r, 4*time.Hour)
		}

		batch := New(DefaultConfig())
		runs := batch.DecideSeq(idles, minObs, oobThr, cvThr, nil)

		// Expand runs to one entry per observation.
		var flat []WindowRun
		for _, run := range runs {
			for k := int32(0); k < run.Count; k++ {
				flat = append(flat, WindowRun{PreWarm: run.PreWarm, KeepAlive: run.KeepAlive, Regime: run.Regime, Count: 1})
			}
		}
		if len(flat) != n-1 {
			t.Logf("seed %d: runs cover %d observations, want %d", seed, len(flat), n-1)
			return false
		}

		step := New(DefaultConfig())
		for i := 1; i < n; i++ {
			step.Observe(idles[i])
			want := WindowRun{Regime: RegimeStandard, Count: 1}
			cnt := step.Total() + step.OutOfBounds()
			if cnt >= minObs && step.OOBHeavy(oobThr) {
				want.Regime = RegimeOOB
			} else if cnt < minObs || step.CVBelow(cvThr) {
				// standard
			} else if pw, ka, ok := step.Windows(); ok {
				want = WindowRun{PreWarm: pw, KeepAlive: ka, Regime: RegimeWindows, Count: 1}
			}
			if flat[i-1] != want {
				t.Logf("seed %d obs %d: batch %+v stepwise %+v", seed, i, flat[i-1], want)
				return false
			}
		}

		// The spilled state must continue to agree with the stepwise
		// histogram on further observations.
		for i := 0; i < 20; i++ {
			it := randomIT(r, 4*time.Hour)
			batch.Observe(it)
			step.Observe(it)
			bpw, bka, bok := batch.Windows()
			spw, ska, sok := step.Windows()
			if bok != sok || bpw != spw || bka != ska ||
				batch.Total() != step.Total() ||
				batch.OutOfBounds() != step.OutOfBounds() ||
				batch.BinCountCV() != step.BinCountCV() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestObserveAllocs pins the steady-state per-observation cost of the
// histogram update to zero allocations.
func TestObserveAllocs(t *testing.T) {
	h := New(DefaultConfig())
	r := stats.NewRNG(11)
	for i := 0; i < 1000; i++ {
		h.Observe(randomIT(r, h.Range()))
	}
	allocs := testing.AllocsPerRun(1000, func() {
		h.Observe(37 * time.Minute)
		h.Windows()
	})
	if allocs != 0 {
		t.Fatalf("Observe+Windows allocs/op = %v, want 0", allocs)
	}
}
