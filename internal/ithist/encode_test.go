package ithist

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/stats"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	check := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		h := New(DefaultConfig())
		for i := 0; i < 500; i++ {
			h.Observe(time.Duration(r.Float64() * float64(6*time.Hour)))
		}
		got, err := Decode(h.Encode())
		if err != nil {
			return false
		}
		if got.Total() != h.Total() || got.OutOfBounds() != h.OutOfBounds() {
			return false
		}
		for i := 0; i < h.Config().NumBins; i++ {
			if got.Count(i) != h.Count(i) {
				return false
			}
		}
		// Derived quantities must agree too.
		gpw, gka, gok := got.Windows()
		hpw, hka, hok := h.Windows()
		return gok == hok && gpw == hpw && gka == hka
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{0xff},
		{1},          // truncated after version
		{2, 1, 2, 3}, // wrong version
	}
	for i, data := range cases {
		if _, err := Decode(data); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestDecodeEmptyHistogram(t *testing.T) {
	h := New(DefaultConfig())
	got, err := Decode(h.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Total() != 0 || got.OutOfBounds() != 0 {
		t.Fatal("empty histogram did not round trip")
	}
	if _, _, ok := got.Windows(); ok {
		t.Fatal("decoded empty histogram should have no windows")
	}
}

func TestEncodeCompact(t *testing.T) {
	// A sparse histogram should encode much smaller than 8 bytes/bin.
	h := New(DefaultConfig())
	for i := 0; i < 100; i++ {
		h.Observe(10 * time.Minute)
	}
	if n := len(h.Encode()); n > 400 {
		t.Fatalf("encoding = %d bytes, want compact", n)
	}
}

func TestMergePlainSum(t *testing.T) {
	a := New(DefaultConfig())
	b := New(DefaultConfig())
	a.Observe(10 * time.Minute)
	b.Observe(10 * time.Minute)
	b.Observe(20 * time.Minute)
	b.Observe(10 * time.Hour) // OOB
	if err := a.Merge(b, 1); err != nil {
		t.Fatal(err)
	}
	if a.Count(10) != 2 || a.Count(20) != 1 {
		t.Fatalf("counts = %d, %d", a.Count(10), a.Count(20))
	}
	if a.Total() != 3 || a.OutOfBounds() != 1 {
		t.Fatalf("total=%d oob=%d", a.Total(), a.OutOfBounds())
	}
}

func TestMergeWeighted(t *testing.T) {
	a := New(DefaultConfig())
	b := New(DefaultConfig())
	for i := 0; i < 10; i++ {
		b.Observe(30 * time.Minute)
	}
	if err := a.Merge(b, 0.5); err != nil {
		t.Fatal(err)
	}
	if a.Count(30) != 5 {
		t.Fatalf("weighted count = %d, want 5", a.Count(30))
	}
	// CV bookkeeping must stay consistent with a fresh recompute (up
	// to incremental-update round-off).
	var w stats.Welford
	for _, c := range a.Counts() {
		w.Add(float64(c))
	}
	if got, want := a.BinCountCV(), w.CV(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("merged CV %v != recomputed %v", got, want)
	}
}

func TestMergeErrors(t *testing.T) {
	a := New(DefaultConfig())
	cfg := DefaultConfig()
	cfg.NumBins = 60
	b := New(cfg)
	if err := a.Merge(b, 1); err == nil {
		t.Fatal("expected config mismatch error")
	}
	c := New(DefaultConfig())
	if err := a.Merge(c, -1); err == nil {
		t.Fatal("expected negative weight error")
	}
}
