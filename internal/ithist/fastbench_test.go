package ithist

import (
	"math/rand"
	"testing"
	"time"
)

func benchIdles(n int) []time.Duration {
	rng := rand.New(rand.NewSource(7))
	idles := make([]time.Duration, n)
	for i := range idles {
		idles[i] = time.Duration(rng.Int63n(int64(150 * time.Minute)))
	}
	return idles
}

func BenchmarkKernelExact(b *testing.B) {
	idles := benchIdles(4000)
	h := New(DefaultConfig())
	var runs []WindowRun
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Reset()
		runs = h.DecideSeq(idles, 2, 0.5, 2, runs[:0])
	}
}

func BenchmarkKernelFast(b *testing.B) {
	idles := benchIdles(4000)
	h := New(DefaultConfig())
	var runs []WindowRun
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Reset()
		runs = h.DecideSeqFast(idles, 2, 0.5, 2, runs[:0])
	}
}
