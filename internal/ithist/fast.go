package ithist

import "time"

// Fast-mode decision kernel (policy=hybrid?exact=off).
//
// The exact kernel (DecideSeq) is pinned bit-for-bit to the seed's
// per-call semantics, which forbids the two classically profitable
// rewrites of the representativeness gate: closed-form CV moments and
// a square-free threshold comparison. Both were measured faster and
// reverted in PR 1 because the bin-count CV lands exactly on the
// paper's threshold of 2 for structurally common count patterns, where
// any reassociation flips real decisions. This file is the opt-in lane
// that takes those rewrites anyway: callers accept that decisions may
// differ from the exact path at CV ties and near percentile-target
// rounding boundaries, with the divergence measured and bounded by
// internal/equiv rather than forbidden.
//
// What diverges, precisely:
//
//   - The CV gate uses the closed-form integer moments: with S the sum
//     of squared bin counts, T the in-bounds total and n the bin
//     count, CV^2 = n*S/T^2 - 1, so CV < thr iff n*S < (1+thr^2)*T^2.
//     No Welford recurrence, no square root, no division — but a tie
//     at CV == thr resolves by exact algebra where the exact path
//     resolves by float rounding of the incremental moments.
//   - The percentile-cursor targets are compared in exact rational
//     arithmetic (100*cum against percentile*total) instead of the
//     float frac*total re-derivation at each cursor sync; ties the
//     float product rounds across an integer prefix count resolve the
//     infinite-precision way.
//
// Everything else — binning, OOB accounting, cursor walks, window
// memoization, run-length encoding — computes the same decisions as
// DecideSeq, only restructured: the observe path is branchless (real
// traces alternate idle signs unpredictably under concurrency, and
// the mispredicts cost more than the observation itself), and when
// the thresholds are exactly representable as small rationals — the
// paper's CV threshold 2, 5th/99th percentiles, OOB fraction 0.5 —
// the whole per-observation regime evaluation runs in int64 with no
// conversions. Non-rational configurations take the float loop below,
// which keeps incremental float targets instead.

// Run keys for the fast kernels' run-length encoding: runs break
// exactly when the emitted (regime, windows) pair changes, tracked as
// a small integer — OOB and Standard are fixed keys, Windows keys are
// 2 plus a generation counter bumped whenever the memoized window
// values change. The per-observation tail is one compare instead of a
// three-field one; the run's windows are captured at run start.
const (
	fastKeyOOB = 0
	fastKeyStd = 1
)

// fastSizeLimit bounds the observation counts under which the int64
// forms cannot overflow: with total < 2^26, total^2 < 2^52 leaves
// eleven bits for the threshold factors and sixteen for the OOB
// fraction scale.
const fastSizeLimit = 1 << 26

// FastCVBelow reports whether the bin-count CV is below thr using the
// closed-form moments. It is the fast-mode counterpart of CVBelow and
// may disagree with it when the CV sits exactly on thr (the known
// divergence hotspot at the paper's threshold of 2). Like the batch
// kernel it prefers the pure integer comparison so the per-call path
// resolves ties the same way.
func (h *Histogram) FastCVBelow(thr float64) bool {
	thrSq1 := 1 + thr*thr
	if h.total == 0 {
		// All-zero counts: the CV is defined as 0, below any positive
		// threshold (thrSq1 > 1 iff thr > 0), matching cvBelow.
		return thrSq1 > 1
	}
	thrI := int64(thrSq1)
	nI := int64(h.cfg.NumBins)
	if float64(thrI) == thrSq1 && nI < 1<<11 && thrI < 1<<11 && h.total < fastSizeLimit {
		return nI*h.sumSq < thrI*h.total*h.total
	}
	return fastCVBelow(float64(h.cfg.NumBins), h.sumSq, h.total, thrSq1)
}

// fastCVBelow is the square-free CV test on explicit state: with mean
// T/n and variance S/n - (T/n)^2, CV^2 = n*S/T^2 - 1, so CV < thr iff
// n*S < (1+thr^2)*T^2. thrSq1 is the precomputed 1+thr^2.
func fastCVBelow(nf float64, sumSq, total int64, thrSq1 float64) bool {
	if total == 0 {
		return thrSq1 > 1
	}
	totalF := float64(total)
	return nf*float64(sumSq) < thrSq1*totalF*totalF
}

// walkI is walk with the percentile target supplied as the exact
// rational tN/100 (tN = percentile*total, pre-clamped): the invariant
// compares 100*cum against tN in int64, the infinite-precision form of
// the percentile test. The float path can round (P/100)*total across
// an integer prefix count right at a cursor boundary; resolving those
// ties by exact rational algebra instead is the fast lane's licensed
// relaxation, measured by internal/equiv. No conversions, no calls —
// the entry tests are a handful of register ops per sync.
func (c *cursor) walkI(counts []int64, tN int64) {
	for 100*c.cum < tN {
		c.bin++
		for counts[c.bin] == 0 {
			c.bin++
		}
		c.cum += counts[c.bin]
	}
	for 100*(c.cum-counts[c.bin]) >= tN {
		c.cum -= counts[c.bin]
		c.bin--
		for counts[c.bin] == 0 {
			c.bin--
		}
	}
}

// DecideSeqFast is DecideSeq with the bit-exactness contract relaxed
// (see the file comment for exactly what diverges). It maintains only
// the integer moment sumSq in the observation loop and leaves the
// Welford moments stale; exact readers rebuild them lazily via
// fixWelford.
//
// The common all-rational configuration — integral 1+cv^2, integral
// percentiles, an OOB fraction with at most sixteen fractional bits —
// dispatches to the pure-integer loop; anything else takes the float
// loop. Both are fast-lane kernels with identical divergence
// contracts; the dispatch is per batch, so a given histogram always
// resolves ties the same way.
func (h *Histogram) DecideSeqFast(idles []time.Duration, minObs int64, oobThr, cvThr float64, runs []WindowRun) []WindowRun {
	if len(idles) <= 1 {
		return runs
	}
	thrSq1 := 1 + cvThr*cvThr
	thrI := int64(thrSq1)
	nI := int64(h.cfg.NumBins)
	pHead := int64(h.cfg.HeadPercentile)
	pTail := int64(h.cfg.TailPercentile)
	// oobThr with at most 16 fractional bits (the paper's 0.5, and any
	// percentage with a dyadic fraction) makes oob > oobThr*cnt exact
	// in int64: oobQ*cnt < 2^16 * 2^27 stays far below 2^53, so the
	// float comparison it replaces would not have rounded either — the
	// integer OOB test is equivalent, not a divergence.
	oobQ := oobThr * (1 << 16)
	sizeOK := h.total+int64(len(idles)) < fastSizeLimit
	if sizeOK &&
		float64(thrI) == thrSq1 && nI < 1<<11 && thrI < 1<<11 &&
		float64(pHead) == h.cfg.HeadPercentile &&
		float64(pTail) == h.cfg.TailPercentile &&
		float64(int64(oobQ)) == oobQ && oobQ >= 0 && oobQ <= 1<<16 {
		return h.decideSeqFastInt(idles, minObs, nI, thrI, pHead, pTail, int64(oobQ), runs)
	}
	return h.decideSeqFastFloat(idles, minObs, oobThr, cvThr, runs)
}

// decideSeqFastInt is the all-rational fast kernel: every
// per-observation quantity — the closed-form CV gate, the OOB
// fraction test, the percentile-cursor targets — lives in int64
// registers, with no float conversions anywhere in the loop.
func (h *Histogram) decideSeqFastInt(idles []time.Duration, minObs, nI, thrI, pHead, pTail, oobQ int64, runs []WindowRun) []WindowRun {
	counts := h.counts
	binW := h.cfg.BinWidth
	binIsMinute := binW == time.Minute
	headFrac, tailFrac := h.headFrac, h.tailFrac // cold-path cursor seeding only
	total, oob := h.total, h.oob
	sumSq := h.sumSq
	tsq := total * total
	head, tail := h.head, h.tail
	syncedAt := h.syncedAt
	winHead, winTail := h.winHead, h.winTail
	winPW, winKA := h.winPreWarm, h.winKeepAlive
	winValid := h.winValid
	winGen := int64(0)
	curKey := int64(-1)
	var curCount int32
	var curPW, curKA time.Duration
	var curRegime Regime
	// Incremental cursor margins: with tN = percentile*total, the
	// post-walk invariants are 100*cum >= tN (forward slack mF) and
	// tN - 100*(cum - counts[bin]) > 0 (backward slack mB). Both slacks
	// change by register-width constants per in-bounds observation —
	// tN grows by the percentile, 100*cum by 100 when the observation
	// lands at or below the cursor bin, and cum - counts[bin] only when
	// it lands strictly below — so the steady loop proves "this
	// observation cannot move either cursor, hence cannot change the
	// windows" with one sign test and skips the sync block entirely.
	// The slacks are only trusted (margValid) once the cursors are
	// seeded and total has grown past the sub-half clamp region where
	// tN is pinned at 50 rather than tracking percentile*total.
	var mHf, mHb, mTf, mTb int64
	margValid := false
	clampFree := int64(1) << 62
	if pHead > 0 && pTail > 0 {
		clampFree = (50 + pHead - 1) / pHead
		if cf := (50 + pTail - 1) / pTail; cf > clampFree {
			clampFree = cf
		}
	}
	// The loop is split into a call-free hot section and a cold
	// section: the register allocator spills every value that is live
	// across a call site inside a loop, and with cursorAtN,
	// marginWindows and append reachable from the old single-loop
	// body, the whole carried state (moments, cursors, slacks) lived
	// on the stack — two dozen stack accesses per observation dwarfed
	// the arithmetic. The hot loop below contains no calls at all, so
	// the carried state stays in registers; it breaks out on the rare
	// events that need one — a run-key change (append) or a cursor
	// sync (walk/memoization) — and the cold section resolves the
	// already-observed idle before re-entering.
	const keyNeedSync = int64(-2)
	n := len(idles)
	i := 1
	for i < n {
		var key int64
		for ; i < n; i++ {
			it := idles[i]
			// Branchless observe: ORing the idle's sign into idx makes
			// any negative idle map to a negative idx, so one unsigned
			// bounds test routes both OOB cases; the sign bit of
			// idx-bin-1 bumps the cursor prefix counts without
			// data-dependent branches.
			var idx int
			if binIsMinute {
				idx = int(it/time.Minute) | int(it>>63)
			} else {
				idx = int(it/binW) | int(it>>63)
			}
			if uint(idx) >= uint(len(counts)) {
				oob++
			} else {
				c := counts[idx]
				counts[idx] = c + 1
				total++
				tsq += total<<1 - 1
				sumSq += 2*c + 1
				leH := int64(idx-head.bin-1) >> 63 // -1 iff idx <= head.bin
				leT := int64(idx-tail.bin-1) >> 63
				head.cum -= leH
				tail.cum -= leT
				mHf += (100 & leH) - pHead
				mTf += (100 & leT) - pTail
				mHb += pHead - (100 & (int64(idx-head.bin) >> 63))
				mTb += pTail - (100 & (int64(idx-tail.bin) >> 63))
			}
			// Regime selection, same ordering as DecideSeq. The CV test
			// is evaluated eagerly (it is two multiplies); when
			// total == 0 it reads "not above", and the total != 0 term
			// keeps the RegimeStandard outcome of the exact chain's
			// explicit total == 0 arm.
			cnt := total + oob
			key = fastKeyStd
			if cnt >= minObs && oob != 0 && oob<<16 > oobQ*cnt {
				key = fastKeyOOB
			} else if cnt >= minObs && nI*sumSq >= thrI*tsq && total != 0 {
				// All four slacks non-negative (backward ones strictly
				// positive) proves both walks are no-ops and the
				// memoized windows current; ORing propagates any
				// violated sign bit.
				if margValid && (mHf|(mHb-1)|mTf|(mTb-1)) >= 0 {
					key = 2 + winGen
				} else {
					key = keyNeedSync
				}
			}
			if key != curKey {
				break
			}
			curCount++
		}
		if i >= n {
			break
		}
		// Cold section. Observation i is already folded into the
		// histogram state; resolve its run key — syncing the cursors
		// and re-memoizing the windows if the hot loop flagged it —
		// then extend or restart the current run.
		if key == keyNeedSync {
			if syncedAt != total {
				syncedAt = total
				if head.bin < 0 {
					head = cursorAtN(counts, headFrac, total)
					tail = cursorAtN(counts, tailFrac, total)
				} else {
					// effTarget's sub-half clamp in rational form:
					// target < 0.5 iff percentile*total < 50.
					tH := pHead * total
					if tH < 50 {
						tH = 50
					}
					tT := pTail * total
					if tT < 50 {
						tT = 50
					}
					head.walkI(counts, tH)
					tail.walkI(counts, tT)
				}
			}
			if !winValid || winHead != head.bin || winTail != tail.bin {
				pw, ka := marginWindows(h.cfg, head.bin, tail.bin)
				// Bump the run key only when the window values change:
				// distinct cursor bins can margin-round to identical
				// windows, which the exact kernel's value compare
				// merges into one run.
				if !winValid || pw != winPW || ka != winKA {
					winGen++
				}
				winHead, winTail = head.bin, tail.bin
				winPW, winKA = pw, ka
				winValid = true
			}
			if total >= clampFree && head.bin >= 0 {
				tH, tT := pHead*total, pTail*total
				mHf = 100*head.cum - tH
				mHb = tH - 100*(head.cum-counts[head.bin])
				mTf = 100*tail.cum - tT
				mTb = tT - 100*(tail.cum-counts[tail.bin])
				margValid = true
			}
			key = 2 + winGen
		}
		if key == curKey {
			curCount++
		} else {
			if curCount > 0 {
				runs = append(runs, WindowRun{PreWarm: curPW, KeepAlive: curKA, Regime: curRegime, Count: curCount})
			}
			curKey, curCount = key, 1
			switch key {
			case fastKeyOOB:
				curRegime, curPW, curKA = RegimeOOB, 0, 0
			case fastKeyStd:
				curRegime, curPW, curKA = RegimeStandard, 0, 0
			default:
				curRegime, curPW, curKA = RegimeWindows, winPW, winKA
			}
		}
		i++
	}
	runs = append(runs, WindowRun{PreWarm: curPW, KeepAlive: curKA, Regime: curRegime, Count: curCount})

	// Spill the carried state back into the histogram. The Welford
	// moments were not maintained; mark them stale for exact readers.
	h.total, h.oob = total, oob
	h.sumSq = sumSq
	h.cvStale = true
	h.head, h.tail = head, tail
	h.syncedAt = syncedAt
	h.winHead, h.winTail = winHead, winTail
	h.winPreWarm, h.winKeepAlive = winPW, winKA
	h.winValid = winValid
	return runs
}

// decideSeqFastFloat is the fast kernel for configurations whose
// thresholds are not exactly representable as small rationals: the
// closed-form CV gate and the OOB test stay in float64, and the
// percentile-cursor targets are accumulated incrementally (target +=
// frac per in-bounds observation) instead of re-derived as frac*total
// at each sync — the reassociation the exact path forfeits; the
// re-derivation is algebraically redundant since the target changes
// by exactly frac per observation.
func (h *Histogram) decideSeqFastFloat(idles []time.Duration, minObs int64, oobThr, cvThr float64, runs []WindowRun) []WindowRun {
	counts := h.counts
	binW := h.cfg.BinWidth
	binIsMinute := binW == time.Minute
	nf := float64(h.cfg.NumBins)
	thrSq1 := 1 + cvThr*cvThr
	headFrac, tailFrac := h.headFrac, h.tailFrac
	total, oob := h.total, h.oob
	totalF := float64(total)
	sumSq := h.sumSq
	head, tail := h.head, h.tail
	syncedAt := h.syncedAt
	headTarget := headFrac * totalF
	tailTarget := tailFrac * totalF
	winHead, winTail := h.winHead, h.winTail
	winPW, winKA := h.winPreWarm, h.winKeepAlive
	winValid := h.winValid
	winGen := int64(0)
	curKey := int64(-1)
	var curCount int32
	var curPW, curKA time.Duration
	var curRegime Regime
	for _, it := range idles[1:] {
		// Branchless observe, as in decideSeqFastInt.
		var idx int
		if binIsMinute {
			idx = int(it/time.Minute) | int(it>>63)
		} else {
			idx = int(it/binW) | int(it>>63)
		}
		if uint(idx) >= uint(len(counts)) {
			oob++
		} else {
			c := counts[idx]
			counts[idx] = c + 1
			total++
			totalF++
			sumSq += 2*c + 1
			headTarget += headFrac
			tailTarget += tailFrac
			head.cum -= int64(idx-head.bin-1) >> 63
			tail.cum -= int64(idx-tail.bin-1) >> 63
		}
		// Regime selection, same ordering as DecideSeq; the square-free
		// CV comparison reads "not above" when total == 0, so the
		// total != 0 term keeps the exact chain's RegimeStandard
		// outcome there.
		cnt := total + oob
		key := int64(fastKeyStd)
		if cnt >= minObs && oob != 0 && float64(oob) > oobThr*float64(cnt) {
			key = fastKeyOOB
		} else if cnt >= minObs && nf*float64(sumSq) >= thrSq1*totalF*totalF && total != 0 {
			if syncedAt != total {
				syncedAt = total
				if head.bin < 0 {
					head = cursorAtN(counts, headFrac, total)
					tail = cursorAtN(counts, tailFrac, total)
				} else {
					head.walkF(counts, headTarget)
					tail.walkF(counts, tailTarget)
				}
			}
			if !winValid || winHead != head.bin || winTail != tail.bin {
				pw, ka := marginWindows(h.cfg, head.bin, tail.bin)
				if !winValid || pw != winPW || ka != winKA {
					winGen++
				}
				winHead, winTail = head.bin, tail.bin
				winPW, winKA = pw, ka
				winValid = true
			}
			key = 2 + winGen
		}
		if key == curKey {
			curCount++
		} else {
			if curCount > 0 {
				runs = append(runs, WindowRun{PreWarm: curPW, KeepAlive: curKA, Regime: curRegime, Count: curCount})
			}
			curKey, curCount = key, 1
			switch key {
			case fastKeyOOB:
				curRegime, curPW, curKA = RegimeOOB, 0, 0
			case fastKeyStd:
				curRegime, curPW, curKA = RegimeStandard, 0, 0
			default:
				curRegime, curPW, curKA = RegimeWindows, winPW, winKA
			}
		}
	}
	runs = append(runs, WindowRun{PreWarm: curPW, KeepAlive: curKA, Regime: curRegime, Count: curCount})

	h.total, h.oob = total, oob
	h.sumSq = sumSq
	h.cvStale = true
	h.head, h.tail = head, tail
	h.syncedAt = syncedAt
	h.winHead, h.winTail = winHead, winTail
	h.winPreWarm, h.winKeepAlive = winPW, winKA
	h.winValid = winValid
	return runs
}
