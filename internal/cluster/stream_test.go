package cluster

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/policy"
	"repro/internal/trace"
)

// uniformTrace builds a synthetic trace of identical apps (one
// function, an invocation every 90 s over two hours), so every app's
// walk pins the same number of bytes and walk-memory peaks compare
// cleanly across app counts.
func uniformTrace(apps int) *trace.Trace {
	tr := &trace.Trace{Duration: 2 * time.Hour}
	horizon := tr.Duration.Seconds()
	for a := 0; a < apps; a++ {
		var times []float64
		for t := 0.0; t < horizon; t += 90 {
			times = append(times, t)
		}
		fn := &trace.Function{
			ID:          fmt.Sprintf("f%06d", a),
			Trigger:     trace.TriggerHTTP,
			Invocations: times,
			ExecStats:   trace.ExecStats{AvgSeconds: 1.5, Count: 1},
		}
		tr.Apps = append(tr.Apps, &trace.App{
			ID: fmt.Sprintf("a%06d", a), Owner: "o", MemoryMB: 128,
			Functions: []*trace.Function{fn},
		})
	}
	return tr
}

// walkPeakFor runs the engine and reports the peak bytes of live
// decision walks.
func walkPeakFor(t *testing.T, apps, nodes int, global bool) int64 {
	t.Helper()
	// One worker makes the peak deterministic: the sharded path then
	// holds exactly one node's walks at a time, so the measurement is
	// the contract itself rather than a scheduling-dependent snapshot
	// of how many workers happened to overlap (with W workers the
	// legitimate peak floats anywhere between 1 and W+1 nodes' worth).
	cfg := Config{Nodes: nodes, NodeMemMB: 4096, UseExecTime: true, Workers: 1, forceGlobal: global}
	e, err := runEngine(context.Background(), uniformTrace(apps),
		policy.NewHybrid(policy.DefaultHybridConfig()), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if live := e.walkLive.Load(); !global && live != 0 {
		t.Fatalf("sharded run left %d walk bytes live after completion", live)
	}
	return e.walkPeak.Load()
}

// TestStreamingWalkMemory pins the streaming-precompute contract: on
// the sharded path, peak live walk memory is constant in total app
// count at fixed per-node density (walks are produced and released per
// node, O(workers × apps-per-node) live at once), while the global
// path — which must hold every walk — grows linearly. A regression
// that re-materializes all walks up front turns the 4× run's peak into
// ~4× the 1× run's and fails the bound.
func TestStreamingWalkMemory(t *testing.T) {
	const appsPerNode = 50
	small := walkPeakFor(t, 400, 400/appsPerNode, false)
	big := walkPeakFor(t, 1600, 1600/appsPerNode, false)
	if small == 0 || big == 0 {
		t.Fatal("walk accounting recorded no bytes; the test is vacuous")
	}
	// With one worker the peak is exactly the fullest node's walks —
	// constant in total app count up to hash-placement skew (measured:
	// 51 vs 54 apps on the fullest node here). 2x headroom covers any
	// plausible skew; a re-materialize-everything regression shows up
	// as the full 4x.
	if big > 2*small {
		t.Errorf("sharded walk peak grew with app count: %d bytes at 400 apps, %d at 1600 (want <= 2x: one node's walks live at a time)", small, big)
	}

	// Sensitivity check: the same measurement on the global path must
	// see the O(apps) materialization, or the bound above proves
	// nothing.
	gSmall := walkPeakFor(t, 400, 400/appsPerNode, true)
	gBig := walkPeakFor(t, 1600, 1600/appsPerNode, true)
	if gBig < 3*gSmall {
		t.Errorf("global walk peak not O(apps): %d bytes at 400 apps, %d at 1600 — accounting broken?", gSmall, gBig)
	}
}
