package cluster

import (
	"testing"
	"time"

	"repro/internal/policy"
	"repro/internal/trace"
)

// scriptPolicy replays a fixed per-app decision script (one Decision
// per invocation, in order), giving tests precise control over windows
// — pre-warm gaps, keep-alives, expiry alignments — that the real
// policies only produce on contrived traces.
type scriptPolicy struct {
	decisions map[string][]policy.Decision
}

func (p scriptPolicy) Name() string { return "script" }

func (p scriptPolicy) NewApp(id string) policy.AppPolicy {
	return &scriptApp{ds: p.decisions[id]}
}

type scriptApp struct {
	ds []policy.Decision
	i  int
}

func (a *scriptApp) NextWindows(idle time.Duration, first bool) policy.Decision {
	d := a.ds[a.i] // out of range = test bug: script shorter than trace
	a.i++
	return d
}

// fn builds a one-function app with the given exec time.
func fn(id string, memMB, execSeconds float64, times ...float64) *trace.App {
	return &trace.App{ID: id, MemoryMB: memMB, Functions: []*trace.Function{
		{ID: id + "-f", Invocations: times, ExecStats: trace.ExecStats{AvgSeconds: execSeconds}},
	}}
}

// TestEvictionSkipsExecutingContainer: a container mid-execution is
// never a victim, even when it is the closest to expiry — pressure
// falls through to the next-soonest idle container.
//
// Layout (node cap 250 MB, exec times on): app x (100 MB) executes
// from t=0 to t=400 under a pre-warm window that unloads at the
// execution end, so at t=100 it is the soonest-to-expire resident
// container (unloadAt 400) but is executing. App y (100 MB, idle,
// unloadAt 10010) must be evicted instead when app z (100 MB) loads.
func TestEvictionSkipsExecutingContainer(t *testing.T) {
	tr := &trace.Trace{Duration: 500 * time.Second, Apps: []*trace.App{
		fn("x", 100, 400, 0),
		fn("y", 100, 0, 10),
		fn("z", 100, 0, 100),
	}}
	pol := scriptPolicy{decisions: map[string][]policy.Decision{
		"x": {{PreWarm: 2000 * time.Second, KeepAlive: 600 * time.Second}},
		"y": {{KeepAlive: 10000 * time.Second}},
		"z": {{KeepAlive: 60 * time.Second}},
	}}
	res := Simulate(tr, pol, Config{Nodes: 1, NodeMemMB: 250, UseExecTime: true})
	x, y, z := res.Apps[0], res.Apps[1], res.Apps[2]
	if x.Evictions != 0 {
		t.Errorf("executing app x evicted %d times, want 0", x.Evictions)
	}
	if y.Evictions != 1 {
		t.Errorf("idle app y evicted %d times, want 1", y.Evictions)
	}
	// y was loaded at t=10 and reclaimed at t=100: 90 s of truncated
	// idle waste, and nothing more (its window died with the eviction).
	if y.WastedSeconds != 90 {
		t.Errorf("app y wasted %v s, want 90", y.WastedSeconds)
	}
	if z.ColdStarts != 1 || res.NodeStats[0].Evictions != 1 || res.NodeStats[0].FailedLoads != 0 {
		t.Errorf("z cold=%d node evictions=%d failedLoads=%d, want 1/1/0",
			z.ColdStarts, res.NodeStats[0].Evictions, res.NodeStats[0].FailedLoads)
	}
}

// TestEvictionAtExecEndBoundary pins the execEnd == t boundary: a
// container whose execution ends exactly at the pressuring load's time
// is idle, hence evictable — and with the soonest expiry it is chosen
// over a later-expiring idle container. An exclusive comparison
// (execEnd >= t) would evict y instead.
func TestEvictionAtExecEndBoundary(t *testing.T) {
	tr := &trace.Trace{Duration: 2000 * time.Second, Apps: []*trace.App{
		fn("x", 100, 100, 0),
		fn("y", 100, 0, 50),
		fn("z", 100, 0, 100),
	}}
	pol := scriptPolicy{decisions: map[string][]policy.Decision{
		"x": {{KeepAlive: 500 * time.Second}},  // unloads at 100+500=600
		"y": {{KeepAlive: 1000 * time.Second}}, // unloads at 50+1000=1050
		"z": {{KeepAlive: 60 * time.Second}},
	}}
	res := Simulate(tr, pol, Config{Nodes: 1, NodeMemMB: 200, UseExecTime: true})
	x, y := res.Apps[0], res.Apps[1]
	if x.Evictions != 1 || y.Evictions != 0 {
		t.Errorf("evictions x=%d y=%d, want 1/0 (x idle exactly at its exec end)", x.Evictions, y.Evictions)
	}
	// x's idle-loaded segment starts at its execution end (t=100) and
	// the eviction happens at the same instant: execution time is not
	// waste, so the truncated window books exactly zero.
	if x.WastedSeconds != 0 {
		t.Errorf("app x wasted %v s, want 0", x.WastedSeconds)
	}
}

// TestEvictionAtExpiryInstant pins the truncation algebra at the exact
// expiry tie: an invocation at t equal to the victim's unloadAt
// processes before the expiry event (expiries run last at equal
// times), so the eviction books the full keep-alive — the same waste a
// natural expiry would have booked — exactly once, and the stale
// unload event is discarded without double-booking.
func TestEvictionAtExpiryInstant(t *testing.T) {
	tr := &trace.Trace{Duration: 1000 * time.Second, Apps: []*trace.App{
		fn("x", 100, 0, 0),
		fn("y", 150, 0, 100),
	}}
	script := func() scriptPolicy {
		return scriptPolicy{decisions: map[string][]policy.Decision{
			"x": {{KeepAlive: 100 * time.Second}}, // expires exactly at y's arrival
			"y": {{KeepAlive: 50 * time.Second}},
		}}
	}
	res := Simulate(tr, script(), Config{Nodes: 1, NodeMemMB: 200})
	x := res.Apps[0]
	if x.Evictions != 1 {
		t.Fatalf("app x evictions %d, want 1 (evicted at its expiry instant)", x.Evictions)
	}
	if x.WastedSeconds != 100 {
		t.Errorf("app x wasted %v s, want exactly the 100 s keep-alive (no double booking)", x.WastedSeconds)
	}
	// The natural expiry on an unconstrained cluster books the same
	// waste: eviction at the expiry instant truncates nothing.
	inf := Simulate(tr, script(), Config{Nodes: 1, NodeMemMB: 0})
	if inf.Apps[0].Evictions != 0 {
		t.Fatalf("infinite run evicted")
	}
	if inf.Apps[0].WastedSeconds != x.WastedSeconds {
		t.Errorf("eviction-at-expiry waste %v differs from natural expiry %v",
			x.WastedSeconds, inf.Apps[0].WastedSeconds)
	}
}
