package cluster

import (
	"context"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"unsafe"

	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/sim/kernel"
	"repro/internal/trace"
)

// appWalk is an app's precomputed decision walk (the shared kernel's
// output): invocation times, exec times, and RLE decisions.
type appWalk struct {
	times []float64
	execs []float64 // nil without exec times
	runs  []policy.DecisionRun
}

// bytes is the heap footprint the walk's owned slices pin: the run and
// exec copies. times alias the trace's memoized merge — trace memory,
// which exists either way, not walk memory.
func (w *appWalk) bytes() int64 {
	return int64(cap(w.execs))*8 + int64(cap(w.runs))*int64(unsafe.Sizeof(policy.DecisionRun{}))
}

// appState is one app's runtime state on the timeline. Exactly one
// shard ever touches an app's state (the shard driving its node), so
// the sharded path needs no synchronization around it.
type appState struct {
	walk    *appWalk // live while the app's node is running (see produceWalk)
	cur     kernel.RunCursor
	res     AppResult
	memMB   float64
	prevEnd float64 // end of the last execution
	execEnd float64 // container unevictable before this
	inv     int     // next invocation index
	node    int32
	gen     uint32 // current window generation (event invalidation)
	vix     uint32 // version of the latest victim-index entry
	// Current window residency.
	resident bool
	dead     bool // evicted or load-failed: cold next arrival
	// deadByFail marks dead windows killed by a node failure or drain
	// (vs eviction/pressure): it selects the cold-start attribution
	// class at the next arrival. Meaningless while !dead.
	deadByFail bool
	loadedAt   float64 // start of the idle-loaded segment
	unloadAt   float64 // scheduled expiry (+Inf for forever)
	placed     bool
}

// nodeState is one node's runtime state: resident accounting, the
// victim index, and the published stats.
type nodeState struct {
	residentMB  float64
	lastT       float64
	capMB       float64       // live capacity (+Inf when infinite; resize events mutate)
	down        bool          // failed or drained out of service
	residentCnt int           // containers resident now (finite runs)
	victims     []victimEntry // min-heap on (unloadAt, app), lazily invalidated
	stats       NodeStats
}

// engine is one cluster simulation in flight: the resolved
// configuration and the app/node state the shards operate on. The
// engine itself holds no event ordering — that lives in the shards.
type engine struct {
	cfg     Config
	capMB   float64 // +Inf when infinite
	finite  bool    // victim index maintained only under pressure
	horizon float64
	place   Placement
	tr      *trace.Trace
	pol     policy.Policy
	states  []appState
	nodes   []nodeState

	// Streaming-precompute accounting: bytes of decision walks
	// currently materialized and the peak across the run. On the
	// sharded path walks are produced per node just in time, so the
	// peak is O(workers × apps-per-node) — constant in total app count
	// at fixed per-node density (pinned by TestStreamingWalkMemory).
	walkLive atomic.Int64
	walkPeak atomic.Int64
}

func simulate(ctx context.Context, tr *trace.Trace, pol policy.Policy, cfg Config) (*Result, error) {
	e, err := runEngine(ctx, tr, pol, cfg)
	if err != nil {
		return nil, err
	}
	return e.finish(pol.Name()), nil
}

// runEngine validates the configuration and drives the simulation to
// the horizon, returning the engine with its final state (the tests
// probing internals — walk-memory peaks — call it directly).
func runEngine(ctx context.Context, tr *trace.Trace, pol policy.Policy, cfg Config) (*engine, error) {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 1
	}
	if cfg.Placement == nil {
		cfg.Placement = HashPlacement{}
	}
	if cfg.DefaultAppMemMB <= 0 {
		cfg.DefaultAppMemMB = trace.DefaultAppMemoryMB
	}
	capMB := cfg.NodeMemMB
	if capMB <= 0 {
		capMB = math.Inf(1)
	}
	if err := validateEvents(cfg.Events, cfg.Nodes); err != nil {
		return nil, err
	}
	// The victim index is maintained whenever any node can come under
	// pressure — including an initially-infinite cluster a resize
	// event later makes finite.
	finite := !math.IsInf(capMB, 1)
	for _, ev := range cfg.Events {
		if ev.Kind == EventResize && ev.MemMB > 0 {
			finite = true
		}
	}

	e := &engine{
		cfg:     cfg,
		capMB:   capMB,
		finite:  finite,
		horizon: tr.Duration.Seconds(),
		place:   cfg.Placement,
		tr:      tr,
		pol:     pol,
	}
	e.initStates(tr)
	var err error
	if e.sharded() {
		err = e.runSharded(ctx)
	} else {
		if err = e.precomputeAll(ctx); err != nil {
			return nil, err
		}
		err = e.runGlobal(ctx)
	}
	if err != nil {
		return nil, err
	}
	return e, nil
}

// sharded reports whether the run takes the per-node parallel path:
// the placement must be oblivious (pre-assignable without observing
// live residency), no cluster events may be configured (displacement
// re-placement couples nodes at event time), and the reference global
// path not forced.
func (e *engine) sharded() bool {
	if e.cfg.forceGlobal || len(e.cfg.Events) > 0 {
		return false
	}
	o, ok := e.place.(Oblivious)
	return ok && o.Oblivious()
}

// workerCount resolves Config.Workers against an upper bound.
func (e *engine) workerCount(limit int) int {
	w := e.cfg.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > limit {
		w = limit
	}
	return w
}

// produceWalk runs the shared kernel over one app into wk and wires it
// to the app's state: idle times, batch decisions (released back to
// the policy pool), and exec times, copied out of the worker-local
// scratch. Both paths call exactly this per app — a walk depends only
// on the app and the policy, never on when or where it is produced, so
// just-in-time production is bit-identical to the old up-front
// materialization.
func (e *engine) produceWalk(ai int32, sc *kernel.Scratch, wk *appWalk) {
	app := e.tr.Apps[ai]
	times := app.InvocationTimes()
	*wk = appWalk{times: times}
	if len(times) > 0 {
		if e.cfg.UseExecTime {
			wk.execs = append([]float64(nil), sc.ExecSeconds(app)...)
		}
		ap := e.pol.NewApp(app.ID)
		idles := sc.IdleTimes(times, wk.execs)
		wk.runs = append([]policy.DecisionRun(nil), sc.DecideRuns(ap, idles)...)
		if rel, ok := ap.(policy.Releasable); ok {
			rel.Release()
		}
	}
	st := &e.states[ai]
	st.walk = wk
	st.cur.Reset(wk.runs)
	if b := wk.bytes(); b > 0 {
		live := e.walkLive.Add(b)
		for {
			p := e.walkPeak.Load()
			if live <= p || e.walkPeak.CompareAndSwap(p, live) {
				break
			}
		}
	}
}

// releaseWalks drops a completed node's walks: the cursors keep their
// final decision (finish books trailing windows from the value fields
// alone), the run and exec copies go back to the collector.
func (e *engine) releaseWalks(apps []int32) {
	var freed int64
	for _, ai := range apps {
		st := &e.states[ai]
		if st.walk == nil {
			continue
		}
		freed += st.walk.bytes()
		st.walk = nil
		st.cur.ReleaseRuns()
	}
	e.walkLive.Add(-freed)
}

// precomputeAll materializes every walk up front — the global path's
// requirement: one sequential shard interleaves all apps, so no walk
// can be released before the end of the run.
func (e *engine) precomputeAll(ctx context.Context) error {
	n := len(e.tr.Apps)
	if n == 0 {
		return ctx.Err()
	}
	walks := make([]appWalk, n)
	workers := e.workerCount(n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sc kernel.Scratch
			for {
				if ctx.Err() != nil {
					return
				}
				i := int(next.Add(1) - 1)
				if i >= n {
					return
				}
				e.produceWalk(int32(i), &sc, &walks[i])
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}

// initStates builds the runtime state: per-app states, per-node
// accounting, and the offline placement preparation. Walks are not
// touched — invocation counts come straight from the trace.
func (e *engine) initStates(tr *trace.Trace) {
	n := len(tr.Apps)
	e.states = make([]appState, n)
	var fps []Footprint
	if _, ok := e.place.(TracePreparer); ok {
		fps = make([]Footprint, 0, n)
	}
	for i, app := range tr.Apps {
		st := &e.states[i]
		st.memMB = app.MemoryMB
		if st.memMB <= 0 {
			st.memMB = e.cfg.DefaultAppMemMB
		}
		st.node = -1
		st.res = AppResult{
			AppResult: sim.AppResult{AppID: app.ID, Invocations: app.TotalInvocations()},
			Node:      -1,
			MemoryMB:  st.memMB,
		}
		if fps != nil {
			fps = append(fps, Footprint{ID: app.ID, MemMB: st.memMB, Invocations: st.res.Invocations})
		}
	}
	if fps != nil {
		e.place.(TracePreparer).Prepare(fps, e.cfg.Nodes, e.capMB)
	}

	minutes := int(math.Ceil(e.horizon / 60))
	if minutes < 1 && e.horizon > 0 {
		minutes = 1
	}
	e.nodes = make([]nodeState, e.cfg.Nodes)
	for i := range e.nodes {
		e.nodes[i].capMB = e.capMB
		e.nodes[i].stats.UtilSeries = make([]float64, minutes)
	}
}

// preassign places every app with invocations before the run
// (oblivious path only). Place sees the static cluster shape but not
// live residency — the static view's ResidentMB panics, enforcing the
// Oblivious contract on custom placements. Apps with no invocations
// never load and keep Node == -1, exactly as on the lazy global path.
func (e *engine) preassign() {
	view := staticView{nodes: len(e.nodes), capMB: e.capMB}
	for ai := range e.states {
		st := &e.states[ai]
		if st.res.Invocations == 0 {
			continue
		}
		node := e.place.Place(Footprint{ID: st.res.AppID, MemMB: st.memMB, Invocations: st.res.Invocations}, view)
		if node < 0 || node >= len(e.nodes) {
			panic("cluster: placement returned node out of range")
		}
		st.placed = true
		st.node = int32(node)
		st.res.Node = node
	}
}

// runGlobal drives every node on one sequential shard holding the
// whole merged invocation stream — the only schedule under which a
// view-dependent placement's residency reads are well-defined.
func (e *engine) runGlobal(ctx context.Context) error {
	total := 0
	for ai := range e.states {
		total += len(e.states[ai].walk.times)
	}
	sh := shard{e: e, invs: make([]inv, 0, total)}
	for ai := range e.states {
		for _, t := range e.states[ai].walk.times {
			sh.invs = append(sh.invs, inv{t: t, app: int32(ai)})
		}
	}
	sortInvs(sh.invs)
	// Timed cluster events enter the queue up front; cevent.app carries
	// the event's Config.Events index, so equal-time events pop in
	// spec order. Events past the horizon cannot be observed.
	for idx, ev := range e.cfg.Events {
		if ev.At <= e.horizon {
			sh.pushEvent(cevent{t: ev.At, kind: evCluster, app: int32(idx)})
		}
	}
	return sh.timeline(ctx)
}

// runSharded is the oblivious-placement fast path: every app is
// pre-assigned and each node's timeline runs to completion
// independently, workerCount at a time. Walks are produced per node
// just in time — a worker computes its current node's walks, buckets
// and sorts that node's invocation stream, replays the timeline, and
// releases the walks before stealing the next node. Only
// O(workers × apps-per-node) walks are ever live, instead of O(apps);
// everything else (assignment, per-app results) stays O(apps) scalars.
// Node timelines share no mutable state (all cluster coupling is
// per-node), so the results are bit-identical to runGlobal for any
// worker count.
func (e *engine) runSharded(ctx context.Context) error {
	e.preassign()
	counts := make([]int, len(e.nodes))
	for ai := range e.states {
		if st := &e.states[ai]; st.placed {
			counts[st.node]++
		}
	}
	appsByNode := make([][]int32, len(e.nodes))
	for n, c := range counts {
		appsByNode[n] = make([]int32, 0, c)
	}
	for ai := range e.states {
		if st := &e.states[ai]; st.placed {
			appsByNode[st.node] = append(appsByNode[st.node], int32(ai))
		}
	}

	workers := e.workerCount(len(e.nodes))
	if workers <= 0 {
		return ctx.Err()
	}
	var next atomic.Int64
	errs := make([]error, len(e.nodes))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sc kernel.Scratch
			var walks []appWalk
			sh := shard{e: e}
			for {
				n := int(next.Add(1) - 1)
				if n >= len(e.nodes) {
					return
				}
				if err := ctx.Err(); err != nil {
					errs[n] = err
					continue
				}
				apps := appsByNode[n]
				if cap(walks) < len(apps) {
					walks = make([]appWalk, len(apps))
				}
				walks = walks[:len(apps)]
				total := 0
				for wi, ai := range apps {
					e.produceWalk(ai, &sc, &walks[wi])
					total += len(walks[wi].times)
				}
				sh.invs = sh.invs[:0]
				if cap(sh.invs) < total {
					sh.invs = make([]inv, 0, total)
				}
				for wi, ai := range apps {
					for _, t := range walks[wi].times {
						sh.invs = append(sh.invs, inv{t: t, app: ai})
					}
				}
				sortInvs(sh.invs)
				sh.reset()
				errs[n] = sh.timeline(ctx)
				e.releaseWalks(apps)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// finish books trailing windows, flushes node integrals to the
// horizon, and assembles the Result.
func (e *engine) finish(polName string) *Result {
	res := &Result{
		Policy:         polName,
		Placement:      e.place.Name(),
		Nodes:          e.cfg.Nodes,
		NodeMemMB:      e.cfg.NodeMemMB,
		HorizonSeconds: e.horizon,
		Apps:           make([]AppResult, len(e.states)),
		NodeStats:      make([]NodeStats, len(e.nodes)),
	}
	if res.NodeMemMB < 0 {
		res.NodeMemMB = 0
	}
	for i := range e.states {
		st := &e.states[i]
		if st.res.Invocations > 0 && !st.dead {
			st.res.WastedSeconds += kernel.TrailingWaste(
				st.cur.D, st.cur.PwSec, st.cur.KaSec, st.prevEnd, e.horizon)
		}
		st.res.WastedMBSeconds = st.res.WastedSeconds * st.memMB
		res.Apps[i] = st.res
	}
	for i := range e.nodes {
		nd := &e.nodes[i]
		nd.advance(e.horizon, e.horizon)
		// Normalize the series from MB·s to mean MB per bin (the last
		// bin may cover less than a minute).
		for b := range nd.stats.UtilSeries {
			width := math.Min(60, e.horizon-float64(b)*60)
			if width > 0 {
				nd.stats.UtilSeries[b] /= width
			}
		}
		res.NodeStats[i] = nd.stats
	}
	return res
}

// View implementation (view-dependent placement decisions observe the
// live engine on the global path).

// NumNodes implements View.
func (e *engine) NumNodes() int { return len(e.nodes) }

// CapacityMB implements View.
func (e *engine) CapacityMB() float64 { return e.capMB }

// ResidentMB implements View.
func (e *engine) ResidentMB(node int) float64 { return e.nodes[node].residentMB }

// Up implements View.
func (e *engine) Up(node int) bool { return !e.nodes[node].down }
