package cluster

import (
	"fmt"
	"math"
	"testing"
	"time"

	"repro/internal/policy"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// requireResultsEqual compares two cluster results bit-exactly: every
// per-app field (floats via Float64bits) and every per-node aggregate
// including the utilization series. This is the contract the sharded
// path must meet against the sequential global path.
func requireResultsEqual(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if got.Policy != want.Policy || got.Placement != want.Placement ||
		got.Nodes != want.Nodes || got.NodeMemMB != want.NodeMemMB ||
		math.Float64bits(got.HorizonSeconds) != math.Float64bits(want.HorizonSeconds) {
		t.Fatalf("%s: header mismatch: got %+v want %+v", label, got, want)
	}
	if len(got.Apps) != len(want.Apps) {
		t.Fatalf("%s: %d apps, want %d", label, len(got.Apps), len(want.Apps))
	}
	mismatches := 0
	for i, w := range want.Apps {
		g := got.Apps[i]
		if g.AppID != w.AppID || g.Invocations != w.Invocations ||
			g.ColdStarts != w.ColdStarts || g.ModeCounts != w.ModeCounts ||
			math.Float64bits(g.WastedSeconds) != math.Float64bits(w.WastedSeconds) ||
			g.Node != w.Node ||
			math.Float64bits(g.MemoryMB) != math.Float64bits(w.MemoryMB) ||
			g.Evictions != w.Evictions ||
			g.EvictionColdStarts != w.EvictionColdStarts ||
			g.FailureColdStarts != w.FailureColdStarts ||
			math.Float64bits(g.WastedMBSeconds) != math.Float64bits(w.WastedMBSeconds) {
			mismatches++
			if mismatches <= 5 {
				t.Errorf("%s app %s: got %+v want %+v", label, w.AppID, g, w)
			}
		}
	}
	if mismatches > 5 {
		t.Errorf("%s: %d further app mismatches suppressed", label, mismatches-5)
	}
	if len(got.NodeStats) != len(want.NodeStats) {
		t.Fatalf("%s: %d nodes, want %d", label, len(got.NodeStats), len(want.NodeStats))
	}
	for n, w := range want.NodeStats {
		g := got.NodeStats[n]
		if g.Evictions != w.Evictions || g.FailedLoads != w.FailedLoads ||
			g.FailureUnloads != w.FailureUnloads ||
			math.Float64bits(g.PeakResidentMB) != math.Float64bits(w.PeakResidentMB) ||
			math.Float64bits(g.ResidentMBSeconds) != math.Float64bits(w.ResidentMBSeconds) {
			t.Errorf("%s node %d: got %+v want %+v", label, n, g, w)
			continue
		}
		if len(g.UtilSeries) != len(w.UtilSeries) {
			t.Errorf("%s node %d: util series length %d want %d", label, n, len(g.UtilSeries), len(w.UtilSeries))
			continue
		}
		for b := range w.UtilSeries {
			if math.Float64bits(g.UtilSeries[b]) != math.Float64bits(w.UtilSeries[b]) {
				t.Errorf("%s node %d minute %d: util %v want %v", label, n, b, g.UtilSeries[b], w.UtilSeries[b])
				break
			}
		}
	}
}

// mustPlacement builds a placement spec or fails the test.
func mustPlacement(t *testing.T, spec string) Placement {
	t.Helper()
	p, err := NewPlacement(spec)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// runBothPaths runs the same scenario on the sequential global
// reference path and on the sharded path at several worker counts,
// requiring bit-identical results. Placements carry per-run state
// (binpack's Prepare), so each run builds its own from the spec.
func runBothPaths(t *testing.T, label string, tr *trace.Trace, pol func() policy.Policy, cfg Config, placeSpec string) *Result {
	t.Helper()
	ref := cfg
	ref.forceGlobal = true
	ref.Placement = mustPlacement(t, placeSpec)
	want := Simulate(tr, pol(), ref)
	for _, workers := range []int{1, 5} {
		par := cfg
		par.Workers = workers
		par.Placement = mustPlacement(t, placeSpec)
		got := Simulate(tr, pol(), par)
		requireResultsEqual(t, fmt.Sprintf("%s/workers=%d", label, workers), got, want)
	}
	return want
}

// TestShardedMatchesGlobalGolden pins the tentpole contract on the
// golden scenario set (the same policies golden_test.go runs against
// the seed): for every oblivious placement and finite-memory layout,
// the per-node parallel timeline must reproduce the sequential global
// timeline bit for bit — per-app attribution, waste bits, node stats
// and utilization series included — at every worker count.
func TestShardedMatchesGlobalGolden(t *testing.T) {
	pop, err := workload.Generate(workload.Config{
		Seed: 7, NumApps: 150, Duration: 36 * time.Hour,
		MaxDailyRate: 800, MaxEventsPerFunction: 4000,
	})
	if err != nil {
		t.Fatal(err)
	}
	smallHist := policy.DefaultHybridConfig()
	smallHist.Histogram.NumBins = 60
	smallHist.DisablePreWarm = true
	tinyHist := policy.DefaultHybridConfig()
	tinyHist.Histogram.NumBins = 10
	pols := []struct {
		name string
		pol  func() policy.Policy
		exec bool
	}{
		{"fixed-10m", func() policy.Policy { return policy.FixedKeepAlive{KeepAlive: 10 * time.Minute} }, false},
		{"no-unloading", func() policy.Policy { return policy.NoUnloading{} }, false},
		{"hybrid-default", func() policy.Policy { return policy.NewHybrid(policy.DefaultHybridConfig()) }, false},
		{"hybrid-exectime", func() policy.Policy { return policy.NewHybrid(policy.DefaultHybridConfig()) }, true},
		{"hybrid-1h-nopw-exectime", func() policy.Policy { return policy.NewHybrid(smallHist) }, true},
		{"hybrid-10m-range", func() policy.Policy { return policy.NewHybrid(tinyHist) }, false},
	}
	layouts := []struct {
		nodes int
		memMB float64
		place string
	}{
		{4, 900, "hash"},
		{3, 600, "hash?seed=3"},
		{4, 900, "binpack"},
		{2, 1500, "binpack?order=invocations"},
		{5, 0, "binpack?order=trace"}, // infinite: the no-pressure degenerate case
	}
	pressured := 0
	for pi, pc := range pols {
		// Rotate two layouts per policy to keep the matrix affordable.
		for off := 0; off < 2; off++ {
			ly := layouts[(pi+off)%len(layouts)]
			cfg := Config{Nodes: ly.nodes, NodeMemMB: ly.memMB, UseExecTime: pc.exec}
			res := runBothPaths(t, pc.name+"/"+ly.place, pop.Trace, pc.pol, cfg, ly.place)
			if res.TotalEvictions() > 0 {
				pressured++
			}
		}
	}
	if pressured == 0 {
		t.Fatal("no scenario showed eviction pressure; the equivalence test is vacuous — tighten the layouts")
	}
}

// TestShardedMatchesGlobalRandomized fuzzes the same contract over
// randomized finite-memory layouts: random workloads, node counts,
// capacities, oblivious placements and exec-time handling.
func TestShardedMatchesGlobalRandomized(t *testing.T) {
	rng := stats.NewRNG(1234)
	places := []string{"hash", "hash?seed=9", "binpack", "binpack?order=invocations", "binpack?order=trace"}
	caps := []float64{250, 400, 700, 1200}
	pressured := 0
	for it := 0; it < 6; it++ {
		pop, err := workload.Generate(workload.Config{
			Seed: uint64(100 + it), NumApps: 50, Duration: 24 * time.Hour,
			MaxDailyRate: 600, MaxEventsPerFunction: 2500,
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes := 1 + int(rng.Float64()*5)
		memMB := caps[int(rng.Float64()*float64(len(caps)))]
		place := places[int(rng.Float64()*float64(len(places)))]
		exec := rng.Float64() < 0.5
		var pol func() policy.Policy
		if rng.Float64() < 0.5 {
			pol = func() policy.Policy { return policy.NewHybrid(policy.DefaultHybridConfig()) }
		} else {
			pol = func() policy.Policy { return policy.FixedKeepAlive{KeepAlive: 20 * time.Minute} }
		}
		cfg := Config{Nodes: nodes, NodeMemMB: memMB, UseExecTime: exec}
		res := runBothPaths(t, place, pop.Trace, pol, cfg, place)
		if res.TotalEvictions() > 0 {
			pressured++
		}
	}
	if pressured == 0 {
		t.Fatal("no randomized layout showed eviction pressure; tighten the capacity choices")
	}
}

// TestViewDependentPlacementStaysSequential: least-loaded reads live
// residency, so it must keep the global path regardless of Workers —
// and the worker count must not change its results.
func TestViewDependentPlacementStaysSequential(t *testing.T) {
	pop, err := workload.Generate(workload.Config{
		Seed: 21, NumApps: 40, Duration: 12 * time.Hour,
		MaxDailyRate: 500, MaxEventsPerFunction: 2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := Placement(LeastLoadedPlacement{}).(Oblivious); ok {
		t.Fatal("least-loaded must not advertise the oblivious contract")
	}
	pol := func() policy.Policy { return policy.NewHybrid(policy.DefaultHybridConfig()) }
	base := Simulate(pop.Trace, pol(), Config{Nodes: 3, NodeMemMB: 500, Placement: LeastLoadedPlacement{}, Workers: 1})
	wide := Simulate(pop.Trace, pol(), Config{Nodes: 3, NodeMemMB: 500, Placement: LeastLoadedPlacement{}, Workers: 8})
	requireResultsEqual(t, "least-loaded", wide, base)
}
