package cluster

import (
	"math"
	"testing"

	"repro/internal/stats"
)

// refQueue is the obviously-correct reference: a plain binary heap
// over eventLess (the structure the wheel replaced).
type refQueue struct{ h []cevent }

func (r *refQueue) push(ev cevent) { heapPush(&r.h, ev) }
func (r *refQueue) pop() cevent {
	ev := r.h[0]
	heapPop(&r.h)
	return ev
}

// TestWheelMatchesReferenceHeap drives the timer wheel and a reference
// heap through identical randomized push/pop schedules and requires
// identical pop sequences. The schedule is adversarial for a wheel:
// times cluster at slot boundaries, pushes land behind the advanced
// position (the timeline's normal pattern — peeks run ahead of the
// invocation stream), and a heavy far-future tail exercises the
// overflow heap and its window-advance cascade.
func TestWheelMatchesReferenceHeap(t *testing.T) {
	rng := stats.NewRNG(42)
	for trial := 0; trial < 50; trial++ {
		var q eventQueue
		var ref refQueue
		// lastPopped tracks the time floor below which new pushes would
		// break queue discipline; the timeline never pushes an event
		// earlier than the event it is currently processing.
		lastPopped := 0.0
		ops := 2000
		for op := 0; op < ops; op++ {
			if q.n != len(ref.h) {
				t.Fatalf("trial %d op %d: size %d, reference %d", trial, op, q.n, len(ref.h))
			}
			doPush := q.n == 0 || rng.Float64() < 0.55
			if doPush {
				var dt float64
				switch r := rng.Float64(); {
				case r < 0.25:
					dt = rng.Float64() * 10 // same or next slot
				case r < 0.5:
					dt = float64(int(rng.Float64()*8)) * wheelSlotSec // exact slot boundaries
				case r < 0.85:
					dt = rng.Float64() * 4 * wheelSlots * wheelSlotSec // level-1 range
				default:
					dt = rng.Float64() * 4 * wheelSlots * wheelSlots * wheelSlotSec // overflow
				}
				ev := cevent{
					t:    lastPopped + dt,
					kind: uint8(1 + int(rng.Float64()*4)), // evReload..evFlush
					app:  int32(rng.Float64() * 64),
					gen:  uint32(op),
				}
				q.push(ev)
				ref.push(ev)
				continue
			}
			got, ok := q.peek()
			if !ok {
				t.Fatalf("trial %d op %d: empty peek with %d pending", trial, op, q.n)
			}
			q.pop()
			want := ref.pop()
			if got != want {
				t.Fatalf("trial %d op %d: popped %+v, reference %+v", trial, op, got, want)
			}
			lastPopped = got.t
		}
		// Drain both completely: every pending event must come out in
		// the exact total order.
		for q.n > 0 {
			got, _ := q.peek()
			q.pop()
			if want := ref.pop(); got != want {
				t.Fatalf("trial %d drain: popped %+v, reference %+v", trial, got, want)
			}
		}
		if len(ref.h) != 0 {
			t.Fatalf("trial %d: reference still holds %d events", trial, len(ref.h))
		}
	}
}

// TestWheelReset verifies a drained-then-reset queue behaves like a
// fresh one (the worker-reuse path), including after an abandoned
// non-empty queue.
func TestWheelReset(t *testing.T) {
	var q eventQueue
	// Leave events stranded in every region, then reset.
	q.push(cevent{t: 5, kind: evUnload, app: 1})
	q.push(cevent{t: 3 * wheelSlotSec, kind: evUnload, app: 2})
	q.push(cevent{t: 3 * wheelSlots * wheelSlotSec, kind: evUnload, app: 3})
	q.push(cevent{t: 2 * wheelSlots * wheelSlots * wheelSlotSec, kind: evUnload, app: 4})
	if _, ok := q.peek(); !ok {
		t.Fatal("peek on non-empty queue failed")
	}
	q.reset()
	if q.n != 0 || q.cnt0 != 0 || q.cnt1 != 0 || len(q.near) != 0 || len(q.over) != 0 {
		t.Fatalf("reset left state behind: %+v", q.n)
	}
	if _, ok := q.peek(); ok {
		t.Fatal("peek on reset queue returned an event")
	}
	// The reset queue must order a fresh schedule correctly from t=0.
	times := []float64{7, 1, wheelSlotSec * 5, 0.5, wheelSlots * wheelSlotSec * 1.5}
	for i, ti := range times {
		q.push(cevent{t: ti, kind: evUnload, app: int32(i)})
	}
	prev := math.Inf(-1)
	for q.n > 0 {
		ev, _ := q.peek()
		q.pop()
		if ev.t < prev {
			t.Fatalf("out of order after reset: %v before %v", prev, ev.t)
		}
		prev = ev.t
	}
}
