package cluster

import "math/bits"

// The shard's container-event queue is a two-level hierarchical timer
// wheel with a near heap in front and a far-future overflow heap
// behind, replacing the plain binary heap: pushes and pops are O(1)
// expected (slot append / bitmap scan) instead of O(log n), which
// matters on the global path and under heavy pressure where thousands
// of reload/expiry events are pending at once.
//
// Layout. Absolute level-0 slot s(t) = floor(t / wheelSlotSec);
// absolute level-1 slot S(t) = s(t) / wheelSlots. The queue tracks a
// position cur (the last level-0 slot drained) and the level-1 slot s1
// whose aligned range [s1·wheelSlots, (s1+1)·wheelSlots) the level-0
// ring currently covers. Every event lives in exactly one place:
//
//   - near heap: s(t) <= cur. The invocation stream runs behind the
//     peeked event time, so pushes may land at or before the drained
//     position — they go to the near heap, never into a slot the scan
//     already passed.
//   - level-0 ring: cur < s(t) < (s1+1)·wheelSlots.
//   - level-1 ring: s1 < S(t) < s1+wheelSlots.
//   - overflow heap: S(t) >= s1+wheelSlots.
//
// The four regions partition time in ascending order (near events are
// strictly earlier than any slot or overflow event), so draining the
// near heap first, then the next occupied level-0 slot, then cascading
// the next occupied level-1 slot, then re-admitting overflow yields
// the exact (t, kind, app) total order the old heap produced — within
// a slot, events reach the near heap and pop in eventLess order. The
// golden and sharded≡global property tests pin that bit for bit;
// wheel_test.go additionally checks the queue against a reference
// heap on adversarial push/pop schedules.
const (
	wheelSlotSec = 64.0 // level-0 slot width, seconds
	wheelSlots   = 256  // slots per level (power of two)
	wheelMask    = wheelSlots - 1
	wheelWords   = wheelSlots / 64
)

// eventQueue is one shard's pending container events. The zero value
// is an empty queue positioned at t = 0.
type eventQueue struct {
	n    int   // total pending events across all regions
	cur  int64 // absolute level-0 slot the wheel has drained through
	s1   int64 // absolute level-1 slot the level-0 ring covers
	cnt0 int
	cnt1 int
	near []cevent // eventLess heap: events at or before the position
	over []cevent // eventLess heap: events beyond the level-1 window
	bm0  [wheelWords]uint64
	bm1  [wheelWords]uint64

	slot0 [wheelSlots][]cevent
	slot1 [wheelSlots][]cevent
}

// push enqueues ev (ev.t must be finite and non-negative — schedule
// never heaps unbounded windows).
func (q *eventQueue) push(ev cevent) {
	q.n++
	s := int64(ev.t / wheelSlotSec)
	if s <= q.cur {
		heapPush(&q.near, ev)
		return
	}
	if s < (q.s1+1)*wheelSlots {
		i := int(s & wheelMask)
		q.slot0[i] = append(q.slot0[i], ev)
		q.bm0[i>>6] |= 1 << uint(i&63)
		q.cnt0++
		return
	}
	if S := s / wheelSlots; S < q.s1+wheelSlots {
		i := int(S & wheelMask)
		q.slot1[i] = append(q.slot1[i], ev)
		q.bm1[i>>6] |= 1 << uint(i&63)
		q.cnt1++
		return
	}
	heapPush(&q.over, ev)
}

// peek returns the earliest pending event without removing it,
// advancing the wheel position until that event sits in the near heap.
func (q *eventQueue) peek() (cevent, bool) {
	if q.n == 0 {
		return cevent{}, false
	}
	if len(q.near) == 0 {
		q.advance()
	}
	return q.near[0], true
}

// pop removes the event the preceding peek returned.
func (q *eventQueue) pop() {
	q.n--
	heapPop(&q.near)
}

// advance moves the position forward until the near heap holds the
// earliest pending event. Caller guarantees q.n > 0.
func (q *eventQueue) advance() {
	for len(q.near) == 0 {
		if q.cnt0 > 0 {
			// Drain the next occupied level-0 slot. Occupied slots are
			// all past the position: pushes at or before it went to the
			// near heap, and drained slots were cleared.
			lo := int(q.cur + 1 - q.s1*wheelSlots)
			i := nextSlot(&q.bm0, lo)
			evs := q.slot0[i]
			q.slot0[i] = evs[:0]
			q.bm0[i>>6] &^= 1 << uint(i&63)
			q.cnt0 -= len(evs)
			q.cur = q.s1*wheelSlots + int64(i)
			for _, ev := range evs {
				heapPush(&q.near, ev)
			}
			continue
		}
		if q.cnt1 > 0 {
			// Cascade the next occupied level-1 slot into the (empty)
			// level-0 ring, which realigns under it.
			start := int((q.s1 + 1) & wheelMask)
			i := nextSlotWrap(&q.bm1, start)
			q.s1 += int64((i-start)&wheelMask) + 1
			q.cur = q.s1*wheelSlots - 1
			evs := q.slot1[i]
			q.slot1[i] = evs[:0]
			q.bm1[i>>6] &^= 1 << uint(i&63)
			q.cnt1 -= len(evs)
			for _, ev := range evs {
				s := int64(ev.t / wheelSlotSec)
				j := int(s & wheelMask)
				q.slot0[j] = append(q.slot0[j], ev)
				q.bm0[j>>6] |= 1 << uint(j&63)
				q.cnt0++
			}
			q.admitOverflow()
			continue
		}
		// Only far-future overflow left: jump the window to its earliest
		// event and re-admit everything the new window covers.
		q.s1 = int64(q.over[0].t/wheelSlotSec) / wheelSlots
		q.cur = q.s1*wheelSlots - 1
		q.admitOverflow()
	}
}

// admitOverflow re-pushes overflow events the advanced level-1 window
// now covers, restoring the invariant that every overflow event is
// later than all wheel content. Called whenever s1 moves.
func (q *eventQueue) admitOverflow() {
	for len(q.over) > 0 && int64(q.over[0].t/wheelSlotSec)/wheelSlots < q.s1+wheelSlots {
		ev := q.over[0]
		heapPop(&q.over)
		q.n--
		q.push(ev)
	}
}

// reset empties the queue and rewinds the position to t = 0, keeping
// slot and heap capacity for the worker's next node.
func (q *eventQueue) reset() {
	if q.n > 0 {
		for i := range q.slot0 {
			q.slot0[i] = q.slot0[i][:0]
			q.slot1[i] = q.slot1[i][:0]
		}
		q.bm0, q.bm1 = [wheelWords]uint64{}, [wheelWords]uint64{}
		q.cnt0, q.cnt1 = 0, 0
		q.n = 0
	}
	q.near, q.over = q.near[:0], q.over[:0]
	q.cur, q.s1 = 0, 0
}

// nextSlot returns the first occupied slot index >= lo. The caller's
// occupancy count guarantees one exists.
func nextSlot(bm *[wheelWords]uint64, lo int) int {
	mask := ^uint64(0) << uint(lo&63)
	for w := lo >> 6; w < wheelWords; w++ {
		if b := bm[w] & mask; b != 0 {
			return w<<6 | bits.TrailingZeros64(b)
		}
		mask = ^uint64(0)
	}
	panic("cluster: event wheel occupancy out of sync")
}

// nextSlotWrap scans cyclically from lo.
func nextSlotWrap(bm *[wheelWords]uint64, lo int) int {
	mask := ^uint64(0) << uint(lo&63)
	for w := lo >> 6; w < wheelWords; w++ {
		if b := bm[w] & mask; b != 0 {
			return w<<6 | bits.TrailingZeros64(b)
		}
		mask = ^uint64(0)
	}
	for w := 0; w <= (lo>>6)&(wheelWords-1); w++ {
		if b := bm[w]; b != 0 {
			return w<<6 | bits.TrailingZeros64(b)
		}
	}
	panic("cluster: event wheel occupancy out of sync")
}

// Binary heaps over eventLess, shared by the near and overflow ends of
// the queue.

func heapPush(h *[]cevent, ev cevent) {
	*h = append(*h, ev)
	hs := *h
	i := len(hs) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !eventLess(hs[i], hs[parent]) {
			break
		}
		hs[i], hs[parent] = hs[parent], hs[i]
		i = parent
	}
}

func heapPop(h *[]cevent) {
	hs := *h
	n := len(hs) - 1
	hs[0] = hs[n]
	*h = hs[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && eventLess(hs[l], hs[small]) {
			small = l
		}
		if r < n && eventLess(hs[r], hs[small]) {
			small = r
		}
		if small == i {
			return
		}
		hs[i], hs[small] = hs[small], hs[i]
		i = small
	}
}
