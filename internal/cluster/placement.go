package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
)

// Placement decides which node hosts an application. The engine calls
// Place once per app, at the app's first container load; the choice is
// sticky for the rest of the run (container images and data locality
// make per-load migration unrealistic, and a sticky choice keeps runs
// deterministic).
type Placement interface {
	// Name returns a short identifier used in reports.
	Name() string
	// Place returns the node index in [0, view.NumNodes()) for app.
	Place(app Footprint, view View) int
}

// Footprint is the placement-relevant summary of one application.
type Footprint struct {
	ID string
	// MemMB is the effective memory charge (after the default for apps
	// with no memory row).
	MemMB float64
	// Invocations is the app's total invocation count.
	Invocations int
}

// View exposes the cluster state a placement decision may consult.
type View interface {
	// NumNodes returns the node count.
	NumNodes() int
	// CapacityMB returns the per-node memory capacity (+Inf when the
	// cluster is infinite).
	CapacityMB() float64
	// ResidentMB returns the memory currently resident on a node.
	ResidentMB(node int) float64
}

// TracePreparer is an optional Placement extension for offline
// policies that assign from the full application set before the run
// (e.g. bin packing). Prepare is called once, before any Place, with
// every app of the trace in trace order.
type TracePreparer interface {
	Prepare(apps []Footprint, nodes int, capacityMB float64)
}

// HashPlacement spreads apps by a stable hash of their ID: stateless,
// coordination-free, and what a consistent-hashing front end degrades
// to. It ignores load, so skewed app sizes skew nodes.
type HashPlacement struct{}

// Name implements Placement.
func (HashPlacement) Name() string { return "hash" }

// Place implements Placement.
func (HashPlacement) Place(app Footprint, view View) int {
	h := fnv.New64a()
	h.Write([]byte(app.ID))
	return int(h.Sum64() % uint64(view.NumNodes()))
}

// LeastLoadedPlacement puts each app, at its first load, on the node
// with the least resident memory at that instant (ties to the lowest
// index) — the greedy online policy of most schedulers.
type LeastLoadedPlacement struct{}

// Name implements Placement.
func (LeastLoadedPlacement) Name() string { return "least-loaded" }

// Place implements Placement.
func (LeastLoadedPlacement) Place(app Footprint, view View) int {
	best, bestMB := 0, view.ResidentMB(0)
	for n := 1; n < view.NumNodes(); n++ {
		if mb := view.ResidentMB(n); mb < bestMB {
			best, bestMB = n, mb
		}
	}
	return best
}

// BinPackPlacement assigns offline by first-fit decreasing: apps
// sorted by memory footprint (largest first) are packed onto the
// first node whose static assignment still fits the capacity; when
// nothing fits, the least-assigned node takes the overflow. It needs
// the whole trace up front (TracePreparer) and models a planner with
// global knowledge — the strongest static baseline against the online
// policies.
type BinPackPlacement struct {
	assign map[string]int
}

// Name implements Placement.
func (*BinPackPlacement) Name() string { return "binpack" }

// Prepare implements TracePreparer.
func (p *BinPackPlacement) Prepare(apps []Footprint, nodes int, capacityMB float64) {
	order := make([]int, len(apps))
	for i := range order {
		order[i] = i
	}
	// Largest-first; ties keep trace order for determinism.
	sort.SliceStable(order, func(a, b int) bool {
		return apps[order[a]].MemMB > apps[order[b]].MemMB
	})
	assigned := make([]float64, nodes)
	p.assign = make(map[string]int, len(apps))
	for _, i := range order {
		app := apps[i]
		node := -1
		for n := 0; n < nodes; n++ {
			if assigned[n]+app.MemMB <= capacityMB {
				node = n
				break
			}
		}
		if node < 0 {
			// Nothing fits statically: spill to the least-assigned node
			// and let runtime eviction arbitrate.
			node = 0
			for n := 1; n < nodes; n++ {
				if assigned[n] < assigned[node] {
					node = n
				}
			}
		}
		assigned[node] += app.MemMB
		p.assign[app.ID] = node
	}
}

// Place implements Placement.
func (p *BinPackPlacement) Place(app Footprint, view View) int {
	if node, ok := p.assign[app.ID]; ok {
		return node
	}
	// Unknown app (not in the prepared trace): fall back to hashing.
	return HashPlacement{}.Place(app, view)
}

// The placement registry mirrors the policy registry: short names so
// binaries and examples configure placements through one path.

var (
	placementMu  sync.RWMutex
	placementReg = map[string]func() Placement{}
)

// RegisterPlacement adds a named placement constructor. Registering a
// duplicate name panics (programming error).
func RegisterPlacement(name string, ctor func() Placement) {
	placementMu.Lock()
	defer placementMu.Unlock()
	if _, dup := placementReg[name]; dup {
		panic(fmt.Sprintf("cluster: RegisterPlacement(%q) called twice", name))
	}
	placementReg[name] = ctor
}

// NewPlacement builds a registered placement by name.
func NewPlacement(name string) (Placement, error) {
	placementMu.RLock()
	ctor, ok := placementReg[name]
	placementMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("cluster: unknown placement %q (registered: %v)", name, PlacementNames())
	}
	return ctor(), nil
}

// PlacementNames returns the registered placement names, sorted.
func PlacementNames() []string {
	placementMu.RLock()
	defer placementMu.RUnlock()
	names := make([]string, 0, len(placementReg))
	for n := range placementReg {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func init() {
	RegisterPlacement("hash", func() Placement { return HashPlacement{} })
	RegisterPlacement("least-loaded", func() Placement { return LeastLoadedPlacement{} })
	RegisterPlacement("binpack", func() Placement { return &BinPackPlacement{} })
}
