package cluster

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"

	"repro/internal/spec"
)

// Placement decides which node hosts an application. The engine calls
// Place once per app, at the app's first container load; the choice is
// sticky for the rest of the run (container images and data locality
// make per-load migration unrealistic, and a sticky choice keeps runs
// deterministic).
type Placement interface {
	// Name returns a short identifier used in reports.
	Name() string
	// Place returns the node index in [0, view.NumNodes()) for app.
	Place(app Footprint, view View) int
}

// Footprint is the placement-relevant summary of one application.
type Footprint struct {
	ID string
	// MemMB is the effective memory charge (after the default for apps
	// with no memory row).
	MemMB float64
	// Invocations is the app's total invocation count.
	Invocations int
}

// View exposes the cluster state a placement decision may consult.
type View interface {
	// NumNodes returns the node count.
	NumNodes() int
	// CapacityMB returns the per-node memory capacity (+Inf when the
	// cluster is infinite).
	CapacityMB() float64
	// ResidentMB returns the memory currently resident on a node.
	ResidentMB(node int) float64
	// Up reports whether a node is in service. Nodes only leave
	// service through timed cluster events (Config.Events); without
	// events every node is always up. A placement returning a down
	// node is corrected to the next in-service node by the engine.
	Up(node int) bool
}

// Replacer is an optional Placement extension consulted when a
// cluster event (fail/drain) displaces an app from its node: Replace
// chooses the surviving node that takes the app over, observing the
// live View. from is the node the app is leaving (already down).
// Return -1 when no node can take the app — it re-tries placement at
// its next load. Placements without the hook fall back to Place with
// the result advanced to the next in-service node.
type Replacer interface {
	Placement
	Replace(app Footprint, from int, view View) int
}

// TracePreparer is an optional Placement extension for offline
// policies that assign from the full application set before the run
// (e.g. bin packing). Prepare is called once, before any Place, with
// every app of the trace in trace order.
type TracePreparer interface {
	Prepare(apps []Footprint, nodes int, capacityMB float64)
}

// Oblivious is an optional Placement extension marking a placement as
// view-oblivious: Place's result depends only on the app's Footprint,
// the static cluster shape (View.NumNodes, View.CapacityMB) and
// whatever Prepare precomputed — never on live residency
// (View.ResidentMB). hash and binpack are oblivious; least-loaded is
// not.
//
// The engine runs oblivious placements on the parallel per-node path:
// every app is pre-assigned before the run, the invocation stream is
// sharded per node, and node timelines execute independently,
// Config.Workers at a time. View-dependent placements keep the
// sequential global timeline — the only schedule under which their
// residency reads are well-defined. Results are bit-identical on both
// paths (property-tested); only the wall clock differs.
//
// A custom RegisterPlacement implementation that reports
// Oblivious() == true must honor the contract: during pre-assignment
// the engine hands Place a View whose ResidentMB panics, so a
// placement that claims obliviousness but reads residency fails loudly
// instead of silently diverging. The wildlint oblivious analyzer
// (internal/lint) additionally proves the contract at compile time for
// in-repo placements: a constant-true Oblivious() whose Place call
// graph reaches View.ResidentMB fails the CI lint job before it can
// panic at runtime.
type Oblivious interface {
	Placement
	// Oblivious reports whether Place never consults View.ResidentMB.
	Oblivious() bool
}

// staticView is the View handed to oblivious placements during
// pre-assignment: the cluster shape is visible, live residency is not.
type staticView struct {
	nodes int
	capMB float64
}

// NumNodes implements View.
func (v staticView) NumNodes() int { return v.nodes }

// CapacityMB implements View.
func (v staticView) CapacityMB() float64 { return v.capMB }

// ResidentMB implements View by enforcing the Oblivious contract.
func (v staticView) ResidentMB(int) float64 {
	panic("cluster: oblivious placement consulted View.ResidentMB during pre-assignment; " +
		"a placement that depends on live residency must not report Oblivious()")
}

// Up implements View: pre-assignment only happens on event-free runs,
// where every node is permanently in service.
func (v staticView) Up(int) bool { return true }

// HashPlacement spreads apps by a stable hash of their ID: stateless,
// coordination-free, and what a consistent-hashing front end degrades
// to. It ignores load, so skewed app sizes skew nodes. A non-zero
// Seed is mixed into the hash, giving an ensemble of independent
// spreads for sensitivity sweeps ("hash?seed=3").
type HashPlacement struct {
	Seed uint64
}

// Name implements Placement.
func (p HashPlacement) Name() string {
	if p.Seed == 0 {
		return "hash"
	}
	return fmt.Sprintf("hash?seed=%d", p.Seed)
}

// Oblivious implements Oblivious: the hash reads only the app ID and
// the node count.
func (HashPlacement) Oblivious() bool { return true }

// Place implements Placement.
func (p HashPlacement) Place(app Footprint, view View) int {
	h := fnv.New64a()
	if p.Seed != 0 {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], p.Seed)
		h.Write(b[:])
	}
	h.Write([]byte(app.ID))
	return int(h.Sum64() % uint64(view.NumNodes()))
}

// LeastLoadedPlacement puts each app, at its first load, on the node
// with the least resident memory at that instant (ties to the lowest
// index) — the greedy online policy of most schedulers.
type LeastLoadedPlacement struct{}

// Name implements Placement.
func (LeastLoadedPlacement) Name() string { return "least-loaded" }

// Place implements Placement, skipping out-of-service nodes (ties to
// the lowest index). With no node in service it returns 0 and the
// engine fails the load.
func (LeastLoadedPlacement) Place(app Footprint, view View) int {
	best, bestMB := -1, 0.0
	for n := 0; n < view.NumNodes(); n++ {
		if !view.Up(n) {
			continue
		}
		if mb := view.ResidentMB(n); best < 0 || mb < bestMB {
			best, bestMB = n, mb
		}
	}
	if best < 0 {
		return 0
	}
	return best
}

// Replace implements Replacer: a displaced app lands on the least-
// loaded surviving node, -1 when none is in service.
func (LeastLoadedPlacement) Replace(app Footprint, from int, view View) int {
	best, bestMB := -1, 0.0
	for n := 0; n < view.NumNodes(); n++ {
		if n == from || !view.Up(n) {
			continue
		}
		if mb := view.ResidentMB(n); best < 0 || mb < bestMB {
			best, bestMB = n, mb
		}
	}
	return best
}

// Bin-packing sort orders ("binpack?order=..."): which footprint
// dimension first-fit-decreasing sorts on.
const (
	// BinPackBySize packs largest memory footprint first (default).
	BinPackBySize = "size"
	// BinPackByInvocations packs most-invoked apps first — spreads the
	// hot apps before the big ones, a latency-oriented variant.
	BinPackByInvocations = "invocations"
	// BinPackByTrace packs in trace order (no sort) — pure first-fit,
	// the weakest static baseline.
	BinPackByTrace = "trace"
)

// BinPackPlacement assigns offline by first-fit decreasing: apps
// sorted by Order (largest memory first by default) are packed onto
// the first node whose static assignment still fits the capacity;
// when nothing fits, the least-assigned node takes the overflow. It
// needs the whole trace up front (TracePreparer) and models a planner
// with global knowledge — the strongest static baseline against the
// online policies.
type BinPackPlacement struct {
	// Order selects the first-fit sort key (BinPackBySize when empty).
	Order  string
	assign map[string]int
}

// Name implements Placement.
func (p *BinPackPlacement) Name() string {
	if p.Order == "" || p.Order == BinPackBySize {
		return "binpack"
	}
	return fmt.Sprintf("binpack?order=%s", p.Order)
}

// Prepare implements TracePreparer.
func (p *BinPackPlacement) Prepare(apps []Footprint, nodes int, capacityMB float64) {
	order := make([]int, len(apps))
	for i := range order {
		order[i] = i
	}
	// Largest-first on the configured key; ties keep trace order for
	// determinism.
	switch p.Order {
	case BinPackByInvocations:
		sort.SliceStable(order, func(a, b int) bool {
			return apps[order[a]].Invocations > apps[order[b]].Invocations
		})
	case BinPackByTrace:
		// Trace order: no sort.
	default:
		sort.SliceStable(order, func(a, b int) bool {
			return apps[order[a]].MemMB > apps[order[b]].MemMB
		})
	}
	assigned := make([]float64, nodes)
	p.assign = make(map[string]int, len(apps))
	for _, i := range order {
		app := apps[i]
		node := -1
		for n := 0; n < nodes; n++ {
			if assigned[n]+app.MemMB <= capacityMB {
				node = n
				break
			}
		}
		if node < 0 {
			// Nothing fits statically: spill to the least-assigned node
			// and let runtime eviction arbitrate.
			node = 0
			for n := 1; n < nodes; n++ {
				if assigned[n] < assigned[node] {
					node = n
				}
			}
		}
		assigned[node] += app.MemMB
		p.assign[app.ID] = node
	}
}

// Oblivious implements Oblivious: the assignment is fixed by Prepare
// (and the hash fallback), never by live residency.
func (*BinPackPlacement) Oblivious() bool { return true }

// Place implements Placement.
func (p *BinPackPlacement) Place(app Footprint, view View) int {
	if node, ok := p.assign[app.ID]; ok {
		return node
	}
	// Unknown app (not in the prepared trace): fall back to hashing.
	return HashPlacement{}.Place(app, view)
}

// The placement registry mirrors the policy registry: specs are
//
//	name?key=value&key=value
//
// ("binpack?order=invocations", "hash?seed=3"), with bare names
// selecting the defaults, so binaries and examples configure
// placements through one parsed-spec path. Unknown names and unknown
// keys are errors.

// PlacementBuilder constructs a placement from a spec's parameters.
type PlacementBuilder func(p *spec.Params) (Placement, error)

var (
	placementMu  sync.RWMutex
	placementReg = map[string]PlacementBuilder{}
)

// RegisterPlacement adds a named placement builder. Registering a
// duplicate name panics (programming error).
func RegisterPlacement(name string, b PlacementBuilder) {
	placementMu.Lock()
	defer placementMu.Unlock()
	if _, dup := placementReg[name]; dup {
		panic(fmt.Sprintf("cluster: RegisterPlacement(%q) called twice", name))
	}
	placementReg[name] = b
}

// NewPlacement builds a registered placement from a spec ("hash",
// "binpack?order=invocations"). Bare names select the defaults.
func NewPlacement(s string) (Placement, error) {
	name, query := spec.Split(s)
	placementMu.RLock()
	b, ok := placementReg[name]
	placementMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("cluster: unknown placement %q (registered: %v)", name, PlacementNames())
	}
	p, err := spec.Parse(query)
	if err != nil {
		return nil, fmt.Errorf("cluster: placement spec %q: %w", s, err)
	}
	pl, err := b(p)
	if err != nil {
		return nil, fmt.Errorf("cluster: placement spec %q: %w", s, err)
	}
	if left := p.Unused(); len(left) > 0 {
		return nil, fmt.Errorf("cluster: placement spec %q: unknown parameters %v (known: %v)", s, left, p.Known())
	}
	return pl, nil
}

// PlacementNames returns the registered placement names, sorted.
func PlacementNames() []string {
	placementMu.RLock()
	defer placementMu.RUnlock()
	names := make([]string, 0, len(placementReg))
	//wildlint:orderinvariant
	for n := range placementReg {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func init() {
	RegisterPlacement("hash", func(p *spec.Params) (Placement, error) {
		seed, err := p.Uint64("seed", 0)
		if err != nil {
			return nil, err
		}
		return HashPlacement{Seed: seed}, nil
	})
	RegisterPlacement("least-loaded", func(*spec.Params) (Placement, error) {
		return LeastLoadedPlacement{}, nil
	})
	RegisterPlacement("binpack", func(p *spec.Params) (Placement, error) {
		order := p.String("order", BinPackBySize)
		switch order {
		case BinPackBySize, BinPackByInvocations, BinPackByTrace:
		default:
			return nil, fmt.Errorf("parameter order: unknown %q (%s, %s, %s)",
				order, BinPackBySize, BinPackByInvocations, BinPackByTrace)
		}
		return &BinPackPlacement{Order: order}, nil
	})
}
