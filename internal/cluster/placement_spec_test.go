package cluster

import (
	"strings"
	"testing"
)

// TestPlacementSpecs pins the parameterized placement registry:
// name?k=v specs mirror policy.FromSpec, bare names keep working.
func TestPlacementSpecs(t *testing.T) {
	p, err := NewPlacement("binpack?order=invocations")
	if err != nil {
		t.Fatal(err)
	}
	bp, ok := p.(*BinPackPlacement)
	if !ok || bp.Order != BinPackByInvocations {
		t.Fatalf("built %#v", p)
	}
	if p.Name() != "binpack?order=invocations" {
		t.Fatalf("name = %q", p.Name())
	}

	p, err = NewPlacement("binpack")
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "binpack" {
		t.Fatalf("bare name = %q", p.Name())
	}

	p, err = NewPlacement("hash?seed=3")
	if err != nil {
		t.Fatal(err)
	}
	if hp := p.(HashPlacement); hp.Seed != 3 {
		t.Fatalf("built %#v", p)
	}
}

// TestPlacementSpecErrors pins unknown-name and unknown-key errors.
func TestPlacementSpecErrors(t *testing.T) {
	cases := []struct{ spec, wantSub string }{
		{"spread", `unknown placement "spread"`},
		{"hash?sed=1", "unknown parameters [sed]"},
		{"binpack?order=alpha", "parameter order"},
		{"least-loaded?x=1", "unknown parameters [x]"},
	}
	for _, c := range cases {
		_, err := NewPlacement(c.spec)
		if err == nil {
			t.Errorf("spec %q: no error", c.spec)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("spec %q: error %q missing %q", c.spec, err, c.wantSub)
		}
	}
}

// TestHashPlacementSeedChangesSpread pins that distinct seeds give
// distinct (deterministic) spreads.
func TestHashPlacementSeedChangesSpread(t *testing.T) {
	view := fakeView{cap: 1024, mbs: make([]float64, 8)}
	diff := 0
	for i := 0; i < 64; i++ {
		app := Footprint{ID: strings.Repeat("x", i%7) + "app"}
		a := HashPlacement{}.Place(app, view)
		b := HashPlacement{Seed: 7}.Place(app, view)
		if b2 := (HashPlacement{Seed: 7}).Place(app, view); b2 != b {
			t.Fatalf("seeded placement not deterministic")
		}
		if a != b {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("seed 7 never changed a placement across 64 apps")
	}
}

// TestBinPackOrderInvocations pins the invocation-count sort key.
func TestBinPackOrderInvocations(t *testing.T) {
	p := &BinPackPlacement{Order: BinPackByInvocations}
	apps := []Footprint{
		{ID: "quiet-big", MemMB: 900, Invocations: 1},
		{ID: "hot-small", MemMB: 100, Invocations: 1000},
		{ID: "warm-mid", MemMB: 600, Invocations: 100},
	}
	p.Prepare(apps, 2, 1000)
	view := fakeView{cap: 1000, mbs: make([]float64, 2)}
	// hot-small (1000 inv) packs first onto node 0, warm-mid fits with
	// it (100+600), quiet-big overflows to node 1.
	want := map[string]int{"hot-small": 0, "warm-mid": 0, "quiet-big": 1}
	for id, wantNode := range want {
		if n := p.Place(Footprint{ID: id}, view); n != wantNode {
			t.Errorf("%s placed on node %d, want %d", id, n, wantNode)
		}
	}
}
