package cluster

import (
	"strings"
	"testing"
	"time"

	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/trace"
)

// pinPlacement maps app IDs to fixed nodes — the deterministic test
// double for event scenarios (view-dependent, so it always takes the
// global path, like every event-bearing run).
type pinPlacement struct {
	m map[string]int
}

func (p pinPlacement) Name() string                    { return "pin" }
func (p pinPlacement) Place(app Footprint, _ View) int { return p.m[app.ID] }

// ka builds a script that opens the same keep-alive window for every
// invocation.
func ka(seconds float64, n int) []policy.Decision {
	ds := make([]policy.Decision, n)
	for i := range ds {
		ds[i] = policy.Decision{KeepAlive: time.Duration(seconds * float64(time.Second))}
	}
	return ds
}

func TestParseEventsRoundTrip(t *testing.T) {
	in := "fail@36h:node=3; join@48h:node=3 , drain@60m:node=0,resize@72h:node=1&mem=2048"
	evs, err := ParseEvents(in)
	if err != nil {
		t.Fatal(err)
	}
	want := []Event{
		{At: 36 * 3600, Kind: EventFail, Node: 3},
		{At: 48 * 3600, Kind: EventJoin, Node: 3},
		{At: 3600, Kind: EventDrain, Node: 0},
		{At: 72 * 3600, Kind: EventResize, Node: 1, MemMB: 2048},
	}
	if len(evs) != len(want) {
		t.Fatalf("parsed %d events, want %d", len(evs), len(want))
	}
	for i, ev := range evs {
		if ev != want[i] {
			t.Errorf("event %d: %+v, want %+v", i, ev, want[i])
		}
	}
	canon := EventsString(evs)
	if wantCanon := "fail@36h:node=3,join@48h:node=3,drain@1h:node=0,resize@72h:node=1&mem=2048"; canon != wantCanon {
		t.Errorf("canonical %q, want %q", canon, wantCanon)
	}
	again, err := ParseEvents(canon)
	if err != nil {
		t.Fatal(err)
	}
	if EventsString(again) != canon {
		t.Errorf("round trip not stable: %q then %q", canon, EventsString(again))
	}

	// Bare seconds parse and render as the compact duration.
	evs, err = ParseEvents("fail@90:node=0")
	if err != nil {
		t.Fatal(err)
	}
	if evs[0].At != 90 || evs[0].String() != "fail@1m30s:node=0" {
		t.Errorf("bare seconds: %+v rendered %q", evs[0], evs[0].String())
	}

	// Empty input is nil events and an empty canonical string.
	if evs, err := ParseEvents(""); err != nil || len(evs) != 0 {
		t.Errorf("empty input: %v, %v", evs, err)
	}
	if EventsString(nil) != "" {
		t.Errorf("EventsString(nil) = %q", EventsString(nil))
	}
}

func TestParseEventsErrors(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"boom@1h:node=0", "unknown kind"},
		{"fail@1h", "missing node"},
		{"fail:node=0", "want kind@time"},
		{"fail@-5s:node=0", "non-negative"},
		{"fail@soon:node=0", "want a duration"},
		{"resize@1h:node=0", "resize needs mem"},
		{"fail@1h:node=0&mem=5", "unknown parameters"},
	} {
		if _, err := ParseEvents(tc.in); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("ParseEvents(%q) = %v, want error containing %q", tc.in, err, tc.want)
		}
	}
	// Node targets are validated against the cluster shape at run time.
	tr := &trace.Trace{Duration: 100 * time.Second, Apps: []*trace.App{fn("a", 100, 0, 0)}}
	_, err := Run(t.Context(), trace.NewTraceSource(tr), policy.FixedKeepAlive{KeepAlive: time.Minute},
		Config{Nodes: 2, Events: []Event{{At: 10, Kind: EventFail, Node: 5}}})
	if err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("out-of-range event node: %v", err)
	}
}

// TestFailLosesIdleContainer: an abrupt node loss books the idle
// container's truncated waste, counts a failure unload, re-places the
// app, and attributes the next nominally-warm arrival to the failure.
func TestFailLosesIdleContainer(t *testing.T) {
	tr := &trace.Trace{Duration: 2000 * time.Second, Apps: []*trace.App{fn("a", 100, 0, 0, 500)}}
	pol := scriptPolicy{decisions: map[string][]policy.Decision{"a": ka(1000, 2)}}
	res := Simulate(tr, pol, Config{
		Nodes: 2, Placement: pinPlacement{m: map[string]int{"a": 0}},
		Events: []Event{{At: 100, Kind: EventFail, Node: 0}},
	})
	a := res.Apps[0]
	if a.ColdStarts != 2 || a.FailureColdStarts != 1 || a.EvictionColdStarts != 0 || a.Evictions != 0 {
		t.Errorf("cold=%d failureCold=%d evCold=%d evictions=%d, want 2/1/0/0",
			a.ColdStarts, a.FailureColdStarts, a.EvictionColdStarts, a.Evictions)
	}
	if a.Node != 1 {
		t.Errorf("app on node %d after failover, want 1", a.Node)
	}
	// First window truncated at the failure (100 s idle), second runs
	// its full keep-alive from t=500.
	if a.WastedSeconds != 1100 {
		t.Errorf("wasted %v s, want 1100 (100 truncated + 1000 trailing)", a.WastedSeconds)
	}
	n0 := res.NodeStats[0]
	if n0.FailureUnloads != 1 || n0.FailedLoads != 0 || n0.Evictions != 0 {
		t.Errorf("node 0: failureUnloads=%d failedLoads=%d evictions=%d, want 1/0/0",
			n0.FailureUnloads, n0.FailedLoads, n0.Evictions)
	}
}

// TestFailKillsInFlightExecution: a failure during an execution counts
// as a failed load (no waste: the idle segment never started), and the
// next arrival is failure-attributed.
func TestFailKillsInFlightExecution(t *testing.T) {
	tr := &trace.Trace{Duration: 2000 * time.Second, Apps: []*trace.App{fn("a", 100, 400, 0, 500)}}
	pol := scriptPolicy{decisions: map[string][]policy.Decision{"a": ka(1000, 2)}}
	res := Simulate(tr, pol, Config{
		Nodes: 2, Placement: pinPlacement{m: map[string]int{"a": 0}}, UseExecTime: true,
		Events: []Event{{At: 100, Kind: EventFail, Node: 0}},
	})
	a := res.Apps[0]
	if a.ColdStarts != 2 || a.FailureColdStarts != 1 {
		t.Errorf("cold=%d failureCold=%d, want 2/1", a.ColdStarts, a.FailureColdStarts)
	}
	n0 := res.NodeStats[0]
	if n0.FailedLoads != 1 || n0.FailureUnloads != 1 {
		t.Errorf("node 0: failedLoads=%d failureUnloads=%d, want 1/1", n0.FailedLoads, n0.FailureUnloads)
	}
	// The killed window books nothing; the second window (exec 500-900,
	// keep-alive to 1900) books its full trailing keep-alive.
	if a.WastedSeconds != 1000 {
		t.Errorf("wasted %v s, want 1000", a.WastedSeconds)
	}
}

// TestDrainWaitsForExecution: a drain detaches the executing app
// immediately but holds the node's memory until the execution ends.
func TestDrainWaitsForExecution(t *testing.T) {
	tr := &trace.Trace{Duration: 2000 * time.Second, Apps: []*trace.App{fn("a", 100, 400, 0)}}
	pol := scriptPolicy{decisions: map[string][]policy.Decision{"a": ka(1000, 1)}}
	res := Simulate(tr, pol, Config{
		Nodes: 2, Placement: pinPlacement{m: map[string]int{"a": 0}}, UseExecTime: true,
		Events: []Event{{At: 100, Kind: EventDrain, Node: 0}},
	})
	a := res.Apps[0]
	n0 := res.NodeStats[0]
	if n0.FailureUnloads != 1 || n0.FailedLoads != 0 {
		t.Errorf("node 0: failureUnloads=%d failedLoads=%d, want 1/0", n0.FailureUnloads, n0.FailedLoads)
	}
	// Memory resident exactly while the execution runs: 100 MB × 400 s.
	if n0.ResidentMBSeconds != 100*400 {
		t.Errorf("node 0 resident %v MB·s, want %v (drain holds memory to exec end)",
			n0.ResidentMBSeconds, 100.0*400)
	}
	if a.WastedSeconds != 0 {
		t.Errorf("wasted %v s, want 0 (the idle segment never started)", a.WastedSeconds)
	}
}

// TestDrainUnloadsIdleContainer: draining an idle container unloads it
// at the drain instant with truncated waste, like an eviction but
// failure-attributed.
func TestDrainUnloadsIdleContainer(t *testing.T) {
	tr := &trace.Trace{Duration: 2000 * time.Second, Apps: []*trace.App{fn("a", 100, 0, 0, 500)}}
	pol := scriptPolicy{decisions: map[string][]policy.Decision{"a": ka(1000, 2)}}
	res := Simulate(tr, pol, Config{
		Nodes: 2, Placement: pinPlacement{m: map[string]int{"a": 0}},
		Events: []Event{{At: 100, Kind: EventDrain, Node: 0}},
	})
	a := res.Apps[0]
	if a.FailureColdStarts != 1 || a.Evictions != 0 {
		t.Errorf("failureCold=%d evictions=%d, want 1/0", a.FailureColdStarts, a.Evictions)
	}
	if res.NodeStats[0].ResidentMBSeconds != 100*100 {
		t.Errorf("node 0 resident %v MB·s, want %v", res.NodeStats[0].ResidentMBSeconds, 100.0*100)
	}
	if a.Node != 1 {
		t.Errorf("app on node %d after drain, want 1", a.Node)
	}
}

// TestDrainEmptyNode: draining a node with no residents only takes it
// out of service; every other outcome is untouched.
func TestDrainEmptyNode(t *testing.T) {
	tr := &trace.Trace{Duration: 2000 * time.Second, Apps: []*trace.App{fn("a", 100, 0, 0, 500)}}
	script := func() scriptPolicy {
		return scriptPolicy{decisions: map[string][]policy.Decision{"a": ka(1000, 2)}}
	}
	base := Simulate(tr, script(), Config{Nodes: 2, Placement: pinPlacement{m: map[string]int{"a": 0}}})
	got := Simulate(tr, script(), Config{
		Nodes: 2, Placement: pinPlacement{m: map[string]int{"a": 0}},
		Events: []Event{{At: 50, Kind: EventDrain, Node: 1}},
	})
	requireResultsEqual(t, "drain-empty", got, base)
}

// TestFailJoinSameInstant: a fail and join of the same node at the
// same timestamp apply in spec order — the containers are lost and the
// app transiently unplaced, but the node is immediately back in
// service for the next load.
func TestFailJoinSameInstant(t *testing.T) {
	tr := &trace.Trace{Duration: 2000 * time.Second, Apps: []*trace.App{fn("a", 100, 0, 0, 500)}}
	pol := scriptPolicy{decisions: map[string][]policy.Decision{"a": ka(1000, 2)}}
	res := Simulate(tr, pol, Config{
		Nodes: 1, Placement: pinPlacement{m: map[string]int{"a": 0}},
		Events: []Event{
			{At: 100, Kind: EventFail, Node: 0},
			{At: 100, Kind: EventJoin, Node: 0},
		},
	})
	a := res.Apps[0]
	if a.ColdStarts != 2 || a.FailureColdStarts != 1 {
		t.Errorf("cold=%d failureCold=%d, want 2/1", a.ColdStarts, a.FailureColdStarts)
	}
	if a.Node != 0 {
		t.Errorf("app on node %d, want 0 (rejoined node accepts the reload)", a.Node)
	}
	if res.NodeStats[0].FailureUnloads != 1 {
		t.Errorf("failureUnloads=%d, want 1", res.NodeStats[0].FailureUnloads)
	}
	// The arrival at t=500 loaded successfully on the rejoined node and
	// runs its keep-alive to the horizon.
	if a.WastedSeconds != 1100 {
		t.Errorf("wasted %v s, want 1100", a.WastedSeconds)
	}
}

// TestEventAtTimeZero: an event at t=0 processes before the t=0
// invocation, so the first load already sees the node down and is
// diverted to an up node.
func TestEventAtTimeZero(t *testing.T) {
	tr := &trace.Trace{Duration: 1000 * time.Second, Apps: []*trace.App{fn("a", 100, 0, 0)}}
	pol := scriptPolicy{decisions: map[string][]policy.Decision{"a": ka(100, 1)}}
	res := Simulate(tr, pol, Config{
		Nodes: 2, Placement: pinPlacement{m: map[string]int{"a": 0}},
		Events: []Event{{At: 0, Kind: EventFail, Node: 0}},
	})
	a := res.Apps[0]
	if a.Node != 1 || a.ColdStarts != 1 || a.FailureColdStarts != 0 {
		t.Errorf("node=%d cold=%d failureCold=%d, want 1/1/0 (diverted, nothing lost)",
			a.Node, a.ColdStarts, a.FailureColdStarts)
	}
	if res.NodeStats[0].FailureUnloads != 0 || res.NodeStats[1].ResidentMBSeconds != 100*100 {
		t.Errorf("node stats %+v, want all residency on node 1", res.NodeStats)
	}
}

// TestEventAfterLastInvocation: a failure between the last arrival and
// the horizon truncates the trailing keep-alive at the event time; one
// past the horizon changes nothing at all.
func TestEventAfterLastInvocation(t *testing.T) {
	tr := &trace.Trace{Duration: 2000 * time.Second, Apps: []*trace.App{fn("a", 100, 0, 0)}}
	script := func() scriptPolicy {
		return scriptPolicy{decisions: map[string][]policy.Decision{"a": ka(1000, 1)}}
	}
	cfg := func(evs ...Event) Config {
		return Config{Nodes: 2, Placement: pinPlacement{m: map[string]int{"a": 0}}, Events: evs}
	}
	res := Simulate(tr, script(), cfg(Event{At: 500, Kind: EventFail, Node: 0}))
	a := res.Apps[0]
	if a.WastedSeconds != 500 {
		t.Errorf("wasted %v s, want 500 (trailing keep-alive truncated at the failure)", a.WastedSeconds)
	}
	if a.ColdStarts != 1 || a.FailureColdStarts != 0 {
		t.Errorf("cold=%d failureCold=%d, want 1/0 (no arrival after the failure)", a.ColdStarts, a.FailureColdStarts)
	}
	base := Simulate(tr, script(), cfg())
	past := Simulate(tr, script(), cfg(Event{At: 3000, Kind: EventFail, Node: 0}))
	requireResultsEqual(t, "event-past-horizon", past, base)
}

// TestResizeShrinkEvicts: shrinking a node below its resident set
// evicts idle containers soonest-to-expire first, with ordinary
// eviction attribution (capacity pressure, not failure).
func TestResizeShrinkEvicts(t *testing.T) {
	tr := &trace.Trace{Duration: 2000 * time.Second, Apps: []*trace.App{
		fn("x", 100, 0, 0, 500),
		fn("y", 100, 0, 10),
	}}
	pol := scriptPolicy{decisions: map[string][]policy.Decision{
		"x": ka(1000, 2),
		"y": ka(1000, 1),
	}}
	res := Simulate(tr, pol, Config{
		Nodes: 1, NodeMemMB: 250, Placement: pinPlacement{m: map[string]int{"x": 0, "y": 0}},
		Events: []Event{{At: 100, Kind: EventResize, Node: 0, MemMB: 150}},
	})
	x, y := res.Apps[0], res.Apps[1]
	// At the shrink, x (expiring at 1000) is evicted ahead of y (1010);
	// x's reload at t=500 then pressures y out of the 150 MB node —
	// both are ordinary capacity evictions, not failures.
	if x.Evictions != 1 || y.Evictions != 1 {
		t.Errorf("evictions x=%d y=%d, want 1/1", x.Evictions, y.Evictions)
	}
	if x.EvictionColdStarts != 1 || x.FailureColdStarts != 0 || y.FailureColdStarts != 0 {
		t.Errorf("x evCold=%d failureCold=%d y failureCold=%d, want 1/0/0 (resize pressure is eviction, not failure)",
			x.EvictionColdStarts, x.FailureColdStarts, y.FailureColdStarts)
	}
}

// TestResizeGrowAdmits: growing a node admits an app that could never
// fit before — and growing an initially-infinite node is a no-op until
// a later shrink makes it finite (the victim index is maintained from
// the start whenever any resize can introduce pressure).
func TestResizeGrowAdmits(t *testing.T) {
	tr := &trace.Trace{Duration: 2000 * time.Second, Apps: []*trace.App{fn("big", 200, 0, 10, 500)}}
	pol := scriptPolicy{decisions: map[string][]policy.Decision{"big": ka(100, 2)}}
	res := Simulate(tr, pol, Config{
		Nodes: 1, NodeMemMB: 150, Placement: pinPlacement{m: map[string]int{"big": 0}},
		Events: []Event{{At: 100, Kind: EventResize, Node: 0, MemMB: 400}},
	})
	a := res.Apps[0]
	n0 := res.NodeStats[0]
	if n0.FailedLoads != 1 {
		t.Errorf("failedLoads=%d, want 1 (the pre-resize load could never fit)", n0.FailedLoads)
	}
	// The t=500 load fits the grown node: 200 MB resident for its 100 s
	// keep-alive.
	if n0.ResidentMBSeconds != 200*100 {
		t.Errorf("resident %v MB·s, want %v", n0.ResidentMBSeconds, 200.0*100)
	}
	if a.ColdStarts != 2 {
		t.Errorf("cold=%d, want 2", a.ColdStarts)
	}
}

// TestResizeFiniteFromInfinite: a resize that makes an infinite node
// finite triggers pressure eviction against the resident set — which
// requires the victim index to have been maintained all along.
func TestResizeFiniteFromInfinite(t *testing.T) {
	tr := &trace.Trace{Duration: 2000 * time.Second, Apps: []*trace.App{
		fn("x", 100, 0, 0, 500),
		fn("y", 100, 0, 10),
	}}
	pol := scriptPolicy{decisions: map[string][]policy.Decision{
		"x": ka(1000, 2),
		"y": ka(1000, 1),
	}}
	res := Simulate(tr, pol, Config{
		Nodes: 1, Placement: pinPlacement{m: map[string]int{"x": 0, "y": 0}}, // infinite memory
		Events: []Event{{At: 100, Kind: EventResize, Node: 0, MemMB: 150}},
	})
	x := res.Apps[0]
	if x.Evictions != 1 || x.EvictionColdStarts != 1 {
		t.Errorf("x evictions=%d evCold=%d, want 1/1 (shrink below the resident set evicts)",
			x.Evictions, x.EvictionColdStarts)
	}
}

// replacePlacement pins initial placement and routes every
// displacement through the Replace hook.
type replacePlacement struct {
	pin   map[string]int
	to    int
	calls int
}

func (p *replacePlacement) Name() string                    { return "replace-test" }
func (p *replacePlacement) Place(app Footprint, _ View) int { return p.pin[app.ID] }
func (p *replacePlacement) Replace(app Footprint, from int, view View) int {
	p.calls++
	if !view.Up(p.to) {
		return -1
	}
	return p.to
}

// TestReplaceHook: a placement implementing Replacer chooses the
// failover node itself — the engine must consult it instead of the
// cyclic Place fallback (which would pick node 1 here).
func TestReplaceHook(t *testing.T) {
	tr := &trace.Trace{Duration: 2000 * time.Second, Apps: []*trace.App{fn("a", 100, 0, 0, 500)}}
	pol := scriptPolicy{decisions: map[string][]policy.Decision{"a": ka(1000, 2)}}
	place := &replacePlacement{pin: map[string]int{"a": 0}, to: 2}
	res := Simulate(tr, pol, Config{
		Nodes: 3, Placement: place,
		Events: []Event{{At: 100, Kind: EventFail, Node: 0}},
	})
	if place.calls != 1 {
		t.Errorf("Replace called %d times, want 1", place.calls)
	}
	if res.Apps[0].Node != 2 {
		t.Errorf("app on node %d, want 2 (the Replace hook's choice)", res.Apps[0].Node)
	}
}

// TestLeastLoadedReplace: the built-in least-loaded placement
// implements Replacer and sends displaced apps to the least-loaded
// surviving node.
func TestLeastLoadedReplace(t *testing.T) {
	if _, ok := Placement(LeastLoadedPlacement{}).(Replacer); !ok {
		t.Fatal("least-loaded must implement Replacer")
	}
	v := fakeView{cap: 1000, mbs: []float64{100, 300, 200}, down: []bool{true, false, false}}
	if n := (LeastLoadedPlacement{}).Replace(Footprint{ID: "a"}, 0, v); n != 2 {
		t.Errorf("Replace chose node %d, want 2 (least-loaded surviving)", n)
	}
	vAllDown := fakeView{cap: 1000, mbs: []float64{0, 0}, down: []bool{true, true}}
	if n := (LeastLoadedPlacement{}).Replace(Footprint{ID: "a"}, 0, vAllDown); n != -1 {
		t.Errorf("Replace with no survivors chose %d, want -1", n)
	}
}

// TestEventsInvariantRandomized pins the three-way attribution algebra
// under a full incident sequence on a generated workload: every cold
// start is policy-induced (the batch simulator's count), or attributed
// to eviction or failure — never double counted, never lost.
func TestEventsInvariantRandomized(t *testing.T) {
	tr := testPopulation(t)
	pol := func() policy.Policy { return policy.NewHybrid(policy.DefaultHybridConfig()) }
	want := sim.Simulate(tr, pol(), sim.Options{})
	got := Simulate(tr, pol(), Config{
		Nodes: 3, NodeMemMB: 600,
		Events: []Event{
			{At: 6 * 3600, Kind: EventFail, Node: 1},
			{At: 9 * 3600, Kind: EventJoin, Node: 1},
			{At: 12 * 3600, Kind: EventDrain, Node: 0},
			{At: 15 * 3600, Kind: EventResize, Node: 2, MemMB: 300},
			{At: 18 * 3600, Kind: EventJoin, Node: 0},
		},
	})
	if got.TotalFailureColdStarts() == 0 {
		t.Fatal("no failure-attributed cold starts; the invariant test is vacuous")
	}
	if got.TotalEvictionColdStarts() == 0 {
		t.Fatal("no eviction-attributed cold starts; tighten the capacity")
	}
	for i, c := range got.Apps {
		s := want.Apps[i]
		if c.ColdStarts != s.ColdStarts+c.EvictionColdStarts+c.FailureColdStarts {
			t.Errorf("app %s: cluster cold %d != sim cold %d + eviction %d + failure %d",
				c.AppID, c.ColdStarts, s.ColdStarts, c.EvictionColdStarts, c.FailureColdStarts)
		}
		if c.WastedSeconds > s.WastedSeconds*(1+1e-12)+1e-9 {
			t.Errorf("app %s: cluster waste %v exceeds infinite-memory waste %v",
				c.AppID, c.WastedSeconds, s.WastedSeconds)
		}
		if c.ModeCounts != s.ModeCounts {
			t.Errorf("app %s: mode counts changed under events: %v vs %v",
				c.AppID, c.ModeCounts, s.ModeCounts)
		}
	}
}

// TestEventFreeRunsUnchanged: an empty Events slice is exactly the
// absent-events configuration — the sharded fast path still runs and
// results are bit-identical.
func TestEventFreeRunsUnchanged(t *testing.T) {
	tr := testPopulation(t)
	pol := func() policy.Policy { return policy.NewHybrid(policy.DefaultHybridConfig()) }
	base := Simulate(tr, pol(), Config{Nodes: 3, NodeMemMB: 600})
	empty := Simulate(tr, pol(), Config{Nodes: 3, NodeMemMB: 600, Events: []Event{}})
	requireResultsEqual(t, "empty-events", empty, base)
}
