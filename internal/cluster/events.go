package cluster

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"

	"repro/internal/spec"
)

// Timed cluster events: capacity incidents injected into a run at
// fixed offsets from the trace start. The grammar is
//
//	kind@time:key=value&key=value
//
// with entries separated by commas (or semicolons in contexts where a
// comma-free form is needed, e.g. raw JSON strings):
//
//	fail@36h:node=3, join@48h:node=3, drain@60h:node=0, resize@72h:node=1&mem=2048
//
// Times are Go durations ("36h", "90m", "12h30m") or bare seconds.
// Semantics (see the package doc and README "Chaos events"):
//
//	fail    node goes down instantly; every resident container is
//	        lost (in-flight executions count as failed loads), apps
//	        are re-placed on surviving nodes.
//	drain   node goes down gracefully; idle containers unload now,
//	        executing containers finish and then unload; apps are
//	        re-placed on surviving nodes.
//	join    node comes (back) up and accepts placements again.
//	resize  node capacity becomes mem MB (0 = infinite); shrinking
//	        below the resident set triggers pressure eviction.
//
// Equal-time events apply in spec order, before any reload,
// invocation or expiry at the same instant.

// EventKind discriminates the timed cluster events.
type EventKind uint8

const (
	// EventFail is an abrupt node loss.
	EventFail EventKind = iota
	// EventDrain is a graceful node removal (waits for executions).
	EventDrain
	// EventJoin returns a node to service.
	EventJoin
	// EventResize changes a node's memory capacity.
	EventResize
)

// String returns the grammar's kind token.
func (k EventKind) String() string {
	switch k {
	case EventFail:
		return "fail"
	case EventDrain:
		return "drain"
	case EventJoin:
		return "join"
	case EventResize:
		return "resize"
	}
	return fmt.Sprintf("EventKind(%d)", uint8(k))
}

// Event is one timed cluster event.
type Event struct {
	// At is the event time in seconds from the trace start.
	At float64
	// Kind selects the incident type.
	Kind EventKind
	// Node is the target node index.
	Node int
	// MemMB is the new capacity for EventResize (<= 0 = infinite);
	// unused otherwise.
	MemMB float64
}

// String renders the canonical single-event form ("fail@36h:node=3").
func (ev Event) String() string {
	s := fmt.Sprintf("%s@%s:node=%d", ev.Kind, formatEventTime(ev.At), ev.Node)
	if ev.Kind == EventResize {
		s += "&mem=" + strconv.FormatFloat(ev.MemMB, 'g', -1, 64)
	}
	return s
}

// EventsString renders a canonical comma-separated event list; empty
// input renders empty. ParseEvents(EventsString(evs)) reproduces evs.
func EventsString(evs []Event) string {
	if len(evs) == 0 {
		return ""
	}
	parts := make([]string, len(evs))
	for i, ev := range evs {
		parts[i] = ev.String()
	}
	return strings.Join(parts, ",")
}

// ParseEvents parses an event list. Entries split on commas or
// semicolons; whitespace around entries is ignored; an empty string
// parses to nil. Spec order is preserved — equal-time events apply in
// the order written.
func ParseEvents(s string) ([]Event, error) {
	var evs []Event
	for _, part := range strings.FieldsFunc(s, func(r rune) bool { return r == ',' || r == ';' }) {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		ev, err := parseEvent(part)
		if err != nil {
			return nil, err
		}
		evs = append(evs, ev)
	}
	return evs, nil
}

func parseEvent(s string) (Event, error) {
	head, params, _ := strings.Cut(s, ":")
	kindStr, timeStr, ok := strings.Cut(head, "@")
	if !ok {
		return Event{}, fmt.Errorf("cluster: event %q: want kind@time:node=N", s)
	}
	var ev Event
	switch strings.TrimSpace(kindStr) {
	case "fail":
		ev.Kind = EventFail
	case "drain":
		ev.Kind = EventDrain
	case "join":
		ev.Kind = EventJoin
	case "resize":
		ev.Kind = EventResize
	default:
		return Event{}, fmt.Errorf("cluster: event %q: unknown kind %q (fail, drain, join, resize)", s, kindStr)
	}
	at, err := parseEventTime(strings.TrimSpace(timeStr))
	if err != nil {
		return Event{}, fmt.Errorf("cluster: event %q: %w", s, err)
	}
	ev.At = at

	p, err := spec.Parse(params)
	if err != nil {
		return Event{}, fmt.Errorf("cluster: event %q: %w", s, err)
	}
	node, err := p.Int("node", -1)
	if err != nil {
		return Event{}, fmt.Errorf("cluster: event %q: %w", s, err)
	}
	if node < 0 {
		return Event{}, fmt.Errorf("cluster: event %q: missing node=N", s)
	}
	ev.Node = node
	if ev.Kind == EventResize {
		mem, err := p.Float("mem", math.NaN())
		if err != nil {
			return Event{}, fmt.Errorf("cluster: event %q: %w", s, err)
		}
		if math.IsNaN(mem) {
			return Event{}, fmt.Errorf("cluster: event %q: resize needs mem=MB (0 = infinite)", s)
		}
		ev.MemMB = mem
	}
	if left := p.Unused(); len(left) > 0 {
		return Event{}, fmt.Errorf("cluster: event %q: unknown parameters %v (known: %v)", s, left, p.Known())
	}
	return ev, nil
}

// parseEventTime accepts a Go duration ("36h", "12h30m", "90.5s") or
// bare seconds ("3600"), returning seconds. Negative times are
// rejected.
func parseEventTime(s string) (float64, error) {
	var sec float64
	if d, err := time.ParseDuration(s); err == nil {
		sec = d.Seconds()
	} else if f, err := strconv.ParseFloat(s, 64); err == nil {
		sec = f
	} else {
		return 0, fmt.Errorf("time %q: want a duration (36h) or seconds", s)
	}
	if sec < 0 || math.IsNaN(sec) || math.IsInf(sec, 0) {
		return 0, fmt.Errorf("time %q: want a non-negative finite time", s)
	}
	return sec, nil
}

// formatEventTime renders seconds as the most compact duration form
// ("36h", "12h30m", "90.5s"); non-representable values fall back to
// bare seconds.
func formatEventTime(sec float64) string {
	ns := sec * float64(time.Second)
	if ns > float64(math.MaxInt64) || float64(time.Duration(ns)) != ns {
		return strconv.FormatFloat(sec, 'g', -1, 64)
	}
	s := time.Duration(ns).String()
	if strings.HasSuffix(s, "m0s") {
		s = s[:len(s)-2]
	}
	if strings.HasSuffix(s, "h0m") {
		s = s[:len(s)-2]
	}
	return s
}

// validateEvents checks event targets against the cluster shape.
func validateEvents(evs []Event, nodes int) error {
	for _, ev := range evs {
		if ev.Node >= nodes {
			return fmt.Errorf("cluster: event %s: node %d out of range (cluster has %d nodes)",
				ev, ev.Node, nodes)
		}
	}
	return nil
}
