package cluster

import (
	"context"
	"math"
	"slices"

	"repro/internal/sim/kernel"
)

// Event kinds, in processing order at equal times: timed cluster
// events first (an incident at t shapes everything else at t), then
// pre-warm reloads (an arrival exactly at the reload is warm),
// invocations, keep-alive expiries (an arrival exactly at the window
// end is warm), and drain flushes last — the order realizes
// kernel.Classify's inclusive boundaries, and lets a fail at t retire
// a reload at t before it fires.
const (
	evCluster = iota // Config.Events incident; app = event index, gen-free
	evReload
	evInvoke // implicit: the merged invocation stream, never heaped
	evUnload
	evFlush // drained container's execution ended; app = flush index, gen-free
)

// cevent is one timed event, invalidated lazily by the owning app's
// window generation (evCluster/evFlush carry no generation: app is an
// index into Config.Events / shard.flushes instead).
type cevent struct {
	t    float64
	kind uint8
	app  int32
	gen  uint32
}

// drainFlush is the node-level release of one draining container: the
// drain detached the app immediately, the node's memory frees when
// the in-flight execution ends.
type drainFlush struct {
	node  int32
	memMB float64
}

// inv is one invocation in a shard's merged stream.
type inv struct {
	t   float64
	app int32
}

// victimEntry is one candidate in a node's victim index: the app's
// container ordered by scheduled expiry. Entries are never updated in
// place — each refresh pushes a new entry with a bumped per-app
// version (appState.vix) and older entries die lazily on pop.
type victimEntry struct {
	unloadAt float64
	app      int32
	vix      uint32
}

// shard drives one slice of the cluster: a merged invocation stream
// and the container-event queue for the apps on its nodes. The sharded
// (oblivious-placement) path runs one shard per node; the global
// (view-dependent) path runs a single shard spanning every node. All
// per-node mechanics below are identical on both paths — only the
// event interleaving across nodes differs, and that interleaving is
// unobservable node-locally.
type shard struct {
	e       *engine
	invs    []inv
	q       eventQueue    // timer-wheel container-event queue (wheel.go)
	skip    []victimEntry // pickVictim scratch: executing containers set aside
	flushes []drainFlush  // pending drain-outs, indexed by evFlush events
}

// reset prepares a worker-owned shard for its next node, keeping the
// queue's slot and buffer capacity.
func (s *shard) reset() {
	s.flushes = s.flushes[:0]
	s.q.reset()
}

// sortInvs orders a merged invocation stream by (time, app index) —
// the same total order the event comparators use. The comparison-based
// sort avoids sort.Slice's reflection; equal keys only arise for one
// app's simultaneous invocations, which are indistinguishable.
func sortInvs(invs []inv) {
	slices.SortFunc(invs, func(a, b inv) int {
		if a.t != b.t {
			if a.t < b.t {
				return -1
			}
			return 1
		}
		return int(a.app) - int(b.app)
	})
}

// timeline is the discrete-event loop: the shard's invocation stream
// and its container-event queue advance together in time order.
func (s *shard) timeline(ctx context.Context) error {
	ii := 0
	for steps := 0; ii < len(s.invs) || s.q.n > 0; steps++ {
		if steps&4095 == 4095 && ctx.Err() != nil {
			return ctx.Err()
		}
		if ev, ok := s.q.peek(); ok {
			if ii >= len(s.invs) || ev.t < s.invs[ii].t ||
				(ev.t == s.invs[ii].t && ev.kind <= evReload) {
				s.q.pop()
				switch ev.kind {
				case evCluster:
					s.applyClusterEvent(int(ev.app), ev.t)
					continue
				case evFlush:
					s.applyFlush(int(ev.app), ev.t)
					continue
				}
				st := &s.e.states[ev.app]
				if ev.gen != st.gen {
					continue // superseded window
				}
				switch ev.kind {
				case evUnload:
					if st.resident {
						s.removeResident(ev.app, ev.t)
					}
				case evReload:
					s.reload(ev.app, ev.t)
				}
				continue
			}
		}
		in := s.invs[ii]
		ii++
		s.invoke(in.app, in.t)
	}
	return nil
}

// invoke processes one arrival: classify against the previous window
// (eviction overrides the nominal outcome), load on cold, advance the
// decision cursor, and schedule the next window.
func (s *shard) invoke(ai int32, t float64) {
	e := s.e
	st := &e.states[ai]
	wk := st.walk
	i := st.inv
	st.inv++

	warm := false
	if i == 0 {
		st.res.ColdStarts = 1 // the first invocation is always cold (§5.1)
	} else {
		nomWarm, wasted := kernel.Classify(st.cur.D, st.cur.PwSec, st.cur.KaSec, st.prevEnd, t)
		if st.dead {
			// The warm container was evicted, lost to a node event, or
			// never fit: the arrival is cold regardless of the window;
			// its truncated waste was booked when the window died.
			st.res.ColdStarts++
			if nomWarm {
				if st.deadByFail {
					st.res.FailureColdStarts++
				} else {
					st.res.EvictionColdStarts++
				}
			}
		} else {
			warm = nomWarm
			if !warm {
				st.res.ColdStarts++
			}
			st.res.WastedSeconds += wasted
		}
	}
	st.dead = false
	st.deadByFail = false
	st.gen++ // retire the previous window's pending events

	// A warm hit continues the resident container. A cold start loads
	// now — unless the container is still in memory (overlapping
	// executions, or a pre-warm gap arrival at the exact unload
	// instant), in which case the memory never left.
	if !warm && !st.resident {
		if !s.load(ai, t) {
			st.dead = true // transient execution, no residency this window
		}
	}

	// Advance to the decision governing this invocation, then open its
	// window from the execution end.
	st.cur.Step(&st.res.ModeCounts)
	st.prevEnd = t
	if wk.execs != nil {
		st.prevEnd += wk.execs[i]
	}
	if st.prevEnd > st.execEnd {
		st.execEnd = st.prevEnd
	}
	if !st.dead {
		s.schedule(ai)
	}
}

// schedule opens the window st.cur.D prescribes after the execution
// ending at st.prevEnd: residency plan, expiry events, pre-warm
// reloads.
//
// Events that cannot fire are never heaped: an unload or reload is
// observable only if it happens before the app's next arrival (known
// from the precomputed walk) — an earlier arrival retires the window
// (gen bump) and the event would pop as stale. Unloads are superseded
// by an arrival at the same instant (invocations process before
// expiries at equal times), reloads are not (reloads process first),
// hence the strict vs inclusive comparisons. For hot apps whose
// windows rarely expire this removes almost all heap traffic.
func (s *shard) schedule(ai int32) {
	e := s.e
	st := &e.states[ai]
	d := st.cur.D
	next := s.nextArrival(ai)
	switch {
	case d.Forever:
		st.loadedAt = st.prevEnd
		s.setExpiry(ai, st, math.Inf(1))
	case d.PreWarm == 0:
		st.loadedAt = st.prevEnd
		s.setExpiry(ai, st, st.prevEnd+st.cur.KaSec)
		if st.unloadAt < e.horizon && st.unloadAt < next {
			s.pushEvent(cevent{t: st.unloadAt, kind: evUnload, app: ai, gen: st.gen})
		}
	default:
		// Pre-warmed window: unload at execution end, reload PreWarm
		// later (the reload event re-checks memory pressure).
		if st.prevEnd <= st.walk.times[st.inv-1] {
			// Zero execution time: the unload is immediate.
			if st.resident {
				s.removeResident(ai, st.prevEnd)
			}
		} else {
			s.setExpiry(ai, st, st.prevEnd)
			if st.prevEnd < e.horizon && st.prevEnd < next {
				s.pushEvent(cevent{t: st.prevEnd, kind: evUnload, app: ai, gen: st.gen})
			}
		}
		if loadAt := st.prevEnd + st.cur.PwSec; loadAt < e.horizon && loadAt <= next {
			s.pushEvent(cevent{t: loadAt, kind: evReload, app: ai, gen: st.gen})
		}
	}
}

// nextArrival returns the app's next invocation time (+Inf after the
// last one). The timeline has already consumed invocations below
// st.inv, so this is the next arrival the stream will deliver.
func (s *shard) nextArrival(ai int32) float64 {
	st := &s.e.states[ai]
	if st.inv < len(st.walk.times) {
		return st.walk.times[st.inv]
	}
	return math.Inf(1)
}

// reload serves a pre-warm: the container comes back under the same
// window, pressure permitting.
func (s *shard) reload(ai int32, t float64) {
	e := s.e
	st := &e.states[ai]
	if st.resident || st.dead {
		return
	}
	if !s.load(ai, t) {
		st.dead = true
		return
	}
	st.loadedAt = t
	s.setExpiry(ai, st, t+st.cur.KaSec)
	if st.unloadAt < e.horizon && st.unloadAt < s.nextArrival(ai) {
		s.pushEvent(cevent{t: st.unloadAt, kind: evUnload, app: ai, gen: st.gen})
	}
}

// setExpiry records the container's scheduled expiry and, on finite
// runs, refreshes its victim-index entry while resident. Every write
// of unloadAt for a resident container goes through here, so the
// latest index entry always carries the live expiry.
func (s *shard) setExpiry(ai int32, st *appState, unloadAt float64) {
	st.unloadAt = unloadAt
	if s.e.finite && st.resident {
		st.vix++
		s.pushVictim(&s.e.nodes[st.node], victimEntry{unloadAt: unloadAt, app: ai, vix: st.vix})
	}
}

// load makes the app resident on its node at time t, evicting idle
// containers (soonest-to-expire first) until it fits. It reports
// whether the load succeeded.
func (s *shard) load(ai int32, t float64) bool {
	e := s.e
	st := &e.states[ai]
	if !st.placed {
		// Global path only: view-dependent placements choose the node
		// at the app's first load, observing live residency.
		app := Footprint{ID: st.res.AppID, MemMB: st.memMB, Invocations: st.res.Invocations}
		node := e.place.Place(app, e)
		if node < 0 || node >= len(e.nodes) {
			panic("cluster: placement returned node out of range")
		}
		if e.nodes[node].down {
			node = e.nextUp(node)
		}
		if node < 0 {
			// Every node is out of service: the load fails, and the
			// app stays unplaced so the next load re-tries placement
			// (a join may have restored capacity by then).
			st.deadByFail = true
			return false
		}
		st.placed = true
		st.node = int32(node)
		st.res.Node = node
	}
	nd := &e.nodes[st.node]
	if st.memMB > nd.capMB {
		// Larger than a whole node: can never be resident.
		nd.stats.FailedLoads++
		return false
	}
	for nd.residentMB+st.memMB > nd.capMB {
		victim := s.pickVictim(nd, t)
		if victim < 0 {
			nd.stats.FailedLoads++
			return false
		}
		s.evict(victim, t)
	}
	s.addResident(ai, t)
	return true
}

// pickVictim selects the idle resident container closest to its own
// expiry (ties to the lowest app index) — the cheapest reclaim, since
// its remaining keep-alive had the least predicted value. The victim
// index pops candidates in (unloadAt, app) order; stale entries
// (superseded windows, departed containers) are discarded, and
// containers mid-execution are set aside and re-indexed after
// selection — they stay resident and may be victims later. Returns -1
// when nothing is evictable.
func (s *shard) pickVictim(nd *nodeState, t float64) int32 {
	skip := s.skip[:0]
	best := int32(-1)
	for len(nd.victims) > 0 {
		ent := nd.victims[0]
		st := &s.e.states[ent.app]
		if !st.resident || ent.vix != st.vix {
			popVictim(nd) // stale
			continue
		}
		if st.execEnd > t {
			popVictim(nd) // executing: never a victim (until execEnd)
			skip = append(skip, ent)
			continue
		}
		popVictim(nd) // the caller evicts it now
		best = ent.app
		break
	}
	for _, ent := range skip {
		s.pushVictim(nd, ent)
	}
	s.skip = skip[:0]
	return best
}

// evict reclaims one idle container under pressure at time t: its
// loaded-but-idle time so far is booked (the window's waste is
// truncated, not the nominal full keep-alive), and the window dies —
// the app's next arrival is cold.
func (s *shard) evict(ai int32, t float64) {
	st := &s.e.states[ai]
	st.res.WastedSeconds += t - st.loadedAt
	st.res.Evictions++
	s.e.nodes[st.node].stats.Evictions++
	st.dead = true
	st.deadByFail = false // pressure, not a node event
	st.gen++              // retire the window's pending events
	s.removeResident(ai, t)
}

// applyClusterEvent applies Config.Events[idx] at its scheduled time.
func (s *shard) applyClusterEvent(idx int, t float64) {
	ev := s.e.cfg.Events[idx]
	switch ev.Kind {
	case EventFail:
		s.failNode(ev.Node, t)
	case EventDrain:
		s.drainNode(ev.Node, t)
	case EventJoin:
		s.e.nodes[ev.Node].down = false
	case EventResize:
		s.resizeNode(ev.Node, ev.MemMB, t)
	}
}

// failNode takes a node down abruptly: every resident container is
// lost instantly — in-flight executions count as failed loads, idle
// containers book their truncated waste — and every app placed here
// is displaced onto a surviving node.
func (s *shard) failNode(node int, t float64) {
	e := s.e
	nd := &e.nodes[node]
	nd.down = true
	for ai := range e.states {
		st := &e.states[ai]
		if !st.placed || int(st.node) != node {
			continue
		}
		if st.resident {
			if st.execEnd > t {
				// The execution dies with the node: a failed load, not
				// waste (the idle segment never started).
				nd.stats.FailedLoads++
			} else {
				st.res.WastedSeconds += t - st.loadedAt
			}
			nd.stats.FailureUnloads++
			s.removeResident(int32(ai), t)
		}
		s.displace(int32(ai))
	}
}

// drainNode takes a node down gracefully: idle containers unload now,
// executing containers finish their work and release the node's
// memory at execution end (a flush event), and every app placed here
// is displaced — arrivals during the drain-out already go to the new
// placement.
func (s *shard) drainNode(node int, t float64) {
	e := s.e
	nd := &e.nodes[node]
	nd.down = true
	for ai := range e.states {
		st := &e.states[ai]
		if !st.placed || int(st.node) != node {
			continue
		}
		if st.resident {
			nd.stats.FailureUnloads++
			if st.execEnd > t {
				// Detach the app now; the node-level memory frees when
				// the in-flight execution ends. No waste: the idle
				// segment never starts.
				st.resident = false
				s.flushes = append(s.flushes, drainFlush{node: int32(node), memMB: st.memMB})
				s.pushEvent(cevent{t: st.execEnd, kind: evFlush, app: int32(len(s.flushes) - 1)})
			} else {
				st.res.WastedSeconds += t - st.loadedAt
				s.removeResident(int32(ai), t)
			}
		}
		s.displace(int32(ai))
	}
}

// resizeNode sets a node's live capacity; shrinking below the
// resident set evicts idle containers (soonest-to-expire first) until
// the node fits. Executing containers cannot be evicted and may leave
// the node transiently over capacity.
func (s *shard) resizeNode(node int, memMB, t float64) {
	nd := &s.e.nodes[node]
	nd.capMB = memMB
	if memMB <= 0 {
		nd.capMB = math.Inf(1)
	}
	for nd.residentMB > nd.capMB {
		victim := s.pickVictim(nd, t)
		if victim < 0 {
			break
		}
		s.evict(victim, t)
	}
}

// applyFlush releases a drained container's node memory at its
// execution end (the app itself detached at drain time).
func (s *shard) applyFlush(idx int, t float64) {
	f := s.flushes[idx]
	nd := &s.e.nodes[f.node]
	nd.advance(t, s.e.horizon)
	nd.residentMB -= f.memMB
	if nd.residentMB < 0 {
		nd.residentMB = 0 // float dust
	}
	if s.e.finite {
		nd.residentCnt--
	}
}

// displace kills a displaced app's current window with failure
// attribution (first cause wins) and re-places the app on a
// surviving node.
func (s *shard) displace(ai int32) {
	st := &s.e.states[ai]
	if !st.dead {
		st.dead = true
		st.deadByFail = true
	}
	st.gen++ // retire the window's pending events
	s.replaceApp(ai)
}

// replaceApp re-places a displaced app: the placement's Replace hook
// chooses the surviving node, falling back to Place advanced to the
// next in-service node. Apps with no remaining arrivals keep their
// historical node; when no node is in service the app becomes
// unplaced and re-tries placement at its next load.
func (s *shard) replaceApp(ai int32) {
	e := s.e
	st := &e.states[ai]
	if st.inv >= len(st.walk.times) {
		return // no future arrivals: nothing to migrate
	}
	app := Footprint{ID: st.res.AppID, MemMB: st.memMB, Invocations: st.res.Invocations}
	var node int
	if rp, ok := e.place.(Replacer); ok {
		node = rp.Replace(app, int(st.node), e)
		if node >= len(e.nodes) {
			panic("cluster: Replace returned node out of range")
		}
	} else {
		node = e.place.Place(app, e)
		if node < 0 || node >= len(e.nodes) {
			panic("cluster: placement returned node out of range")
		}
	}
	if node >= 0 && e.nodes[node].down {
		node = e.nextUp(node)
	}
	if node < 0 {
		st.placed = false
		st.node = -1
		return
	}
	st.node = int32(node)
	st.res.Node = node
}

// nextUp returns the first in-service node at or after n (cyclic), or
// -1 when every node is down.
func (e *engine) nextUp(n int) int {
	for i := 0; i < len(e.nodes); i++ {
		c := (n + i) % len(e.nodes)
		if !e.nodes[c].down {
			return c
		}
	}
	return -1
}

// addResident and removeResident keep the node's resident-memory
// integral exact: the utilization series advances to t at the old
// level before the level changes.
func (s *shard) addResident(ai int32, t float64) {
	e := s.e
	st := &e.states[ai]
	nd := &e.nodes[st.node]
	nd.advance(t, e.horizon)
	nd.residentMB += st.memMB
	if nd.residentMB > nd.stats.PeakResidentMB {
		nd.stats.PeakResidentMB = nd.residentMB
	}
	if e.finite {
		nd.residentCnt++
	}
	st.resident = true
}

func (s *shard) removeResident(ai int32, t float64) {
	e := s.e
	st := &e.states[ai]
	nd := &e.nodes[st.node]
	nd.advance(t, e.horizon)
	nd.residentMB -= st.memMB
	if nd.residentMB < 0 {
		nd.residentMB = 0 // float dust
	}
	if e.finite {
		nd.residentCnt--
	}
	st.resident = false
}

// advance accumulates the node's resident level over [lastT, t),
// clamped at the horizon, into the integral and the per-minute series.
func (nd *nodeState) advance(t, horizon float64) {
	from, to := nd.lastT, t
	if to > horizon {
		to = horizon
	}
	if to > from && nd.residentMB > 0 {
		nd.stats.ResidentMBSeconds += nd.residentMB * (to - from)
		bins := nd.stats.UtilSeries
		for b := int(from / 60); b < len(bins); b++ {
			lo, hi := float64(b)*60, float64(b+1)*60
			if lo < from {
				lo = from
			}
			if hi > to {
				hi = to
			}
			bins[b] += nd.residentMB * (hi - lo)
			if hi >= to {
				break
			}
		}
	}
	if t > nd.lastT {
		nd.lastT = t
	}
}

// Event ordering: (time, kind, app) — reloads before unloads at equal
// times, app index for determinism. The queue realizing the order is
// the timer wheel in wheel.go; per-shard, so the sharded path keeps
// one small queue per worker instead of one global heap.

func eventLess(a, b cevent) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	if a.kind != b.kind {
		return a.kind < b.kind
	}
	return a.app < b.app
}

func (s *shard) pushEvent(ev cevent) { s.q.push(ev) }

// Victim index heap: ordered by (unloadAt, app). Stale entries are
// tolerated and skipped on pop; pushVictim compacts the index when
// stale entries outnumber the live containers, keeping its size
// O(resident) regardless of window churn.

func victimLess(a, b victimEntry) bool {
	if a.unloadAt != b.unloadAt {
		return a.unloadAt < b.unloadAt
	}
	return a.app < b.app
}

func (s *shard) pushVictim(nd *nodeState, ent victimEntry) {
	if len(nd.victims) >= 64 && len(nd.victims) > 3*nd.residentCnt {
		s.compactVictims(nd)
	}
	nd.victims = append(nd.victims, ent)
	i := len(nd.victims) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !victimLess(nd.victims[i], nd.victims[parent]) {
			break
		}
		nd.victims[i], nd.victims[parent] = nd.victims[parent], nd.victims[i]
		i = parent
	}
}

func popVictim(nd *nodeState) {
	n := len(nd.victims) - 1
	nd.victims[0] = nd.victims[n]
	nd.victims = nd.victims[:n]
	siftDownVictim(nd.victims, 0)
}

func siftDownVictim(h []victimEntry, i int) {
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && victimLess(h[l], h[small]) {
			small = l
		}
		if r < n && victimLess(h[r], h[small]) {
			small = r
		}
		if small == i {
			return
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
}

// compactVictims drops stale entries in place and re-heapifies: an
// entry is live iff its app is resident and it is the app's latest.
func (s *shard) compactVictims(nd *nodeState) {
	live := nd.victims[:0]
	for _, ent := range nd.victims {
		st := &s.e.states[ent.app]
		if st.resident && ent.vix == st.vix {
			live = append(live, ent)
		}
	}
	nd.victims = live
	for i := len(live)/2 - 1; i >= 0; i-- {
		siftDownVictim(live, i)
	}
}
