// Package cluster simulates the paper's keep-alive policies on a
// cluster with real capacity: a discrete-event timeline over a set of
// nodes with finite memory, pluggable placement, and memory-pressure
// eviction. It removes the per-app infinite-memory assumption the §5
// simulator inherits from the paper — there, "wasted memory" is an
// after-the-fact metric; here it is a constraint, and an evicted warm
// container turns the next invocation into a cold start the policy
// never predicted.
//
// The per-application decision walk is the shared kernel
// (internal/sim/kernel): idle times and run-length-encoded decisions
// are precomputed per app with exactly the code sim.Simulate uses,
// which is possible because a policy observes arrival gaps, not
// platform actions — an eviction changes warm/cold outcomes and
// memory accounting, never the idle-time sequence the policy sees.
// Consequently an infinite-capacity cluster is bit-identical to
// sim.Simulate, app by app (pinned by golden tests), and every
// difference a finite run shows is attributable to capacity.
//
// The engine is sharded by node. All cluster coupling — pressure,
// eviction, keep-alive expiry, pre-warm reloads — is per-node, so once
// an app's (sticky) node is known its timeline interacts with nothing
// off that node. The coordinator (engine.go) streams decision walks
// just in time — each walk is produced as its node's simulation first
// needs it and released when the node finishes with it, so only
// O(workers × apps-per-node) walks are live at once regardless of
// trace size — and the node-local event core (shard.go) replays one
// node's
// invocations and container events against its own event queue,
// resident accounting and victim index. Placements that never consult
// live residency (the Oblivious contract in placement.go — hash,
// binpack) are pre-assigned up front and node timelines run
// independently, Config.Workers at a time; view-dependent placements
// (least-loaded) run one global shard so their residency reads happen
// in global time order. Both paths are bit-identical — the split
// changes the schedule, never the arithmetic.
//
// Timeline semantics: container events (pre-warm reloads, keep-alive
// expiries) and invocations are processed in per-node time order; at
// equal times reloads run first and expiries last, matching the
// kernel's inclusive warm-window boundaries. A cold load under memory
// pressure evicts idle containers (soonest-to-expire first, never one
// mid-execution) until the app fits; when nothing evictable remains,
// the load fails and the app runs transiently with no residency for
// that window. Cold starts that an infinite-memory run would have
// served warm are attributed to eviction (AppResult.EvictionColdStarts)
// — the scenario class the paper cannot express.
//
// Timed cluster events (Config.Events) inject capacity incidents —
// node failures, drains, joins, resizes — into the timeline; see
// events.go for grammar and semantics. Containers lost to a failed or
// drained node attribute their induced cold starts separately
// (AppResult.FailureColdStarts), so the invariant extends to
// ColdStarts = policy cold starts + EvictionColdStarts +
// FailureColdStarts. Displaced apps are re-placed on surviving nodes
// (the Replacer hook, or a deterministic next-up fallback); because
// re-placement observes live cluster state, event-bearing runs always
// use the sequential global path, and event-free runs are untouched.
package cluster

import (
	"context"

	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Config describes the cluster being simulated.
type Config struct {
	// Nodes is the number of nodes (default 1).
	Nodes int
	// NodeMemMB is the memory capacity of each node in MB; <= 0 means
	// infinite (no eviction — the paper's implicit assumption).
	NodeMemMB float64
	// Placement assigns apps to nodes (default HashPlacement).
	Placement Placement
	// UseExecTime makes invocations occupy their function's average
	// execution time instead of 0 (§3.4 idle-time semantics). A
	// container is not evictable while executing.
	UseExecTime bool
	// DefaultAppMemMB is charged for apps whose MemoryMB is zero
	// (absent from the memory table); default trace.DefaultAppMemoryMB.
	DefaultAppMemMB float64
	// Workers bounds the simulation parallelism (default GOMAXPROCS):
	// per-app decision walks are streamed Workers wide just ahead of
	// the node timelines that consume them, and with an Oblivious
	// placement the per-node timelines run Workers wide too.
	// View-dependent placements (least-loaded) keep the timeline on one
	// sequential global shard. Results never depend on Workers.
	Workers int
	// Events are timed cluster incidents (node fail/drain/join/resize)
	// applied during the run; see ParseEvents for the grammar. A non-
	// empty event list creates cross-node coupling (displaced apps are
	// re-placed against live cluster state), so event-bearing runs
	// always take the sequential global path. Event node indices must
	// be < Nodes.
	Events []Event

	// forceGlobal pins the run to the sequential global shard even for
	// oblivious placements — the reference path the equivalence
	// property tests compare the sharded path against.
	forceGlobal bool
}

// AppResult is the outcome for one application: the batch simulator's
// fields plus the cluster attribution.
type AppResult struct {
	sim.AppResult
	// Node is the hosting node, or -1 if the app never loaded.
	Node int
	// MemoryMB is the memory charged for the app (after defaulting).
	MemoryMB float64
	// Evictions counts this app's warm containers reclaimed under
	// memory pressure.
	Evictions int
	// EvictionColdStarts counts cold starts that an infinite-memory
	// cluster would have served warm: the app's window covered the
	// arrival, but the container had been evicted (or never fit). The
	// remaining ColdStarts - EvictionColdStarts - FailureColdStarts
	// are policy-induced.
	EvictionColdStarts int
	// FailureColdStarts counts cold starts a healthy cluster would
	// have served warm: the window covered the arrival, but the
	// container was lost to a node failure or drain (Config.Events).
	FailureColdStarts int
	// WastedMBSeconds is WastedSeconds weighted by the app's memory
	// (eviction already truncated the underlying window time).
	WastedMBSeconds float64
}

// NodeStats aggregates one node's run.
type NodeStats struct {
	// Evictions counts containers reclaimed on this node.
	Evictions int
	// FailedLoads counts loads abandoned because nothing evictable
	// could make room, plus in-flight executions killed by a node
	// failure (Config.Events).
	FailedLoads int
	// FailureUnloads counts containers this node lost to fail/drain
	// events (zero without Config.Events).
	FailureUnloads int
	// PeakResidentMB is the high-water resident memory.
	PeakResidentMB float64
	// ResidentMBSeconds integrates resident memory over the horizon.
	ResidentMBSeconds float64
	// UtilSeries is the mean resident MB per minute of the horizon —
	// the per-node utilization time series.
	UtilSeries []float64
}

// Result is the outcome of one cluster simulation.
type Result struct {
	Policy         string
	Placement      string
	Nodes          int
	NodeMemMB      float64 // 0 when infinite
	HorizonSeconds float64
	// Apps holds per-app outcomes in trace order.
	Apps []AppResult
	// NodeStats holds per-node aggregates.
	NodeStats []NodeStats
}

// Sink consumes per-app cluster outcomes in trace order (the cluster
// counterpart of sim.ResultSink, carrying the eviction attribution).
type Sink interface {
	Consume(index int, r AppResult)
}

// runCfg is the resolved option set of one Run call.
type runCfg struct {
	sinks  []sim.ResultSink
	csinks []Sink
}

// Option configures Run.
type Option func(*runCfg)

// WithSink attaches a sim.ResultSink: the streaming aggregates built
// for sim.Run (cold-start distributions, wasted-memory totals)
// consume a cluster run unchanged, fed the embedded sim.AppResult per
// app in trace order.
func WithSink(s sim.ResultSink) Option {
	return func(c *runCfg) { c.sinks = append(c.sinks, s) }
}

// WithClusterSink attaches a cluster-aware sink receiving the full
// AppResult (eviction attribution included).
func WithClusterSink(s Sink) Option {
	return func(c *runCfg) { c.csinks = append(c.csinks, s) }
}

// Simulate runs pol over tr on the configured cluster. Invalid
// configurations (an event targeting a node outside the cluster)
// panic; Run returns them as errors instead.
func Simulate(tr *trace.Trace, pol policy.Policy, cfg Config) *Result {
	res, err := simulate(context.Background(), tr, pol, cfg)
	if err != nil {
		panic(err)
	}
	return res
}

// Run is the source- and sink-plumbed entry point: src is materialized
// (the timeline needs the whole workload to order events globally —
// cluster runs are O(apps) memory, unlike sim.Run's streaming path),
// the cluster is simulated under ctx, and per-app outcomes are drained
// to the sinks in trace order. The *Result is always returned.
func Run(ctx context.Context, src trace.Source, pol policy.Policy, cfg Config, opts ...Option) (*Result, error) {
	var rc runCfg
	for _, o := range opts {
		o(&rc)
	}
	tr, err := materialize(src)
	if err != nil {
		return nil, err
	}
	res, err := simulate(ctx, tr, pol, cfg)
	if err != nil {
		return nil, err
	}
	info := sim.RunInfo{Policy: res.Policy, HorizonSeconds: res.HorizonSeconds}
	for _, s := range rc.sinks {
		if st, ok := s.(sim.RunStarter); ok {
			st.Begin(info)
		}
	}
	for i, a := range res.Apps {
		for _, s := range rc.sinks {
			s.Consume(i, a.AppResult)
		}
		for _, s := range rc.csinks {
			s.Consume(i, a)
		}
	}
	return res, nil
}

// materialize recovers the in-memory trace behind src without
// re-walking consumed apps (the trace.BatchTrace contract sim.Run
// also uses), collecting streaming sources fully.
func materialize(src trace.Source) (*trace.Trace, error) {
	if tr := trace.BatchTrace(src); tr != nil {
		return tr, nil
	}
	return trace.Collect(src)
}

// Result helpers.

// TotalColdStarts sums cold starts across apps.
func (r *Result) TotalColdStarts() int {
	var sum int
	for _, a := range r.Apps {
		sum += a.ColdStarts
	}
	return sum
}

// TotalEvictionColdStarts sums the eviction-induced cold starts.
func (r *Result) TotalEvictionColdStarts() int {
	var sum int
	for _, a := range r.Apps {
		sum += a.EvictionColdStarts
	}
	return sum
}

// TotalFailureColdStarts sums the failure-induced cold starts.
func (r *Result) TotalFailureColdStarts() int {
	var sum int
	for _, a := range r.Apps {
		sum += a.FailureColdStarts
	}
	return sum
}

// TotalEvictions sums container evictions across apps.
func (r *Result) TotalEvictions() int {
	var sum int
	for _, a := range r.Apps {
		sum += a.Evictions
	}
	return sum
}

// TotalInvocations sums invocations across apps.
func (r *Result) TotalInvocations() int {
	var sum int
	for _, a := range r.Apps {
		sum += a.Invocations
	}
	return sum
}

// TotalWastedSeconds sums wasted memory time across apps.
func (r *Result) TotalWastedSeconds() float64 {
	var sum float64
	for _, a := range r.Apps {
		sum += a.WastedSeconds
	}
	return sum
}

// TotalWastedMBSeconds sums memory-weighted waste across apps.
func (r *Result) TotalWastedMBSeconds() float64 {
	var sum float64
	for _, a := range r.Apps {
		sum += a.WastedMBSeconds
	}
	return sum
}

// SimResult projects the cluster outcome onto the batch simulator's
// result type (trace order preserved), so every batch metric — CDFs,
// third-quartile cold percentage, Pareto frontiers — reads a cluster
// run unchanged.
func (r *Result) SimResult() *sim.Result {
	out := &sim.Result{Policy: r.Policy, HorizonSeconds: r.HorizonSeconds}
	out.Apps = make([]sim.AppResult, len(r.Apps))
	for i, a := range r.Apps {
		out.Apps[i] = a.AppResult
	}
	return out
}
