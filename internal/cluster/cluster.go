// Package cluster simulates the paper's keep-alive policies on a
// cluster with real capacity: a discrete-event timeline over a set of
// nodes with finite memory, pluggable placement, and memory-pressure
// eviction. It removes the per-app infinite-memory assumption the §5
// simulator inherits from the paper — there, "wasted memory" is an
// after-the-fact metric; here it is a constraint, and an evicted warm
// container turns the next invocation into a cold start the policy
// never predicted.
//
// The per-application decision walk is the shared kernel
// (internal/sim/kernel): idle times and run-length-encoded decisions
// are precomputed per app with exactly the code sim.Simulate uses,
// which is possible because a policy observes arrival gaps, not
// platform actions — an eviction changes warm/cold outcomes and
// memory accounting, never the idle-time sequence the policy sees.
// Consequently an infinite-capacity cluster is bit-identical to
// sim.Simulate, app by app (pinned by golden tests), and every
// difference a finite run shows is attributable to capacity.
//
// Timeline semantics: container events (pre-warm reloads, keep-alive
// expiries) and invocations are processed in global time order; at
// equal times reloads run first and expiries last, matching the
// kernel's inclusive warm-window boundaries. A cold load under memory
// pressure evicts idle containers (soonest-to-expire first, never one
// mid-execution) until the app fits; when nothing evictable remains,
// the load fails and the app runs transiently with no residency for
// that window. Cold starts that an infinite-memory run would have
// served warm are attributed to eviction (AppResult.EvictionColdStarts)
// — the scenario class the paper cannot express.
package cluster

import (
	"context"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/sim/kernel"
	"repro/internal/trace"
)

// Config describes the cluster being simulated.
type Config struct {
	// Nodes is the number of nodes (default 1).
	Nodes int
	// NodeMemMB is the memory capacity of each node in MB; <= 0 means
	// infinite (no eviction — the paper's implicit assumption).
	NodeMemMB float64
	// Placement assigns apps to nodes (default HashPlacement).
	Placement Placement
	// UseExecTime makes invocations occupy their function's average
	// execution time instead of 0 (§3.4 idle-time semantics). A
	// container is not evictable while executing.
	UseExecTime bool
	// DefaultAppMemMB is charged for apps whose MemoryMB is zero
	// (absent from the memory table); default trace.DefaultAppMemoryMB.
	DefaultAppMemMB float64
	// Workers bounds the parallelism of the per-app decision
	// precompute (default GOMAXPROCS). The timeline itself is
	// sequential — cross-app memory pressure orders all events.
	Workers int
}

// AppResult is the outcome for one application: the batch simulator's
// fields plus the cluster attribution.
type AppResult struct {
	sim.AppResult
	// Node is the hosting node, or -1 if the app never loaded.
	Node int
	// MemoryMB is the memory charged for the app (after defaulting).
	MemoryMB float64
	// Evictions counts this app's warm containers reclaimed under
	// memory pressure.
	Evictions int
	// EvictionColdStarts counts cold starts that an infinite-memory
	// cluster would have served warm: the app's window covered the
	// arrival, but the container had been evicted (or never fit). The
	// remaining ColdStarts - EvictionColdStarts are policy-induced.
	EvictionColdStarts int
	// WastedMBSeconds is WastedSeconds weighted by the app's memory
	// (eviction already truncated the underlying window time).
	WastedMBSeconds float64
}

// NodeStats aggregates one node's run.
type NodeStats struct {
	// Evictions counts containers reclaimed on this node.
	Evictions int
	// FailedLoads counts loads abandoned because nothing evictable
	// could make room.
	FailedLoads int
	// PeakResidentMB is the high-water resident memory.
	PeakResidentMB float64
	// ResidentMBSeconds integrates resident memory over the horizon.
	ResidentMBSeconds float64
	// UtilSeries is the mean resident MB per minute of the horizon —
	// the per-node utilization time series.
	UtilSeries []float64
}

// Result is the outcome of one cluster simulation.
type Result struct {
	Policy         string
	Placement      string
	Nodes          int
	NodeMemMB      float64 // 0 when infinite
	HorizonSeconds float64
	// Apps holds per-app outcomes in trace order.
	Apps []AppResult
	// NodeStats holds per-node aggregates.
	NodeStats []NodeStats
}

// Sink consumes per-app cluster outcomes in trace order (the cluster
// counterpart of sim.ResultSink, carrying the eviction attribution).
type Sink interface {
	Consume(index int, r AppResult)
}

// runCfg is the resolved option set of one Run call.
type runCfg struct {
	sinks  []sim.ResultSink
	csinks []Sink
}

// Option configures Run.
type Option func(*runCfg)

// WithSink attaches a sim.ResultSink: the streaming aggregates built
// for sim.Run (cold-start distributions, wasted-memory totals)
// consume a cluster run unchanged, fed the embedded sim.AppResult per
// app in trace order.
func WithSink(s sim.ResultSink) Option {
	return func(c *runCfg) { c.sinks = append(c.sinks, s) }
}

// WithClusterSink attaches a cluster-aware sink receiving the full
// AppResult (eviction attribution included).
func WithClusterSink(s Sink) Option {
	return func(c *runCfg) { c.csinks = append(c.csinks, s) }
}

// Simulate runs pol over tr on the configured cluster.
func Simulate(tr *trace.Trace, pol policy.Policy, cfg Config) *Result {
	res, err := simulate(context.Background(), tr, pol, cfg)
	if err != nil {
		// Only cancellation errors exist, and the context cannot fire.
		panic(err)
	}
	return res
}

// Run is the source- and sink-plumbed entry point: src is materialized
// (the timeline needs the whole workload to order events globally —
// cluster runs are O(apps) memory, unlike sim.Run's streaming path),
// the cluster is simulated under ctx, and per-app outcomes are drained
// to the sinks in trace order. The *Result is always returned.
func Run(ctx context.Context, src trace.Source, pol policy.Policy, cfg Config, opts ...Option) (*Result, error) {
	var rc runCfg
	for _, o := range opts {
		o(&rc)
	}
	tr, err := materialize(src)
	if err != nil {
		return nil, err
	}
	res, err := simulate(ctx, tr, pol, cfg)
	if err != nil {
		return nil, err
	}
	info := sim.RunInfo{Policy: res.Policy, HorizonSeconds: res.HorizonSeconds}
	for _, s := range rc.sinks {
		if st, ok := s.(sim.RunStarter); ok {
			st.Begin(info)
		}
	}
	for i, a := range res.Apps {
		for _, s := range rc.sinks {
			s.Consume(i, a.AppResult)
		}
		for _, s := range rc.csinks {
			s.Consume(i, a)
		}
	}
	return res, nil
}

// materialize recovers the in-memory trace behind src without
// re-walking consumed apps (the trace.BatchTrace contract sim.Run
// also uses), collecting streaming sources fully.
func materialize(src trace.Source) (*trace.Trace, error) {
	if tr := trace.BatchTrace(src); tr != nil {
		return tr, nil
	}
	return trace.Collect(src)
}

// Event kinds, in processing order at equal times: pre-warm reloads
// first (an arrival exactly at the reload is warm), invocations, then
// keep-alive expiries last (an arrival exactly at the window end is
// warm) — the event order realizes kernel.Classify's inclusive
// boundaries.
const (
	evReload = iota
	evInvoke // implicit: the merged invocation stream, never heaped
	evUnload
)

// cevent is one timed container event (reload or unload), invalidated
// lazily by the owning app's window generation.
type cevent struct {
	t    float64
	kind uint8
	app  int32
	gen  uint32
}

// appWalk is an app's precomputed decision walk (the shared kernel's
// output): invocation times, exec times, and RLE decisions.
type appWalk struct {
	times []float64
	execs []float64 // nil without exec times
	runs  []policy.DecisionRun
}

// appState is one app's runtime state on the timeline.
type appState struct {
	cur     kernel.RunCursor
	res     AppResult
	memMB   float64
	prevEnd float64 // end of the last execution
	execEnd float64 // container unevictable before this
	inv     int     // next invocation index
	node    int32
	gen     uint32 // current window generation (event invalidation)
	// Current window residency.
	resident bool
	dead     bool    // evicted or load-failed: cold next arrival
	loadedAt float64 // start of the idle-loaded segment
	unloadAt float64 // scheduled expiry (+Inf for forever)
	placed   bool
}

// nodeState is one node's runtime state.
type nodeState struct {
	residentMB float64
	lastT      float64
	resident   map[int32]struct{}
	stats      NodeStats
}

// engine is one cluster simulation in flight.
type engine struct {
	cfg     Config
	capMB   float64 // +Inf when infinite
	finite  bool    // eviction candidates tracked only under pressure
	horizon float64
	place   Placement
	walks   []appWalk
	states  []appState
	nodes   []nodeState
	invs    []inv
	heap    []cevent
}

// inv is one invocation in the merged global stream.
type inv struct {
	t   float64
	app int32
}

func simulate(ctx context.Context, tr *trace.Trace, pol policy.Policy, cfg Config) (*Result, error) {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 1
	}
	if cfg.Placement == nil {
		cfg.Placement = HashPlacement{}
	}
	if cfg.DefaultAppMemMB <= 0 {
		cfg.DefaultAppMemMB = trace.DefaultAppMemoryMB
	}
	capMB := cfg.NodeMemMB
	if capMB <= 0 {
		capMB = math.Inf(1)
	}

	e := &engine{
		cfg:     cfg,
		capMB:   capMB,
		finite:  !math.IsInf(capMB, 1),
		horizon: tr.Duration.Seconds(),
		place:   cfg.Placement,
	}
	walks, err := precompute(ctx, tr, pol, cfg)
	if err != nil {
		return nil, err
	}
	e.walks = walks
	e.init(tr)
	if err := e.timeline(ctx); err != nil {
		return nil, err
	}
	return e.finish(tr, pol.Name()), nil
}

// precompute runs the shared kernel over every app in parallel: idle
// times, batch decisions (released back to the policy pool), and exec
// times, copied out of the per-worker scratch.
func precompute(ctx context.Context, tr *trace.Trace, pol policy.Policy, cfg Config) ([]appWalk, error) {
	n := len(tr.Apps)
	walks := make([]appWalk, n)
	if n == 0 {
		return walks, ctx.Err()
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sc kernel.Scratch
			for {
				if ctx.Err() != nil {
					return
				}
				i := int(next.Add(1) - 1)
				if i >= n {
					return
				}
				app := tr.Apps[i]
				times := app.InvocationTimes()
				wk := appWalk{times: times}
				if len(times) > 0 {
					if cfg.UseExecTime {
						wk.execs = append([]float64(nil), sc.ExecSeconds(app)...)
					}
					ap := pol.NewApp(app.ID)
					idles := sc.IdleTimes(times, wk.execs)
					wk.runs = append([]policy.DecisionRun(nil), sc.DecideRuns(ap, idles)...)
					if rel, ok := ap.(policy.Releasable); ok {
						rel.Release()
					}
				}
				walks[i] = wk
			}
		}()
	}
	wg.Wait()
	return walks, ctx.Err()
}

// init builds the runtime state: per-app states, nodes, the merged
// invocation stream, and the offline placement preparation.
func (e *engine) init(tr *trace.Trace) {
	n := len(tr.Apps)
	e.states = make([]appState, n)
	total := 0
	var fps []Footprint
	if _, ok := e.place.(TracePreparer); ok {
		fps = make([]Footprint, 0, n)
	}
	for i, app := range tr.Apps {
		st := &e.states[i]
		st.memMB = app.MemoryMB
		if st.memMB <= 0 {
			st.memMB = e.cfg.DefaultAppMemMB
		}
		st.node = -1
		st.res = AppResult{
			AppResult: sim.AppResult{AppID: app.ID, Invocations: len(e.walks[i].times)},
			Node:      -1,
			MemoryMB:  st.memMB,
		}
		st.cur.Reset(e.walks[i].runs)
		total += len(e.walks[i].times)
		if fps != nil {
			fps = append(fps, Footprint{ID: app.ID, MemMB: st.memMB, Invocations: len(e.walks[i].times)})
		}
	}
	if fps != nil {
		e.place.(TracePreparer).Prepare(fps, e.cfg.Nodes, e.capMB)
	}

	minutes := int(math.Ceil(e.horizon / 60))
	if minutes < 1 && e.horizon > 0 {
		minutes = 1
	}
	e.nodes = make([]nodeState, e.cfg.Nodes)
	for i := range e.nodes {
		e.nodes[i].resident = make(map[int32]struct{})
		e.nodes[i].stats.UtilSeries = make([]float64, minutes)
	}

	e.invs = make([]inv, 0, total)
	for ai, wk := range e.walks {
		for _, t := range wk.times {
			e.invs = append(e.invs, inv{t: t, app: int32(ai)})
		}
	}
	sort.Slice(e.invs, func(a, b int) bool {
		if e.invs[a].t != e.invs[b].t {
			return e.invs[a].t < e.invs[b].t
		}
		return e.invs[a].app < e.invs[b].app
	})
}

// timeline is the discrete-event loop: the merged invocation stream
// and the container-event heap advance together in time order.
func (e *engine) timeline(ctx context.Context) error {
	ii := 0
	for steps := 0; ii < len(e.invs) || len(e.heap) > 0; steps++ {
		if steps&4095 == 4095 && ctx.Err() != nil {
			return ctx.Err()
		}
		if len(e.heap) > 0 {
			ev := e.heap[0]
			if ii >= len(e.invs) || ev.t < e.invs[ii].t ||
				(ev.t == e.invs[ii].t && ev.kind == evReload) {
				e.popEvent()
				st := &e.states[ev.app]
				if ev.gen != st.gen {
					continue // superseded window
				}
				switch ev.kind {
				case evUnload:
					if st.resident {
						e.removeResident(ev.app, ev.t)
					}
				case evReload:
					e.reload(ev.app, ev.t)
				}
				continue
			}
		}
		in := e.invs[ii]
		ii++
		e.invoke(in.app, in.t)
	}
	return nil
}

// invoke processes one arrival: classify against the previous window
// (eviction overrides the nominal outcome), load on cold, advance the
// decision cursor, and schedule the next window.
func (e *engine) invoke(ai int32, t float64) {
	st := &e.states[ai]
	wk := &e.walks[ai]
	i := st.inv
	st.inv++

	warm := false
	if i == 0 {
		st.res.ColdStarts = 1 // the first invocation is always cold (§5.1)
	} else {
		nomWarm, wasted := kernel.Classify(st.cur.D, st.cur.PwSec, st.cur.KaSec, st.prevEnd, t)
		if st.dead {
			// The warm container was evicted (or never fit): the
			// arrival is cold regardless of the window; its truncated
			// waste was booked at eviction time.
			st.res.ColdStarts++
			if nomWarm {
				st.res.EvictionColdStarts++
			}
		} else {
			warm = nomWarm
			if !warm {
				st.res.ColdStarts++
			}
			st.res.WastedSeconds += wasted
		}
	}
	st.dead = false
	st.gen++ // retire the previous window's pending events

	// A warm hit continues the resident container. A cold start loads
	// now — unless the container is still in memory (overlapping
	// executions, or a pre-warm gap arrival at the exact unload
	// instant), in which case the memory never left.
	if !warm && !st.resident {
		if !e.load(ai, t) {
			st.dead = true // transient execution, no residency this window
		}
	}

	// Advance to the decision governing this invocation, then open its
	// window from the execution end.
	st.cur.Step(&st.res.ModeCounts)
	st.prevEnd = t
	if wk.execs != nil {
		st.prevEnd += wk.execs[i]
	}
	if st.prevEnd > st.execEnd {
		st.execEnd = st.prevEnd
	}
	if !st.dead {
		e.schedule(ai)
	}
}

// schedule opens the window st.cur.D prescribes after the execution
// ending at st.prevEnd: residency plan, expiry events, pre-warm
// reloads.
func (e *engine) schedule(ai int32) {
	st := &e.states[ai]
	d := st.cur.D
	switch {
	case d.Forever:
		st.loadedAt = st.prevEnd
		st.unloadAt = math.Inf(1)
	case d.PreWarm == 0:
		st.loadedAt = st.prevEnd
		st.unloadAt = st.prevEnd + st.cur.KaSec
		if st.unloadAt < e.horizon {
			e.pushEvent(cevent{t: st.unloadAt, kind: evUnload, app: ai, gen: st.gen})
		}
	default:
		// Pre-warmed window: unload at execution end, reload PreWarm
		// later (the reload event re-checks memory pressure).
		if st.prevEnd <= e.walks[ai].times[st.inv-1] {
			// Zero execution time: the unload is immediate.
			if st.resident {
				e.removeResident(ai, st.prevEnd)
			}
		} else {
			st.unloadAt = st.prevEnd
			if st.prevEnd < e.horizon {
				e.pushEvent(cevent{t: st.prevEnd, kind: evUnload, app: ai, gen: st.gen})
			}
		}
		if loadAt := st.prevEnd + st.cur.PwSec; loadAt < e.horizon {
			e.pushEvent(cevent{t: loadAt, kind: evReload, app: ai, gen: st.gen})
		}
	}
}

// reload serves a pre-warm: the container comes back under the same
// window, pressure permitting.
func (e *engine) reload(ai int32, t float64) {
	st := &e.states[ai]
	if st.resident || st.dead {
		return
	}
	if !e.load(ai, t) {
		st.dead = true
		return
	}
	st.loadedAt = t
	st.unloadAt = t + st.cur.KaSec
	if st.unloadAt < e.horizon {
		e.pushEvent(cevent{t: st.unloadAt, kind: evUnload, app: ai, gen: st.gen})
	}
}

// load makes the app resident on its node at time t, evicting idle
// containers (soonest-to-expire first) until it fits. It reports
// whether the load succeeded.
func (e *engine) load(ai int32, t float64) bool {
	st := &e.states[ai]
	if !st.placed {
		st.placed = true
		app := Footprint{ID: st.res.AppID, MemMB: st.memMB, Invocations: st.res.Invocations}
		node := e.place.Place(app, e)
		if node < 0 || node >= len(e.nodes) {
			panic("cluster: placement returned node out of range")
		}
		st.node = int32(node)
		st.res.Node = node
	}
	nd := &e.nodes[st.node]
	if st.memMB > e.capMB {
		// Larger than a whole node: can never be resident.
		nd.stats.FailedLoads++
		return false
	}
	for nd.residentMB+st.memMB > e.capMB {
		victim := e.pickVictim(nd, t)
		if victim < 0 {
			nd.stats.FailedLoads++
			return false
		}
		e.evict(victim, t)
	}
	e.addResident(ai, t)
	return true
}

// pickVictim selects the idle resident container closest to its own
// expiry (ties to the lowest app index) — the cheapest reclaim, since
// its remaining keep-alive had the least predicted value. Containers
// mid-execution are never victims. Returns -1 when nothing is
// evictable.
func (e *engine) pickVictim(nd *nodeState, t float64) int32 {
	best := int32(-1)
	var bestAt float64
	for ai := range nd.resident {
		st := &e.states[ai]
		if st.execEnd > t {
			continue // executing
		}
		if best < 0 || st.unloadAt < bestAt || (st.unloadAt == bestAt && ai < best) {
			best, bestAt = ai, st.unloadAt
		}
	}
	return best
}

// evict reclaims one idle container under pressure at time t: its
// loaded-but-idle time so far is booked (the window's waste is
// truncated, not the nominal full keep-alive), and the window dies —
// the app's next arrival is cold.
func (e *engine) evict(ai int32, t float64) {
	st := &e.states[ai]
	st.res.WastedSeconds += t - st.loadedAt
	st.res.Evictions++
	e.nodes[st.node].stats.Evictions++
	st.dead = true
	st.gen++ // retire the window's pending events
	e.removeResident(ai, t)
}

// addResident and removeResident keep the node's resident-memory
// integral exact: the utilization series advances to t at the old
// level before the level changes.
func (e *engine) addResident(ai int32, t float64) {
	st := &e.states[ai]
	nd := &e.nodes[st.node]
	nd.advance(t, e.horizon)
	nd.residentMB += st.memMB
	if nd.residentMB > nd.stats.PeakResidentMB {
		nd.stats.PeakResidentMB = nd.residentMB
	}
	if e.finite {
		// The victim set only matters under pressure; an infinite
		// cluster skips the per-window map churn.
		nd.resident[ai] = struct{}{}
	}
	st.resident = true
}

func (e *engine) removeResident(ai int32, t float64) {
	st := &e.states[ai]
	nd := &e.nodes[st.node]
	nd.advance(t, e.horizon)
	nd.residentMB -= st.memMB
	if nd.residentMB < 0 {
		nd.residentMB = 0 // float dust
	}
	if e.finite {
		delete(nd.resident, ai)
	}
	st.resident = false
}

// advance accumulates the node's resident level over [lastT, t),
// clamped at the horizon, into the integral and the per-minute series.
func (nd *nodeState) advance(t, horizon float64) {
	from, to := nd.lastT, t
	if to > horizon {
		to = horizon
	}
	if to > from && nd.residentMB > 0 {
		nd.stats.ResidentMBSeconds += nd.residentMB * (to - from)
		bins := nd.stats.UtilSeries
		for b := int(from / 60); b < len(bins); b++ {
			lo, hi := float64(b)*60, float64(b+1)*60
			if lo < from {
				lo = from
			}
			if hi > to {
				hi = to
			}
			bins[b] += nd.residentMB * (hi - lo)
			if hi >= to {
				break
			}
		}
	}
	if t > nd.lastT {
		nd.lastT = t
	}
}

// finish books trailing windows, flushes node integrals to the
// horizon, and assembles the Result.
func (e *engine) finish(tr *trace.Trace, polName string) *Result {
	res := &Result{
		Policy:         polName,
		Placement:      e.place.Name(),
		Nodes:          e.cfg.Nodes,
		NodeMemMB:      e.cfg.NodeMemMB,
		HorizonSeconds: e.horizon,
		Apps:           make([]AppResult, len(e.states)),
		NodeStats:      make([]NodeStats, len(e.nodes)),
	}
	if res.NodeMemMB < 0 {
		res.NodeMemMB = 0
	}
	for i := range e.states {
		st := &e.states[i]
		if st.res.Invocations > 0 && !st.dead {
			st.res.WastedSeconds += kernel.TrailingWaste(
				st.cur.D, st.cur.PwSec, st.cur.KaSec, st.prevEnd, e.horizon)
		}
		st.res.WastedMBSeconds = st.res.WastedSeconds * st.memMB
		res.Apps[i] = st.res
	}
	for i := range e.nodes {
		nd := &e.nodes[i]
		nd.advance(e.horizon, e.horizon)
		// Normalize the series from MB·s to mean MB per bin (the last
		// bin may cover less than a minute).
		for b := range nd.stats.UtilSeries {
			width := math.Min(60, e.horizon-float64(b)*60)
			if width > 0 {
				nd.stats.UtilSeries[b] /= width
			}
		}
		res.NodeStats[i] = nd.stats
	}
	return res
}

// View implementation (placement decisions observe the live engine).

// NumNodes implements View.
func (e *engine) NumNodes() int { return len(e.nodes) }

// CapacityMB implements View.
func (e *engine) CapacityMB() float64 { return e.capMB }

// ResidentMB implements View.
func (e *engine) ResidentMB(node int) float64 { return e.nodes[node].residentMB }

// Event heap: ordered by (time, kind, app) — reloads before unloads
// at equal times, app index for determinism.

func eventLess(a, b cevent) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	if a.kind != b.kind {
		return a.kind < b.kind
	}
	return a.app < b.app
}

func (e *engine) pushEvent(ev cevent) {
	e.heap = append(e.heap, ev)
	i := len(e.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !eventLess(e.heap[i], e.heap[parent]) {
			break
		}
		e.heap[i], e.heap[parent] = e.heap[parent], e.heap[i]
		i = parent
	}
}

func (e *engine) popEvent() {
	n := len(e.heap) - 1
	e.heap[0] = e.heap[n]
	e.heap = e.heap[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && eventLess(e.heap[l], e.heap[small]) {
			small = l
		}
		if r < n && eventLess(e.heap[r], e.heap[small]) {
			small = r
		}
		if small == i {
			return
		}
		e.heap[i], e.heap[small] = e.heap[small], e.heap[i]
		i = small
	}
}

// Result helpers.

// TotalColdStarts sums cold starts across apps.
func (r *Result) TotalColdStarts() int {
	var sum int
	for _, a := range r.Apps {
		sum += a.ColdStarts
	}
	return sum
}

// TotalEvictionColdStarts sums the eviction-induced cold starts.
func (r *Result) TotalEvictionColdStarts() int {
	var sum int
	for _, a := range r.Apps {
		sum += a.EvictionColdStarts
	}
	return sum
}

// TotalEvictions sums container evictions across apps.
func (r *Result) TotalEvictions() int {
	var sum int
	for _, a := range r.Apps {
		sum += a.Evictions
	}
	return sum
}

// TotalInvocations sums invocations across apps.
func (r *Result) TotalInvocations() int {
	var sum int
	for _, a := range r.Apps {
		sum += a.Invocations
	}
	return sum
}

// TotalWastedSeconds sums wasted memory time across apps.
func (r *Result) TotalWastedSeconds() float64 {
	var sum float64
	for _, a := range r.Apps {
		sum += a.WastedSeconds
	}
	return sum
}

// TotalWastedMBSeconds sums memory-weighted waste across apps.
func (r *Result) TotalWastedMBSeconds() float64 {
	var sum float64
	for _, a := range r.Apps {
		sum += a.WastedMBSeconds
	}
	return sum
}

// SimResult projects the cluster outcome onto the batch simulator's
// result type (trace order preserved), so every batch metric — CDFs,
// third-quartile cold percentage, Pareto frontiers — reads a cluster
// run unchanged.
func (r *Result) SimResult() *sim.Result {
	out := &sim.Result{Policy: r.Policy, HorizonSeconds: r.HorizonSeconds}
	out.Apps = make([]sim.AppResult, len(r.Apps))
	for i, a := range r.Apps {
		out.Apps[i] = a.AppResult
	}
	return out
}
