package cluster

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/policy"
	"repro/internal/trace"
)

// fakeView is a placement test double; a nil down slice means every
// node is in service.
type fakeView struct {
	cap  float64
	mbs  []float64
	down []bool
}

func (v fakeView) NumNodes() int               { return len(v.mbs) }
func (v fakeView) CapacityMB() float64         { return v.cap }
func (v fakeView) ResidentMB(node int) float64 { return v.mbs[node] }
func (v fakeView) Up(node int) bool            { return v.down == nil || !v.down[node] }

func TestHashPlacementDeterministicAndSpread(t *testing.T) {
	view := fakeView{cap: 1024, mbs: make([]float64, 8)}
	counts := make([]int, 8)
	for i := 0; i < 400; i++ {
		app := Footprint{ID: fmt.Sprintf("app-%d", i)}
		n := HashPlacement{}.Place(app, view)
		if n2 := (HashPlacement{}).Place(app, view); n2 != n {
			t.Fatalf("hash placement not deterministic for %s: %d then %d", app.ID, n, n2)
		}
		counts[n]++
	}
	for n, c := range counts {
		if c == 0 {
			t.Errorf("node %d received no apps from 400 hashed placements", n)
		}
	}
}

func TestLeastLoadedPlacement(t *testing.T) {
	view := fakeView{cap: 1024, mbs: []float64{300, 100, 100, 500}}
	// Ties resolve to the lowest index.
	if n := (LeastLoadedPlacement{}).Place(Footprint{ID: "x"}, view); n != 1 {
		t.Fatalf("placed on node %d, want 1 (least loaded, lowest index)", n)
	}
}

func TestBinPackLargestFirst(t *testing.T) {
	var p BinPackPlacement
	apps := []Footprint{
		{ID: "small-1", MemMB: 100},
		{ID: "big", MemMB: 900},
		{ID: "mid", MemMB: 600},
		{ID: "small-2", MemMB: 100},
	}
	p.Prepare(apps, 2, 1000)
	view := fakeView{cap: 1000, mbs: make([]float64, 2)}
	// Largest-first: big(900)→node0, mid(600)→node1 (doesn't fit with
	// big), small-1(100)→node0 (fits: 900+100), small-2(100)→node1.
	want := map[string]int{"big": 0, "mid": 1, "small-1": 0, "small-2": 1}
	for id, wantNode := range want {
		if n := p.Place(Footprint{ID: id}, view); n != wantNode {
			t.Errorf("%s placed on node %d, want %d", id, n, wantNode)
		}
	}
	// Unknown apps fall back to hashing, in range.
	if n := p.Place(Footprint{ID: "unknown"}, view); n < 0 || n > 1 {
		t.Errorf("unknown app placed out of range: %d", n)
	}
}

func TestBinPackSpillsToLeastAssigned(t *testing.T) {
	var p BinPackPlacement
	apps := []Footprint{
		{ID: "a", MemMB: 800},
		{ID: "b", MemMB: 800},
		{ID: "c", MemMB: 800},
	}
	p.Prepare(apps, 2, 1000)
	view := fakeView{cap: 1000, mbs: make([]float64, 2)}
	na, nb := p.Place(Footprint{ID: "a"}, view), p.Place(Footprint{ID: "b"}, view)
	if na == nb {
		t.Fatalf("a and b share node %d; first-fit should separate them", na)
	}
	// c fits nowhere statically; it spills to some node (deterministic).
	if n := p.Place(Footprint{ID: "c"}, view); n != p.Place(Footprint{ID: "c"}, view) {
		t.Fatal("spill placement not deterministic")
	}
}

// TestPlacementRegistry exercises the spec path used by coldsim.
func TestPlacementRegistry(t *testing.T) {
	names := PlacementNames()
	want := []string{"binpack", "hash", "least-loaded"}
	if len(names) != len(want) {
		t.Fatalf("registered %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("registered %v, want %v", names, want)
		}
	}
	for _, n := range want {
		p, err := NewPlacement(n)
		if err != nil {
			t.Fatalf("NewPlacement(%s): %v", n, err)
		}
		if p.Name() != n {
			t.Errorf("placement %q reports name %q", n, p.Name())
		}
	}
	if _, err := NewPlacement("nope"); err == nil {
		t.Fatal("unknown placement accepted")
	}
}

// TestPlacementSticky: an app keeps its node across evictions and
// reloads (least-loaded would otherwise migrate on every cold start).
func TestPlacementSticky(t *testing.T) {
	appA := &trace.App{ID: "a", MemoryMB: 150, Functions: []*trace.Function{
		{ID: "fa", Invocations: []float64{0, 200, 400, 600, 800}},
	}}
	appB := &trace.App{ID: "b", MemoryMB: 150, Functions: []*trace.Function{
		{ID: "fb", Invocations: []float64{100, 300, 500, 700}},
	}}
	tr := &trace.Trace{Duration: 1000 * time.Second, Apps: []*trace.App{appA, appB}}
	res := Simulate(tr, policy.FixedKeepAlive{KeepAlive: 600 * time.Second},
		Config{Nodes: 1, NodeMemMB: 200, Placement: LeastLoadedPlacement{}})
	for _, a := range res.Apps {
		if a.Node != 0 {
			t.Errorf("app %s on node %d, want 0", a.AppID, a.Node)
		}
	}
	if res.Apps[0].Evictions == 0 {
		t.Fatal("expected ping-pong evictions")
	}
}

// TestObliviousMarks pins which built-in placements advertise the
// oblivious contract (and so take the parallel per-node path).
func TestObliviousMarks(t *testing.T) {
	for _, tc := range []struct {
		place     Placement
		oblivious bool
	}{
		{HashPlacement{}, true},
		{HashPlacement{Seed: 3}, true},
		{&BinPackPlacement{}, true},
		{&BinPackPlacement{Order: BinPackByInvocations}, true},
		{LeastLoadedPlacement{}, false},
	} {
		o, ok := tc.place.(Oblivious)
		got := ok && o.Oblivious()
		if got != tc.oblivious {
			t.Errorf("%s: oblivious=%v, want %v", tc.place.Name(), got, tc.oblivious)
		}
	}
}

// lyingPlacement claims obliviousness but reads live residency — the
// contract violation the pre-assignment view must catch.
type lyingPlacement struct{}

func (lyingPlacement) Name() string    { return "lying" }
func (lyingPlacement) Oblivious() bool { return true }
func (lyingPlacement) Place(app Footprint, view View) int {
	_ = view.ResidentMB(0)
	return 0
}

// TestObliviousContractEnforced: a placement that reports Oblivious()
// but consults View.ResidentMB fails loudly during pre-assignment
// instead of silently diverging on the parallel path.
func TestObliviousContractEnforced(t *testing.T) {
	tr := &trace.Trace{Duration: 100 * time.Second, Apps: []*trace.App{
		{ID: "a", MemoryMB: 64, Functions: []*trace.Function{{ID: "f", Invocations: []float64{0}}}},
	}}
	defer func() {
		if recover() == nil {
			t.Fatal("expected a panic from the static pre-assignment view")
		}
	}()
	Simulate(tr, policy.FixedKeepAlive{KeepAlive: time.Minute},
		Config{Nodes: 2, NodeMemMB: 512, Placement: lyingPlacement{}})
}
