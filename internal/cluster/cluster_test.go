package cluster

import (
	"math"
	"testing"
	"time"

	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

func testPopulation(t *testing.T) *trace.Trace {
	t.Helper()
	pop, err := workload.Generate(workload.Config{
		Seed: 11, NumApps: 60, Duration: 24 * time.Hour,
		MaxDailyRate: 600, MaxEventsPerFunction: 3000,
	})
	if err != nil {
		t.Fatal(err)
	}
	return pop.Trace
}

// appBitsEqual compares a cluster app outcome with a batch outcome
// bit-exactly (WastedSeconds via Float64bits, everything else by
// value).
func appBitsEqual(c AppResult, s sim.AppResult) bool {
	return c.AppID == s.AppID &&
		c.Invocations == s.Invocations &&
		c.ColdStarts == s.ColdStarts &&
		math.Float64bits(c.WastedSeconds) == math.Float64bits(s.WastedSeconds) &&
		c.ModeCounts == s.ModeCounts
}

// TestInfiniteCapacityMatchesSimulate is the kernel-extraction
// contract: with no memory constraint the cluster timeline must
// reproduce sim.Simulate bit for bit, app by app, regardless of node
// count or placement — the decision walk is the same code, and
// without pressure the timeline changes nothing.
func TestInfiniteCapacityMatchesSimulate(t *testing.T) {
	tr := testPopulation(t)
	pols := []struct {
		name string
		pol  func() policy.Policy
		exec bool
	}{
		{"fixed-10m", func() policy.Policy { return policy.FixedKeepAlive{KeepAlive: 10 * time.Minute} }, false},
		{"no-unloading", func() policy.Policy { return policy.NoUnloading{} }, false},
		{"hybrid", func() policy.Policy { return policy.NewHybrid(policy.DefaultHybridConfig()) }, false},
		{"hybrid-exectime", func() policy.Policy { return policy.NewHybrid(policy.DefaultHybridConfig()) }, true},
	}
	layouts := []struct {
		name  string
		nodes int
		place Placement
	}{
		{"1-node-hash", 1, HashPlacement{}},
		{"4-node-least-loaded", 4, LeastLoadedPlacement{}},
		{"4-node-binpack", 4, &BinPackPlacement{}},
	}
	for _, pc := range pols {
		want := sim.Simulate(tr, pc.pol(), sim.Options{UseExecTime: pc.exec})
		for _, ly := range layouts {
			got := Simulate(tr, pc.pol(), Config{
				Nodes: ly.nodes, NodeMemMB: 0, Placement: ly.place, UseExecTime: pc.exec,
			})
			if len(got.Apps) != len(want.Apps) {
				t.Fatalf("%s/%s: %d apps, want %d", pc.name, ly.name, len(got.Apps), len(want.Apps))
			}
			for i := range want.Apps {
				if !appBitsEqual(got.Apps[i], want.Apps[i]) {
					t.Errorf("%s/%s app %s: cluster %+v, sim %+v",
						pc.name, ly.name, want.Apps[i].AppID, got.Apps[i], want.Apps[i])
				}
				if got.Apps[i].Evictions != 0 || got.Apps[i].EvictionColdStarts != 0 {
					t.Errorf("%s/%s app %s: evictions on an infinite cluster",
						pc.name, ly.name, want.Apps[i].AppID)
				}
			}
			for n, ns := range got.NodeStats {
				if ns.Evictions != 0 || ns.FailedLoads != 0 {
					t.Errorf("%s/%s node %d: evictions=%d failedLoads=%d on infinite capacity",
						pc.name, ly.name, n, ns.Evictions, ns.FailedLoads)
				}
			}
		}
	}
}

// TestFiniteCapacityInvariants pins the attribution algebra on a
// pressured cluster: every cold start is either one the batch
// simulator also reports (policy-induced — the decisions are
// identical by construction) or attributed to eviction, and eviction
// only ever truncates waste.
func TestFiniteCapacityInvariants(t *testing.T) {
	tr := testPopulation(t)
	pol := func() policy.Policy { return policy.NewHybrid(policy.DefaultHybridConfig()) }
	want := sim.Simulate(tr, pol(), sim.Options{})
	got := Simulate(tr, pol(), Config{Nodes: 2, NodeMemMB: 600})
	if got.TotalEvictions() == 0 {
		t.Fatal("expected memory pressure at 600 MB/node; tighten the test capacity")
	}
	for i, c := range got.Apps {
		s := want.Apps[i]
		if c.ColdStarts != s.ColdStarts+c.EvictionColdStarts+c.FailureColdStarts {
			t.Errorf("app %s: cluster cold %d != sim cold %d + eviction-induced %d + failure-induced %d",
				c.AppID, c.ColdStarts, s.ColdStarts, c.EvictionColdStarts, c.FailureColdStarts)
		}
		if c.WastedSeconds > s.WastedSeconds*(1+1e-12)+1e-9 {
			t.Errorf("app %s: cluster waste %v exceeds infinite-memory waste %v",
				c.AppID, c.WastedSeconds, s.WastedSeconds)
		}
		if c.ModeCounts != s.ModeCounts {
			t.Errorf("app %s: mode counts changed under pressure: %v vs %v",
				c.AppID, c.ModeCounts, s.ModeCounts)
		}
	}
}

// TestCapacitySweepMonotone reproduces the intuitive frontier the
// infinite-memory simulator cannot express: tighter node memory means
// more evictions and more eviction-induced cold starts; growing
// memory monotonically releases the pressure until, unconstrained,
// eviction cold starts vanish.
func TestCapacitySweepMonotone(t *testing.T) {
	tr := testPopulation(t)
	pol := func() policy.Policy { return policy.NewHybrid(policy.DefaultHybridConfig()) }
	caps := []float64{300, 600, 1200, 2400, 4800, 9600, 0} // MB per node; 0 = infinite
	prevEvCold := -1
	for i, capMB := range caps {
		res := Simulate(tr, pol(), Config{Nodes: 4, NodeMemMB: capMB})
		evCold := res.TotalEvictionColdStarts()
		if prevEvCold >= 0 && evCold > prevEvCold {
			t.Errorf("capacity %v MB: eviction cold starts rose to %d from %d at the tighter %v MB",
				capMB, evCold, prevEvCold, caps[i-1])
		}
		prevEvCold = evCold
		if capMB == 0 && evCold != 0 {
			t.Errorf("infinite capacity: %d eviction cold starts", evCold)
		}
		if i == 0 && evCold == 0 {
			t.Errorf("tightest capacity %v MB shows no pressure; tighten the sweep", capMB)
		}
	}
}

// fixedTrace builds a hand-checkable two-app trace: both 150 MB on a
// 200 MB node, so every load evicts the other app's warm container.
func pingPongTrace() *trace.Trace {
	appA := &trace.App{ID: "a", MemoryMB: 150, Functions: []*trace.Function{
		{ID: "fa", Invocations: []float64{0, 200, 400}},
	}}
	appB := &trace.App{ID: "b", MemoryMB: 150, Functions: []*trace.Function{
		{ID: "fb", Invocations: []float64{100, 300}},
	}}
	return &trace.Trace{Duration: 1000 * time.Second, Apps: []*trace.App{appA, appB}}
}

// TestEvictionPingPong walks the hand example: fixed 600 s keep-alive,
// alternating arrivals, every load evicts the other container.
func TestEvictionPingPong(t *testing.T) {
	tr := pingPongTrace()
	pol := policy.FixedKeepAlive{KeepAlive: 600 * time.Second}
	res := Simulate(tr, pol, Config{Nodes: 1, NodeMemMB: 200})

	a, b := res.Apps[0], res.Apps[1]
	// App a: all 3 arrivals cold; the two non-first ones fell in
	// nominally warm windows killed by eviction.
	if a.ColdStarts != 3 || a.EvictionColdStarts != 2 || a.Evictions != 2 {
		t.Errorf("app a: cold=%d evCold=%d evictions=%d, want 3/2/2",
			a.ColdStarts, a.EvictionColdStarts, a.Evictions)
	}
	// Waste: evicted after 100 s idle at t=100 and t=300, then the
	// trailing window from 400 runs to the 1000 s horizon.
	if a.WastedSeconds != 100+100+600 {
		t.Errorf("app a wasted %v, want 800", a.WastedSeconds)
	}
	if b.ColdStarts != 2 || b.EvictionColdStarts != 1 || b.Evictions != 2 {
		t.Errorf("app b: cold=%d evCold=%d evictions=%d, want 2/1/2",
			b.ColdStarts, b.EvictionColdStarts, b.Evictions)
	}
	// Evicted after 100 s idle at t=200 and (post-final-invocation) at
	// t=400; the died window books no trailing waste.
	if b.WastedSeconds != 100+100 {
		t.Errorf("app b wasted %v, want 200", b.WastedSeconds)
	}
	ns := res.NodeStats[0]
	if ns.Evictions != 4 {
		t.Errorf("node evictions %d, want 4", ns.Evictions)
	}
	if ns.PeakResidentMB != 150 {
		t.Errorf("peak resident %v MB, want 150 (never both containers)", ns.PeakResidentMB)
	}
	// Exactly one 150 MB container is resident from t=0 through the
	// horizon (every eviction immediately precedes the next load).
	if ns.ResidentMBSeconds != 150*1000 {
		t.Errorf("resident integral %v, want 150000", ns.ResidentMBSeconds)
	}
	if len(ns.UtilSeries) != 17 { // ceil(1000/60)
		t.Fatalf("util series length %d, want 17", len(ns.UtilSeries))
	}
	for m, mb := range ns.UtilSeries {
		if mb != 150 {
			t.Errorf("minute %d: mean resident %v MB, want 150", m, mb)
		}
	}
}

// TestAppLargerThanNode: an app that cannot fit on any node executes
// transiently — every start cold (attributed to capacity when the
// window nominally covered it), zero waste, zero residency.
func TestAppLargerThanNode(t *testing.T) {
	tr := &trace.Trace{Duration: 1000 * time.Second, Apps: []*trace.App{
		{ID: "huge", MemoryMB: 4096, Functions: []*trace.Function{
			{ID: "f", Invocations: []float64{0, 100, 900}},
		}},
	}}
	pol := policy.FixedKeepAlive{KeepAlive: 600 * time.Second}
	res := Simulate(tr, pol, Config{Nodes: 2, NodeMemMB: 512})
	a := res.Apps[0]
	// t=100 sits in the nominal [0, 600] window (capacity-induced
	// cold); t=900 is past the [100, 700] window (policy-induced).
	if a.ColdStarts != 3 || a.EvictionColdStarts != 1 {
		t.Errorf("cold=%d evCold=%d, want 3/1", a.ColdStarts, a.EvictionColdStarts)
	}
	if a.WastedSeconds != 0 {
		t.Errorf("wasted %v, want 0 (never resident)", a.WastedSeconds)
	}
	var failed int
	for _, ns := range res.NodeStats {
		failed += ns.FailedLoads
		if ns.ResidentMBSeconds != 0 || ns.PeakResidentMB != 0 {
			t.Errorf("node shows residency for an unplaceable app: %+v", ns)
		}
	}
	if failed != 3 {
		t.Errorf("failed loads %d, want 3", failed)
	}
}

// TestDefaultMemoryCharge: apps without a memory row are charged the
// configured default so they stay visible to capacity accounting.
func TestDefaultMemoryCharge(t *testing.T) {
	tr := &trace.Trace{Duration: 600 * time.Second, Apps: []*trace.App{
		{ID: "nomem", Functions: []*trace.Function{{ID: "f", Invocations: []float64{0}}}},
	}}
	res := Simulate(tr, policy.FixedKeepAlive{KeepAlive: 60 * time.Second}, Config{Nodes: 1, NodeMemMB: 4096})
	if res.Apps[0].MemoryMB != trace.DefaultAppMemoryMB {
		t.Errorf("charged %v MB, want the %v MB default", res.Apps[0].MemoryMB, trace.DefaultAppMemoryMB)
	}
	if res.NodeStats[0].PeakResidentMB != trace.DefaultAppMemoryMB {
		t.Errorf("peak %v MB, want %v", res.NodeStats[0].PeakResidentMB, trace.DefaultAppMemoryMB)
	}
	res = Simulate(tr, policy.FixedKeepAlive{KeepAlive: 60 * time.Second},
		Config{Nodes: 1, NodeMemMB: 4096, DefaultAppMemMB: 256})
	if res.Apps[0].MemoryMB != 256 {
		t.Errorf("charged %v MB, want the configured 256", res.Apps[0].MemoryMB)
	}
}

// TestWastedMBSecondsWeighting pins the memory weighting of waste.
func TestWastedMBSecondsWeighting(t *testing.T) {
	tr := pingPongTrace()
	res := Simulate(tr, policy.FixedKeepAlive{KeepAlive: 600 * time.Second}, Config{Nodes: 1, NodeMemMB: 200})
	for _, a := range res.Apps {
		if a.WastedMBSeconds != a.WastedSeconds*a.MemoryMB {
			t.Errorf("app %s: WastedMBSeconds %v != %v * %v", a.AppID, a.WastedMBSeconds, a.WastedSeconds, a.MemoryMB)
		}
	}
}

// TestSimResultProjection: the sim.Result view feeds batch metrics.
func TestSimResultProjection(t *testing.T) {
	tr := testPopulation(t)
	pol := policy.FixedKeepAlive{KeepAlive: 10 * time.Minute}
	res := Simulate(tr, pol, Config{Nodes: 2, NodeMemMB: 900})
	proj := res.SimResult()
	if proj.Policy != res.Policy || proj.HorizonSeconds != res.HorizonSeconds {
		t.Fatalf("projection header mismatch")
	}
	if proj.TotalColdStarts() != res.TotalColdStarts() {
		t.Fatalf("projection cold starts %d != %d", proj.TotalColdStarts(), res.TotalColdStarts())
	}
	if proj.TotalWastedSeconds() != res.TotalWastedSeconds() {
		t.Fatalf("projection waste mismatch")
	}
}
