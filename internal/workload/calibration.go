package workload

import (
	"repro/internal/stats"
	"repro/internal/trace"
)

// Calibration constants, each tied to a figure or number in the paper.

// functionsPerAppCDF encodes Figure 1's app-size distribution: 54% of
// apps have one function, 95% at most 10, ~0.04% more than 100.
// Anchors are (size, cumulative fraction of apps).
var functionsPerAppAnchors = []struct {
	size int
	cum  float64
}{
	{1, 0.54},
	{2, 0.70},
	{3, 0.79},
	{5, 0.89},
	{10, 0.95},
	{30, 0.988},
	{100, 0.9996},
	{1000, 0.99995},
	{2000, 1.0},
}

// sampleFunctionsPerApp draws an app size from the Figure 1 CDF,
// interpolating log-uniformly inside each anchor segment.
func sampleFunctionsPerApp(r *stats.RNG) int {
	u := r.Float64()
	prev := functionsPerAppAnchors[0]
	if u <= prev.cum {
		return prev.size
	}
	for _, a := range functionsPerAppAnchors[1:] {
		if u <= a.cum {
			// Uniform over the integer range (prev.size, a.size].
			span := a.size - prev.size
			return prev.size + 1 + r.Intn(span)
		}
		prev = a
	}
	return functionsPerAppAnchors[len(functionsPerAppAnchors)-1].size
}

// triggerFunctionShare is Figure 2's %Functions column, normalized.
var triggerFunctionShare = map[trace.TriggerType]float64{
	trace.TriggerHTTP:          0.550,
	trace.TriggerQueue:         0.152,
	trace.TriggerTimer:         0.156,
	trace.TriggerOrchestration: 0.069,
	trace.TriggerStorage:       0.028,
	trace.TriggerEvent:         0.022,
	trace.TriggerOthers:        0.022,
}

// triggerRateMultiplier skews per-function invocation rates so that
// the share of invocations per trigger approaches Figure 2's
// %Invocations column: multiplier ~ (%invocations / %functions).
var triggerRateMultiplier = map[trace.TriggerType]float64{
	trace.TriggerHTTP:          0.359 / 0.550,
	trace.TriggerQueue:         0.335 / 0.152,
	trace.TriggerEvent:         0.247 / 0.022,
	trace.TriggerOrchestration: 0.023 / 0.069,
	trace.TriggerTimer:         0.020 / 0.156,
	trace.TriggerStorage:       0.007 / 0.028,
	trace.TriggerOthers:        0.010 / 0.022,
}

// triggerCombos is Figure 3(b)'s table of app trigger combinations
// (fraction of apps). The bitmask uses 1<<TriggerType. "o" (others)
// appears in the Ho row.
var triggerCombos = []struct {
	mask uint8
	frac float64
}{
	{1 << trace.TriggerHTTP, 0.4327},
	{1 << trace.TriggerTimer, 0.1336},
	{1 << trace.TriggerQueue, 0.0947},
	{1<<trace.TriggerHTTP | 1<<trace.TriggerTimer, 0.0459},
	{1<<trace.TriggerHTTP | 1<<trace.TriggerQueue, 0.0422},
	{1 << trace.TriggerEvent, 0.0301},
	{1 << trace.TriggerStorage, 0.0280},
	{1<<trace.TriggerTimer | 1<<trace.TriggerQueue, 0.0257},
	{1<<trace.TriggerHTTP | 1<<trace.TriggerTimer | 1<<trace.TriggerQueue, 0.0248},
	{1<<trace.TriggerHTTP | 1<<trace.TriggerOthers, 0.0169},
	{1<<trace.TriggerHTTP | 1<<trace.TriggerStorage, 0.0105},
	{1<<trace.TriggerHTTP | 1<<trace.TriggerOrchestration, 0.0103},
}

// sampleTriggerCombo draws an app's trigger-set bitmask: the explicit
// Figure 3(b) rows cover ~89.5% of apps; the remainder samples 2–3
// trigger classes weighted by Figure 3(a)'s marginals.
func sampleTriggerCombo(r *stats.RNG) uint8 {
	u := r.Float64()
	var cum float64
	for _, c := range triggerCombos {
		cum += c.frac
		if u <= cum {
			return c.mask
		}
	}
	// Tail: random 2–3 distinct triggers weighted by marginal app share
	// (Figure 3a): H 64, T 29, Q 24, S 7, E 6, O 3, o 6.
	weights := []float64{64, 24, 6, 3, 29, 7, 6} // indexed by TriggerType
	n := 2 + r.Intn(2)
	var mask uint8
	for bits := 0; bits < n; {
		t := sampleWeighted(r, weights)
		bit := uint8(1) << t
		if mask&bit == 0 {
			mask |= bit
			bits++
		}
	}
	return mask
}

// sampleTriggerComboSized draws a trigger combination conditioned on
// the app's function count, keeping BOTH marginals calibrated:
// single-function apps can only hold single-trigger combos, so those
// are renormalized for size 1, while multi-trigger combos are
// up-weighted for sizes >= 2 by exactly the factor that restores their
// unconditional Figure 3(b) share.
func sampleTriggerComboSized(r *stats.RNG, nFuncs int) uint8 {
	pSize2 := 1 - functionsPerAppAnchors[0].cum // P(app has >= 2 functions)

	var singleSum, multiSum float64
	for _, c := range triggerCombos {
		if isSingleMask(c.mask) {
			singleSum += c.frac
		} else {
			multiSum += c.frac
		}
	}
	var explicit float64
	for _, c := range triggerCombos {
		explicit += c.frac
	}
	tailFrac := 1 - explicit // random 2-3 trigger combos
	pMulti := multiSum + tailFrac

	if nFuncs == 1 {
		// Renormalize over single-trigger combos.
		u := r.Float64() * singleSum
		var cum float64
		for _, c := range triggerCombos {
			if !isSingleMask(c.mask) {
				continue
			}
			cum += c.frac
			if u <= cum {
				return c.mask
			}
		}
		return 1 << trace.TriggerHTTP
	}

	// Size >= 2: multi combos scaled by 1/pSize2; singles absorb the
	// remaining mass proportionally.
	singleScale := (1 - pMulti/pSize2) / singleSum
	if singleScale < 0 {
		singleScale = 0
	}
	u := r.Float64()
	var cum float64
	for _, c := range triggerCombos {
		w := c.frac / pSize2
		if isSingleMask(c.mask) {
			w = c.frac * singleScale
		}
		cum += w
		if u <= cum {
			return c.mask
		}
	}
	return sampleTailCombo(r, nFuncs)
}

func isSingleMask(mask uint8) bool { return mask&(mask-1) == 0 }

// sampleTailCombo draws a random 2-3 class combination (bounded by
// nFuncs) weighted by Figure 3(a)'s per-trigger marginal app shares.
func sampleTailCombo(r *stats.RNG, nFuncs int) uint8 {
	weights := []float64{64, 24, 6, 3, 29, 7, 6} // indexed by TriggerType
	n := 2
	if nFuncs > 2 && r.Bool(0.5) {
		n = 3
	}
	var mask uint8
	for bits := 0; bits < n; {
		t := sampleWeighted(r, weights)
		bit := uint8(1) << t
		if mask&bit == 0 {
			mask |= bit
			bits++
		}
	}
	return mask
}

func sampleWeighted(r *stats.RNG, weights []float64) int {
	var total float64
	for _, w := range weights {
		total += w
	}
	u := r.Float64() * total
	var cum float64
	for i, w := range weights {
		cum += w
		if u <= cum {
			return i
		}
	}
	return len(weights) - 1
}

// triggerFillWeight weights the triggers used to fill an app's
// remaining function slots once its combo is covered. Coverage alone
// over-represents timers and queues (every T-containing app is forced
// one timer) and starves orchestration (rare in combos but, per
// Figure 2, 6.9% of functions — durable workflows hold many
// orchestration functions). These weights counteract both so the
// population's function shares track Figure 2's %Functions column.
var triggerFillWeight = map[trace.TriggerType]float64{
	trace.TriggerHTTP:          1.00,
	trace.TriggerQueue:         0.18,
	trace.TriggerTimer:         0.08,
	trace.TriggerOrchestration: 0.70,
	trace.TriggerStorage:       0.15,
	trace.TriggerEvent:         0.25,
	trace.TriggerOthers:        0.20,
}

// dailyRateDist is Figure 5(a)'s per-function daily invocation rate
// CDF, pinned at the paper's stated anchors: 45% of apps average at
// most one invocation per hour (24/day) and 81% at most one per
// minute (1440/day), with the full range spanning 8 orders of
// magnitude.
var dailyRateDist = stats.NewPiecewiseLogCDF(
	[]float64{1.0 / 14, 1, 24, 1440, 86400, 8.64e6, 1e8},
	[]float64{0, 0.20, 0.45, 0.81, 0.95, 0.995, 1},
)

// execTimeDist is Figure 7's log-normal fit to average function
// execution times (seconds): ln-mean -0.38, ln-sigma 2.36.
var execTimeDist = stats.LogNormal{Mu: -0.38, Sigma: 2.36}

// memoryDist is Figure 8's Burr fit to per-app allocated memory (MB):
// c = 11.652, k = 0.221, lambda = 107.083.
var memoryDist = stats.Burr{C: 11.652, K: 0.221, Lambda: 107.083}
