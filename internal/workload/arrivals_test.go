package workload

import (
	"math"
	"testing"

	"repro/internal/stats"
)

func TestDiurnalProfileMeanIsOne(t *testing.T) {
	p := NewDiurnalProfile()
	var sum float64
	const steps = 7 * 24 * 60
	for i := 0; i < steps; i++ {
		sum += p.Factor(float64(i) * 60)
	}
	if mean := sum / steps; math.Abs(mean-1) > 1e-6 {
		t.Fatalf("mean factor = %v, want 1", mean)
	}
}

func TestDiurnalProfileShape(t *testing.T) {
	p := NewDiurnalProfile()
	// Mid-afternoon Monday beats 3am Monday.
	monday15 := p.Factor(15 * 3600)
	monday3 := p.Factor(3 * 3600)
	if monday15 <= monday3 {
		t.Fatalf("peak %v should exceed trough %v", monday15, monday3)
	}
	// Weekend afternoon is damped vs weekday afternoon.
	saturday15 := p.Factor(5*86400 + 15*3600)
	if saturday15 >= monday15 {
		t.Fatalf("saturday %v should be below monday %v", saturday15, monday15)
	}
	// Baseline keeps the trough well above zero (Figure 4's ~50% floor).
	if monday3 < 0.3 {
		t.Fatalf("trough %v too low", monday3)
	}
}

func TestDiurnalMaxFactorBounds(t *testing.T) {
	p := NewDiurnalProfile()
	max := p.MaxFactor()
	for i := 0; i < 7*24; i++ {
		if f := p.Factor(float64(i) * 3600); f > max+1e-9 {
			t.Fatalf("factor %v exceeds MaxFactor %v", f, max)
		}
	}
}

func TestGenTimerPeriodic(t *testing.T) {
	events := genTimer(30, 600, 86400, 1<<20)
	if len(events) < 140 || len(events) > 145 {
		t.Fatalf("10-min timer over a day: %d events", len(events))
	}
	for i := 2; i < len(events); i++ {
		if math.Abs((events[i]-events[i-1])-600) > 1e-9 {
			t.Fatalf("period broken at %d", i)
		}
	}
}

func TestGenTimerEdge(t *testing.T) {
	if genTimer(0, 0, 100, 10) != nil {
		t.Fatal("zero period should be nil")
	}
	if got := genTimer(3, 10, 1000, 5); len(got) != 5 {
		t.Fatalf("maxEvents not honored: %d", len(got))
	}
}

func TestGenJitteredPeriodicLowCV(t *testing.T) {
	r := stats.NewRNG(3)
	events := genJitteredPeriodic(r, 300, 0.05, 7*86400, 1<<20)
	if len(events) < 1900 {
		t.Fatalf("events = %d", len(events))
	}
	iats := make([]float64, len(events)-1)
	for i := 1; i < len(events); i++ {
		iats[i-1] = events[i] - events[i-1]
	}
	if cv := stats.CV(iats); cv > 0.1 {
		t.Fatalf("jittered-periodic CV = %v, want ~0.05", cv)
	}
}

func TestGenPoissonRateAndCV(t *testing.T) {
	r := stats.NewRNG(4)
	rate := 0.01 // per second
	horizon := 14.0 * 86400
	events := genPoisson(r, rate, horizon, nil, 1<<22)
	want := rate * horizon
	if math.Abs(float64(len(events))-want) > 0.05*want {
		t.Fatalf("events = %d, want ~%v", len(events), want)
	}
	iats := make([]float64, len(events)-1)
	for i := 1; i < len(events); i++ {
		iats[i-1] = events[i] - events[i-1]
	}
	if cv := stats.CV(iats); math.Abs(cv-1) > 0.1 {
		t.Fatalf("Poisson CV = %v, want ~1", cv)
	}
}

func TestGenPoissonModulatedPreservesMeanRate(t *testing.T) {
	r := stats.NewRNG(5)
	p := NewDiurnalProfile()
	rate := 0.02
	horizon := 7.0 * 86400
	events := genPoisson(r, rate, horizon, p, 1<<22)
	want := rate * horizon
	if math.Abs(float64(len(events))-want) > 0.05*want {
		t.Fatalf("modulated events = %d, want ~%v", len(events), want)
	}
	// Afternoon busier than pre-dawn on weekdays.
	var afternoon, predawn int
	for _, e := range events {
		day := int(e/86400) % 7
		if day >= 5 {
			continue
		}
		h := math.Mod(e, 86400) / 3600
		switch {
		case h >= 13 && h < 17:
			afternoon++
		case h >= 1 && h < 5:
			predawn++
		}
	}
	if afternoon <= predawn {
		t.Fatalf("afternoon %d should exceed predawn %d", afternoon, predawn)
	}
}

func TestGenBurstyCV(t *testing.T) {
	r := stats.NewRNG(6)
	events := genBursty(r, 0.02, 4, 30*86400, 1<<22)
	if len(events) < 10000 {
		t.Fatalf("events = %d", len(events))
	}
	iats := make([]float64, len(events)-1)
	for i := 1; i < len(events); i++ {
		iats[i-1] = events[i] - events[i-1]
	}
	if cv := stats.CV(iats); cv < 2.5 {
		t.Fatalf("bursty CV = %v, want > 2.5", cv)
	}
}

func TestGenArrivalsZeroRate(t *testing.T) {
	r := stats.NewRNG(7)
	if genPoisson(r, 0, 100, nil, 10) != nil {
		t.Fatal("zero-rate Poisson should be nil")
	}
	if genBursty(r, 0, 2, 100, 10) != nil {
		t.Fatal("zero-rate bursty should be nil")
	}
	if genJitteredPeriodic(r, 0, 0.1, 100, 10) != nil {
		t.Fatal("zero-period jittered should be nil")
	}
}

func TestArrivalsSorted(t *testing.T) {
	r := stats.NewRNG(8)
	for _, events := range [][]float64{
		genTimer(7, 60, 86400, 1<<20),
		genJitteredPeriodic(r, 60, 0.2, 86400, 1<<20),
		genPoisson(r, 0.05, 86400, NewDiurnalProfile(), 1<<20),
		genBursty(r, 0.05, 3, 86400, 1<<20),
	} {
		for i := 1; i < len(events); i++ {
			if events[i] < events[i-1] {
				t.Fatal("events not sorted")
			}
		}
		if len(events) > 0 && events[len(events)-1] > 86400 {
			t.Fatal("event beyond horizon")
		}
	}
}

func TestMergeSorted(t *testing.T) {
	m := mergeSorted([]float64{1, 4, 9}, []float64{2, 3}, nil)
	want := []float64{1, 2, 3, 4, 9}
	for i := range want {
		if m[i] != want[i] {
			t.Fatalf("merged = %v", m)
		}
	}
}

func TestArrivalKindString(t *testing.T) {
	kinds := []ArrivalKind{KindTimer, KindPeriodicExternal, KindPoisson, KindBursty, ArrivalKind(99)}
	for _, k := range kinds {
		if k.String() == "" {
			t.Fatal("empty kind string")
		}
	}
}

func TestRoundToSchedule(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{55, 60},
		{70, 60},
		{500, 600},
		{4000, 3600},
		{100000, 86400},
		{1e7, 7 * 86400},
	}
	for _, c := range cases {
		if got := roundToSchedule(c.in); got != c.want {
			t.Errorf("roundToSchedule(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}
