// Package workload generates synthetic FaaS traces calibrated to
// every distribution the paper publishes about the Azure Functions
// production workload (§3): functions per application (Figure 1),
// trigger mix and combinations (Figures 2–3), diurnal and weekly load
// shape (Figure 4), per-app/function invocation rates spanning eight
// orders of magnitude (Figure 5), inter-arrival-time variability
// (Figure 6), log-normal execution times (Figure 7), and Burr-
// distributed memory (Figure 8).
//
// The generator substitutes for the proprietary production trace: the
// policy experiments consume only per-app invocation timestamps, and
// those reproduce the published marginal distributions and the
// timer/Poisson/bursty IAT structure, so the comparative results
// (which policy wins, by how much, where crossovers fall) carry over.
// The public sanitized trace can be substituted via internal/trace's
// CSV readers.
package workload

import (
	"fmt"
	"time"
)

// Config parameterizes trace generation. Zero values select the
// defaults noted per field (applied by withDefaults).
type Config struct {
	// Seed drives all randomness; equal seeds give identical traces.
	Seed uint64
	// NumApps is the number of applications to generate (default 500).
	NumApps int
	// Duration is the trace horizon (default 7 days, the simulation
	// window of §5.1).
	Duration time.Duration
	// MaxDailyRate caps the realized per-function invocation rate so
	// trace sizes stay laptop-friendly. The intended (uncapped) rate is
	// preserved in the population metadata for characterization plots.
	// Default 20000/day (~0.23/s).
	MaxDailyRate float64
	// MaxEventsPerFunction bounds the realized events of any single
	// function (default 200000).
	MaxEventsPerFunction int
}

func (c Config) withDefaults() Config {
	if c.NumApps == 0 {
		c.NumApps = 500
	}
	if c.Duration == 0 {
		c.Duration = 7 * 24 * time.Hour
	}
	if c.MaxDailyRate == 0 {
		c.MaxDailyRate = 20000
	}
	if c.MaxEventsPerFunction == 0 {
		c.MaxEventsPerFunction = 200000
	}
	return c
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	c = c.withDefaults()
	if c.NumApps < 0 {
		return fmt.Errorf("workload: NumApps %d negative", c.NumApps)
	}
	if c.Duration < time.Minute {
		return fmt.Errorf("workload: Duration %v too short", c.Duration)
	}
	if c.MaxDailyRate <= 0 {
		return fmt.Errorf("workload: MaxDailyRate must be positive")
	}
	if c.MaxEventsPerFunction <= 0 {
		return fmt.Errorf("workload: MaxEventsPerFunction must be positive")
	}
	return nil
}
