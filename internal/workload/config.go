// Package workload generates synthetic FaaS traces calibrated to
// every distribution the paper publishes about the Azure Functions
// production workload (§3): functions per application (Figure 1),
// trigger mix and combinations (Figures 2–3), diurnal and weekly load
// shape (Figure 4), per-app/function invocation rates spanning eight
// orders of magnitude (Figure 5), inter-arrival-time variability
// (Figure 6), log-normal execution times (Figure 7), and Burr-
// distributed memory (Figure 8).
//
// The generator substitutes for the proprietary production trace: the
// policy experiments consume only per-app invocation timestamps, and
// those reproduce the published marginal distributions and the
// timer/Poisson/bursty IAT structure, so the comparative results
// (which policy wins, by how much, where crossovers fall) carry over.
// The public sanitized trace can be substituted via internal/trace's
// CSV readers.
package workload

import (
	"fmt"
	"time"
)

// Config parameterizes trace generation. Zero values select the
// defaults noted per field (applied by withDefaults).
type Config struct {
	// Seed drives all randomness; equal seeds give identical traces.
	Seed uint64
	// NumApps is the number of applications to generate (default 500).
	NumApps int
	// Duration is the trace horizon (default 7 days, the simulation
	// window of §5.1).
	Duration time.Duration
	// MaxDailyRate caps the realized per-function invocation rate so
	// trace sizes stay laptop-friendly. The intended (uncapped) rate is
	// preserved in the population metadata for characterization plots.
	// Default 20000/day (~0.23/s).
	MaxDailyRate float64
	// MaxEventsPerFunction bounds the realized events of any single
	// function (default 200000).
	MaxEventsPerFunction int

	// Mode selects a shaped arrival profile instead of the calibrated
	// Azure workload: "" (default, calibrated), ModeRamp, ModeBurst or
	// ModeDiurnal.
	// Shaped traces give every app a single HTTP-triggered function
	// whose per-minute invocation count follows the configured RPS
	// shape — the trace-synthesizer idiom of load-testing harnesses —
	// while memory and execution times still sample the calibrated
	// distributions so finite-memory runs stay meaningful.
	Mode string
	// RPS0 is the shaped starting (ramp) or baseline (burst) rate, in
	// invocations per second per app.
	RPS0 float64
	// RPS1 is the shaped target (ramp) or burst-height (burst) rate.
	RPS1 float64
	// StepRPS is the ramp increment applied every SlotMins minutes
	// (ramp mode only).
	StepRPS float64
	// SlotMins is the ramp slot length in minutes (default 1).
	SlotMins int
	// PeriodMins is the burst repetition period (burst mode; default
	// 10) or the diurnal cycle length (diurnal mode; default 1440, one
	// day), in minutes.
	PeriodMins int
	// BurstMins is how many minutes of each period run at RPS1 (burst
	// mode only; default 1).
	BurstMins int
}

func (c Config) withDefaults() Config {
	if c.NumApps == 0 {
		c.NumApps = 500
	}
	if c.Duration == 0 {
		c.Duration = 7 * 24 * time.Hour
	}
	if c.MaxDailyRate == 0 {
		c.MaxDailyRate = 20000
	}
	if c.MaxEventsPerFunction == 0 {
		c.MaxEventsPerFunction = 200000
	}
	if c.Mode != "" {
		if c.SlotMins == 0 {
			c.SlotMins = 1
		}
		if c.PeriodMins == 0 {
			if c.Mode == ModeDiurnal {
				c.PeriodMins = 24 * 60
			} else {
				c.PeriodMins = 10
			}
		}
		if c.BurstMins == 0 {
			c.BurstMins = 1
		}
	}
	return c
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	c = c.withDefaults()
	if c.NumApps < 0 {
		return fmt.Errorf("workload: NumApps %d negative", c.NumApps)
	}
	if c.Duration < time.Minute {
		return fmt.Errorf("workload: Duration %v too short", c.Duration)
	}
	if c.MaxDailyRate <= 0 {
		return fmt.Errorf("workload: MaxDailyRate must be positive")
	}
	if c.MaxEventsPerFunction <= 0 {
		return fmt.Errorf("workload: MaxEventsPerFunction must be positive")
	}
	switch c.Mode {
	case "":
		if c.RPS0 != 0 || c.RPS1 != 0 || c.StepRPS != 0 ||
			c.SlotMins != 0 || c.PeriodMins != 0 || c.BurstMins != 0 {
			return fmt.Errorf("workload: shaped parameters set without Mode")
		}
	case ModeRamp:
		if c.RPS0 < 0 || c.RPS1 < c.RPS0 {
			return fmt.Errorf("workload: ramp wants 0 <= RPS0 <= RPS1, got %g..%g", c.RPS0, c.RPS1)
		}
		if c.StepRPS < 0 {
			return fmt.Errorf("workload: StepRPS %g negative", c.StepRPS)
		}
		if c.RPS1 > c.RPS0 && c.StepRPS == 0 {
			return fmt.Errorf("workload: ramp from %g to %g RPS needs StepRPS > 0", c.RPS0, c.RPS1)
		}
		if c.SlotMins < 1 {
			return fmt.Errorf("workload: SlotMins %d must be >= 1", c.SlotMins)
		}
		if c.PeriodMins != 10 || c.BurstMins != 1 {
			return fmt.Errorf("workload: PeriodMins/BurstMins are burst-mode parameters")
		}
	case ModeBurst:
		if c.RPS0 < 0 || c.RPS1 < c.RPS0 {
			return fmt.Errorf("workload: burst wants 0 <= RPS0 <= RPS1, got %g..%g", c.RPS0, c.RPS1)
		}
		if c.BurstMins < 1 || c.PeriodMins <= c.BurstMins {
			return fmt.Errorf("workload: burst wants 1 <= BurstMins < PeriodMins, got burst=%d period=%d",
				c.BurstMins, c.PeriodMins)
		}
		if c.StepRPS != 0 || c.SlotMins != 1 {
			return fmt.Errorf("workload: StepRPS/SlotMins are ramp-mode parameters")
		}
	case ModeDiurnal:
		if c.RPS0 < 0 || c.RPS1 < c.RPS0 {
			return fmt.Errorf("workload: diurnal wants 0 <= RPS0 <= RPS1, got %g..%g", c.RPS0, c.RPS1)
		}
		if c.PeriodMins < 2 {
			return fmt.Errorf("workload: diurnal PeriodMins %d must be >= 2", c.PeriodMins)
		}
		if c.StepRPS != 0 || c.SlotMins != 1 {
			return fmt.Errorf("workload: StepRPS/SlotMins are ramp-mode parameters")
		}
		if c.BurstMins != 1 {
			return fmt.Errorf("workload: BurstMins is a burst-mode parameter")
		}
	default:
		return fmt.Errorf("workload: unknown Mode %q (%s, %s, %s)", c.Mode, ModeRamp, ModeBurst, ModeDiurnal)
	}
	return nil
}
