package workload

import (
	"math"
	"sort"

	"repro/internal/stats"
)

// ArrivalKind labels the inter-arrival process assigned to a
// function, producing the CV structure of Figure 6.
type ArrivalKind uint8

// Arrival process kinds.
const (
	// KindTimer is a strictly periodic schedule (CV 0), used for
	// timer-triggered functions.
	KindTimer ArrivalKind = iota
	// KindPeriodicExternal is near-periodic with small jitter,
	// modeling periodic external callers such as sensors (the ~10% of
	// no-timer apps with CV ~ 0; §3.3).
	KindPeriodicExternal
	// KindPoisson is a (diurnally modulated) Poisson process (CV ~ 1).
	KindPoisson
	// KindBursty is a hyper-exponential renewal process (CV > 1).
	KindBursty
	// KindSession is an ON/OFF process: short clusters of invocations
	// minutes apart, separated by long idle gaps. This reproduces the
	// concentrated idle-time distributions of Figure 12 (most IT mass
	// within tens of minutes even for apps whose average rate is low)
	// and the high app-level IAT CV of Figure 6.
	KindSession
)

// String returns a short label.
func (k ArrivalKind) String() string {
	switch k {
	case KindTimer:
		return "timer"
	case KindPeriodicExternal:
		return "periodic"
	case KindPoisson:
		return "poisson"
	case KindBursty:
		return "bursty"
	case KindSession:
		return "session"
	default:
		return "unknown"
	}
}

// DiurnalProfile models Figure 4's platform load shape: a constant
// baseline of roughly half the traffic plus a diurnal bump that
// shrinks on weekends. Factor is normalized to mean 1 over a week so
// modulation preserves a function's average rate.
type DiurnalProfile struct {
	// Baseline is the constant fraction (default 0.5).
	Baseline float64
	// WeekendDamp scales the diurnal component on Saturday/Sunday
	// (default 0.6).
	WeekendDamp float64

	norm float64
}

// NewDiurnalProfile constructs the default profile used throughout.
func NewDiurnalProfile() *DiurnalProfile {
	p := &DiurnalProfile{Baseline: 0.5, WeekendDamp: 0.6}
	p.normalize()
	return p
}

func (p *DiurnalProfile) normalize() {
	// Numerical mean over one week at 1-minute resolution.
	p.norm = 1
	var sum float64
	const steps = 7 * 24 * 60
	for i := 0; i < steps; i++ {
		sum += p.raw(float64(i) * 60)
	}
	p.norm = sum / steps
}

// raw computes the unnormalized factor at t seconds from the trace
// start (which is taken to be Monday 00:00).
func (p *DiurnalProfile) raw(t float64) float64 {
	day := int(t/86400) % 7
	hour := math.Mod(t, 86400) / 3600
	// Diurnal bump peaking mid-afternoon (15:00), zero at 03:00.
	bump := 0.5 * (1 - math.Cos(2*math.Pi*(hour-3)/24))
	damp := 1.0
	if day >= 5 { // Saturday, Sunday (trace starts Monday)
		damp = p.WeekendDamp
	}
	return p.Baseline + (1-p.Baseline)*2*bump*damp
}

// Factor returns the normalized load multiplier at t seconds from
// trace start (mean ~1 over a full week).
func (p *DiurnalProfile) Factor(t float64) float64 {
	return p.raw(t) / p.norm
}

// MaxFactor returns an upper bound of Factor, used for thinning.
func (p *DiurnalProfile) MaxFactor() float64 {
	return (p.Baseline + (1-p.Baseline)*2) / p.norm
}

// genTimer produces a strictly periodic schedule with the given
// period (seconds), truncated to horizon and maxEvents. The phase is
// basePhase mod period: timers of one application share a base phase,
// mirroring cron-style schedules aligned to a common grid, so a
// multi-timer app's idle times land on few distinct values rather
// than smearing across the histogram.
func genTimer(basePhase, period, horizon float64, maxEvents int) []float64 {
	if period <= 0 {
		return nil
	}
	phase := math.Mod(basePhase, period)
	var out []float64
	for t := phase; t <= horizon && len(out) < maxEvents; t += period {
		out = append(out, t)
	}
	return out
}

// genJitteredPeriodic produces a near-periodic schedule: period with
// Gaussian jitter of jitterFrac*period, clamped positive.
func genJitteredPeriodic(r *stats.RNG, period, jitterFrac, horizon float64, maxEvents int) []float64 {
	if period <= 0 {
		return nil
	}
	t := r.Float64() * period
	var out []float64
	for t <= horizon && len(out) < maxEvents {
		out = append(out, t)
		step := period * (1 + jitterFrac*r.NormFloat64())
		if step < period*0.05 {
			step = period * 0.05
		}
		t += step
	}
	return out
}

// genPoisson produces a (possibly diurnally modulated) Poisson
// process with the given mean rate (events/second) via thinning.
func genPoisson(r *stats.RNG, rate, horizon float64, profile *DiurnalProfile, maxEvents int) []float64 {
	if rate <= 0 {
		return nil
	}
	var out []float64
	if profile == nil {
		t := 0.0
		for len(out) < maxEvents {
			t += r.ExpFloat64() / rate
			if t > horizon {
				break
			}
			out = append(out, t)
		}
		return out
	}
	lambdaMax := rate * profile.MaxFactor()
	t := 0.0
	for len(out) < maxEvents {
		t += r.ExpFloat64() / lambdaMax
		if t > horizon {
			break
		}
		if r.Float64() <= rate*profile.Factor(t)/lambdaMax {
			out = append(out, t)
		}
	}
	return out
}

// genBursty produces a hyper-exponential renewal process with the
// given mean rate and coefficient of variation (cv > 1).
func genBursty(r *stats.RNG, rate, cv, horizon float64, maxEvents int) []float64 {
	if rate <= 0 {
		return nil
	}
	d := stats.HyperExpForCV(1/rate, cv)
	t := 0.0
	var out []float64
	for len(out) < maxEvents {
		t += d.Sample(r)
		if t > horizon {
			break
		}
		out = append(out, t)
	}
	return out
}

// genSessions produces an ON/OFF session process averaging dailyRate
// invocations per day: sessions start at diurnally weighted times of
// day and hold a cluster of invocations spaced intraGap seconds apart
// (with mild log-normal jitter). Apps rarer than ~2/day degenerate to
// single-invocation sessions, whose idle times all exceed typical
// histogram ranges — exactly the population the paper's ARIMA path
// serves.
func genSessions(r *stats.RNG, dailyRate, intraGap, horizon float64,
	profile *DiurnalProfile, maxEvents int) []float64 {
	if dailyRate <= 0 {
		return nil
	}
	// At most one session per day (a "business-hours" episode) so
	// inter-session gaps land reliably beyond typical histogram ranges:
	// they become the rare out-of-bounds tail rather than an in-range
	// bimodal mode. Rare apps get ~2-invocation sessions spaced
	// multiple days apart.
	invPerSession := dailyRate
	sessionsPerDay := 1.0
	if invPerSession < 2 {
		sessionsPerDay = dailyRate / 2
		invPerSession = 2
	}
	var out []float64
	days := int(math.Ceil(horizon / 86400))
	// Sessions stay inside a working-hours window and are capped in
	// length so consecutive days' sessions never close to within a
	// histogram range of each other: the overnight gap must remain out
	// of bounds, as in the paper's concentrated Figure 12 distributions.
	const sessionCap = 8 * 3600
	for day := 0; day < days && len(out) < maxEvents; day++ {
		n := r.Poisson(sessionsPerDay)
		for s := 0; s < n && len(out) < maxEvents; s++ {
			start := float64(day)*86400 + sessionTimeOfDay(r, profile)
			count := 1 + r.Poisson(invPerSession-1)
			t := start
			for i := 0; i < count && len(out) < maxEvents; i++ {
				if t > horizon || t-start > sessionCap {
					break
				}
				out = append(out, t)
				gap := intraGap * math.Exp(0.3*r.NormFloat64())
				t += gap
			}
		}
	}
	sort.Float64s(out)
	return out
}

// sessionTimeOfDay samples a second-of-day inside working hours
// (07:00-15:00 starts), weighted by the diurnal profile via rejection.
func sessionTimeOfDay(r *stats.RNG, profile *DiurnalProfile) float64 {
	const windowStart, windowLen = 7 * 3600, 8 * 3600
	if profile == nil {
		return windowStart + r.Float64()*windowLen
	}
	max := profile.MaxFactor()
	for i := 0; i < 64; i++ {
		t := windowStart + r.Float64()*windowLen
		if r.Float64()*max <= profile.Factor(t) {
			return t
		}
	}
	return windowStart + r.Float64()*windowLen
}

// mergeSorted merges pre-sorted timestamp slices into one sorted
// slice.
func mergeSorted(lists ...[]float64) []float64 {
	var total int
	for _, l := range lists {
		total += len(l)
	}
	out := make([]float64, 0, total)
	for _, l := range lists {
		out = append(out, l...)
	}
	sort.Float64s(out)
	return out
}
