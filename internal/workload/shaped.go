package workload

import (
	"fmt"
	"math"

	"repro/internal/stats"
	"repro/internal/trace"
)

// Shaped arrival modes (Config.Mode): deterministic RPS profiles in
// the style of load-testing trace synthesizers, for driving the
// cluster under controlled pressure (ramp to a target rate, or
// periodic bursts over a baseline) instead of the calibrated Azure
// distributions. Each invocation count is invocations-per-minute =
// round(rps × 60), evenly spaced within the minute.
const (
	// ModeRamp steps the rate from RPS0 toward RPS1 by StepRPS every
	// SlotMins minutes, then holds at RPS1.
	ModeRamp = "ramp"
	// ModeBurst runs the first BurstMins minutes of every
	// PeriodMins-minute period at RPS1 and the rest at RPS0.
	ModeBurst = "burst"
	// ModeDiurnal follows a sinusoidal daily cycle between the RPS0
	// trough and the RPS1 peak over a PeriodMins-minute period
	// (default one day): the Figure 4 load shape — trough at the cycle
	// start, peak at its midpoint — as a deterministic profile.
	ModeDiurnal = "diurnal"
)

// shapedRPS returns the configured rate for one minute of the horizon
// (cfg must have defaults applied).
func shapedRPS(cfg Config, minute int) float64 {
	switch cfg.Mode {
	case ModeRamp:
		rps := cfg.RPS0 + cfg.StepRPS*float64(minute/cfg.SlotMins)
		return math.Min(rps, cfg.RPS1)
	case ModeBurst:
		if minute%cfg.PeriodMins < cfg.BurstMins {
			return cfg.RPS1
		}
		return cfg.RPS0
	case ModeDiurnal:
		// Raised cosine: RPS0 at minute 0 of each cycle, RPS1 at the
		// midpoint, symmetric about it.
		phase := 2 * math.Pi * float64(minute%cfg.PeriodMins) / float64(cfg.PeriodMins)
		return cfg.RPS0 + (cfg.RPS1-cfg.RPS0)*(1-math.Cos(phase))/2
	}
	return 0
}

// generateShapedApp synthesizes one shaped-mode application: a single
// HTTP-triggered function invoked round(rps×60) times per minute on
// an even grid, truncated at the horizon and the per-function event
// cap. Memory and execution times sample the calibrated distributions
// from the app's RNG, so Generate and the lazy Source stay
// bit-identical.
func generateShapedApp(r *stats.RNG, idx int, fnCounter *int, cfg Config, horizon float64) (*trace.App, AppMeta) {
	app := &trace.App{
		ID:       fmt.Sprintf("app%06d", idx),
		Owner:    fmt.Sprintf("owner%05d", idx/3),
		MemoryMB: memoryDist.Sample(r),
	}
	minutes := int(math.Ceil(horizon / 60))
	var times []float64
	for m := 0; m < minutes && len(times) < cfg.MaxEventsPerFunction; m++ {
		n := int(math.Round(shapedRPS(cfg, m) * 60))
		if n <= 0 {
			continue
		}
		gap := 60.0 / float64(n)
		for k := 0; k < n; k++ {
			t := float64(m)*60 + (float64(k)+0.5)*gap
			if t >= horizon || len(times) >= cfg.MaxEventsPerFunction {
				break
			}
			times = append(times, t)
		}
	}
	fn := &trace.Function{
		ID:          fmt.Sprintf("fn%08d", *fnCounter),
		Trigger:     trace.TriggerHTTP,
		Invocations: times,
	}
	*fnCounter++
	fn.ExecStats = generateExecStats(r, trace.TriggerHTTP, len(times))
	app.Functions = append(app.Functions, fn)

	kind := KindPeriodicExternal
	if cfg.Mode == ModeBurst {
		kind = KindBursty
	}
	rate := 0.0
	if days := horizon / 86400; days > 0 {
		rate = float64(len(times)) / days
	}
	meta := AppMeta{
		DailyRate: rate,
		Functions: []FnMeta{{DailyRate: rate, Kind: kind, Trigger: trace.TriggerHTTP}},
	}
	return app, meta
}
