package workload

import (
	"math"
	"testing"
	"time"

	"repro/internal/stats"
	"repro/internal/trace"
)

func genTestPop(t *testing.T, cfg Config) *Population {
	t.Helper()
	pop, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return pop
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Seed: 42, NumApps: 50, Duration: 24 * time.Hour}
	a := genTestPop(t, cfg)
	b := genTestPop(t, cfg)
	if a.Trace.TotalInvocations() != b.Trace.TotalInvocations() {
		t.Fatal("same seed produced different traces")
	}
	for i := range a.Trace.Apps {
		ai, bi := a.Trace.Apps[i], b.Trace.Apps[i]
		if ai.ID != bi.ID || len(ai.Functions) != len(bi.Functions) ||
			ai.TotalInvocations() != bi.TotalInvocations() || ai.MemoryMB != bi.MemoryMB {
			t.Fatalf("app %d differs", i)
		}
	}
}

func TestGenerateDifferentSeedsDiffer(t *testing.T) {
	a := genTestPop(t, Config{Seed: 1, NumApps: 30, Duration: 24 * time.Hour})
	b := genTestPop(t, Config{Seed: 2, NumApps: 30, Duration: 24 * time.Hour})
	if a.Trace.TotalInvocations() == b.Trace.TotalInvocations() {
		t.Fatal("different seeds produced identical invocation totals (suspicious)")
	}
}

func TestGenerateTraceValidates(t *testing.T) {
	pop := genTestPop(t, Config{Seed: 3, NumApps: 100, Duration: 48 * time.Hour})
	if err := pop.Trace.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateRejectsBadConfig(t *testing.T) {
	if _, err := Generate(Config{NumApps: -1}); err == nil {
		t.Fatal("expected error")
	}
	if _, err := Generate(Config{Duration: time.Second}); err == nil {
		t.Fatal("expected error for sub-minute duration")
	}
}

func TestFunctionsPerAppDistribution(t *testing.T) {
	r := stats.NewRNG(9)
	const n = 100000
	var single, atMost10 int
	for i := 0; i < n; i++ {
		s := sampleFunctionsPerApp(r)
		if s < 1 {
			t.Fatalf("app size %d", s)
		}
		if s == 1 {
			single++
		}
		if s <= 10 {
			atMost10++
		}
	}
	// Figure 1: 54% single-function, 95% at most 10.
	if frac := float64(single) / n; math.Abs(frac-0.54) > 0.01 {
		t.Fatalf("single-function fraction = %v, want ~0.54", frac)
	}
	if frac := float64(atMost10) / n; math.Abs(frac-0.95) > 0.01 {
		t.Fatalf("<=10-function fraction = %v, want ~0.95", frac)
	}
}

func TestTriggerComboDistribution(t *testing.T) {
	r := stats.NewRNG(10)
	const n = 100000
	counts := make(map[uint8]int)
	for i := 0; i < n; i++ {
		counts[sampleTriggerCombo(r)]++
	}
	// Figure 3(b): HTTP-only 43.27%, Timer-only 13.36%.
	httpOnly := float64(counts[1<<trace.TriggerHTTP]) / n
	if math.Abs(httpOnly-0.4327) > 0.01 {
		t.Fatalf("HTTP-only = %v, want ~0.4327", httpOnly)
	}
	timerOnly := float64(counts[1<<trace.TriggerTimer]) / n
	if math.Abs(timerOnly-0.1336) > 0.01 {
		t.Fatalf("Timer-only = %v, want ~0.1336", timerOnly)
	}
}

func TestGeneratedTriggerShares(t *testing.T) {
	pop := genTestPop(t, Config{Seed: 11, NumApps: 2000, Duration: 2 * time.Hour})
	counts := make(map[trace.TriggerType]int)
	total := 0
	for _, app := range pop.Trace.Apps {
		for _, fn := range app.Functions {
			counts[fn.Trigger]++
			total++
		}
	}
	// HTTP should be the dominant function trigger (~55% in Figure 2;
	// combo-coverage constraints shift it slightly).
	httpShare := float64(counts[trace.TriggerHTTP]) / float64(total)
	if httpShare < 0.40 || httpShare > 0.70 {
		t.Fatalf("HTTP function share = %v", httpShare)
	}
	// Timers present in a substantial minority.
	timerShare := float64(counts[trace.TriggerTimer]) / float64(total)
	if timerShare < 0.05 || timerShare > 0.35 {
		t.Fatalf("timer function share = %v", timerShare)
	}
}

func TestGeneratedRateAnchors(t *testing.T) {
	pop := genTestPop(t, Config{Seed: 12, NumApps: 3000, Duration: 2 * time.Hour})
	var le24, le1440 int
	for _, m := range pop.Meta {
		if m.DailyRate <= 24 {
			le24++
		}
		if m.DailyRate <= 1440 {
			le1440++
		}
	}
	n := float64(len(pop.Meta))
	// §3.3: 45% of apps invoked at most once per hour, 81% at most once
	// per minute. App rates are sums over functions with trigger skew,
	// so allow a few points of drift.
	if frac := float64(le24) / n; frac < 0.33 || frac > 0.55 {
		t.Fatalf("P(appRate<=24/day) = %v, want ~0.45", frac)
	}
	if frac := float64(le1440) / n; frac < 0.70 || frac > 0.90 {
		t.Fatalf("P(appRate<=1440/day) = %v, want ~0.81", frac)
	}
}

func TestTimersArePeriodic(t *testing.T) {
	pop := genTestPop(t, Config{Seed: 13, NumApps: 400, Duration: 24 * time.Hour})
	checked := 0
	for ai, app := range pop.Trace.Apps {
		for fi, fn := range app.Functions {
			if fn.Trigger != trace.TriggerTimer || len(fn.Invocations) < 3 {
				continue
			}
			if pop.Meta[ai].Functions[fi].Kind != KindTimer {
				t.Fatalf("timer function with kind %v", pop.Meta[ai].Functions[fi].Kind)
			}
			iats := make([]float64, 0, len(fn.Invocations)-1)
			for i := 1; i < len(fn.Invocations); i++ {
				iats = append(iats, fn.Invocations[i]-fn.Invocations[i-1])
			}
			if cv := stats.CV(iats); cv > 1e-9 {
				t.Fatalf("timer IAT CV = %v, want 0", cv)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no timer functions exercised")
	}
}

func TestExecStatsOrdering(t *testing.T) {
	pop := genTestPop(t, Config{Seed: 14, NumApps: 300, Duration: time.Hour})
	for _, app := range pop.Trace.Apps {
		for _, fn := range app.Functions {
			s := fn.ExecStats
			if !(s.MinSeconds <= s.AvgSeconds && s.AvgSeconds <= s.MaxSeconds) {
				t.Fatalf("exec stats out of order: %+v", s)
			}
			if s.AvgSeconds <= 0 || s.Count <= 0 {
				t.Fatalf("non-positive exec stats: %+v", s)
			}
		}
	}
}

func TestMemoryDistribution(t *testing.T) {
	pop := genTestPop(t, Config{Seed: 15, NumApps: 3000, Duration: time.Hour})
	mems := make([]float64, 0, len(pop.Trace.Apps))
	for _, app := range pop.Trace.Apps {
		if app.MemoryMB <= 0 {
			t.Fatalf("non-positive memory %v", app.MemoryMB)
		}
		mems = append(mems, app.MemoryMB)
	}
	med := stats.Percentile(mems, 50)
	if med < 120 || med > 240 {
		t.Fatalf("median memory = %v MB, want ~170", med)
	}
	p90 := stats.Percentile(mems, 90)
	if p90 < 250 || p90 > 650 {
		t.Fatalf("p90 memory = %v MB, want ~400", p90)
	}
}

func TestRateCapHonored(t *testing.T) {
	cfg := Config{Seed: 16, NumApps: 400, Duration: 24 * time.Hour,
		MaxDailyRate: 2000, MaxEventsPerFunction: 3000}
	pop := genTestPop(t, cfg)
	for _, app := range pop.Trace.Apps {
		for _, fn := range app.Functions {
			if len(fn.Invocations) > 3000 {
				t.Fatalf("function exceeded MaxEventsPerFunction: %d", len(fn.Invocations))
			}
		}
	}
}

func TestMetaParallelToApps(t *testing.T) {
	pop := genTestPop(t, Config{Seed: 17, NumApps: 120, Duration: time.Hour})
	if len(pop.Meta) != len(pop.Trace.Apps) {
		t.Fatal("meta not parallel to apps")
	}
	for i, app := range pop.Trace.Apps {
		if len(pop.Meta[i].Functions) != len(app.Functions) {
			t.Fatalf("app %d: meta functions mismatch", i)
		}
		var sum float64
		for _, fm := range pop.Meta[i].Functions {
			sum += fm.DailyRate
		}
		if math.Abs(sum-pop.Meta[i].DailyRate) > 1e-9 {
			t.Fatalf("app %d: rate sum mismatch", i)
		}
	}
}

func TestAppIATCVMixtureShape(t *testing.T) {
	// Figure 6's qualitative shape: a meaningful share of apps with
	// CV ~ 0, and a substantial share with CV > 1.
	pop := genTestPop(t, Config{Seed: 18, NumApps: 800, Duration: 7 * 24 * time.Hour,
		MaxDailyRate: 2000, MaxEventsPerFunction: 20000})
	var cvs []float64
	for _, app := range pop.Trace.Apps {
		iats := app.IATs()
		if len(iats) < 10 {
			continue
		}
		cvs = append(cvs, stats.CV(iats))
	}
	if len(cvs) < 100 {
		t.Fatalf("too few measurable apps: %d", len(cvs))
	}
	var nearZero, aboveOne int
	for _, cv := range cvs {
		if cv < 0.15 {
			nearZero++
		}
		if cv > 1 {
			aboveOne++
		}
	}
	if frac := float64(nearZero) / float64(len(cvs)); frac < 0.05 {
		t.Fatalf("near-zero CV fraction = %v, want >= 0.05", frac)
	}
	if frac := float64(aboveOne) / float64(len(cvs)); frac < 0.20 {
		t.Fatalf("CV>1 fraction = %v, want >= 0.20 (Figure 6: ~40%%)", frac)
	}
}

func TestOrchestrationExecTimesShort(t *testing.T) {
	r := stats.NewRNG(19)
	var orch, http []float64
	for i := 0; i < 3000; i++ {
		orch = append(orch, generateExecStats(r, trace.TriggerOrchestration, 1).AvgSeconds)
		http = append(http, generateExecStats(r, trace.TriggerHTTP, 1).AvgSeconds)
	}
	if stats.Percentile(orch, 50) > 0.1 {
		t.Fatalf("orchestration median = %v, want ~0.03", stats.Percentile(orch, 50))
	}
	if stats.Percentile(http, 50) < 0.2 {
		t.Fatalf("http median = %v, want ~0.68", stats.Percentile(http, 50))
	}
}
