package workload

import (
	"io"
	"strings"
	"testing"
	"time"

	"repro/internal/trace"
)

// minuteCounts buckets one function's invocations per minute.
func minuteCounts(fn *trace.Function, minutes int) []int {
	counts := make([]int, minutes)
	for _, t := range fn.Invocations {
		counts[int(t/60)]++
	}
	return counts
}

// TestShapedRampCounts pins the ramp shape: invocations per minute =
// round(rps × 60) with rps stepping every SlotMins minutes and
// holding at RPS1.
func TestShapedRampCounts(t *testing.T) {
	pop, err := Generate(Config{
		Seed: 1, NumApps: 1, Duration: 10 * time.Minute,
		Mode: ModeRamp, RPS0: 1, RPS1: 3, StepRPS: 1, SlotMins: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	app := pop.Trace.Apps[0]
	if len(app.Functions) != 1 || app.Functions[0].Trigger != trace.TriggerHTTP {
		t.Fatalf("shaped app: %d functions (trigger %v), want 1 HTTP function",
			len(app.Functions), app.Functions[0].Trigger)
	}
	got := minuteCounts(app.Functions[0], 10)
	// rps: 1,1 → 2,2 → 3,3 → clamped at 3 for the rest.
	want := []int{60, 60, 120, 120, 180, 180, 180, 180, 180, 180}
	for m := range want {
		if got[m] != want[m] {
			t.Errorf("minute %d: %d invocations, want %d", m, got[m], want[m])
		}
	}
	// Invocations are strictly increasing (evenly spaced, no collisions).
	inv := app.Functions[0].Invocations
	for i := 1; i < len(inv); i++ {
		if inv[i] <= inv[i-1] {
			t.Fatalf("invocations not strictly increasing at %d: %v then %v", i, inv[i-1], inv[i])
		}
	}
}

// TestShapedBurstCounts pins the burst shape: the first BurstMins
// minutes of every PeriodMins-minute period run at RPS1, the rest at
// the RPS0 baseline.
func TestShapedBurstCounts(t *testing.T) {
	pop, err := Generate(Config{
		Seed: 1, NumApps: 1, Duration: 10 * time.Minute,
		Mode: ModeBurst, RPS0: 1, RPS1: 5, PeriodMins: 5, BurstMins: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := minuteCounts(pop.Trace.Apps[0].Functions[0], 10)
	want := []int{300, 300, 60, 60, 60, 300, 300, 60, 60, 60}
	for m := range want {
		if got[m] != want[m] {
			t.Errorf("minute %d: %d invocations, want %d", m, got[m], want[m])
		}
	}
}

// TestShapedDiurnalCounts pins the diurnal shape: a raised cosine
// between the RPS0 trough (cycle start) and the RPS1 peak (cycle
// midpoint), repeating every PeriodMins minutes.
func TestShapedDiurnalCounts(t *testing.T) {
	pop, err := Generate(Config{
		Seed: 1, NumApps: 1, Duration: 12 * time.Minute,
		Mode: ModeDiurnal, RPS0: 0, RPS1: 2, PeriodMins: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	app := pop.Trace.Apps[0]
	if len(app.Functions) != 1 || app.Functions[0].Trigger != trace.TriggerHTTP {
		t.Fatalf("shaped app: %d functions (trigger %v), want 1 HTTP function",
			len(app.Functions), app.Functions[0].Trigger)
	}
	got := minuteCounts(app.Functions[0], 12)
	// round(60 · 2 · (1 − cos(2πm/10))/2): a symmetric bell per cycle,
	// wrapping back to the trough at minute 10.
	want := []int{0, 11, 41, 79, 109, 120, 109, 79, 41, 11, 0, 11}
	for m := range want {
		if got[m] != want[m] {
			t.Errorf("minute %d: %d invocations, want %d", m, got[m], want[m])
		}
	}

	// A nonzero trough floors every minute: rps0=0.5..1.5 over a
	// 4-minute cycle.
	pop, err = Generate(Config{
		Seed: 1, NumApps: 1, Duration: 6 * time.Minute,
		Mode: ModeDiurnal, RPS0: 0.5, RPS1: 1.5, PeriodMins: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	got = minuteCounts(pop.Trace.Apps[0].Functions[0], 6)
	want = []int{30, 60, 90, 60, 30, 60}
	for m := range want {
		if got[m] != want[m] {
			t.Errorf("trough run minute %d: %d invocations, want %d", m, got[m], want[m])
		}
	}
}

// TestShapedSourceMatchesGenerate: the lazy source and the batch
// generator agree bit for bit on shaped workloads too.
func TestShapedSourceMatchesGenerate(t *testing.T) {
	cfg := Config{
		Seed: 23, NumApps: 8, Duration: 30 * time.Minute,
		Mode: ModeBurst, RPS0: 0.5, RPS1: 10,
	}
	pop, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewSource(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range pop.Trace.Apps {
		got, err := src.Next()
		if err != nil {
			t.Fatalf("app %d: %v", i, err)
		}
		if got.ID != want.ID || got.MemoryMB != want.MemoryMB {
			t.Fatalf("app %d: %s/%v vs %s/%v", i, got.ID, got.MemoryMB, want.ID, want.MemoryMB)
		}
		gfn, wfn := got.Functions[0], want.Functions[0]
		if gfn.ID != wfn.ID || gfn.ExecStats != wfn.ExecStats || len(gfn.Invocations) != len(wfn.Invocations) {
			t.Fatalf("app %s: function mismatch", want.ID)
		}
		for k := range wfn.Invocations {
			if gfn.Invocations[k] != wfn.Invocations[k] {
				t.Fatalf("app %s invocation %d differs", want.ID, k)
			}
		}
	}
	if _, err := src.Next(); err != io.EOF {
		t.Fatalf("after drain: %v, want io.EOF", err)
	}
}

// TestShapedMaxEventsCap: the per-function event cap truncates shaped
// streams like calibrated ones.
func TestShapedMaxEventsCap(t *testing.T) {
	pop, err := Generate(Config{
		Seed: 1, NumApps: 1, Duration: time.Hour,
		Mode: ModeRamp, RPS0: 10, RPS1: 10, MaxEventsPerFunction: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(pop.Trace.Apps[0].Functions[0].Invocations); n != 100 {
		t.Fatalf("%d invocations, want the 100-event cap", n)
	}
}

// TestShapedValidation pins the mode/parameter error surface.
func TestShapedValidation(t *testing.T) {
	base := Config{NumApps: 1, Duration: 10 * time.Minute}
	cases := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"params without mode", func(c *Config) { c.RPS0 = 5 }, "without Mode"},
		{"unknown mode", func(c *Config) { c.Mode = "spike" }, "unknown Mode"},
		{"ramp without step", func(c *Config) { c.Mode = ModeRamp; c.RPS0 = 1; c.RPS1 = 5 }, "StepRPS"},
		{"ramp inverted", func(c *Config) { c.Mode = ModeRamp; c.RPS0 = 5; c.RPS1 = 1 }, "RPS0 <= RPS1"},
		{"ramp with period", func(c *Config) {
			c.Mode = ModeRamp
			c.RPS0, c.RPS1, c.StepRPS = 1, 2, 1
			c.PeriodMins = 20
		}, "burst-mode parameters"},
		{"burst with step", func(c *Config) { c.Mode = ModeBurst; c.RPS1, c.StepRPS = 5, 1 }, "ramp-mode parameters"},
		{"burst longer than period", func(c *Config) {
			c.Mode = ModeBurst
			c.RPS1, c.PeriodMins, c.BurstMins = 5, 5, 5
		}, "BurstMins < PeriodMins"},
		{"diurnal inverted", func(c *Config) { c.Mode = ModeDiurnal; c.RPS0, c.RPS1 = 5, 1 }, "RPS0 <= RPS1"},
		{"diurnal degenerate period", func(c *Config) {
			c.Mode = ModeDiurnal
			c.RPS1, c.PeriodMins = 5, 1
		}, "must be >= 2"},
		{"diurnal with step", func(c *Config) { c.Mode = ModeDiurnal; c.RPS1, c.StepRPS = 5, 1 }, "ramp-mode parameters"},
		{"diurnal with burst", func(c *Config) { c.Mode = ModeDiurnal; c.RPS1, c.BurstMins = 5, 3 }, "burst-mode parameter"},
	}
	for _, tc := range cases {
		cfg := base
		tc.mut(&cfg)
		err := cfg.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: Validate() = %v, want error containing %q", tc.name, err, tc.want)
		}
	}
	// The happy paths validate.
	for _, cfg := range []Config{
		{NumApps: 1, Duration: 10 * time.Minute, Mode: ModeRamp, RPS0: 1, RPS1: 5, StepRPS: 2},
		{NumApps: 1, Duration: 10 * time.Minute, Mode: ModeBurst, RPS0: 0, RPS1: 5},
		{NumApps: 1, Duration: 10 * time.Minute, Mode: ModeDiurnal, RPS0: 1, RPS1: 30},
		{NumApps: 1, Duration: 10 * time.Minute, Mode: ModeDiurnal, RPS0: 0, RPS1: 2, PeriodMins: 10},
	} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("valid shaped config rejected: %v", err)
		}
	}
}
