package workload

import (
	"io"
	"testing"
	"time"
)

// TestSourceMatchesGenerate proves the lazy generator source yields
// exactly the app sequence Generate materializes: same IDs, functions,
// and bit-identical invocation timestamps.
func TestSourceMatchesGenerate(t *testing.T) {
	cfg := Config{
		Seed: 17, NumApps: 60, Duration: 24 * time.Hour,
		MaxDailyRate: 500, MaxEventsPerFunction: 2000,
	}
	pop, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewSource(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if src.Horizon() != cfg.Duration {
		t.Fatalf("horizon %v, want %v", src.Horizon(), cfg.Duration)
	}
	for i, want := range pop.Trace.Apps {
		got, err := src.Next()
		if err != nil {
			t.Fatalf("app %d: %v", i, err)
		}
		if got.ID != want.ID || got.Owner != want.Owner || got.MemoryMB != want.MemoryMB {
			t.Fatalf("app %d: %s/%s/%v vs %s/%s/%v", i,
				got.ID, got.Owner, got.MemoryMB, want.ID, want.Owner, want.MemoryMB)
		}
		if len(got.Functions) != len(want.Functions) {
			t.Fatalf("app %s: %d functions, want %d", want.ID, len(got.Functions), len(want.Functions))
		}
		for j, wfn := range want.Functions {
			gfn := got.Functions[j]
			if gfn.ID != wfn.ID || gfn.Trigger != wfn.Trigger || gfn.ExecStats != wfn.ExecStats {
				t.Fatalf("app %s fn %d metadata differs", want.ID, j)
			}
			if len(gfn.Invocations) != len(wfn.Invocations) {
				t.Fatalf("app %s fn %s: %d invocations, want %d",
					want.ID, wfn.ID, len(gfn.Invocations), len(wfn.Invocations))
			}
			for k := range wfn.Invocations {
				if gfn.Invocations[k] != wfn.Invocations[k] {
					t.Fatalf("app %s fn %s invocation %d differs", want.ID, wfn.ID, k)
				}
			}
		}
	}
	if _, err := src.Next(); err != io.EOF {
		t.Fatalf("after drain: %v, want io.EOF", err)
	}
}

func TestSourceValidatesConfig(t *testing.T) {
	if _, err := NewSource(Config{NumApps: -1, Duration: time.Hour}); err == nil {
		t.Fatal("invalid config accepted")
	}
}
