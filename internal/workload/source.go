package workload

import (
	"io"
	"time"

	"repro/internal/stats"
	"repro/internal/trace"
)

// Source generates a synthetic population lazily, one application per
// Next call, yielding exactly the app sequence Generate(cfg) would
// materialize (same seed, same apps, same order) while holding only
// the app in flight. It feeds simulations of populations far larger
// than RAM; the per-app generation metadata Population carries is not
// produced on this path.
type Source struct {
	cfg     Config
	r       *stats.RNG
	profile *DiurnalProfile
	horizon float64
	days    float64

	idx       int
	fnCounter int
}

// NewSource validates cfg and returns a lazy generator source.
func NewSource(cfg Config) (*Source, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	horizon := cfg.Duration.Seconds()
	return &Source{
		cfg:     cfg,
		r:       stats.NewRNG(cfg.Seed),
		profile: NewDiurnalProfile(),
		horizon: horizon,
		days:    horizon / 86400,
	}, nil
}

// Horizon implements trace.Source.
func (s *Source) Horizon() time.Duration { return s.cfg.Duration }

// Next implements trace.Source.
func (s *Source) Next() (*trace.App, error) {
	if s.idx >= s.cfg.NumApps {
		return nil, io.EOF
	}
	appRNG := s.r.Split()
	app, _ := generateApp(appRNG, s.idx, &s.fnCounter, s.cfg, s.profile, s.horizon, s.days)
	s.idx++
	return app, nil
}
