package policy

import (
	"testing"
	"time"
)

func TestFixedKeepAlive(t *testing.T) {
	p := FixedKeepAlive{KeepAlive: 10 * time.Minute}
	a := p.NewApp("app")
	for i := 0; i < 3; i++ {
		d := a.NextWindows(time.Hour, i == 0)
		if d.PreWarm != 0 {
			t.Fatalf("fixed policy must never pre-warm, got %v", d.PreWarm)
		}
		if d.KeepAlive != 10*time.Minute {
			t.Fatalf("keepAlive = %v", d.KeepAlive)
		}
		if d.Forever {
			t.Fatal("fixed policy is not forever")
		}
		if d.Mode != ModeFixed {
			t.Fatalf("mode = %v", d.Mode)
		}
	}
}

func TestFixedName(t *testing.T) {
	p := FixedKeepAlive{KeepAlive: 10 * time.Minute}
	if p.Name() != "fixed-10m0s" {
		t.Fatalf("name = %q", p.Name())
	}
}

func TestNoUnloading(t *testing.T) {
	p := NoUnloading{}
	a := p.NewApp("app")
	d := a.NextWindows(0, true)
	if !d.Forever {
		t.Fatal("no-unloading must be forever")
	}
	if d.Mode != ModeNoUnload {
		t.Fatalf("mode = %v", d.Mode)
	}
	if p.Name() != "no-unloading" {
		t.Fatalf("name = %q", p.Name())
	}
}

func TestModeString(t *testing.T) {
	modes := []Mode{ModeFixed, ModeNoUnload, ModeStandard, ModeHistogram, ModeARIMA, Mode(99)}
	for _, m := range modes {
		if m.String() == "" {
			t.Fatalf("empty string for mode %d", uint8(m))
		}
	}
}
