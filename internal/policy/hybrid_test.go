package policy

import (
	"math"
	"testing"
	"time"

	"repro/internal/ithist"
	"repro/internal/stats"
)

func TestDefaultHybridConfigValid(t *testing.T) {
	if err := DefaultHybridConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestHybridConfigValidation(t *testing.T) {
	mk := func(mut func(*HybridConfig)) HybridConfig {
		c := DefaultHybridConfig()
		mut(&c)
		return c
	}
	bad := []HybridConfig{
		mk(func(c *HybridConfig) { c.Histogram.NumBins = 0 }),
		mk(func(c *HybridConfig) { c.CVThreshold = -1 }),
		mk(func(c *HybridConfig) { c.OOBThreshold = 0 }),
		mk(func(c *HybridConfig) { c.OOBThreshold = 1.5 }),
		mk(func(c *HybridConfig) { c.ARIMAMargin = 0 }),
		mk(func(c *HybridConfig) { c.ARIMAMargin = 1 }),
		mk(func(c *HybridConfig) { c.ARIMAMinSamples = 1 }),
		mk(func(c *HybridConfig) { c.ARIMAMaxSeries = 2 }),
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestNewHybridPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHybrid(HybridConfig{})
}

func TestHybridFirstInvocationIsStandard(t *testing.T) {
	a := NewHybrid(DefaultHybridConfig()).NewApp("app")
	d := a.NextWindows(0, true)
	if d.Mode != ModeStandard {
		t.Fatalf("mode = %v, want standard", d.Mode)
	}
	if d.PreWarm != 0 {
		t.Fatalf("preWarm = %v", d.PreWarm)
	}
	if d.KeepAlive != 4*time.Hour {
		t.Fatalf("keepAlive = %v, want histogram range", d.KeepAlive)
	}
}

func TestHybridLearnsConcentratedPattern(t *testing.T) {
	a := NewHybrid(DefaultHybridConfig()).NewApp("app")
	var d Decision
	first := true
	for i := 0; i < 20; i++ {
		d = a.NextWindows(30*time.Minute+15*time.Second, first)
		first = false
	}
	if d.Mode != ModeHistogram {
		t.Fatalf("mode = %v, want histogram", d.Mode)
	}
	// Head bin 30 → pre-warm 30min*0.9 = 27min.
	if d.PreWarm != 27*time.Minute {
		t.Fatalf("preWarm = %v, want 27m", d.PreWarm)
	}
	// Tail edge 31min*1.1 = 34.1min; KA = 34.1-27 = 7.1min.
	tail := 31 * time.Minute
	wantKA := time.Duration(float64(tail)*1.1) - 27*time.Minute
	if d.KeepAlive != wantKA {
		t.Fatalf("keepAlive = %v, want %v", d.KeepAlive, wantKA)
	}
}

func TestHybridFlatPatternStaysStandard(t *testing.T) {
	// ITs spread uniformly over the full range: CV of bin counts stays
	// below the threshold, so the policy must remain conservative.
	cfg := DefaultHybridConfig()
	a := NewHybrid(cfg).NewApp("app")
	r := stats.NewRNG(42)
	var d Decision
	first := true
	for i := 0; i < 960; i++ { // ~4 observations/bin on average
		it := time.Duration(r.Float64() * float64(4*time.Hour))
		d = a.NextWindows(it, first)
		first = false
	}
	if d.Mode != ModeStandard {
		t.Fatalf("mode = %v, want standard for flat ITs", d.Mode)
	}
	if d.KeepAlive != 4*time.Hour || d.PreWarm != 0 {
		t.Fatalf("standard windows wrong: %+v", d)
	}
}

func TestHybridOOBHeavyUsesARIMA(t *testing.T) {
	// All ITs ~6h, beyond the 4h range: OOB fraction 1 → ARIMA path.
	a := NewHybrid(DefaultHybridConfig()).NewApp("app")
	var d Decision
	first := true
	r := stats.NewRNG(7)
	for i := 0; i < 12; i++ {
		it := 6*time.Hour + time.Duration(r.Float64()*float64(4*time.Minute))
		d = a.NextWindows(it, first)
		first = false
	}
	if d.Mode != ModeARIMA {
		t.Fatalf("mode = %v, want arima", d.Mode)
	}
	// Prediction ~362min; pre-warm = 85% of it, keep-alive = 30%.
	pw := d.PreWarm.Minutes()
	if pw < 0.85*340 || pw > 0.85*380 {
		t.Fatalf("preWarm = %v min", pw)
	}
	ka := d.KeepAlive.Minutes()
	if ka < 0.29*340 || ka > 0.31*380 {
		t.Fatalf("keepAlive = %v min", ka)
	}
	// Prediction ±margin is covered by [pw, pw+ka].
	if pw+ka < 362 || pw > 362 {
		t.Fatalf("window [%v, %v] does not straddle ~362min prediction", pw, pw+ka)
	}
}

func TestHybridARIMAMarginExample(t *testing.T) {
	// The paper's worked example: predicted IT of 5 hours gives a
	// pre-warming window of 4.25h and keep-alive of 1.5h.
	cfg := DefaultHybridConfig()
	a := NewHybrid(cfg).NewApp("app").(*hybridApp)
	for i := 0; i < 10; i++ {
		a.pushIT(5 * time.Hour) // constant series
	}
	d, ok := a.arimaDecision()
	if !ok {
		t.Fatal("expected ARIMA decision")
	}
	if math.Abs(d.PreWarm.Hours()-4.25) > 0.01 {
		t.Fatalf("preWarm = %v, want 4.25h", d.PreWarm)
	}
	if math.Abs(d.KeepAlive.Hours()-1.5) > 0.01 {
		t.Fatalf("keepAlive = %v, want 1.5h", d.KeepAlive)
	}
}

func TestHybridDisableARIMAFallsBack(t *testing.T) {
	cfg := DefaultHybridConfig()
	cfg.DisableARIMA = true
	a := NewHybrid(cfg).NewApp("app")
	var d Decision
	first := true
	for i := 0; i < 12; i++ {
		d = a.NextWindows(6*time.Hour, first)
		first = false
	}
	if d.Mode != ModeStandard {
		t.Fatalf("mode = %v, want standard with ARIMA disabled", d.Mode)
	}
}

func TestHybridTooFewSamplesForARIMA(t *testing.T) {
	a := NewHybrid(DefaultHybridConfig()).NewApp("app")
	d := a.NextWindows(0, true)
	d = a.NextWindows(10*time.Hour, false)
	d = a.NextWindows(10*time.Hour, false) // 2 OOB ITs < ARIMAMinSamples
	if d.Mode != ModeStandard {
		t.Fatalf("mode = %v, want standard before enough ARIMA samples", d.Mode)
	}
}

func TestHybridSeriesCapped(t *testing.T) {
	cfg := DefaultHybridConfig()
	cfg.ARIMAMaxSeries = 10
	cfg.ARIMAMinSamples = 4
	a := NewHybrid(cfg).NewApp("app").(*hybridApp)
	first := true
	for i := 0; i < 50; i++ {
		a.NextWindows(time.Minute, first)
		first = false
	}
	if len(a.its) > 10 {
		t.Fatalf("series len = %d, want <= 10", len(a.its))
	}
}

func TestHybridRegimeChangeRecovers(t *testing.T) {
	// A pattern change floods new bins; once the new pattern dominates,
	// the histogram head should track the new IT.
	cfg := DefaultHybridConfig()
	p := NewHybrid(cfg)
	a := p.NewApp("app")
	first := true
	for i := 0; i < 50; i++ {
		a.NextWindows(10*time.Minute, first)
		first = false
	}
	var d Decision
	for i := 0; i < 500; i++ {
		d = a.NextWindows(60*time.Minute, false)
	}
	if d.Mode != ModeHistogram {
		t.Fatalf("mode = %v", d.Mode)
	}
	// Head should now be at the old 10min bin only if it is within the
	// 5th percentile; 50/550 ≈ 9% > 5%, so head remains at 10min bin;
	// after enough new observations the tail must cover 60 min.
	if d.PreWarm+d.KeepAlive < 60*time.Minute {
		t.Fatalf("windows [%v, %v] do not cover the new 60m IT", d.PreWarm, d.PreWarm+d.KeepAlive)
	}
}

func TestHybridName(t *testing.T) {
	p := NewHybrid(DefaultHybridConfig())
	if p.Name() != "hybrid-4h0m0s[5,99]" {
		t.Fatalf("name = %q", p.Name())
	}
	cfg := DefaultHybridConfig()
	cfg.DisableARIMA = true
	if got := NewHybrid(cfg).Name(); got != "hybrid-4h0m0s[5,99]-noarima" {
		t.Fatalf("name = %q", got)
	}
}

func TestHybridCustomRange(t *testing.T) {
	cfg := DefaultHybridConfig()
	cfg.Histogram.NumBins = 60 // 1-hour range
	a := NewHybrid(cfg).NewApp("app")
	d := a.NextWindows(0, true)
	if d.KeepAlive != time.Hour {
		t.Fatalf("standard keep-alive = %v, want 1h (range)", d.KeepAlive)
	}
}

func TestHybridWindowsWithCustomCutoffs(t *testing.T) {
	// [0,100] cutoffs with margin 0: windows must cover min..max ITs.
	cfg := DefaultHybridConfig()
	cfg.Histogram.HeadPercentile = 0
	cfg.Histogram.TailPercentile = 100
	cfg.Histogram.Margin = 0
	cfg.CVThreshold = 0.5
	a := NewHybrid(cfg).NewApp("app")
	first := true
	var d Decision
	for i := 0; i < 30; i++ {
		it := time.Duration(10+i%3) * time.Minute // ITs 10,11,12 min
		d = a.NextWindows(it, first)
		first = false
	}
	if d.Mode != ModeHistogram {
		t.Fatalf("mode = %v", d.Mode)
	}
	if d.PreWarm != 10*time.Minute {
		t.Fatalf("preWarm = %v, want 10m", d.PreWarm)
	}
	if d.PreWarm+d.KeepAlive < 13*time.Minute {
		t.Fatalf("coverage ends at %v, want >= 13m", d.PreWarm+d.KeepAlive)
	}
}

func TestHistogramSizeMatchesProductionNote(t *testing.T) {
	// §6: 240 buckets per app. Verify default config matches.
	cfg := ithist.DefaultConfig()
	if cfg.NumBins != 240 {
		t.Fatalf("bins = %d", cfg.NumBins)
	}
}
