// Package policy implements the keep-alive / pre-warming policies the
// paper studies: the fixed keep-alive used by providers (§2), a
// no-unloading upper bound, and the paper's contribution — the hybrid
// histogram policy (§4.2, Figure 10), which per application selects
// between a range-limited idle-time histogram, a conservative standard
// keep-alive (while the histogram is unrepresentative), and an ARIMA
// time-series forecast (when too many idle times fall out of range).
package policy

import (
	"fmt"
	"time"
)

// Decision is what a policy prescribes after each function execution
// ends (Figure 9): wait PreWarm, then keep the application image
// loaded for KeepAlive. PreWarm == 0 means the application is not
// unloaded after the execution, and KeepAlive runs from the execution
// end. Forever marks an infinite keep-alive (the no-unloading policy).
type Decision struct {
	PreWarm   time.Duration
	KeepAlive time.Duration
	Forever   bool
	Mode      Mode
}

// Mode labels which component of a policy produced a decision, used by
// the evaluation to attribute outcomes (e.g. Figure 19's ARIMA study).
type Mode uint8

// Decision provenance labels.
const (
	ModeFixed Mode = iota
	ModeNoUnload
	ModeStandard  // hybrid's conservative fallback
	ModeHistogram // hybrid's histogram windows
	ModeARIMA     // hybrid's time-series path

	// NumModes is the number of provenance labels. Attribution arrays
	// (sim.AppResult.ModeCounts) are sized by it, so a policy mode
	// added above extends them at compile time instead of silently
	// corrupting per-mode tallies.
	NumModes = int(ModeARIMA) + 1
)

// String returns a short label for the mode.
func (m Mode) String() string {
	switch m {
	case ModeFixed:
		return "fixed"
	case ModeNoUnload:
		return "no-unload"
	case ModeStandard:
		return "standard"
	case ModeHistogram:
		return "histogram"
	case ModeARIMA:
		return "arima"
	default:
		return fmt.Sprintf("mode(%d)", uint8(m))
	}
}

// AppPolicy makes keep-alive decisions for a single application. The
// caller invokes NextWindows when an execution ends, passing the idle
// time that preceded the invocation that just ran (first=true for the
// app's first invocation, in which case idle is ignored).
//
// Implementations are not safe for concurrent use; callers serialize
// per-app policy updates — the simulator by walking one app per
// goroutine, the serving path (internal/serve) with a per-app mutex
// behind sharded locks.
type AppPolicy interface {
	NextWindows(idle time.Duration, first bool) Decision
}

// Policy is a factory of per-application policies.
type Policy interface {
	// Name returns a short identifier used in reports.
	Name() string
	// NewApp creates the policy state for one application.
	NewApp(appID string) AppPolicy
}

// Releasable is implemented by AppPolicy values whose state can be
// recycled through an internal pool. Callers that are finished with an
// app (e.g. the simulator after walking one application's trace) may
// call Release exactly once and must not use the value afterwards;
// a subsequent NewApp on the same policy configuration may then reuse
// the backing state instead of allocating.
//
// The wildlint release analyzer (internal/lint) enforces the hygiene
// half of this contract statically: a NewApp result must be released
// on every path through the acquiring function or escape to an owner
// (annotated //wildlint:owner when stored into a structure).
type Releasable interface {
	Release()
}

// DecisionRun is a run-length-encoded span of identical consecutive
// decisions, the unit SequencePolicy implementations emit. Decisions
// change rarely relative to invocations (the histogram windows are
// memoized and the fallback regimes are constant), so run-length
// encoding keeps batch decision traffic proportional to the number of
// changes rather than the number of invocations.
type DecisionRun struct {
	D Decision
	N int32 // number of consecutive invocations governed by D
}

// SequencePolicy is an optional AppPolicy extension for batch
// decision-making: the appended runs expand to exactly the decisions
// the per-call NextWindows(idles[i], i == 0) walk would produce from
// the app's current state (for the common case of a freshly created
// app, its whole decision history). Implementations must produce
// decisions identical to the per-call path; they exist so bulk
// consumers (the simulator) can avoid one interface dispatch per
// invocation and keep the per-invocation state in registers.
type SequencePolicy interface {
	// NextWindowsSeq appends the decision runs for idles to runs
	// (typically runs[:0] of a reused buffer) and returns the result.
	NextWindowsSeq(idles []time.Duration, runs []DecisionRun) []DecisionRun
}

// fixedApp and noUnloadApp produce constant decisions, so their batch
// paths are single runs.

// NextWindowsSeq implements SequencePolicy.
func (a fixedApp) NextWindowsSeq(idles []time.Duration, runs []DecisionRun) []DecisionRun {
	if len(idles) == 0 {
		return runs
	}
	return append(runs, DecisionRun{
		D: Decision{PreWarm: 0, KeepAlive: a.ka, Mode: ModeFixed},
		N: int32(len(idles)),
	})
}

// NextWindowsSeq implements SequencePolicy.
func (noUnloadApp) NextWindowsSeq(idles []time.Duration, runs []DecisionRun) []DecisionRun {
	if len(idles) == 0 {
		return runs
	}
	return append(runs, DecisionRun{
		D: Decision{Forever: true, Mode: ModeNoUnload},
		N: int32(len(idles)),
	})
}

// FixedKeepAlive is the state-of-the-practice policy: keep the
// application warm for a fixed duration after every execution
// (10 minutes in AWS and OpenWhisk, 20 in Azure; §1, §2).
type FixedKeepAlive struct {
	KeepAlive time.Duration
}

// Name implements Policy.
func (p FixedKeepAlive) Name() string {
	return fmt.Sprintf("fixed-%s", p.KeepAlive)
}

// NewApp implements Policy.
func (p FixedKeepAlive) NewApp(string) AppPolicy { return fixedApp{ka: p.KeepAlive} }

type fixedApp struct{ ka time.Duration }

func (a fixedApp) NextWindows(time.Duration, bool) Decision {
	return Decision{PreWarm: 0, KeepAlive: a.ka, Mode: ModeFixed}
}

// NoUnloading keeps every application loaded forever after its first
// invocation: the zero-cold-start, maximum-cost reference point of
// Figure 14.
type NoUnloading struct{}

// Name implements Policy.
func (NoUnloading) Name() string { return "no-unloading" }

// NewApp implements Policy.
func (NoUnloading) NewApp(string) AppPolicy { return noUnloadApp{} }

type noUnloadApp struct{}

func (noUnloadApp) NextWindows(time.Duration, bool) Decision {
	return Decision{Forever: true, Mode: ModeNoUnload}
}
