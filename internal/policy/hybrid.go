package policy

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/arima"
	"repro/internal/forecast"
	"repro/internal/ithist"
)

// HybridConfig parameterizes the hybrid histogram policy. The zero
// value is invalid; start from DefaultHybridConfig.
type HybridConfig struct {
	// Histogram configures the per-app idle-time histogram (bins,
	// range, cutoff percentiles, margin).
	Histogram ithist.Config
	// CVThreshold is the minimum bin-count coefficient of variation
	// for the histogram to be considered representative (the paper
	// selects 2; Figure 18).
	CVThreshold float64
	// MinObservations is the minimum number of recorded ITs before the
	// histogram may be trusted at all.
	MinObservations int64
	// OOBThreshold is the fraction of out-of-bounds ITs above which
	// the policy switches to the ARIMA path ("too many OOB ITs",
	// Figure 10).
	OOBThreshold float64
	// ARIMAMargin is the forecast error allowance (default 0.15): the
	// pre-warm window is the prediction minus the margin, and the
	// keep-alive window spans the margin on both sides of it (§4.2).
	ARIMAMargin float64
	// ARIMAMinSamples is the minimum IT count before fitting ARIMA.
	ARIMAMinSamples int
	// ARIMAMaxSeries caps the retained IT series length (oldest
	// dropped), bounding per-app state.
	ARIMAMaxSeries int
	// DisableARIMA turns the time-series path off; apps with OOB-heavy
	// IT distributions fall back to the standard keep-alive (used for
	// the Figure 19 ablation).
	DisableARIMA bool
	// DisablePreWarm keeps applications loaded after execution (pre-
	// warming window forced to 0) with the keep-alive extended to cover
	// through the histogram tail — the "Hybrid No PW, KA:99th" variant
	// of the Figure 17 ablation.
	DisablePreWarm bool
	// Forecaster predicts the next idle time (in minutes) on the
	// time-series path. Nil selects ARIMA, the paper's default; the
	// paper notes the model is replaceable (§4.2), and
	// forecast.ExpSmoothing is a cheap drop-in.
	Forecaster forecast.Forecaster
	// FastMode (spec exact=off) relaxes the bit-exactness contract of
	// the decision pipeline: the histogram gate uses closed-form CV
	// moments with a square-free threshold comparison
	// (ithist.DecideSeqFast), and the default ARIMA forecaster uses
	// reordered float accumulation. Decisions may differ from the
	// default lane at CV threshold ties; internal/equiv measures and
	// bounds the divergence.
	FastMode bool
	// RefitInterval (spec refit=<dur>) amortizes the ARIMA refit for
	// OOB-managed apps: a fitted forecast is reused until at least
	// RefitInterval of observed idle (trace) time has accumulated since
	// the fit, instead of refitting on every invocation. 0 keeps the
	// paper's §4.2 refit-per-invocation semantics exactly. Nonzero
	// requires FastMode.
	RefitInterval time.Duration
}

// DefaultHybridConfig returns the paper's defaults: 4-hour 1-minute
// histogram with [5,99] cutoffs and 10% margin, CV threshold 2, 50%
// OOB threshold, 15% ARIMA margin.
func DefaultHybridConfig() HybridConfig {
	return HybridConfig{
		Histogram:       ithist.DefaultConfig(),
		CVThreshold:     2,
		MinObservations: 2,
		OOBThreshold:    0.5,
		ARIMAMargin:     0.15,
		ARIMAMinSamples: 4,
		ARIMAMaxSeries:  1000,
	}
}

// Validate reports whether the configuration is usable.
func (c HybridConfig) Validate() error {
	if err := c.Histogram.Validate(); err != nil {
		return err
	}
	if c.CVThreshold < 0 {
		return fmt.Errorf("policy: CVThreshold %v negative", c.CVThreshold)
	}
	if c.OOBThreshold <= 0 || c.OOBThreshold > 1 {
		return fmt.Errorf("policy: OOBThreshold %v out of (0,1]", c.OOBThreshold)
	}
	if c.ARIMAMargin <= 0 || c.ARIMAMargin >= 1 {
		return fmt.Errorf("policy: ARIMAMargin %v out of (0,1)", c.ARIMAMargin)
	}
	if c.ARIMAMinSamples < 3 {
		return fmt.Errorf("policy: ARIMAMinSamples %d too small", c.ARIMAMinSamples)
	}
	if c.ARIMAMaxSeries < c.ARIMAMinSamples {
		return fmt.Errorf("policy: ARIMAMaxSeries %d < ARIMAMinSamples %d",
			c.ARIMAMaxSeries, c.ARIMAMinSamples)
	}
	if c.RefitInterval < 0 {
		return fmt.Errorf("policy: RefitInterval %v negative", c.RefitInterval)
	}
	if c.RefitInterval > 0 && !c.FastMode {
		return fmt.Errorf("policy: RefitInterval %v requires FastMode (spec exact=off): amortized refits break the exact lane's refit-per-invocation pin", c.RefitInterval)
	}
	return nil
}

// Hybrid is the paper's hybrid histogram policy.
type Hybrid struct {
	cfg HybridConfig
}

// NewHybrid constructs the policy, panicking on invalid configuration
// (programming error, as configs are code-supplied).
func NewHybrid(cfg HybridConfig) *Hybrid {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Hybrid{cfg: cfg}
}

// Name implements Policy.
func (p *Hybrid) Name() string {
	h := p.cfg.Histogram
	name := fmt.Sprintf("hybrid-%s[%g,%g]", h.BinWidth*time.Duration(h.NumBins),
		h.HeadPercentile, h.TailPercentile)
	if p.cfg.DisableARIMA {
		name += "-noarima"
	}
	if p.cfg.DisablePreWarm {
		name += "-nopw"
	}
	if p.cfg.FastMode {
		name += "-fast"
		if p.cfg.RefitInterval > 0 {
			name += fmt.Sprintf("-refit%s", p.cfg.RefitInterval)
		}
	}
	return name
}

// Config returns the policy configuration.
func (p *Hybrid) Config() HybridConfig { return p.cfg }

// hybridAppPool recycles per-app policy state across NewApp/Release
// cycles (sim walks hundreds of thousands of apps per policy sweep; a
// recycled app reuses its histogram and ring-buffer backing instead of
// allocating ~2KB each).
var hybridAppPool sync.Pool

// NewApp implements Policy. If a previously Released app with the same
// histogram configuration is pooled, its backing state is reused.
func (p *Hybrid) NewApp(string) AppPolicy {
	// A pooled app with an incompatible histogram shape is deliberately
	// dropped (below) rather than re-pooled.
	//wildlint:allow poolleak
	if v := hybridAppPool.Get(); v != nil {
		a := v.(*hybridApp)
		if a.hist.Config() == p.cfg.Histogram {
			a.reset(p.cfg)
			return a
		}
		// Incompatible histogram shape: drop it and build fresh.
	}
	a := &hybridApp{hist: ithist.New(p.cfg.Histogram)}
	a.reset(p.cfg)
	return a
}

// defaultForecaster is the paper's default ARIMA order search, boxed
// once so recycling an app never re-allocates the interface value.
var defaultForecaster forecast.Forecaster = forecast.ARIMA{
	Options: arima.Options{MaxP: 2, MaxD: 1, MaxQ: 1},
}

// defaultForecasterRelaxed is the same order search with reordered
// float accumulation licensed — the fast lane's default.
var defaultForecasterRelaxed forecast.Forecaster = forecast.ARIMA{
	Options: arima.Options{MaxP: 2, MaxD: 1, MaxQ: 1, Relaxed: true},
}

// resolveForecaster returns the configured forecaster or the paper's
// default ARIMA order search (relaxed accumulation in fast mode).
func resolveForecaster(cfg HybridConfig) forecast.Forecaster {
	if cfg.Forecaster != nil {
		return cfg.Forecaster
	}
	if cfg.FastMode {
		return defaultForecasterRelaxed
	}
	return defaultForecaster
}

type hybridApp struct {
	cfg  HybridConfig
	hist *ithist.Histogram
	fc   forecast.Forecaster

	// its is the retained idle-time series feeding the forecaster: a
	// fixed-capacity ring (capacity ARIMAMaxSeries) holding the raw
	// durations, oldest at itsHead once wrapped. Durations convert to
	// the forecaster's minutes scale only at fit time, so the common
	// per-invocation path does no float division. obsSeen counts every
	// recorded IT and keys the decision and forecast memos.
	its     []time.Duration
	itsHead int
	obsSeen uint64

	series []float64          // scratch: linearized minutes series for fits
	wruns  []ithist.WindowRun // scratch: batch kernel output

	// Decision memo: the last decision remains valid until new data
	// arrives (the decision is a pure function of histogram and series
	// state, and every NextWindows observation bumps obsSeen), so
	// back-to-back queries without an observation are free.
	lastDecision Decision
	lastSeen     uint64
	lastValid    bool

	// Forecast memo: prediction fitted when obsSeen was fitSeen. The
	// paper refits after every invocation of an ARIMA-managed app; on
	// the exact lane the memo only skips refits when no new IT arrived,
	// preserving that semantics. The fast lane (RefitInterval > 0)
	// additionally reuses the memo while less than RefitInterval of
	// observed idle time has passed since the fit (clock - fitAt).
	fitSeen  uint64
	fitPred  float64
	fitOK    bool
	fitValid bool

	// clock accumulates observed idle (trace) time and fitAt stamps
	// the clock at the last actual fit, so clk - fitAt is the fit's
	// age. Both only maintained in fast mode (the exact lane never
	// reads them). The per-call path advances the clock on every
	// observation; the batch kernel only across forecast-path (OOB)
	// observations — the fit is only consulted there, and since fitAt
	// comes from the same clock, stretches skipped by both cancel out
	// of the age.
	clock time.Duration
	fitAt time.Duration
}

// reset prepares a fresh or recycled app for a new lifetime.
func (a *hybridApp) reset(cfg HybridConfig) {
	a.cfg = cfg
	a.fc = resolveForecaster(cfg)
	a.hist.Reset()
	a.its = a.its[:0]
	a.itsHead = 0
	a.obsSeen = 0
	a.lastValid = false
	a.fitValid = false
	a.clock = 0
	a.fitAt = 0
}

// Release implements Releasable: the app's state returns to the pool
// for a future NewApp. The caller must not use the app afterwards.
func (a *hybridApp) Release() { hybridAppPool.Put(a) }

// pushIT records one idle time in the ring buffer. The buffer grows
// geometrically to its fixed capacity, then overwrites the oldest
// entry, so steady state allocates nothing.
func (a *hybridApp) pushIT(idle time.Duration) {
	a.obsSeen++
	if len(a.its) < a.cfg.ARIMAMaxSeries {
		a.its = append(a.its, idle)
		return
	}
	a.its[a.itsHead] = idle
	a.itsHead++
	if a.itsHead == len(a.its) {
		a.itsHead = 0
	}
}

// seriesMinutes linearizes the ring into the scratch slice, oldest
// first, converted to minutes (the forecaster's scale).
func (a *hybridApp) seriesMinutes() []float64 {
	n := len(a.its)
	if cap(a.series) < n {
		a.series = make([]float64, n)
	}
	s := a.series[:n]
	k := 0
	for _, d := range a.its[a.itsHead:] {
		s[k] = d.Minutes()
		k++
	}
	for _, d := range a.its[:a.itsHead] {
		s[k] = d.Minutes()
		k++
	}
	return s
}

// NextWindows implements AppPolicy, following Figure 10: update the IT
// distribution, then choose the ARIMA path (too many OOB ITs), the
// histogram (representative pattern), or the conservative standard
// keep-alive.
func (a *hybridApp) NextWindows(idle time.Duration, first bool) Decision {
	if !first {
		if a.cfg.FastMode && idle > 0 {
			a.clock += idle
		}
		a.hist.Observe(idle)
		a.pushIT(idle)
		// No memo write: the observation just invalidated any cached
		// decision, and the next call observes again, so a cache filled
		// here could never be read.
		return a.decide()
	}
	if a.lastValid && a.lastSeen == a.obsSeen {
		// No new data since the last decision: the decision pipeline is
		// deterministic, so the cached decision is exact.
		return a.lastDecision
	}
	d := a.decide()
	a.lastDecision = d
	a.lastSeen = a.obsSeen
	a.lastValid = true
	return d
}

// NextWindowsSeq implements SequencePolicy. The histogram work — the
// dominant per-invocation cost — runs as one batch kernel
// (ithist.DecideSeq) that emits run-length-encoded regimes; this
// method maps regime runs to decisions, expanding per invocation only
// on the rare time-series path, whose refit-per-invocation semantics
// the paper mandates. The retained IT series at invocation j is by
// construction the last ARIMAMaxSeries entries of idles[1:j+1], so the
// ring buffer is not consulted during the batch and is rebuilt once at
// the end.
func (a *hybridApp) NextWindowsSeq(idles []time.Duration, runs []DecisionRun) []DecisionRun {
	if len(idles) == 0 {
		return runs
	}
	if a.obsSeen != 0 {
		// Not a fresh app: the batch path reconstructs the ARIMA
		// series from idles alone and rebuilds the ring from it, which
		// would silently drop the previously recorded ITs. Fall back
		// to the per-call loop, which handles accumulated state.
		acc := runAcc{cur: a.NextWindows(idles[0], true), curN: 1, runs: runs}
		for i := 1; i < len(idles); i++ {
			acc.emit(a.NextWindows(idles[i], false), 1)
		}
		return append(acc.runs, DecisionRun{D: acc.cur, N: acc.curN})
	}
	acc := runAcc{runs: runs, cur: a.NextWindows(idles[0], true), curN: 1}
	if len(idles) > 1 {
		fast := a.cfg.FastMode
		if fast {
			a.wruns = a.hist.DecideSeqFast(idles, a.cfg.MinObservations, a.cfg.OOBThreshold, a.cfg.CVThreshold, a.wruns[:0])
		} else {
			a.wruns = a.hist.DecideSeq(idles, a.cfg.MinObservations, a.cfg.OOBThreshold, a.cfg.CVThreshold, a.wruns[:0])
		}
		standard := a.standard()
		disablePW := a.cfg.DisablePreWarm
		// Refit clock, fast mode only. The batch kernel advances it
		// solely across forecast-path (OOB) observations: the fit is
		// only consulted there, and fitAt is stamped from the same
		// clock, so skipped stretches cancel out of the clk - fitAt
		// age. Summing the windows/standard runs' idles too would put
		// an O(invocations) pass on the hot path for apps that never
		// touch the forecast.
		clk := a.clock
		idx := 1 // invocation index of the next run's first observation
		for _, wr := range a.wruns {
			switch wr.Regime {
			case ithist.RegimeWindows:
				if disablePW {
					// Keep the app loaded from execution end through
					// the tail.
					acc.emit(Decision{PreWarm: 0, KeepAlive: wr.PreWarm + wr.KeepAlive, Mode: ModeHistogram}, wr.Count)
				} else {
					acc.emit(Decision{PreWarm: wr.PreWarm, KeepAlive: wr.KeepAlive, Mode: ModeHistogram}, wr.Count)
				}
			case ithist.RegimeStandard:
				acc.emit(standard, wr.Count)
			default: // ithist.RegimeOOB: the time-series path
				for k := 0; k < int(wr.Count); k++ {
					var d Decision
					var ok bool
					if fast {
						if it := idles[idx+k]; it > 0 {
							clk += it
						}
						d, ok = a.arimaFastAt(idles, idx+k, clk)
					} else {
						// Refit per invocation (§4.2).
						d, ok = a.arimaDecisionAt(idles, idx+k)
					}
					if !ok {
						d = standard
					}
					acc.emit(d, 1)
				}
			}
			idx += int(wr.Count)
		}
		// Leave the ring and counters as the per-call path would have,
		// so subsequent single NextWindows calls continue correctly.
		a.rebuildRing(idles[1:])
		a.clock = clk
	}
	a.lastValid = false
	if a.cfg.FastMode && a.cfg.RefitInterval > 0 {
		// Keep the forecast memo across the batch boundary: marking it
		// seen lets the per-call path apply the interval gate instead
		// of unconditionally refitting on the next observation.
		if a.fitValid {
			a.fitSeen = a.obsSeen
		}
	} else {
		a.fitValid = false
	}
	return append(acc.runs, DecisionRun{D: acc.cur, N: acc.curN})
}

// runAcc accumulates run-length-encoded decisions.
type runAcc struct {
	runs []DecisionRun
	cur  Decision
	curN int32
}

func (r *runAcc) emit(d Decision, n int32) {
	if d == r.cur {
		r.curN += n
	} else {
		r.runs = append(r.runs, DecisionRun{D: r.cur, N: r.curN})
		r.cur, r.curN = d, n
	}
}

// arimaDecisionAt is arimaDecision with the IT series sliced directly
// out of the idle sequence: after invocation j, the retained series is
// the last ARIMAMaxSeries entries of idles[1 : j+1].
func (a *hybridApp) arimaDecisionAt(idles []time.Duration, j int) (Decision, bool) {
	if a.cfg.DisableARIMA || j < a.cfg.ARIMAMinSamples {
		return Decision{}, false
	}
	lo := 1
	if m := j - a.cfg.ARIMAMaxSeries + 1; m > lo {
		lo = m
	}
	n := j - lo + 1
	if cap(a.series) < n {
		a.series = make([]float64, n)
	}
	s := a.series[:n]
	for k := range s {
		s[k] = idles[lo+k].Minutes()
	}
	predMinutes, ok := a.fc.PredictNext(s)
	if !ok {
		return Decision{}, false
	}
	return a.arimaWindows(predMinutes), true
}

// arimaFastAt is arimaDecisionAt with the fast lane's amortized refit:
// a fit younger than RefitInterval of observed idle time (clk is the
// clock after this invocation's idle) is reused through the forecast
// memo, skipping both the minutes-series re-derivation and the fit.
// With RefitInterval 0 the gate never holds and every invocation
// refits, matching the exact lane's §4.2 semantics.
func (a *hybridApp) arimaFastAt(idles []time.Duration, j int, clk time.Duration) (Decision, bool) {
	if a.cfg.DisableARIMA || j < a.cfg.ARIMAMinSamples {
		return Decision{}, false
	}
	if !a.fitValid || clk-a.fitAt >= a.cfg.RefitInterval {
		lo := 1
		if m := j - a.cfg.ARIMAMaxSeries + 1; m > lo {
			lo = m
		}
		n := j - lo + 1
		if cap(a.series) < n {
			a.series = make([]float64, n)
		}
		s := a.series[:n]
		for k := range s {
			s[k] = idles[lo+k].Minutes()
		}
		a.fitPred, a.fitOK = a.fc.PredictNext(s)
		a.fitAt = clk
		a.fitValid = true
	}
	if !a.fitOK {
		return Decision{}, false
	}
	return a.arimaWindows(a.fitPred), true
}

// rebuildRing replaces the ring contents with the tail of the observed
// idle sequence, in oldest-first order, and advances the observation
// counter — the state the per-call path would have accumulated.
func (a *hybridApp) rebuildRing(observed []time.Duration) {
	a.obsSeen += uint64(len(observed))
	if len(observed) > a.cfg.ARIMAMaxSeries {
		observed = observed[len(observed)-a.cfg.ARIMAMaxSeries:]
	}
	a.its = append(a.its[:0], observed...)
	a.itsHead = 0
}

// decide runs the Figure 10 regime selection on the current state.
func (a *hybridApp) decide() Decision {
	total := a.hist.Total() + a.hist.OutOfBounds()
	if total >= a.cfg.MinObservations && a.hist.OOBHeavy(a.cfg.OOBThreshold) {
		if d, ok := a.arimaDecision(); ok {
			return d
		}
		return a.standard()
	}
	if total < a.cfg.MinObservations || a.cvBelow() {
		return a.standard()
	}
	pw, ka, ok := a.hist.Windows()
	if !ok {
		return a.standard()
	}
	if a.cfg.DisablePreWarm {
		// Keep the app loaded from execution end through the tail.
		return Decision{PreWarm: 0, KeepAlive: pw + ka, Mode: ModeHistogram}
	}
	return Decision{PreWarm: pw, KeepAlive: ka, Mode: ModeHistogram}
}

// cvBelow is the representativeness gate: the exact Welford-based
// comparison by default, the closed-form square-free comparison in
// fast mode (the two can disagree when the CV sits exactly on the
// threshold).
func (a *hybridApp) cvBelow() bool {
	if a.cfg.FastMode {
		return a.hist.FastCVBelow(a.cfg.CVThreshold)
	}
	return a.hist.CVBelow(a.cfg.CVThreshold)
}

// standard is the conservative fallback: no unloading after execution
// and a keep-alive as long as the histogram range (§4.2).
func (a *hybridApp) standard() Decision {
	return Decision{PreWarm: 0, KeepAlive: a.hist.Range(), Mode: ModeStandard}
}

// arimaDecision fits the per-app forecast model on the IT series and
// converts the next-IT prediction into windows with the configured
// margin: pre-warm = pred*(1-margin), keep-alive = 2*margin*pred
// (margin on each side of the prediction).
func (a *hybridApp) arimaDecision() (Decision, bool) {
	if a.cfg.DisableARIMA || len(a.its) < a.cfg.ARIMAMinSamples {
		return Decision{}, false
	}
	// The paper rebuilds the model after every invocation of an
	// ARIMA-managed app (§4.2); these apps are invoked rarely, so the
	// cost is off the critical path and negligible in aggregate. The
	// memo only short-circuits refits on an unchanged series — except
	// in fast mode with a refit interval, where a fit younger than
	// RefitInterval of observed idle time is reused (and the minutes
	// series not re-derived) even after new observations.
	if !a.fitValid || a.fitSeen != a.obsSeen {
		if a.fitValid && a.cfg.RefitInterval > 0 && a.clock-a.fitAt < a.cfg.RefitInterval {
			a.fitSeen = a.obsSeen
		} else {
			a.fitPred, a.fitOK = a.fc.PredictNext(a.seriesMinutes())
			a.fitSeen = a.obsSeen
			a.fitAt = a.clock
			a.fitValid = true
		}
	}
	if !a.fitOK {
		return Decision{}, false
	}
	return a.arimaWindows(a.fitPred), true
}

// arimaWindows converts a next-IT prediction (in minutes) into the
// margin windows: pre-warm = pred*(1-margin), keep-alive =
// 2*margin*pred (margin on each side of the prediction).
func (a *hybridApp) arimaWindows(predMinutes float64) Decision {
	pred := time.Duration(predMinutes * float64(time.Minute))
	m := a.cfg.ARIMAMargin
	pw := time.Duration(float64(pred) * (1 - m))
	ka := time.Duration(float64(pred) * 2 * m)
	if ka < a.cfg.Histogram.BinWidth {
		ka = a.cfg.Histogram.BinWidth
	}
	return Decision{PreWarm: pw, KeepAlive: ka, Mode: ModeARIMA}
}
