package policy

import (
	"fmt"
	"time"

	"repro/internal/arima"
	"repro/internal/forecast"
	"repro/internal/ithist"
)

// HybridConfig parameterizes the hybrid histogram policy. The zero
// value is invalid; start from DefaultHybridConfig.
type HybridConfig struct {
	// Histogram configures the per-app idle-time histogram (bins,
	// range, cutoff percentiles, margin).
	Histogram ithist.Config
	// CVThreshold is the minimum bin-count coefficient of variation
	// for the histogram to be considered representative (the paper
	// selects 2; Figure 18).
	CVThreshold float64
	// MinObservations is the minimum number of recorded ITs before the
	// histogram may be trusted at all.
	MinObservations int64
	// OOBThreshold is the fraction of out-of-bounds ITs above which
	// the policy switches to the ARIMA path ("too many OOB ITs",
	// Figure 10).
	OOBThreshold float64
	// ARIMAMargin is the forecast error allowance (default 0.15): the
	// pre-warm window is the prediction minus the margin, and the
	// keep-alive window spans the margin on both sides of it (§4.2).
	ARIMAMargin float64
	// ARIMAMinSamples is the minimum IT count before fitting ARIMA.
	ARIMAMinSamples int
	// ARIMAMaxSeries caps the retained IT series length (oldest
	// dropped), bounding per-app state.
	ARIMAMaxSeries int
	// DisableARIMA turns the time-series path off; apps with OOB-heavy
	// IT distributions fall back to the standard keep-alive (used for
	// the Figure 19 ablation).
	DisableARIMA bool
	// DisablePreWarm keeps applications loaded after execution (pre-
	// warming window forced to 0) with the keep-alive extended to cover
	// through the histogram tail — the "Hybrid No PW, KA:99th" variant
	// of the Figure 17 ablation.
	DisablePreWarm bool
	// Forecaster predicts the next idle time (in minutes) on the
	// time-series path. Nil selects ARIMA, the paper's default; the
	// paper notes the model is replaceable (§4.2), and
	// forecast.ExpSmoothing is a cheap drop-in.
	Forecaster forecast.Forecaster
}

// DefaultHybridConfig returns the paper's defaults: 4-hour 1-minute
// histogram with [5,99] cutoffs and 10% margin, CV threshold 2, 50%
// OOB threshold, 15% ARIMA margin.
func DefaultHybridConfig() HybridConfig {
	return HybridConfig{
		Histogram:       ithist.DefaultConfig(),
		CVThreshold:     2,
		MinObservations: 2,
		OOBThreshold:    0.5,
		ARIMAMargin:     0.15,
		ARIMAMinSamples: 4,
		ARIMAMaxSeries:  1000,
	}
}

// Validate reports whether the configuration is usable.
func (c HybridConfig) Validate() error {
	if err := c.Histogram.Validate(); err != nil {
		return err
	}
	if c.CVThreshold < 0 {
		return fmt.Errorf("policy: CVThreshold %v negative", c.CVThreshold)
	}
	if c.OOBThreshold <= 0 || c.OOBThreshold > 1 {
		return fmt.Errorf("policy: OOBThreshold %v out of (0,1]", c.OOBThreshold)
	}
	if c.ARIMAMargin <= 0 || c.ARIMAMargin >= 1 {
		return fmt.Errorf("policy: ARIMAMargin %v out of (0,1)", c.ARIMAMargin)
	}
	if c.ARIMAMinSamples < 3 {
		return fmt.Errorf("policy: ARIMAMinSamples %d too small", c.ARIMAMinSamples)
	}
	if c.ARIMAMaxSeries < c.ARIMAMinSamples {
		return fmt.Errorf("policy: ARIMAMaxSeries %d < ARIMAMinSamples %d",
			c.ARIMAMaxSeries, c.ARIMAMinSamples)
	}
	return nil
}

// Hybrid is the paper's hybrid histogram policy.
type Hybrid struct {
	cfg HybridConfig
}

// NewHybrid constructs the policy, panicking on invalid configuration
// (programming error, as configs are code-supplied).
func NewHybrid(cfg HybridConfig) *Hybrid {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Hybrid{cfg: cfg}
}

// Name implements Policy.
func (p *Hybrid) Name() string {
	h := p.cfg.Histogram
	name := fmt.Sprintf("hybrid-%s[%g,%g]", h.BinWidth*time.Duration(h.NumBins),
		h.HeadPercentile, h.TailPercentile)
	if p.cfg.DisableARIMA {
		name += "-noarima"
	}
	if p.cfg.DisablePreWarm {
		name += "-nopw"
	}
	return name
}

// Config returns the policy configuration.
func (p *Hybrid) Config() HybridConfig { return p.cfg }

// NewApp implements Policy.
func (p *Hybrid) NewApp(string) AppPolicy {
	return &hybridApp{
		cfg:  p.cfg,
		hist: ithist.New(p.cfg.Histogram),
	}
}

type hybridApp struct {
	cfg  HybridConfig
	hist *ithist.Histogram
	// its is the retained idle-time series in minutes, feeding ARIMA.
	its []float64
}

// NextWindows implements AppPolicy, following Figure 10: update the IT
// distribution, then choose the ARIMA path (too many OOB ITs), the
// histogram (representative pattern), or the conservative standard
// keep-alive.
func (a *hybridApp) NextWindows(idle time.Duration, first bool) Decision {
	if !first {
		a.hist.Observe(idle)
		a.its = append(a.its, idle.Minutes())
		if len(a.its) > a.cfg.ARIMAMaxSeries {
			a.its = a.its[len(a.its)-a.cfg.ARIMAMaxSeries:]
		}
	}

	total := a.hist.Total() + a.hist.OutOfBounds()
	if total >= a.cfg.MinObservations && a.hist.OOBFraction() > a.cfg.OOBThreshold {
		if d, ok := a.arimaDecision(); ok {
			return d
		}
		return a.standard()
	}
	if total < a.cfg.MinObservations || a.hist.BinCountCV() < a.cfg.CVThreshold {
		return a.standard()
	}
	pw, ka, ok := a.hist.Windows()
	if !ok {
		return a.standard()
	}
	if a.cfg.DisablePreWarm {
		// Keep the app loaded from execution end through the tail.
		return Decision{PreWarm: 0, KeepAlive: pw + ka, Mode: ModeHistogram}
	}
	return Decision{PreWarm: pw, KeepAlive: ka, Mode: ModeHistogram}
}

// standard is the conservative fallback: no unloading after execution
// and a keep-alive as long as the histogram range (§4.2).
func (a *hybridApp) standard() Decision {
	return Decision{PreWarm: 0, KeepAlive: a.hist.Range(), Mode: ModeStandard}
}

// arimaDecision fits the per-app forecast model on the IT series and
// converts the next-IT prediction into windows with the configured
// margin: pre-warm = pred*(1-margin), keep-alive = 2*margin*pred
// (margin on each side of the prediction).
func (a *hybridApp) arimaDecision() (Decision, bool) {
	if a.cfg.DisableARIMA || len(a.its) < a.cfg.ARIMAMinSamples {
		return Decision{}, false
	}
	// The paper rebuilds the model after every invocation of an
	// ARIMA-managed app (§4.2); these apps are invoked rarely, so the
	// cost is off the critical path and negligible in aggregate.
	fc := a.cfg.Forecaster
	if fc == nil {
		fc = forecast.ARIMA{Options: arima.Options{MaxP: 2, MaxD: 1, MaxQ: 1}}
	}
	predMinutes, ok := fc.PredictNext(a.its)
	if !ok {
		return Decision{}, false
	}
	pred := time.Duration(predMinutes * float64(time.Minute))
	m := a.cfg.ARIMAMargin
	pw := time.Duration(float64(pred) * (1 - m))
	ka := time.Duration(float64(pred) * 2 * m)
	if ka < a.cfg.Histogram.BinWidth {
		ka = a.cfg.Histogram.BinWidth
	}
	return Decision{PreWarm: pw, KeepAlive: ka, Mode: ModeARIMA}, true
}
