package policy

import (
	"testing"
	"time"

	"repro/internal/forecast"
)

// TestHybridWithAlternateForecasters verifies that the time-series
// path works with every pluggable forecaster (the §4.2 note that
// ARIMA "can easily be replaced with another model").
func TestHybridWithAlternateForecasters(t *testing.T) {
	for _, fc := range []forecast.Forecaster{
		forecast.ARIMA{}, forecast.ExpSmoothing{}, forecast.Mean{},
	} {
		cfg := DefaultHybridConfig()
		cfg.Forecaster = fc
		a := NewHybrid(cfg).NewApp("app")
		var d Decision
		first := true
		for i := 0; i < 12; i++ {
			d = a.NextWindows(6*time.Hour, first) // all OOB
			first = false
		}
		if d.Mode != ModeARIMA {
			t.Fatalf("%s: mode = %v, want arima path", fc.Name(), d.Mode)
		}
		// Prediction ~360min: window must straddle it.
		it := 6 * time.Hour
		if d.PreWarm > it || d.PreWarm+d.KeepAlive < it {
			t.Fatalf("%s: window [%v, %v] does not straddle %v",
				fc.Name(), d.PreWarm, d.PreWarm+d.KeepAlive, it)
		}
	}
}

// TestHybridForecasterReducesAlwaysCold compares the full hybrid with
// exponential smoothing against the no-forecast ablation on a rare,
// regular app: the forecaster must produce warm starts.
func TestHybridForecasterReducesAlwaysCold(t *testing.T) {
	run := func(cfg HybridConfig) int {
		a := NewHybrid(cfg).NewApp("app")
		cold := 0
		var d Decision
		first := true
		it := 8 * time.Hour
		for i := 0; i < 15; i++ {
			if i > 0 {
				// Warm iff the window straddles the actual idle time.
				if d.Mode == ModeStandard {
					if it > d.KeepAlive {
						cold++
					}
				} else if d.PreWarm > it || d.PreWarm+d.KeepAlive < it {
					cold++
				}
			} else {
				cold++
			}
			d = a.NextWindows(it, first)
			first = false
		}
		return cold
	}
	withFC := DefaultHybridConfig()
	withFC.Forecaster = forecast.ExpSmoothing{}
	noFC := DefaultHybridConfig()
	noFC.DisableARIMA = true
	if run(withFC) >= run(noFC) {
		t.Fatalf("forecaster colds %d should beat no-forecast %d", run(withFC), run(noFC))
	}
}
