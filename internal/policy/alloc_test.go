package policy

import (
	"testing"
	"time"

	"repro/internal/stats"
)

// TestNextWindowsSteadyStateAllocs pins the per-invocation decision
// cost of the hybrid policy to zero allocations once the app reaches
// steady state (ring buffer at capacity, scratch buffers grown). This
// is the §5.3 overhead budget: a decision runs on every invocation of
// every app, so any allocation here multiplies across the fleet.
func TestNextWindowsSteadyStateAllocs(t *testing.T) {
	p := NewHybrid(DefaultHybridConfig())
	ap := p.NewApp("app")
	r := stats.NewRNG(3)
	// Warm past the ring capacity (ARIMAMaxSeries) with in-bounds idle
	// times so the histogram regime, not the ARIMA path, is active.
	for i := 0; i <= DefaultHybridConfig().ARIMAMaxSeries+16; i++ {
		ap.NextWindows(time.Duration(r.Float64()*float64(30*time.Minute)), i == 0)
	}
	allocs := testing.AllocsPerRun(2000, func() {
		ap.NextWindows(17*time.Minute, false)
	})
	if allocs != 0 {
		t.Fatalf("steady-state NextWindows allocs/op = %v, want 0", allocs)
	}
}

// TestNextWindowsSeqSteadyStateAllocs does the same for the batch
// path: with reused buffers, a whole-app decision sequence in the
// histogram regime allocates nothing beyond the caller-provided run
// slice.
func TestNextWindowsSeqSteadyStateAllocs(t *testing.T) {
	p := NewHybrid(DefaultHybridConfig())
	r := stats.NewRNG(4)
	idles := make([]time.Duration, 512)
	for i := range idles {
		idles[i] = time.Duration(r.Float64() * float64(30*time.Minute))
	}
	runs := make([]DecisionRun, 0, 64)
	// Warm one app's scratch, then measure on that retained app with an
	// in-place reset per round. (Round-tripping through NewApp/Release
	// here would measure sync.Pool behavior, which legitimately drops
	// puts under the race detector and across GCs.)
	a := p.NewApp("app").(*hybridApp)
	runs = a.NextWindowsSeq(idles, runs[:0])
	allocs := testing.AllocsPerRun(200, func() {
		a.reset(a.cfg)
		runs = a.NextWindowsSeq(idles, runs[:0])
	})
	if allocs != 0 {
		t.Fatalf("steady-state NextWindowsSeq allocs/op = %v, want 0", allocs)
	}
}

// TestSeqOnPreObservedAppFallsBack drives an app through some
// per-call decisions first and then a batch call, and checks the
// batch output and the post-call state match an app driven purely
// per-call (the batch kernel requires a fresh app; pre-observed apps
// must take the per-call fallback rather than dropping state).
func TestSeqOnPreObservedAppFallsBack(t *testing.T) {
	r := stats.NewRNG(9)
	pre := make([]time.Duration, 40)
	for i := range pre {
		pre[i] = time.Duration(r.Float64() * float64(5*time.Hour))
	}
	batchIdles := make([]time.Duration, 60)
	for i := range batchIdles {
		batchIdles[i] = time.Duration(r.Float64() * float64(5*time.Hour))
	}

	p := NewHybrid(DefaultHybridConfig())
	mixed := p.NewApp("mixed").(*hybridApp)
	pure := p.NewApp("pure")
	for i, d := range pre {
		mixed.NextWindows(d, i == 0)
		pure.NextWindows(d, i == 0)
	}
	runs := mixed.NextWindowsSeq(batchIdles, nil)
	j := 0
	for _, run := range runs {
		for k := int32(0); k < run.N; k++ {
			// Batch continues the app's history: idles[0] repeats the
			// first=true protocol, the rest observe.
			want := pure.NextWindows(batchIdles[j], j == 0)
			if run.D != want {
				t.Fatalf("decision %d: batch %+v per-call %+v", j, run.D, want)
			}
			j++
		}
	}
	if j != len(batchIdles) {
		t.Fatalf("runs expand to %d decisions, want %d", j, len(batchIdles))
	}
}

// TestSeqMatchesStepwiseDecisions expands the batch path's runs and
// compares them decision by decision with a fresh app driven through
// the per-call path, across mixed in-bounds/out-of-bounds sequences
// (the ARIMA regime included).
func TestSeqMatchesStepwiseDecisions(t *testing.T) {
	for seed := uint64(0); seed < 12; seed++ {
		r := stats.NewRNG(seed)
		n := 2 + r.Intn(200)
		idles := make([]time.Duration, n)
		for i := range idles {
			if r.Intn(3) == 0 {
				idles[i] = 4*time.Hour + time.Duration(r.Float64()*float64(2*time.Hour))
			} else {
				idles[i] = time.Duration(r.Float64() * float64(time.Hour))
			}
		}
		p := NewHybrid(DefaultHybridConfig())
		seqApp := p.NewApp("a").(*hybridApp)
		runs := seqApp.NextWindowsSeq(idles, nil)

		stepApp := p.NewApp("b")
		var flat []Decision
		for i := range idles {
			flat = append(flat, stepApp.NextWindows(idles[i], i == 0))
		}

		j := 0
		for _, run := range runs {
			for k := int32(0); k < run.N; k++ {
				if j >= len(flat) {
					t.Fatalf("seed %d: runs expand past %d decisions", seed, len(flat))
				}
				if run.D != flat[j] {
					t.Fatalf("seed %d decision %d: batch %+v stepwise %+v", seed, j, run.D, flat[j])
				}
				j++
			}
		}
		if j != len(flat) {
			t.Fatalf("seed %d: runs expand to %d decisions, want %d", seed, j, len(flat))
		}
	}
}
