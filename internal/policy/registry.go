package policy

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/forecast"
	"repro/internal/spec"
)

// The policy registry maps short names to builders so every binary,
// example and experiment selects and configures policies through one
// parsed-spec path instead of hand-rolling flag plumbing. A spec is
//
//	name?key=value&key=value
//
// with URL query syntax, e.g. "fixed?ka=20m", "hybrid?cv=2&range=4h",
// "hybrid?arima=off". Unknown names and unknown keys are errors (a
// typo fails fast instead of silently simulating the default).
//
// The grammar and parameter machinery are shared with every other
// component registry (placements, trace sources, metric sinks) via
// internal/spec.

// SpecParams carries a spec's parsed parameters to a Builder. Typed
// accessors record which keys were consumed; FromSpec rejects specs
// with leftover (misspelled) keys afterwards.
type SpecParams = spec.Params

// Builder constructs a policy from a spec's parameters.
type Builder func(p *SpecParams) (Policy, error)

var (
	regMu    sync.RWMutex
	registry = map[string]Builder{}
)

// Register adds a named policy builder. Downstream users extend the
// spec language with their own policies the same way the built-ins
// are wired. Registering a duplicate name panics (programming error).
func Register(name string, b Builder) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("policy: Register(%q) called twice", name))
	}
	registry[name] = b
}

// SpecNames returns the registered policy names, sorted.
func SpecNames() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// FromSpec parses a policy spec ("hybrid?cv=2&range=4h") and builds
// the policy through the registry.
func FromSpec(s string) (Policy, error) {
	name, query := spec.Split(s)
	regMu.RLock()
	b, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("policy: unknown policy %q (registered: %v)", name, SpecNames())
	}
	p, err := spec.Parse(query)
	if err != nil {
		return nil, fmt.Errorf("policy: spec %q: %w", s, err)
	}
	pol, err := b(p)
	if err != nil {
		return nil, fmt.Errorf("policy: spec %q: %w", s, err)
	}
	if left := p.Unused(); len(left) > 0 {
		return nil, fmt.Errorf("policy: spec %q: unknown parameters %v (known: %v)", s, left, p.Known())
	}
	return pol, nil
}

// MustFromSpec is FromSpec panicking on error, for code-supplied specs.
func MustFromSpec(spec string) Policy {
	pol, err := FromSpec(spec)
	if err != nil {
		panic(err)
	}
	return pol
}

// Built-in policies.
func init() {
	Register("fixed", buildFixed)
	Register("nounload", buildNoUnload)
	Register("no-unloading", buildNoUnload)
	Register("hybrid", buildHybrid)
}

// buildFixed builds the provider baseline: fixed?ka=10m.
func buildFixed(p *SpecParams) (Policy, error) {
	ka, err := p.Duration("ka", 10*time.Minute)
	if err != nil {
		return nil, err
	}
	if ka <= 0 {
		return nil, fmt.Errorf("parameter ka: must be positive, got %v", ka)
	}
	return FixedKeepAlive{KeepAlive: ka}, nil
}

func buildNoUnload(*SpecParams) (Policy, error) { return NoUnloading{}, nil }

// buildHybrid builds the paper's hybrid histogram policy. Keys:
//
//	range     histogram range (duration; NumBins = range / binwidth)
//	binwidth  histogram bin width (duration, default 1m)
//	bins      histogram bin count (overrides range)
//	head      pre-warm cutoff percentile
//	tail      keep-alive cutoff percentile
//	margin    window widening fraction
//	cv        representativeness (CV) threshold
//	oob       out-of-bounds fraction switching to the forecast path
//	arima     on/off — off disables the time-series path (Figure 19)
//	arima-margin  forecast error allowance
//	prewarm   on/off — off is the "no PW, KA:99th" Figure 17 variant
//	forecaster    arima (default) or ses (exponential smoothing)
//	exact     on/off — off selects the fast lane: closed-form CV
//	          moments, square-free threshold comparison, reordered
//	          float accumulation (decisions may differ at CV ties;
//	          divergence measured by internal/equiv)
//	refit     amortized ARIMA refit interval in observed idle time
//	          (e.g. 1m); 0 (default) refits per invocation as §4.2
//	          mandates; nonzero requires exact=off
func buildHybrid(p *SpecParams) (Policy, error) {
	cfg := DefaultHybridConfig()
	binWidth, err := p.Duration("binwidth", cfg.Histogram.BinWidth)
	if err != nil {
		return nil, err
	}
	cfg.Histogram.BinWidth = binWidth
	if histRange, err := p.Duration("range", 0); err != nil {
		return nil, err
	} else if histRange > 0 {
		if binWidth <= 0 {
			return nil, fmt.Errorf("parameter binwidth: must be positive, got %v", binWidth)
		}
		cfg.Histogram.NumBins = int(histRange / binWidth)
	}
	if cfg.Histogram.NumBins, err = p.Int("bins", cfg.Histogram.NumBins); err != nil {
		return nil, err
	}
	if cfg.Histogram.HeadPercentile, err = p.Float("head", cfg.Histogram.HeadPercentile); err != nil {
		return nil, err
	}
	if cfg.Histogram.TailPercentile, err = p.Float("tail", cfg.Histogram.TailPercentile); err != nil {
		return nil, err
	}
	if cfg.Histogram.Margin, err = p.Float("margin", cfg.Histogram.Margin); err != nil {
		return nil, err
	}
	if cfg.CVThreshold, err = p.Float("cv", cfg.CVThreshold); err != nil {
		return nil, err
	}
	if cfg.OOBThreshold, err = p.Float("oob", cfg.OOBThreshold); err != nil {
		return nil, err
	}
	if cfg.ARIMAMargin, err = p.Float("arima-margin", cfg.ARIMAMargin); err != nil {
		return nil, err
	}
	arimaOn, err := p.Bool("arima", true)
	if err != nil {
		return nil, err
	}
	cfg.DisableARIMA = !arimaOn
	preWarm, err := p.Bool("prewarm", true)
	if err != nil {
		return nil, err
	}
	cfg.DisablePreWarm = !preWarm
	exact, err := p.Bool("exact", true)
	if err != nil {
		return nil, err
	}
	cfg.FastMode = !exact
	if cfg.RefitInterval, err = p.Duration("refit", 0); err != nil {
		return nil, err
	}
	if cfg.RefitInterval < 0 {
		return nil, fmt.Errorf("parameter refit: must be non-negative, got %v", cfg.RefitInterval)
	}
	if cfg.RefitInterval > 0 && exact {
		return nil, fmt.Errorf("parameter refit: requires exact=off (amortized refits relax the exact lane's refit-per-invocation pin)")
	}
	switch fc := p.String("forecaster", "arima"); fc {
	case "arima":
		// cfg.Forecaster nil selects the paper's default ARIMA search.
	case "ses":
		cfg.Forecaster = forecast.ExpSmoothing{}
	default:
		return nil, fmt.Errorf("parameter forecaster: unknown %q (arima, ses)", fc)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return NewHybrid(cfg), nil
}
