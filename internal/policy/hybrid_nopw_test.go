package policy

import (
	"testing"
	"time"
)

func TestHybridDisablePreWarm(t *testing.T) {
	cfg := DefaultHybridConfig()
	cfg.DisablePreWarm = true
	a := NewHybrid(cfg).NewApp("app")
	var d Decision
	first := true
	for i := 0; i < 20; i++ {
		d = a.NextWindows(30*time.Minute+15*time.Second, first)
		first = false
	}
	if d.Mode != ModeHistogram {
		t.Fatalf("mode = %v", d.Mode)
	}
	if d.PreWarm != 0 {
		t.Fatalf("preWarm = %v, want 0 with DisablePreWarm", d.PreWarm)
	}
	// Keep-alive must cover through the tail (>= ~31min with margin).
	if d.KeepAlive < 31*time.Minute {
		t.Fatalf("keepAlive = %v, want >= 31m", d.KeepAlive)
	}
	if got := NewHybrid(cfg).Name(); got != "hybrid-4h0m0s[5,99]-nopw" {
		t.Fatalf("name = %q", got)
	}
}
