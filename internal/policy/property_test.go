package policy

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/stats"
)

// TestHybridDecisionInvariants checks every decision the hybrid
// policy can emit under random idle-time streams: non-negative
// windows, keep-alive at least one bin, never Forever, and coverage
// never exceeding head-start plus the histogram range by more than
// the margins allow.
func TestHybridDecisionInvariants(t *testing.T) {
	cfg := DefaultHybridConfig()
	maxCover := time.Duration(float64(cfg.Histogram.BinWidth)*float64(cfg.Histogram.NumBins)*(1+cfg.Histogram.Margin)) + time.Minute
	check := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		a := NewHybrid(cfg).NewApp("app")
		first := true
		for i := 0; i < 150; i++ {
			// Mix of in-range, OOB and tiny idle times.
			var idle time.Duration
			switch r.Intn(3) {
			case 0:
				idle = time.Duration(r.Float64() * float64(4*time.Hour))
			case 1:
				idle = time.Duration(r.Float64() * float64(30*time.Hour))
			default:
				idle = time.Duration(r.Float64() * float64(2*time.Minute))
			}
			d := a.NextWindows(idle, first)
			first = false
			if d.Forever {
				return false
			}
			if d.PreWarm < 0 || d.KeepAlive < cfg.Histogram.BinWidth {
				return false
			}
			switch d.Mode {
			case ModeStandard:
				if d.PreWarm != 0 || d.KeepAlive != 4*time.Hour {
					return false
				}
			case ModeHistogram:
				if d.PreWarm+d.KeepAlive > maxCover {
					return false
				}
			case ModeARIMA:
				// ARIMA windows scale with the prediction; both must be
				// positive and proportioned by the margin.
				if d.PreWarm <= 0 {
					return false
				}
			default:
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestHybridDeterministicPerStream: identical idle-time streams must
// produce identical decision streams.
func TestHybridDeterministicPerStream(t *testing.T) {
	check := func(seed uint64) bool {
		r1 := stats.NewRNG(seed)
		r2 := stats.NewRNG(seed)
		a1 := NewHybrid(DefaultHybridConfig()).NewApp("a")
		a2 := NewHybrid(DefaultHybridConfig()).NewApp("b")
		first := true
		for i := 0; i < 60; i++ {
			it1 := time.Duration(r1.Float64() * float64(6*time.Hour))
			it2 := time.Duration(r2.Float64() * float64(6*time.Hour))
			if it1 != it2 {
				return false
			}
			d1 := a1.NextWindows(it1, first)
			d2 := a2.NextWindows(it2, first)
			first = false
			if d1 != d2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestHybridCoversObservedIT: once a constant in-range IT pattern is
// learned, the emitted window must cover that IT (so the next
// invocation is warm).
func TestHybridCoversObservedIT(t *testing.T) {
	check := func(raw uint64) bool {
		minutes := int(raw%235) + 2 // constant IT of 2..236 minutes
		it := time.Duration(minutes) * time.Minute
		a := NewHybrid(DefaultHybridConfig()).NewApp("app")
		var d Decision
		first := true
		for i := 0; i < 25; i++ {
			d = a.NextWindows(it, first)
			first = false
		}
		if d.Mode != ModeHistogram {
			return false
		}
		// The IT must fall inside [PreWarm, PreWarm+KeepAlive].
		return d.PreWarm <= it && it <= d.PreWarm+d.KeepAlive
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
