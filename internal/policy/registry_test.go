package policy

import (
	"strings"
	"testing"
	"time"

	"repro/internal/forecast"
)

func TestFromSpecFixed(t *testing.T) {
	pol, err := FromSpec("fixed?ka=20m")
	if err != nil {
		t.Fatal(err)
	}
	fk, ok := pol.(FixedKeepAlive)
	if !ok {
		t.Fatalf("built %T", pol)
	}
	if fk.KeepAlive != 20*time.Minute {
		t.Fatalf("ka = %v", fk.KeepAlive)
	}
	// Default.
	pol, err = FromSpec("fixed")
	if err != nil {
		t.Fatal(err)
	}
	if pol.(FixedKeepAlive).KeepAlive != 10*time.Minute {
		t.Fatalf("default ka = %v", pol.(FixedKeepAlive).KeepAlive)
	}
}

func TestFromSpecNoUnload(t *testing.T) {
	for _, spec := range []string{"nounload", "no-unloading"} {
		pol, err := FromSpec(spec)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := pol.(NoUnloading); !ok {
			t.Fatalf("%s built %T", spec, pol)
		}
	}
}

func TestFromSpecHybrid(t *testing.T) {
	pol, err := FromSpec("hybrid?range=2h&cv=5&head=1&tail=95&margin=0.2&oob=0.3&arima-margin=0.25&arima=off&prewarm=off")
	if err != nil {
		t.Fatal(err)
	}
	h, ok := pol.(*Hybrid)
	if !ok {
		t.Fatalf("built %T", pol)
	}
	cfg := h.Config()
	if cfg.Histogram.NumBins != 120 {
		t.Fatalf("bins = %d", cfg.Histogram.NumBins)
	}
	if cfg.CVThreshold != 5 || cfg.Histogram.HeadPercentile != 1 || cfg.Histogram.TailPercentile != 95 {
		t.Fatalf("cfg = %+v", cfg)
	}
	if cfg.Histogram.Margin != 0.2 || cfg.OOBThreshold != 0.3 || cfg.ARIMAMargin != 0.25 {
		t.Fatalf("cfg = %+v", cfg)
	}
	if !cfg.DisableARIMA || !cfg.DisablePreWarm {
		t.Fatalf("toggles: %+v", cfg)
	}
}

// TestFromSpecHybridDefaultMatchesConstructor pins that the registry's
// default hybrid is the same policy as the hand-built one.
func TestFromSpecHybridDefaultMatchesConstructor(t *testing.T) {
	pol, err := FromSpec("hybrid")
	if err != nil {
		t.Fatal(err)
	}
	want := NewHybrid(DefaultHybridConfig())
	if pol.Name() != want.Name() {
		t.Fatalf("name %q, want %q", pol.Name(), want.Name())
	}
	if pol.(*Hybrid).Config() != want.Config() {
		t.Fatalf("config %+v, want %+v", pol.(*Hybrid).Config(), want.Config())
	}
}

func TestFromSpecHybridForecaster(t *testing.T) {
	pol, err := FromSpec("hybrid?forecaster=ses")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := pol.(*Hybrid).Config().Forecaster.(forecast.ExpSmoothing); !ok {
		t.Fatalf("forecaster = %T", pol.(*Hybrid).Config().Forecaster)
	}
}

func TestFromSpecErrors(t *testing.T) {
	cases := []struct {
		spec    string
		wantSub string
	}{
		{"warmforever", "unknown policy"},
		{"fixed?keepalive=10m", "unknown parameters [keepalive]"},
		{"fixed?ka=bogus", "parameter ka"},
		{"fixed?ka=-5m", "must be positive"},
		{"hybrid?cv=abc", "parameter cv"},
		{"hybrid?arima=maybe", "invalid boolean"},
		{"hybrid?forecaster=lstm", "unknown \"lstm\""},
		{"hybrid?bins=0", "NumBins"},
		{"hybrid?range=4h&binwidth=0s", "binwidth"},
		{"nounload?ka=1m", "unknown parameters [ka]"},
		{"fixed?ka=10m&ka2=3", "unknown parameters [ka2]"},
	}
	for _, c := range cases {
		_, err := FromSpec(c.spec)
		if err == nil {
			t.Errorf("spec %q: no error", c.spec)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("spec %q: error %q missing %q", c.spec, err, c.wantSub)
		}
	}
}

func TestRegisterCustomAndDuplicate(t *testing.T) {
	Register("test-custom", func(p *SpecParams) (Policy, error) {
		ka, err := p.Duration("ka", time.Minute)
		if err != nil {
			return nil, err
		}
		return FixedKeepAlive{KeepAlive: ka}, nil
	})
	pol, err := FromSpec("test-custom?ka=90s")
	if err != nil {
		t.Fatal(err)
	}
	if pol.(FixedKeepAlive).KeepAlive != 90*time.Second {
		t.Fatalf("custom ka = %v", pol.(FixedKeepAlive).KeepAlive)
	}
	found := false
	for _, n := range SpecNames() {
		if n == "test-custom" {
			found = true
		}
	}
	if !found {
		t.Fatal("test-custom not listed in SpecNames")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	Register("test-custom", func(*SpecParams) (Policy, error) { return NoUnloading{}, nil })
}

func TestMustFromSpecPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustFromSpec did not panic on bad spec")
		}
	}()
	MustFromSpec("definitely-not-registered")
}
